# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_acsr_terms[1]_include.cmake")
include("/root/repo/build/tests/test_acsr_semantics[1]_include.cmake")
include("/root/repo/build/tests/test_acsr_figures[1]_include.cmake")
include("/root/repo/build/tests/test_acsr_parser[1]_include.cmake")
include("/root/repo/build/tests/test_preemption[1]_include.cmake")
include("/root/repo/build/tests/test_explorer[1]_include.cmake")
include("/root/repo/build/tests/test_sched_analysis[1]_include.cmake")
include("/root/repo/build/tests/test_simulator[1]_include.cmake")
include("/root/repo/build/tests/test_workload[1]_include.cmake")
include("/root/repo/build/tests/test_aadl_frontend[1]_include.cmake")
include("/root/repo/build/tests/test_translator[1]_include.cmake")
include("/root/repo/build/tests/test_cruise_control[1]_include.cmake")
include("/root/repo/build/tests/test_cross_validation[1]_include.cmake")
include("/root/repo/build/tests/test_trace_liftback[1]_include.cmake")
include("/root/repo/build/tests/test_event_chains[1]_include.cmake")
include("/root/repo/build/tests/test_observers[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_extract[1]_include.cmake")
