file(REMOVE_RECURSE
  "CMakeFiles/test_preemption.dir/test_preemption.cpp.o"
  "CMakeFiles/test_preemption.dir/test_preemption.cpp.o.d"
  "test_preemption"
  "test_preemption.pdb"
  "test_preemption[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_preemption.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
