file(REMOVE_RECURSE
  "CMakeFiles/test_event_chains.dir/test_event_chains.cpp.o"
  "CMakeFiles/test_event_chains.dir/test_event_chains.cpp.o.d"
  "test_event_chains"
  "test_event_chains.pdb"
  "test_event_chains[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_event_chains.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
