# Empty compiler generated dependencies file for test_trace_liftback.
# This may be replaced when dependencies are built.
