file(REMOVE_RECURSE
  "CMakeFiles/test_trace_liftback.dir/test_trace_liftback.cpp.o"
  "CMakeFiles/test_trace_liftback.dir/test_trace_liftback.cpp.o.d"
  "test_trace_liftback"
  "test_trace_liftback.pdb"
  "test_trace_liftback[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_trace_liftback.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
