file(REMOVE_RECURSE
  "CMakeFiles/test_acsr_semantics.dir/test_acsr_semantics.cpp.o"
  "CMakeFiles/test_acsr_semantics.dir/test_acsr_semantics.cpp.o.d"
  "test_acsr_semantics"
  "test_acsr_semantics.pdb"
  "test_acsr_semantics[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_acsr_semantics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
