# Empty dependencies file for test_acsr_semantics.
# This may be replaced when dependencies are built.
