file(REMOVE_RECURSE
  "CMakeFiles/test_acsr_parser.dir/test_acsr_parser.cpp.o"
  "CMakeFiles/test_acsr_parser.dir/test_acsr_parser.cpp.o.d"
  "test_acsr_parser"
  "test_acsr_parser.pdb"
  "test_acsr_parser[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_acsr_parser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
