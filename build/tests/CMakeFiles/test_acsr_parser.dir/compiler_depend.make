# Empty compiler generated dependencies file for test_acsr_parser.
# This may be replaced when dependencies are built.
