file(REMOVE_RECURSE
  "CMakeFiles/test_sched_analysis.dir/test_sched_analysis.cpp.o"
  "CMakeFiles/test_sched_analysis.dir/test_sched_analysis.cpp.o.d"
  "test_sched_analysis"
  "test_sched_analysis.pdb"
  "test_sched_analysis[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sched_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
