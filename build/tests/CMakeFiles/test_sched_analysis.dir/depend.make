# Empty dependencies file for test_sched_analysis.
# This may be replaced when dependencies are built.
