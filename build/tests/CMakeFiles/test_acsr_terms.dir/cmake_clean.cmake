file(REMOVE_RECURSE
  "CMakeFiles/test_acsr_terms.dir/test_acsr_terms.cpp.o"
  "CMakeFiles/test_acsr_terms.dir/test_acsr_terms.cpp.o.d"
  "test_acsr_terms"
  "test_acsr_terms.pdb"
  "test_acsr_terms[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_acsr_terms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
