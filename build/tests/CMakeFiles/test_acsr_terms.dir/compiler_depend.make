# Empty compiler generated dependencies file for test_acsr_terms.
# This may be replaced when dependencies are built.
