file(REMOVE_RECURSE
  "CMakeFiles/test_aadl_frontend.dir/test_aadl_frontend.cpp.o"
  "CMakeFiles/test_aadl_frontend.dir/test_aadl_frontend.cpp.o.d"
  "test_aadl_frontend"
  "test_aadl_frontend.pdb"
  "test_aadl_frontend[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_aadl_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
