# Empty compiler generated dependencies file for test_acsr_figures.
# This may be replaced when dependencies are built.
