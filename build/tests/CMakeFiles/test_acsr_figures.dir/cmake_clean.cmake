file(REMOVE_RECURSE
  "CMakeFiles/test_acsr_figures.dir/test_acsr_figures.cpp.o"
  "CMakeFiles/test_acsr_figures.dir/test_acsr_figures.cpp.o.d"
  "test_acsr_figures"
  "test_acsr_figures.pdb"
  "test_acsr_figures[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_acsr_figures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
