# Empty compiler generated dependencies file for test_cruise_control.
# This may be replaced when dependencies are built.
