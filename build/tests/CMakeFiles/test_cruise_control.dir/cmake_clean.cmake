file(REMOVE_RECURSE
  "CMakeFiles/test_cruise_control.dir/test_cruise_control.cpp.o"
  "CMakeFiles/test_cruise_control.dir/test_cruise_control.cpp.o.d"
  "test_cruise_control"
  "test_cruise_control.pdb"
  "test_cruise_control[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cruise_control.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
