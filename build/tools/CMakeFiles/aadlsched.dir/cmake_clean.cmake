file(REMOVE_RECURSE
  "CMakeFiles/aadlsched.dir/aadlsched.cpp.o"
  "CMakeFiles/aadlsched.dir/aadlsched.cpp.o.d"
  "aadlsched"
  "aadlsched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aadlsched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
