# Empty dependencies file for aadlsched.
# This may be replaced when dependencies are built.
