file(REMOVE_RECURSE
  "CMakeFiles/avionics.dir/avionics.cpp.o"
  "CMakeFiles/avionics.dir/avionics.cpp.o.d"
  "avionics"
  "avionics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/avionics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
