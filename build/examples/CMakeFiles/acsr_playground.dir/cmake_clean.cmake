file(REMOVE_RECURSE
  "CMakeFiles/acsr_playground.dir/acsr_playground.cpp.o"
  "CMakeFiles/acsr_playground.dir/acsr_playground.cpp.o.d"
  "acsr_playground"
  "acsr_playground.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acsr_playground.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
