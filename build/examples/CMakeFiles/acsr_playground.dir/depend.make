# Empty dependencies file for acsr_playground.
# This may be replaced when dependencies are built.
