file(REMOVE_RECURSE
  "CMakeFiles/failing_scenario.dir/failing_scenario.cpp.o"
  "CMakeFiles/failing_scenario.dir/failing_scenario.cpp.o.d"
  "failing_scenario"
  "failing_scenario.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/failing_scenario.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
