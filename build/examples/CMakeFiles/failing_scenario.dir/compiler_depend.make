# Empty compiler generated dependencies file for failing_scenario.
# This may be replaced when dependencies are built.
