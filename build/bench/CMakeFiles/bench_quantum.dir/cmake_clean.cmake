file(REMOVE_RECURSE
  "CMakeFiles/bench_quantum.dir/bench_quantum.cpp.o"
  "CMakeFiles/bench_quantum.dir/bench_quantum.cpp.o.d"
  "bench_quantum"
  "bench_quantum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_quantum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
