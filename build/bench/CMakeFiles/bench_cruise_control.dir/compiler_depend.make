# Empty compiler generated dependencies file for bench_cruise_control.
# This may be replaced when dependencies are built.
