file(REMOVE_RECURSE
  "CMakeFiles/bench_cruise_control.dir/bench_cruise_control.cpp.o"
  "CMakeFiles/bench_cruise_control.dir/bench_cruise_control.cpp.o.d"
  "bench_cruise_control"
  "bench_cruise_control.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cruise_control.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
