
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_parallel.cpp" "bench/CMakeFiles/bench_parallel.dir/bench_parallel.cpp.o" "gcc" "bench/CMakeFiles/bench_parallel.dir/bench_parallel.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/aadlsched_core.dir/DependInfo.cmake"
  "/root/repo/build/src/translate/CMakeFiles/aadlsched_translate.dir/DependInfo.cmake"
  "/root/repo/build/src/aadl/CMakeFiles/aadlsched_aadl.dir/DependInfo.cmake"
  "/root/repo/build/src/versa/CMakeFiles/aadlsched_versa.dir/DependInfo.cmake"
  "/root/repo/build/src/acsr/CMakeFiles/aadlsched_acsr.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/aadlsched_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/aadlsched_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
