file(REMOVE_RECURSE
  "libaadlsched_versa.a"
)
