# Empty compiler generated dependencies file for aadlsched_versa.
# This may be replaced when dependencies are built.
