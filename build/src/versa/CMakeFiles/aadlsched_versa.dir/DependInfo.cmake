
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/versa/explorer.cpp" "src/versa/CMakeFiles/aadlsched_versa.dir/explorer.cpp.o" "gcc" "src/versa/CMakeFiles/aadlsched_versa.dir/explorer.cpp.o.d"
  "/root/repo/src/versa/inspection.cpp" "src/versa/CMakeFiles/aadlsched_versa.dir/inspection.cpp.o" "gcc" "src/versa/CMakeFiles/aadlsched_versa.dir/inspection.cpp.o.d"
  "/root/repo/src/versa/sweep.cpp" "src/versa/CMakeFiles/aadlsched_versa.dir/sweep.cpp.o" "gcc" "src/versa/CMakeFiles/aadlsched_versa.dir/sweep.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/acsr/CMakeFiles/aadlsched_acsr.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/aadlsched_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
