file(REMOVE_RECURSE
  "CMakeFiles/aadlsched_versa.dir/explorer.cpp.o"
  "CMakeFiles/aadlsched_versa.dir/explorer.cpp.o.d"
  "CMakeFiles/aadlsched_versa.dir/inspection.cpp.o"
  "CMakeFiles/aadlsched_versa.dir/inspection.cpp.o.d"
  "CMakeFiles/aadlsched_versa.dir/sweep.cpp.o"
  "CMakeFiles/aadlsched_versa.dir/sweep.cpp.o.d"
  "libaadlsched_versa.a"
  "libaadlsched_versa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aadlsched_versa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
