file(REMOVE_RECURSE
  "CMakeFiles/aadlsched_translate.dir/translator.cpp.o"
  "CMakeFiles/aadlsched_translate.dir/translator.cpp.o.d"
  "libaadlsched_translate.a"
  "libaadlsched_translate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aadlsched_translate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
