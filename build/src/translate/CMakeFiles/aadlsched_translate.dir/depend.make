# Empty dependencies file for aadlsched_translate.
# This may be replaced when dependencies are built.
