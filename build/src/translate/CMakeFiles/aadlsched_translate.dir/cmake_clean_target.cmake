file(REMOVE_RECURSE
  "libaadlsched_translate.a"
)
