
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/util/diagnostics.cpp" "src/util/CMakeFiles/aadlsched_util.dir/diagnostics.cpp.o" "gcc" "src/util/CMakeFiles/aadlsched_util.dir/diagnostics.cpp.o.d"
  "/root/repo/src/util/interner.cpp" "src/util/CMakeFiles/aadlsched_util.dir/interner.cpp.o" "gcc" "src/util/CMakeFiles/aadlsched_util.dir/interner.cpp.o.d"
  "/root/repo/src/util/numeric.cpp" "src/util/CMakeFiles/aadlsched_util.dir/numeric.cpp.o" "gcc" "src/util/CMakeFiles/aadlsched_util.dir/numeric.cpp.o.d"
  "/root/repo/src/util/string_utils.cpp" "src/util/CMakeFiles/aadlsched_util.dir/string_utils.cpp.o" "gcc" "src/util/CMakeFiles/aadlsched_util.dir/string_utils.cpp.o.d"
  "/root/repo/src/util/thread_pool.cpp" "src/util/CMakeFiles/aadlsched_util.dir/thread_pool.cpp.o" "gcc" "src/util/CMakeFiles/aadlsched_util.dir/thread_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
