# Empty compiler generated dependencies file for aadlsched_util.
# This may be replaced when dependencies are built.
