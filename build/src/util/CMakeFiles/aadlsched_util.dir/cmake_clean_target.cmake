file(REMOVE_RECURSE
  "libaadlsched_util.a"
)
