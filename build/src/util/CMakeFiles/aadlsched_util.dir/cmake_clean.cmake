file(REMOVE_RECURSE
  "CMakeFiles/aadlsched_util.dir/diagnostics.cpp.o"
  "CMakeFiles/aadlsched_util.dir/diagnostics.cpp.o.d"
  "CMakeFiles/aadlsched_util.dir/interner.cpp.o"
  "CMakeFiles/aadlsched_util.dir/interner.cpp.o.d"
  "CMakeFiles/aadlsched_util.dir/numeric.cpp.o"
  "CMakeFiles/aadlsched_util.dir/numeric.cpp.o.d"
  "CMakeFiles/aadlsched_util.dir/string_utils.cpp.o"
  "CMakeFiles/aadlsched_util.dir/string_utils.cpp.o.d"
  "CMakeFiles/aadlsched_util.dir/thread_pool.cpp.o"
  "CMakeFiles/aadlsched_util.dir/thread_pool.cpp.o.d"
  "libaadlsched_util.a"
  "libaadlsched_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aadlsched_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
