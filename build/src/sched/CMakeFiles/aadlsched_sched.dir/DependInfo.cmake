
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/analysis.cpp" "src/sched/CMakeFiles/aadlsched_sched.dir/analysis.cpp.o" "gcc" "src/sched/CMakeFiles/aadlsched_sched.dir/analysis.cpp.o.d"
  "/root/repo/src/sched/simulator.cpp" "src/sched/CMakeFiles/aadlsched_sched.dir/simulator.cpp.o" "gcc" "src/sched/CMakeFiles/aadlsched_sched.dir/simulator.cpp.o.d"
  "/root/repo/src/sched/task.cpp" "src/sched/CMakeFiles/aadlsched_sched.dir/task.cpp.o" "gcc" "src/sched/CMakeFiles/aadlsched_sched.dir/task.cpp.o.d"
  "/root/repo/src/sched/workload.cpp" "src/sched/CMakeFiles/aadlsched_sched.dir/workload.cpp.o" "gcc" "src/sched/CMakeFiles/aadlsched_sched.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/aadlsched_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
