file(REMOVE_RECURSE
  "CMakeFiles/aadlsched_sched.dir/analysis.cpp.o"
  "CMakeFiles/aadlsched_sched.dir/analysis.cpp.o.d"
  "CMakeFiles/aadlsched_sched.dir/simulator.cpp.o"
  "CMakeFiles/aadlsched_sched.dir/simulator.cpp.o.d"
  "CMakeFiles/aadlsched_sched.dir/task.cpp.o"
  "CMakeFiles/aadlsched_sched.dir/task.cpp.o.d"
  "CMakeFiles/aadlsched_sched.dir/workload.cpp.o"
  "CMakeFiles/aadlsched_sched.dir/workload.cpp.o.d"
  "libaadlsched_sched.a"
  "libaadlsched_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aadlsched_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
