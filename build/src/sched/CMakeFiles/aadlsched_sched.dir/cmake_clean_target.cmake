file(REMOVE_RECURSE
  "libaadlsched_sched.a"
)
