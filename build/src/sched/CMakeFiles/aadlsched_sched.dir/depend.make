# Empty dependencies file for aadlsched_sched.
# This may be replaced when dependencies are built.
