file(REMOVE_RECURSE
  "libaadlsched_acsr.a"
)
