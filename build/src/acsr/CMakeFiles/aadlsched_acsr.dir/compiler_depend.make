# Empty compiler generated dependencies file for aadlsched_acsr.
# This may be replaced when dependencies are built.
