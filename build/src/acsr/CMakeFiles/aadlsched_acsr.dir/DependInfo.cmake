
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/acsr/action.cpp" "src/acsr/CMakeFiles/aadlsched_acsr.dir/action.cpp.o" "gcc" "src/acsr/CMakeFiles/aadlsched_acsr.dir/action.cpp.o.d"
  "/root/repo/src/acsr/context.cpp" "src/acsr/CMakeFiles/aadlsched_acsr.dir/context.cpp.o" "gcc" "src/acsr/CMakeFiles/aadlsched_acsr.dir/context.cpp.o.d"
  "/root/repo/src/acsr/expr.cpp" "src/acsr/CMakeFiles/aadlsched_acsr.dir/expr.cpp.o" "gcc" "src/acsr/CMakeFiles/aadlsched_acsr.dir/expr.cpp.o.d"
  "/root/repo/src/acsr/label.cpp" "src/acsr/CMakeFiles/aadlsched_acsr.dir/label.cpp.o" "gcc" "src/acsr/CMakeFiles/aadlsched_acsr.dir/label.cpp.o.d"
  "/root/repo/src/acsr/parser.cpp" "src/acsr/CMakeFiles/aadlsched_acsr.dir/parser.cpp.o" "gcc" "src/acsr/CMakeFiles/aadlsched_acsr.dir/parser.cpp.o.d"
  "/root/repo/src/acsr/preemption.cpp" "src/acsr/CMakeFiles/aadlsched_acsr.dir/preemption.cpp.o" "gcc" "src/acsr/CMakeFiles/aadlsched_acsr.dir/preemption.cpp.o.d"
  "/root/repo/src/acsr/printer.cpp" "src/acsr/CMakeFiles/aadlsched_acsr.dir/printer.cpp.o" "gcc" "src/acsr/CMakeFiles/aadlsched_acsr.dir/printer.cpp.o.d"
  "/root/repo/src/acsr/semantics.cpp" "src/acsr/CMakeFiles/aadlsched_acsr.dir/semantics.cpp.o" "gcc" "src/acsr/CMakeFiles/aadlsched_acsr.dir/semantics.cpp.o.d"
  "/root/repo/src/acsr/term.cpp" "src/acsr/CMakeFiles/aadlsched_acsr.dir/term.cpp.o" "gcc" "src/acsr/CMakeFiles/aadlsched_acsr.dir/term.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/aadlsched_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
