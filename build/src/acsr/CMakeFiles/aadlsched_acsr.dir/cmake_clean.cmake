file(REMOVE_RECURSE
  "CMakeFiles/aadlsched_acsr.dir/action.cpp.o"
  "CMakeFiles/aadlsched_acsr.dir/action.cpp.o.d"
  "CMakeFiles/aadlsched_acsr.dir/context.cpp.o"
  "CMakeFiles/aadlsched_acsr.dir/context.cpp.o.d"
  "CMakeFiles/aadlsched_acsr.dir/expr.cpp.o"
  "CMakeFiles/aadlsched_acsr.dir/expr.cpp.o.d"
  "CMakeFiles/aadlsched_acsr.dir/label.cpp.o"
  "CMakeFiles/aadlsched_acsr.dir/label.cpp.o.d"
  "CMakeFiles/aadlsched_acsr.dir/parser.cpp.o"
  "CMakeFiles/aadlsched_acsr.dir/parser.cpp.o.d"
  "CMakeFiles/aadlsched_acsr.dir/preemption.cpp.o"
  "CMakeFiles/aadlsched_acsr.dir/preemption.cpp.o.d"
  "CMakeFiles/aadlsched_acsr.dir/printer.cpp.o"
  "CMakeFiles/aadlsched_acsr.dir/printer.cpp.o.d"
  "CMakeFiles/aadlsched_acsr.dir/semantics.cpp.o"
  "CMakeFiles/aadlsched_acsr.dir/semantics.cpp.o.d"
  "CMakeFiles/aadlsched_acsr.dir/term.cpp.o"
  "CMakeFiles/aadlsched_acsr.dir/term.cpp.o.d"
  "libaadlsched_acsr.a"
  "libaadlsched_acsr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aadlsched_acsr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
