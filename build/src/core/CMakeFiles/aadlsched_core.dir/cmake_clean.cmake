file(REMOVE_RECURSE
  "CMakeFiles/aadlsched_core.dir/analyzer.cpp.o"
  "CMakeFiles/aadlsched_core.dir/analyzer.cpp.o.d"
  "CMakeFiles/aadlsched_core.dir/taskset_aadl.cpp.o"
  "CMakeFiles/aadlsched_core.dir/taskset_aadl.cpp.o.d"
  "CMakeFiles/aadlsched_core.dir/taskset_extract.cpp.o"
  "CMakeFiles/aadlsched_core.dir/taskset_extract.cpp.o.d"
  "libaadlsched_core.a"
  "libaadlsched_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aadlsched_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
