# Empty dependencies file for aadlsched_core.
# This may be replaced when dependencies are built.
