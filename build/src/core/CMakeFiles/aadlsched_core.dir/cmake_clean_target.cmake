file(REMOVE_RECURSE
  "libaadlsched_core.a"
)
