
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/aadl/ast.cpp" "src/aadl/CMakeFiles/aadlsched_aadl.dir/ast.cpp.o" "gcc" "src/aadl/CMakeFiles/aadlsched_aadl.dir/ast.cpp.o.d"
  "/root/repo/src/aadl/instance.cpp" "src/aadl/CMakeFiles/aadlsched_aadl.dir/instance.cpp.o" "gcc" "src/aadl/CMakeFiles/aadlsched_aadl.dir/instance.cpp.o.d"
  "/root/repo/src/aadl/lexer.cpp" "src/aadl/CMakeFiles/aadlsched_aadl.dir/lexer.cpp.o" "gcc" "src/aadl/CMakeFiles/aadlsched_aadl.dir/lexer.cpp.o.d"
  "/root/repo/src/aadl/parser.cpp" "src/aadl/CMakeFiles/aadlsched_aadl.dir/parser.cpp.o" "gcc" "src/aadl/CMakeFiles/aadlsched_aadl.dir/parser.cpp.o.d"
  "/root/repo/src/aadl/properties.cpp" "src/aadl/CMakeFiles/aadlsched_aadl.dir/properties.cpp.o" "gcc" "src/aadl/CMakeFiles/aadlsched_aadl.dir/properties.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/aadlsched_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
