file(REMOVE_RECURSE
  "libaadlsched_aadl.a"
)
