file(REMOVE_RECURSE
  "CMakeFiles/aadlsched_aadl.dir/ast.cpp.o"
  "CMakeFiles/aadlsched_aadl.dir/ast.cpp.o.d"
  "CMakeFiles/aadlsched_aadl.dir/instance.cpp.o"
  "CMakeFiles/aadlsched_aadl.dir/instance.cpp.o.d"
  "CMakeFiles/aadlsched_aadl.dir/lexer.cpp.o"
  "CMakeFiles/aadlsched_aadl.dir/lexer.cpp.o.d"
  "CMakeFiles/aadlsched_aadl.dir/parser.cpp.o"
  "CMakeFiles/aadlsched_aadl.dir/parser.cpp.o.d"
  "CMakeFiles/aadlsched_aadl.dir/properties.cpp.o"
  "CMakeFiles/aadlsched_aadl.dir/properties.cpp.o.d"
  "libaadlsched_aadl.a"
  "libaadlsched_aadl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aadlsched_aadl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
