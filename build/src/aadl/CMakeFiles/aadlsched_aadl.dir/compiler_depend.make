# Empty compiler generated dependencies file for aadlsched_aadl.
# This may be replaced when dependencies are built.
