#!/usr/bin/env bash
# Machine-readable benchmark runs (satellite of DESIGN.md §11): drive the
# bench binaries in --json mode and leave google-benchmark JSON reports
# next to the build for CI to archive:
#
#   BENCH_explore.json     state-space exploration timings  (bench_statespace)
#   BENCH_service.json     service serve-path timings       (bench_service)
#   BENCH_checkpoint.json  checkpoint capture/resume timings (bench_checkpoint)
#   BENCH_reduction.json   reduction-ablation states/bytes  (bench_reduction)
#   BENCH_lint.json        static screening decide rate/cost (bench_lint)
#   BENCH_symbolic.json    symbolic engine zones/decide rate (bench_symbolic)
#   BENCH_exp.json         experiment harness models/sec     (bench_exp)
#
# Usage: run_benches.sh <build-dir> [--smoke] [--out <dir>]
#
#   --smoke   forward the benches' smoke mode: ~10 ms timing repetitions,
#             no experiment tables — the CI gate that the bench binaries
#             and their JSON output stay alive, not a measurement
#   --out     where to write the BENCH_*.json files (default: <build-dir>)
set -eu

[ $# -ge 1 ] || { echo "usage: run_benches.sh <build-dir> [--smoke] [--out dir]" >&2; exit 2; }
build=$1; shift

smoke=""
out=$build
while [ $# -gt 0 ]; do
  case $1 in
    --smoke) smoke="--smoke" ;;
    --out) out=$2; shift ;;
    *) echo "unknown option '$1'" >&2; exit 2 ;;
  esac
  shift
done
mkdir -p "$out"

run() {  # run <binary> <report>
  bin=$build/bench/$1
  [ -x "$bin" ] || { echo "missing bench binary $bin (build the repo first)" >&2; exit 2; }
  echo "== $1 -> $out/$2"
  "$bin" $smoke --json "$out/$2"
  # A report that parses and contains at least one benchmark row is the
  # smoke-mode acceptance; a truncated write fails here, not in a consumer.
  python3 - "$out/$2" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    report = json.load(f)
assert report.get("benchmarks"), "no benchmark rows in " + sys.argv[1]
print("   %d benchmark rows ok" % len(report["benchmarks"]))
EOF
}

run bench_statespace BENCH_explore.json
run bench_service BENCH_service.json
run bench_checkpoint BENCH_checkpoint.json
run bench_reduction BENCH_reduction.json
run bench_lint BENCH_lint.json
run bench_symbolic BENCH_symbolic.json
run bench_exp BENCH_exp.json
echo "benchmark reports written to $out"
