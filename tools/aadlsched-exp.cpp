// aadlsched-exp — fleet-scale experiment harness (EXPERIMENTS.md E15).
//
//   aadlsched-exp <spec.json> [options]
//
//   --out <file>          report path (default experiment_report.json)
//   --connect <host:port> submit every model to a running aadlschedd
//                         instead of analyzing in-process; the verdict
//                         data in the report is byte-identical either way
//   --connect-timeout-ms <n> / --io-timeout-ms <n> / --connect-retries <n>
//                         (with --connect) transport policy, as aadlsched
//   --workers <n>         fan-out concurrency (overrides the spec;
//                         0 = hardware concurrency)
//   --models-dir <dir>    also write every generated model
//                         (<name>-c<cell>-s<seed>.aadl) and its canonical
//                         result object (.result.json) under <dir>
//   --print               print the report to stdout as well
//   --quiet               suppress progress on stderr
//
// Exit codes: 0 = experiment completed (per-model analysis errors are
// *data* — they land in the report's outcome tallies, they do not fail the
// harness); 2 = usage / unreadable or invalid spec (e.g. an empty period
// set, which the workload generator rejects with a diagnostic); 4 = at
// least one model could not reach the daemon after all retries.
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <sys/stat.h>

#include "exp/report.hpp"
#include "exp/runner.hpp"
#include "exp/spec.hpp"
#include "server/tcp.hpp"
#include "util/string_utils.hpp"

namespace {

using namespace aadlsched;

int usage() {
  std::cerr <<
      "usage: aadlsched-exp <spec.json> [--out file] [--connect host:port]\n"
      "                     [--connect-timeout-ms n] [--io-timeout-ms n]\n"
      "                     [--connect-retries n] [--workers n]\n"
      "                     [--models-dir dir] [--print] [--quiet]\n";
  return 2;
}

std::optional<std::int64_t> parse_option(const char* flag, const char* value,
                                         std::int64_t min, std::int64_t max) {
  const auto n = util::parse_int64(value);
  if (!n || *n < min || *n > max) {
    std::cerr << "invalid value '" << value << "' for " << flag
              << " (expected an integer in [" << min << ", " << max
              << "])\n";
    return std::nullopt;
  }
  return n;
}

std::optional<std::string> read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

bool write_file(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::trunc | std::ios::binary);
  if (!out) return false;
  out << text;
  return out.good();
}

/// Regenerate and dump every model plus its result object. Generation is
/// deterministic, so re-rendering here reproduces exactly what the runner
/// submitted — no need to keep thousands of model texts in memory.
bool dump_models(const std::string& dir, const exp::ExperimentSpec& spec,
                 const exp::ExperimentResult& result) {
  ::mkdir(dir.c_str(), 0777);  // best-effort; the write below reports
  for (std::size_t ci = 0; ci < result.cells.size(); ++ci) {
    for (const exp::RunOutcome& run : result.cells[ci].runs) {
      if (!run.generated) continue;
      std::string error;
      const auto model = exp::render_model(spec, result.cells[ci].cell, ci,
                                           run.seed, error);
      if (!model) continue;  // was generable during the run; defensive
      const std::string stem = dir + "/" + spec.name + "-c" +
                               std::to_string(ci) + "-s" +
                               std::to_string(run.seed);
      if (!write_file(stem + ".aadl", *model)) {
        std::cerr << "cannot write '" << stem << ".aadl'\n";
        return false;
      }
      if (!run.result_json.empty() &&
          !write_file(stem + ".result.json", run.result_json + "\n")) {
        std::cerr << "cannot write '" << stem << ".result.json'\n";
        return false;
      }
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string spec_path;
  std::string out_path = "experiment_report.json";
  std::string connect_endpoint;
  std::string models_dir;
  server::RetryPolicy retry;
  bool retry_set = false;
  std::optional<std::size_t> workers_override;
  bool print_report = false;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--connect" && i + 1 < argc) {
      connect_endpoint = argv[++i];
    } else if (arg == "--connect-timeout-ms" && i + 1 < argc) {
      const auto n =
          parse_option("--connect-timeout-ms", argv[++i], 0, 1'000'000'000);
      if (!n) return usage();
      retry.connect_timeout_ms = static_cast<double>(*n);
      retry_set = true;
    } else if (arg == "--io-timeout-ms" && i + 1 < argc) {
      const auto n =
          parse_option("--io-timeout-ms", argv[++i], 0, 1'000'000'000);
      if (!n) return usage();
      retry.io_timeout_ms = static_cast<double>(*n);
      retry_set = true;
    } else if (arg == "--connect-retries" && i + 1 < argc) {
      const auto n = parse_option("--connect-retries", argv[++i], 0, 100);
      if (!n) return usage();
      retry.retries = static_cast<unsigned>(*n);
      retry_set = true;
    } else if (arg == "--workers" && i + 1 < argc) {
      const auto n = parse_option("--workers", argv[++i], 0, 65536);
      if (!n) return usage();
      workers_override = static_cast<std::size_t>(*n);
    } else if (arg == "--models-dir" && i + 1 < argc) {
      models_dir = argv[++i];
    } else if (arg == "--print") {
      print_report = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown option '" << arg << "'\n";
      return usage();
    } else if (spec_path.empty()) {
      spec_path = arg;
    } else {
      std::cerr << "unexpected argument '" << arg << "'\n";
      return usage();
    }
  }
  if (spec_path.empty()) return usage();
  if (retry_set && connect_endpoint.empty()) {
    std::cerr << "--connect-timeout-ms/--io-timeout-ms/--connect-retries "
                 "require --connect\n";
    return usage();
  }

  const auto text = read_file(spec_path);
  if (!text) {
    std::cerr << "cannot open spec '" << spec_path << "'\n";
    return 2;
  }
  std::string error;
  auto spec = exp::parse_experiment_spec(*text, error);
  if (!spec) {
    std::cerr << spec_path << ": " << error << "\n";
    return 2;
  }
  if (workers_override) spec->workers = *workers_override;

  std::optional<exp::DaemonEndpoint> daemon;
  if (!connect_endpoint.empty()) {
    exp::DaemonEndpoint ep;
    if (!server::parse_endpoint(connect_endpoint, ep.host, ep.port)) {
      std::cerr << "invalid --connect endpoint '" << connect_endpoint
                << "' (expected HOST:PORT)\n";
      return 2;
    }
    ep.retry = retry;
    daemon = std::move(ep);
  }

  const std::size_t total =
      exp::expand_grid(*spec).size() * spec->seed_count;
  if (!quiet)
    std::cerr << "experiment '" << spec->name << "': " << total
              << " models, backend "
              << (daemon ? "daemon " + connect_endpoint
                         : std::string("in-process"))
              << "\n";
  const std::size_t step = total >= 20 ? total / 10 : total;
  const auto progress = [&](std::size_t done, std::size_t n) {
    if (!quiet && (done % step == 0 || done == n))
      std::cerr << "  " << done << "/" << n << " analyzed\n";
  };

  const exp::ExperimentResult result =
      exp::run_experiment(*spec, daemon, progress);
  const std::string report = exp::render_report(*spec, result);

  if (!write_file(out_path, report)) {
    std::cerr << "cannot write report '" << out_path << "'\n";
    return 2;
  }
  if (!quiet)
    std::cerr << "report written to " << out_path << " ("
              << result.total_runs << " runs, "
              << result.transport_failures << " transport failures, "
              << static_cast<long>(result.total_ms) << " ms)\n";
  if (print_report) std::cout << report;

  if (!models_dir.empty() && !dump_models(models_dir, *spec, result))
    return 2;

  return result.transport_failures > 0 ? 4 : 0;
}
