#!/usr/bin/env python3
"""Benchmark regression gate: fresh BENCH_*.json vs the committed baseline.

Compares the google-benchmark reports a fresh `tools/run_benches.sh` run
wrote against the snapshots committed under bench/baselines/, over a small
allowlist of derived metrics (not every raw timing: smoke-mode timings are
deliberately short and most rows are machine-speed trivia). Each metric
carries a direction, a relative tolerance, and an absolute noise floor —
a change only fails the gate when it is worse in the metric's bad
direction, by more than the tolerance, AND by more than the floor.

Exit codes: 0 = no regression, 1 = regression, 2 = bad invocation or a
missing/corrupt report.

Refreshing baselines after an intentional perf change:

    bash tools/run_benches.sh build --smoke --out bench/baselines

then commit the changed BENCH_*.json files with a note on what moved.

Usage:
    bench_diff.py [--baseline bench/baselines] [--fresh bench-reports]
                  [--tolerance 0.15]
"""

import argparse
import json
import os
import sys


def row(report, name):
    for b in report.get("benchmarks", []):
        if b.get("name") == name:
            return b
    raise KeyError("benchmark row '%s' not found" % name)


def seconds(bench_row):
    unit = {"ns": 1e-9, "us": 1e-6, "ms": 1e-3, "s": 1.0}[
        bench_row.get("time_unit", "ns")]
    return bench_row["real_time"] * unit


# --- derived metrics -------------------------------------------------------

def explore_states_per_sec(reports):
    b = row(reports["BENCH_explore.json"], "BM_Scaling/6")
    return b["states"] / seconds(b)


def warm_serve_us(reports):
    return seconds(row(reports["BENCH_service.json"],
                       "BM_ServeCachedMemory")) * 1e6


def warm_serve_disk_us(reports):
    # Two digest-verified disk loads per iteration (the keys alternate
    # through a one-entry memory tier); report the per-serve cost.
    return seconds(row(reports["BENCH_service.json"],
                       "BM_ServeCachedDisk")) * 1e6 / 2.0


def resume_ratio(reports):
    r = reports["BENCH_checkpoint.json"]
    return seconds(row(r, "BM_ResumedExploration")) / seconds(
        row(r, "BM_ColdFullExploration"))


def reduction_states_ratio(reports):
    r = reports["BENCH_reduction.json"]
    return row(r, "BM_ReductionNone")["states"] / row(
        r, "BM_ReductionBoth")["states"]


def storm_bytes_per_state(reports):
    return row(reports["BENCH_reduction.json"],
               "BM_StormBytesPerState")["bytes_per_state"]


def lint_static_decide_rate(reports):
    return row(reports["BENCH_lint.json"], "BM_LintStaticScreen")[
        "decide_rate"]


def lint_us_per_model(reports):
    return seconds(row(reports["BENCH_lint.json"],
                       "BM_LintStaticScreen")) * 1e6


def symbolic_zones_per_sec(reports):
    b = row(reports["BENCH_symbolic.json"], "BM_SymbolicSlowPeriodic")
    return b["zones"] / seconds(b)


def symbolic_decide_rate(reports):
    return row(reports["BENCH_symbolic.json"],
               "BM_SymbolicDecidePortfolio")["decide_rate"]


def exp_models_per_sec(reports):
    b = row(reports["BENCH_exp.json"], "BM_ExperimentGridInProcess")
    return b["models"] / seconds(b)


def exp_render_us(reports):
    return seconds(row(reports["BENCH_exp.json"], "BM_RenderModel")) * 1e6


class Metric:
    def __init__(self, name, derive, higher_is_better, floor, unit):
        self.name = name
        self.derive = derive
        self.higher_is_better = higher_is_better
        # Absolute change below the floor is timer/allocator noise no matter
        # the percentage (e.g. a 9 us -> 11 us warm serve is not a 22%
        # regression worth a red build).
        self.floor = floor
        self.unit = unit


# The gated metrics (ROADMAP perf item): exploration throughput, the warm
# serve path, how much cheaper a resume is than a cold run, the two
# reduction-layer numbers (state collapse on the symmetric fixture must
# stay >= 2x; bytes/state on storm tracks the storage representation), and
# the static screening numbers (DESIGN.md §14: the decide rate must not
# drop — a pass silently losing its fragment pushes models back to
# exploration — and the per-model screen must stay in microseconds).
METRICS = [
    Metric("explore_states_per_sec", explore_states_per_sec,
           higher_is_better=True, floor=500.0, unit="states/s"),
    Metric("warm_serve_us", warm_serve_us,
           higher_is_better=False, floor=5.0, unit="us"),
    # The disk serve re-reads, digest-verifies, and re-parses the artifact;
    # it is fs-cache sensitive, so the noise floor is wider than the
    # memory path's.
    Metric("warm_serve_disk_us", warm_serve_disk_us,
           higher_is_better=False, floor=50.0, unit="us"),
    Metric("resume_ratio", resume_ratio,
           higher_is_better=False, floor=0.05, unit="x"),
    Metric("reduction_states_ratio", reduction_states_ratio,
           higher_is_better=True, floor=0.1, unit="x"),
    Metric("storm_bytes_per_state", storm_bytes_per_state,
           higher_is_better=False, floor=64.0, unit="B"),
    Metric("lint_static_decide_rate", lint_static_decide_rate,
           higher_is_better=True, floor=0.02, unit="x"),
    Metric("lint_us_per_model", lint_us_per_model,
           higher_is_better=False, floor=50.0, unit="us"),
    # Symbolic engine (DESIGN.md §16): class-graph throughput on the
    # long-hyperperiod fixture, and the fragment's conclusive-decision
    # fraction over its portfolio (a drop means the engine started
    # refusing or truncating models it must own).
    Metric("symbolic_zones_per_sec", symbolic_zones_per_sec,
           higher_is_better=True, floor=500.0, unit="zones/s"),
    Metric("symbolic_decide_rate", symbolic_decide_rate,
           higher_is_better=True, floor=0.02, unit="x"),
    # Experiment harness (DESIGN.md §17): end-to-end models/sec through the
    # in-process backend — the fleet driver's throughput — and the harness's
    # own per-model rendering overhead, which must stay in microseconds so
    # generation never starves the analysis workers.
    Metric("exp_models_per_sec", exp_models_per_sec,
           higher_is_better=True, floor=20.0, unit="models/s"),
    Metric("exp_render_us", exp_render_us,
           higher_is_better=False, floor=50.0, unit="us"),
]


def load_reports(directory):
    reports = {}
    for fname in sorted(os.listdir(directory)):
        if not (fname.startswith("BENCH_") and fname.endswith(".json")):
            continue
        with open(os.path.join(directory, fname)) as f:
            reports[fname] = json.load(f)
    if not reports:
        raise FileNotFoundError("no BENCH_*.json in " + directory)
    return reports


def main():
    ap = argparse.ArgumentParser(
        description="fail on benchmark regressions vs committed baselines")
    ap.add_argument("--baseline", default="bench/baselines",
                    help="directory with the committed BENCH_*.json")
    ap.add_argument("--fresh", default="bench-reports",
                    help="directory with the fresh run's BENCH_*.json")
    ap.add_argument("--tolerance", type=float, default=0.15,
                    help="relative regression tolerance (default 0.15)")
    args = ap.parse_args()

    try:
        baseline = load_reports(args.baseline)
        fresh = load_reports(args.fresh)
    except (FileNotFoundError, json.JSONDecodeError) as e:
        print("bench_diff: %s" % e, file=sys.stderr)
        return 2

    regressions = 0
    print("%-28s %12s %12s %9s  %s" % ("metric", "baseline", "fresh",
                                       "delta", "status"))
    for m in METRICS:
        try:
            base = m.derive(baseline)
        except KeyError as e:
            print("%-28s %12s %12s %9s  no baseline (%s) — refresh "
                  "bench/baselines" % (m.name, "-", "-", "-", e))
            regressions += 1
            continue
        try:
            cur = m.derive(fresh)
        except KeyError as e:
            print("%-28s %12.2f %12s %9s  MISSING in fresh run (%s)"
                  % (m.name, base, "-", "-", e))
            regressions += 1
            continue

        delta = cur - base
        rel = delta / base if base else 0.0
        worse = -delta if m.higher_is_better else delta
        worse_rel = -rel if m.higher_is_better else rel
        if worse > m.floor and worse_rel > args.tolerance:
            status = "REGRESSION (>%d%% %s)" % (
                args.tolerance * 100, "drop" if m.higher_is_better else "rise")
            regressions += 1
        elif worse_rel < -args.tolerance:
            status = "improved"
        else:
            status = "ok"
        print("%-28s %12.2f %12.2f %+8.1f%%  %s %s"
              % (m.name, base, cur, rel * 100, status, m.unit))

    if regressions:
        print("\nbench_diff: %d regression(s) beyond %.0f%% tolerance; if "
              "intentional, refresh the baselines (see header)"
              % (regressions, args.tolerance * 100), file=sys.stderr)
        return 1
    print("\nbench_diff: all gated metrics within %.0f%% of baseline"
          % (args.tolerance * 100))
    return 0


if __name__ == "__main__":
    sys.exit(main())
