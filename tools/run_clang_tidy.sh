#!/bin/sh
# Run clang-tidy over the project sources using the compile database that
# CMake exports (CMAKE_EXPORT_COMPILE_COMMANDS is always on, see the
# top-level CMakeLists.txt).
#
#   tools/run_clang_tidy.sh [build-dir] [extra clang-tidy args...]
#
# Exits 0 with a notice when clang-tidy is not installed so CI images
# without LLVM tooling are not broken by this gate.
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build"}
[ $# -gt 0 ] && shift

if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "run_clang_tidy.sh: clang-tidy not found on PATH; skipping" >&2
  exit 0
fi

if [ ! -f "$build_dir/compile_commands.json" ]; then
  echo "run_clang_tidy.sh: $build_dir/compile_commands.json missing;" \
       "configure first: cmake -B $build_dir -S $repo_root" >&2
  exit 1
fi

# Sources only; headers are pulled in via HeaderFilterRegex in .clang-tidy.
files=$(find "$repo_root/src" "$repo_root/tools" -name '*.cpp' | sort)

status=0
for f in $files; do
  clang-tidy -p "$build_dir" --quiet "$@" "$f" || status=1
done
exit $status
