// aadlschedd — the analysis daemon: a long-running server::Service behind a
// TCP socket, turning the paper's interactive OSATE-plugin workflow into a
// cached, concurrently served operation.
//
//   aadlschedd [options]
//
//   --host <addr>            bind address (default 127.0.0.1)
//   --port <n>               TCP port; 0 picks an ephemeral port (default 0)
//   --workers <n>            analysis worker threads (0 = hardware
//                            concurrency; default 1)
//   --cache-capacity <n>     in-memory result cache entries (default 1024;
//                            0 disables the memory tier)
//   --cache-dir <dir>        on-disk result store; survives restarts — a
//                            new daemon on the same directory serves warm
//                            verdicts without re-exploring
//   --max-deadline-ms <n>    cap on any request's wall-clock budget; also
//                            applied to requests that ask for no limit
//   --max-states <n>         cap on any request's state budget
//   --memory-budget-mb <n>   cap on any request's memory budget
//   --no-checkpoint          disable the warm re-exploration checkpoint
//                            store (DESIGN.md §12); budget-bound runs are
//                            not checkpointed and "resume" requests miss
//   --no-reduction           run every request without the state-space
//                            reduction layer (DESIGN.md §13), regardless
//                            of per-request options
//   --engine <e>             force every request onto one exploration
//                            engine (enumerative | symbolic | auto,
//                            DESIGN.md §16), overriding per-request
//                            options before cache-key computation
//   --checkpoint-capacity <n> in-memory checkpoint entries (default 4 —
//                            checkpoints are large)
//   --checkpoint-disk-cap <n> max .ckpt files kept in --cache-dir
//                            (default 16; oldest evicted first)
//   --cache-disk-cap <mb>    byte budget for --cache-dir artifacts; the
//                            maintenance sweep evicts oldest-atime-first
//                            when over it (default 0 = unlimited)
//   --maintenance-interval-ms <n>
//                            period of the background maintenance sweep
//                            (tmp hygiene + GC; default 30000, 0 disables
//                            the thread — the startup sweep still runs)
//
// Several daemons may share one --cache-dir (DESIGN.md §15): every disk
// artifact is digest-verified on read, maintenance is serialized by an
// advisory directory lock, and cohabitants are discovered via the instance
// registry and reported in `stats` (shared.instances) and at startup.
//
// On startup the daemon prints exactly one line
//   aadlschedd listening on HOST:PORT
// to stdout (scripts parse it to discover an ephemeral port), then serves
// until SIGINT/SIGTERM or a client's {"op": "shutdown"} request. Final
// stats are logged to stderr on exit.
//
// Protocol and result schema: DESIGN.md §11. Exit code: 0 clean shutdown,
// 2 startup/usage error.
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <iostream>
#include <limits>
#include <optional>
#include <thread>

#include "server/service.hpp"
#include "server/tcp.hpp"
#include "util/string_utils.hpp"

namespace {

using namespace aadlsched;

int usage() {
  std::cerr <<
      "usage: aadlschedd [--host addr] [--port n] [--workers n]\n"
      "                  [--cache-capacity n] [--cache-dir dir]\n"
      "                  [--max-deadline-ms n] [--max-states n]\n"
      "                  [--memory-budget-mb n] [--no-checkpoint]\n"
      "                  [--checkpoint-capacity n] [--checkpoint-disk-cap n]\n"
      "                  [--cache-disk-cap mb] [--maintenance-interval-ms n]\n"
      "                  [--no-reduction] "
      "[--engine enumerative|symbolic|auto]\n";
  return 2;
}

std::optional<std::int64_t> parse_option(const char* flag, const char* value,
                                         std::int64_t min, std::int64_t max) {
  const auto n = util::parse_int64(value);
  if (!n || *n < min || *n > max) {
    std::cerr << "invalid value '" << value << "' for " << flag
              << " (expected an integer in [" << min << ", " << max
              << "])\n";
    return std::nullopt;
  }
  return n;
}

std::atomic<bool> g_signalled{false};

void on_signal(int) { g_signalled.store(true, std::memory_order_relaxed); }

}  // namespace

int main(int argc, char** argv) {
  using namespace aadlsched;

  server::ServiceConfig cfg;
  server::TcpConfig tcp;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--host" && i + 1 < argc) {
      tcp.host = argv[++i];
    } else if (arg == "--port" && i + 1 < argc) {
      const auto n = parse_option("--port", argv[++i], 0, 65535);
      if (!n) return usage();
      tcp.port = static_cast<std::uint16_t>(*n);
    } else if (arg == "--workers" && i + 1 < argc) {
      const auto n = parse_option("--workers", argv[++i], 0, 4096);
      if (!n) return usage();
      cfg.workers = static_cast<std::size_t>(*n);
    } else if (arg == "--cache-capacity" && i + 1 < argc) {
      const auto n = parse_option("--cache-capacity", argv[++i], 0,
                                  100'000'000);
      if (!n) return usage();
      cfg.cache.memory_capacity = static_cast<std::size_t>(*n);
    } else if (arg == "--cache-dir" && i + 1 < argc) {
      cfg.cache.disk_dir = argv[++i];
    } else if (arg == "--max-deadline-ms" && i + 1 < argc) {
      const auto n = parse_option("--max-deadline-ms", argv[++i], 1,
                                  1'000'000'000);
      if (!n) return usage();
      cfg.max_deadline_ms = static_cast<double>(*n);
    } else if (arg == "--max-states" && i + 1 < argc) {
      const auto n = parse_option("--max-states", argv[++i], 1,
                                  std::numeric_limits<std::int64_t>::max());
      if (!n) return usage();
      cfg.max_states_cap = static_cast<std::uint64_t>(*n);
    } else if (arg == "--memory-budget-mb" && i + 1 < argc) {
      const auto n = parse_option("--memory-budget-mb", argv[++i], 1,
                                  1'000'000'000);
      if (!n) return usage();
      cfg.memory_budget_mb_cap = static_cast<std::uint64_t>(*n);
    } else if (arg == "--no-checkpoint") {
      cfg.cache.checkpoints = false;
    } else if (arg == "--no-reduction") {
      cfg.force_no_reduction = true;
    } else if (arg == "--engine" && i + 1 < argc) {
      const char* value = argv[++i];
      const auto engine = core::engine_from_string(value);
      if (!engine) {
        std::cerr << "invalid value '" << value
                  << "' for --engine (expected enumerative, symbolic or "
                     "auto)\n";
        return usage();
      }
      cfg.force_engine = *engine;
    } else if (arg == "--checkpoint-capacity" && i + 1 < argc) {
      const auto n = parse_option("--checkpoint-capacity", argv[++i], 0,
                                  1'000'000);
      if (!n) return usage();
      cfg.cache.checkpoint_memory_capacity = static_cast<std::size_t>(*n);
    } else if (arg == "--checkpoint-disk-cap" && i + 1 < argc) {
      const auto n = parse_option("--checkpoint-disk-cap", argv[++i], 0,
                                  1'000'000);
      if (!n) return usage();
      cfg.cache.checkpoint_disk_cap = static_cast<std::size_t>(*n);
    } else if (arg == "--cache-disk-cap" && i + 1 < argc) {
      const auto n = parse_option("--cache-disk-cap", argv[++i], 0,
                                  1'000'000'000);
      if (!n) return usage();
      cfg.cache_disk_cap_bytes =
          static_cast<std::uint64_t>(*n) * 1024 * 1024;
    } else if (arg == "--maintenance-interval-ms" && i + 1 < argc) {
      const auto n = parse_option("--maintenance-interval-ms", argv[++i], 0,
                                  1'000'000'000);
      if (!n) return usage();
      cfg.maintenance_interval_ms = static_cast<double>(*n);
    } else {
      std::cerr << "unknown option '" << arg << "'\n";
      return usage();
    }
  }

  server::Service service(cfg);
  server::TcpServer tcp_server(service, tcp);
  std::string error;
  if (!tcp_server.start(error)) {
    std::cerr << "aadlschedd: " << error << "\n";
    return 2;
  }

  // Exactly one discovery line on stdout, flushed, for scripts.
  std::printf("aadlschedd listening on %s:%u\n", tcp.host.c_str(),
              static_cast<unsigned>(tcp_server.port()));
  std::fflush(stdout);

  // Cohabitant report (stderr, so the stdout contract above holds): other
  // live daemons already registered on this cache directory.
  if (auto* janitor = service.janitor()) {
    for (const auto& inst : janitor->live_instances()) {
      if (inst.pid == ::getpid()) continue;
      std::fprintf(stderr,
                   "aadlschedd: sharing cache dir with daemon pid %ld "
                   "(started %s)\n",
                   static_cast<long>(inst.pid), inst.started.c_str());
    }
  }

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);

  // Park until a client shutdown request or a signal. The signal handler
  // can only set a flag, so poll it at a human-imperceptible interval.
  while (!g_signalled.load(std::memory_order_relaxed) &&
         !service.shutting_down()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }

  std::fprintf(stderr, "aadlschedd: shutting down\n");
  const std::string final_stats = service.stats_json();
  tcp_server.stop();
  service.shutdown();
  std::fprintf(stderr, "aadlschedd: final stats %s\n", final_stats.c_str());
  return 0;
}
