// aadlsched — command-line front end, the role of the paper's OSATE plugin.
//
//   aadlsched <model.aadl>... <Root.impl> [options]
//   aadlsched --batch <list-file> [options]
//
//   --quantum <ms>         scheduling quantum (default 1 ms)
//   --acsr                 dump the translated ACSR module and exit
//   --classical            also run RTA / EDF analysis / the simulator on
//                          the extracted task view
//   --latency <src> <sink> <ms>
//                          add an end-to-end latency requirement (§5
//                          observer); repeatable
//   --late-completion      use the literal Fig. 5 execution-time model
//   --max-states <n>       exploration bound (default 5,000,000)
//   --workers <n>          parallel exploration workers (default 1 =
//                          serial; 0 = hardware concurrency)
//   --deadline-ms <n>      wall-clock budget per analysis; an expired run
//                          reports INCONCLUSIVE (deadline) with partial
//                          stats instead of hanging
//   --memory-budget-mb <n> approximate memory ceiling per analysis; the
//                          engine degrades (drops trace recording) before
//                          giving up
//   --no-reduction         disable the state-space reduction layer
//                          (symmetry canonicalization + commutation
//                          linearization, DESIGN.md §13); the verdict and
//                          the --json result are identical either way
//   --engine <e>           exploration engine: enumerative (default,
//                          the paper's unit-quantum BFS), symbolic (the
//                          quantum-independent state-class engine,
//                          DESIGN.md §16 — errors out on models outside
//                          its fragment), or auto (symbolic when
//                          applicable, enumerative fallback otherwise)
//   --batch <file>         analyze every model listed in <file> (one
//                          "<model.aadl>... <Root.impl>" per line, '#'
//                          comments); each entry is isolated — a crashing
//                          or unparsable model becomes an error record in
//                          the JSON report, not a dead run
//   --batch-workers <n>    concurrent batch entries (default 1)
//   --keep-going           batch exit-code policy: model errors are
//                          recorded but do not poison the exit code
//   --report <file>        write the batch JSON report here (default
//                          stdout)
//   --lint                 run the static checks only (aadllint) and exit;
//                          0 = clean, 1 = error-severity findings
//   --lint-format <f>      lint report format: text (default) or json
//   --explain <id>         print the catalogue entry for one lint check
//                          (id like AL013 or name like exact-rta): tier,
//                          verdict contract, and the soundness rationale;
//                          then exit (no model needed)
//   --no-lint              skip the lint pre-pass before exploration
//   --json                 print the canonical result object
//                          (core::render_result_json, DESIGN.md §11)
//                          instead of the human summary
//   --connect <host:port>  submit the analysis to a running aadlschedd
//                          instead of exploring locally; prints the result
//                          object (implies --json), same exit codes. With
//                          --stats / --shutdown, query or stop the daemon.
//   --no-cache             (with --connect) force a fresh exploration,
//                          bypassing the daemon's result cache
//   --connect-timeout-ms <n>
//                          (with --connect) connect deadline per attempt
//                          (default 2000; 0 = OS default)
//   --io-timeout-ms <n>    (with --connect) send/receive deadline per
//                          request (default 0 = none — explorations can
//                          legitimately run long)
//   --connect-retries <n>  (with --connect) transport-failure retries
//                          (connection refused, timeout, truncated
//                          response) with exponential backoff + jitter
//                          before giving up (default 3; 0 = fail fast)
//   --checkpoint-file <f>  (local) when a budget truncates the run, save a
//                          warm-restart checkpoint (translated ACSR module
//                          + BFS wavefront, DESIGN.md §12) to <f>
//   --resume               resume a budget-bound run: locally, restore the
//                          --checkpoint-file wavefront instead of starting
//                          cold; with --connect, ask the daemon for its
//                          stored checkpoint. A checkpoint that fails
//                          validation falls back to a cold run.
//   --no-checkpoint        never capture a checkpoint (locally: even with
//                          --checkpoint-file; daemon: skip the store)
//
// SIGINT flips the cooperative CancelToken: the run stops at the next
// budget check and still prints the partial summary (exit 3). A second
// SIGINT hard-exits.
//
// Exit code: 0 schedulable, 1 not schedulable, 2 usage/front-end error,
// 3 inconclusive (budget/cancellation truncated the exploration),
// 4 daemon unreachable (--connect transport failure after all retries —
// distinct from 2 so scripts can tell "restart the daemon" from "fix the
// model").
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <limits>
#include <optional>
#include <random>
#include <sstream>
#include <thread>
#include <vector>

#include "acsr/printer.hpp"
#include "aadl/parser.hpp"
#include "core/analyzer.hpp"
#include "core/result_json.hpp"
#include "core/taskset_extract.hpp"
#include "lint/lint.hpp"
#include "sched/analysis.hpp"
#include "sched/simulator.hpp"
#include "server/client.hpp"
#include "server/protocol.hpp"
#include "server/tcp.hpp"
#include "util/budget.hpp"
#include "util/json.hpp"
#include "util/string_utils.hpp"
#include "versa/sweep.hpp"

namespace {

using namespace aadlsched;

int usage() {
  std::cerr <<
      "usage: aadlsched <model.aadl>... <Root.impl> [--quantum ms] [--acsr]\n"
      "                 [--classical] [--latency src sink ms]\n"
      "                 [--late-completion] [--max-states n] [--workers n]\n"
      "                 [--deadline-ms n] [--memory-budget-mb n]\n"
      "                 [--no-reduction] [--engine enumerative|symbolic|auto]\n"
      "                 [--lint] [--lint-format text|json] [--no-lint]\n"
      "                 [--explain AL0NN]\n"
      "                 [--json] [--checkpoint-file f] [--resume]\n"
      "                 [--no-checkpoint]\n"
      "       aadlsched --batch <list> [--batch-workers n] [--keep-going]\n"
      "                 [--report file] [common options]\n"
      "       aadlsched --connect <host:port> <model.aadl>... <Root.impl>\n"
      "                 [--no-cache] [--resume] [--no-checkpoint]\n"
      "                 [--connect-timeout-ms n] [--io-timeout-ms n]\n"
      "                 [--connect-retries n] [common options]\n"
      "       aadlsched --connect <host:port> --stats | --shutdown\n";
  return 2;
}

/// Strict numeric option parsing: std::atoll silently accepts garbage and
/// out-of-range values; reject anything outside [min, max] with a usage
/// error instead.
std::optional<std::int64_t> parse_option(const char* flag, const char* value,
                                         std::int64_t min, std::int64_t max) {
  const auto n = aadlsched::util::parse_int64(value);
  if (!n || *n < min || *n > max) {
    std::cerr << "invalid value '" << value << "' for " << flag
              << " (expected an integer in [" << min << ", " << max
              << "])\n";
    return std::nullopt;
  }
  return n;
}

std::optional<std::string> read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

// --- cooperative cancellation (SIGINT) ---------------------------------

util::CancelToken g_cancel;
std::atomic<int> g_sigint_count{0};

void on_sigint(int) {
  // First ^C: ask the analysis to stop at its next budget check; the
  // partial summary still prints. Second ^C: the user means it.
  if (g_sigint_count.fetch_add(1, std::memory_order_relaxed) > 0)
    std::_Exit(130);
  g_cancel.cancel();
}

int exit_code_for(core::Outcome o) {
  switch (o) {
    case core::Outcome::Schedulable: return 0;
    case core::Outcome::NotSchedulable: return 1;
    case core::Outcome::Error: return 2;
    case core::Outcome::Inconclusive: return 3;
  }
  return 2;
}

// --- batch mode ---------------------------------------------------------

struct BatchEntry {
  std::vector<std::string> files;
  std::string root;
};

/// One "<model.aadl>... <Root.impl>" per line; blank lines and '#' comments
/// are skipped.
std::optional<std::vector<BatchEntry>> read_batch_list(
    const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "cannot open batch list '" << path << "'\n";
    return std::nullopt;
  }
  std::vector<BatchEntry> entries;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (const auto hash = line.find('#'); hash != std::string::npos)
      line.erase(hash);
    std::istringstream ls(line);
    BatchEntry e;
    std::string tok;
    while (ls >> tok) {
      if (tok.find(".aadl") != std::string::npos)
        e.files.push_back(tok);
      else
        e.root = tok;
    }
    if (e.files.empty() && e.root.empty()) continue;  // blank/comment line
    if (e.files.empty() || e.root.empty()) {
      std::cerr << path << ":" << lineno
                << ": batch entry needs model file(s) and a root "
                   "implementation\n";
      return std::nullopt;
    }
    entries.push_back(std::move(e));
  }
  return entries;
}

/// Parse + instantiate + analyze one entry. Never throws for front-end
/// problems (they land in diagnostics with Outcome::Error); exceptions that
/// do escape are caught by the sweep isolation layer.
core::AnalysisResult analyze_entry(const BatchEntry& entry,
                                   const core::AnalyzerOptions& opts) {
  core::AnalysisResult result;
  util::DiagnosticEngine diags(entry.files.front());
  aadl::Model model;
  for (const std::string& f : entry.files) {
    const auto text = read_file(f);
    if (!text) {
      result.diagnostics = "cannot open '" + f + "'\n";
      return result;
    }
    if (!aadl::parse_aadl(model, *text, diags)) {
      result.diagnostics = diags.render_all();
      return result;
    }
  }
  auto instance = aadl::instantiate(model, entry.root, diags);
  if (!instance || diags.has_errors()) {
    result.diagnostics = diags.render_all();
    return result;
  }
  result = core::analyze_instance(*instance, opts);
  result.diagnostics = diags.render_all() + result.diagnostics;
  return result;
}

/// The report is a wrapper around per-model canonical result objects: each
/// entry is "files"/"root" plus exactly the fields `aadlsched --json` and
/// the daemon emit (core::append_result_fields — one serializer, three
/// surfaces).
std::string render_batch_json(const std::vector<BatchEntry>& entries,
                              const std::vector<core::AnalysisResult>& results,
                              bool keep_going, int exit_code) {
  std::ostringstream os;
  std::size_t counts[4] = {0, 0, 0, 0};
  os << "{\n  \"models\": [";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const core::AnalysisResult& r = results[i];
    ++counts[static_cast<std::size_t>(r.outcome)];
    os << (i ? ",\n    " : "\n    ");
    util::JsonWriter w;
    w.begin_object();
    w.key("files").begin_array();
    for (const std::string& f : entries[i].files) w.value(f);
    w.end_array();
    w.key("root").value(entries[i].root);
    core::append_result_fields(w, r);
    w.end_object();
    os << std::move(w).str();
  }
  os << (entries.empty() ? "]" : "\n  ]") << ",\n";
  os << "  \"totals\": {\"schedulable\": "
     << counts[static_cast<std::size_t>(core::Outcome::Schedulable)]
     << ", \"not_schedulable\": "
     << counts[static_cast<std::size_t>(core::Outcome::NotSchedulable)]
     << ", \"inconclusive\": "
     << counts[static_cast<std::size_t>(core::Outcome::Inconclusive)]
     << ", \"error\": "
     << counts[static_cast<std::size_t>(core::Outcome::Error)] << "},\n";
  os << "  \"keep_going\": " << (keep_going ? "true" : "false") << ",\n";
  os << "  \"exit_code\": " << exit_code << "\n}\n";
  return os.str();
}

// --- client mode (--connect) --------------------------------------------
// The option mapping and the retry/backoff transport live in
// server/client.hpp (shared with aadlsched-exp); this file only owns the
// CLI surface: argument plumbing, stderr messages, and exit codes.

/// Exit code for "daemon unreachable": every transport-level failure
/// (refused, timeout, truncated response) after retries are exhausted.
/// Distinct from 2 (usage/front-end/analysis error) so orchestration
/// scripts can distinguish "restart the daemon" from "fix the model".
constexpr int kExitUnreachable = 4;

/// Submit the analysis to a running aadlschedd. The daemon returns the
/// canonical result object verbatim, so output and exit codes match a
/// local `aadlsched --json` run byte for byte. Transport failures are
/// retried with exponential backoff + jitter (a daemon mid-restart is the
/// common case); a daemon that *answers* with an error is never retried —
/// that is an analysis/protocol failure, not unreachability.
int run_connect(const std::string& endpoint,
                const std::vector<std::string>& files, const std::string& root,
                const core::AnalyzerOptions& opts, bool no_cache, bool resume,
                bool no_checkpoint, bool want_stats, bool want_shutdown,
                const server::RetryPolicy& policy) {
  std::string host;
  std::uint16_t port = 0;
  if (!server::parse_endpoint(endpoint, host, port)) {
    std::cerr << "invalid --connect endpoint '" << endpoint
              << "' (expected HOST:PORT)\n";
    return 2;
  }

  server::Request req;
  if (want_stats) {
    req.op = server::Op::Stats;
  } else if (want_shutdown) {
    req.op = server::Op::Shutdown;
  } else {
    req.op = server::Op::Analyze;
    req.root = root;
    req.no_cache = no_cache;
    req.resume = resume;
    req.no_checkpoint = no_checkpoint;
    req.options = server::to_request_options(opts);
    // The daemon parses one text; AADL packages concatenate cleanly, so a
    // multi-file model becomes one request body.
    for (const std::string& f : files) {
      const auto text = read_file(f);
      if (!text) {
        std::cerr << "cannot open '" << f << "'\n";
        return 2;
      }
      req.model += *text;
      if (!req.model.empty() && req.model.back() != '\n') req.model += '\n';
    }
  }

  std::string error;
  const auto resp = server::request_with_retry(
      host, port, req, policy, error,
      [&](unsigned attempt, unsigned retries, double delay_ms,
          const std::string& why) {
        std::cerr << "daemon unreachable (" << why << "); retry " << attempt
                  << "/" << retries << " in " << static_cast<long>(delay_ms)
                  << " ms\n";
      });
  if (!resp) {
    std::cerr << "daemon unreachable after " << (policy.retries + 1)
              << " attempt(s): " << error << "\n";
    return kExitUnreachable;
  }
  if (!resp->ok) {
    std::cerr << "daemon error: " << resp->error << "\n";
    return 2;
  }

  if (want_stats) {
    std::cout << resp->stats_json << "\n";
    return 0;
  }
  if (want_shutdown) {
    std::cout << "daemon shutdown requested\n";
    return 0;
  }
  std::cerr << "served in " << resp->served_ms << " ms ("
            << (resp->cached ? ("cached: " + resp->cache_tier)
                             : std::string("explored"))
            << ", fingerprint " << resp->fingerprint << ")";
  if (resp->resumed)
    std::cerr << ", resumed from depth " << resp->resumed_depth;
  if (resp->checkpoint_captured)
    std::cerr << ", checkpoint captured (resubmit with --resume and a larger "
                 "budget to continue)";
  std::cerr << "\n";
  std::cout << resp->result_json << "\n";
  return exit_code_for(resp->outcome);
}

int run_batch(const std::string& list_path, std::size_t batch_workers,
              bool keep_going, const std::string& report_path,
              const core::AnalyzerOptions& opts) {
  const auto entries = read_batch_list(list_path);
  if (!entries) return 2;

  std::vector<core::AnalysisResult> results(entries->size());
  const versa::SweepReport sweep = versa::parallel_sweep(
      entries->size(),
      [&](std::size_t i) { results[i] = analyze_entry((*entries)[i], opts); },
      batch_workers);
  // A job that escaped with an exception produced no result; record the
  // error so the report stays complete (one poisoned model, full batch).
  for (const versa::SweepFailure& f : sweep.failures) {
    results[f.job] = core::AnalysisResult{};
    results[f.job].diagnostics = "analysis aborted: " + f.error + "\n";
  }

  // Exit-code policy. Model errors poison the exit code unless
  // --keep-going; otherwise the worst analysis outcome wins.
  bool any_error = false, any_notsched = false, any_inconclusive = false;
  for (const core::AnalysisResult& r : results) {
    any_error |= r.outcome == core::Outcome::Error;
    any_notsched |= r.outcome == core::Outcome::NotSchedulable;
    any_inconclusive |= r.outcome == core::Outcome::Inconclusive;
  }
  int code = 0;
  if (any_error && !keep_going)
    code = 2;
  else if (any_notsched)
    code = 1;
  else if (any_inconclusive)
    code = 3;

  const std::string json =
      render_batch_json(*entries, results, keep_going, code);
  if (report_path.empty()) {
    std::cout << json;
  } else {
    std::ofstream out(report_path);
    if (!out) {
      std::cerr << "cannot write report '" << report_path << "'\n";
      return 2;
    }
    out << json;
    std::cout << "batch report written to " << report_path << "\n";
  }
  return code;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace aadlsched;

  std::vector<std::string> files;
  std::string root;
  core::AnalyzerOptions opts;
  opts.translation.quantum_ns = 1'000'000;
  opts.run_lint = true;
  bool dump_acsr = false;
  bool classical = false;
  bool lint_only = false;
  bool lint_json = false;
  std::string batch_list;
  std::string report_path;
  std::size_t batch_workers = 1;
  bool keep_going = false;
  bool json_out = false;
  std::string connect_endpoint;
  bool connect_stats = false;
  bool connect_shutdown = false;
  bool no_cache = false;
  server::RetryPolicy connect_policy;
  bool connect_policy_set = false;
  std::string checkpoint_file;
  bool resume = false;
  bool no_checkpoint = false;
  std::string explain_id;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quantum" && i + 1 < argc) {
      const auto ms = parse_option("--quantum", argv[++i], 1, 1'000'000'000);
      if (!ms) return usage();
      opts.translation.quantum_ns = *ms * 1'000'000;
    } else if (arg == "--acsr") {
      dump_acsr = true;
    } else if (arg == "--classical") {
      classical = true;
    } else if (arg == "--late-completion") {
      opts.translation.time_model =
          translate::ExecutionTimeModel::LateCompletion;
    } else if (arg == "--max-states" && i + 1 < argc) {
      const auto n = parse_option("--max-states", argv[++i], 1,
                                  std::numeric_limits<std::int64_t>::max());
      if (!n) return usage();
      opts.exploration.max_states = static_cast<std::uint64_t>(*n);
    } else if (arg == "--workers" && i + 1 < argc) {
      const auto n = parse_option("--workers", argv[++i], 0, 65536);
      if (!n) return usage();
      opts.parallel.workers = static_cast<std::size_t>(*n);
    } else if (arg == "--deadline-ms" && i + 1 < argc) {
      const auto n = parse_option("--deadline-ms", argv[++i], 1,
                                  std::numeric_limits<std::int32_t>::max());
      if (!n) return usage();
      opts.exploration.budget.deadline_ms = static_cast<double>(*n);
    } else if (arg == "--memory-budget-mb" && i + 1 < argc) {
      const auto n = parse_option("--memory-budget-mb", argv[++i], 1,
                                  1'000'000'000);
      if (!n) return usage();
      opts.exploration.budget.memory_bytes =
          static_cast<std::uint64_t>(*n) * 1024 * 1024;
    } else if (arg == "--no-reduction") {
      opts.no_reduction = true;
    } else if (arg == "--engine" && i + 1 < argc) {
      const char* value = argv[++i];
      const auto engine = core::engine_from_string(value);
      if (!engine) {
        std::cerr << "invalid value '" << value
                  << "' for --engine (expected enumerative, symbolic or "
                     "auto)\n";
        return usage();
      }
      opts.engine = *engine;
    } else if (arg == "--batch" && i + 1 < argc) {
      batch_list = argv[++i];
    } else if (arg == "--batch-workers" && i + 1 < argc) {
      const auto n = parse_option("--batch-workers", argv[++i], 0, 65536);
      if (!n) return usage();
      batch_workers = static_cast<std::size_t>(*n);
    } else if (arg == "--keep-going") {
      keep_going = true;
    } else if (arg == "--report" && i + 1 < argc) {
      report_path = argv[++i];
    } else if (arg == "--latency" && i + 3 < argc) {
      translate::LatencySpec spec;
      spec.source_path = argv[++i];
      spec.sink_path = argv[++i];
      const auto ms = parse_option("--latency", argv[++i], 1, 1'000'000'000);
      if (!ms) return usage();
      spec.max_latency_ns = *ms * 1'000'000;
      opts.translation.latency_specs.push_back(std::move(spec));
    } else if (arg == "--json") {
      json_out = true;
    } else if (arg == "--connect" && i + 1 < argc) {
      connect_endpoint = argv[++i];
    } else if (arg == "--stats") {
      connect_stats = true;
    } else if (arg == "--shutdown") {
      connect_shutdown = true;
    } else if (arg == "--no-cache") {
      no_cache = true;
    } else if (arg == "--connect-timeout-ms" && i + 1 < argc) {
      const auto n = parse_option("--connect-timeout-ms", argv[++i], 0,
                                  1'000'000'000);
      if (!n) return usage();
      connect_policy.connect_timeout_ms = static_cast<double>(*n);
      connect_policy_set = true;
    } else if (arg == "--io-timeout-ms" && i + 1 < argc) {
      const auto n = parse_option("--io-timeout-ms", argv[++i], 0,
                                  1'000'000'000);
      if (!n) return usage();
      connect_policy.io_timeout_ms = static_cast<double>(*n);
      connect_policy_set = true;
    } else if (arg == "--connect-retries" && i + 1 < argc) {
      const auto n = parse_option("--connect-retries", argv[++i], 0, 100);
      if (!n) return usage();
      connect_policy.retries = static_cast<unsigned>(*n);
      connect_policy_set = true;
    } else if (arg == "--checkpoint-file" && i + 1 < argc) {
      checkpoint_file = argv[++i];
    } else if (arg == "--resume") {
      resume = true;
    } else if (arg == "--no-checkpoint") {
      no_checkpoint = true;
    } else if (arg == "--explain" && i + 1 < argc) {
      explain_id = argv[++i];
    } else if (arg == "--lint") {
      lint_only = true;
    } else if (arg == "--no-lint") {
      opts.run_lint = false;
    } else if (arg == "--lint-format" && i + 1 < argc) {
      const std::string fmt = argv[++i];
      if (fmt == "json") {
        lint_json = true;
      } else if (fmt == "text") {
        lint_json = false;
      } else {
        std::cerr << "unknown lint format '" << fmt << "'\n";
        return usage();
      }
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown option '" << arg << "'\n";
      return usage();
    } else if (arg.find(".aadl") != std::string::npos) {
      files.push_back(arg);
    } else {
      root = arg;
    }
  }

  if (!explain_id.empty()) {
    const lint::Pass* pass = lint::Registry::builtin().find(explain_id);
    if (!pass) {
      std::cerr << "unknown lint check '" << explain_id
                << "' (ids run AL001..; try --lint-format json for the "
                   "full catalogue)\n";
      return 2;
    }
    const lint::CheckInfo& info = pass->info();
    std::cout << info.id << "  " << info.name << "\n"
              << "  tier:     " << lint::to_string(info.tier) << "\n"
              << "  contract: " << info.contract << "\n"
              << "  summary:  " << info.summary << "\n";
    if (!info.rationale.empty())
      std::cout << "\n  " << info.rationale << "\n";
    return 0;
  }

  // Cooperative cancellation: exploration polls the token every budget
  // check, so ^C yields the partial summary instead of discarding work.
  opts.exploration.budget.cancel = &g_cancel;
  std::signal(SIGINT, on_sigint);

  if (!connect_endpoint.empty()) {
    if (!batch_list.empty()) {
      std::cerr << "--connect and --batch are mutually exclusive\n";
      return usage();
    }
    if (!checkpoint_file.empty()) {
      std::cerr << "--checkpoint-file is local-only (the daemon keeps its "
                   "own checkpoint store); use --resume/--no-checkpoint\n";
      return usage();
    }
    if (connect_stats || connect_shutdown) {
      if (!files.empty() || !root.empty()) return usage();
    } else if (files.empty() || root.empty()) {
      return usage();
    }
    return run_connect(connect_endpoint, files, root, opts, no_cache, resume,
                       no_checkpoint, connect_stats, connect_shutdown,
                       connect_policy);
  }
  if (connect_stats || connect_shutdown || no_cache || connect_policy_set) {
    std::cerr << "--stats/--shutdown/--no-cache/--connect-timeout-ms/"
                 "--io-timeout-ms/--connect-retries require --connect\n";
    return usage();
  }

  if (!batch_list.empty()) {
    if (!files.empty() || !root.empty()) {
      std::cerr << "--batch takes its models from the list file\n";
      return usage();
    }
    if (!checkpoint_file.empty() || resume || no_checkpoint) {
      std::cerr << "checkpoint flags are per-model; they do not compose "
                   "with --batch\n";
      return usage();
    }
    return run_batch(batch_list, batch_workers, keep_going, report_path,
                     opts);
  }
  if (files.empty() || root.empty()) return usage();
  if (resume && checkpoint_file.empty()) {
    std::cerr << "--resume needs --checkpoint-file (or --connect)\n";
    return usage();
  }

  // Parse all files into one model (multi-file packages supported).
  util::DiagnosticEngine diags(files.front());
  aadl::Model model;
  for (const std::string& f : files) {
    const auto text = read_file(f);
    if (!text) {
      std::cerr << "cannot open '" << f << "'\n";
      return 2;
    }
    if (!aadl::parse_aadl(model, *text, diags)) {
      std::cerr << diags.render_all();
      return 2;
    }
  }
  auto instance = aadl::instantiate(model, root, diags);
  if (!instance || diags.has_errors()) {
    std::cerr << diags.render_all();
    return 2;
  }

  if (lint_only) {
    lint::Options lopts;
    lopts.translation = opts.translation;
    const lint::Report report = lint::run(*instance, lopts);
    std::cout << (lint_json ? report.render_json() : report.render_text());
    return report.errors() == 0 ? 0 : 1;
  }

  if (dump_acsr) {
    acsr::Context ctx;
    auto tr = translate::translate(ctx, *instance, diags, opts.translation);
    if (!tr) {
      std::cerr << diags.render_all();
      return 2;
    }
    acsr::Printer printer(ctx);
    std::cout << printer.module();
    return 0;
  }

  if (classical) {
    util::DiagnosticEngine ediags("extract");
    const auto extracted = core::extract_taskset(
        *instance, opts.translation.quantum_ns, ediags);
    if (!extracted) {
      std::cerr << ediags.render_all();
    } else {
      std::cout << "classical task view"
                << (extracted->lossy
                        ? " (approximate: model has event/bus features)"
                        : "")
                << ":\n";
      for (std::size_t cpu = 0; cpu < extracted->processor_paths.size();
           ++cpu) {
        const sched::TaskSet on =
            extracted->tasks.on_processor(static_cast<int>(cpu));
        std::cout << "  " << extracted->processor_paths[cpu] << " ("
                  << aadl::to_string(extracted->protocols[cpu])
                  << "), U = " << on.utilization() << "\n";
        const bool edf =
            extracted->protocols[cpu] == aadl::SchedulingProtocol::Edf ||
            extracted->protocols[cpu] == aadl::SchedulingProtocol::Llf;
        if (edf) {
          const auto v = sched::edf_demand_analysis(on);
          std::cout << "    EDF demand analysis: "
                    << (v.verdict == sched::Verdict::Schedulable
                            ? "schedulable"
                            : "NOT schedulable")
                    << "\n";
        } else {
          const auto v = sched::response_time_analysis(on);
          std::cout << "    response-time analysis: "
                    << (v.verdict == sched::Verdict::Schedulable
                            ? "schedulable"
                            : "NOT schedulable")
                    << "\n";
        }
        sched::SimOptions so;
        so.policy = edf ? sched::SchedulingPolicy::Edf
                        : sched::SchedulingPolicy::FixedPriority;
        std::cout << "    hyperperiod simulation: "
                  << (sched::simulate(on, so).schedulable
                          ? "schedulable"
                          : "NOT schedulable")
                  << "\n";
      }
    }
  }

  // Warm re-exploration (DESIGN.md §12): wire the checkpoint file into the
  // analyzer. Capture and resume are independent — a resumed run that hits
  // the (larger) budget again re-captures, so very large spaces can be
  // chipped away across invocations.
  std::string checkpoint_blob;
  std::string resume_blob;
  if (!checkpoint_file.empty() && !no_checkpoint)
    opts.checkpoint_out = &checkpoint_blob;
  if (resume) {
    const auto text = read_file(checkpoint_file);
    if (text) {
      resume_blob = *text;
      opts.resume_checkpoint = &resume_blob;
    } else {
      std::cerr << "cannot read checkpoint '" << checkpoint_file
                << "'; running cold\n";
    }
  }

  const core::AnalysisResult result = core::analyze_instance(*instance, opts);
  if (!result.diagnostics.empty()) std::cerr << result.diagnostics;
  if (result.checkpoint_captured && !checkpoint_blob.empty()) {
    std::ofstream out(checkpoint_file, std::ios::trunc | std::ios::binary);
    if (out) {
      out << checkpoint_blob;
      std::cerr << "checkpoint written to " << checkpoint_file << "\n";
    } else {
      std::cerr << "cannot write checkpoint '" << checkpoint_file << "'\n";
    }
  }
  if (json_out) {
    // The resume note is part of summary(); --json output must stay the
    // canonical byte-identical object, so surface it on stderr instead.
    if (result.resumed)
      std::cerr << "resumed from depth " << result.resumed_from_depth << "\n";
    std::cout << core::render_result_json(result) << "\n";
  } else {
    std::cout << result.summary() << "\n";
  }
  return exit_code_for(result.outcome);
}
