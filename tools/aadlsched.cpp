// aadlsched — command-line front end, the role of the paper's OSATE plugin.
//
//   aadlsched <model.aadl>... <Root.impl> [options]
//
//   --quantum <ms>         scheduling quantum (default 1 ms)
//   --acsr                 dump the translated ACSR module and exit
//   --classical            also run RTA / EDF analysis / the simulator on
//                          the extracted task view
//   --latency <src> <sink> <ms>
//                          add an end-to-end latency requirement (§5
//                          observer); repeatable
//   --late-completion      use the literal Fig. 5 execution-time model
//   --max-states <n>       exploration bound (default 5,000,000)
//   --workers <n>          parallel exploration workers (default 1 =
//                          serial; 0 = hardware concurrency)
//   --lint                 run the static checks only (aadllint) and exit;
//                          0 = clean, 1 = error-severity findings
//   --lint-format <f>      lint report format: text (default) or json
//   --no-lint              skip the lint pre-pass before exploration
//
// Exit code: 0 schedulable, 1 not schedulable, 2 usage/front-end error.
#include <cstring>
#include <fstream>
#include <iostream>
#include <limits>
#include <sstream>
#include <vector>

#include "acsr/printer.hpp"
#include "aadl/parser.hpp"
#include "core/analyzer.hpp"
#include "core/taskset_extract.hpp"
#include "lint/lint.hpp"
#include "sched/analysis.hpp"
#include "sched/simulator.hpp"
#include "util/string_utils.hpp"

namespace {

int usage() {
  std::cerr <<
      "usage: aadlsched <model.aadl>... <Root.impl> [--quantum ms] [--acsr]\n"
      "                 [--classical] [--latency src sink ms]\n"
      "                 [--late-completion] [--max-states n] [--workers n]\n"
      "                 [--lint] [--lint-format text|json] [--no-lint]\n";
  return 2;
}

/// Strict numeric option parsing: std::atoll silently accepts garbage and
/// out-of-range values; reject anything outside [min, max] with a usage
/// error instead.
std::optional<std::int64_t> parse_option(const char* flag, const char* value,
                                         std::int64_t min, std::int64_t max) {
  const auto n = aadlsched::util::parse_int64(value);
  if (!n || *n < min || *n > max) {
    std::cerr << "invalid value '" << value << "' for " << flag
              << " (expected an integer in [" << min << ", " << max
              << "])\n";
    return std::nullopt;
  }
  return n;
}

std::optional<std::string> read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace aadlsched;

  std::vector<std::string> files;
  std::string root;
  core::AnalyzerOptions opts;
  opts.translation.quantum_ns = 1'000'000;
  opts.run_lint = true;
  bool dump_acsr = false;
  bool classical = false;
  bool lint_only = false;
  bool lint_json = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quantum" && i + 1 < argc) {
      const auto ms = parse_option("--quantum", argv[++i], 1, 1'000'000'000);
      if (!ms) return usage();
      opts.translation.quantum_ns = *ms * 1'000'000;
    } else if (arg == "--acsr") {
      dump_acsr = true;
    } else if (arg == "--classical") {
      classical = true;
    } else if (arg == "--late-completion") {
      opts.translation.time_model =
          translate::ExecutionTimeModel::LateCompletion;
    } else if (arg == "--max-states" && i + 1 < argc) {
      const auto n = parse_option("--max-states", argv[++i], 1,
                                  std::numeric_limits<std::int64_t>::max());
      if (!n) return usage();
      opts.exploration.max_states = static_cast<std::uint64_t>(*n);
    } else if (arg == "--workers" && i + 1 < argc) {
      const auto n = parse_option("--workers", argv[++i], 0, 65536);
      if (!n) return usage();
      opts.parallel.workers = static_cast<std::size_t>(*n);
    } else if (arg == "--latency" && i + 3 < argc) {
      translate::LatencySpec spec;
      spec.source_path = argv[++i];
      spec.sink_path = argv[++i];
      const auto ms = parse_option("--latency", argv[++i], 1, 1'000'000'000);
      if (!ms) return usage();
      spec.max_latency_ns = *ms * 1'000'000;
      opts.translation.latency_specs.push_back(std::move(spec));
    } else if (arg == "--lint") {
      lint_only = true;
    } else if (arg == "--no-lint") {
      opts.run_lint = false;
    } else if (arg == "--lint-format" && i + 1 < argc) {
      const std::string fmt = argv[++i];
      if (fmt == "json") {
        lint_json = true;
      } else if (fmt == "text") {
        lint_json = false;
      } else {
        std::cerr << "unknown lint format '" << fmt << "'\n";
        return usage();
      }
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown option '" << arg << "'\n";
      return usage();
    } else if (arg.find(".aadl") != std::string::npos) {
      files.push_back(arg);
    } else {
      root = arg;
    }
  }
  if (files.empty() || root.empty()) return usage();

  // Parse all files into one model (multi-file packages supported).
  util::DiagnosticEngine diags(files.front());
  aadl::Model model;
  for (const std::string& f : files) {
    const auto text = read_file(f);
    if (!text) {
      std::cerr << "cannot open '" << f << "'\n";
      return 2;
    }
    if (!aadl::parse_aadl(model, *text, diags)) {
      std::cerr << diags.render_all();
      return 2;
    }
  }
  auto instance = aadl::instantiate(model, root, diags);
  if (!instance || diags.has_errors()) {
    std::cerr << diags.render_all();
    return 2;
  }

  if (lint_only) {
    lint::Options lopts;
    lopts.translation = opts.translation;
    const lint::Report report = lint::run(*instance, lopts);
    std::cout << (lint_json ? report.render_json() : report.render_text());
    return report.errors() == 0 ? 0 : 1;
  }

  if (dump_acsr) {
    acsr::Context ctx;
    auto tr = translate::translate(ctx, *instance, diags, opts.translation);
    if (!tr) {
      std::cerr << diags.render_all();
      return 2;
    }
    acsr::Printer printer(ctx);
    std::cout << printer.module();
    return 0;
  }

  if (classical) {
    util::DiagnosticEngine ediags("extract");
    const auto extracted = core::extract_taskset(
        *instance, opts.translation.quantum_ns, ediags);
    if (!extracted) {
      std::cerr << ediags.render_all();
    } else {
      std::cout << "classical task view"
                << (extracted->lossy
                        ? " (approximate: model has event/bus features)"
                        : "")
                << ":\n";
      for (std::size_t cpu = 0; cpu < extracted->processor_paths.size();
           ++cpu) {
        const sched::TaskSet on =
            extracted->tasks.on_processor(static_cast<int>(cpu));
        std::cout << "  " << extracted->processor_paths[cpu] << " ("
                  << aadl::to_string(extracted->protocols[cpu])
                  << "), U = " << on.utilization() << "\n";
        const bool edf =
            extracted->protocols[cpu] == aadl::SchedulingProtocol::Edf ||
            extracted->protocols[cpu] == aadl::SchedulingProtocol::Llf;
        if (edf) {
          const auto v = sched::edf_demand_analysis(on);
          std::cout << "    EDF demand analysis: "
                    << (v.verdict == sched::Verdict::Schedulable
                            ? "schedulable"
                            : "NOT schedulable")
                    << "\n";
        } else {
          const auto v = sched::response_time_analysis(on);
          std::cout << "    response-time analysis: "
                    << (v.verdict == sched::Verdict::Schedulable
                            ? "schedulable"
                            : "NOT schedulable")
                    << "\n";
        }
        sched::SimOptions so;
        so.policy = edf ? sched::SchedulingPolicy::Edf
                        : sched::SchedulingPolicy::FixedPriority;
        std::cout << "    hyperperiod simulation: "
                  << (sched::simulate(on, so).schedulable
                          ? "schedulable"
                          : "NOT schedulable")
                  << "\n";
      }
    }
  }

  const core::AnalysisResult result = core::analyze_instance(*instance, opts);
  if (!result.diagnostics.empty()) std::cerr << result.diagnostics;
  std::cout << result.summary() << "\n";
  if (!result.ok) return 2;
  return result.schedulable ? 0 : 1;
}
