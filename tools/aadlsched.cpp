// aadlsched — command-line front end, the role of the paper's OSATE plugin.
//
//   aadlsched <model.aadl>... <Root.impl> [options]
//
//   --quantum <ms>         scheduling quantum (default 1 ms)
//   --acsr                 dump the translated ACSR module and exit
//   --classical            also run RTA / EDF analysis / the simulator on
//                          the extracted task view
//   --latency <src> <sink> <ms>
//                          add an end-to-end latency requirement (§5
//                          observer); repeatable
//   --late-completion      use the literal Fig. 5 execution-time model
//   --max-states <n>       exploration bound (default 5,000,000)
//   --workers <n>          parallel exploration workers (default 1 =
//                          serial; 0 = hardware concurrency)
//
// Exit code: 0 schedulable, 1 not schedulable, 2 usage/front-end error.
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <vector>

#include "acsr/printer.hpp"
#include "aadl/parser.hpp"
#include "core/analyzer.hpp"
#include "core/taskset_extract.hpp"
#include "sched/analysis.hpp"
#include "sched/simulator.hpp"

namespace {

int usage() {
  std::cerr <<
      "usage: aadlsched <model.aadl>... <Root.impl> [--quantum ms] [--acsr]\n"
      "                 [--classical] [--latency src sink ms]\n"
      "                 [--late-completion] [--max-states n] [--workers n]\n";
  return 2;
}

std::optional<std::string> read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace aadlsched;

  std::vector<std::string> files;
  std::string root;
  core::AnalyzerOptions opts;
  opts.translation.quantum_ns = 1'000'000;
  bool dump_acsr = false;
  bool classical = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quantum" && i + 1 < argc) {
      opts.translation.quantum_ns = std::atoll(argv[++i]) * 1'000'000;
      if (opts.translation.quantum_ns <= 0) return usage();
    } else if (arg == "--acsr") {
      dump_acsr = true;
    } else if (arg == "--classical") {
      classical = true;
    } else if (arg == "--late-completion") {
      opts.translation.time_model =
          translate::ExecutionTimeModel::LateCompletion;
    } else if (arg == "--max-states" && i + 1 < argc) {
      opts.exploration.max_states =
          static_cast<std::uint64_t>(std::atoll(argv[++i]));
    } else if (arg == "--workers" && i + 1 < argc) {
      const long long n = std::atoll(argv[++i]);
      if (n < 0) return usage();
      opts.parallel.workers = static_cast<std::size_t>(n);
    } else if (arg == "--latency" && i + 3 < argc) {
      translate::LatencySpec spec;
      spec.source_path = argv[++i];
      spec.sink_path = argv[++i];
      spec.max_latency_ns = std::atoll(argv[++i]) * 1'000'000;
      opts.translation.latency_specs.push_back(std::move(spec));
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown option '" << arg << "'\n";
      return usage();
    } else if (arg.find(".aadl") != std::string::npos) {
      files.push_back(arg);
    } else {
      root = arg;
    }
  }
  if (files.empty() || root.empty()) return usage();

  // Parse all files into one model (multi-file packages supported).
  util::DiagnosticEngine diags(files.front());
  aadl::Model model;
  for (const std::string& f : files) {
    const auto text = read_file(f);
    if (!text) {
      std::cerr << "cannot open '" << f << "'\n";
      return 2;
    }
    if (!aadl::parse_aadl(model, *text, diags)) {
      std::cerr << diags.render_all();
      return 2;
    }
  }
  auto instance = aadl::instantiate(model, root, diags);
  if (!instance || diags.has_errors()) {
    std::cerr << diags.render_all();
    return 2;
  }

  if (dump_acsr) {
    acsr::Context ctx;
    auto tr = translate::translate(ctx, *instance, diags, opts.translation);
    if (!tr) {
      std::cerr << diags.render_all();
      return 2;
    }
    acsr::Printer printer(ctx);
    std::cout << printer.module();
    return 0;
  }

  if (classical) {
    util::DiagnosticEngine ediags("extract");
    const auto extracted = core::extract_taskset(
        *instance, opts.translation.quantum_ns, ediags);
    if (!extracted) {
      std::cerr << ediags.render_all();
    } else {
      std::cout << "classical task view"
                << (extracted->lossy
                        ? " (approximate: model has event/bus features)"
                        : "")
                << ":\n";
      for (std::size_t cpu = 0; cpu < extracted->processor_paths.size();
           ++cpu) {
        const sched::TaskSet on =
            extracted->tasks.on_processor(static_cast<int>(cpu));
        std::cout << "  " << extracted->processor_paths[cpu] << " ("
                  << aadl::to_string(extracted->protocols[cpu])
                  << "), U = " << on.utilization() << "\n";
        const bool edf =
            extracted->protocols[cpu] == aadl::SchedulingProtocol::Edf ||
            extracted->protocols[cpu] == aadl::SchedulingProtocol::Llf;
        if (edf) {
          const auto v = sched::edf_demand_analysis(on);
          std::cout << "    EDF demand analysis: "
                    << (v.verdict == sched::Verdict::Schedulable
                            ? "schedulable"
                            : "NOT schedulable")
                    << "\n";
        } else {
          const auto v = sched::response_time_analysis(on);
          std::cout << "    response-time analysis: "
                    << (v.verdict == sched::Verdict::Schedulable
                            ? "schedulable"
                            : "NOT schedulable")
                    << "\n";
        }
        sched::SimOptions so;
        so.policy = edf ? sched::SchedulingPolicy::Edf
                        : sched::SchedulingPolicy::FixedPriority;
        std::cout << "    hyperperiod simulation: "
                  << (sched::simulate(on, so).schedulable
                          ? "schedulable"
                          : "NOT schedulable")
                  << "\n";
      }
    }
  }

  const core::AnalysisResult result = core::analyze_instance(*instance, opts);
  if (!result.diagnostics.empty()) std::cerr << result.diagnostics;
  std::cout << result.summary() << "\n";
  if (!result.ok) return 2;
  return result.schedulable ? 0 : 1;
}
