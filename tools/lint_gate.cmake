# Lint CI gate (ROADMAP item): diff the machine-readable lint report for a
# shipped model against its checked-in baseline, failing on ANY change —
# new findings on existing models must be acknowledged by regenerating the
# baseline, never slipped in silently.
#
# Usage (wired as ctest cases by tools/CMakeLists.txt):
#   cmake -DAADLSCHED_BIN=<tool> -DMODEL=<m.aadl> -DROOT=<Root.impl>
#         -DBASELINE=<tests/baselines/m.lint.json> -P lint_gate.cmake
#
# Regenerate a baseline after an intentional change with:
#   aadlsched <m.aadl> <Root.impl> --lint --lint-format json > \
#       tests/baselines/<m>.lint.json

foreach(var AADLSCHED_BIN MODEL ROOT BASELINE)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "lint_gate.cmake: missing -D${var}=...")
  endif()
endforeach()

execute_process(
  COMMAND ${AADLSCHED_BIN} ${MODEL} ${ROOT} --lint --lint-format json
  OUTPUT_VARIABLE actual
  ERROR_VARIABLE errout
  RESULT_VARIABLE rc)

# --lint exits 1 when error-severity findings exist; that can be a valid
# baselined state, so only launcher failures (no JSON produced) are fatal.
if(NOT rc EQUAL 0 AND NOT rc EQUAL 1)
  message(FATAL_ERROR "lint gate: '${AADLSCHED_BIN} ${MODEL} ${ROOT} --lint' "
                      "failed to run (rc=${rc}):\n${errout}")
endif()

if(NOT EXISTS ${BASELINE})
  message(FATAL_ERROR "lint gate: baseline '${BASELINE}' is missing. "
                      "Generate it from the current report:\n${actual}")
endif()

file(READ ${BASELINE} expected)
if(NOT actual STREQUAL expected)
  message(FATAL_ERROR "lint gate: report for ${MODEL} drifted from "
                      "${BASELINE}.\n--- expected ---\n${expected}\n"
                      "--- actual ---\n${actual}\n"
                      "If the change is intentional, regenerate the "
                      "baseline (see tools/lint_gate.cmake).")
endif()
