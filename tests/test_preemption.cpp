// Focused tests for the preemption relation, including the design-note
// counterexample: decorating actions with per-thread marker resources would
// destroy the preemption order (this is why trace lift-back inspects state
// terms instead of polluting actions — DESIGN.md §6).
#include <gtest/gtest.h>

#include "acsr/builder.hpp"
#include "acsr/preemption.hpp"
#include "acsr/semantics.hpp"

using namespace aadlsched;
using namespace aadlsched::acsr;

namespace {

class PreemptionTest : public ::testing::Test {
 protected:
  Context ctx;
  Builder b{ctx};

  ActionId action(std::initializer_list<std::pair<const char*, Priority>> rs) {
    std::vector<ResourceUse> uses;
    for (auto& [name, p] : rs) uses.push_back({ctx.resource(name), p});
    return ctx.actions().intern(std::move(uses));
  }

  Label act(ActionId a) { return Label::make_action(a); }
};

TEST_F(PreemptionTest, CleanActionsPreemptAsExpected) {
  const Label lo = act(action({{"cpu", 3}}));
  const Label hi = act(action({{"cpu", 5}}));
  EXPECT_TRUE(preempted_by(ctx.actions(), lo, hi));
  EXPECT_FALSE(preempted_by(ctx.actions(), hi, lo));
}

TEST_F(PreemptionTest, MarkerResourcesBreakPreemption) {
  // The same two steps decorated with private per-thread marker resources:
  // the high-priority step no longer preempts, because the low step uses a
  // resource (its marker) that the high step does not.
  const Label lo = act(action({{"cpu", 3}, {"run_t2", 1}}));
  const Label hi = act(action({{"cpu", 5}, {"run_t1", 1}}));
  EXPECT_FALSE(preempted_by(ctx.actions(), lo, hi));
  EXPECT_FALSE(preempted_by(ctx.actions(), hi, lo));
}

TEST_F(PreemptionTest, IdleIsPreemptedByAnyPositiveWork) {
  const Label idle = act(kIdleAction);
  const Label work = act(action({{"cpu", 1}}));
  EXPECT_TRUE(preempted_by(ctx.actions(), idle, work));
  EXPECT_FALSE(preempted_by(ctx.actions(), work, idle));
}

TEST_F(PreemptionTest, ZeroPriorityWorkDoesNotPreemptIdle) {
  const Label idle = act(kIdleAction);
  const Label work = act(action({{"cpu", 0}}));
  EXPECT_FALSE(preempted_by(ctx.actions(), idle, work));
}

TEST_F(PreemptionTest, EventPreemptionNeedsSameLabelAndDirection) {
  const Event e = ctx.event("e");
  const Event f = ctx.event("f");
  const Label e1 = Label::make_event(e, true, 1);
  const Label e2 = Label::make_event(e, true, 2);
  const Label e2r = Label::make_event(e, false, 2);
  const Label f9 = Label::make_event(f, true, 9);
  EXPECT_TRUE(preempted_by(ctx.actions(), e1, e2));
  EXPECT_FALSE(preempted_by(ctx.actions(), e2, e1));
  EXPECT_FALSE(preempted_by(ctx.actions(), e1, e2r));  // direction differs
  EXPECT_FALSE(preempted_by(ctx.actions(), e1, f9));   // label differs
}

TEST_F(PreemptionTest, TauOrdering) {
  const Label t1 = Label::make_tau(ctx.event("a"), 1);
  const Label t3 = Label::make_tau(ctx.event("b"), 3);
  // All taus share the silent label, regardless of their source event.
  EXPECT_TRUE(preempted_by(ctx.actions(), t1, t3));
  EXPECT_FALSE(preempted_by(ctx.actions(), t3, t1));
}

TEST_F(PreemptionTest, TauDoesNotPreemptEvents) {
  const Label tau = Label::make_tau(ctx.event("a"), 5);
  const Label ev = Label::make_event(ctx.event("e"), true, 1);
  EXPECT_FALSE(preempted_by(ctx.actions(), ev, tau));
  EXPECT_FALSE(preempted_by(ctx.actions(), tau, ev));
}

TEST_F(PreemptionTest, ActionNeverPreemptsAnything) {
  const Label work = act(action({{"cpu", 9}}));
  const Label tau0 = Label::make_tau(ctx.event("a"), 0);
  const Label ev = Label::make_event(ctx.event("e"), true, 0);
  EXPECT_FALSE(preempted_by(ctx.actions(), tau0, work));
  EXPECT_FALSE(preempted_by(ctx.actions(), ev, work));
  // Zero-priority tau does not preempt timed actions.
  EXPECT_FALSE(preempted_by(ctx.actions(), work, tau0));
}

TEST_F(PreemptionTest, PrioritizeKeepsMaximalSet) {
  std::vector<Transition> ts;
  ts.push_back({act(kIdleAction), kNil});
  ts.push_back({act(action({{"cpu", 1}})), kNil});
  ts.push_back({act(action({{"cpu", 2}})), kNil});
  ts.push_back({act(action({{"bus", 1}})), kNil});  // incomparable
  prioritize(ctx.actions(), ts);
  ASSERT_EQ(ts.size(), 2u);
  EXPECT_EQ(ts[0].label.action, action({{"cpu", 2}}));
  EXPECT_EQ(ts[1].label.action, action({{"bus", 1}}));
}

TEST_F(PreemptionTest, PrioritizeOnEmptyAndSingleton) {
  std::vector<Transition> empty;
  prioritize(ctx.actions(), empty);
  EXPECT_TRUE(empty.empty());
  std::vector<Transition> one{{act(kIdleAction), kNil}};
  prioritize(ctx.actions(), one);
  EXPECT_EQ(one.size(), 1u);
}

// Property-style sweep: preemption must be irreflexive and asymmetric on a
// grid of generated actions.
class PreemptionPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int, int, int>> {};

TEST_P(PreemptionPropertyTest, IrreflexiveAndAsymmetric) {
  Context ctx;
  const auto [p1, p2, q1, q2] = GetParam();
  const Resource cpu = ctx.resource("cpu");
  const Resource bus = ctx.resource("bus");
  auto mk = [&](int a, int b) {
    std::vector<ResourceUse> uses;
    if (a >= 0) uses.push_back({cpu, a});
    if (b >= 0) uses.push_back({bus, b});
    return ctx.actions().intern(std::move(uses));
  };
  const Label x = Label::make_action(mk(p1, p2));
  const Label y = Label::make_action(mk(q1, q2));
  EXPECT_FALSE(preempted_by(ctx.actions(), x, x));
  EXPECT_FALSE(preempted_by(ctx.actions(), y, y));
  EXPECT_FALSE(preempted_by(ctx.actions(), x, y) &&
               preempted_by(ctx.actions(), y, x));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, PreemptionPropertyTest,
    ::testing::Combine(::testing::Values(-1, 0, 1, 3),
                       ::testing::Values(-1, 0, 2),
                       ::testing::Values(-1, 0, 1, 3),
                       ::testing::Values(-1, 0, 2)));

}  // namespace
