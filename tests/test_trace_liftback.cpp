// E6: the failing scenario is "raised" to the level of the original AADL
// model (§5): steps are re-expressed as AADL dispatches/completions and a
// per-thread timeline; the violated thread is named.
#include <gtest/gtest.h>

#include "core/analyzer.hpp"
#include "core/taskset_aadl.hpp"

using namespace aadlsched;
using namespace aadlsched::core;

namespace {

AnalyzerOptions ms_opts() {
  AnalyzerOptions o;
  o.translation.quantum_ns = 1'000'000;
  return o;
}

TEST(TraceLiftback, DeterministicMissTimeline) {
  // One thread, C = 3 > D = 2: misses deterministically at quantum 2.
  sched::TaskSet ts;
  sched::Task t;
  t.name = "x";
  t.wcet = t.bcet = 3;
  t.period = 5;
  t.deadline = 2;
  t.priority = 1;
  ts.tasks = {t};
  const auto r = analyze_source(
      core::taskset_to_aadl(ts, sched::SchedulingPolicy::FixedPriority),
      "Root.impl", ms_opts());
  ASSERT_TRUE(r.ok) << r.diagnostics;
  ASSERT_FALSE(r.schedulable);
  ASSERT_TRUE(r.scenario.has_value());
  const FailingScenario& fs = *r.scenario;

  ASSERT_EQ(fs.missed_threads.size(), 1u);
  EXPECT_EQ(fs.missed_threads[0], "t0");
  EXPECT_EQ(fs.quanta, 2);

  ASSERT_EQ(fs.timeline.size(), 1u);
  EXPECT_EQ(fs.timeline[0].thread_path, "t0");
  // Alone on the cpu the thread runs both quanta before the deadline hits.
  EXPECT_EQ(fs.timeline[0].cells, "##");

  // Steps mention the dispatch in AADL terms.
  ASSERT_FALSE(fs.steps.empty());
  EXPECT_NE(fs.steps[0].find("dispatch of t0"), std::string::npos);
}

TEST(TraceLiftback, PreemptionVisibleInTimeline) {
  // hi (C=2, T=D=2, prio high) starves lo (C=1, D=1): lo is preempted in
  // its only quantum and the timeline shows '*'.
  sched::TaskSet ts;
  sched::Task hi;
  hi.name = "hi";
  hi.wcet = hi.bcet = 2;
  hi.period = hi.deadline = 2;
  hi.priority = 2;
  sched::Task lo;
  lo.name = "lo";
  lo.wcet = lo.bcet = 1;
  lo.period = 4;
  lo.deadline = 1;
  lo.priority = 1;
  ts.tasks = {hi, lo};
  const auto r = analyze_source(
      core::taskset_to_aadl(ts, sched::SchedulingPolicy::FixedPriority),
      "Root.impl", ms_opts());
  ASSERT_TRUE(r.ok) << r.diagnostics;
  ASSERT_FALSE(r.schedulable);
  ASSERT_TRUE(r.scenario.has_value());
  const FailingScenario& fs = *r.scenario;

  const TimelineRow* lo_row = nullptr;
  const TimelineRow* hi_row = nullptr;
  for (const auto& row : fs.timeline) {
    if (row.thread_path == "t1") lo_row = &row;
    if (row.thread_path == "t0") hi_row = &row;
  }
  ASSERT_NE(lo_row, nullptr);
  ASSERT_NE(hi_row, nullptr);
  EXPECT_EQ(fs.quanta, 1);
  EXPECT_EQ(hi_row->cells, "#");
  EXPECT_EQ(lo_row->cells, "*");
  ASSERT_EQ(fs.missed_threads.size(), 1u);
  EXPECT_EQ(fs.missed_threads[0], "t1");
}

TEST(TraceLiftback, RenderContainsLegendAndRows) {
  sched::TaskSet ts;
  sched::Task t;
  t.name = "x";
  t.wcet = t.bcet = 2;
  t.period = 4;
  t.deadline = 1;
  t.priority = 1;
  ts.tasks = {t};
  const auto r = analyze_source(
      core::taskset_to_aadl(ts, sched::SchedulingPolicy::FixedPriority),
      "Root.impl", ms_opts());
  ASSERT_TRUE(r.scenario.has_value());
  const std::string rendered = r.scenario->render();
  EXPECT_NE(rendered.find("Failing scenario"), std::string::npos);
  EXPECT_NE(rendered.find("t0"), std::string::npos);
  EXPECT_NE(rendered.find("# running"), std::string::npos);
  EXPECT_NE(rendered.find("violated: t0"), std::string::npos);
}

TEST(TraceLiftback, QueueOverflowNamedInScenario) {
  const char* src = R"(
    package P
    public
      device Env
      features
        tick : out event port;
      end Env;
      processor C
      properties
        Scheduling_Protocol => RATE_MONOTONIC_PROTOCOL;
      end C;
      thread A
      features
        trig : in event port;
      end A;
      thread implementation A.impl
      properties
        Dispatch_Protocol => Aperiodic;
        Compute_Execution_Time => 2 ms .. 2 ms;
        Deadline => 8 ms;
      end A.impl;
      system R
      end R;
      system implementation R.impl
      subcomponents
        a : thread A.impl;
        c : processor C;
        e : device Env;
      connections
        conn : port e.tick -> a.trig;
      properties
        Actual_Processor_Binding => reference (c) applies to a;
        Overflow_Handling_Protocol => Error applies to conn;
      end R.impl;
    end P;
  )";
  const auto r = analyze_source(src, "R.impl", ms_opts());
  ASSERT_TRUE(r.ok) << r.diagnostics;
  ASSERT_FALSE(r.schedulable);
  ASSERT_TRUE(r.scenario.has_value());
  bool overflow_named = false;
  for (const auto& m : r.scenario->missed_threads)
    overflow_named |= m.find("queue overflow") != std::string::npos;
  EXPECT_TRUE(overflow_named) << r.summary();
  // The steps mention the queueing of environment events in AADL terms.
  bool queue_step = false;
  for (const auto& s : r.scenario->steps)
    queue_step |= s.find("event queued on") != std::string::npos;
  EXPECT_TRUE(queue_step);
}

}  // namespace
