// Tests for the ACSR operational semantics: each rule (prefix, choice,
// parallel interleaving and synchronization, Par3 timed combination,
// restriction, scope, call unfolding) plus the prioritized relation.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "acsr/builder.hpp"
#include "acsr/printer.hpp"
#include "acsr/semantics.hpp"

using namespace aadlsched;
using namespace aadlsched::acsr;

namespace {

class SemanticsTest : public ::testing::Test {
 protected:
  Context ctx;
  Builder b{ctx};
  Semantics sem{ctx};

  ActionId action(std::initializer_list<std::pair<const char*, Priority>> rs) {
    std::vector<ResourceUse> uses;
    for (auto& [name, p] : rs) uses.push_back({ctx.resource(name), p});
    return ctx.actions().intern(std::move(uses));
  }

  std::multiset<std::string> labels(TermId t, bool prioritized = false) {
    std::multiset<std::string> out;
    for (const Transition& tr :
         prioritized ? sem.prioritized(t) : sem.transitions(t))
      out.insert(render_label(ctx, tr.label));
    return out;
  }
};

TEST_F(SemanticsTest, NilHasNoTransitions) {
  EXPECT_TRUE(sem.transitions(kNil).empty());
}

TEST_F(SemanticsTest, ActionPrefix) {
  const TermId p = ctx.terms().act(action({{"cpu", 1}}), kNil);
  const auto fan = sem.transitions(p);
  ASSERT_EQ(fan.size(), 1u);
  EXPECT_TRUE(fan[0].label.is_timed());
  EXPECT_EQ(fan[0].target, kNil);
}

TEST_F(SemanticsTest, EventPrefix) {
  const TermId p = ctx.terms().evt(ctx.event("go"), true, 3, kNil);
  const auto fan = sem.transitions(p);
  ASSERT_EQ(fan.size(), 1u);
  EXPECT_EQ(fan[0].label.kind, Label::Kind::Event);
  EXPECT_TRUE(fan[0].label.send);
  EXPECT_EQ(fan[0].label.priority, 3);
}

TEST_F(SemanticsTest, ChoiceOffersAllBranches) {
  const TermId p = ctx.terms().act(action({{"cpu", 1}}), kNil);
  const TermId q = ctx.terms().evt(ctx.event("go"), false, 1, kNil);
  const TermId c = ctx.terms().choice({p, q});
  EXPECT_EQ(sem.transitions(c).size(), 2u);
}

TEST_F(SemanticsTest, ParallelEventInterleaving) {
  const TermId p = ctx.terms().evt(ctx.event("a"), true, 1, kNil);
  const TermId q = ctx.terms().evt(ctx.event("b"), true, 1, kNil);
  const TermId par = ctx.terms().parallel({p, q});
  const auto ls = labels(par);
  EXPECT_EQ(ls.count("a!:1"), 1u);
  EXPECT_EQ(ls.count("b!:1"), 1u);
  // No timed step: neither component offers one.
  for (const auto& tr : sem.transitions(par))
    EXPECT_FALSE(tr.label.is_timed());
}

TEST_F(SemanticsTest, ParallelSynchronizationProducesTau) {
  const TermId p = ctx.terms().evt(ctx.event("go"), true, 2, kNil);
  const TermId q = ctx.terms().evt(ctx.event("go"), false, 3, kNil);
  const TermId par = ctx.terms().parallel({p, q});
  const auto ls = labels(par);
  // Individual offers still available (no restriction) plus the tau with
  // the summed priority.
  EXPECT_EQ(ls.count("go!:2"), 1u);
  EXPECT_EQ(ls.count("go?:3"), 1u);
  EXPECT_EQ(ls.count("tau@go:5"), 1u);
}

TEST_F(SemanticsTest, NoSyncBetweenSameDirections) {
  const TermId p = ctx.terms().evt(ctx.event("go"), true, 2, kNil);
  const TermId q = ctx.terms().evt(ctx.event("go"), true, 3, kNil);
  const TermId par = ctx.terms().parallel({p, q});
  for (const auto& tr : sem.transitions(par))
    EXPECT_NE(tr.label.kind, Label::Kind::Tau);
}

TEST_F(SemanticsTest, Par3CombinesDisjointTimedSteps) {
  const TermId p = ctx.terms().act(action({{"cpu", 1}}), kNil);
  const TermId q = ctx.terms().act(action({{"bus", 2}}), kNil);
  const TermId par = ctx.terms().parallel({p, q});
  const auto fan = sem.transitions(par);
  ASSERT_EQ(fan.size(), 1u);
  EXPECT_EQ(render_label(ctx, fan[0].label), "{(bus,2),(cpu,1)}");
  EXPECT_EQ(fan[0].target, kNil);  // NIL || NIL collapses to NIL
}

TEST_F(SemanticsTest, Par3BlocksOnSharedResource) {
  const TermId p = ctx.terms().act(action({{"cpu", 1}}), kNil);
  const TermId q = ctx.terms().act(action({{"cpu", 2}}), kNil);
  const TermId par = ctx.terms().parallel({p, q});
  // The two components both need cpu: no combined step exists, and neither
  // can step alone (time is global).
  EXPECT_TRUE(sem.transitions(par).empty());
}

TEST_F(SemanticsTest, Par3RequiresEveryComponentToStep) {
  const TermId p = ctx.terms().act(action({{"cpu", 1}}), kNil);
  const TermId blocked = ctx.terms().evt(ctx.event("go"), false, 1, kNil);
  const TermId par = ctx.terms().parallel({p, blocked});
  // `blocked` has no timed step, so no global timed step exists; only the
  // event offer of `blocked` interleaves.
  const auto fan = sem.transitions(par);
  ASSERT_EQ(fan.size(), 1u);
  EXPECT_EQ(fan[0].label.kind, Label::Kind::Event);
}

TEST_F(SemanticsTest, IdleStepsAllowWaiting) {
  // Fig. 2(b): idling steps let a process wait for resource access.
  const TermId busy = ctx.terms().act(action({{"cpu", 2}}), kNil);
  // waiter = {} : waiter'   where waiter' wants cpu
  const TermId wants = ctx.terms().act(action({{"cpu", 1}}), kNil);
  const TermId waiter =
      ctx.terms().choice({wants, ctx.terms().act(kIdleAction, wants)});
  const TermId par = ctx.terms().parallel({busy, waiter});
  const auto fan = sem.prioritized(par);
  // The only surviving global step: busy runs, waiter idles.
  ASSERT_EQ(fan.size(), 1u);
  EXPECT_EQ(render_label(ctx, fan[0].label), "{(cpu,2)}");
}

TEST_F(SemanticsTest, RestrictionBlocksUnmatchedEvents) {
  const TermId p = ctx.terms().evt(ctx.event("go"), true, 2, kNil);
  const EventSetId f = ctx.event_sets().intern({ctx.event("go")});
  const TermId r = ctx.terms().restrict(f, p);
  EXPECT_TRUE(sem.transitions(r).empty());
}

TEST_F(SemanticsTest, RestrictionForcesSynchronization) {
  const TermId p = ctx.terms().evt(ctx.event("go"), true, 2, kNil);
  const TermId q = ctx.terms().evt(ctx.event("go"), false, 3, kNil);
  const EventSetId f = ctx.event_sets().intern({ctx.event("go")});
  const TermId r = ctx.terms().restrict(f, ctx.terms().parallel({p, q}));
  const auto ls = labels(r);
  ASSERT_EQ(ls.size(), 1u);
  EXPECT_EQ(ls.count("tau@go:5"), 1u);
}

TEST_F(SemanticsTest, RestrictionPassesOtherEvents) {
  const TermId p = ctx.terms().evt(ctx.event("free"), true, 1, kNil);
  const EventSetId f = ctx.event_sets().intern({ctx.event("go")});
  const TermId r = ctx.terms().restrict(f, p);
  EXPECT_EQ(sem.transitions(r).size(), 1u);
}

TEST_F(SemanticsTest, ScopeTimedStepsDecrementAndTimeout) {
  // body = cpu-loop; scope of 2 quanta, timeout to handler.
  const DefId loop = ctx.declare("Loop");
  Definition d;
  d.name = "Loop";
  d.body = b.act({{"cpu", b.c(1)}}, b.call("Loop"));
  ctx.define(loop, std::move(d));
  const TermId body = b.start("Loop");
  const TermId handler = ctx.terms().evt(ctx.event("late"), true, 1, kNil);
  ScopeParts parts;
  parts.body = body;
  parts.time_left = 2;
  parts.timeout_handler = handler;
  const TermId s = ctx.terms().scope(parts);

  auto fan1 = sem.transitions(s);
  ASSERT_EQ(fan1.size(), 1u);
  auto fan2 = sem.transitions(fan1[0].target);
  ASSERT_EQ(fan2.size(), 1u);
  // After the second quantum the scope has expired: we are in the handler.
  EXPECT_EQ(fan2[0].target, handler);
}

TEST_F(SemanticsTest, ScopeExceptionExit) {
  // body announces completion via exception label -> exits to exc cont.
  const TermId done_then_loop =
      ctx.terms().evt(ctx.event("complete"), true, 1,
                      ctx.terms().act(action({{"cpu", 1}}), kNil));
  const TermId exc_cont = ctx.terms().evt(ctx.event("after"), true, 1, kNil);
  ScopeParts parts;
  parts.body = done_then_loop;
  parts.time_left = 10;
  parts.exception_label = ctx.event("complete");
  parts.exception_cont = exc_cont;
  const TermId s = ctx.terms().scope(parts);
  const auto fan = sem.transitions(s);
  ASSERT_EQ(fan.size(), 1u);
  EXPECT_EQ(fan[0].target, exc_cont);  // scope dissolved
}

TEST_F(SemanticsTest, ScopeInterruptHandlerAlwaysEnabled) {
  const TermId body = ctx.terms().act(action({{"cpu", 1}}), kNil);
  const TermId handler = ctx.terms().evt(ctx.event("irq"), false, 1, kNil);
  ScopeParts parts;
  parts.body = body;
  parts.time_left = kInfiniteTime;
  parts.interrupt_handler = handler;
  const TermId s = ctx.terms().scope(parts);
  const auto ls = labels(s);
  EXPECT_EQ(ls.count("irq?:1"), 1u);
  EXPECT_EQ(ls.count("{(cpu,1)}"), 1u);
}

TEST_F(SemanticsTest, InfiniteScopeNeverTimesOut) {
  const DefId loop = ctx.declare("Loop2");
  Definition d;
  d.name = "Loop2";
  d.body = b.act({{"cpu", b.c(1)}}, b.call("Loop2"));
  ctx.define(loop, std::move(d));
  ScopeParts parts;
  parts.body = b.start("Loop2");
  parts.time_left = kInfiniteTime;
  parts.timeout_handler = kNil;
  TermId s = ctx.terms().scope(parts);
  for (int i = 0; i < 5; ++i) {
    const auto fan = sem.transitions(s);
    ASSERT_EQ(fan.size(), 1u);
    s = fan[0].target;
    EXPECT_EQ(ctx.terms().kind(s), TermKind::Scope);
  }
}

TEST_F(SemanticsTest, CallUnfoldsDefinitionWithParameters) {
  // Count[n] = (n < 3) -> {(cpu,1)} : Count[n+1] + (n == 3) -> (done!,1).NIL
  b.def("Count", {"n"},
        b.pick({b.when(b.lt(b.p(0), b.c(3)),
                       b.act({{"cpu", b.c(1)}},
                             b.call("Count", {b.add(b.p(0), b.c(1))}))),
                b.when(b.eq(b.p(0), b.c(3)),
                       b.send("done", b.c(1), b.nil()))}));
  TermId t = b.start("Count", {0});
  for (int i = 0; i < 3; ++i) {
    const auto fan = sem.transitions(t);
    ASSERT_EQ(fan.size(), 1u) << "at step " << i;
    EXPECT_TRUE(fan[0].label.is_timed());
    t = fan[0].target;
  }
  const auto fan = sem.transitions(t);
  ASSERT_EQ(fan.size(), 1u);
  EXPECT_EQ(render_label(ctx, fan[0].label), "done!:1");
}

TEST_F(SemanticsTest, GuardFalseBranchVanishes) {
  b.def("G", {"x"},
        b.pick({b.when(b.gt(b.p(0), b.c(10)), b.send("big", b.c(1), b.nil())),
                b.when(b.le(b.p(0), b.c(10)),
                       b.send("small", b.c(1), b.nil()))}));
  const auto small = labels(b.start("G", {5}));
  EXPECT_EQ(small.count("small!:1"), 1u);
  EXPECT_EQ(small.count("big!:1"), 0u);
  const auto big = labels(b.start("G", {11}));
  EXPECT_EQ(big.count("big!:1"), 1u);
}

TEST_F(SemanticsTest, DynamicPriorityExpressionEvaluates) {
  // EDF-style: priority of the cpu access = 10 - (5 - t).
  b.def("Edf", {"t"},
        b.act({{"cpu", b.sub(b.c(10), b.sub(b.c(5), b.p(0)))}},
              b.call("Edf", {b.add(b.p(0), b.c(1))})));
  const auto fan0 = sem.transitions(b.start("Edf", {0}));
  ASSERT_EQ(fan0.size(), 1u);
  EXPECT_EQ(render_label(ctx, fan0[0].label), "{(cpu,5)}");
  const auto fan3 = sem.transitions(b.start("Edf", {3}));
  EXPECT_EQ(render_label(ctx, fan3[0].label), "{(cpu,8)}");
}

TEST_F(SemanticsTest, PrioritizedRemovesPreemptedTimedSteps) {
  // Two processes compete for cpu at priorities 1 and 2; each can idle.
  const TermId lo = ctx.terms().choice(
      {ctx.terms().act(action({{"cpu", 1}}), kNil),
       ctx.terms().act(kIdleAction, kNil)});
  const TermId hi = ctx.terms().choice(
      {ctx.terms().act(action({{"cpu", 2}}), kNil),
       ctx.terms().act(kIdleAction, kNil)});
  const TermId par = ctx.terms().parallel({lo, hi});
  // Unprioritized: hi-runs, lo-runs, both-idle (cpu clash excluded by Par3).
  EXPECT_EQ(sem.transitions(par).size(), 3u);
  const auto fan = sem.prioritized(par);
  ASSERT_EQ(fan.size(), 1u);
  EXPECT_EQ(render_label(ctx, fan[0].label), "{(cpu,2)}");
}

TEST_F(SemanticsTest, TauWithPositivePriorityPreemptsTime) {
  const TermId sender = ctx.terms().evt(ctx.event("go"), true, 1, kNil);
  const TermId receiver = ctx.terms().evt(ctx.event("go"), false, 1, kNil);
  const TermId worker = ctx.terms().act(action({{"cpu", 1}}), kNil);
  // Give the communicating pair idle alternatives so a global timed step
  // exists at all, then restrict "go" so only the tau remains of the pair.
  const EventSetId f = ctx.event_sets().intern({ctx.event("go")});
  const TermId sender2 = ctx.terms().choice(
      {sender, ctx.terms().act(kIdleAction, sender)});
  const TermId receiver2 = ctx.terms().choice(
      {receiver, ctx.terms().act(kIdleAction, receiver)});
  const TermId sys2 = ctx.terms().restrict(
      f, ctx.terms().parallel({sender2, receiver2, worker}));
  const auto fan = sem.prioritized(sys2);
  ASSERT_EQ(fan.size(), 1u);
  EXPECT_EQ(fan[0].label.kind, Label::Kind::Tau);
}

TEST_F(SemanticsTest, TauWithZeroPriorityDoesNotPreempt) {
  const TermId sender = ctx.terms().evt(ctx.event("go"), true, 0, kNil);
  const TermId receiver = ctx.terms().evt(ctx.event("go"), false, 0, kNil);
  const TermId sender2 =
      ctx.terms().choice({sender, ctx.terms().act(kIdleAction, sender)});
  const TermId receiver2 =
      ctx.terms().choice({receiver, ctx.terms().act(kIdleAction, receiver)});
  const TermId worker = ctx.terms().act(action({{"cpu", 1}}), kNil);
  const EventSetId f = ctx.event_sets().intern({ctx.event("go")});
  const TermId sys = ctx.terms().restrict(
      f, ctx.terms().parallel({sender2, receiver2, worker}));
  const auto fan = sem.prioritized(sys);
  // Both the tau and the timed step survive.
  EXPECT_EQ(fan.size(), 2u);
}

TEST_F(SemanticsTest, HigherPriorityEventOfferPreemptsLower) {
  // Same event, same direction, different priorities, in a choice.
  const TermId lo = ctx.terms().evt(ctx.event("e"), true, 1, kNil);
  const TermId hi = ctx.terms().evt(
      ctx.event("e"), true, 2, ctx.terms().act(kIdleAction, kNil));
  const TermId c = ctx.terms().choice({lo, hi});
  const auto fan = sem.prioritized(c);
  ASSERT_EQ(fan.size(), 1u);
  EXPECT_EQ(fan[0].label.priority, 2);
}

TEST_F(SemanticsTest, MemoizationReturnsIdenticalFans) {
  b.def("M", {}, b.act({{"cpu", b.c(1)}}, b.call("M")));
  const TermId t = b.start("M");
  const auto f1 = sem.transitions(t);
  const auto f2 = sem.transitions(t);
  EXPECT_EQ(f1, f2);
  EXPECT_GE(sem.stats().memo_hits, 1u);
}

TEST_F(SemanticsTest, NoMemoModeAgreesWithMemoized) {
  b.def("N", {"k"},
        b.pick({b.when(b.lt(b.p(0), b.c(2)),
                       b.act({{"cpu", b.c(1)}},
                             b.call("N", {b.add(b.p(0), b.c(1))}))),
                b.send("fin", b.c(1), b.nil())}));
  Semantics plain(ctx, /*memoize=*/false);
  const TermId t = b.start("N", {0});
  EXPECT_EQ(sem.transitions(t), plain.transitions(t));
  EXPECT_EQ(sem.prioritized(t), plain.prioritized(t));
}

}  // namespace
