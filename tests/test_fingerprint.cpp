// aadl::instance_fingerprint — the cache key of the analysis service
// (DESIGN.md §11). Two sources that instantiate to the same system must
// hash identically, whatever the author did to the text: the fuzz tests
// permute declaration order, inject comments and blank lines over seeded
// randomness and demand a stable fingerprint; the semantic tests flip one
// timing value and demand a different one. A collision here silently
// serves the wrong verdict, so this is the test with the fuzz budget.
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "aadl/fingerprint.hpp"
#include "aadl/instance.hpp"
#include "aadl/parser.hpp"

namespace {

using namespace aadlsched;

std::string slurp(const std::string& name) {
  std::ifstream in(std::string(AADLSCHED_MODELS_DIR) + "/" + name);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

aadl::Fingerprint fingerprint_of(const std::string& text,
                                 const std::string& root) {
  util::DiagnosticEngine diags("fp.aadl");
  aadl::Model model;
  EXPECT_TRUE(aadl::parse_aadl(model, text, diags)) << diags.render_all();
  auto inst = aadl::instantiate(model, root, diags);
  EXPECT_TRUE(inst && !diags.has_errors()) << diags.render_all();
  return aadl::instance_fingerprint(*inst);
}

// --- text mutators (syntactic no-ops) ----------------------------------

bool is_decl_start(const std::string& line) {
  static const char* kw[] = {"bus ",    "processor ", "device ", "memory ",
                             "thread ", "process ",   "system "};
  if (line.size() < 3 || line[0] != ' ' || line[1] != ' ' || line[2] == ' ')
    return false;
  const std::string body = line.substr(2);
  return std::any_of(std::begin(kw), std::end(kw), [&](const char* k) {
    return body.rfind(k, 0) == 0;
  });
}

/// Split the package body into top-level declaration blocks (keyword line
/// through its matching "  end X;"), shuffle them, and reassemble.
/// Declaration order carries no meaning in AADL, so the fingerprint must
/// not see this.
std::string shuffle_declarations(const std::string& text, std::uint32_t seed) {
  std::istringstream in(text);
  std::vector<std::string> prefix, suffix;
  std::vector<std::vector<std::string>> blocks;
  std::string line;
  enum { Prefix, Body, Suffix } where = Prefix;
  while (std::getline(in, line)) {
    if (where == Prefix) {
      prefix.push_back(line);
      if (line.rfind("public", 0) == 0) where = Body;
      continue;
    }
    if (where == Body && line.rfind("end ", 0) == 0) where = Suffix;
    if (where == Suffix) {
      suffix.push_back(line);
      continue;
    }
    if (is_decl_start(line)) {
      blocks.emplace_back();
      blocks.back().push_back(line);
    } else if (!blocks.empty() &&
               blocks.back().back().rfind("  end ", 0) != 0) {
      blocks.back().push_back(line);  // inside an open block
    }
    // comment/blank lines between blocks are dropped — also a no-op
  }
  std::mt19937 rng(seed);
  std::shuffle(blocks.begin(), blocks.end(), rng);
  std::ostringstream out;
  for (const auto& l : prefix) out << l << "\n";
  for (const auto& b : blocks) {
    out << "\n";
    for (const auto& l : b) out << l << "\n";
  }
  out << "\n";
  for (const auto& l : suffix) out << l << "\n";
  return out.str();
}

/// Sprinkle comments, blank lines and trailing whitespace over the text —
/// every one lexically invisible.
std::string add_noise(const std::string& text, std::uint32_t seed) {
  std::mt19937 rng(seed);
  std::istringstream in(text);
  std::ostringstream out;
  std::string line;
  while (std::getline(in, line)) {
    if (rng() % 4 == 0) out << "  -- noise " << rng() % 1000 << "\n";
    out << line;
    if (rng() % 3 == 0) out << "   -- trailing note";
    out << "\n";
    if (rng() % 5 == 0) out << "\n";
  }
  return out.str();
}

struct ExampleModel {
  const char* file;
  const char* root;
};

constexpr ExampleModel kModels[] = {
    {"cruise_control.aadl", "CruiseControlSystem.impl"},
    {"avionics.aadl", "Avionics.impl"},
    {"storm.aadl", "Storm.impl"},
};

// --- tests --------------------------------------------------------------

TEST(Fingerprint, StableAcrossRuns) {
  for (const ExampleModel& m : kModels) {
    const std::string text = slurp(m.file);
    const auto a = fingerprint_of(text, m.root);
    const auto b = fingerprint_of(text, m.root);
    EXPECT_EQ(a.hex(), b.hex()) << m.file;
    EXPECT_EQ(a.hex().size(), 32u);
  }
}

TEST(Fingerprint, DistinctModelsDistinctFingerprints) {
  std::vector<std::string> seen;
  for (const ExampleModel& m : kModels)
    seen.push_back(fingerprint_of(slurp(m.file), m.root).hex());
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(std::unique(seen.begin(), seen.end()), seen.end());
}

TEST(Fingerprint, InvariantUnderDeclarationShuffle) {
  for (const ExampleModel& m : kModels) {
    const std::string text = slurp(m.file);
    const std::string base = fingerprint_of(text, m.root).hex();
    for (std::uint32_t seed = 1; seed <= 8; ++seed) {
      const std::string shuffled = shuffle_declarations(text, seed);
      EXPECT_EQ(fingerprint_of(shuffled, m.root).hex(), base)
          << m.file << " seed " << seed;
    }
  }
}

TEST(Fingerprint, InvariantUnderCommentAndWhitespaceNoise) {
  for (const ExampleModel& m : kModels) {
    const std::string text = slurp(m.file);
    const std::string base = fingerprint_of(text, m.root).hex();
    for (std::uint32_t seed = 1; seed <= 8; ++seed) {
      EXPECT_EQ(fingerprint_of(add_noise(text, seed), m.root).hex(), base)
          << m.file << " seed " << seed;
    }
  }
}

TEST(Fingerprint, InvariantUnderCombinedMutation) {
  for (const ExampleModel& m : kModels) {
    const std::string text = slurp(m.file);
    const std::string base = fingerprint_of(text, m.root).hex();
    for (std::uint32_t seed = 100; seed < 104; ++seed) {
      const std::string mutated =
          add_noise(shuffle_declarations(text, seed), seed);
      EXPECT_EQ(fingerprint_of(mutated, m.root).hex(), base)
          << m.file << " seed " << seed;
    }
  }
}

/// One replaced substring with real timing impact must move the hash.
void expect_changed(const std::string& text, const std::string& root,
                    const std::string& from, const std::string& to) {
  const std::string base = fingerprint_of(text, root).hex();
  std::string edited = text;
  const auto pos = edited.find(from);
  ASSERT_NE(pos, std::string::npos) << from;
  edited.replace(pos, from.size(), to);
  EXPECT_NE(fingerprint_of(edited, root).hex(), base)
      << "'" << from << "' -> '" << to << "' was invisible";
}

TEST(Fingerprint, SemanticEditsChangeFingerprint) {
  const std::string text = slurp("cruise_control.aadl");
  const std::string root = "CruiseControlSystem.impl";
  expect_changed(text, root, "Period => 100 ms", "Period => 101 ms");
  expect_changed(text, root, "Compute_Execution_Time => 10 ms .. 20 ms",
                 "Compute_Execution_Time => 10 ms .. 25 ms");
  expect_changed(text, root, "Deadline => 50 ms", "Deadline => 45 ms");
  // Adding a subcomponent is a structural change.
  expect_changed(text, root, "cruise1 : thread Cruise1.impl;",
                 "cruise1 : thread Cruise1.impl;\n"
                 "    cruise3 : thread Cruise2.impl;");
  // Rebinding a connection off the bus changes contention.
  expect_changed(text, root,
                 "Actual_Connection_Binding => reference (vme) applies to "
                 "c_mode;",
                 "");
}

TEST(Fingerprint, CanonicalTextIsVersioned) {
  util::DiagnosticEngine diags("fp.aadl");
  aadl::Model model;
  ASSERT_TRUE(aadl::parse_aadl(model, slurp("cruise_control.aadl"), diags));
  auto inst = aadl::instantiate(model, "CruiseControlSystem.impl", diags);
  ASSERT_TRUE(inst && !diags.has_errors());
  const std::string canon = aadl::canonical_instance_text(*inst);
  EXPECT_NE(canon.find("aadlsched-instance-v1"), std::string::npos);
  // Canonical text is itself deterministic.
  EXPECT_EQ(canon, aadl::canonical_instance_text(*inst));
}

}  // namespace
