// Tests for the experiment harness library (src/exp): spec parsing and
// validation, grid expansion, deterministic model rendering, the in-process
// runner, and report schema invariants. The cross-backend byte-identity
// contract is pinned end-to-end by tests/acceptance/exp_smoke.sh; these
// tests cover the library surface underneath it.
#include <gtest/gtest.h>

#include <string>

#include "exp/report.hpp"
#include "exp/runner.hpp"
#include "exp/spec.hpp"
#include "util/json.hpp"

using namespace aadlsched;

namespace {

// --- spec parsing -------------------------------------------------------

TEST(ExpSpec, DefaultsApplyWhenAxesAreAbsent) {
  std::string error;
  const auto spec = exp::parse_experiment_spec("{}", error);
  ASSERT_TRUE(spec.has_value()) << error;
  EXPECT_EQ(spec->policies, std::vector<std::string>{"rm"});
  EXPECT_EQ(spec->task_counts, std::vector<std::size_t>{3});
  EXPECT_EQ(spec->seed_count, 10u);
  EXPECT_EQ(spec->max_states, 200'000u);
  EXPECT_TRUE(spec->run_lint);
}

TEST(ExpSpec, FullDocumentRoundTrips) {
  const std::string doc = R"({
    "name": "full",
    "grid": {
      "policy": ["rm", "dm", "edf", "llf"],
      "utilization": [0.4, 0.8],
      "task_count": [2, 5],
      "deadline_fraction": [0.5, 1.0],
      "quantum_ms": [1, 2],
      "engine": ["enumerative", "auto"],
      "processors": [1, 2]
    },
    "seeds": {"begin": 100, "count": 7},
    "periods": [4, 8, 16],
    "budget": {"max_states": 1234},
    "lint": false,
    "no_reduction": true,
    "bin_width": 0.05,
    "workers": 4
  })";
  std::string error;
  const auto spec = exp::parse_experiment_spec(doc, error);
  ASSERT_TRUE(spec.has_value()) << error;
  EXPECT_EQ(spec->name, "full");
  EXPECT_EQ(spec->policies.size(), 4u);
  EXPECT_EQ(spec->seed_begin, 100u);
  EXPECT_EQ(spec->seed_count, 7u);
  EXPECT_EQ(spec->periods, (std::vector<sched::Time>{4, 8, 16}));
  EXPECT_EQ(spec->max_states, 1234u);
  EXPECT_FALSE(spec->run_lint);
  EXPECT_TRUE(spec->no_reduction);
  EXPECT_DOUBLE_EQ(spec->bin_width, 0.05);
  EXPECT_EQ(spec->workers, 4u);
  // 4 policies * 2 U * 2 n * 2 df * 2 quanta * 2 engines * 2 topologies.
  EXPECT_EQ(exp::expand_grid(*spec).size(), 256u);
}

TEST(ExpSpec, RejectsMalformedDocuments) {
  const auto rejects = [](const std::string& doc, const char* needle) {
    std::string error;
    EXPECT_FALSE(exp::parse_experiment_spec(doc, error).has_value()) << doc;
    EXPECT_NE(error.find(needle), std::string::npos)
        << doc << " -> " << error;
  };
  rejects("{", "JSON");
  rejects(R"({"grid": {"policy": ["fifo"]}})", "policy");
  rejects(R"({"grid": {"engine": ["zonal"]}})", "engine");
  rejects(R"({"grid": {"utilization": [0.0]}})", "utilization");
  rejects(R"({"grid": {"deadline_fraction": [1.5]}})", "deadline_fraction");
  rejects(R"({"grid": {"quantum_ms": [0]}})", "quantum_ms");
  rejects(R"({"grid": {"processors": [0]}})", "processors");
  rejects(R"({"grid": {"policy": []}})", "non-empty");
  rejects(R"({"seeds": {"count": 0}})", "count");
  rejects(R"({"bin_width": 0})", "bin_width");
}

// The regression that motivated this harness: an empty period set reached
// the generator and indexed out of bounds. It must now die at spec load
// with the generator's own diagnostic.
TEST(ExpSpec, EmptyPeriodSetIsASpecLoadError) {
  std::string error;
  EXPECT_FALSE(
      exp::parse_experiment_spec(R"({"periods": []})", error).has_value());
  EXPECT_NE(error.find("period"), std::string::npos) << error;
}

// Wall-clock budgets make outcomes machine-dependent, which would break the
// cross-backend byte-identity contract; the spec loader refuses them.
TEST(ExpSpec, WallClockBudgetsAreRefused) {
  std::string error;
  EXPECT_FALSE(
      exp::parse_experiment_spec(R"({"budget": {"deadline_ms": 100}})", error)
          .has_value());
  EXPECT_NE(error.find("max_states"), std::string::npos) << error;
}

TEST(ExpGrid, ExpansionIsDeterministicPolicyOutermost) {
  exp::ExperimentSpec spec;
  spec.policies = {"rm", "edf"};
  spec.utilizations = {0.3, 0.6};
  const auto cells = exp::expand_grid(spec);
  ASSERT_EQ(cells.size(), 4u);
  EXPECT_EQ(cells[0].policy, "rm");
  EXPECT_DOUBLE_EQ(cells[0].utilization, 0.3);
  EXPECT_EQ(cells[1].policy, "rm");
  EXPECT_DOUBLE_EQ(cells[1].utilization, 0.6);
  EXPECT_EQ(cells[2].policy, "edf");
}

// --- model rendering ----------------------------------------------------

TEST(ExpModel, RenderIsDeterministicAndCarriesProvenance) {
  exp::ExperimentSpec spec;
  spec.name = "prov";
  exp::Cell cell{"rm", 0.6, 3, 1.0, 1, "enumerative", 1};
  std::string error;
  double realized = 0, drift = 0;
  const auto a = exp::render_model(spec, cell, 3, 7, error, &realized, &drift);
  ASSERT_TRUE(a.has_value()) << error;
  const auto b = exp::render_model(spec, cell, 3, 7, error);
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(*a, *b);  // byte-identical across calls (and backends)
  EXPECT_NE(a->find("-- experiment: prov"), std::string::npos);
  EXPECT_NE(a->find("-- cell 3: policy=rm"), std::string::npos);
  EXPECT_NE(a->find("-- seed: 7"), std::string::npos);
  EXPECT_NE(a->find("package Gen"), std::string::npos);
  EXPECT_GT(realized, 0.0);
  EXPECT_NEAR(drift, realized - 0.6, 1e-12);

  const auto c = exp::render_model(spec, cell, 3, 8, error);
  ASSERT_TRUE(c.has_value());
  EXPECT_NE(*a, *c);  // a different seed is a different model
}

TEST(ExpModel, ProcessorsAxisWidensTheTopology) {
  exp::ExperimentSpec spec;
  exp::Cell cell{"rm", 0.6, 4, 1.0, 1, "enumerative", 2};
  std::string error;
  const auto model = exp::render_model(spec, cell, 0, 1, error);
  ASSERT_TRUE(model.has_value()) << error;
  EXPECT_NE(model->find("cpu0 : processor GenCpu"), std::string::npos);
  EXPECT_NE(model->find("cpu1 : processor GenCpu"), std::string::npos);
}

// --- the in-process runner ----------------------------------------------

exp::ExperimentSpec tiny_spec() {
  exp::ExperimentSpec spec;
  spec.name = "tiny";
  spec.policies = {"rm"};
  spec.utilizations = {0.5};
  spec.task_counts = {2};
  spec.seed_begin = 1;
  spec.seed_count = 3;
  spec.workers = 2;
  return spec;
}

TEST(ExpRun, InProcessGridProducesVerdicts) {
  const auto spec = tiny_spec();
  const exp::ExperimentResult result = exp::run_experiment(spec, std::nullopt);
  EXPECT_EQ(result.backend, "in-process");
  EXPECT_EQ(result.total_runs, 3u);
  EXPECT_EQ(result.transport_failures, 0u);
  ASSERT_EQ(result.cells.size(), 1u);
  ASSERT_EQ(result.cells[0].runs.size(), 3u);
  for (const exp::RunOutcome& run : result.cells[0].runs) {
    EXPECT_TRUE(run.generated);
    EXPECT_FALSE(run.transport_failed);
    EXPECT_TRUE(run.outcome == "schedulable" ||
                run.outcome == "not-schedulable" ||
                run.outcome == "inconclusive")
        << run.outcome << " " << run.error;
    EXPECT_TRUE(run.decided_by_class == "static" ||
                run.decided_by_class == "enumerative")
        << run.decided_by_class;
    EXPECT_FALSE(run.result_json.empty());
    EXPECT_GT(run.realized_utilization, 0.0);
  }
}

TEST(ExpRun, VerdictDataIsDeterministicAcrossRuns) {
  const auto spec = tiny_spec();
  const auto a = exp::run_experiment(spec, std::nullopt);
  const auto b = exp::run_experiment(spec, std::nullopt);
  ASSERT_EQ(a.cells.size(), b.cells.size());
  for (std::size_t c = 0; c < a.cells.size(); ++c)
    for (std::size_t r = 0; r < a.cells[c].runs.size(); ++r) {
      const exp::RunOutcome& x = a.cells[c].runs[r];
      const exp::RunOutcome& y = b.cells[c].runs[r];
      EXPECT_EQ(x.seed, y.seed);
      EXPECT_EQ(x.outcome, y.outcome);
      EXPECT_EQ(x.decided_by_class, y.decided_by_class);
      EXPECT_EQ(x.decided_by_ids, y.decided_by_ids);
      EXPECT_EQ(x.result_json, y.result_json);
      EXPECT_DOUBLE_EQ(x.realized_utilization, y.realized_utilization);
    }
}

// --- report schema ------------------------------------------------------

TEST(ExpReport, SchemaAndTalliesHold) {
  const auto spec = tiny_spec();
  const auto result = exp::run_experiment(spec, std::nullopt);
  const std::string report = exp::render_report(spec, result);

  std::string error;
  const auto doc = util::parse_json(report, &error);
  ASSERT_TRUE(doc.has_value()) << error;
  EXPECT_EQ(doc->get("schema_version")->as_int(), exp::kReportSchemaVersion);
  EXPECT_EQ(doc->get("name")->as_string(), "tiny");
  EXPECT_EQ(doc->get("backend")->as_string(), "in-process");

  const auto& cells = doc->get("cells")->as_array();
  ASSERT_EQ(cells.size(), 1u);
  const util::JsonValue* verdicts = cells[0].get("verdicts");
  ASSERT_NE(verdicts, nullptr);
  const auto& runs = verdicts->get("runs")->as_array();
  EXPECT_EQ(runs.size(), 3u);

  // Outcome tally covers every run, acceptance matches it.
  const auto& outcomes = verdicts->get("outcomes")->as_object();
  std::int64_t tally = 0;
  for (const auto& [k, v] : outcomes) tally += v.as_int();
  EXPECT_EQ(tally, 3);
  const double acceptance = verdicts->get("acceptance")->as_double();
  EXPECT_NEAR(acceptance,
              static_cast<double>(outcomes.at("schedulable").as_int()) / 3.0,
              1e-9);

  // decided_by breakdown covers every run too.
  std::int64_t decided = 0;
  for (const auto& [k, v] : verdicts->get("decided_by")->as_object())
    decided += v.as_int();
  EXPECT_EQ(decided, 3);

  // The curve bins every generated run and never over-counts acceptances.
  std::int64_t curve_runs = 0;
  for (const util::JsonValue& bin : doc->get("curve")->as_array()) {
    curve_runs += bin.get("runs")->as_int();
    EXPECT_LE(bin.get("schedulable")->as_int(), bin.get("runs")->as_int());
    EXPECT_LT(bin.get("bin_lo")->as_double(), bin.get("bin_hi")->as_double());
  }
  EXPECT_EQ(curve_runs, 3);

  // Timing lives outside the verdict data.
  EXPECT_NE(doc->get("timing"), nullptr);
  ASSERT_NE(cells[0].get("timing"), nullptr);
  EXPECT_NE(cells[0].get("timing")->get("p95_ms"), nullptr);
}

}  // namespace
