// Malformed-input robustness: every file in tests/corpus/bad/ is hostile in
// a different way (truncated, cyclic extends, garbage tokens, absurd
// property values, unbalanced ends, empty, non-ASCII noise). The frontend
// must answer each with diagnostics and a structured Error outcome — never
// a crash, hang, or silent nonsense verdict. Run under ASan/UBSan via
// `ctest -L asan` to catch the memory bugs a green exit code would hide.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "aadl/parser.hpp"
#include "core/analyzer.hpp"
#include "util/diagnostics.hpp"

using namespace aadlsched;
namespace fs = std::filesystem;

namespace {

std::vector<fs::path> corpus_files() {
  std::vector<fs::path> files;
  for (const auto& entry : fs::directory_iterator(AADLSCHED_CORPUS_DIR)) {
    if (entry.path().extension() == ".aadl") files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  EXPECT_GE(files.size(), 6u) << "corpus went missing from "
                              << AADLSCHED_CORPUS_DIR;
  return files;
}

std::string read_file(const fs::path& p) {
  std::ifstream in(p);
  EXPECT_TRUE(in) << p;
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

TEST(Robustness, ParserNeverCrashesAndFlagsErrors) {
  for (const fs::path& p : corpus_files()) {
    util::DiagnosticEngine diags(p.filename().string());
    aadl::Model model;
    const bool parsed = aadl::parse_aadl(model, read_file(p), diags);
    // Contract: `false` return <=> at least one error diagnostic. Either
    // way the call must come back (no hang on cyclic_extends.aadl, no
    // crash on garbage_tokens.aadl).
    EXPECT_EQ(!parsed, diags.has_errors()) << p.filename();
  }
}

TEST(Robustness, AnalyzerReportsErrorNeverCrashes) {
  // No corpus file defines `Broken.impl`, so even the files that parse
  // reach the instantiation error path: every run must produce a
  // structured Error with a rendered diagnostic, not a crash.
  for (const fs::path& p : corpus_files()) {
    const core::AnalysisResult r =
        core::analyze_file(p.string(), "Broken.impl");
    EXPECT_FALSE(r.ok) << p.filename();
    EXPECT_EQ(r.outcome, core::Outcome::Error) << p.filename();
    EXPECT_FALSE(r.diagnostics.empty()) << p.filename();
  }
}

TEST(Robustness, AbsurdPropertyValuesAreCaughtNotAnalyzed) {
  // absurd_properties.aadl parses; the negative period / inverted range /
  // overflow-scale numbers must surface as diagnostics or lint findings
  // before any state space is built on nonsense timing.
  const fs::path p = fs::path(AADLSCHED_CORPUS_DIR) / "absurd_properties.aadl";
  const core::AnalysisResult r = core::analyze_file(p.string(), "Root.impl");
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.outcome, core::Outcome::Error);
  EXPECT_FALSE(r.diagnostics.empty() &&
               (!r.lint_report || r.lint_report->findings.empty()))
      << "nonsense timing values produced neither diagnostics nor findings";
}

TEST(Robustness, CyclicExtendsTerminates) {
  // `extends` cycles must not send instantiation into infinite recursion;
  // gtest's default timeout would not save us from a hang, so just reaching
  // the assertion below is the point.
  const fs::path p = fs::path(AADLSCHED_CORPUS_DIR) / "cyclic_extends.aadl";
  const core::AnalysisResult r = core::analyze_file(p.string(), "Root.impl");
  SUCCEED() << "terminated with outcome " << core::to_string(r.outcome);
}

}  // namespace
