// Tests for the AADL front end: lexer, parser, instantiation, semantic
// connection resolution, bindings and typed property extraction.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "aadl/instance.hpp"
#include "aadl/lexer.hpp"
#include "aadl/parser.hpp"
#include "aadl/properties.hpp"

using namespace aadlsched;
using namespace aadlsched::aadl;

namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in) << "cannot open " << path;
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

const char* kTinyModel = R"(
package Tiny
public
  processor Cpu
  properties
    Scheduling_Protocol => RATE_MONOTONIC_PROTOCOL;
  end Cpu;

  thread Worker
  features
    ping_in  : in event port;
    data_out : out data port;
  end Worker;

  thread implementation Worker.impl
  properties
    Dispatch_Protocol => Periodic;
    Period => 20 ms;
    Compute_Execution_Time => 5 ms .. 10 ms;
    Deadline => 20 ms;
  end Worker.impl;

  system Root
  end Root;

  system implementation Root.impl
  subcomponents
    cpu : processor Cpu;
    w   : thread Worker.impl;
  properties
    Actual_Processor_Binding => reference (cpu) applies to w;
  end Root.impl;
end Tiny;
)";

// --- lexer ------------------------------------------------------------

TEST(AadlLexer, TokenKinds) {
  util::DiagnosticEngine diags;
  const auto toks = lex("foo : in event port; => +=> -> <-> .. 42 ms 3.5 ::",
                        diags);
  EXPECT_FALSE(diags.has_errors());
  std::vector<TokKind> kinds;
  for (const auto& t : toks) kinds.push_back(t.kind);
  const std::vector<TokKind> expect = {
      TokKind::Ident, TokKind::Colon,  TokKind::Ident, TokKind::Ident,
      TokKind::Ident, TokKind::Semicolon, TokKind::Assoc,
      TokKind::AppendAssoc, TokKind::Arrow, TokKind::BiArrow,
      TokKind::DotDot, TokKind::Integer, TokKind::Ident, TokKind::Real,
      TokKind::ColonColon, TokKind::End};
  EXPECT_EQ(kinds, expect);
}

TEST(AadlLexer, CommentsAndLocations) {
  util::DiagnosticEngine diags;
  const auto toks = lex("-- a comment line\n  name", diags);
  ASSERT_EQ(toks.size(), 2u);
  EXPECT_EQ(toks[0].kind, TokKind::Ident);
  EXPECT_EQ(toks[0].loc.line, 2u);
  EXPECT_EQ(toks[0].loc.column, 3u);
}

TEST(AadlLexer, RangeVersusReal) {
  util::DiagnosticEngine diags;
  const auto toks = lex("5 .. 10 2.5", diags);
  EXPECT_EQ(toks[0].kind, TokKind::Integer);
  EXPECT_EQ(toks[1].kind, TokKind::DotDot);
  EXPECT_EQ(toks[2].kind, TokKind::Integer);
  EXPECT_EQ(toks[3].kind, TokKind::Real);
  EXPECT_DOUBLE_EQ(toks[3].real_value, 2.5);
}

TEST(AadlLexer, ReportsStrayCharacters) {
  util::DiagnosticEngine diags;
  lex("foo $ bar", diags);
  EXPECT_TRUE(diags.has_errors());
}

// --- parser ------------------------------------------------------------

TEST(AadlParser, ParsesTinyModel) {
  Model m;
  util::DiagnosticEngine diags("tiny.aadl");
  ASSERT_TRUE(parse_aadl(m, kTinyModel, diags)) << diags.render_all();
  ASSERT_EQ(m.packages.size(), 1u);
  const Package& pkg = m.packages.at("tiny");
  EXPECT_EQ(pkg.types.size(), 3u);
  EXPECT_EQ(pkg.impls.size(), 2u);

  const ComponentType* worker = m.find_type("worker");
  ASSERT_NE(worker, nullptr);
  EXPECT_EQ(worker->category, Category::Thread);
  ASSERT_EQ(worker->features.size(), 2u);
  EXPECT_EQ(worker->features[0].kind, FeatureKind::EventPort);
  EXPECT_EQ(worker->features[0].direction, Direction::In);
  EXPECT_EQ(worker->features[1].kind, FeatureKind::DataPort);
  EXPECT_EQ(worker->features[1].direction, Direction::Out);

  const ComponentImpl* impl = m.find_impl("worker.impl");
  ASSERT_NE(impl, nullptr);
  EXPECT_EQ(impl->properties.size(), 4u);
}

TEST(AadlParser, CaseInsensitiveLookup) {
  Model m;
  util::DiagnosticEngine diags;
  ASSERT_TRUE(parse_aadl(m, kTinyModel, diags));
  EXPECT_NE(m.find_type("WORKER"), nullptr);  // find_type expects lowered
  EXPECT_NE(m.find_impl("worker.impl"), nullptr);
}

TEST(AadlParser, PropertyValueShapes) {
  Model m;
  util::DiagnosticEngine diags;
  ASSERT_TRUE(parse_aadl(m, R"(
    package P
    public
      thread T
      properties
        Period => 10 ms;
        Compute_Execution_Time => 1 ms .. 2 ms;
        Priority => 7;
        Dispatch_Protocol => Sporadic;
        Source_Text => "main.c";
        Flag => true;
        List_Prop => (1, 2, 3);
      end T;
    end P;
  )", diags)) << diags.render_all();
  const ComponentType* t = m.find_type("t");
  ASSERT_NE(t, nullptr);
  ASSERT_EQ(t->properties.size(), 7u);
  EXPECT_TRUE(t->properties[0].value.is_int());
  EXPECT_EQ(std::get<IntWithUnit>(t->properties[0].value.data).unit, "ms");
  EXPECT_TRUE(t->properties[1].value.is_range());
  EXPECT_TRUE(t->properties[2].value.is_int());
  EXPECT_TRUE(t->properties[3].value.is_ident());
  EXPECT_TRUE(std::holds_alternative<std::string>(
      t->properties[4].value.data));
  EXPECT_TRUE(std::holds_alternative<bool>(t->properties[5].value.data));
  EXPECT_TRUE(t->properties[6].value.is_list());
  EXPECT_EQ(std::get<ListValue>(t->properties[6].value.data).items.size(),
            3u);
}

TEST(AadlParser, QualifiedPropertyNames) {
  Model m;
  util::DiagnosticEngine diags;
  ASSERT_TRUE(parse_aadl(m, R"(
    package P
    public
      thread T
      properties
        Thread_Properties::Period => 10 ms;
      end T;
    end P;
  )", diags)) << diags.render_all();
  EXPECT_EQ(m.find_type("t")->properties[0].name,
            "thread_properties::period");
}

TEST(AadlParser, RecoversAfterError) {
  Model m;
  util::DiagnosticEngine diags;
  EXPECT_FALSE(parse_aadl(m, R"(
    package P
    public
      thread T
      properties
        Broken => => ;
        Period => 10 ms;
      end T;
    end P;
  )", diags));
  EXPECT_TRUE(diags.has_errors());
  // The good property after the bad one was still parsed.
  const ComponentType* t = m.find_type("t");
  ASSERT_NE(t, nullptr);
  ASSERT_EQ(t->properties.size(), 1u);
  EXPECT_EQ(t->properties[0].name, "period");
}

TEST(AadlParser, AppliesToPaths) {
  Model m;
  util::DiagnosticEngine diags;
  ASSERT_TRUE(parse_aadl(m, R"(
    package P
    public
      system S
      end S;
      system implementation S.impl
      properties
        Actual_Processor_Binding => reference (cpu) applies to a.b, c;
      end S.impl;
    end P;
  )", diags)) << diags.render_all();
  const ComponentImpl* s = m.find_impl("s.impl");
  ASSERT_NE(s, nullptr);
  ASSERT_EQ(s->properties.size(), 1u);
  ASSERT_EQ(s->properties[0].applies_to.size(), 2u);
  EXPECT_EQ(s->properties[0].applies_to[0],
            (std::vector<std::string>{"a", "b"}));
  EXPECT_TRUE(s->properties[0].value.is_reference());
}

TEST(AadlParser, ModesParsedAndIgnored) {
  Model m;
  util::DiagnosticEngine diags;
  ASSERT_TRUE(parse_aadl(m, R"(
    package P
    public
      system S
      end S;
      system implementation S.impl
      modes
        nominal : initial mode;
        degraded : mode;
      end S.impl;
    end P;
  )", diags)) << diags.render_all();
  const ComponentImpl* s = m.find_impl("s.impl");
  ASSERT_EQ(s->modes.size(), 2u);
  EXPECT_TRUE(s->modes[0].initial);
  EXPECT_FALSE(s->modes[1].initial);
}

// --- instantiation -------------------------------------------------------

TEST(AadlInstance, BuildsTreeAndBindings) {
  Model m;
  util::DiagnosticEngine diags;
  ASSERT_TRUE(parse_aadl(m, kTinyModel, diags));
  auto inst = instantiate(m, "Root.impl", diags);
  ASSERT_NE(inst, nullptr);
  EXPECT_FALSE(diags.has_errors()) << diags.render_all();
  EXPECT_EQ(inst->threads.size(), 1u);
  EXPECT_EQ(inst->processors.size(), 1u);
  const ComponentInstance* w = inst->find("w");
  ASSERT_NE(w, nullptr);
  EXPECT_EQ(w->category, Category::Thread);
  ASSERT_TRUE(inst->bindings.count(w));
  EXPECT_EQ(inst->bindings.at(w)->path, "cpu");
}

TEST(AadlInstance, MissingRootReported) {
  Model m;
  util::DiagnosticEngine diags;
  ASSERT_TRUE(parse_aadl(m, kTinyModel, diags));
  EXPECT_EQ(instantiate(m, "Nope.impl", diags), nullptr);
  EXPECT_TRUE(diags.has_errors());
}

TEST(AadlInstance, CruiseControlStructure) {
  Model m;
  util::DiagnosticEngine diags("cruise_control.aadl");
  ASSERT_TRUE(parse_aadl(
      m, read_file(std::string(AADLSCHED_MODELS_DIR) + "/cruise_control.aadl"),
      diags))
      << diags.render_all();
  auto inst = instantiate(m, "CruiseControlSystem.impl", diags);
  ASSERT_NE(inst, nullptr);
  EXPECT_FALSE(diags.has_errors()) << diags.render_all();

  // Six threads, two processors, one bus (Fig. 1).
  EXPECT_EQ(inst->threads.size(), 6u);
  EXPECT_EQ(inst->processors.size(), 2u);
  EXPECT_EQ(inst->buses.size(), 1u);

  // Every thread is bound; HCI threads to hci_processor.
  const ComponentInstance* refspeed = inst->find("hci.refspeed");
  ASSERT_NE(refspeed, nullptr);
  ASSERT_TRUE(inst->bindings.count(refspeed));
  EXPECT_EQ(inst->bindings.at(refspeed)->path, "hci_processor");
  const ComponentInstance* cruise2 = inst->find("ccl.cruise2");
  ASSERT_TRUE(inst->bindings.count(cruise2));
  EXPECT_EQ(inst->bindings.at(cruise2)->path, "ccl_processor");

  EXPECT_EQ(inst->threads_on(inst->find("hci_processor")).size(), 4u);
  EXPECT_EQ(inst->threads_on(inst->find("ccl_processor")).size(), 2u);
}

TEST(AadlInstance, CruiseControlSemanticConnections) {
  Model m;
  util::DiagnosticEngine diags;
  ASSERT_TRUE(parse_aadl(
      m, read_file(std::string(AADLSCHED_MODELS_DIR) + "/cruise_control.aadl"),
      diags));
  auto inst = instantiate(m, "CruiseControlSystem.impl", diags);
  ASSERT_NE(inst, nullptr);

  // Five semantic connections: buttons->dml, buttons->display,
  // refspeed->cruise1 (3 syntactic hops, via bus), dml->cruise2 (via bus),
  // cruise1->cruise2.
  ASSERT_EQ(inst->connections.size(), 5u);

  const SemanticConnection* cross = nullptr;
  for (const auto& sc : inst->connections)
    if (sc.source->path == "hci.refspeed") cross = &sc;
  ASSERT_NE(cross, nullptr);
  EXPECT_EQ(cross->destination->path, "ccl.cruise1");
  EXPECT_EQ(cross->destination_port, "ref_in");
  // The paper: "This connection contains three syntactic connections and
  // is mapped to the bus component."
  EXPECT_EQ(cross->via.size(), 3u);
  ASSERT_NE(cross->bus, nullptr);
  EXPECT_EQ(cross->bus->path, "vme");

  // The local connection within HCI has one syntactic hop and no bus.
  const SemanticConnection* local = nullptr;
  for (const auto& sc : inst->connections)
    if (sc.source->path == "hci.buttonpanel" &&
        sc.destination->path == "hci.drivermodelogic")
      local = &sc;
  ASSERT_NE(local, nullptr);
  EXPECT_EQ(local->via.size(), 1u);
  EXPECT_EQ(local->bus, nullptr);
}

// --- typed properties ------------------------------------------------------

TEST(AadlProperties, ThreadTiming) {
  Model m;
  util::DiagnosticEngine diags;
  ASSERT_TRUE(parse_aadl(m, kTinyModel, diags));
  auto inst = instantiate(m, "Root.impl", diags);
  const ComponentInstance* w = inst->find("w");
  auto tp = thread_properties(*inst, *w, diags);
  ASSERT_TRUE(tp.has_value()) << diags.render_all();
  EXPECT_EQ(tp->dispatch, DispatchProtocol::Periodic);
  EXPECT_EQ(tp->period_ns, 20'000'000);
  EXPECT_EQ(tp->compute_min_ns, 5'000'000);
  EXPECT_EQ(tp->compute_max_ns, 10'000'000);
  EXPECT_EQ(tp->deadline_ns, 20'000'000);
}

TEST(AadlProperties, ImplicitDeadlineDefaultsToPeriod) {
  Model m;
  util::DiagnosticEngine diags;
  ASSERT_TRUE(parse_aadl(m, R"(
    package P
    public
      thread T
      end T;
      thread implementation T.impl
      properties
        Dispatch_Protocol => Periodic;
        Period => 42 ms;
        Compute_Execution_Time => 1 ms .. 1 ms;
      end T.impl;
      processor C
      end C;
      system R
      end R;
      system implementation R.impl
      subcomponents
        t : thread T.impl;
        c : processor C;
      properties
        Actual_Processor_Binding => reference (c) applies to t;
      end R.impl;
    end P;
  )", diags)) << diags.render_all();
  auto inst = instantiate(m, "R.impl", diags);
  auto tp = thread_properties(*inst, *inst->find("t"), diags);
  ASSERT_TRUE(tp.has_value());
  EXPECT_EQ(tp->deadline_ns, 42'000'000);
}

TEST(AadlProperties, MissingDispatchProtocolReported) {
  Model m;
  util::DiagnosticEngine diags;
  ASSERT_TRUE(parse_aadl(m, R"(
    package P
    public
      thread T
      end T;
      system R
      end R;
      system implementation R.impl
      subcomponents
        t : thread T;
      end R.impl;
    end P;
  )", diags));
  auto inst = instantiate(m, "R.impl", diags);
  util::DiagnosticEngine d2;
  EXPECT_FALSE(thread_properties(*inst, *inst->find("t"), d2).has_value());
  EXPECT_TRUE(d2.has_errors());
}

TEST(AadlProperties, TimeUnits) {
  util::DiagnosticEngine diags;
  EXPECT_EQ(time_to_ns({5, "ms"}, diags, {}).value(), 5'000'000);
  EXPECT_EQ(time_to_ns({5, "us"}, diags, {}).value(), 5'000);
  EXPECT_EQ(time_to_ns({5, "ns"}, diags, {}).value(), 5);
  EXPECT_EQ(time_to_ns({2, "sec"}, diags, {}).value(), 2'000'000'000);
  EXPECT_EQ(time_to_ns({1, "min"}, diags, {}).value(), 60'000'000'000LL);
  EXPECT_FALSE(diags.has_errors());
  EXPECT_FALSE(time_to_ns({5, "parsecs"}, diags, {}).has_value());
  EXPECT_TRUE(diags.has_errors());
}

TEST(AadlProperties, SchedulingProtocolNames) {
  Model m;
  util::DiagnosticEngine diags;
  ASSERT_TRUE(parse_aadl(m, R"(
    package P
    public
      processor A
      properties
        Scheduling_Protocol => RATE_MONOTONIC_PROTOCOL;
      end A;
      processor B
      properties
        Scheduling_Protocol => EDF_PROTOCOL;
      end B;
      processor C
      properties
        Scheduling_Protocol => DEADLINE_MONOTONIC_PROTOCOL;
      end C;
      system R
      end R;
      system implementation R.impl
      subcomponents
        a : processor A;
        b : processor B;
        c : processor C;
      end R.impl;
    end P;
  )", diags)) << diags.render_all();
  auto inst = instantiate(m, "R.impl", diags);
  EXPECT_EQ(scheduling_protocol(*inst, *inst->find("a"), diags),
            SchedulingProtocol::RateMonotonic);
  EXPECT_EQ(scheduling_protocol(*inst, *inst->find("b"), diags),
            SchedulingProtocol::Edf);
  EXPECT_EQ(scheduling_protocol(*inst, *inst->find("c"), diags),
            SchedulingProtocol::DeadlineMonotonic);
}

TEST(AadlProperties, QueueProperties) {
  Model m;
  util::DiagnosticEngine diags;
  ASSERT_TRUE(parse_aadl(m, R"(
    package P
    public
      thread Src
      features
        evt_out : out event port;
      end Src;
      thread implementation Src.impl
      properties
        Dispatch_Protocol => Periodic;
        Period => 10 ms;
        Compute_Execution_Time => 1 ms .. 1 ms;
      end Src.impl;
      thread Dst
      features
        evt_in : in event port { Queue_Size => 4; };
      end Dst;
      thread implementation Dst.impl
      properties
        Dispatch_Protocol => Aperiodic;
        Compute_Execution_Time => 1 ms .. 1 ms;
        Deadline => 5 ms;
      end Dst.impl;
      processor C
      end C;
      system R
      end R;
      system implementation R.impl
      subcomponents
        s : thread Src.impl;
        d : thread Dst.impl;
        c : processor C;
      connections
        conn : port s.evt_out -> d.evt_in;
      properties
        Actual_Processor_Binding => reference (c) applies to s;
        Actual_Processor_Binding => reference (c) applies to d;
        Overflow_Handling_Protocol => Error applies to conn;
      end R.impl;
    end P;
  )", diags)) << diags.render_all();
  auto inst = instantiate(m, "R.impl", diags);
  ASSERT_EQ(inst->connections.size(), 1u);
  const auto cp = connection_properties(*inst, inst->connections[0], diags);
  EXPECT_EQ(cp.queue_size, 4);
  EXPECT_EQ(cp.overflow, OverflowProtocol::Error);
}

}  // namespace
