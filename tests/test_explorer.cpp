// Tests for the VERSA-analogue explorer: reachability, deadlock detection,
// shortest-counterexample traces, state inspection, and a hand-built
// schedulability example (deadlock <=> overload).
#include <gtest/gtest.h>

#include "acsr/builder.hpp"
#include "acsr/semantics.hpp"
#include "versa/explorer.hpp"
#include "versa/inspection.hpp"
#include "versa/sweep.hpp"

using namespace aadlsched;
using namespace aadlsched::acsr;
using namespace aadlsched::versa;

namespace {

/// Hand-built periodic task: executes C quanta within every period of T
/// quanta at fixed cpu priority `prio`; misses (no transition) if the work
/// does not fit. Parameters: e = executed quanta, t = elapsed in period.
void define_task(Builder& b, const std::string& name, int C, int T,
                 int prio) {
  // e < C, t < T-1 : run or be preempted
  // e == C, t < T-1: idle out the period
  // t == T-1       : last quantum; must reach e == C by the step's end
  const auto e = b.p(0), t = b.p(1);
  std::vector<OpenTermId> alts;
  // run (possible whenever e < C):
  alts.push_back(b.when(
      b.both(b.lt(e, b.c(C)), b.lt(t, b.c(T - 1))),
      b.act({{"cpu", b.c(prio)}},
            b.call(name, {b.add(e, b.c(1)), b.add(t, b.c(1))}))));
  // run in the final quantum only if it completes the job:
  alts.push_back(b.when(
      b.both(b.eq(e, b.c(C - 1)), b.eq(t, b.c(T - 1))),
      b.act({{"cpu", b.c(prio)}}, b.call(name, {b.c(0), b.c(0)}))));
  // preempted (e < C): lose the quantum
  alts.push_back(b.when(b.both(b.lt(e, b.c(C)), b.lt(t, b.c(T - 1))),
                        b.idle(b.call(name, {e, b.add(t, b.c(1))}))));
  // done, wait for next period
  alts.push_back(b.when(b.both(b.eq(e, b.c(C)), b.lt(t, b.c(T - 1))),
                        b.idle(b.call(name, {e, b.add(t, b.c(1))}))));
  alts.push_back(b.when(b.both(b.eq(e, b.c(C)), b.eq(t, b.c(T - 1))),
                        b.idle(b.call(name, {b.c(0), b.c(0)}))));
  b.def(name, {"e", "t"}, b.pick(std::move(alts)), DefRole::ThreadState,
        "sys." + name, "Compute");
}

TEST(Explorer, SingleIdlingStateIsComplete) {
  Context ctx;
  Builder b(ctx);
  b.def("P", {}, b.idle(b.call("P")));
  Semantics sem(ctx);
  const auto r = explore(sem, b.start("P"));
  EXPECT_TRUE(r.complete);
  EXPECT_FALSE(r.deadlock_found);
  EXPECT_EQ(r.states, 1u);
  EXPECT_TRUE(r.schedulable());
}

TEST(Explorer, ImmediateDeadlockDetected) {
  Context ctx;
  Semantics sem(ctx);
  const auto r = explore(sem, kNil);
  EXPECT_TRUE(r.deadlock_found);
  EXPECT_EQ(r.first_deadlock, kNil);
  EXPECT_TRUE(r.trace.empty());  // the initial state itself is dead
  EXPECT_FALSE(r.schedulable());
}

TEST(Explorer, TraceIsShortestPathToDeadlock) {
  Context ctx;
  Builder b(ctx);
  // Two routes to NIL: a 3-step one and a 1-step one; BFS must report 1.
  b.def("Long", {}, b.idle(b.idle(b.idle(b.nil()))));
  b.def("Short", {}, b.send("bang", b.c(1), b.nil()));
  b.def("Race", {}, b.pick({b.call("Long"), b.call("Short")}));
  Semantics sem(ctx);
  const auto r = explore(sem, b.start("Race"));
  ASSERT_TRUE(r.deadlock_found);
  EXPECT_EQ(r.trace.size(), 1u);
}

TEST(Explorer, MaxStatesBailsOutIncomplete) {
  Context ctx;
  Builder b(ctx);
  // Counter with a huge bound: exploring all of it would take 1e6 states.
  b.def("C", {"n"},
        b.when(b.lt(b.p(0), b.c(1'000'000)),
               b.idle(b.call("C", {b.add(b.p(0), b.c(1))}))));
  Semantics sem(ctx);
  ExploreOptions opts;
  opts.max_states = 100;
  const auto r = explore(sem, b.start("C", {0}), opts);
  EXPECT_FALSE(r.complete);
  EXPECT_FALSE(r.schedulable());
  EXPECT_EQ(r.states, 100u);
}

TEST(Explorer, CountsAllDeadlocksWhenAsked) {
  Context ctx;
  Builder b(ctx);
  // Two distinct dead ends reached by two distinct first events.
  b.def("D", {},
        b.pick({b.send("a", b.c(1), b.send("a2", b.c(1), b.nil())),
                b.send("bb", b.c(1), b.send("b2", b.c(1), b.nil()))}));
  Semantics sem(ctx);
  ExploreOptions opts;
  opts.stop_at_first_deadlock = false;
  const auto r = explore(sem, b.start("D"), opts);
  EXPECT_TRUE(r.complete);
  // Both branches funnel into NIL, which is a single shared state.
  EXPECT_EQ(r.deadlock_count, 1u);
  EXPECT_TRUE(r.deadlock_found);
}

TEST(Explorer, TwoTasksFullUtilizationSchedulable) {
  Context ctx;
  Builder b(ctx);
  define_task(b, "T1", 1, 2, 2);
  define_task(b, "T2", 1, 2, 1);
  Semantics sem(ctx);
  const TermId sys =
      ctx.terms().parallel({b.start("T1", {0, 0}), b.start("T2", {0, 0})});
  const auto r = explore(sem, sys);
  EXPECT_TRUE(r.complete);
  EXPECT_FALSE(r.deadlock_found) << "U = 1.0 with harmonic periods fits";
}

TEST(Explorer, OverloadedTasksDeadlock) {
  Context ctx;
  Builder b(ctx);
  define_task(b, "T1", 2, 3, 2);
  define_task(b, "T2", 2, 3, 1);
  Semantics sem(ctx);
  const TermId sys =
      ctx.terms().parallel({b.start("T1", {0, 0}), b.start("T2", {0, 0})});
  const auto r = explore(sem, sys);
  EXPECT_TRUE(r.deadlock_found) << "U = 4/3 cannot be schedulable";
  EXPECT_FALSE(r.trace.empty());
  // Every step of the reported failing scenario is a timed quantum or an
  // event; the final state has no successors.
  EXPECT_TRUE(sem.prioritized(r.first_deadlock).empty());
}

TEST(Explorer, InspectionSeesThreadParameters) {
  Context ctx;
  Builder b(ctx);
  define_task(b, "T1", 1, 3, 2);
  define_task(b, "T2", 1, 3, 1);
  Semantics sem(ctx);
  const TermId sys =
      ctx.terms().parallel({b.start("T1", {0, 0}), b.start("T2", {0, 0})});
  const auto components = inspect(ctx, sys);
  ASSERT_EQ(components.size(), 2u);
  const auto* t1 = find_by_path(components, "sys.T1");
  ASSERT_NE(t1, nullptr);
  EXPECT_EQ(t1->state_name, "Compute");
  EXPECT_EQ(t1->role, DefRole::ThreadState);
  ASSERT_EQ(t1->params.size(), 2u);
  EXPECT_EQ(t1->params[0], 0);

  // After the first quantum, the higher-priority task has executed 1.
  const auto fan = sem.prioritized(sys);
  ASSERT_FALSE(fan.empty());
  const auto after = inspect(ctx, fan[0].target);
  const auto* t1b = find_by_path(after, "sys.T1");
  ASSERT_NE(t1b, nullptr);
  EXPECT_EQ(t1b->params[0], 1);
}

TEST(Explorer, InspectionHandlesRestrictionAndScope) {
  Context ctx;
  Builder b(ctx);
  b.def("P", {"n"}, b.idle(b.call("P", {b.p(0)})), DefRole::Queue, "q.e1",
        "Queue");
  const TermId inner = b.start("P", {2});
  ScopeParts parts;
  parts.body = inner;
  parts.time_left = 5;
  const TermId scoped = ctx.terms().scope(parts);
  const TermId sys = ctx.terms().restrict(
      ctx.event_sets().intern({ctx.event("x")}), scoped);
  const auto components = inspect(ctx, sys);
  ASSERT_EQ(components.size(), 1u);
  EXPECT_EQ(components[0].aadl_path, "q.e1");
  EXPECT_EQ(components[0].params[0], 2);
}

TEST(Explorer, LtsEnumeratesWholeSpace) {
  Context ctx;
  Builder b(ctx);
  b.def("Flip", {"s"},
        b.pick({b.when(b.eq(b.p(0), b.c(0)), b.idle(b.call("Flip", {b.c(1)}))),
                b.when(b.eq(b.p(0), b.c(1)),
                       b.idle(b.call("Flip", {b.c(0)})))}));
  Semantics sem(ctx);
  const auto lts = build_lts(sem, b.start("Flip", {0}));
  EXPECT_EQ(lts.states.size(), 2u);
  EXPECT_EQ(lts.edges.size(), 2u);
  EXPECT_EQ(lts.edges[0].size(), 1u);
  EXPECT_EQ(lts.edges[0][0].target, lts.states[1]);
}

TEST(Explorer, LtsMaxStatesLeavesNoDanglingIndex) {
  Context ctx;
  Builder b(ctx);
  // Unbounded-ish counter: far more reachable states than the cap.
  b.def("C", {"n"},
        b.when(b.lt(b.p(0), b.c(1'000)),
               b.idle(b.call("C", {b.add(b.p(0), b.c(1))}))));
  Semantics sem(ctx);
  const auto lts = build_lts(sem, b.start("C", {0}), /*max_states=*/10);
  // Regression: the index used to get an entry for a state that was never
  // pushed once the cap was hit, leaving a dangling slot number.
  EXPECT_EQ(lts.states.size(), 10u);
  EXPECT_EQ(lts.index.size(), lts.states.size());
  EXPECT_EQ(lts.edges.size(), lts.states.size());
  for (const auto& [term, slot] : lts.index) {
    ASSERT_LT(slot, lts.states.size());
    EXPECT_EQ(lts.states[slot], term);
  }
}

TEST(Explorer, SerialExploreReportsObservability) {
  Context ctx;
  Builder b(ctx);
  define_task(b, "T1", 1, 3, 2);
  define_task(b, "T2", 1, 3, 1);
  Semantics sem(ctx);
  const TermId sys =
      ctx.terms().parallel({b.start("T1", {0, 0}), b.start("T2", {0, 0})});
  const auto r = explore(sem, sys);
  EXPECT_GE(r.wall_ms, 0.0);
  EXPECT_GE(r.peak_frontier, 1u);
  ASSERT_EQ(r.worker_states.size(), 1u);  // serial engine = one worker
  EXPECT_GT(r.worker_states[0], 0u);
  EXPECT_GT(r.sem_stats.computed, 0u);
  EXPECT_EQ(r.sem_stats.computed, sem.stats().computed)
      << "fresh Semantics: delta equals totals";
}

TEST(Explorer, ParallelSweepRunsIndependentAnalyses) {
  std::vector<int> verdicts(8, -1);
  parallel_sweep(8, [&](std::size_t i) {
    Context ctx;
    Builder b(ctx);
    // Jobs alternate between a schedulable and an overloaded pair.
    const int c = (i % 2 == 0) ? 1 : 2;
    define_task(b, "T1", c, 3, 2);
    define_task(b, "T2", c, 3, 1);
    Semantics sem(ctx);
    const TermId sys =
        ctx.terms().parallel({b.start("T1", {0, 0}), b.start("T2", {0, 0})});
    verdicts[i] = explore(sem, sys).deadlock_found ? 1 : 0;
  }, /*workers=*/4);
  for (std::size_t i = 0; i < verdicts.size(); ++i)
    EXPECT_EQ(verdicts[i], static_cast<int>(i % 2)) << "job " << i;
}

}  // namespace
