// End-to-end reproduction tests for the paper's running example (Fig. 1):
// the cruise-control system analyzed through the full pipeline.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "acsr/parser.hpp"
#include "acsr/semantics.hpp"
#include "core/analyzer.hpp"
#include "versa/explorer.hpp"

using namespace aadlsched;
using namespace aadlsched::core;

namespace {

std::string model_source() {
  std::ifstream in(std::string(AADLSCHED_MODELS_DIR) +
                   "/cruise_control.aadl");
  EXPECT_TRUE(in);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

AnalyzerOptions ten_ms() {
  AnalyzerOptions opts;
  opts.translation.quantum_ns = 10'000'000;
  return opts;
}

TEST(CruiseControl, IsSchedulable) {
  const auto r = analyze_source(model_source(), "CruiseControlSystem.impl",
                                ten_ms());
  EXPECT_TRUE(r.ok) << r.diagnostics;
  EXPECT_TRUE(r.schedulable) << r.summary();
  EXPECT_TRUE(r.exhaustive);
  EXPECT_GT(r.states, 10u);
  ASSERT_EQ(r.threads.size(), 6u);
}

TEST(CruiseControl, RmPrioritiesFollowPeriods) {
  const auto r = analyze_source(model_source(), "CruiseControlSystem.impl",
                                ten_ms());
  ASSERT_TRUE(r.ok);
  const auto prio = [&](std::string_view path) {
    for (const auto& t : r.threads)
      if (t.path == path) return t.static_priority;
    ADD_FAILURE() << "no thread " << path;
    return -1;
  };
  // On hci_processor: 50 ms threads above 100 ms threads.
  EXPECT_GT(prio("hci.buttonpanel"), prio("hci.drivermodelogic"));
  EXPECT_GT(prio("hci.refspeed"), prio("hci.instrumentpanel"));
  // On ccl_processor: cruise1 (50 ms) above cruise2 (100 ms).
  EXPECT_GT(prio("ccl.cruise1"), prio("ccl.cruise2"));
}

TEST(CruiseControl, TranslationMatchesPaperCounts) {
  // §4.1: "the translation produces six ACSR processes that represent
  // threads and six ACSR processes that represent dispatchers for each
  // thread. All connections in the example are data connections, thus no
  // queue processes are introduced."
  std::string diagnostics;
  const std::string acsr = render_acsr(
      model_source(), "CruiseControlSystem.impl", diagnostics,
      ten_ms().translation);
  ASSERT_FALSE(acsr.empty()) << diagnostics;
  int skeletons = 0, dispatchers = 0, queues = 0;
  std::istringstream is(acsr);
  std::string line;
  while (std::getline(is, line)) {
    if (line.rfind("T_", 0) == 0 &&
        line.find("_Compute[e, t") != std::string::npos &&
        line.find("] =") != std::string::npos)
      ++skeletons;
    if (line.rfind("D_", 0) == 0 && line.find("_Idle[t] =") !=
                                        std::string::npos)
      ++dispatchers;
    if (line.rfind("Q_", 0) == 0) ++queues;
  }
  EXPECT_EQ(skeletons, 6);
  EXPECT_EQ(dispatchers, 6);
  EXPECT_EQ(queues, 0);
  // The bus shows up as a shared resource in the two bus-bound threads.
  EXPECT_NE(acsr.find("bus_vme"), std::string::npos);
}

TEST(CruiseControl, OverloadedVariantProducesScenario) {
  // Halve Cruise1's period: 2 quanta of work every 2 quanta plus Cruise2's
  // 2 quanta every 10 exceeds the ccl processor.
  std::string src = model_source();
  const std::string find = "    Period => 50 ms;\n"
                           "    Compute_Execution_Time => 10 ms .. 20 ms;\n"
                           "    Deadline => 50 ms;\n"
                           "  end Cruise1.impl;";
  const auto pos = src.find(find);
  ASSERT_NE(pos, std::string::npos);
  src.replace(pos, find.size(),
              "    Period => 20 ms;\n"
              "    Compute_Execution_Time => 20 ms .. 20 ms;\n"
              "    Deadline => 20 ms;\n"
              "  end Cruise1.impl;");
  const auto r =
      analyze_source(src, "CruiseControlSystem.impl", ten_ms());
  EXPECT_TRUE(r.ok) << r.diagnostics;
  EXPECT_FALSE(r.schedulable);
  ASSERT_TRUE(r.scenario.has_value());
  // The failing scenario names a ccl thread.
  ASSERT_FALSE(r.scenario->missed_threads.empty());
  bool ccl_missed = false;
  for (const auto& m : r.scenario->missed_threads)
    ccl_missed |= m.rfind("ccl.", 0) == 0;
  EXPECT_TRUE(ccl_missed) << r.summary();
  // The timeline covers all six threads.
  EXPECT_EQ(r.scenario->timeline.size(), 6u);
  EXPECT_GT(r.scenario->quanta, 0);
}

TEST(CruiseControl, FinerQuantumGrowsStateSpace) {
  // §4.1: "Precision of the timing analysis can be improved by making
  // scheduling quanta smaller, which tends to increase the size of the
  // state space."
  AnalyzerOptions coarse = ten_ms();
  AnalyzerOptions fine = ten_ms();
  fine.translation.quantum_ns = 5'000'000;  // 5 ms
  const auto rc =
      analyze_source(model_source(), "CruiseControlSystem.impl", coarse);
  const auto rf =
      analyze_source(model_source(), "CruiseControlSystem.impl", fine);
  ASSERT_TRUE(rc.ok);
  ASSERT_TRUE(rf.ok);
  EXPECT_TRUE(rc.schedulable);
  EXPECT_TRUE(rf.schedulable);
  EXPECT_GT(rf.states, rc.states);
}

TEST(CruiseControl, AcsrDumpIsSelfContained) {
  // The printed ACSR module ends in a "System" definition; parsing it back
  // into a fresh context and exploring System reproduces the verdict —
  // printer, parser, semantics and explorer close the loop, exactly like
  // feeding the paper's generated model to VERSA.
  std::string diagnostics;
  const std::string acsr =
      render_acsr(model_source(), "CruiseControlSystem.impl", diagnostics,
                  ten_ms().translation);
  ASSERT_FALSE(acsr.empty()) << diagnostics;

  acsr::Context ctx;
  util::DiagnosticEngine diags("dump.acsr");
  ASSERT_TRUE(acsr::parse_module(ctx, acsr, diags)) << diags.render_all();
  const auto system = ctx.find_definition("System");
  ASSERT_TRUE(system.has_value());

  acsr::Semantics sem(ctx);
  const auto r =
      versa::explore(sem, ctx.terms().call(*system, {}));
  EXPECT_TRUE(r.complete);
  EXPECT_FALSE(r.deadlock_found);

  // Same state count as the direct pipeline.
  const auto direct = analyze_source(model_source(),
                                     "CruiseControlSystem.impl", ten_ms());
  EXPECT_EQ(r.states, direct.states);
}

TEST(CruiseControl, SummaryRendersHumanReadable) {
  const auto r = analyze_source(model_source(), "CruiseControlSystem.impl",
                                ten_ms());
  const std::string s = r.summary();
  EXPECT_NE(s.find("SCHEDULABLE"), std::string::npos);
  EXPECT_NE(s.find("states"), std::string::npos);
}

}  // namespace
