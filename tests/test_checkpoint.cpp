// Warm re-exploration (DESIGN.md §12): checkpoint capture on budget-bound
// runs, resume determinism (a resumed run must reach the exact verdict and
// state counts a cold run reaches, and render a byte-identical canonical
// result object), corruption fallback, and the versa-level serialize/parse
// round trip. The parallel tests run under the tsan ctest label.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "core/analyzer.hpp"
#include "core/result_json.hpp"
#include "util/hash.hpp"
#include "versa/checkpoint.hpp"

namespace {

using namespace aadlsched;

// --- fixtures -----------------------------------------------------------

/// Three rate-monotonic threads with execution-time ranges (so the space
/// branches): 106 states cold, schedulable. Small enough for tight loops,
/// big enough that a 40-state budget truncates mid-space.
std::string medium_model() {
  return R"(package Med
public
  processor CPU
  properties
    Scheduling_Protocol => RATE_MONOTONIC_PROTOCOL;
  end CPU;
  thread T1
  end T1;
  thread implementation T1.impl
  properties
    Dispatch_Protocol => Periodic;
    Period => 5 ms;
    Compute_Execution_Time => 1 ms .. 1 ms;
    Deadline => 5 ms;
  end T1.impl;
  thread T2
  end T2;
  thread implementation T2.impl
  properties
    Dispatch_Protocol => Periodic;
    Period => 10 ms;
    Compute_Execution_Time => 2 ms .. 3 ms;
    Deadline => 10 ms;
  end T2.impl;
  thread T3
  end T3;
  thread implementation T3.impl
  properties
    Dispatch_Protocol => Periodic;
    Period => 20 ms;
    Compute_Execution_Time => 3 ms .. 5 ms;
    Deadline => 20 ms;
  end T3.impl;
  system App
  end App;
  system implementation App.impl
  subcomponents
    t1 : thread T1.impl;
    t2 : thread T2.impl;
    t3 : thread T3.impl;
  end App.impl;
  system Root
  end Root;
  system implementation Root.impl
  subcomponents
    app : system App.impl;
    cpu : processor CPU;
  properties
    Actual_Processor_Binding => reference (cpu) applies to app;
  end Root.impl;
end Med;
)";
}

/// Three independent processors, each with two range-time threads: ~7k
/// states with a BFS frontier peaking over 1000 — wide enough that the
/// parallel explorer's worker pool (not its narrow-level serial fallback)
/// carries the bulk of the space.
std::string wide_model() {
  return R"(package Wide
public
  processor CPU
  properties
    Scheduling_Protocol => RATE_MONOTONIC_PROTOCOL;
  end CPU;
  thread W
  end W;
  thread implementation W.impl
  properties
    Dispatch_Protocol => Periodic;
    Period => 8 ms;
    Compute_Execution_Time => 1 ms .. 3 ms;
    Deadline => 8 ms;
  end W.impl;
  thread V
  end V;
  thread implementation V.impl
  properties
    Dispatch_Protocol => Periodic;
    Period => 12 ms;
    Compute_Execution_Time => 2 ms .. 4 ms;
    Deadline => 12 ms;
  end V.impl;
  system App
  end App;
  system implementation App.impl
  subcomponents
    w : thread W.impl;
    v : thread V.impl;
  end App.impl;
  system Root
  end Root;
  system implementation Root.impl
  subcomponents
    a1 : system App.impl;
    a2 : system App.impl;
    a3 : system App.impl;
    c1 : processor CPU;
    c2 : processor CPU;
    c3 : processor CPU;
  properties
    Actual_Processor_Binding => reference (c1) applies to a1;
    Actual_Processor_Binding => reference (c2) applies to a2;
    Actual_Processor_Binding => reference (c3) applies to a3;
  end Root.impl;
end Wide;
)";
}

/// One overloaded thread: a deadline violation (deadlock) is reachable.
std::string failing_model() {
  return R"(package Bad
public
  processor CPU
  properties
    Scheduling_Protocol => RATE_MONOTONIC_PROTOCOL;
  end CPU;
  thread T
  end T;
  thread implementation T.impl
  properties
    Dispatch_Protocol => Periodic;
    Period => 10 ms;
    Compute_Execution_Time => 12 ms .. 12 ms;
    Deadline => 10 ms;
  end T.impl;
  system App
  end App;
  system implementation App.impl
  subcomponents
    t : thread T.impl;
  end App.impl;
  system Root
  end Root;
  system implementation Root.impl
  subcomponents
    app : system App.impl;
    cpu : processor CPU;
  properties
    Actual_Processor_Binding => reference (cpu) applies to app;
  end Root.impl;
end Bad;
)";
}

core::AnalyzerOptions base_options() {
  core::AnalyzerOptions opts;
  opts.translation.quantum_ns = 1'000'000;  // the CLI's 1 ms default
  opts.run_lint = false;  // the verdict must come from exploration
  return opts;
}

/// `explore_ms` is the one canonical-result field that legitimately differs
/// between two runs of the same analysis; everything else must be
/// byte-identical.
std::string normalize_explore_ms(std::string json) {
  const std::string key = "\"explore_ms\": ";
  const auto pos = json.find(key);
  if (pos == std::string::npos) return json;
  auto end = pos + key.size();
  while (end < json.size() && json[end] != ',' && json[end] != '}') ++end;
  json.replace(pos + key.size(), end - (pos + key.size()), "X");
  return json;
}

// --- capture ------------------------------------------------------------

TEST(Checkpoint, BudgetBoundRunCapturesACheckpoint) {
  core::AnalyzerOptions opts = base_options();
  opts.exploration.max_states = 40;
  std::string blob;
  opts.checkpoint_out = &blob;
  opts.checkpoint_key = "test-key";

  const auto r = core::analyze_source(medium_model(), "Root.impl", opts);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.outcome, core::Outcome::Inconclusive);
  EXPECT_EQ(r.stop_reason, util::StopReason::MaxStates);
  EXPECT_TRUE(r.checkpoint_captured);
  EXPECT_FALSE(blob.empty());
  EXPECT_EQ(blob.rfind("aadlsched-checkpoint v2", 0), 0u);
  EXPECT_NE(r.summary().find("checkpoint captured at depth"),
            std::string::npos);
}

TEST(Checkpoint, ConclusiveRunCapturesNothing) {
  core::AnalyzerOptions opts = base_options();
  std::string blob;
  opts.checkpoint_out = &blob;

  const auto r = core::analyze_source(medium_model(), "Root.impl", opts);
  EXPECT_EQ(r.outcome, core::Outcome::Schedulable);
  EXPECT_FALSE(r.checkpoint_captured);
  EXPECT_TRUE(blob.empty());
}

TEST(Checkpoint, DeadlockedRunCapturesNothing) {
  core::AnalyzerOptions opts = base_options();
  std::string blob;
  opts.checkpoint_out = &blob;

  const auto r = core::analyze_source(failing_model(), "Root.impl", opts);
  EXPECT_EQ(r.outcome, core::Outcome::NotSchedulable);  // conclusive
  EXPECT_FALSE(r.checkpoint_captured);
  EXPECT_TRUE(blob.empty());
}

// --- resume determinism -------------------------------------------------

TEST(Checkpoint, ResumedVerdictIsByteIdenticalToCold) {
  const auto cold =
      core::analyze_source(medium_model(), "Root.impl", base_options());
  ASSERT_EQ(cold.outcome, core::Outcome::Schedulable);

  core::AnalyzerOptions bound = base_options();
  bound.exploration.max_states = 40;
  std::string blob;
  bound.checkpoint_out = &blob;
  ASSERT_TRUE(core::analyze_source(medium_model(), "Root.impl", bound)
                  .checkpoint_captured);

  core::AnalyzerOptions warm = base_options();
  warm.resume_checkpoint = &blob;
  const auto resumed = core::analyze_source(medium_model(), "Root.impl", warm);

  EXPECT_TRUE(resumed.resumed);
  EXPECT_GT(resumed.resumed_from_depth, 0u);
  EXPECT_EQ(resumed.resumed_from_states, 40u);
  EXPECT_NE(resumed.summary().find("resumed from depth"), std::string::npos);

  // The acceptance bar: verdict, counts and the whole canonical result
  // object match the cold run exactly (explore_ms aside).
  EXPECT_EQ(resumed.outcome, cold.outcome);
  EXPECT_EQ(resumed.states, cold.states);
  EXPECT_EQ(resumed.transitions, cold.transitions);
  EXPECT_EQ(resumed.depth, cold.depth);
  EXPECT_EQ(normalize_explore_ms(core::render_result_json(resumed)),
            normalize_explore_ms(core::render_result_json(cold)));
}

TEST(Checkpoint, ChainedResumesConverge) {
  const auto cold =
      core::analyze_source(medium_model(), "Root.impl", base_options());

  // Chip away at the space in three installments; each bound run resumes
  // the previous checkpoint and re-captures at its own budget.
  std::string blob;
  std::uint64_t budget = 30;
  for (int round = 0; round < 2; ++round, budget += 30) {
    core::AnalyzerOptions opts = base_options();
    opts.exploration.max_states = budget;
    std::string next;
    opts.checkpoint_out = &next;
    std::string prev = blob;  // keep alive across the run
    if (!prev.empty()) opts.resume_checkpoint = &prev;
    const auto r = core::analyze_source(medium_model(), "Root.impl", opts);
    ASSERT_EQ(r.outcome, core::Outcome::Inconclusive);
    ASSERT_TRUE(r.checkpoint_captured);
    if (round > 0) EXPECT_TRUE(r.resumed);
    blob = next;
  }

  core::AnalyzerOptions final_opts = base_options();
  final_opts.resume_checkpoint = &blob;
  const auto last =
      core::analyze_source(medium_model(), "Root.impl", final_opts);
  EXPECT_TRUE(last.resumed);
  EXPECT_EQ(last.resumed_from_states, 60u);
  EXPECT_EQ(last.outcome, cold.outcome);
  EXPECT_EQ(last.states, cold.states);
  EXPECT_EQ(last.transitions, cold.transitions);
  EXPECT_EQ(last.depth, cold.depth);
}

TEST(Checkpoint, ResumeFindsDeadlockBeyondTheOldBudget) {
  // The failing model deadlocks within a handful of states; bound the first
  // run below that, then resume — the violation must still be found.
  core::AnalyzerOptions bound = base_options();
  bound.exploration.max_states = 2;
  std::string blob;
  bound.checkpoint_out = &blob;
  const auto first =
      core::analyze_source(failing_model(), "Root.impl", bound);
  ASSERT_EQ(first.outcome, core::Outcome::Inconclusive);
  ASSERT_FALSE(blob.empty());

  core::AnalyzerOptions warm = base_options();
  warm.resume_checkpoint = &blob;
  const auto resumed =
      core::analyze_source(failing_model(), "Root.impl", warm);
  EXPECT_TRUE(resumed.resumed);
  EXPECT_EQ(resumed.outcome, core::Outcome::NotSchedulable);
  // A resumed run has no trace prefix (the parents predate the resume), so
  // the counterexample timeline is unavailable — but the verdict stands.
  EXPECT_FALSE(resumed.scenario.has_value());
}

// --- parallel engine ----------------------------------------------------

TEST(Checkpoint, ParallelCaptureResumesToTheColdVerdict) {
  core::AnalyzerOptions par = base_options();
  par.parallel.workers = 4;
  par.parallel.serial_frontier_threshold = 1;  // no serial-fallback window

  const auto cold = core::analyze_source(wide_model(), "Root.impl", par);
  ASSERT_EQ(cold.outcome, core::Outcome::Schedulable);

  // Capture from the pool path.
  core::AnalyzerOptions bound = par;
  bound.exploration.max_states = 1500;
  std::string blob;
  bound.checkpoint_out = &blob;
  const auto first = core::analyze_source(wide_model(), "Root.impl", bound);
  ASSERT_EQ(first.outcome, core::Outcome::Inconclusive);
  ASSERT_TRUE(first.checkpoint_captured);

  // Resume on the parallel engine: byte-identical to the parallel cold run
  // (the engines count peak_frontier differently — deque size vs level
  // size — so byte-identity is a same-engine property).
  core::AnalyzerOptions warm = par;
  warm.resume_checkpoint = &blob;
  const auto resumed = core::analyze_source(wide_model(), "Root.impl", warm);
  EXPECT_TRUE(resumed.resumed);
  EXPECT_EQ(resumed.outcome, cold.outcome);
  EXPECT_EQ(resumed.states, cold.states);
  EXPECT_EQ(resumed.transitions, cold.transitions);
  EXPECT_EQ(resumed.depth, cold.depth);
  EXPECT_EQ(normalize_explore_ms(core::render_result_json(resumed)),
            normalize_explore_ms(core::render_result_json(cold)));

  // The same checkpoint resumes on the serial engine too — the wavefront
  // format is engine-agnostic; verdict and counts must agree.
  core::AnalyzerOptions warm_serial = base_options();
  warm_serial.resume_checkpoint = &blob;
  const auto serial =
      core::analyze_source(wide_model(), "Root.impl", warm_serial);
  EXPECT_TRUE(serial.resumed);
  EXPECT_EQ(serial.outcome, cold.outcome);
  EXPECT_EQ(serial.states, cold.states);
  EXPECT_EQ(serial.transitions, cold.transitions);
  EXPECT_EQ(serial.depth, cold.depth);
}

TEST(Checkpoint, SerialCaptureResumesOnTheParallelEngine) {
  const auto cold =
      core::analyze_source(medium_model(), "Root.impl", base_options());

  core::AnalyzerOptions bound = base_options();
  bound.exploration.max_states = 40;
  std::string blob;
  bound.checkpoint_out = &blob;
  ASSERT_TRUE(core::analyze_source(medium_model(), "Root.impl", bound)
                  .checkpoint_captured);

  core::AnalyzerOptions warm = base_options();
  warm.parallel.workers = 4;
  warm.parallel.serial_frontier_threshold = 1;
  warm.resume_checkpoint = &blob;
  const auto resumed = core::analyze_source(medium_model(), "Root.impl", warm);
  EXPECT_TRUE(resumed.resumed);
  EXPECT_EQ(resumed.outcome, cold.outcome);
  EXPECT_EQ(resumed.states, cold.states);
  EXPECT_EQ(resumed.transitions, cold.transitions);
}

// --- corruption fallback ------------------------------------------------

TEST(Checkpoint, CorruptBlobFallsBackToAColdRun) {
  core::AnalyzerOptions bound = base_options();
  bound.exploration.max_states = 40;
  std::string blob;
  bound.checkpoint_out = &blob;
  ASSERT_TRUE(core::analyze_source(medium_model(), "Root.impl", bound)
                  .checkpoint_captured);

  std::string corrupt = blob;
  corrupt[corrupt.size() / 2] ^= 0x20;  // flip one payload bit

  core::AnalyzerOptions warm = base_options();
  warm.resume_checkpoint = &corrupt;
  const auto r = core::analyze_source(medium_model(), "Root.impl", warm);
  EXPECT_FALSE(r.resumed);  // fell back
  EXPECT_EQ(r.outcome, core::Outcome::Schedulable);  // cold run still decides
  EXPECT_NE(r.diagnostics.find("checkpoint rejected"), std::string::npos);
  EXPECT_NE(r.diagnostics.find("falling back to a cold run"),
            std::string::npos);
}

TEST(Checkpoint, TruncatedAndGarbageBlobsFallBack) {
  core::AnalyzerOptions bound = base_options();
  bound.exploration.max_states = 40;
  std::string blob;
  bound.checkpoint_out = &blob;
  ASSERT_TRUE(core::analyze_source(medium_model(), "Root.impl", bound)
                  .checkpoint_captured);

  for (const std::string bad :
       {blob.substr(0, blob.size() / 3), std::string("not a checkpoint"),
        std::string("aadlsched-checkpoint v1\nkey -\n")}) {
    core::AnalyzerOptions warm = base_options();
    warm.resume_checkpoint = &bad;
    const auto r = core::analyze_source(medium_model(), "Root.impl", warm);
    EXPECT_FALSE(r.resumed);
    EXPECT_EQ(r.outcome, core::Outcome::Schedulable);
  }
}

// --- reduction provenance (DESIGN.md §13) -------------------------------

/// Four interchangeable HPF threads with equal explicit priority. Under
/// ordered_instants == false the translator detects one symmetry group of
/// four roles, so captured checkpoints carry an active reduction section.
std::string symmetric_model() {
  return R"(package Sym
public
  processor CPU
  properties
    Scheduling_Protocol => HIGHEST_PRIORITY_FIRST;
  end CPU;
  thread T
  end T;
  thread implementation T.impl
  properties
    Dispatch_Protocol => Periodic;
    Period => 12 ms;
    Compute_Execution_Time => 1 ms .. 2 ms;
    Deadline => 12 ms;
    Priority => 5;
  end T.impl;
  system App
  end App;
  system implementation App.impl
  subcomponents
    t1 : thread T.impl;
    t2 : thread T.impl;
    t3 : thread T.impl;
    t4 : thread T.impl;
  end App.impl;
  system Root
  end Root;
  system implementation Root.impl
  subcomponents
    app : system App.impl;
    cpu : processor CPU;
  properties
    Actual_Processor_Binding => reference (cpu) applies to app;
  end Root.impl;
end Sym;
)";
}

core::AnalyzerOptions uniform_options() {
  core::AnalyzerOptions opts = base_options();
  // Uniform-instant translation: simultaneous dispatch taus carry equal
  // priority, so the symmetry/commutation layer actually engages.
  opts.translation.ordered_instants = false;
  return opts;
}

TEST(Checkpoint, CaptureWithActiveReductionsResumesExactly) {
  const auto cold =
      core::analyze_source(symmetric_model(), "Root.impl", uniform_options());
  ASSERT_EQ(cold.outcome, core::Outcome::Schedulable);
  EXPECT_EQ(cold.symmetry_groups, 1u);
  EXPECT_GT(cold.states_saved, 0u);

  core::AnalyzerOptions bound = uniform_options();
  bound.exploration.max_states = 10;
  std::string blob;
  bound.checkpoint_out = &blob;
  const auto first =
      core::analyze_source(symmetric_model(), "Root.impl", bound);
  ASSERT_EQ(first.outcome, core::Outcome::Inconclusive);
  ASSERT_TRUE(first.checkpoint_captured);
  // The blob records the active configuration: both reductions on, uniform
  // dispatch, one group of four roles.
  EXPECT_NE(blob.find("\nreduction 1 1 1 1\n"), std::string::npos);
  EXPECT_NE(blob.find("\ngroup 4 "), std::string::npos);

  core::AnalyzerOptions warm = uniform_options();
  warm.resume_checkpoint = &blob;
  const auto resumed =
      core::analyze_source(symmetric_model(), "Root.impl", warm);
  EXPECT_TRUE(resumed.resumed);
  EXPECT_EQ(resumed.outcome, cold.outcome);
  EXPECT_EQ(resumed.states, cold.states);
  EXPECT_EQ(resumed.transitions, cold.transitions);
  EXPECT_EQ(resumed.depth, cold.depth);
  EXPECT_EQ(resumed.symmetry_groups, 1u);
}

TEST(Checkpoint, ReductionSettingMismatchFallsBackToAColdRun) {
  core::AnalyzerOptions bound = uniform_options();
  bound.exploration.max_states = 10;
  std::string blob;
  bound.checkpoint_out = &blob;
  ASSERT_TRUE(core::analyze_source(symmetric_model(), "Root.impl", bound)
                  .checkpoint_captured);

  // The capture ran with reductions on; resuming without them would mix a
  // representative-based visited set into a raw-state exploration.
  core::AnalyzerOptions warm = uniform_options();
  warm.no_reduction = true;
  warm.resume_checkpoint = &blob;
  const auto r = core::analyze_source(symmetric_model(), "Root.impl", warm);
  EXPECT_FALSE(r.resumed);
  EXPECT_EQ(r.outcome, core::Outcome::Schedulable);  // cold run still decides
  EXPECT_NE(r.diagnostics.find("reduction settings differ"),
            std::string::npos);
  EXPECT_NE(r.diagnostics.find("falling back to a cold run"),
            std::string::npos);
}

TEST(Checkpoint, StaleV1FormatIsRejectedWithADiagnostic) {
  core::AnalyzerOptions bound = base_options();
  bound.exploration.max_states = 40;
  std::string blob;
  bound.checkpoint_out = &blob;
  ASSERT_TRUE(core::analyze_source(medium_model(), "Root.impl", bound)
                  .checkpoint_captured);

  // Rewrite the header to the retired v1 tag and re-sign the body, so the
  // only thing wrong with the blob is its format version.
  std::string stale = blob;
  const auto vpos = stale.find(" v2\n");
  ASSERT_NE(vpos, std::string::npos);
  stale.replace(vpos, 4, " v1\n");
  const auto dpos = stale.rfind("digest ");
  ASSERT_NE(dpos, std::string::npos);
  stale.erase(dpos);
  std::uint64_t h = util::fnv1a(stale);
  std::string hex(16, '0');
  for (int i = 15; i >= 0; --i, h >>= 4) hex[i] = "0123456789abcdef"[h & 0xf];
  stale += "digest " + hex + "\n";

  std::string error;
  EXPECT_FALSE(versa::parse_checkpoint(stale, error).has_value());
  EXPECT_NE(error.find("stale checkpoint format 'v1'"), std::string::npos);

  core::AnalyzerOptions warm = base_options();
  warm.resume_checkpoint = &stale;
  const auto r = core::analyze_source(medium_model(), "Root.impl", warm);
  EXPECT_FALSE(r.resumed);  // cold fallback, with the reason surfaced
  EXPECT_EQ(r.outcome, core::Outcome::Schedulable);
  EXPECT_NE(r.diagnostics.find("stale checkpoint format"), std::string::npos);
}

// --- symbolic engine interplay (DESIGN.md §16) --------------------------

// Checkpoints serialize an enumerative BFS wavefront; the state-class
// engine has no such thing. Asking for one must produce a loud note and no
// artifact — never a silently empty blob a daemon would then cache.
TEST(Checkpoint, SymbolicRunRefusesToCheckpoint) {
  core::AnalyzerOptions opts = base_options();
  opts.engine = core::Engine::Symbolic;
  std::string blob;
  opts.checkpoint_out = &blob;

  const auto r = core::analyze_source(medium_model(), "Root.impl", opts);
  ASSERT_TRUE(r.ok) << r.diagnostics;
  EXPECT_EQ(r.engine, "symbolic");
  EXPECT_EQ(r.outcome, core::Outcome::Schedulable);
  EXPECT_FALSE(r.checkpoint_captured);
  EXPECT_TRUE(blob.empty());
  EXPECT_NE(
      r.diagnostics.find("checkpointing unsupported for symbolic engine"),
      std::string::npos);
}

TEST(Checkpoint, SymbolicRunIgnoresAValidEnumerativeCheckpoint) {
  core::AnalyzerOptions bound = base_options();
  bound.exploration.max_states = 40;
  std::string blob;
  bound.checkpoint_out = &blob;
  ASSERT_TRUE(core::analyze_source(medium_model(), "Root.impl", bound)
                  .checkpoint_captured);

  // The blob is perfectly valid — but an enumerative wavefront cannot seed
  // a class graph, so the symbolic engine runs cold and says so.
  core::AnalyzerOptions warm = base_options();
  warm.engine = core::Engine::Symbolic;
  warm.resume_checkpoint = &blob;
  const auto r = core::analyze_source(medium_model(), "Root.impl", warm);
  ASSERT_TRUE(r.ok) << r.diagnostics;
  EXPECT_FALSE(r.resumed);
  EXPECT_EQ(r.engine, "symbolic");
  EXPECT_EQ(r.outcome, core::Outcome::Schedulable);
  EXPECT_NE(r.diagnostics.find(
                "checkpoint resume is unsupported for the symbolic engine"),
            std::string::npos);
}

// --- versa-level round trip ---------------------------------------------

TEST(Checkpoint, VersaParseRoundTripPreservesTheWavefront) {
  core::AnalyzerOptions bound = base_options();
  bound.exploration.max_states = 40;
  std::string blob;
  bound.checkpoint_out = &blob;
  bound.checkpoint_key = "fingerprint-options";
  const auto r = core::analyze_source(medium_model(), "Root.impl", bound);
  ASSERT_TRUE(r.checkpoint_captured);

  std::string error;
  const auto restored = versa::parse_checkpoint(blob, error);
  ASSERT_TRUE(restored.has_value()) << error;
  EXPECT_EQ(restored->key, "fingerprint-options");
  EXPECT_EQ(restored->wave.states, r.states);
  EXPECT_EQ(restored->wave.transitions, r.transitions);
  EXPECT_EQ(restored->wave.depth, r.depth);
  EXPECT_EQ(restored->wave.visited.size(), r.states);
  EXPECT_FALSE(restored->wave.empty());
  EXPECT_NE(restored->wave.initial, acsr::kInvalidTerm);

  // Re-serializing the restored wavefront must parse again (the round trip
  // is closed, not merely one-way).
  const std::string again = versa::serialize_checkpoint(
      *restored->ctx, restored->wave, restored->key, restored->reduction);
  std::string error2;
  const auto twice = versa::parse_checkpoint(again, error2);
  ASSERT_TRUE(twice.has_value()) << error2;
  EXPECT_EQ(twice->wave.states, restored->wave.states);
  EXPECT_EQ(twice->wave.visited.size(), restored->wave.visited.size());
  EXPECT_EQ(twice->wave.frontier.size(), restored->wave.frontier.size());
  EXPECT_EQ(twice->wave.next_frontier.size(),
            restored->wave.next_frontier.size());
}

TEST(Checkpoint, DigestMismatchIsRejectedBeforeParsing) {
  core::AnalyzerOptions bound = base_options();
  bound.exploration.max_states = 40;
  std::string blob;
  bound.checkpoint_out = &blob;
  ASSERT_TRUE(core::analyze_source(medium_model(), "Root.impl", bound)
                  .checkpoint_captured);

  std::string corrupt = blob;
  corrupt[corrupt.find("stats ") + 6] ^= 1;  // damage a counter digit
  std::string error;
  EXPECT_FALSE(versa::parse_checkpoint(corrupt, error).has_value());
  EXPECT_NE(error.find("digest"), std::string::npos);
}

}  // namespace
