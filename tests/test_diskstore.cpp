// server::diskstore — the crash-safety primitives under the shared on-disk
// cache (DESIGN.md §15): the trailing content digest sealed into every disk
// artifact, pid-liveness-aware tmp hygiene, the advisory directory lock,
// size-budgeted GC with its gc.remove fault site, the DiskJanitor's instance
// registry, and a fork-based multi-process stress run proving N writers and
// M readers on ONE directory never observe torn bytes.
#include <gtest/gtest.h>

#include <sys/time.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "server/cache.hpp"
#include "server/diskstore.hpp"
#include "util/budget.hpp"
#include "util/json.hpp"

namespace {

namespace fs = std::filesystem;
using namespace aadlsched;
using server::DirLock;
using server::DiskJanitor;
using server::ResultCache;
using util::FaultInjector;

std::string make_temp_dir() {
  char tmpl[] = "/tmp/aadlsched_diskstore_XXXXXX";
  if (::mkdtemp(tmpl) == nullptr) ADD_FAILURE() << "mkdtemp failed";
  return tmpl;
}

void write_file(const std::string& path, const std::string& body) {
  std::ofstream(path, std::ios::trunc | std::ios::binary) << body;
}

/// Backdate a file's atime AND mtime `seconds` into the past, so GC's
/// recency order (max of the two) is deterministic regardless of mount
/// options.
void age_file(const std::string& path, long seconds) {
  struct timeval tv[2];
  ::gettimeofday(&tv[0], nullptr);
  tv[0].tv_sec -= seconds;
  tv[1] = tv[0];
  ASSERT_EQ(::utimes(path.c_str(), tv), 0) << path;
}

/// Fork a child that exits immediately; returns its (reaped, so provably
/// dead) pid.
pid_t dead_pid() {
  const pid_t pid = ::fork();
  if (pid == 0) ::_exit(0);
  int wstatus = 0;
  EXPECT_EQ(::waitpid(pid, &wstatus, 0), pid);
  return pid;
}

// --- content digests ----------------------------------------------------

TEST(Digest, SealRoundTrips) {
  std::string body = "{\"outcome\": \"schedulable\"}\n";
  const std::string payload = body;
  server::append_digest(body);
  EXPECT_NE(body, payload);
  EXPECT_TRUE(server::verify_trailing_digest(body));
  const auto stripped = server::strip_trailing_digest(body);
  ASSERT_TRUE(stripped.has_value());
  EXPECT_EQ(*stripped, payload);
}

TEST(Digest, RejectsTamperTruncationAndTrailingBytes) {
  std::string body = "line one\nline two\n";
  server::append_digest(body);
  ASSERT_TRUE(server::verify_trailing_digest(body));

  std::string flipped = body;
  flipped[0] = 'L';  // one payload bit differs
  EXPECT_FALSE(server::verify_trailing_digest(flipped));

  // Truncation anywhere — mid-payload or mid-digest — fails.
  for (std::size_t keep : {body.size() - 1, body.size() / 2, std::size_t{0}})
    EXPECT_FALSE(server::verify_trailing_digest(body.substr(0, keep)))
        << "kept " << keep << " bytes";

  // Bytes after the digest line mean the digest is not the final seal.
  EXPECT_FALSE(server::verify_trailing_digest(body + "x"));
  // A pre-digest-era file has no seal at all.
  EXPECT_FALSE(server::verify_trailing_digest("{\"outcome\": \"x\"}\n"));
}

// --- pid liveness and tmp hygiene ---------------------------------------

TEST(DiskStore, PidLiveness) {
  EXPECT_TRUE(server::pid_alive(::getpid()));
  EXPECT_TRUE(server::pid_alive(1));  // init: EPERM, conservatively alive
  EXPECT_FALSE(server::pid_alive(0));
  EXPECT_FALSE(server::pid_alive(-1));
  EXPECT_FALSE(server::pid_alive(dead_pid()));
}

TEST(DiskStore, SweepReapsOnlyDeadOwnersOrExpiredFiles) {
  const std::string dir = make_temp_dir();
  const std::string dead = std::to_string(dead_pid());
  const std::string live = std::to_string(::getpid());

  write_file(dir + "/a.json.tmp." + dead, "torn");      // dead owner: reap
  write_file(dir + "/b.ckpt.tmp." + dead, "torn");      // dead owner: reap
  write_file(dir + "/c.json.tmp." + live, "inflight");  // live + fresh: keep
  write_file(dir + "/d.json.tmp." + live, "old");       // live but expired
  age_file(dir + "/d.json.tmp." + live, 4000);
  write_file(dir + "/final.json", "{}");  // not a tmp file: never touched

  EXPECT_EQ(server::sweep_stale_tmp_files(dir, 3600), 3u);
  EXPECT_FALSE(fs::exists(dir + "/a.json.tmp." + dead));
  EXPECT_FALSE(fs::exists(dir + "/b.ckpt.tmp." + dead));
  EXPECT_TRUE(fs::exists(dir + "/c.json.tmp." + live));
  EXPECT_FALSE(fs::exists(dir + "/d.json.tmp." + live));
  EXPECT_TRUE(fs::exists(dir + "/final.json"));

  // Idempotent: nothing left to reap.
  EXPECT_EQ(server::sweep_stale_tmp_files(dir, 3600), 0u);
  fs::remove_all(dir);
}

// --- DirLock ------------------------------------------------------------

TEST(DiskStore, DirLockExcludesASecondHolder) {
  const std::string dir = make_temp_dir();
  DirLock first(dir);
  DirLock second(dir);  // separate fd: flock contends even in-process

  ASSERT_TRUE(first.lock());
  EXPECT_TRUE(first.held());
  EXPECT_FALSE(second.try_lock());
  first.unlock();
  EXPECT_FALSE(first.held());
  EXPECT_TRUE(second.try_lock());
  second.unlock();
  fs::remove_all(dir);
}

TEST(DiskStore, DirLockScopeReleasesOnDestruction) {
  const std::string dir = make_temp_dir();
  DirLock lock(dir);
  DirLock probe(dir);
  {
    DirLock::Scope scope(lock);
    EXPECT_TRUE(scope.ok());
    EXPECT_FALSE(probe.try_lock());
  }
  EXPECT_TRUE(probe.try_lock());
  probe.unlock();
  fs::remove_all(dir);
}

// --- size-budgeted GC ---------------------------------------------------

TEST(DiskStore, GcEvictsOldestFirstUntilUnderCap) {
  const std::string dir = make_temp_dir();
  const std::string pad(100, 'x');
  // Four 100-byte artifacts, oldest to newest; a 250-byte cap must evict
  // exactly the two oldest.
  write_file(dir + "/old1.json", pad);
  age_file(dir + "/old1.json", 400);
  write_file(dir + "/old2.ckpt", pad);
  age_file(dir + "/old2.ckpt", 300);
  write_file(dir + "/new1.json", pad);
  age_file(dir + "/new1.json", 200);
  write_file(dir + "/new2.json", pad);
  age_file(dir + "/new2.json", 100);
  write_file(dir + "/notes.txt", pad);  // foreign extension: not GC'd

  const auto st = server::run_disk_gc(dir, 250);
  EXPECT_EQ(st.runs, 1u);
  EXPECT_EQ(st.removed_files, 2u);
  EXPECT_EQ(st.removed_bytes, 200u);
  EXPECT_EQ(st.remove_failures, 0u);
  EXPECT_FALSE(fs::exists(dir + "/old1.json"));
  EXPECT_FALSE(fs::exists(dir + "/old2.ckpt"));
  EXPECT_TRUE(fs::exists(dir + "/new1.json"));
  EXPECT_TRUE(fs::exists(dir + "/new2.json"));
  EXPECT_TRUE(fs::exists(dir + "/notes.txt"));

  // cap 0 = no budget: evaluates nothing, removes nothing.
  const auto off = server::run_disk_gc(dir, 0);
  EXPECT_EQ(off.removed_files, 0u);
  EXPECT_TRUE(fs::exists(dir + "/new1.json"));
  fs::remove_all(dir);
}

TEST(DiskStore, GcRemoveFaultSiteLeavesTheFileAndCounts) {
  const std::string dir = make_temp_dir();
  write_file(dir + "/a.json", std::string(100, 'x'));
  age_file(dir + "/a.json", 200);
  write_file(dir + "/b.json", std::string(100, 'x'));
  age_file(dir + "/b.json", 100);

  // Every removal fails; the files stay, the failures are counted, and GC
  // terminates anyway (no retry loop on a dead disk).
  FaultInjector::global().arm(FaultInjector::Site::GcRemove, 1,
                              util::StopReason::Fault, 1000);
  const auto st = server::run_disk_gc(dir, 50);
  FaultInjector::global().disarm();
  EXPECT_EQ(st.removed_files, 0u);
  EXPECT_EQ(st.remove_failures, 2u);
  EXPECT_TRUE(fs::exists(dir + "/a.json"));
  EXPECT_TRUE(fs::exists(dir + "/b.json"));
  fs::remove_all(dir);
}

// --- DiskJanitor --------------------------------------------------------

TEST(DiskStore, JanitorRegistryTracksCohabitantsAndReapsDead) {
  const std::string dir = make_temp_dir();
  DiskJanitor janitor({dir});
  const std::string self = dir + "/.instances/" + std::to_string(::getpid());
  EXPECT_TRUE(fs::exists(self));

  // A cohabitant that was kill -9'd never deregistered; one with pid 1 is
  // (conservatively) alive. The scan reaps the former, counts the latter.
  const std::string stale =
      dir + "/.instances/" + std::to_string(dead_pid());
  write_file(stale, "pid 99999\nstarted 2026-08-08T00:00:00\n");
  write_file(dir + "/.instances/1", "pid 1\nstarted 2026-08-08T00:00:00\n");

  const auto live = janitor.live_instances();
  EXPECT_EQ(live.size(), 2u);
  EXPECT_EQ(janitor.instances_gauge(), 2u);
  EXPECT_FALSE(fs::exists(stale));
  bool saw_self = false;
  for (const auto& inst : live) saw_self |= inst.pid == ::getpid();
  EXPECT_TRUE(saw_self);

  fs::remove(dir + "/.instances/1");
  EXPECT_EQ(janitor.live_instances().size(), 1u);
  EXPECT_EQ(janitor.instances_gauge(), 1u);
  fs::remove_all(dir);
}

TEST(DiskStore, JanitorDeregistersOnDestruction) {
  const std::string dir = make_temp_dir();
  const std::string self = dir + "/.instances/" + std::to_string(::getpid());
  {
    DiskJanitor janitor({dir});
    EXPECT_TRUE(fs::exists(self));
  }
  EXPECT_FALSE(fs::exists(self));
  fs::remove_all(dir);
}

TEST(DiskStore, JanitorSweepEnforcesTheSizeBudget) {
  const std::string dir = make_temp_dir();
  const std::string pad(100, 'x');
  write_file(dir + "/old.json", pad);
  age_file(dir + "/old.json", 300);
  write_file(dir + "/new.json", pad);
  age_file(dir + "/new.json", 100);
  write_file(dir + "/torn.json.tmp." + std::to_string(dead_pid()), "half");

  DiskJanitor::Config cfg;
  cfg.dir = dir;
  cfg.cap_bytes = 150;
  DiskJanitor janitor(cfg);
  janitor.sweep();

  const auto st = janitor.gc_stats();
  EXPECT_EQ(st.runs, 1u);
  EXPECT_EQ(st.removed_files, 1u);
  EXPECT_EQ(st.removed_bytes, 100u);
  EXPECT_EQ(st.tmp_swept, 1u);
  EXPECT_FALSE(fs::exists(dir + "/old.json"));
  EXPECT_TRUE(fs::exists(dir + "/new.json"));

  janitor.sweep();  // under budget now: counters stay put except runs
  EXPECT_EQ(janitor.gc_stats().runs, 2u);
  EXPECT_EQ(janitor.gc_stats().removed_files, 1u);
  fs::remove_all(dir);
}

// --- store fault sites --------------------------------------------------

TEST(DiskStore, InjectedRenameFailureIsCountedAndMemoryStillServes) {
  const std::string dir = make_temp_dir();
  server::CacheConfig cfg;
  cfg.disk_dir = dir;
  ResultCache cache(cfg);

  const std::string body = "{\"outcome\": \"schedulable\"}";
  FaultInjector::global().arm(FaultInjector::Site::CacheRename, 1);
  cache.store("k1", core::Outcome::Schedulable, body);
  FaultInjector::global().disarm();

  EXPECT_EQ(cache.disk_store_failures(), 1u);
  EXPECT_FALSE(fs::exists(dir + "/k1.json"));  // no torn final file either
  const auto hit = cache.lookup("k1");  // the memory tier is unaffected
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->result_json, body);
  EXPECT_FALSE(hit->from_disk);

  // With the injector quiet the next store lands on disk.
  cache.store("k2", core::Outcome::Schedulable, body);
  EXPECT_EQ(cache.disk_store_failures(), 1u);
  EXPECT_TRUE(fs::exists(dir + "/k2.json"));
  fs::remove_all(dir);
}

TEST(DiskStore, InjectedWriteFailureLeavesATornTmpForTheSweeper) {
  const std::string dir = make_temp_dir();
  server::CacheConfig cfg;
  cfg.disk_dir = dir;
  ResultCache cache(cfg);

  FaultInjector::global().arm(FaultInjector::Site::CacheWrite, 1);
  cache.store("k1", core::Outcome::Schedulable,
              "{\"outcome\": \"schedulable\"}");
  FaultInjector::global().disarm();

  EXPECT_EQ(cache.disk_store_failures(), 1u);
  const std::string tmp =
      dir + "/k1.json.tmp." + std::to_string(::getpid());
  EXPECT_TRUE(fs::exists(tmp));  // the kill -9 torn-file shape
  // Inside the grace window with a live owner, the sweeper leaves it; once
  // the owner is "dead" (grace expired here), it reaps it.
  EXPECT_EQ(server::sweep_stale_tmp_files(dir, 3600), 0u);
  age_file(tmp, 4000);
  EXPECT_EQ(server::sweep_stale_tmp_files(dir, 3600), 1u);
  fs::remove_all(dir);
}

// --- multi-process stress -----------------------------------------------

/// The shared-directory invariant, end to end: forked writer processes
/// hammer one cache directory while forked readers continuously open it
/// cold and look keys up. Readers must only ever observe byte-exact,
/// digest-verified entries (tmp + rename + seal make torn reads
/// impossible); any mismatch or quarantine in a child fails the test via
/// its exit code.
TEST(DiskStore, MultiProcessWritersAndReadersNeverSeeTornBytes) {
  const std::string dir = make_temp_dir();
  constexpr int kWriters = 4;
  constexpr int kReaders = 4;
  constexpr int kKeys = 24;
  constexpr int kRounds = 40;

  // Deterministic per-key body, so every writer of a key writes identical
  // bytes — the invariant real keys (content hashes) guarantee.
  const auto key_of = [](int i) { return "stress" + std::to_string(i); };
  const auto body_of = [](int i) {
    return "{\"outcome\": \"schedulable\", \"k\": " + std::to_string(i) +
           ", \"pad\": \"" + std::string(64 + i, 'p') + "\"}";
  };

  std::vector<pid_t> children;
  for (int w = 0; w < kWriters; ++w) {
    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      server::CacheConfig cfg;
      cfg.disk_dir = dir;
      ResultCache cache(cfg);
      for (int round = 0; round < kRounds; ++round)
        for (int i = w; i < kKeys; i += kWriters)
          cache.store(key_of(i), core::Outcome::Schedulable, body_of(i));
      ::_exit(cache.disk_store_failures() == 0 ? 0 : 1);
    }
    children.push_back(pid);
  }
  for (int r = 0; r < kReaders; ++r) {
    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      int failures = 0;
      for (int round = 0; round < kRounds; ++round) {
        // A cold open every round: all hits come from disk, every one
        // digest-verified.
        server::CacheConfig cfg;
        cfg.disk_dir = dir;
        ResultCache cache(cfg);
        for (int i = 0; i < kKeys; ++i) {
          const int key = (i * 7 + r) % kKeys;
          const auto hit = cache.lookup(key_of(key));
          if (!hit) continue;  // not written yet: a miss is fine
          if (hit->result_json != body_of(key)) ++failures;
          if (hit->outcome != core::Outcome::Schedulable) ++failures;
        }
        // The writers only ever publish sealed, complete files; a reader
        // must never trip quarantine.
        if (cache.corrupt_evictions() != 0) ++failures;
      }
      ::_exit(failures == 0 ? 0 : 1);
    }
    children.push_back(pid);
  }

  for (const pid_t pid : children) {
    int wstatus = 0;
    ASSERT_EQ(::waitpid(pid, &wstatus, 0), pid);
    EXPECT_TRUE(WIFEXITED(wstatus) && WEXITSTATUS(wstatus) == 0)
        << "child " << pid << " failed";
  }

  // Quiesced: every key is present, sealed, and serves its exact bytes.
  server::CacheConfig cfg;
  cfg.disk_dir = dir;
  ResultCache cache(cfg);
  for (int i = 0; i < kKeys; ++i) {
    const auto hit = cache.lookup(key_of(i));
    ASSERT_TRUE(hit.has_value()) << key_of(i);
    EXPECT_EQ(hit->result_json, body_of(i));
  }
  EXPECT_EQ(cache.corrupt_evictions(), 0u);
  // No writer left a tmp file behind (all were renamed or cleaned).
  for (const auto& ent : fs::directory_iterator(dir))
    EXPECT_EQ(ent.path().string().find(".tmp."), std::string::npos)
        << ent.path();
  fs::remove_all(dir);
}

}  // namespace
