// Tests for the AADL -> ACSR translation: skeleton structure (Fig. 4/5),
// dispatcher behaviour per protocol (Fig. 6), queue processes (§4.4), bus
// refinement (§4.2), priority encodings (§5) and the §4.1 precondition
// checks.
#include <gtest/gtest.h>

#include "aadl/parser.hpp"
#include "acsr/printer.hpp"
#include "acsr/semantics.hpp"
#include "core/taskset_aadl.hpp"
#include "translate/translator.hpp"
#include "versa/explorer.hpp"
#include "versa/inspection.hpp"

using namespace aadlsched;
using namespace aadlsched::translate;

namespace {

struct Pipeline {
  aadl::Model model;
  std::unique_ptr<aadl::InstanceModel> instance;
  acsr::Context ctx;
  std::optional<Translation> translation;
  util::DiagnosticEngine diags{"test.aadl"};

  bool load(std::string_view src, std::string_view root,
            const TranslateOptions& opts = {}) {
    if (!aadl::parse_aadl(model, src, diags)) return false;
    instance = aadl::instantiate(model, root, diags);
    if (!instance || diags.has_errors()) return false;
    translation = aadlsched::translate::translate(ctx, *instance, diags, opts);
    return translation.has_value();
  }
};

/// Single periodic thread, C in [cmin,cmax] quanta of 1 ms, period/deadline
/// in quanta.
std::string one_thread(int cmin, int cmax, int period, int deadline) {
  sched::TaskSet ts;
  sched::Task t;
  t.name = "t0";
  t.bcet = cmin;
  t.wcet = cmax;
  t.period = period;
  t.deadline = deadline;
  t.priority = 1;
  ts.tasks.push_back(t);
  return core::taskset_to_aadl(ts, sched::SchedulingPolicy::FixedPriority);
}

TranslateOptions ms_quantum() {
  TranslateOptions opts;
  opts.quantum_ns = 1'000'000;  // taskset_to_aadl default: 1 quantum = 1 ms
  return opts;
}

TEST(Translator, GeneratesSkeletonAndDispatcherDefs) {
  Pipeline p;
  ASSERT_TRUE(p.load(one_thread(1, 2, 5, 5), "Root.impl", ms_quantum()))
      << p.diags.render_all();
  ASSERT_EQ(p.translation->threads.size(), 1u);
  const TranslatedThread& t = p.translation->threads[0];
  EXPECT_EQ(t.path, "t0");
  EXPECT_EQ(t.cmin, 1);
  EXPECT_EQ(t.cmax, 2);
  EXPECT_EQ(t.period, 5);
  EXPECT_EQ(t.deadline, 5);
  EXPECT_TRUE(p.ctx.find_definition("T_t0_Await").has_value());
  EXPECT_TRUE(p.ctx.find_definition("T_t0_Compute").has_value());
  EXPECT_TRUE(p.ctx.find_definition("D_t0_Idle").has_value());
  EXPECT_TRUE(p.ctx.find_definition("D_t0_Wait").has_value());
  // dispatch/done events are restricted.
  EXPECT_EQ(p.translation->restricted_events.size(), 2u);
}

TEST(Translator, SingleThreadLifecycle) {
  // Follow the translated system step by step (Fig. 4/5/6a): dispatch at
  // t=0, one or two computation quanta, completion, idle to the period.
  Pipeline p;
  ASSERT_TRUE(p.load(one_thread(2, 2, 4, 4), "Root.impl", ms_quantum()));
  acsr::Semantics sem(p.ctx);
  acsr::TermId s = p.translation->initial;

  // Step 1: the dispatch tau (dispatcher cannot idle, §4.3).
  auto fan = sem.prioritized(s);
  ASSERT_EQ(fan.size(), 1u);
  EXPECT_EQ(fan[0].label.kind, acsr::Label::Kind::Tau);
  EXPECT_EQ(p.ctx.event_name(fan[0].label.event), "dispatch_t0");
  s = fan[0].target;

  // Thread is now in Compute[0,0].
  {
    const auto comps = versa::inspect(p.ctx, s);
    const auto* t =
        versa::find_by_role(comps, "t0", acsr::DefRole::ThreadState);
    ASSERT_NE(t, nullptr);
    EXPECT_EQ(t->state_name, "Compute");
    EXPECT_EQ(t->params[0], 0);
  }

  // Steps 2-3: two computation quanta (alone on the cpu: the prioritized
  // relation kills the preempted branch).
  for (int q = 0; q < 2; ++q) {
    fan = sem.prioritized(s);
    ASSERT_EQ(fan.size(), 1u) << "quantum " << q;
    EXPECT_TRUE(fan[0].label.is_timed());
    EXPECT_EQ(render_label(p.ctx, fan[0].label), "{(cpu_cpu0,3)}");
    s = fan[0].target;
  }

  // Step 4: completion (done tau) — forced, since e == cmax leaves the
  // thread no timed step.
  fan = sem.prioritized(s);
  ASSERT_EQ(fan.size(), 1u);
  EXPECT_EQ(fan[0].label.kind, acsr::Label::Kind::Tau);
  EXPECT_EQ(p.ctx.event_name(fan[0].label.event), "done_t0");
  s = fan[0].target;

  // Steps 5-6: idle quanta until the next period.
  for (int q = 0; q < 2; ++q) {
    fan = sem.prioritized(s);
    ASSERT_EQ(fan.size(), 1u);
    EXPECT_EQ(render_label(p.ctx, fan[0].label), "{}");
    s = fan[0].target;
  }

  // Step 7: next dispatch.
  fan = sem.prioritized(s);
  ASSERT_EQ(fan.size(), 1u);
  EXPECT_EQ(p.ctx.event_name(fan[0].label.event), "dispatch_t0");
}

TEST(Translator, ExecutionTimeRangeStaysNondeterministic) {
  // cmin=1, cmax=3 under the committed-demand model: dispatch commits a
  // demand in {1,2,3}; the three branches survive prioritization as
  // distinct timed successors, so exploration covers every execution time.
  Pipeline p;
  ASSERT_TRUE(p.load(one_thread(1, 3, 8, 8), "Root.impl", ms_quantum()));
  acsr::Semantics sem(p.ctx);
  acsr::TermId s = p.translation->initial;
  s = sem.prioritized(s)[0].target;  // dispatch
  const auto fan = sem.prioritized(s);
  ASSERT_EQ(fan.size(), 3u);
  for (const auto& tr : fan) EXPECT_TRUE(tr.label.is_timed());
  // Following the demand=1 branch, completion is forced next.
  const auto after = sem.prioritized(fan[0].target);
  bool has_done = false;
  for (const auto& tr : after)
    has_done |= tr.label.kind == acsr::Label::Kind::Tau;
  EXPECT_TRUE(has_done);
}

TEST(Translator, LateCompletionModelMatchesLiteralFig5) {
  // Under the literal Fig. 5 semantics the same state offers both "keep
  // computing" and "complete now" after cmin quanta.
  Pipeline p;
  TranslateOptions opts = ms_quantum();
  opts.time_model = ExecutionTimeModel::LateCompletion;
  ASSERT_TRUE(p.load(one_thread(1, 3, 8, 8), "Root.impl", opts));
  acsr::Semantics sem(p.ctx);
  acsr::TermId s = p.translation->initial;
  s = sem.prioritized(s)[0].target;  // dispatch
  s = sem.prioritized(s)[0].target;  // first quantum
  const auto fan = sem.prioritized(s);
  ASSERT_EQ(fan.size(), 2u);
  bool has_timed = false, has_done = false;
  for (const auto& tr : fan) {
    has_timed |= tr.label.is_timed();
    has_done |= tr.label.kind == acsr::Label::Kind::Tau;
  }
  EXPECT_TRUE(has_timed);
  EXPECT_TRUE(has_done);
}

TEST(Translator, CommittedDemandDetectsRangeOnlyMiss) {
  // The semantic gap found during reproduction: (C=2,T=D=4,hi) +
  // (C=[2,4],T=D=6,lo) misses only when lo's demand exceeds 2. The
  // committed model reports the miss; the literal Fig. 5 model lets lo
  // bail out at cmin and calls the system schedulable.
  sched::TaskSet ts;
  sched::Task hi;
  hi.name = "hi";
  hi.wcet = hi.bcet = 2;
  hi.period = hi.deadline = 4;
  hi.priority = 2;
  sched::Task lo;
  lo.name = "lo";
  lo.bcet = 2;
  lo.wcet = 4;
  lo.period = lo.deadline = 6;
  lo.priority = 1;
  ts.tasks = {hi, lo};
  const std::string src =
      core::taskset_to_aadl(ts, sched::SchedulingPolicy::FixedPriority);

  Pipeline committed;
  ASSERT_TRUE(committed.load(src, "Root.impl", ms_quantum()));
  acsr::Semantics sc(committed.ctx);
  EXPECT_TRUE(
      versa::explore(sc, committed.translation->initial).deadlock_found);

  Pipeline literal;
  TranslateOptions opts = ms_quantum();
  opts.time_model = ExecutionTimeModel::LateCompletion;
  ASSERT_TRUE(literal.load(src, "Root.impl", opts));
  acsr::Semantics sl(literal.ctx);
  const auto r = versa::explore(sl, literal.translation->initial);
  EXPECT_TRUE(r.complete);
  EXPECT_FALSE(r.deadlock_found);
}

TEST(Translator, DeadlineMissDeadlocks) {
  // C=3 > D=2: the thread cannot make its deadline.
  Pipeline p;
  ASSERT_TRUE(p.load(one_thread(3, 3, 5, 2), "Root.impl", ms_quantum()));
  acsr::Semantics sem(p.ctx);
  const auto r = versa::explore(sem, p.translation->initial);
  EXPECT_TRUE(r.deadlock_found);
}

TEST(Translator, TwoThreadsPreemption) {
  // RM: short-period thread preempts long-period thread; both meet
  // deadlines at U = 1.
  sched::TaskSet ts;
  sched::Task hi;
  hi.name = "hi";
  hi.wcet = hi.bcet = 1;
  hi.period = hi.deadline = 2;
  sched::Task lo;
  lo.name = "lo";
  lo.wcet = lo.bcet = 2;
  lo.period = lo.deadline = 4;
  ts.tasks = {hi, lo};
  Pipeline p;
  ASSERT_TRUE(p.load(core::taskset_to_aadl(ts, sched::SchedulingPolicy::Edf),
                     "Root.impl", ms_quantum()))
      << p.diags.render_all();
  acsr::Semantics sem(p.ctx);
  const auto r = versa::explore(sem, p.translation->initial);
  EXPECT_TRUE(r.complete);
  EXPECT_FALSE(r.deadlock_found) << "EDF schedules U=1";
}

TEST(Translator, RequiresBinding) {
  Pipeline p;
  EXPECT_FALSE(p.load(R"(
    package P
    public
      thread T
      end T;
      thread implementation T.impl
      properties
        Dispatch_Protocol => Periodic;
        Period => 10 ms;
        Compute_Execution_Time => 1 ms .. 1 ms;
      end T.impl;
      processor C
      properties
        Scheduling_Protocol => RATE_MONOTONIC_PROTOCOL;
      end C;
      system R
      end R;
      system implementation R.impl
      subcomponents
        t : thread T.impl;
        c : processor C;
      end R.impl;
    end P;
  )", "R.impl", ms_quantum()));
  EXPECT_NE(p.diags.render_all().find("not bound"), std::string::npos);
}

TEST(Translator, RequiresTriggerForSporadic) {
  sched::TaskSet ts;
  sched::Task t;
  t.name = "s";
  t.wcet = t.bcet = 1;
  t.period = 5;
  t.deadline = 5;
  t.priority = 1;
  t.kind = sched::DispatchKind::Sporadic;
  ts.tasks = {t};
  std::string src =
      core::taskset_to_aadl(ts, sched::SchedulingPolicy::FixedPriority);
  // Strip the connection so the sporadic thread has no trigger.
  const auto pos = src.find("  connections");
  ASSERT_NE(pos, std::string::npos);
  const auto end = src.find("  properties", pos);
  src.erase(pos, end - pos);
  Pipeline p;
  EXPECT_FALSE(p.load(src, "Root.impl", ms_quantum()));
  EXPECT_NE(p.diags.render_all().find("no incoming event connection"),
            std::string::npos);
}

TEST(Translator, SporadicRespectsMinimumSeparation) {
  // A sporadic thread triggered by a periodic device; explore and verify
  // no deadlock, and that the Separation state appears in the reachable
  // states.
  sched::TaskSet ts;
  sched::Task t;
  t.name = "s";
  t.wcet = t.bcet = 1;
  t.period = 3;
  t.deadline = 3;
  t.priority = 1;
  t.kind = sched::DispatchKind::Sporadic;
  ts.tasks = {t};
  Pipeline p;
  ASSERT_TRUE(p.load(
      core::taskset_to_aadl(ts, sched::SchedulingPolicy::FixedPriority),
      "Root.impl", ms_quantum()))
      << p.diags.render_all();
  acsr::Semantics sem(p.ctx);
  const auto lts = versa::build_lts(sem, p.translation->initial, 10'000);
  bool saw_separation = false;
  for (acsr::TermId s : lts.states) {
    for (const auto& c : versa::inspect(p.ctx, s))
      saw_separation |= c.state_name == "Separation";
  }
  EXPECT_TRUE(saw_separation);
  for (const auto& edges : lts.edges) EXPECT_FALSE(edges.empty());
}

TEST(Translator, AperiodicOverloadDeadlocks) {
  // An aperiodic thread with wcet 2 and deadline 2 fed by an unconstrained
  // environment: back-to-back events plus queueing make it miss.
  sched::TaskSet ts;
  sched::Task t;
  t.name = "a";
  t.wcet = t.bcet = 2;
  t.period = 4;  // ignored for aperiodic
  t.deadline = 2;
  t.priority = 1;
  t.kind = sched::DispatchKind::Aperiodic;
  sched::Task load;
  load.name = "p";
  load.wcet = load.bcet = 1;
  load.period = load.deadline = 2;
  load.priority = 2;
  ts.tasks = {t, load};
  Pipeline p;
  ASSERT_TRUE(p.load(
      core::taskset_to_aadl(ts, sched::SchedulingPolicy::FixedPriority),
      "Root.impl", ms_quantum()))
      << p.diags.render_all();
  acsr::Semantics sem(p.ctx);
  const auto r = versa::explore(sem, p.translation->initial);
  // With the periodic load stealing every other quantum, the aperiodic
  // thread (needs 2 quanta within 2) must miss in the worst case.
  EXPECT_TRUE(r.deadlock_found);
}

TEST(Translator, BusRefinementAddsBusResource) {
  Pipeline p;
  ASSERT_TRUE(p.load(R"(
    package P
    public
      bus B
      end B;
      processor C
      properties
        Scheduling_Protocol => RATE_MONOTONIC_PROTOCOL;
      end C;
      thread Src
      features
        o : out data port;
      end Src;
      thread implementation Src.impl
      properties
        Dispatch_Protocol => Periodic;
        Period => 4 ms;
        Compute_Execution_Time => 2 ms .. 2 ms;
      end Src.impl;
      thread Dst
      features
        i : in data port;
      end Dst;
      thread implementation Dst.impl
      properties
        Dispatch_Protocol => Periodic;
        Period => 4 ms;
        Compute_Execution_Time => 1 ms .. 1 ms;
      end Dst.impl;
      system R
      end R;
      system implementation R.impl
      subcomponents
        s  : thread Src.impl;
        d  : thread Dst.impl;
        c1 : processor C;
        c2 : processor C;
        b  : bus B;
      connections
        conn : port s.o -> d.i;
      properties
        Actual_Processor_Binding => reference (c1) applies to s;
        Actual_Processor_Binding => reference (c2) applies to d;
        Actual_Connection_Binding => reference (b) applies to conn;
      end R.impl;
    end P;
  )", "R.impl", ms_quantum()))
      << p.diags.render_all();

  // The source thread's final computation step must use the bus: find a
  // reachable timed action using both cpu_c1 and bus_b.
  acsr::Semantics sem(p.ctx);
  const auto lts = versa::build_lts(sem, p.translation->initial, 10'000);
  bool saw_bus_step = false;
  for (const auto& edges : lts.edges) {
    for (const auto& tr : edges) {
      if (!tr.label.is_timed()) continue;
      const std::string s = render_label(p.ctx, tr.label);
      if (s.find("bus_b") != std::string::npos &&
          s.find("cpu_c1") != std::string::npos)
        saw_bus_step = true;
    }
  }
  EXPECT_TRUE(saw_bus_step);
  // Deadlock-free: plenty of slack.
  const auto r = versa::explore(sem, p.translation->initial);
  EXPECT_FALSE(r.deadlock_found);
}

TEST(Translator, EdfPrioritiesIncreaseWithElapsedTime) {
  // Under EDF the cpu priority of a thread grows as t advances (pi =
  // dmax - (d - t) + 2, §5).
  Pipeline q;
  sched::TaskSet ts;
  sched::Task t;
  t.name = "x";
  t.wcet = t.bcet = 3;
  t.period = t.deadline = 6;
  ts.tasks = {t};
  ASSERT_TRUE(q.load(core::taskset_to_aadl(ts, sched::SchedulingPolicy::Edf),
                     "Root.impl", ms_quantum()));
  acsr::Semantics sem(q.ctx);
  acsr::TermId s = q.translation->initial;
  s = sem.prioritized(s)[0].target;  // dispatch
  std::vector<std::string> labels;
  for (int i = 0; i < 3; ++i) {
    const auto fan = sem.prioritized(s);
    ASSERT_FALSE(fan.empty());
    labels.push_back(render_label(q.ctx, fan[0].label));
    s = fan[0].target;
  }
  // d = dmax = 6: pi(t) = 6 - (6 - t) + 2 = t + 2.
  EXPECT_EQ(labels[0], "{(cpu_cpu0,2)}");
  EXPECT_EQ(labels[1], "{(cpu_cpu0,3)}");
  EXPECT_EQ(labels[2], "{(cpu_cpu0,4)}");
}

TEST(Translator, EdfBeatsRmOnTheClassicCounterexample) {
  // (C=2,T=4) and (C=3,T=6): U = 1. EDF schedulable, RM misses.
  sched::TaskSet ts;
  sched::Task a;
  a.name = "a";
  a.wcet = a.bcet = 2;
  a.period = a.deadline = 4;
  sched::Task b;
  b.name = "b";
  b.wcet = b.bcet = 3;
  b.period = b.deadline = 6;
  ts.tasks = {a, b};
  sched::assign_rate_monotonic(ts);

  Pipeline rm;
  ASSERT_TRUE(rm.load(
      core::taskset_to_aadl(ts, sched::SchedulingPolicy::FixedPriority),
      "Root.impl", ms_quantum()));
  acsr::Semantics rm_sem(rm.ctx);
  EXPECT_TRUE(versa::explore(rm_sem, rm.translation->initial).deadlock_found);

  Pipeline edf;
  ASSERT_TRUE(edf.load(core::taskset_to_aadl(ts, sched::SchedulingPolicy::Edf),
                       "Root.impl", ms_quantum()));
  acsr::Semantics edf_sem(edf.ctx);
  const auto r = versa::explore(edf_sem, edf.translation->initial);
  EXPECT_TRUE(r.complete);
  EXPECT_FALSE(r.deadlock_found);
}

TEST(Translator, LlfSchedulesFullUtilization) {
  sched::TaskSet ts;
  sched::Task a;
  a.name = "a";
  a.wcet = a.bcet = 2;
  a.period = a.deadline = 4;
  sched::Task b;
  b.name = "b";
  b.wcet = b.bcet = 3;
  b.period = b.deadline = 6;
  ts.tasks = {a, b};
  Pipeline p;
  ASSERT_TRUE(p.load(core::taskset_to_aadl(ts, sched::SchedulingPolicy::Llf),
                     "Root.impl", ms_quantum()));
  acsr::Semantics sem(p.ctx);
  const auto r = versa::explore(sem, p.translation->initial);
  EXPECT_TRUE(r.complete);
  EXPECT_FALSE(r.deadlock_found);
}

TEST(Translator, OrderedInstantsShrinkTheStateSpace) {
  sched::TaskSet ts;
  for (int i = 0; i < 3; ++i) {
    sched::Task t;
    t.name = "t" + std::to_string(i);
    t.wcet = t.bcet = 1;
    t.period = t.deadline = 4;
    t.priority = i + 1;
    ts.tasks.push_back(t);
  }
  const std::string src =
      core::taskset_to_aadl(ts, sched::SchedulingPolicy::FixedPriority);

  TranslateOptions ordered = ms_quantum();
  TranslateOptions unordered = ms_quantum();
  unordered.ordered_instants = false;

  Pipeline a, b;
  ASSERT_TRUE(a.load(src, "Root.impl", ordered));
  ASSERT_TRUE(b.load(src, "Root.impl", unordered));
  acsr::Semantics sa(a.ctx), sb(b.ctx);
  const auto ra = versa::explore(sa, a.translation->initial);
  const auto rb = versa::explore(sb, b.translation->initial);
  // Same verdict, fewer states.
  EXPECT_EQ(ra.deadlock_found, rb.deadlock_found);
  EXPECT_LT(ra.states, rb.states);
}

TEST(Translator, QueueOverflowErrorProtocolDeadlocks) {
  // Unconstrained environment feeding a 1-slot queue with the Error
  // protocol on a slow aperiodic consumer: overflow is reachable and must
  // surface as a deadlock (§4.4).
  Pipeline p;
  ASSERT_TRUE(p.load(R"(
    package P
    public
      device Env
      features
        tick : out event port;
      end Env;
      processor C
      properties
        Scheduling_Protocol => RATE_MONOTONIC_PROTOCOL;
      end C;
      thread A
      features
        trig : in event port;
      end A;
      thread implementation A.impl
      properties
        Dispatch_Protocol => Aperiodic;
        Compute_Execution_Time => 2 ms .. 2 ms;
        Deadline => 8 ms;
      end A.impl;
      system R
      end R;
      system implementation R.impl
      subcomponents
        a : thread A.impl;
        c : processor C;
        e : device Env;
      connections
        conn : port e.tick -> a.trig;
      properties
        Actual_Processor_Binding => reference (c) applies to a;
        Overflow_Handling_Protocol => Error applies to conn;
      end R.impl;
    end P;
  )", "R.impl", ms_quantum()))
      << p.diags.render_all();
  acsr::Semantics sem(p.ctx);
  const auto r = versa::explore(sem, p.translation->initial);
  EXPECT_TRUE(r.deadlock_found) << "env can always outpace the consumer";
}

TEST(Translator, QueueDropProtocolToleratesOverflow) {
  Pipeline p;
  ASSERT_TRUE(p.load(R"(
    package P
    public
      device Env
      features
        tick : out event port;
      end Env;
      processor C
      properties
        Scheduling_Protocol => RATE_MONOTONIC_PROTOCOL;
      end C;
      thread A
      features
        trig : in event port;
      end A;
      thread implementation A.impl
      properties
        Dispatch_Protocol => Aperiodic;
        Compute_Execution_Time => 1 ms .. 1 ms;
        Deadline => 4 ms;
      end A.impl;
      system R
      end R;
      system implementation R.impl
      subcomponents
        a : thread A.impl;
        c : processor C;
        e : device Env;
      connections
        conn : port e.tick -> a.trig;
      properties
        Actual_Processor_Binding => reference (c) applies to a;
      end R.impl;
    end P;
  )", "R.impl", ms_quantum()))
      << p.diags.render_all();
  acsr::Semantics sem(p.ctx);
  const auto r = versa::explore(sem, p.translation->initial);
  EXPECT_TRUE(r.complete);
  EXPECT_FALSE(r.deadlock_found)
      << "DropNewest absorbs the burst; C=1 within D=4 always fits";
}

TEST(Translator, AnytimeSendPolicyStillSound) {
  // Same model under both send policies: verdicts agree for a simple
  // pipeline (the anytime policy only widens when events arrive).
  sched::TaskSet ts;
  sched::Task src;
  src.name = "s";
  src.wcet = src.bcet = 1;
  src.period = src.deadline = 4;
  src.priority = 2;
  sched::Task dst;
  dst.name = "d";
  dst.wcet = dst.bcet = 1;
  dst.period = 4;
  dst.deadline = 4;
  dst.priority = 1;
  dst.kind = sched::DispatchKind::Sporadic;
  ts.tasks = {src, dst};
  std::string aadl_src =
      core::taskset_to_aadl(ts, sched::SchedulingPolicy::FixedPriority);
  // Rewire: feed the sporadic thread from the periodic thread instead of
  // the environment device.
  // taskset_to_aadl gives t1 a device env1; replace the connection source.
  const std::string from = "port env1.tick -> t1.trig";
  const auto pos = aadl_src.find(from);
  ASSERT_NE(pos, std::string::npos);
  // Add an out event port to T0 and reroute.
  aadl_src.replace(pos, from.size(), "port t0.evt -> t1.trig");
  const std::string tdecl = "thread T0\n";
  const auto tpos = aadl_src.find(tdecl);
  ASSERT_NE(tpos, std::string::npos);
  aadl_src.replace(tpos, tdecl.size(),
                   "thread T0\n  features\n    evt : out event port;\n");

  for (EventSendPolicy policy :
       {EventSendPolicy::AtCompletion,
        EventSendPolicy::OncePerDispatchAnytime}) {
    Pipeline p;
    TranslateOptions opts = ms_quantum();
    opts.send_policy = policy;
    ASSERT_TRUE(p.load(aadl_src, "Root.impl", opts)) << p.diags.render_all();
    acsr::Semantics sem(p.ctx);
    const auto r = versa::explore(sem, p.translation->initial);
    EXPECT_TRUE(r.complete);
    EXPECT_FALSE(r.deadlock_found)
        << "policy " << static_cast<int>(policy);
  }
}

TEST(Translator, BackgroundThreadRunsInSlackOnly) {
  sched::TaskSet ts;
  sched::Task fg;
  fg.name = "fg";
  fg.wcet = fg.bcet = 1;
  fg.period = fg.deadline = 2;
  fg.priority = 2;
  sched::Task bg;
  bg.name = "bg";
  bg.wcet = bg.bcet = 3;
  bg.period = 1;  // unused
  bg.priority = 1;
  bg.kind = sched::DispatchKind::Background;
  ts.tasks = {fg, bg};
  Pipeline p;
  ASSERT_TRUE(p.load(
      core::taskset_to_aadl(ts, sched::SchedulingPolicy::FixedPriority),
      "Root.impl", ms_quantum()))
      << p.diags.render_all();
  acsr::Semantics sem(p.ctx);
  const auto r = versa::explore(sem, p.translation->initial);
  EXPECT_TRUE(r.complete);
  EXPECT_FALSE(r.deadlock_found) << "background threads have no deadline";
}

TEST(Translator, RenderedAcsrMentionsPaperArtifacts) {
  Pipeline p;
  ASSERT_TRUE(p.load(one_thread(1, 2, 5, 5), "Root.impl", ms_quantum()));
  acsr::Printer printer(p.ctx);
  const std::string module = printer.module();
  // Committed-demand model: parameters e, t and the committed demand c.
  EXPECT_NE(module.find("T_t0_Compute[e, t, c]"), std::string::npos)
      << module;
  EXPECT_NE(module.find("dispatch_t0"), std::string::npos);
  EXPECT_NE(module.find("done_t0"), std::string::npos);
}

}  // namespace
