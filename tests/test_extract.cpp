// Tests for the inverse bridge: AADL instance model -> classical task set
// (core/taskset_extract.hpp). Round-trips through taskset_to_aadl must be
// the identity on the classical view.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "aadl/parser.hpp"
#include "core/taskset_aadl.hpp"
#include "core/taskset_extract.hpp"
#include "sched/analysis.hpp"

using namespace aadlsched;

namespace {

std::unique_ptr<aadl::InstanceModel> load(const std::string& src,
                                          aadl::Model& model,
                                          util::DiagnosticEngine& diags,
                                          std::string_view root) {
  EXPECT_TRUE(aadl::parse_aadl(model, src, diags)) << diags.render_all();
  return aadl::instantiate(model, root, diags);
}

TEST(Extract, RoundTripsThroughTasksetToAadl) {
  sched::TaskSet ts;
  sched::Task a;
  a.name = "a";
  a.bcet = 1;
  a.wcet = 2;
  a.period = 8;
  a.deadline = 6;
  a.priority = 2;
  sched::Task b;
  b.name = "b";
  b.wcet = b.bcet = 3;
  b.period = b.deadline = 12;
  b.priority = 1;
  b.processor = 1;
  ts.tasks = {a, b};

  aadl::Model model;
  util::DiagnosticEngine diags;
  auto inst = load(
      core::taskset_to_aadl(ts, sched::SchedulingPolicy::FixedPriority),
      model, diags, "Root.impl");
  ASSERT_NE(inst, nullptr);

  const auto ex = core::extract_taskset(*inst, 1'000'000, diags);
  ASSERT_TRUE(ex.has_value()) << diags.render_all();
  ASSERT_EQ(ex->tasks.tasks.size(), 2u);
  EXPECT_FALSE(ex->lossy);
  const sched::Task& ea = ex->tasks.tasks[0];
  EXPECT_EQ(ea.name, "t0");
  EXPECT_EQ(ea.bcet, 1);
  EXPECT_EQ(ea.wcet, 2);
  EXPECT_EQ(ea.period, 8);
  EXPECT_EQ(ea.deadline, 6);
  EXPECT_EQ(ea.processor, 0);
  EXPECT_EQ(ex->tasks.tasks[1].processor, 1);
  ASSERT_EQ(ex->processor_paths.size(), 2u);
}

TEST(Extract, RmProtocolAssignsPriorities) {
  const char* src = R"(
    package P
    public
      processor Cpu
      properties
        Scheduling_Protocol => RATE_MONOTONIC_PROTOCOL;
      end Cpu;
      thread Fast
      end Fast;
      thread implementation Fast.impl
      properties
        Dispatch_Protocol => Periodic;
        Period => 5 ms;
        Compute_Execution_Time => 1 ms .. 1 ms;
      end Fast.impl;
      thread Slow
      end Slow;
      thread implementation Slow.impl
      properties
        Dispatch_Protocol => Periodic;
        Period => 20 ms;
        Compute_Execution_Time => 2 ms .. 2 ms;
      end Slow.impl;
      system R
      end R;
      system implementation R.impl
      subcomponents
        s   : thread Slow.impl;
        f   : thread Fast.impl;
        cpu : processor Cpu;
      properties
        Actual_Processor_Binding => reference (cpu) applies to s;
        Actual_Processor_Binding => reference (cpu) applies to f;
      end R.impl;
    end P;
  )";
  aadl::Model model;
  util::DiagnosticEngine diags;
  auto inst = load(src, model, diags, "R.impl");
  ASSERT_NE(inst, nullptr);
  const auto ex = core::extract_taskset(*inst, 1'000'000, diags);
  ASSERT_TRUE(ex.has_value());
  const sched::Task* fast = nullptr;
  const sched::Task* slow = nullptr;
  for (const auto& t : ex->tasks.tasks) {
    if (t.name == "f") fast = &t;
    if (t.name == "s") slow = &t;
  }
  ASSERT_NE(fast, nullptr);
  ASSERT_NE(slow, nullptr);
  EXPECT_GT(fast->priority, slow->priority);
  // The extracted view is immediately usable by RTA.
  EXPECT_EQ(sched::response_time_analysis(ex->tasks).verdict,
            sched::Verdict::Schedulable);
}

TEST(Extract, EventFeaturesAreFlaggedLossy) {
  std::ifstream in(std::string(AADLSCHED_MODELS_DIR) + "/avionics.aadl");
  std::ostringstream os;
  os << in.rdbuf();
  aadl::Model model;
  util::DiagnosticEngine diags;
  auto inst = load(os.str(), model, diags, "Avionics.impl");
  ASSERT_NE(inst, nullptr);
  const auto ex = core::extract_taskset(*inst, 1'000'000, diags);
  ASSERT_TRUE(ex.has_value()) << diags.render_all();
  EXPECT_TRUE(ex->lossy);
  EXPECT_EQ(ex->tasks.tasks.size(), 5u);
  EXPECT_EQ(ex->processor_paths.size(), 2u);
}

TEST(Extract, MissingBindingReported) {
  const char* src = R"(
    package P
    public
      thread T
      end T;
      thread implementation T.impl
      properties
        Dispatch_Protocol => Periodic;
        Period => 5 ms;
        Compute_Execution_Time => 1 ms .. 1 ms;
      end T.impl;
      system R
      end R;
      system implementation R.impl
      subcomponents
        t : thread T.impl;
      end R.impl;
    end P;
  )";
  aadl::Model model;
  util::DiagnosticEngine diags;
  auto inst = load(src, model, diags, "R.impl");
  ASSERT_NE(inst, nullptr);
  util::DiagnosticEngine ediags;
  EXPECT_FALSE(core::extract_taskset(*inst, 1'000'000, ediags).has_value());
  EXPECT_TRUE(ediags.has_errors());
}

}  // namespace
