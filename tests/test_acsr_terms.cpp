// Unit tests for term construction: hash-consing and normalization.
#include <gtest/gtest.h>

#include "acsr/builder.hpp"
#include "acsr/context.hpp"
#include "acsr/printer.hpp"

using namespace aadlsched;
using namespace aadlsched::acsr;

namespace {

class TermTest : public ::testing::Test {
 protected:
  Context ctx;
  TermTable& tt = ctx.terms();

  ActionId action(std::initializer_list<std::pair<const char*, Priority>> rs) {
    std::vector<ResourceUse> uses;
    for (auto& [name, p] : rs) uses.push_back({ctx.resource(name), p});
    return ctx.actions().intern(std::move(uses));
  }
};

TEST_F(TermTest, NilIsTermZero) {
  EXPECT_EQ(tt.nil(), kNil);
  EXPECT_EQ(tt.kind(kNil), TermKind::Nil);
}

TEST_F(TermTest, HashConsingDeduplicates) {
  const TermId a = tt.act(action({{"cpu", 1}}), kNil);
  const TermId b = tt.act(action({{"cpu", 1}}), kNil);
  EXPECT_EQ(a, b);
  const TermId c = tt.act(action({{"cpu", 2}}), kNil);
  EXPECT_NE(a, c);
}

TEST_F(TermTest, ActionCanonicalization) {
  // Order of resource uses must not matter.
  EXPECT_EQ(action({{"cpu", 1}, {"bus", 2}}), action({{"bus", 2}, {"cpu", 1}}));
  // Duplicate resource keeps the higher priority.
  EXPECT_EQ(action({{"cpu", 1}, {"cpu", 5}}), action({{"cpu", 5}}));
}

TEST_F(TermTest, ChoiceDropsNilAndDeduplicates) {
  const TermId p = tt.act(action({{"cpu", 1}}), kNil);
  EXPECT_EQ(tt.choice({p, kNil}), p);
  EXPECT_EQ(tt.choice({p, p}), p);
  EXPECT_EQ(tt.choice({kNil, kNil}), kNil);
  EXPECT_EQ(tt.choice({}), kNil);
}

TEST_F(TermTest, ChoiceFlattensAndSorts) {
  const TermId p = tt.act(action({{"cpu", 1}}), kNil);
  const TermId q = tt.act(action({{"cpu", 2}}), kNil);
  const TermId r = tt.act(action({{"cpu", 3}}), kNil);
  const TermId pq = tt.choice({p, q});
  EXPECT_EQ(tt.choice({pq, r}), tt.choice({r, q, p}));
  EXPECT_EQ(tt.choice({pq, q}), pq);
}

TEST_F(TermTest, ParallelKeepsDuplicates) {
  const TermId p = tt.act(action({{"cpu", 1}}), kNil);
  const TermId pp = tt.parallel({p, p});
  EXPECT_NE(pp, p);
  EXPECT_EQ(tt.kind(pp), TermKind::Parallel);
  EXPECT_EQ(tt.payload(pp).size(), 2u);
}

TEST_F(TermTest, ParallelIsCommutativeByConstruction) {
  const TermId p = tt.act(action({{"cpu", 1}}), kNil);
  const TermId q = tt.act(action({{"bus", 1}}), kNil);
  EXPECT_EQ(tt.parallel({p, q}), tt.parallel({q, p}));
  // Associativity via flattening.
  const TermId r = tt.act(action({{"mem", 1}}), kNil);
  EXPECT_EQ(tt.parallel({tt.parallel({p, q}), r}),
            tt.parallel({p, tt.parallel({q, r})}));
}

TEST_F(TermTest, SingletonCompositionsCollapse) {
  const TermId p = tt.act(action({{"cpu", 1}}), kNil);
  EXPECT_EQ(tt.choice({p}), p);
  EXPECT_EQ(tt.parallel({p}), p);
}

TEST_F(TermTest, RestrictOfNilIsNil) {
  const EventSetId f = ctx.event_sets().intern({ctx.event("done")});
  EXPECT_EQ(tt.restrict(f, kNil), kNil);
}

TEST_F(TermTest, ScopeTimeoutZeroCollapses) {
  const TermId p = tt.act(action({{"cpu", 1}}), kNil);
  const TermId handler = tt.act(action({{"bus", 1}}), kNil);
  ScopeParts parts;
  parts.body = p;
  parts.time_left = 0;
  parts.timeout_handler = handler;
  EXPECT_EQ(tt.scope(parts), handler);
  parts.timeout_handler = kInvalidTerm;
  EXPECT_EQ(tt.scope(parts), kNil);
}

TEST_F(TermTest, ScopeRoundTripsParts) {
  const TermId p = tt.act(action({{"cpu", 1}}), kNil);
  ScopeParts parts;
  parts.body = p;
  parts.time_left = 7;
  parts.exception_label = ctx.event("complete");
  parts.exception_cont = kNil;
  parts.interrupt_handler = p;
  parts.timeout_handler = kInvalidTerm;
  const TermId s = tt.scope(parts);
  const ScopeParts back = tt.scope_parts(s);
  EXPECT_EQ(back.body, parts.body);
  EXPECT_EQ(back.time_left, parts.time_left);
  EXPECT_EQ(back.exception_label, parts.exception_label);
  EXPECT_EQ(back.exception_cont, parts.exception_cont);
  EXPECT_EQ(back.interrupt_handler, parts.interrupt_handler);
  EXPECT_EQ(back.timeout_handler, parts.timeout_handler);
}

TEST_F(TermTest, CallArgumentsDistinguishStates) {
  Builder b(ctx);
  const DefId d = ctx.declare("P");
  const ParamValue a1[] = {1, 2};
  const ParamValue a2[] = {1, 3};
  EXPECT_NE(tt.call(d, a1), tt.call(d, a2));
  EXPECT_EQ(tt.call(d, a1), tt.call(d, a1));
}

TEST_F(TermTest, DisjointnessAndMerge) {
  const ActionId a = action({{"cpu", 1}});
  const ActionId b = action({{"bus", 2}});
  const ActionId c = action({{"cpu", 3}, {"net", 1}});
  auto& at = ctx.actions();
  EXPECT_TRUE(at.disjoint(a, b));
  EXPECT_FALSE(at.disjoint(a, c));
  EXPECT_TRUE(at.disjoint(kIdleAction, c));
  EXPECT_EQ(at.merge(a, b), action({{"cpu", 1}, {"bus", 2}}));
  EXPECT_EQ(at.merge(kIdleAction, a), a);
}

TEST_F(TermTest, PreemptionOrderOnActions) {
  auto& at = ctx.actions();
  const ActionId idle = kIdleAction;
  const ActionId lo = action({{"cpu", 1}});
  const ActionId hi = action({{"cpu", 2}});
  const ActionId hi_bus = action({{"cpu", 2}, {"bus", 1}});
  const ActionId other = action({{"bus", 1}});

  // Idle is preempted by any resource-using action with a positive priority.
  EXPECT_TRUE(at.preempts(idle, lo));
  EXPECT_FALSE(at.preempts(lo, idle));
  // Same resource, higher priority preempts.
  EXPECT_TRUE(at.preempts(lo, hi));
  EXPECT_FALSE(at.preempts(hi, lo));
  // Superset with strictly higher priority preempts.
  EXPECT_TRUE(at.preempts(lo, hi_bus));
  // Disjoint resources: no preemption either way.
  EXPECT_FALSE(at.preempts(lo, other));
  EXPECT_FALSE(at.preempts(other, lo));
  // a has a resource b lacks: not preempted even at higher priority.
  EXPECT_FALSE(at.preempts(hi_bus, hi));
  // Equality never preempts.
  EXPECT_FALSE(at.preempts(hi, hi));
}

TEST_F(TermTest, PreemptionRequiresStrictImprovement) {
  auto& at = ctx.actions();
  const ActionId a = action({{"cpu", 2}});
  const ActionId b = action({{"cpu", 2}, {"bus", 0}});
  // b adds bus at priority 0: no strict improvement anywhere -> no preempt.
  EXPECT_FALSE(at.preempts(a, b));
  const ActionId c = action({{"cpu", 2}, {"bus", 1}});
  EXPECT_TRUE(at.preempts(a, c));
}

TEST_F(TermTest, PrinterRendersGroundTerms) {
  Builder b(ctx);
  const TermId p =
      tt.act(action({{"cpu", 1}}), tt.evt(ctx.event("done"), true, 2, kNil));
  Printer pr(ctx);
  EXPECT_EQ(pr.ground_term(p), "{(cpu,1)} : (done!,2) . NIL");
}

}  // namespace
