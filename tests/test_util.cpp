// Unit tests for the util support library.
#include <gtest/gtest.h>

#include <atomic>
#include <limits>
#include <set>
#include <thread>

#include "util/diagnostics.hpp"
#include "util/hash.hpp"
#include "util/interner.hpp"
#include "util/numeric.hpp"
#include "util/rng.hpp"
#include "util/string_utils.hpp"
#include "util/thread_pool.hpp"

namespace u = aadlsched::util;

TEST(Interner, EmptyStringIsSymbolZero) {
  u::Interner in;
  EXPECT_EQ(in.intern(""), 0u);
  EXPECT_EQ(in.str(0), "");
}

TEST(Interner, InterningIsIdempotent) {
  u::Interner in;
  const auto a = in.intern("cpu");
  const auto b = in.intern("bus");
  EXPECT_NE(a, b);
  EXPECT_EQ(in.intern("cpu"), a);
  EXPECT_EQ(in.str(a), "cpu");
  EXPECT_EQ(in.str(b), "bus");
}

TEST(Interner, LookupDoesNotIntern) {
  u::Interner in;
  u::Symbol s = 99;
  EXPECT_FALSE(in.lookup("ghost", s));
  const std::size_t before = in.size();
  EXPECT_EQ(in.size(), before);
  in.intern("ghost");
  EXPECT_TRUE(in.lookup("ghost", s));
}

TEST(Interner, SurvivesRehashes) {
  u::Interner in;
  std::vector<u::Symbol> syms;
  for (int i = 0; i < 10000; ++i)
    syms.push_back(in.intern("sym_" + std::to_string(i)));
  for (int i = 0; i < 10000; ++i)
    EXPECT_EQ(in.str(syms[static_cast<std::size_t>(i)]),
              "sym_" + std::to_string(i));
}

TEST(Hash, MixDecorrelatesSmallIntegers) {
  std::set<std::uint64_t> hs;
  for (std::uint64_t i = 0; i < 1000; ++i) hs.insert(u::mix64(i));
  EXPECT_EQ(hs.size(), 1000u);
}

TEST(Hash, CombineIsOrderSensitive) {
  const auto a = u::hash_combine(u::hash_combine(0, 1), 2);
  const auto b = u::hash_combine(u::hash_combine(0, 2), 1);
  EXPECT_NE(a, b);
}

TEST(Hash, Fnv1aMatchesKnownVector) {
  // FNV-1a 64-bit of "a" is a published constant.
  EXPECT_EQ(u::fnv1a("a"), 0xaf63dc4c8601ec8cULL);
}

TEST(Numeric, Gcd) {
  EXPECT_EQ(u::gcd64(12, 18), 6);
  EXPECT_EQ(u::gcd64(7, 13), 1);
  EXPECT_EQ(u::gcd64(0, 5), 5);
  EXPECT_EQ(u::gcd64(-12, 18), 6);
}

TEST(Numeric, CheckedLcm) {
  EXPECT_EQ(u::checked_lcm(4, 6).value(), 12);
  EXPECT_EQ(u::checked_lcm(0, 6).value(), 0);
  EXPECT_FALSE(u::checked_lcm(std::int64_t{1} << 62, 3).has_value());
}

TEST(Numeric, Hyperperiod) {
  const std::int64_t ps[] = {10, 20, 40};
  EXPECT_EQ(u::hyperperiod(ps).value(), 40);
  const std::int64_t qs[] = {5, 7, 3};
  EXPECT_EQ(u::hyperperiod(qs).value(), 105);
  EXPECT_FALSE(u::hyperperiod({}).has_value());
}

TEST(Numeric, CeilDiv) {
  EXPECT_EQ(u::ceil_div(10, 3), 4);
  EXPECT_EQ(u::ceil_div(9, 3), 3);
  EXPECT_EQ(u::ceil_div(1, 5), 1);
  EXPECT_EQ(u::ceil_div(0, 5), 0);
}

TEST(Rng, Deterministic) {
  u::Xoshiro256 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, UniformInRange) {
  u::Xoshiro256 r(7);
  for (int i = 0; i < 1000; ++i) {
    const double x = r.uniform();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
    const auto v = r.uniform_int(3, 9);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 9u);
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  u::Xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a() == b()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Strings, ToLowerAndIequals) {
  EXPECT_EQ(u::to_lower("Dispatch_Protocol"), "dispatch_protocol");
  EXPECT_TRUE(u::iequals("Periodic", "PERIODIC"));
  EXPECT_FALSE(u::iequals("Periodic", "Sporadic"));
  EXPECT_FALSE(u::iequals("abc", "abcd"));
}

TEST(Strings, SplitJoin) {
  const auto parts = u::split("a.b..c", '.');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(u::join({"x", "y", "z"}, "::"), "x::y::z");
  EXPECT_EQ(u::join({}, "::"), "");
}

TEST(Strings, PadRight) {
  EXPECT_EQ(u::pad_right("ab", 5), "ab   ");
  EXPECT_EQ(u::pad_right("abcdef", 3), "abcdef");
}

TEST(Diagnostics, CountsAndRenders) {
  u::DiagnosticEngine de("model.aadl");
  de.warning({1, 2}, "odd");
  de.error({3, 4}, "bad");
  EXPECT_TRUE(de.has_errors());
  EXPECT_EQ(de.error_count(), 1u);
  const std::string all = de.render_all();
  EXPECT_NE(all.find("model.aadl:3:4: error: bad"), std::string::npos);
  EXPECT_NE(all.find("model.aadl:1:2: warning: odd"), std::string::npos);
}

TEST(Diagnostics, InvalidLocOmitted) {
  u::DiagnosticEngine de("x");
  de.error({}, "no loc");
  EXPECT_EQ(de.render_all(), "x: error: no loc\n");
}

TEST(ThreadPool, RunsAllTasks) {
  u::ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) pool.submit([&] { ++count; });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, ParallelForCoversRange) {
  u::ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(64);
  pool.parallel_for(64, [&](std::size_t i) { ++hits[i]; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ReusableAfterWait) {
  u::ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.parallel_for(10, [&](std::size_t) { ++count; });
  pool.parallel_for(10, [&](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 20);
}

TEST(ParseInt64, AcceptsWellFormedIntegers) {
  EXPECT_EQ(u::parse_int64("0"), 0);
  EXPECT_EQ(u::parse_int64("42"), 42);
  EXPECT_EQ(u::parse_int64("+42"), 42);
  EXPECT_EQ(u::parse_int64("-7"), -7);
  EXPECT_EQ(u::parse_int64("007"), 7);
  EXPECT_EQ(u::parse_int64("9223372036854775807"),
            std::numeric_limits<std::int64_t>::max());
}

TEST(ParseInt64, RejectsGarbageAndPartialMatches) {
  // std::atoll accepted every one of these (the CLI regression this
  // replaces).
  for (const char* bad : {"", "+", "-", "x", "2x", "x2", "4 2", " 42", "42 ",
                          "--4", "+-4", "1e3", "0x10"})
    EXPECT_FALSE(u::parse_int64(bad).has_value()) << '"' << bad << '"';
}

TEST(ParseInt64, RejectsOverflow) {
  EXPECT_FALSE(u::parse_int64("9223372036854775808").has_value());
  EXPECT_FALSE(u::parse_int64("99999999999999999999").has_value());
  // INT64_MIN is rejected by design (no CLI option needs it).
  EXPECT_FALSE(u::parse_int64("-9223372036854775808").has_value());
  EXPECT_EQ(u::parse_int64("-9223372036854775807"),
            std::numeric_limits<std::int64_t>::min() + 1);
}

TEST(JsonEscape, PassesPlainTextThrough) {
  EXPECT_EQ(u::json_escape("processor 'cpu' U = 1.5"),
            "processor 'cpu' U = 1.5");
}

TEST(JsonEscape, EscapesQuotesBackslashesAndControls) {
  EXPECT_EQ(u::json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(u::json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(u::json_escape("line1\nline2"), "line1\\nline2");
  EXPECT_EQ(u::json_escape("\t\r\b\f"), "\\t\\r\\b\\f");
  EXPECT_EQ(u::json_escape(std::string(1, '\x01')), "\\u0001");
  EXPECT_EQ(u::json_escape(std::string(1, '\x1f')), "\\u001f");
}
