// aadllint: one positive and one negative fixture per pass (AL001..AL012),
// framework/registry behavior, and the Analyzer integration contract —
// a conclusive screening verdict provably skips exploration (0 states) and
// always agrees with the verdict exploration would have produced.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>

#include "acsr/builder.hpp"
#include "acsr/context.hpp"
#include "acsr/semantics.hpp"
#include "aadl/parser.hpp"
#include "core/analyzer.hpp"
#include "core/taskset_aadl.hpp"
#include "lint/lint.hpp"
#include "sched/workload.hpp"
#include "translate/translator.hpp"
#include "versa/explorer.hpp"

using namespace aadlsched;

namespace {

lint::Options ms_options() {
  lint::Options opts;
  opts.translation.quantum_ns = 1'000'000;  // 1 ms
  return opts;
}

/// Parse + instantiate + lint. Front-end diagnostics are tolerated (some
/// fixtures are deliberately broken); parse/instantiate must still yield an
/// instance tree.
lint::Report lint_source(const std::string& src,
                         const lint::Options& opts = ms_options(),
                         const std::string& root = "S.impl") {
  aadl::Model model;
  util::DiagnosticEngine diags;
  EXPECT_TRUE(aadl::parse_aadl(model, src, diags)) << diags.render_all();
  auto inst = aadl::instantiate(model, root, diags);
  EXPECT_NE(inst, nullptr) << diags.render_all();
  if (!inst) return {};
  return lint::run(*inst, opts);
}

std::size_t count_check(const lint::Report& r, std::string_view id) {
  std::size_t n = 0;
  for (const lint::Finding& f : r.findings)
    if (f.check_id == id) ++n;
  return n;
}

const lint::Finding* first_check(const lint::Report& r, std::string_view id) {
  for (const lint::Finding& f : r.findings)
    if (f.check_id == id) return &f;
  return nullptr;
}

/// A minimal clean system: one periodic thread on a rate-monotonic
/// processor, properly bound. Lints with zero findings above Note level.
std::string base_model(const std::string& extra_properties = {}) {
  return R"(
package P
public
  processor Cpu
  properties
    Scheduling_Protocol => RATE_MONOTONIC_PROTOCOL;
  end Cpu;

  thread T
  end T;

  thread implementation T.impl
  properties
    Dispatch_Protocol => Periodic;
    Period => 10 ms;
    Compute_Execution_Time => 2 ms .. 2 ms;
    Deadline => 10 ms;
  end T.impl;

  system S
  end S;

  system implementation S.impl
  subcomponents
    t : thread T.impl;
    cpu : processor Cpu;
  properties
    Actual_Processor_Binding => reference (cpu) applies to t;
)" + extra_properties + R"(
  end S.impl;
end P;
)";
}

/// Two periodic threads at wcet 3 / period 4 on one RM processor:
/// U = 1.5 > 1, a guaranteed overload (AL007 conclusive NotSchedulable).
constexpr const char* kOverloadModel = R"(
package P
public
  processor Cpu
  properties
    Scheduling_Protocol => RATE_MONOTONIC_PROTOCOL;
  end Cpu;

  thread A
  end A;

  thread implementation A.impl
  properties
    Dispatch_Protocol => Periodic;
    Period => 4 ms;
    Compute_Execution_Time => 3 ms .. 3 ms;
    Deadline => 4 ms;
  end A.impl;

  thread B
  end B;

  thread implementation B.impl
  properties
    Dispatch_Protocol => Periodic;
    Period => 4 ms;
    Compute_Execution_Time => 3 ms .. 3 ms;
    Deadline => 4 ms;
  end B.impl;

  system S
  end S;

  system implementation S.impl
  subcomponents
    a : thread A.impl;
    b : thread B.impl;
    cpu : processor Cpu;
  properties
    Actual_Processor_Binding => reference (cpu) applies to a;
    Actual_Processor_Binding => reference (cpu) applies to b;
  end S.impl;
end P;
)";

/// Two periodic threads at wcet 5 / period 10 under EDF: U = 1.0 exactly,
/// schedulable, and the EDF utilization test is exact (AL009 vouches).
constexpr const char* kEdfExactModel = R"(
package P
public
  processor Cpu
  properties
    Scheduling_Protocol => EDF_PROTOCOL;
  end Cpu;

  thread A
  end A;

  thread implementation A.impl
  properties
    Dispatch_Protocol => Periodic;
    Period => 10 ms;
    Compute_Execution_Time => 5 ms .. 5 ms;
    Deadline => 10 ms;
  end A.impl;

  thread B
  end B;

  thread implementation B.impl
  properties
    Dispatch_Protocol => Periodic;
    Period => 10 ms;
    Compute_Execution_Time => 5 ms .. 5 ms;
    Deadline => 10 ms;
  end B.impl;

  system S
  end S;

  system implementation S.impl
  subcomponents
    a : thread A.impl;
    b : thread B.impl;
    cpu : processor Cpu;
  properties
    Actual_Processor_Binding => reference (cpu) applies to a;
    Actual_Processor_Binding => reference (cpu) applies to b;
  end S.impl;
end P;
)";

/// Two-thread model with connectable data ports; `connections` and thread
/// property overrides are injected by the caller.
std::string two_thread_model(const std::string& a_features,
                             const std::string& b_features,
                             const std::string& connections,
                             const std::string& a_props =
                                 "    Dispatch_Protocol => Periodic;\n"
                                 "    Period => 10 ms;\n"
                                 "    Compute_Execution_Time => 1 ms .. 1 "
                                 "ms;\n    Deadline => 10 ms;\n",
                             const std::string& b_props =
                                 "    Dispatch_Protocol => Periodic;\n"
                                 "    Period => 10 ms;\n"
                                 "    Compute_Execution_Time => 1 ms .. 1 "
                                 "ms;\n    Deadline => 10 ms;\n",
                             const std::string& extra_properties = {}) {
  const std::string connections_section =
      connections.empty() ? std::string()
                          : "  connections\n" + connections + "\n";
  return R"(
package P
public
  processor Cpu
  properties
    Scheduling_Protocol => RATE_MONOTONIC_PROTOCOL;
  end Cpu;

  thread A
  features
)" + a_features + R"(
  end A;

  thread implementation A.impl
  properties
)" + a_props + R"(
  end A.impl;

  thread B
  features
)" + b_features + R"(
  end B;

  thread implementation B.impl
  properties
)" + b_props + R"(
  end B.impl;

  system S
  end S;

  system implementation S.impl
  subcomponents
    a : thread A.impl;
    b : thread B.impl;
    cpu : processor Cpu;
)" + connections_section + R"(  properties
    Actual_Processor_Binding => reference (cpu) applies to a;
    Actual_Processor_Binding => reference (cpu) applies to b;
)" + extra_properties + R"(
  end S.impl;
end P;
)";
}

}  // namespace

// --- framework / registry -------------------------------------------------

TEST(LintRegistry, BuiltinHasAllPassesWithUniqueStableIds) {
  const lint::Registry& reg = lint::Registry::builtin();
  EXPECT_GE(reg.passes().size(), 12u);
  std::set<std::string_view> ids, names;
  for (const auto& p : reg.passes()) {
    EXPECT_TRUE(ids.insert(p->info().id).second)
        << "duplicate check id " << p->info().id;
    EXPECT_TRUE(names.insert(p->info().name).second);
  }
  for (const char* id : {"AL001", "AL002", "AL003", "AL004", "AL005",
                         "AL006", "AL007", "AL008", "AL009", "AL010",
                         "AL011", "AL012"})
    EXPECT_TRUE(ids.count(id)) << "missing check " << id;
}

TEST(LintRegistry, FindsByIdAndByName) {
  const lint::Registry& reg = lint::Registry::builtin();
  const lint::Pass* by_id = reg.find("AL007");
  ASSERT_NE(by_id, nullptr);
  EXPECT_EQ(reg.find("utilization-overload"), by_id);
  EXPECT_EQ(by_id->info().tier, lint::Tier::Screening);
  EXPECT_EQ(reg.find("AL001")->info().tier, lint::Tier::ModelHygiene);
  EXPECT_EQ(reg.find("AL010")->info().tier, lint::Tier::AcsrWellFormedness);
  EXPECT_EQ(reg.find("AL999"), nullptr);
}

TEST(LintFramework, CleanModelHasNoFindingsAboveNote) {
  const lint::Report r = lint_source(base_model());
  EXPECT_EQ(r.errors(), 0u) << r.render_text();
  EXPECT_EQ(r.warnings(), 0u) << r.render_text();
  EXPECT_TRUE(r.translated);
}

TEST(LintFramework, DisabledChecksDoNotRun) {
  lint::Options opts = ms_options();
  opts.disabled = {"AL007"};
  const lint::Report r = lint_source(kOverloadModel, opts);
  EXPECT_EQ(count_check(r, "AL007"), 0u);
  EXPECT_EQ(r.verdict, lint::StaticVerdict::None);
}

TEST(LintFramework, RenderTextShowsCheckIdsAndVerdict) {
  const lint::Report r = lint_source(kOverloadModel);
  const std::string text = r.render_text();
  EXPECT_NE(text.find("[AL007 utilization-overload]"), std::string::npos)
      << text;
  EXPECT_NE(text.find("static verdict: not_schedulable"), std::string::npos)
      << text;
}

TEST(LintFramework, RenderJsonCarriesVerdictAndFindings) {
  const lint::Report r = lint_source(kOverloadModel);
  const std::string json = r.render_json();
  EXPECT_NE(json.find("\"verdict\": \"not_schedulable\""), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"decided_by\": \"AL007\""), std::string::npos);
  EXPECT_NE(json.find("\"check\": \"AL007\""), std::string::npos);
  EXPECT_NE(json.find("\"translated\": true"), std::string::npos);
}

// --- AL001 unbound-thread ---------------------------------------------------

TEST(LintModel, Al001FlagsUnboundThread) {
  // base_model without the binding property line.
  const std::string src = R"(
package P
public
  processor Cpu
  properties
    Scheduling_Protocol => RATE_MONOTONIC_PROTOCOL;
  end Cpu;
  thread T
  end T;
  thread implementation T.impl
  properties
    Dispatch_Protocol => Periodic;
    Period => 10 ms;
    Compute_Execution_Time => 2 ms .. 2 ms;
    Deadline => 10 ms;
  end T.impl;
  system S
  end S;
  system implementation S.impl
  subcomponents
    t : thread T.impl;
    cpu : processor Cpu;
  end S.impl;
end P;
)";
  const lint::Report r = lint_source(src);
  const lint::Finding* f = first_check(r, "AL001");
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->severity, util::Severity::Error);
  EXPECT_EQ(f->component, "t");
}

TEST(LintModel, Al001AcceptsBoundThread) {
  EXPECT_EQ(count_check(lint_source(base_model()), "AL001"), 0u);
}

// --- AL002 unresolved-endpoint ---------------------------------------------

TEST(LintModel, Al002FlagsMissingFeature) {
  const std::string src = two_thread_model(
      "    a_out : out data port;", "    b_in : in data port;",
      "    c1 : port a.nosuch -> b.b_in;");
  const lint::Report r = lint_source(src);
  const lint::Finding* f = first_check(r, "AL002");
  ASSERT_NE(f, nullptr) << r.render_text();
  EXPECT_EQ(f->severity, util::Severity::Error);
  EXPECT_NE(f->message.find("no feature 'nosuch'"), std::string::npos);
}

TEST(LintModel, Al002FlagsDirectionMismatch) {
  // An in port as source and an out port as destination: two warnings.
  const std::string src = two_thread_model(
      "    a_out : out data port;", "    b_in : in data port;",
      "    c1 : port b.b_in -> a.a_out;");
  const lint::Report r = lint_source(src);
  EXPECT_EQ(count_check(r, "AL002"), 2u) << r.render_text();
  EXPECT_EQ(first_check(r, "AL002")->severity, util::Severity::Warning);
}

TEST(LintModel, Al002AcceptsResolvedConnection) {
  const std::string src = two_thread_model(
      "    a_out : out data port;", "    b_in : in data port;",
      "    c1 : port a.a_out -> b.b_in;");
  EXPECT_EQ(count_check(lint_source(src), "AL002"), 0u);
}

// --- AL003 dead-end-connection ---------------------------------------------

TEST(LintModel, Al003FlagsChainThatNeverReachesAThread) {
  // The thread's out port feeds the enclosing system's boundary port with
  // no continuation beyond it: instantiation silently drops the chain.
  const std::string src = R"(
package P
public
  processor Cpu
  properties
    Scheduling_Protocol => RATE_MONOTONIC_PROTOCOL;
  end Cpu;
  thread A
  features
    a_out : out data port;
  end A;
  thread implementation A.impl
  properties
    Dispatch_Protocol => Periodic;
    Period => 10 ms;
    Compute_Execution_Time => 1 ms .. 1 ms;
    Deadline => 10 ms;
  end A.impl;
  system S
  features
    sys_out : out data port;
  end S;
  system implementation S.impl
  subcomponents
    a : thread A.impl;
    cpu : processor Cpu;
  connections
    c1 : port a.a_out -> sys_out;
  properties
    Actual_Processor_Binding => reference (cpu) applies to a;
  end S.impl;
end P;
)";
  const lint::Report r = lint_source(src);
  const lint::Finding* f = first_check(r, "AL003");
  ASSERT_NE(f, nullptr) << r.render_text();
  EXPECT_EQ(f->severity, util::Severity::Warning);
  EXPECT_EQ(f->component, "a.a_out");
}

TEST(LintModel, Al003AcceptsThreadToThreadConnection) {
  const std::string src = two_thread_model(
      "    a_out : out data port;", "    b_in : in data port;",
      "    c1 : port a.a_out -> b.b_in;");
  EXPECT_EQ(count_check(lint_source(src), "AL003"), 0u);
}

// --- AL004 missing-property -------------------------------------------------

TEST(LintModel, Al004FlagsMissingMandatoryProperties) {
  // Thread with neither Dispatch_Protocol nor Compute_Execution_Time, on a
  // processor without Scheduling_Protocol: three distinct errors.
  const std::string src = R"(
package P
public
  processor Cpu
  end Cpu;
  thread T
  end T;
  thread implementation T.impl
  properties
    Period => 10 ms;
  end T.impl;
  system S
  end S;
  system implementation S.impl
  subcomponents
    t : thread T.impl;
    cpu : processor Cpu;
  properties
    Actual_Processor_Binding => reference (cpu) applies to t;
  end S.impl;
end P;
)";
  const lint::Report r = lint_source(src);
  EXPECT_EQ(count_check(r, "AL004"), 3u) << r.render_text();
  EXPECT_FALSE(r.translated);  // translation rejects the same model
}

TEST(LintModel, Al004AcceptsFullyAnnotatedModel) {
  EXPECT_EQ(count_check(lint_source(base_model()), "AL004"), 0u);
}

// --- AL005 inconsistent-timing ----------------------------------------------

TEST(LintModel, Al005FlagsDeadlineBeyondPeriod) {
  const std::string src = two_thread_model(
      "    a_out : out data port;", "    b_in : in data port;", "",
      "    Dispatch_Protocol => Periodic;\n    Period => 5 ms;\n"
      "    Compute_Execution_Time => 1 ms .. 1 ms;\n    Deadline => 10 ms;\n");
  const lint::Report r = lint_source(src);
  const lint::Finding* f = first_check(r, "AL005");
  ASSERT_NE(f, nullptr) << r.render_text();
  EXPECT_EQ(f->severity, util::Severity::Error);
  EXPECT_NE(f->message.find("Deadline exceeds Period"), std::string::npos);
}

TEST(LintModel, Al005WcetBeyondDeadlineIsConclusivelyNotSchedulable) {
  // cmax 5 quanta > deadline 3 quanta: the thread cannot meet its deadline
  // even alone, a guaranteed counterexample.
  const std::string src = two_thread_model(
      "    a_out : out data port;", "    b_in : in data port;", "",
      "    Dispatch_Protocol => Periodic;\n    Period => 10 ms;\n"
      "    Compute_Execution_Time => 5 ms .. 5 ms;\n    Deadline => 3 ms;\n");
  const lint::Report r = lint_source(src);
  ASSERT_NE(first_check(r, "AL005"), nullptr) << r.render_text();
  EXPECT_EQ(r.verdict, lint::StaticVerdict::NotSchedulable);
  EXPECT_EQ(r.decided_by, "AL005");
}

TEST(LintModel, Al005AcceptsConsistentTiming) {
  EXPECT_EQ(count_check(lint_source(base_model()), "AL005"), 0u);
}

// --- AL006 queue-misconfig --------------------------------------------------

TEST(LintModel, Al006FlagsQueuePropertiesOnDataConnection) {
  const std::string src = two_thread_model(
      "    a_out : out data port;", "    b_in : in data port;",
      "    c1 : port a.a_out -> b.b_in;",
      "    Dispatch_Protocol => Periodic;\n    Period => 10 ms;\n"
      "    Compute_Execution_Time => 1 ms .. 1 ms;\n    Deadline => 10 ms;\n",
      "    Dispatch_Protocol => Periodic;\n    Period => 10 ms;\n"
      "    Compute_Execution_Time => 1 ms .. 1 ms;\n    Deadline => 10 ms;\n",
      "    Queue_Size => 4 applies to c1;\n");
  const lint::Report r = lint_source(src);
  const lint::Finding* f = first_check(r, "AL006");
  ASSERT_NE(f, nullptr) << r.render_text();
  EXPECT_EQ(f->severity, util::Severity::Warning);
  EXPECT_NE(f->message.find("data port"), std::string::npos);
}

TEST(LintModel, Al006FlagsOutOfRangeQueueSize) {
  const std::string src = two_thread_model(
      "    a_out : out event port;", "    b_in : in event port;",
      "    c1 : port a.a_out -> b.b_in;",
      "    Dispatch_Protocol => Periodic;\n    Period => 10 ms;\n"
      "    Compute_Execution_Time => 1 ms .. 1 ms;\n    Deadline => 10 ms;\n",
      "    Dispatch_Protocol => Sporadic;\n    Period => 10 ms;\n"
      "    Compute_Execution_Time => 1 ms .. 1 ms;\n    Deadline => 10 ms;\n",
      "    Queue_Size => 0 applies to c1;\n");
  const lint::Report r = lint_source(src);
  const lint::Finding* f = first_check(r, "AL006");
  ASSERT_NE(f, nullptr) << r.render_text();
  EXPECT_EQ(f->severity, util::Severity::Error);
  EXPECT_NE(f->message.find("out of range"), std::string::npos);
}

TEST(LintModel, Al006AcceptsValidQueueOnSporadicDestination) {
  const std::string src = two_thread_model(
      "    a_out : out event port;", "    b_in : in event port;",
      "    c1 : port a.a_out -> b.b_in;",
      "    Dispatch_Protocol => Periodic;\n    Period => 10 ms;\n"
      "    Compute_Execution_Time => 1 ms .. 1 ms;\n    Deadline => 10 ms;\n",
      "    Dispatch_Protocol => Sporadic;\n    Period => 10 ms;\n"
      "    Compute_Execution_Time => 1 ms .. 1 ms;\n    Deadline => 10 ms;\n",
      "    Queue_Size => 2 applies to c1;\n");
  EXPECT_EQ(count_check(lint_source(src), "AL006"), 0u);
}

// --- AL007 utilization-overload ---------------------------------------------

TEST(LintScreen, Al007OverloadIsConclusivelyNotSchedulable) {
  const lint::Report r = lint_source(kOverloadModel);
  const lint::Finding* f = first_check(r, "AL007");
  ASSERT_NE(f, nullptr) << r.render_text();
  EXPECT_EQ(f->severity, util::Severity::Error);
  EXPECT_EQ(f->component, "cpu");
  EXPECT_EQ(r.verdict, lint::StaticVerdict::NotSchedulable);
  EXPECT_EQ(r.decided_by, "AL007");
  EXPECT_TRUE(r.translated);
}

TEST(LintScreen, Al007SporadicOverloadIsOnlyAWarning) {
  // Periodic load alone fits; adding the sporadic thread at its maximum
  // rate exceeds 1 — advisory only, never a conclusive verdict.
  const std::string src = two_thread_model(
      "    a_out : out event port;", "    b_in : in event port;",
      "    c1 : port a.a_out -> b.b_in;",
      "    Dispatch_Protocol => Periodic;\n    Period => 4 ms;\n"
      "    Compute_Execution_Time => 3 ms .. 3 ms;\n    Deadline => 4 ms;\n",
      "    Dispatch_Protocol => Sporadic;\n    Period => 4 ms;\n"
      "    Compute_Execution_Time => 2 ms .. 2 ms;\n    Deadline => 4 ms;\n");
  const lint::Report r = lint_source(src);
  const lint::Finding* f = first_check(r, "AL007");
  ASSERT_NE(f, nullptr) << r.render_text();
  EXPECT_EQ(f->severity, util::Severity::Warning);
  EXPECT_NE(r.verdict, lint::StaticVerdict::NotSchedulable);
}

TEST(LintScreen, Al007AcceptsFeasibleLoad) {
  EXPECT_EQ(count_check(lint_source(base_model()), "AL007"), 0u);
}

// --- AL008 rm-utilization-bound ---------------------------------------------

TEST(LintScreen, Al008VouchesForLowUtilizationRmProcessor) {
  const lint::Report r = lint_source(base_model());
  ASSERT_NE(first_check(r, "AL008"), nullptr) << r.render_text();
  ASSERT_EQ(r.processor_verdicts.size(), 1u);
  EXPECT_EQ(r.processor_verdicts[0].check_id, "AL008");
  EXPECT_TRUE(r.processor_verdicts[0].schedulable);
  EXPECT_EQ(r.verdict, lint::StaticVerdict::Schedulable);
  EXPECT_EQ(r.decided_by, "AL008");
}

TEST(LintScreen, Al008AbstainsWhenHyperbolicBoundFails) {
  // U = 4/9 + 4/10 = 0.844 but (13/9)(14/10) = 2.022 > 2: the sufficient
  // bound does not apply, so no verdict is offered (exploration decides).
  const std::string src = two_thread_model(
      "    a_out : out data port;", "    b_in : in data port;", "",
      "    Dispatch_Protocol => Periodic;\n    Period => 9 ms;\n"
      "    Compute_Execution_Time => 4 ms .. 4 ms;\n    Deadline => 9 ms;\n",
      "    Dispatch_Protocol => Periodic;\n    Period => 10 ms;\n"
      "    Compute_Execution_Time => 4 ms .. 4 ms;\n    Deadline => 10 ms;\n");
  const lint::Report r = lint_source(src);
  EXPECT_EQ(count_check(r, "AL008"), 0u) << r.render_text();
  EXPECT_EQ(r.verdict, lint::StaticVerdict::None);
}

TEST(LintScreen, Al008AbstainsOnImpureModel) {
  // An event connection makes the classical abstraction inexact: no vouch
  // even though the utilization is low.
  const std::string src = two_thread_model(
      "    a_out : out event port;", "    b_in : in event port;",
      "    c1 : port a.a_out -> b.b_in;",
      "    Dispatch_Protocol => Periodic;\n    Period => 10 ms;\n"
      "    Compute_Execution_Time => 1 ms .. 1 ms;\n    Deadline => 10 ms;\n",
      "    Dispatch_Protocol => Sporadic;\n    Period => 10 ms;\n"
      "    Compute_Execution_Time => 1 ms .. 1 ms;\n    Deadline => 10 ms;\n");
  const lint::Report r = lint_source(src);
  EXPECT_EQ(count_check(r, "AL008"), 0u) << r.render_text();
  EXPECT_EQ(r.verdict, lint::StaticVerdict::None);
}

// --- AL009 edf-utilization --------------------------------------------------

TEST(LintScreen, Al009VouchesForEdfAtExactlyFullUtilization) {
  const lint::Report r = lint_source(kEdfExactModel);
  ASSERT_NE(first_check(r, "AL009"), nullptr) << r.render_text();
  EXPECT_EQ(r.verdict, lint::StaticVerdict::Schedulable);
  EXPECT_EQ(r.decided_by, "AL009");
}

TEST(LintScreen, Al009AbstainsOnConstrainedDeadlines) {
  // Deadline < period: U <= 1 is no longer sufficient, so no vouch.
  const std::string src = two_thread_model(
      "    a_out : out data port;", "    b_in : in data port;", "",
      "    Dispatch_Protocol => Periodic;\n    Period => 10 ms;\n"
      "    Compute_Execution_Time => 2 ms .. 2 ms;\n    Deadline => 8 ms;\n",
      "    Dispatch_Protocol => Periodic;\n    Period => 10 ms;\n"
      "    Compute_Execution_Time => 2 ms .. 2 ms;\n    Deadline => 10 ms;\n",
      "    Scheduling_Protocol => EDF_PROTOCOL applies to cpu;\n");
  const lint::Report r = lint_source(src);
  EXPECT_EQ(count_check(r, "AL009"), 0u) << r.render_text();
  EXPECT_EQ(r.verdict, lint::StaticVerdict::None);
}

// --- AL010 unguarded-recursion ----------------------------------------------

TEST(LintAcsr, Al010FlagsUnguardedSelfRecursion) {
  acsr::Context ctx;
  acsr::Builder b(ctx);
  b.def("P", {}, b.pick({b.call("P"), b.idle(b.nil())}));
  const lint::Report r = lint::run_acsr(ctx, ms_options());
  const lint::Finding* f = first_check(r, "AL010");
  ASSERT_NE(f, nullptr) << r.render_text();
  EXPECT_EQ(f->severity, util::Severity::Error);
  EXPECT_EQ(f->component, "P");
  // Passes that need the instance model are recorded as skipped.
  EXPECT_NE(std::find(r.skipped.begin(), r.skipped.end(), "AL001"),
            r.skipped.end());
  EXPECT_NE(std::find(r.skipped.begin(), r.skipped.end(), "AL012"),
            r.skipped.end());
}

TEST(LintAcsr, Al010FlagsMutualUnguardedRecursion) {
  acsr::Context ctx;
  acsr::Builder b(ctx);
  b.def("P", {}, b.call("Q"));
  b.def("Q", {}, b.call("P"));
  const lint::Report r = lint::run_acsr(ctx, ms_options());
  EXPECT_EQ(count_check(r, "AL010"), 2u) << r.render_text();
}

TEST(LintAcsr, Al010AcceptsGuardedRecursion) {
  acsr::Context ctx;
  acsr::Builder b(ctx);
  b.def("Q", {}, b.act({{"cpu", b.c(0)}}, b.call("Q")));
  b.def("R", {}, b.recv("go", b.c(1), b.call("R")));
  const lint::Report r = lint::run_acsr(ctx, ms_options());
  EXPECT_EQ(count_check(r, "AL010"), 0u) << r.render_text();
}

// --- AL011 par3-conflict ----------------------------------------------------

TEST(LintAcsr, Al011FlagsSiblingsThatAlwaysShareAResource) {
  acsr::Context ctx;
  acsr::Builder b(ctx);
  b.def("A", {}, b.act({{"r", b.c(0)}}, b.call("A")));
  b.def("B", {}, b.act({{"r", b.c(1)}}, b.call("B")));
  b.def("Sys", {}, b.par({b.call("A"), b.call("B")}));
  const lint::Report r = lint::run_acsr(ctx, ms_options());
  const lint::Finding* f = first_check(r, "AL011");
  ASSERT_NE(f, nullptr) << r.render_text();
  EXPECT_EQ(f->severity, util::Severity::Warning);
  EXPECT_EQ(f->component, "Sys");
  EXPECT_NE(f->message.find("'r'"), std::string::npos);
}

TEST(LintAcsr, Al011AcceptsDisjointResources) {
  acsr::Context ctx;
  acsr::Builder b(ctx);
  b.def("A", {}, b.act({{"r", b.c(0)}}, b.call("A")));
  b.def("B", {}, b.act({{"s", b.c(1)}}, b.call("B")));
  b.def("Sys", {}, b.par({b.call("A"), b.call("B")}));
  const lint::Report r = lint::run_acsr(ctx, ms_options());
  EXPECT_EQ(count_check(r, "AL011"), 0u) << r.render_text();
}

TEST(LintAcsr, Al011AcceptsChoiceThatCanAvoidTheSharedResource) {
  // A's must-use set is the intersection over its alternatives — empty, so
  // no conflict is certain and the pass stays silent (under-approximation).
  acsr::Context ctx;
  acsr::Builder b(ctx);
  b.def("A", {}, b.pick({b.act({{"r", b.c(0)}}, b.call("A")),
                         b.act({{"s", b.c(0)}}, b.call("A"))}));
  b.def("B", {}, b.act({{"r", b.c(1)}}, b.call("B")));
  b.def("Sys", {}, b.par({b.call("A"), b.call("B")}));
  const lint::Report r = lint::run_acsr(ctx, ms_options());
  EXPECT_EQ(count_check(r, "AL011"), 0u) << r.render_text();
}

// --- AL012 instantaneous-cycle ----------------------------------------------

namespace {

std::string cycle_model(const std::string& cet) {
  return two_thread_model(
      "    a_in : in event port;\n    a_out : out event port;",
      "    b_in : in event port;\n    b_out : out event port;",
      "    c_ab : port a.a_out -> b.b_in;\n"
      "    c_ba : port b.b_out -> a.a_in;",
      "    Dispatch_Protocol => Aperiodic;\n"
      "    Compute_Execution_Time => " + cet + ";\n"
      "    Deadline => 20 ms;\n    Priority => 1;\n",
      "    Dispatch_Protocol => Aperiodic;\n"
      "    Compute_Execution_Time => " + cet + ";\n"
      "    Deadline => 20 ms;\n    Priority => 2;\n");
}

}  // namespace

TEST(LintAcsr, Al012FlagsInstantaneousEventCycle) {
  const lint::Report r = lint_source(cycle_model("0 ms .. 1 ms"));
  const lint::Finding* f = first_check(r, "AL012");
  ASSERT_NE(f, nullptr) << r.render_text();
  EXPECT_EQ(f->severity, util::Severity::Error);
  EXPECT_NE(f->message.find("a -> b -> a"), std::string::npos) << f->message;
}

TEST(LintAcsr, Al012AcceptsCycleWithNonZeroExecution) {
  // cmin of one quantum breaks the instantaneous chase: time must advance.
  const lint::Report r = lint_source(cycle_model("1 ms .. 1 ms"));
  EXPECT_EQ(count_check(r, "AL012"), 0u) << r.render_text();
}

// --- Analyzer integration ---------------------------------------------------

TEST(LintAnalyzer, ConclusiveOverloadSkipsExploration) {
  core::AnalyzerOptions opts;
  opts.translation.quantum_ns = 1'000'000;
  opts.run_lint = true;
  const core::AnalysisResult r =
      core::analyze_source(kOverloadModel, "S.impl", opts);
  EXPECT_TRUE(r.ok) << r.diagnostics;
  EXPECT_TRUE(r.exhaustive);
  EXPECT_FALSE(r.schedulable);
  EXPECT_EQ(r.states, 0u);  // provably skipped exploration
  EXPECT_EQ(r.decided_by, "AL007");
  EXPECT_NE(r.summary().find("decided statically"), std::string::npos);
}

TEST(LintAnalyzer, DisablingLintRestoresFullExploration) {
  core::AnalyzerOptions opts;
  opts.translation.quantum_ns = 1'000'000;
  opts.run_lint = false;
  const core::AnalysisResult r =
      core::analyze_source(kOverloadModel, "S.impl", opts);
  EXPECT_TRUE(r.ok) << r.diagnostics;
  EXPECT_GT(r.states, 0u);
  EXPECT_FALSE(r.schedulable);  // exploration agrees with the static verdict
  EXPECT_TRUE(r.decided_by.empty());
}

TEST(LintAnalyzer, ConclusiveScheduableVerdictAgreesWithExploration) {
  core::AnalyzerOptions opts;
  opts.translation.quantum_ns = 1'000'000;
  opts.run_lint = true;
  const core::AnalysisResult fast =
      core::analyze_source(kEdfExactModel, "S.impl", opts);
  EXPECT_TRUE(fast.ok) << fast.diagnostics;
  EXPECT_TRUE(fast.schedulable);
  EXPECT_EQ(fast.states, 0u);
  EXPECT_EQ(fast.decided_by, "AL009");

  opts.run_lint = false;
  const core::AnalysisResult full =
      core::analyze_source(kEdfExactModel, "S.impl", opts);
  EXPECT_TRUE(full.ok) << full.diagnostics;
  EXPECT_GT(full.states, 0u);
  EXPECT_EQ(full.schedulable, fast.schedulable);
}

TEST(LintAnalyzer, LintGateStopsAnalysisOnHygieneErrors) {
  // Missing mandatory properties trip the fail_on=Error gate before any
  // translation or exploration is attempted.
  const std::string src = two_thread_model(
      "    a_out : out data port;", "    b_in : in data port;", "",
      "    Period => 10 ms;\n");
  core::AnalyzerOptions opts;
  opts.translation.quantum_ns = 1'000'000;
  opts.run_lint = true;
  const core::AnalysisResult r = core::analyze_source(src, "S.impl", opts);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.diagnostics.find("AL004"), std::string::npos) << r.diagnostics;
}

TEST(LintAnalyzer, WarningsDoNotTripTheDefaultGate) {
  // Direction-mismatch warnings (AL002) are below fail_on=Error: analysis
  // proceeds to exploration as usual. Constrained deadlines keep the model
  // outside the screening fragment, so exploration genuinely runs.
  const std::string src = two_thread_model(
      "    a_out : out data port;", "    b_in : in data port;",
      "    c1 : port b.b_in -> a.a_out;",
      "    Dispatch_Protocol => Periodic;\n    Period => 10 ms;\n"
      "    Compute_Execution_Time => 1 ms .. 1 ms;\n    Deadline => 8 ms;\n");
  core::AnalyzerOptions opts;
  opts.translation.quantum_ns = 1'000'000;
  opts.run_lint = true;
  const core::AnalysisResult r = core::analyze_source(src, "S.impl", opts);
  EXPECT_TRUE(r.ok) << r.diagnostics;
  EXPECT_GT(r.states, 0u);
  ASSERT_TRUE(r.lint_report.has_value());
  EXPECT_GT(r.lint_report->warnings(), 0u);
}

// --- cross-validation: conclusive lint verdicts match exploration -----------

namespace {

/// Full-pipeline exploration verdict for a generated task set (mirrors
/// tests/test_cross_validation.cpp).
bool explore_verdict(const sched::TaskSet& ts,
                     sched::SchedulingPolicy policy) {
  const std::string src = core::taskset_to_aadl(ts, policy);
  aadl::Model model;
  util::DiagnosticEngine diags;
  EXPECT_TRUE(aadl::parse_aadl(model, src, diags)) << diags.render_all();
  auto inst = aadl::instantiate(model, "Root.impl", diags);
  EXPECT_NE(inst, nullptr);
  acsr::Context ctx;
  translate::TranslateOptions topts;
  topts.quantum_ns = 1'000'000;
  auto tr = translate::translate(ctx, *inst, diags, topts);
  EXPECT_TRUE(tr.has_value()) << diags.render_all();
  acsr::Semantics sem(ctx);
  const auto er = versa::explore(sem, tr->initial);
  EXPECT_TRUE(er.complete || er.deadlock_found);
  return er.schedulable();
}

}  // namespace

TEST(LintCrossValidation, EdfScreeningVerdictsMatchExploration) {
  // Generated periodic implicit-deadline EDF workloads are always within
  // the exact screening fragment: lint must reach a conclusive verdict and
  // that verdict must agree with full state-space exploration.
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    sched::WorkloadSpec spec;
    spec.task_count = 3;
    spec.total_utilization = 0.9;
    spec.periods = {3, 4, 5, 6, 8};  // small hyperperiods
    const sched::TaskSet ts = sched::generate_workload(spec, seed);

    const std::string src =
        core::taskset_to_aadl(ts, sched::SchedulingPolicy::Edf);
    const lint::Report r = lint_source(src, ms_options(), "Root.impl");
    ASSERT_TRUE(r.translated) << "seed " << seed;
    ASSERT_NE(r.verdict, lint::StaticVerdict::None)
        << "seed " << seed << "\n" << r.render_text();

    const bool lint_schedulable =
        r.verdict == lint::StaticVerdict::Schedulable;
    EXPECT_EQ(lint_schedulable,
              explore_verdict(ts, sched::SchedulingPolicy::Edf))
        << "seed " << seed << " decided by " << r.decided_by;
  }
}
