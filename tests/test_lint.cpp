// aadllint: one positive and one negative fixture per pass (AL001..AL016),
// framework/registry behavior, and the Analyzer integration contract —
// a conclusive screening verdict provably skips exploration (0 states) and
// always agrees with the verdict exploration would have produced. Every
// certificate any fixture emits is replayed by the independent witness
// checker (tests/witness_checker.hpp).
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "acsr/builder.hpp"
#include "acsr/context.hpp"
#include "acsr/semantics.hpp"
#include "aadl/parser.hpp"
#include "core/analyzer.hpp"
#include "core/result_json.hpp"
#include "core/taskset_aadl.hpp"
#include "lint/lint.hpp"
#include "sched/workload.hpp"
#include "translate/translator.hpp"
#include "versa/explorer.hpp"
#include "witness_checker.hpp"

using namespace aadlsched;

namespace {

lint::Options ms_options() {
  lint::Options opts;
  opts.translation.quantum_ns = 1'000'000;  // 1 ms
  return opts;
}

/// Parse + instantiate + lint. Front-end diagnostics are tolerated (some
/// fixtures are deliberately broken); parse/instantiate must still yield an
/// instance tree. Every certificate the report carries must survive the
/// independent witness checker — validated here so all fixtures, positive
/// and negative, exercise it.
lint::Report lint_source(const std::string& src,
                         const lint::Options& opts = ms_options(),
                         const std::string& root = "S.impl") {
  aadl::Model model;
  util::DiagnosticEngine diags;
  EXPECT_TRUE(aadl::parse_aadl(model, src, diags)) << diags.render_all();
  auto inst = aadl::instantiate(model, root, diags);
  EXPECT_NE(inst, nullptr) << diags.render_all();
  if (!inst) return {};
  lint::Report report = lint::run(*inst, opts);
  EXPECT_EQ(witness::check_all(report), "") << report.render_json();
  return report;
}

const lint::StaticCertificate* first_certificate(const lint::Report& r,
                                                 std::string_view check_id) {
  for (const lint::StaticCertificate& c : r.certificates)
    if (c.check_id == check_id) return &c;
  return nullptr;
}

std::size_t count_check(const lint::Report& r, std::string_view id) {
  std::size_t n = 0;
  for (const lint::Finding& f : r.findings)
    if (f.check_id == id) ++n;
  return n;
}

const lint::Finding* first_check(const lint::Report& r, std::string_view id) {
  for (const lint::Finding& f : r.findings)
    if (f.check_id == id) return &f;
  return nullptr;
}

/// A minimal clean system: one periodic thread on a rate-monotonic
/// processor, properly bound. Lints with zero findings above Note level.
std::string base_model(const std::string& extra_properties = {}) {
  return R"(
package P
public
  processor Cpu
  properties
    Scheduling_Protocol => RATE_MONOTONIC_PROTOCOL;
  end Cpu;

  thread T
  end T;

  thread implementation T.impl
  properties
    Dispatch_Protocol => Periodic;
    Period => 10 ms;
    Compute_Execution_Time => 2 ms .. 2 ms;
    Deadline => 10 ms;
  end T.impl;

  system S
  end S;

  system implementation S.impl
  subcomponents
    t : thread T.impl;
    cpu : processor Cpu;
  properties
    Actual_Processor_Binding => reference (cpu) applies to t;
)" + extra_properties + R"(
  end S.impl;
end P;
)";
}

/// Two periodic threads at wcet 3 / period 4 on one RM processor:
/// U = 1.5 > 1, a guaranteed overload (AL007 conclusive NotSchedulable).
constexpr const char* kOverloadModel = R"(
package P
public
  processor Cpu
  properties
    Scheduling_Protocol => RATE_MONOTONIC_PROTOCOL;
  end Cpu;

  thread A
  end A;

  thread implementation A.impl
  properties
    Dispatch_Protocol => Periodic;
    Period => 4 ms;
    Compute_Execution_Time => 3 ms .. 3 ms;
    Deadline => 4 ms;
  end A.impl;

  thread B
  end B;

  thread implementation B.impl
  properties
    Dispatch_Protocol => Periodic;
    Period => 4 ms;
    Compute_Execution_Time => 3 ms .. 3 ms;
    Deadline => 4 ms;
  end B.impl;

  system S
  end S;

  system implementation S.impl
  subcomponents
    a : thread A.impl;
    b : thread B.impl;
    cpu : processor Cpu;
  properties
    Actual_Processor_Binding => reference (cpu) applies to a;
    Actual_Processor_Binding => reference (cpu) applies to b;
  end S.impl;
end P;
)";

/// Two periodic threads at wcet 5 / period 10 under EDF: U = 1.0 exactly,
/// schedulable, and the EDF utilization test is exact (AL009 vouches).
constexpr const char* kEdfExactModel = R"(
package P
public
  processor Cpu
  properties
    Scheduling_Protocol => EDF_PROTOCOL;
  end Cpu;

  thread A
  end A;

  thread implementation A.impl
  properties
    Dispatch_Protocol => Periodic;
    Period => 10 ms;
    Compute_Execution_Time => 5 ms .. 5 ms;
    Deadline => 10 ms;
  end A.impl;

  thread B
  end B;

  thread implementation B.impl
  properties
    Dispatch_Protocol => Periodic;
    Period => 10 ms;
    Compute_Execution_Time => 5 ms .. 5 ms;
    Deadline => 10 ms;
  end B.impl;

  system S
  end S;

  system implementation S.impl
  subcomponents
    a : thread A.impl;
    b : thread B.impl;
    cpu : processor Cpu;
  properties
    Actual_Processor_Binding => reference (cpu) applies to a;
    Actual_Processor_Binding => reference (cpu) applies to b;
  end S.impl;
end P;
)";

/// Two-thread model with connectable data ports; `connections` and thread
/// property overrides are injected by the caller.
std::string two_thread_model(const std::string& a_features,
                             const std::string& b_features,
                             const std::string& connections,
                             const std::string& a_props =
                                 "    Dispatch_Protocol => Periodic;\n"
                                 "    Period => 10 ms;\n"
                                 "    Compute_Execution_Time => 1 ms .. 1 "
                                 "ms;\n    Deadline => 10 ms;\n",
                             const std::string& b_props =
                                 "    Dispatch_Protocol => Periodic;\n"
                                 "    Period => 10 ms;\n"
                                 "    Compute_Execution_Time => 1 ms .. 1 "
                                 "ms;\n    Deadline => 10 ms;\n",
                             const std::string& extra_properties = {},
                             const std::string& protocol =
                                 "RATE_MONOTONIC_PROTOCOL") {
  const std::string connections_section =
      connections.empty() ? std::string()
                          : "  connections\n" + connections + "\n";
  return R"(
package P
public
  processor Cpu
  properties
    Scheduling_Protocol => )" + protocol + R"(;
  end Cpu;

  thread A
  features
)" + a_features + R"(
  end A;

  thread implementation A.impl
  properties
)" + a_props + R"(
  end A.impl;

  thread B
  features
)" + b_features + R"(
  end B;

  thread implementation B.impl
  properties
)" + b_props + R"(
  end B.impl;

  system S
  end S;

  system implementation S.impl
  subcomponents
    a : thread A.impl;
    b : thread B.impl;
    cpu : processor Cpu;
)" + connections_section + R"(  properties
    Actual_Processor_Binding => reference (cpu) applies to a;
    Actual_Processor_Binding => reference (cpu) applies to b;
)" + extra_properties + R"(
  end S.impl;
end P;
)";
}

}  // namespace

// --- framework / registry -------------------------------------------------

TEST(LintRegistry, BuiltinHasAllPassesWithUniqueStableIds) {
  const lint::Registry& reg = lint::Registry::builtin();
  EXPECT_GE(reg.passes().size(), 16u);
  std::set<std::string_view> ids, names;
  for (const auto& p : reg.passes()) {
    EXPECT_TRUE(ids.insert(p->info().id).second)
        << "duplicate check id " << p->info().id;
    EXPECT_TRUE(names.insert(p->info().name).second);
    EXPECT_FALSE(p->info().contract.empty());
  }
  for (const char* id : {"AL001", "AL002", "AL003", "AL004", "AL005",
                         "AL006", "AL007", "AL008", "AL009", "AL010",
                         "AL011", "AL012", "AL013", "AL014", "AL015",
                         "AL016"})
    EXPECT_TRUE(ids.count(id)) << "missing check " << id;
}

TEST(LintRegistry, ConclusivePassesDocumentTheirContract) {
  const lint::Registry& reg = lint::Registry::builtin();
  // The passes able to decide a verdict must state their soundness
  // argument (surfaced by `aadlsched --explain AL0NN`).
  for (const char* id : {"AL005", "AL007", "AL008", "AL009", "AL013",
                         "AL014", "AL015"}) {
    const lint::Pass* p = reg.find(id);
    ASSERT_NE(p, nullptr) << id;
    EXPECT_FALSE(p->info().rationale.empty()) << id;
    EXPECT_NE(p->info().contract, "advisory") << id;
  }
  EXPECT_EQ(reg.find("AL016")->info().contract, "advisory");
}

TEST(LintRegistry, FindsByIdAndByName) {
  const lint::Registry& reg = lint::Registry::builtin();
  const lint::Pass* by_id = reg.find("AL007");
  ASSERT_NE(by_id, nullptr);
  EXPECT_EQ(reg.find("utilization-overload"), by_id);
  EXPECT_EQ(by_id->info().tier, lint::Tier::Screening);
  EXPECT_EQ(reg.find("AL001")->info().tier, lint::Tier::ModelHygiene);
  EXPECT_EQ(reg.find("AL010")->info().tier, lint::Tier::AcsrWellFormedness);
  EXPECT_EQ(reg.find("AL999"), nullptr);
}

TEST(LintFramework, CleanModelHasNoFindingsAboveNote) {
  const lint::Report r = lint_source(base_model());
  EXPECT_EQ(r.errors(), 0u) << r.render_text();
  EXPECT_EQ(r.warnings(), 0u) << r.render_text();
  EXPECT_TRUE(r.translated);
}

TEST(LintFramework, DisabledChecksDoNotRun) {
  lint::Options opts = ms_options();
  // The exact passes can also refute this model, so silence every check
  // capable of deciding it to observe that disabling really skips them.
  opts.disabled = {"AL007", "AL013", "AL014"};
  const lint::Report r = lint_source(kOverloadModel, opts);
  EXPECT_EQ(count_check(r, "AL007"), 0u);
  EXPECT_EQ(count_check(r, "AL013"), 0u);
  EXPECT_EQ(r.verdict, lint::StaticVerdict::None);
}

TEST(LintFramework, RenderTextShowsCheckIdsAndVerdict) {
  const lint::Report r = lint_source(kOverloadModel);
  const std::string text = r.render_text();
  EXPECT_NE(text.find("[AL007 utilization-overload]"), std::string::npos)
      << text;
  EXPECT_NE(text.find("static verdict: not_schedulable"), std::string::npos)
      << text;
}

TEST(LintFramework, RenderJsonCarriesVerdictAndFindings) {
  const lint::Report r = lint_source(kOverloadModel);
  const std::string json = r.render_json();
  EXPECT_NE(json.find("\"verdict\": \"not_schedulable\""), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"decided_by\": \"AL007\""), std::string::npos);
  EXPECT_NE(json.find("\"check\": \"AL007\""), std::string::npos);
  EXPECT_NE(json.find("\"translated\": true"), std::string::npos);
}

TEST(LintFramework, RenderJsonPinsSchemaAndCatalogueVersions) {
  // The JSON shape is versioned for downstream tooling: schema_version
  // pins the field layout (bump on rename/removal only), lint_pass_version
  // identifies the pass catalogue (also folded into the daemon cache key).
  const std::string json = lint_source(base_model()).render_json();
  EXPECT_EQ(json.find("{\n  \"schema_version\": 1,\n"
                      "  \"lint_pass_version\": 2,"),
            0u)
      << json;
  EXPECT_EQ(lint::kLintSchemaVersion, 1);
  EXPECT_EQ(lint::kLintPassVersion, 2);
}

TEST(LintFramework, RenderJsonCarriesCertificates) {
  const std::string json = lint_source(kOverloadModel).render_json();
  EXPECT_NE(json.find("\"certificates\": ["), std::string::npos) << json;
  EXPECT_NE(json.find("\"kind\": \"utilization-overload\""),
            std::string::npos)
      << json;
}

// --- AL001 unbound-thread ---------------------------------------------------

TEST(LintModel, Al001FlagsUnboundThread) {
  // base_model without the binding property line.
  const std::string src = R"(
package P
public
  processor Cpu
  properties
    Scheduling_Protocol => RATE_MONOTONIC_PROTOCOL;
  end Cpu;
  thread T
  end T;
  thread implementation T.impl
  properties
    Dispatch_Protocol => Periodic;
    Period => 10 ms;
    Compute_Execution_Time => 2 ms .. 2 ms;
    Deadline => 10 ms;
  end T.impl;
  system S
  end S;
  system implementation S.impl
  subcomponents
    t : thread T.impl;
    cpu : processor Cpu;
  end S.impl;
end P;
)";
  const lint::Report r = lint_source(src);
  const lint::Finding* f = first_check(r, "AL001");
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->severity, util::Severity::Error);
  EXPECT_EQ(f->component, "t");
}

TEST(LintModel, Al001AcceptsBoundThread) {
  EXPECT_EQ(count_check(lint_source(base_model()), "AL001"), 0u);
}

// --- AL002 unresolved-endpoint ---------------------------------------------

TEST(LintModel, Al002FlagsMissingFeature) {
  const std::string src = two_thread_model(
      "    a_out : out data port;", "    b_in : in data port;",
      "    c1 : port a.nosuch -> b.b_in;");
  const lint::Report r = lint_source(src);
  const lint::Finding* f = first_check(r, "AL002");
  ASSERT_NE(f, nullptr) << r.render_text();
  EXPECT_EQ(f->severity, util::Severity::Error);
  EXPECT_NE(f->message.find("no feature 'nosuch'"), std::string::npos);
}

TEST(LintModel, Al002FlagsDirectionMismatch) {
  // An in port as source and an out port as destination: two warnings.
  const std::string src = two_thread_model(
      "    a_out : out data port;", "    b_in : in data port;",
      "    c1 : port b.b_in -> a.a_out;");
  const lint::Report r = lint_source(src);
  EXPECT_EQ(count_check(r, "AL002"), 2u) << r.render_text();
  EXPECT_EQ(first_check(r, "AL002")->severity, util::Severity::Warning);
}

TEST(LintModel, Al002AcceptsResolvedConnection) {
  const std::string src = two_thread_model(
      "    a_out : out data port;", "    b_in : in data port;",
      "    c1 : port a.a_out -> b.b_in;");
  EXPECT_EQ(count_check(lint_source(src), "AL002"), 0u);
}

// --- AL003 dead-end-connection ---------------------------------------------

TEST(LintModel, Al003FlagsChainThatNeverReachesAThread) {
  // The thread's out port feeds the enclosing system's boundary port with
  // no continuation beyond it: instantiation silently drops the chain.
  const std::string src = R"(
package P
public
  processor Cpu
  properties
    Scheduling_Protocol => RATE_MONOTONIC_PROTOCOL;
  end Cpu;
  thread A
  features
    a_out : out data port;
  end A;
  thread implementation A.impl
  properties
    Dispatch_Protocol => Periodic;
    Period => 10 ms;
    Compute_Execution_Time => 1 ms .. 1 ms;
    Deadline => 10 ms;
  end A.impl;
  system S
  features
    sys_out : out data port;
  end S;
  system implementation S.impl
  subcomponents
    a : thread A.impl;
    cpu : processor Cpu;
  connections
    c1 : port a.a_out -> sys_out;
  properties
    Actual_Processor_Binding => reference (cpu) applies to a;
  end S.impl;
end P;
)";
  const lint::Report r = lint_source(src);
  const lint::Finding* f = first_check(r, "AL003");
  ASSERT_NE(f, nullptr) << r.render_text();
  EXPECT_EQ(f->severity, util::Severity::Warning);
  EXPECT_EQ(f->component, "a.a_out");
}

TEST(LintModel, Al003AcceptsThreadToThreadConnection) {
  const std::string src = two_thread_model(
      "    a_out : out data port;", "    b_in : in data port;",
      "    c1 : port a.a_out -> b.b_in;");
  EXPECT_EQ(count_check(lint_source(src), "AL003"), 0u);
}

// --- AL004 missing-property -------------------------------------------------

TEST(LintModel, Al004FlagsMissingMandatoryProperties) {
  // Thread with neither Dispatch_Protocol nor Compute_Execution_Time, on a
  // processor without Scheduling_Protocol: three distinct errors.
  const std::string src = R"(
package P
public
  processor Cpu
  end Cpu;
  thread T
  end T;
  thread implementation T.impl
  properties
    Period => 10 ms;
  end T.impl;
  system S
  end S;
  system implementation S.impl
  subcomponents
    t : thread T.impl;
    cpu : processor Cpu;
  properties
    Actual_Processor_Binding => reference (cpu) applies to t;
  end S.impl;
end P;
)";
  const lint::Report r = lint_source(src);
  EXPECT_EQ(count_check(r, "AL004"), 3u) << r.render_text();
  EXPECT_FALSE(r.translated);  // translation rejects the same model
}

TEST(LintModel, Al004AcceptsFullyAnnotatedModel) {
  EXPECT_EQ(count_check(lint_source(base_model()), "AL004"), 0u);
}

// --- AL005 inconsistent-timing ----------------------------------------------

TEST(LintModel, Al005FlagsDeadlineBeyondPeriod) {
  const std::string src = two_thread_model(
      "    a_out : out data port;", "    b_in : in data port;", "",
      "    Dispatch_Protocol => Periodic;\n    Period => 5 ms;\n"
      "    Compute_Execution_Time => 1 ms .. 1 ms;\n    Deadline => 10 ms;\n");
  const lint::Report r = lint_source(src);
  const lint::Finding* f = first_check(r, "AL005");
  ASSERT_NE(f, nullptr) << r.render_text();
  EXPECT_EQ(f->severity, util::Severity::Error);
  EXPECT_NE(f->message.find("Deadline exceeds Period"), std::string::npos);
}

TEST(LintModel, Al005WcetBeyondDeadlineIsConclusivelyNotSchedulable) {
  // cmax 5 quanta > deadline 3 quanta: the thread cannot meet its deadline
  // even alone, a guaranteed counterexample.
  const std::string src = two_thread_model(
      "    a_out : out data port;", "    b_in : in data port;", "",
      "    Dispatch_Protocol => Periodic;\n    Period => 10 ms;\n"
      "    Compute_Execution_Time => 5 ms .. 5 ms;\n    Deadline => 3 ms;\n");
  const lint::Report r = lint_source(src);
  ASSERT_NE(first_check(r, "AL005"), nullptr) << r.render_text();
  EXPECT_EQ(r.verdict, lint::StaticVerdict::NotSchedulable);
  EXPECT_EQ(r.decided_by, "AL005");
}

TEST(LintModel, Al005AcceptsConsistentTiming) {
  EXPECT_EQ(count_check(lint_source(base_model()), "AL005"), 0u);
}

// --- AL006 queue-misconfig --------------------------------------------------

TEST(LintModel, Al006FlagsQueuePropertiesOnDataConnection) {
  const std::string src = two_thread_model(
      "    a_out : out data port;", "    b_in : in data port;",
      "    c1 : port a.a_out -> b.b_in;",
      "    Dispatch_Protocol => Periodic;\n    Period => 10 ms;\n"
      "    Compute_Execution_Time => 1 ms .. 1 ms;\n    Deadline => 10 ms;\n",
      "    Dispatch_Protocol => Periodic;\n    Period => 10 ms;\n"
      "    Compute_Execution_Time => 1 ms .. 1 ms;\n    Deadline => 10 ms;\n",
      "    Queue_Size => 4 applies to c1;\n");
  const lint::Report r = lint_source(src);
  const lint::Finding* f = first_check(r, "AL006");
  ASSERT_NE(f, nullptr) << r.render_text();
  EXPECT_EQ(f->severity, util::Severity::Warning);
  EXPECT_NE(f->message.find("data port"), std::string::npos);
}

TEST(LintModel, Al006FlagsOutOfRangeQueueSize) {
  const std::string src = two_thread_model(
      "    a_out : out event port;", "    b_in : in event port;",
      "    c1 : port a.a_out -> b.b_in;",
      "    Dispatch_Protocol => Periodic;\n    Period => 10 ms;\n"
      "    Compute_Execution_Time => 1 ms .. 1 ms;\n    Deadline => 10 ms;\n",
      "    Dispatch_Protocol => Sporadic;\n    Period => 10 ms;\n"
      "    Compute_Execution_Time => 1 ms .. 1 ms;\n    Deadline => 10 ms;\n",
      "    Queue_Size => 0 applies to c1;\n");
  const lint::Report r = lint_source(src);
  const lint::Finding* f = first_check(r, "AL006");
  ASSERT_NE(f, nullptr) << r.render_text();
  EXPECT_EQ(f->severity, util::Severity::Error);
  EXPECT_NE(f->message.find("out of range"), std::string::npos);
}

TEST(LintModel, Al006AcceptsValidQueueOnSporadicDestination) {
  const std::string src = two_thread_model(
      "    a_out : out event port;", "    b_in : in event port;",
      "    c1 : port a.a_out -> b.b_in;",
      "    Dispatch_Protocol => Periodic;\n    Period => 10 ms;\n"
      "    Compute_Execution_Time => 1 ms .. 1 ms;\n    Deadline => 10 ms;\n",
      "    Dispatch_Protocol => Sporadic;\n    Period => 10 ms;\n"
      "    Compute_Execution_Time => 1 ms .. 1 ms;\n    Deadline => 10 ms;\n",
      "    Queue_Size => 2 applies to c1;\n");
  EXPECT_EQ(count_check(lint_source(src), "AL006"), 0u);
}

// --- AL007 utilization-overload ---------------------------------------------

TEST(LintScreen, Al007OverloadIsConclusivelyNotSchedulable) {
  const lint::Report r = lint_source(kOverloadModel);
  const lint::Finding* f = first_check(r, "AL007");
  ASSERT_NE(f, nullptr) << r.render_text();
  EXPECT_EQ(f->severity, util::Severity::Error);
  EXPECT_EQ(f->component, "cpu");
  EXPECT_EQ(r.verdict, lint::StaticVerdict::NotSchedulable);
  EXPECT_EQ(r.decided_by, "AL007");
  EXPECT_TRUE(r.translated);
}

TEST(LintScreen, Al007SporadicOverloadIsOnlyAWarning) {
  // Periodic load alone fits; adding the sporadic thread at its maximum
  // rate exceeds 1 — advisory only, never a conclusive verdict.
  const std::string src = two_thread_model(
      "    a_out : out event port;", "    b_in : in event port;",
      "    c1 : port a.a_out -> b.b_in;",
      "    Dispatch_Protocol => Periodic;\n    Period => 4 ms;\n"
      "    Compute_Execution_Time => 3 ms .. 3 ms;\n    Deadline => 4 ms;\n",
      "    Dispatch_Protocol => Sporadic;\n    Period => 4 ms;\n"
      "    Compute_Execution_Time => 2 ms .. 2 ms;\n    Deadline => 4 ms;\n");
  const lint::Report r = lint_source(src);
  const lint::Finding* f = first_check(r, "AL007");
  ASSERT_NE(f, nullptr) << r.render_text();
  EXPECT_EQ(f->severity, util::Severity::Warning);
  EXPECT_NE(r.verdict, lint::StaticVerdict::NotSchedulable);
}

TEST(LintScreen, Al007AcceptsFeasibleLoad) {
  EXPECT_EQ(count_check(lint_source(base_model()), "AL007"), 0u);
}

// --- AL008 rm-utilization-bound ---------------------------------------------

TEST(LintScreen, Al008VouchesForLowUtilizationRmProcessor) {
  const lint::Report r = lint_source(base_model());
  ASSERT_NE(first_check(r, "AL008"), nullptr) << r.render_text();
  // AL013's exact RTA vouches for the same processor; the first verdict
  // per processor (registration order) decides.
  ASSERT_GE(r.processor_verdicts.size(), 1u);
  EXPECT_EQ(r.processor_verdicts[0].check_id, "AL008");
  EXPECT_TRUE(r.processor_verdicts[0].schedulable);
  EXPECT_EQ(r.verdict, lint::StaticVerdict::Schedulable);
  EXPECT_EQ(r.decided_by, "AL008");
}

TEST(LintScreen, Al008AbstainsWhenHyperbolicBoundFails) {
  // U = 4/9 + 4/10 = 0.844 but (13/9)(14/10) = 2.022 > 2: the sufficient
  // bound does not apply and AL008 stays silent. The exact RTA (AL013)
  // picks the model up instead — this is precisely the gap it closes.
  const std::string src = two_thread_model(
      "    a_out : out data port;", "    b_in : in data port;", "",
      "    Dispatch_Protocol => Periodic;\n    Period => 9 ms;\n"
      "    Compute_Execution_Time => 4 ms .. 4 ms;\n    Deadline => 9 ms;\n",
      "    Dispatch_Protocol => Periodic;\n    Period => 10 ms;\n"
      "    Compute_Execution_Time => 4 ms .. 4 ms;\n    Deadline => 10 ms;\n");
  const lint::Report r = lint_source(src);
  EXPECT_EQ(count_check(r, "AL008"), 0u) << r.render_text();
  EXPECT_EQ(r.verdict, lint::StaticVerdict::Schedulable);
  EXPECT_EQ(r.decided_by, "AL013");
}

TEST(LintScreen, Al008AbstainsOnImpureModel) {
  // An event connection makes the classical abstraction inexact: no vouch
  // even though the utilization is low.
  const std::string src = two_thread_model(
      "    a_out : out event port;", "    b_in : in event port;",
      "    c1 : port a.a_out -> b.b_in;",
      "    Dispatch_Protocol => Periodic;\n    Period => 10 ms;\n"
      "    Compute_Execution_Time => 1 ms .. 1 ms;\n    Deadline => 10 ms;\n",
      "    Dispatch_Protocol => Sporadic;\n    Period => 10 ms;\n"
      "    Compute_Execution_Time => 1 ms .. 1 ms;\n    Deadline => 10 ms;\n");
  const lint::Report r = lint_source(src);
  EXPECT_EQ(count_check(r, "AL008"), 0u) << r.render_text();
  EXPECT_EQ(r.verdict, lint::StaticVerdict::None);
}

// --- AL009 edf-utilization --------------------------------------------------

TEST(LintScreen, Al009VouchesForEdfAtExactlyFullUtilization) {
  const lint::Report r = lint_source(kEdfExactModel);
  ASSERT_NE(first_check(r, "AL009"), nullptr) << r.render_text();
  EXPECT_EQ(r.verdict, lint::StaticVerdict::Schedulable);
  EXPECT_EQ(r.decided_by, "AL009");
}

TEST(LintScreen, Al009AbstainsOnConstrainedDeadlines) {
  // Deadline < period: U <= 1 is no longer sufficient, so AL009 stays
  // silent. QPA (AL014) covers the constrained fragment exactly.
  const std::string src = two_thread_model(
      "    a_out : out data port;", "    b_in : in data port;", "",
      "    Dispatch_Protocol => Periodic;\n    Period => 10 ms;\n"
      "    Compute_Execution_Time => 2 ms .. 2 ms;\n    Deadline => 8 ms;\n",
      "    Dispatch_Protocol => Periodic;\n    Period => 10 ms;\n"
      "    Compute_Execution_Time => 2 ms .. 2 ms;\n    Deadline => 10 ms;\n",
      "    Scheduling_Protocol => EDF_PROTOCOL applies to cpu;\n");
  const lint::Report r = lint_source(src);
  EXPECT_EQ(count_check(r, "AL009"), 0u) << r.render_text();
  EXPECT_EQ(r.verdict, lint::StaticVerdict::Schedulable);
  EXPECT_EQ(r.decided_by, "AL014");
}

// --- AL013 exact-rta ---------------------------------------------------------

namespace {

/// Constrained-deadline RM model the exact RTA refutes: 'b' needs
/// 3 + ceil(t/4)*2 quanta of level demand inside its 4-quantum deadline
/// window, which never fits (U = 0.83, so AL007 cannot see it).
constexpr const char* kRtaMissModel = R"(
package P
public
  processor Cpu
  properties
    Scheduling_Protocol => RATE_MONOTONIC_PROTOCOL;
  end Cpu;
  thread A
  end A;
  thread implementation A.impl
  properties
    Dispatch_Protocol => Periodic;
    Period => 4 ms;
    Compute_Execution_Time => 2 ms .. 2 ms;
    Deadline => 4 ms;
  end A.impl;
  thread B
  end B;
  thread implementation B.impl
  properties
    Dispatch_Protocol => Periodic;
    Period => 9 ms;
    Compute_Execution_Time => 3 ms .. 3 ms;
    Deadline => 4 ms;
  end B.impl;
  system S
  end S;
  system implementation S.impl
  subcomponents
    a : thread A.impl;
    b : thread B.impl;
    cpu : processor Cpu;
  properties
    Actual_Processor_Binding => reference (cpu) applies to a;
    Actual_Processor_Binding => reference (cpu) applies to b;
  end S.impl;
end P;
)";

}  // namespace

TEST(LintExact, Al013VouchesWithResponseBoundCertificate) {
  // The AL008-gap model: hyperbolic bound fails at U = 0.844 but the exact
  // RTA proves schedulability outright.
  const std::string src = two_thread_model(
      "    a_out : out data port;", "    b_in : in data port;", "",
      "    Dispatch_Protocol => Periodic;\n    Period => 9 ms;\n"
      "    Compute_Execution_Time => 4 ms .. 4 ms;\n    Deadline => 9 ms;\n",
      "    Dispatch_Protocol => Periodic;\n    Period => 10 ms;\n"
      "    Compute_Execution_Time => 4 ms .. 4 ms;\n    Deadline => 10 ms;\n");
  const lint::Report r = lint_source(src);
  EXPECT_EQ(r.verdict, lint::StaticVerdict::Schedulable);
  EXPECT_EQ(r.decided_by, "AL013");
  const lint::StaticCertificate* cert = first_certificate(r, "AL013");
  ASSERT_NE(cert, nullptr) << r.render_json();
  EXPECT_EQ(cert->kind, "fp-response-bound");
  ASSERT_EQ(cert->tasks.size(), 2u);
  for (const lint::CertTask& row : cert->tasks) {
    EXPECT_GE(row.response_q, row.wcet_q);
    EXPECT_LE(row.response_q, row.deadline_q);
  }
}

TEST(LintExact, Al013RefutesWithOverloadWitness) {
  const lint::Report r = lint_source(kRtaMissModel);
  EXPECT_EQ(r.verdict, lint::StaticVerdict::NotSchedulable);
  EXPECT_EQ(r.decided_by, "AL013");
  const lint::StaticCertificate* cert = first_certificate(r, "AL013");
  ASSERT_NE(cert, nullptr) << r.render_json();
  EXPECT_EQ(cert->kind, "fp-overload-witness");
  EXPECT_FALSE(cert->schedulable);
  EXPECT_EQ(cert->window_q, 4);
  EXPECT_EQ(cert->demand_q, 5);
  EXPECT_EQ(cert->tasks[0].path, "b");  // witness row first
}

TEST(LintExact, Al013AbstainsFromRefutingUnderPriorityTies) {
  // RM/DM ranking always assigns distinct priorities (stable tie-break by
  // declaration order), so genuine ties only arise under HPF with equal
  // declared Priority values. There the tie-pessimistic vouch fails
  // (R = 10 > D = 8) and the refutation leg is unsound — exploration may
  // resolve the tie either way — so the pass must leave the verdict open.
  const std::string props =
      "    Dispatch_Protocol => Periodic;\n    Period => 10 ms;\n"
      "    Compute_Execution_Time => 5 ms .. 5 ms;\n    Deadline => 8 ms;\n"
      "    Priority => 5;\n";
  const std::string src =
      two_thread_model("", "", "", props, props, {}, "HIGHEST_PRIORITY_FIRST");
  const lint::Report r = lint_source(src);
  EXPECT_EQ(r.verdict, lint::StaticVerdict::None) << r.render_text();
  EXPECT_TRUE(r.certificates.empty());
}

TEST(LintExact, Al013AgreementWithExplorationBothWays) {
  core::AnalyzerOptions with_lint, without_lint;
  with_lint.translation.quantum_ns = 1'000'000;
  with_lint.run_lint = true;
  without_lint.translation.quantum_ns = 1'000'000;
  without_lint.run_lint = false;

  // Refuted model: exploration finds the same miss.
  const core::AnalysisResult fast =
      core::analyze_source(kRtaMissModel, "S.impl", with_lint);
  EXPECT_TRUE(fast.ok) << fast.diagnostics;
  EXPECT_EQ(fast.states, 0u);
  EXPECT_EQ(fast.decided_by, "AL013");
  EXPECT_FALSE(fast.schedulable);
  const core::AnalysisResult full =
      core::analyze_source(kRtaMissModel, "S.impl", without_lint);
  EXPECT_TRUE(full.ok) << full.diagnostics;
  EXPECT_GT(full.states, 0u);
  EXPECT_EQ(full.schedulable, fast.schedulable);
}

// --- AL014 edf-qpa -----------------------------------------------------------

namespace {

/// EDF with constrained deadlines and a certain overflow: dbf(4) = 5 > 4
/// (both jobs due by t=4 need 5 quanta), while U = 0.5 keeps AL007 silent.
constexpr const char* kEdfOverflowModel = R"(
package P
public
  processor Cpu
  properties
    Scheduling_Protocol => EDF_PROTOCOL;
  end Cpu;
  thread A
  end A;
  thread implementation A.impl
  properties
    Dispatch_Protocol => Periodic;
    Period => 10 ms;
    Compute_Execution_Time => 3 ms .. 3 ms;
    Deadline => 3 ms;
  end A.impl;
  thread B
  end B;
  thread implementation B.impl
  properties
    Dispatch_Protocol => Periodic;
    Period => 10 ms;
    Compute_Execution_Time => 2 ms .. 2 ms;
    Deadline => 4 ms;
  end B.impl;
  system S
  end S;
  system implementation S.impl
  subcomponents
    a : thread A.impl;
    b : thread B.impl;
    cpu : processor Cpu;
  properties
    Actual_Processor_Binding => reference (cpu) applies to a;
    Actual_Processor_Binding => reference (cpu) applies to b;
  end S.impl;
end P;
)";

}  // namespace

TEST(LintExact, Al014VouchesConstrainedEdfWithDemandCertificate) {
  // The Al009-abstain model (deadline < period, U = 0.4): QPA decides it.
  const std::string src = two_thread_model(
      "    a_out : out data port;", "    b_in : in data port;", "",
      "    Dispatch_Protocol => Periodic;\n    Period => 10 ms;\n"
      "    Compute_Execution_Time => 2 ms .. 2 ms;\n    Deadline => 8 ms;\n",
      "    Dispatch_Protocol => Periodic;\n    Period => 10 ms;\n"
      "    Compute_Execution_Time => 2 ms .. 2 ms;\n    Deadline => 10 ms;\n",
      "    Scheduling_Protocol => EDF_PROTOCOL applies to cpu;\n");
  const lint::Report r = lint_source(src);
  EXPECT_EQ(r.verdict, lint::StaticVerdict::Schedulable);
  EXPECT_EQ(r.decided_by, "AL014");
  const lint::StaticCertificate* cert = first_certificate(r, "AL014");
  ASSERT_NE(cert, nullptr) << r.render_json();
  EXPECT_EQ(cert->kind, "edf-demand");
  EXPECT_GT(cert->window_q, 0);
}

TEST(LintExact, Al014RefutesWithOverflowWitness) {
  const lint::Report r = lint_source(kEdfOverflowModel);
  EXPECT_EQ(r.verdict, lint::StaticVerdict::NotSchedulable);
  EXPECT_EQ(r.decided_by, "AL014");
  const lint::StaticCertificate* cert = first_certificate(r, "AL014");
  ASSERT_NE(cert, nullptr) << r.render_json();
  EXPECT_EQ(cert->kind, "edf-overflow-witness");
  EXPECT_EQ(cert->window_q, 4);
  EXPECT_EQ(cert->demand_q, 5);
}

TEST(LintExact, Al014AgreementWithExplorationOnRefutedModel) {
  core::AnalyzerOptions opts;
  opts.translation.quantum_ns = 1'000'000;
  opts.run_lint = false;
  const core::AnalysisResult full =
      core::analyze_source(kEdfOverflowModel, "S.impl", opts);
  EXPECT_TRUE(full.ok) << full.diagnostics;
  EXPECT_GT(full.states, 0u);
  EXPECT_FALSE(full.schedulable);  // exploration confirms the overflow
}

// --- AL015 blocking-rta / AL016 shared-access-hazard -------------------------

namespace {

/// Two fixed-priority tasks sharing one PCP resource with bounded critical
/// sections, rendered through the same bridge the experiments use.
std::string shared_pcp_source() {
  sched::TaskSet ts;
  sched::Task hi;
  hi.name = "hi";
  hi.wcet = 1;
  hi.period = 5;
  hi.deadline = 5;
  hi.priority = 10;
  sched::Task lo;
  lo.name = "lo";
  lo.wcet = 2;
  lo.period = 10;
  lo.deadline = 10;
  lo.priority = 5;
  ts.tasks = {hi, lo};
  sched::ResourceModel rm;
  rm.resources = {{"shared", sched::LockProtocol::PriorityCeiling}};
  rm.sections = {{0, 0, 1}, {1, 0, 1}};
  return core::taskset_to_aadl_shared(
      ts, sched::SchedulingPolicy::FixedPriority, rm);
}

}  // namespace

TEST(LintExact, Al015VouchesWithBlockingAwareCertificate) {
  const lint::Report r =
      lint_source(shared_pcp_source(), ms_options(), "Root.impl");
  EXPECT_EQ(r.verdict, lint::StaticVerdict::Schedulable) << r.render_text();
  bool al015_vouched = false;
  for (const auto& pv : r.processor_verdicts)
    al015_vouched |= pv.check_id == "AL015" && pv.schedulable;
  EXPECT_TRUE(al015_vouched) << r.render_json();
  const lint::StaticCertificate* cert = first_certificate(r, "AL015");
  ASSERT_NE(cert, nullptr) << r.render_json();
  EXPECT_EQ(cert->kind, "fp-response-bound");
  // The high-priority task carries the blocking term (one lower-priority
  // section on a ceiling-reaching resource).
  bool blocked = false;
  for (const lint::CertTask& row : cert->tasks)
    blocked |= row.blocking_q > 0;
  EXPECT_TRUE(blocked) << r.render_json();
  EXPECT_EQ(count_check(r, "AL016"), 0u) << r.render_text();
}

TEST(LintExact, Al015AgreementWithExplorationOnSharedModel) {
  // Exploration walks the lock-free model; the blocking-aware vouch is a
  // strictly stronger claim, so the verdicts must coincide.
  core::AnalyzerOptions opts;
  opts.translation.quantum_ns = 1'000'000;
  opts.run_lint = false;
  const core::AnalysisResult full =
      core::analyze_source(shared_pcp_source(), "Root.impl", opts);
  EXPECT_TRUE(full.ok) << full.diagnostics;
  EXPECT_GT(full.states, 0u);
  EXPECT_TRUE(full.schedulable);
}

TEST(LintExact, Al016FlagsUnprotectedAndCrossProcessorSharing) {
  const std::string src = R"(
package P
public
  processor Cpu
  properties
    Scheduling_Protocol => RATE_MONOTONIC_PROTOCOL;
  end Cpu;
  data Shared
  end Shared;
  thread A
  features
    r : requires data access Shared;
  end A;
  thread implementation A.impl
  properties
    Dispatch_Protocol => Periodic;
    Period => 10 ms;
    Compute_Execution_Time => 1 ms .. 1 ms;
    Deadline => 10 ms;
  end A.impl;
  thread B
  features
    r : requires data access Shared;
  end B;
  thread implementation B.impl
  properties
    Dispatch_Protocol => Periodic;
    Period => 10 ms;
    Compute_Execution_Time => 1 ms .. 1 ms;
    Deadline => 10 ms;
  end B.impl;
  system S
  end S;
  system implementation S.impl
  subcomponents
    a : thread A.impl;
    b : thread B.impl;
    d : data Shared;
    cpu : processor Cpu;
    cpu2 : processor Cpu;
  connections
    ca : data access a.r -> d;
    cb : data access b.r -> d;
  properties
    Actual_Processor_Binding => reference (cpu) applies to a;
    Actual_Processor_Binding => reference (cpu2) applies to b;
  end S.impl;
end P;
)";
  const lint::Report r = lint_source(src);
  ASSERT_GE(count_check(r, "AL016"), 2u) << r.render_text();
  bool unprotected = false, cross = false;
  for (const lint::Finding& f : r.findings) {
    if (f.check_id != "AL016") continue;
    EXPECT_EQ(f.severity, util::Severity::Warning);
    unprotected |=
        f.message.find("without a concurrency-control protocol") !=
        std::string::npos;
    cross |= f.message.find("shared across") != std::string::npos;
  }
  EXPECT_TRUE(unprotected);
  EXPECT_TRUE(cross);
}

TEST(LintExact, Al016FlagsMissingSectionBoundButWarningsDoNotBlockVerdict) {
  // PCP resource with no Critical_Section_Time: AL015 abstains and AL016
  // warns, but warnings deliberately do not block the per-processor vouch
  // promotion (only errors do) — the verdict machinery ignores locking.
  const std::string src = R"(
package P
public
  processor Cpu
  properties
    Scheduling_Protocol => RATE_MONOTONIC_PROTOCOL;
  end Cpu;
  data Shared
  properties
    Concurrency_Control_Protocol => PRIORITY_CEILING_PROTOCOL;
  end Shared;
  thread A
  features
    r : requires data access Shared;
  end A;
  thread implementation A.impl
  properties
    Dispatch_Protocol => Periodic;
    Period => 10 ms;
    Compute_Execution_Time => 1 ms .. 1 ms;
    Deadline => 10 ms;
  end A.impl;
  thread B
  features
    r : requires data access Shared;
  end B;
  thread implementation B.impl
  properties
    Dispatch_Protocol => Periodic;
    Period => 5 ms;
    Compute_Execution_Time => 1 ms .. 1 ms;
    Deadline => 5 ms;
  end B.impl;
  system S
  end S;
  system implementation S.impl
  subcomponents
    a : thread A.impl;
    b : thread B.impl;
    d : data Shared;
    cpu : processor Cpu;
  connections
    ca : data access a.r -> d;
    cb : data access b.r -> d;
  properties
    Actual_Processor_Binding => reference (cpu) applies to a;
    Actual_Processor_Binding => reference (cpu) applies to b;
  end S.impl;
end P;
)";
  const lint::Report r = lint_source(src);
  ASSERT_GE(count_check(r, "AL016"), 2u) << r.render_text();
  EXPECT_NE(first_check(r, "AL016")->message.find("Critical_Section_Time"),
            std::string::npos);
  EXPECT_EQ(first_certificate(r, "AL015"), nullptr);  // abstained
  EXPECT_GT(r.warnings(), 0u);
  EXPECT_EQ(r.verdict, lint::StaticVerdict::Schedulable) << r.render_text();
}

TEST(LintExact, Al016FlagsUnknownProtocol) {
  const std::string src = R"(
package P
public
  processor Cpu
  properties
    Scheduling_Protocol => RATE_MONOTONIC_PROTOCOL;
  end Cpu;
  data Shared
  properties
    Concurrency_Control_Protocol => SPIN_LOCK;
  end Shared;
  thread A
  features
    r : requires data access Shared;
  end A;
  thread implementation A.impl
  properties
    Dispatch_Protocol => Periodic;
    Period => 10 ms;
    Compute_Execution_Time => 1 ms .. 1 ms;
    Deadline => 10 ms;
  end A.impl;
  system S
  end S;
  system implementation S.impl
  subcomponents
    a : thread A.impl;
    d : data Shared;
    cpu : processor Cpu;
  connections
    ca : data access a.r -> d;
  properties
    Actual_Processor_Binding => reference (cpu) applies to a;
  end S.impl;
end P;
)";
  const lint::Report r = lint_source(src);
  const lint::Finding* f = first_check(r, "AL016");
  ASSERT_NE(f, nullptr) << r.render_text();
  EXPECT_NE(f->message.find("unrecognized Concurrency_Control_Protocol"),
            std::string::npos);
}

// --- AL010 unguarded-recursion ----------------------------------------------

TEST(LintAcsr, Al010FlagsUnguardedSelfRecursion) {
  acsr::Context ctx;
  acsr::Builder b(ctx);
  b.def("P", {}, b.pick({b.call("P"), b.idle(b.nil())}));
  const lint::Report r = lint::run_acsr(ctx, ms_options());
  const lint::Finding* f = first_check(r, "AL010");
  ASSERT_NE(f, nullptr) << r.render_text();
  EXPECT_EQ(f->severity, util::Severity::Error);
  EXPECT_EQ(f->component, "P");
  // Passes that need the instance model are recorded as skipped.
  EXPECT_NE(std::find(r.skipped.begin(), r.skipped.end(), "AL001"),
            r.skipped.end());
  EXPECT_NE(std::find(r.skipped.begin(), r.skipped.end(), "AL012"),
            r.skipped.end());
}

TEST(LintAcsr, Al010FlagsMutualUnguardedRecursion) {
  acsr::Context ctx;
  acsr::Builder b(ctx);
  b.def("P", {}, b.call("Q"));
  b.def("Q", {}, b.call("P"));
  const lint::Report r = lint::run_acsr(ctx, ms_options());
  EXPECT_EQ(count_check(r, "AL010"), 2u) << r.render_text();
}

TEST(LintAcsr, Al010AcceptsGuardedRecursion) {
  acsr::Context ctx;
  acsr::Builder b(ctx);
  b.def("Q", {}, b.act({{"cpu", b.c(0)}}, b.call("Q")));
  b.def("R", {}, b.recv("go", b.c(1), b.call("R")));
  const lint::Report r = lint::run_acsr(ctx, ms_options());
  EXPECT_EQ(count_check(r, "AL010"), 0u) << r.render_text();
}

// --- AL011 par3-conflict ----------------------------------------------------

TEST(LintAcsr, Al011FlagsSiblingsThatAlwaysShareAResource) {
  acsr::Context ctx;
  acsr::Builder b(ctx);
  b.def("A", {}, b.act({{"r", b.c(0)}}, b.call("A")));
  b.def("B", {}, b.act({{"r", b.c(1)}}, b.call("B")));
  b.def("Sys", {}, b.par({b.call("A"), b.call("B")}));
  const lint::Report r = lint::run_acsr(ctx, ms_options());
  const lint::Finding* f = first_check(r, "AL011");
  ASSERT_NE(f, nullptr) << r.render_text();
  EXPECT_EQ(f->severity, util::Severity::Warning);
  EXPECT_EQ(f->component, "Sys");
  EXPECT_NE(f->message.find("'r'"), std::string::npos);
}

TEST(LintAcsr, Al011AcceptsDisjointResources) {
  acsr::Context ctx;
  acsr::Builder b(ctx);
  b.def("A", {}, b.act({{"r", b.c(0)}}, b.call("A")));
  b.def("B", {}, b.act({{"s", b.c(1)}}, b.call("B")));
  b.def("Sys", {}, b.par({b.call("A"), b.call("B")}));
  const lint::Report r = lint::run_acsr(ctx, ms_options());
  EXPECT_EQ(count_check(r, "AL011"), 0u) << r.render_text();
}

TEST(LintAcsr, Al011AcceptsChoiceThatCanAvoidTheSharedResource) {
  // A's must-use set is the intersection over its alternatives — empty, so
  // no conflict is certain and the pass stays silent (under-approximation).
  acsr::Context ctx;
  acsr::Builder b(ctx);
  b.def("A", {}, b.pick({b.act({{"r", b.c(0)}}, b.call("A")),
                         b.act({{"s", b.c(0)}}, b.call("A"))}));
  b.def("B", {}, b.act({{"r", b.c(1)}}, b.call("B")));
  b.def("Sys", {}, b.par({b.call("A"), b.call("B")}));
  const lint::Report r = lint::run_acsr(ctx, ms_options());
  EXPECT_EQ(count_check(r, "AL011"), 0u) << r.render_text();
}

// --- AL012 instantaneous-cycle ----------------------------------------------

namespace {

std::string cycle_model(const std::string& cet) {
  return two_thread_model(
      "    a_in : in event port;\n    a_out : out event port;",
      "    b_in : in event port;\n    b_out : out event port;",
      "    c_ab : port a.a_out -> b.b_in;\n"
      "    c_ba : port b.b_out -> a.a_in;",
      "    Dispatch_Protocol => Aperiodic;\n"
      "    Compute_Execution_Time => " + cet + ";\n"
      "    Deadline => 20 ms;\n    Priority => 1;\n",
      "    Dispatch_Protocol => Aperiodic;\n"
      "    Compute_Execution_Time => " + cet + ";\n"
      "    Deadline => 20 ms;\n    Priority => 2;\n");
}

}  // namespace

TEST(LintAcsr, Al012FlagsInstantaneousEventCycle) {
  const lint::Report r = lint_source(cycle_model("0 ms .. 1 ms"));
  const lint::Finding* f = first_check(r, "AL012");
  ASSERT_NE(f, nullptr) << r.render_text();
  EXPECT_EQ(f->severity, util::Severity::Error);
  EXPECT_NE(f->message.find("a -> b -> a"), std::string::npos) << f->message;
}

TEST(LintAcsr, Al012AcceptsCycleWithNonZeroExecution) {
  // cmin of one quantum breaks the instantaneous chase: time must advance.
  const lint::Report r = lint_source(cycle_model("1 ms .. 1 ms"));
  EXPECT_EQ(count_check(r, "AL012"), 0u) << r.render_text();
}

// --- Analyzer integration ---------------------------------------------------

TEST(LintAnalyzer, ConclusiveOverloadSkipsExploration) {
  core::AnalyzerOptions opts;
  opts.translation.quantum_ns = 1'000'000;
  opts.run_lint = true;
  const core::AnalysisResult r =
      core::analyze_source(kOverloadModel, "S.impl", opts);
  EXPECT_TRUE(r.ok) << r.diagnostics;
  EXPECT_TRUE(r.exhaustive);
  EXPECT_FALSE(r.schedulable);
  EXPECT_EQ(r.states, 0u);  // provably skipped exploration
  EXPECT_EQ(r.decided_by, "AL007");
  EXPECT_NE(r.summary().find("decided statically"), std::string::npos);
}

TEST(LintAnalyzer, DisablingLintRestoresFullExploration) {
  core::AnalyzerOptions opts;
  opts.translation.quantum_ns = 1'000'000;
  opts.run_lint = false;
  const core::AnalysisResult r =
      core::analyze_source(kOverloadModel, "S.impl", opts);
  EXPECT_TRUE(r.ok) << r.diagnostics;
  EXPECT_GT(r.states, 0u);
  EXPECT_FALSE(r.schedulable);  // exploration agrees with the static verdict
  EXPECT_TRUE(r.decided_by.empty());
}

TEST(LintAnalyzer, ConclusiveScheduableVerdictAgreesWithExploration) {
  core::AnalyzerOptions opts;
  opts.translation.quantum_ns = 1'000'000;
  opts.run_lint = true;
  const core::AnalysisResult fast =
      core::analyze_source(kEdfExactModel, "S.impl", opts);
  EXPECT_TRUE(fast.ok) << fast.diagnostics;
  EXPECT_TRUE(fast.schedulable);
  EXPECT_EQ(fast.states, 0u);
  EXPECT_EQ(fast.decided_by, "AL009");

  opts.run_lint = false;
  const core::AnalysisResult full =
      core::analyze_source(kEdfExactModel, "S.impl", opts);
  EXPECT_TRUE(full.ok) << full.diagnostics;
  EXPECT_GT(full.states, 0u);
  EXPECT_EQ(full.schedulable, fast.schedulable);
}

TEST(LintAnalyzer, StaticVerdictCarriesCertificateInResultJson) {
  core::AnalyzerOptions opts;
  opts.translation.quantum_ns = 1'000'000;
  opts.run_lint = true;
  const core::AnalysisResult r =
      core::analyze_source(kOverloadModel, "S.impl", opts);
  EXPECT_TRUE(r.ok) << r.diagnostics;
  EXPECT_EQ(r.decided_by, "AL007");
  ASSERT_TRUE(r.lint_report.has_value());
  EXPECT_EQ(witness::check_all(*r.lint_report), "");
  const std::string json = core::render_result_json(r);
  EXPECT_NE(json.find("\"static_certificate\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"kind\": \"utilization-overload\""),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"check\": \"AL007\""), std::string::npos) << json;
}

TEST(LintAnalyzer, ExploredResultCarriesNoCertificate) {
  core::AnalyzerOptions opts;
  opts.translation.quantum_ns = 1'000'000;
  opts.run_lint = false;
  const core::AnalysisResult r =
      core::analyze_source(kOverloadModel, "S.impl", opts);
  EXPECT_TRUE(r.ok) << r.diagnostics;
  EXPECT_EQ(core::render_result_json(r).find("\"static_certificate\""),
            std::string::npos);
}

TEST(LintAnalyzer, SymmetricExampleIsNowDecidedStatically) {
  // The acceptance example: eight identical equal-priority threads were
  // previously explored (the reduction-layer showcase); tie-pessimistic
  // exact RTA now decides the model without a single state.
  std::ifstream in(std::string(AADLSCHED_MODELS_DIR) + "/symmetric.aadl");
  ASSERT_TRUE(in);
  std::ostringstream src;
  src << in.rdbuf();
  core::AnalyzerOptions opts;
  opts.translation.quantum_ns = 1'000'000;
  opts.run_lint = true;
  const core::AnalysisResult r =
      core::analyze_source(src.str(), "Symmetric.impl", opts);
  EXPECT_TRUE(r.ok) << r.diagnostics;
  EXPECT_TRUE(r.schedulable);
  EXPECT_EQ(r.states, 0u);  // no exploration
  EXPECT_EQ(r.decided_by, "AL013");
  ASSERT_TRUE(r.lint_report.has_value());
  EXPECT_EQ(witness::check_all(*r.lint_report), "");
  const std::string json = core::render_result_json(r);
  EXPECT_NE(json.find("\"kind\": \"fp-response-bound\""), std::string::npos)
      << json;
}

TEST(LintAnalyzer, LintGateStopsAnalysisOnHygieneErrors) {
  // Missing mandatory properties trip the fail_on=Error gate before any
  // translation or exploration is attempted.
  const std::string src = two_thread_model(
      "    a_out : out data port;", "    b_in : in data port;", "",
      "    Period => 10 ms;\n");
  core::AnalyzerOptions opts;
  opts.translation.quantum_ns = 1'000'000;
  opts.run_lint = true;
  const core::AnalysisResult r = core::analyze_source(src, "S.impl", opts);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.diagnostics.find("AL004"), std::string::npos) << r.diagnostics;
}

TEST(LintAnalyzer, WarningsDoNotTripTheDefaultGate) {
  // Direction-mismatch warnings (AL002) are below fail_on=Error: analysis
  // proceeds to exploration as usual. Equal declared HPF priorities whose
  // tie-pessimistic RTA fails keep the model outside the statically
  // decidable fragment (AL013 cannot refute under ties), so exploration
  // genuinely runs.
  const std::string tie_props =
      "    Dispatch_Protocol => Periodic;\n    Period => 10 ms;\n"
      "    Compute_Execution_Time => 5 ms .. 5 ms;\n    Deadline => 8 ms;\n"
      "    Priority => 5;\n";
  const std::string src = two_thread_model(
      "    a_out : out data port;", "    b_in : in data port;",
      "    c1 : port b.b_in -> a.a_out;", tie_props, tie_props, {},
      "HIGHEST_PRIORITY_FIRST");
  core::AnalyzerOptions opts;
  opts.translation.quantum_ns = 1'000'000;
  opts.run_lint = true;
  const core::AnalysisResult r = core::analyze_source(src, "S.impl", opts);
  EXPECT_TRUE(r.ok) << r.diagnostics;
  EXPECT_GT(r.states, 0u);
  ASSERT_TRUE(r.lint_report.has_value());
  EXPECT_GT(r.lint_report->warnings(), 0u);
}

// --- cross-validation: conclusive lint verdicts match exploration -----------

namespace {

/// Full-pipeline exploration verdict for rendered AADL source (mirrors
/// tests/test_cross_validation.cpp).
bool explore_source_verdict(const std::string& src) {
  aadl::Model model;
  util::DiagnosticEngine diags;
  EXPECT_TRUE(aadl::parse_aadl(model, src, diags)) << diags.render_all();
  auto inst = aadl::instantiate(model, "Root.impl", diags);
  EXPECT_NE(inst, nullptr);
  acsr::Context ctx;
  translate::TranslateOptions topts;
  topts.quantum_ns = 1'000'000;
  auto tr = translate::translate(ctx, *inst, diags, topts);
  EXPECT_TRUE(tr.has_value()) << diags.render_all();
  acsr::Semantics sem(ctx);
  const auto er = versa::explore(sem, tr->initial);
  EXPECT_TRUE(er.complete || er.deadlock_found);
  return er.schedulable();
}

bool explore_verdict(const sched::TaskSet& ts,
                     sched::SchedulingPolicy policy) {
  return explore_source_verdict(core::taskset_to_aadl(ts, policy));
}

}  // namespace

TEST(LintCrossValidation, EdfScreeningVerdictsMatchExploration) {
  // Generated periodic implicit-deadline EDF workloads are always within
  // the exact screening fragment: lint must reach a conclusive verdict and
  // that verdict must agree with full state-space exploration.
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    sched::WorkloadSpec spec;
    spec.task_count = 3;
    spec.total_utilization = 0.9;
    spec.periods = {3, 4, 5, 6, 8};  // small hyperperiods
    const sched::TaskSet ts = sched::generate_workload(spec, seed);

    const std::string src =
        core::taskset_to_aadl(ts, sched::SchedulingPolicy::Edf);
    const lint::Report r = lint_source(src, ms_options(), "Root.impl");
    ASSERT_TRUE(r.translated) << "seed " << seed;
    ASSERT_NE(r.verdict, lint::StaticVerdict::None)
        << "seed " << seed << "\n" << r.render_text();

    const bool lint_schedulable =
        r.verdict == lint::StaticVerdict::Schedulable;
    EXPECT_EQ(lint_schedulable,
              explore_verdict(ts, sched::SchedulingPolicy::Edf))
        << "seed " << seed << " decided by " << r.decided_by;
  }
}

TEST(LintCrossValidation, FixedPriorityScreeningVerdictsMatchExploration) {
  // Distinct rate-monotonic priorities keep every generated model inside
  // AL013's conclusive fragment: the exact RTA must always decide, and
  // must agree with exploration in both directions (E1 matrix diagonal).
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    sched::WorkloadSpec spec;
    spec.task_count = 3;
    spec.total_utilization = 0.9;
    spec.periods = {3, 4, 5, 6, 8};
    sched::TaskSet ts = sched::generate_workload(spec, seed);
    sched::assign_rate_monotonic(ts);

    const std::string src =
        core::taskset_to_aadl(ts, sched::SchedulingPolicy::FixedPriority);
    const lint::Report r = lint_source(src, ms_options(), "Root.impl");
    ASSERT_TRUE(r.translated) << "seed " << seed;
    ASSERT_NE(r.verdict, lint::StaticVerdict::None)
        << "seed " << seed << "\n" << r.render_text();
    EXPECT_EQ(r.verdict == lint::StaticVerdict::Schedulable,
              explore_source_verdict(src))
        << "seed " << seed << " decided by " << r.decided_by;
  }
}

TEST(LintCrossValidation, SharedResourceModelsAgreeWithExploration) {
  // E1 extension: the same agreement matrix over shared-resource task
  // sets. Exploration walks the lock-free model; any conclusive lint
  // verdict (AL013's exact test, or AL015's strictly stronger
  // blocking-aware vouch) must agree with it.
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    sched::WorkloadSpec spec;
    spec.task_count = 3;
    spec.total_utilization = 0.8;
    spec.periods = {3, 4, 5, 6, 8};
    sched::TaskSet ts = sched::generate_workload(spec, seed);
    sched::assign_rate_monotonic(ts);

    sched::ResourceModel rm;
    rm.resources = {
        {"shared", seed % 2 ? sched::LockProtocol::PriorityCeiling
                            : sched::LockProtocol::PriorityInheritance}};
    rm.sections = {{0, 0, 1}, {ts.tasks.size() - 1, 0, 1}};

    const std::string src = core::taskset_to_aadl_shared(
        ts, sched::SchedulingPolicy::FixedPriority, rm);
    const lint::Report r = lint_source(src, ms_options(), "Root.impl");
    ASSERT_TRUE(r.translated) << "seed " << seed << "\n" << r.render_text();
    if (r.verdict == lint::StaticVerdict::None) continue;
    EXPECT_EQ(r.verdict == lint::StaticVerdict::Schedulable,
              explore_source_verdict(src))
        << "seed " << seed << " decided by " << r.decided_by;
  }
}
