#!/usr/bin/env bash
# Crash-safety soak for the shared on-disk cache (DESIGN.md §15), driven by
# ctest (cache_soak) and the CI soak job.
#
# The invariant under test: no matter which I/O site fails — torn writes,
# failed renames, unreadable files, dead GC, kill -9'd cohabitants — the
# daemon never serves corrupt bytes. Every verdict below is byte-compared
# against a golden cold run (explore_ms aside); a fault may cost a re-run,
# never a wrong answer.
#
#   1. golden: one cold daemon round per model, verdicts + exit codes kept
#   2. two daemons on ONE --cache-dir: cohabitants discover each other
#      (startup log + shared.instances gauge), the second serves the first's
#      disk entries, and a kill -9'd daemon's registry entry is reaped by
#      the survivor's next sweep
#   3. crash debris: a truncated result entry and a dead writer's torn tmp
#      file planted in the dir — the entry is quarantined (one miss, then
#      self-heals), the tmp is swept, verdicts stay golden
#   4. fault matrix via $AADLSCHED_FAULT: cache.write / cache.rename /
#      cache.read / ckpt.write / ckpt.read each armed persistently in a
#      fresh daemon; verdicts stay golden, failures land in stats counters
#   5. size-budgeted GC: --cache-disk-cap evicts planted oldest artifacts at
#      startup; with gc.remove armed the eviction fails, is counted, and the
#      files survive
#   6. client resilience: `aadlsched --connect` against a dead endpoint
#      retries with backoff and exits 4 (unreachable), distinct from
#      analysis failure
#
# Usage: cache_soak.sh <aadlschedd-binary> <aadlsched-binary> <models-dir>
set -u

daemon=$1
cli=$2
models=$3

work=$(mktemp -d)
pids=()
cleanup() {
  for p in "${pids[@]:-}"; do kill "$p" 2>/dev/null; done
  wait 2>/dev/null
  rm -rf "$work"
}
trap cleanup EXIT

fail() {
  echo "FAIL: $*"
  for f in "$work"/*.log; do
    [ -f "$f" ] && { echo "--- $f ---"; cat "$f"; }
  done
  exit 1
}

# start_daemon <tag> [daemon-args...] — sets endpoint_<tag> and pid_<tag>.
# Arm faults by exporting AADLSCHED_FAULT before the call.
start_daemon() {
  local tag=$1
  shift
  "$daemon" --port 0 "$@" >"$work/$tag.out" 2>"$work/$tag.log" &
  local pid=$!
  pids+=("$pid")
  local line=""
  for _ in $(seq 1 100); do
    line=$(head -n1 "$work/$tag.out" 2>/dev/null)
    [ -n "$line" ] && break
    kill -0 "$pid" 2>/dev/null || fail "daemon $tag died on startup"
    sleep 0.1
  done
  [ "${line#aadlschedd listening on }" != "$line" ] \
    || fail "daemon $tag: unexpected discovery line: $line"
  eval "endpoint_$tag=\${line#aadlschedd listening on }"
  eval "pid_$tag=$pid"
  echo "daemon $tag (pid $pid) at ${line#aadlschedd listening on }"
}

stop_daemon() {  # stop_daemon <tag> — protocol shutdown, expect exit 0
  local ep pid
  eval "ep=\$endpoint_$1; pid=\$pid_$1"
  "$cli" --connect "$ep" --shutdown >/dev/null \
    || fail "daemon $1: protocol shutdown failed"
  wait "$pid"
  local rc=$?
  [ "$rc" -eq 0 ] || fail "daemon $1 exited $rc (expected 0)"
}

# field <endpoint> <object> <name> — integer "name" inside the one-line
# stats sub-object ("cache", "checkpoints", "gc", "shared").
field() {
  "$cli" --connect "$1" --stats 2>/dev/null \
    | sed -n "s/.*\"$2\": {\([^}]*\)}.*/\1/p" \
    | grep -o "\"$3\": [0-9]*" | head -n1 | grep -o '[0-9]*$'
}

norm() { sed 's/"explore_ms": [0-9.]*/"explore_ms": X/' "$1"; }

# submit <endpoint> <name> <round> [extra-cli-args...] — returns the CLI's
# exit code, leaves stdout/stderr in $work/<name>.<round>.{json,err}.
# Always --no-lint: the static screens would decide the tiny fixtures
# without exploring, and the soak needs real exploration so budget bounds
# and checkpoints engage.
submit() {
  local ep=$1 name=$2 round=$3
  shift 3
  "$cli" --connect "$ep" --no-lint "$@" "${file[$name]}" "${root[$name]}" \
    2>"$work/$name.$round.err" >"$work/$name.$round.json"
}

# check_golden <name> <round> — byte-compare a round's verdict to golden.
check_golden() {
  [ "$(norm "$work/$1.$2.json")" = "$(norm "$work/$1.golden.json")" ] \
    || fail "$1 ($2): verdict differs from the golden cold run"
}

# --- fixture models ---------------------------------------------------------
# Two generated single-thread systems (verdict decided by compute vs period:
# 2/10 schedulable, 12/10 not) keep every faulted round at millisecond cost;
# cruise_control exercises a real model for the shared-directory rounds.
gen_model() {  # gen_model <package> <compute_ms> > file
  cat <<EOF
package $1
public
  processor CPU
  properties
    Scheduling_Protocol => RATE_MONOTONIC_PROTOCOL;
  end CPU;
  thread T
  end T;
  thread implementation T.impl
  properties
    Dispatch_Protocol => Periodic;
    Period => 10 ms;
    Compute_Execution_Time => $2 ms .. $2 ms;
    Deadline => 10 ms;
  end T.impl;
  system App
  end App;
  system implementation App.impl
  subcomponents
    t : thread T.impl;
  end App.impl;
  system Root
  end Root;
  system implementation Root.impl
  subcomponents
    app : system App.impl;
    cpu : processor CPU;
  properties
    Actual_Processor_Binding => reference (cpu) applies to app;
  end Root.impl;
end $1;
EOF
}
gen_model Tiny 2 >"$work/tiny.aadl"
gen_model Overload 12 >"$work/overload.aadl"

declare -A file root want
names=(tiny overload cruise)
file[tiny]=$work/tiny.aadl;        root[tiny]=Root.impl;                 want[tiny]=0
file[overload]=$work/overload.aadl; root[overload]=Root.impl;            want[overload]=1
file[cruise]=$models/cruise_control.aadl
root[cruise]=CruiseControlSystem.impl
want[cruise]=0

echo "=== 1: golden cold verdicts ==="
start_daemon g --cache-dir "$work/golden_cache"
for n in "${names[@]}"; do
  submit "$endpoint_g" "$n" golden
  rc=$?
  [ "$rc" -eq "${want[$n]}" ] || fail "$n (golden): exit $rc, want ${want[$n]}"
done
stop_daemon g

echo "=== 2: two daemons, one cache dir ==="
shared=$work/shared_cache
start_daemon a --cache-dir "$shared" --maintenance-interval-ms 300
start_daemon b --cache-dir "$shared" --maintenance-interval-ms 300
grep -q "sharing cache dir with daemon pid $pid_a" "$work/b.log" \
  || fail "daemon b did not report daemon a as a cohabitant"

for n in "${names[@]}"; do
  submit "$endpoint_a" "$n" via_a
  check_golden "$n" via_a
done
# Daemon b serves a's disk entries without re-exploring a single state.
for n in "${names[@]}"; do
  submit "$endpoint_b" "$n" via_b
  check_golden "$n" via_b
  grep -q "cached: disk" "$work/$n.via_b.err" \
    || fail "$n: daemon b did not serve daemon a's disk entry"
done
[ "$("$cli" --connect "$endpoint_b" --stats | grep -o '"analyses_run": [0-9]*' \
    | grep -o '[0-9]*$')" = 0 ] \
  || fail "daemon b re-explored instead of serving the shared disk tier"

sleep 1  # one maintenance tick: both gauges converge on 2 cohabitants
[ "$(field "$endpoint_a" shared instances)" = 2 ] \
  || fail "daemon a's cohabitant gauge never reached 2"
[ "$(field "$endpoint_b" shared instances)" = 2 ] \
  || fail "daemon b's cohabitant gauge never reached 2"

# kill -9: b never deregisters; a's next sweep must reap the registry entry
# (and the flock dies with the process — no stale lock can wedge a).
kill -9 "$pid_b"
wait "$pid_b" 2>/dev/null
sleep 1
[ "$(field "$endpoint_a" shared instances)" = 1 ] \
  || fail "daemon a never reaped the kill -9'd cohabitant"
submit "$endpoint_a" tiny after_kill
check_golden tiny after_kill
stop_daemon a

echo "=== 3: crash debris is quarantined and swept ==="
entry=$(ls "$shared"/*.json | head -n1)
[ -n "$entry" ] || fail "no result entries in the shared dir"
head -c 20 "$entry" >"$entry.torn" && mv "$entry.torn" "$entry"  # truncate
dead=$(bash -c 'echo $$')  # a pid that is provably dead by now
printf '{"half": ' >"$shared/torn.json.tmp.$dead"
start_daemon c --cache-dir "$shared"
[ ! -e "$shared/torn.json.tmp.$dead" ] \
  || fail "dead writer's torn tmp file survived the startup sweep"
for n in "${names[@]}"; do
  submit "$endpoint_c" "$n" debris
  check_golden "$n" debris
done
[ "$(field "$endpoint_c" cache corrupt_evictions)" = 1 ] \
  || fail "truncated entry was not quarantined exactly once"
stop_daemon c
# Self-healed: the re-run re-stored the entry; a fresh daemon disk-serves it.
start_daemon c2 --cache-dir "$shared"
for n in "${names[@]}"; do
  submit "$endpoint_c2" "$n" healed
  check_golden "$n" healed
  grep -q "cached: disk" "$work/$n.healed.err" \
    || fail "$n: quarantined entry did not self-heal on disk"
done
stop_daemon c2

echo "=== 4: fault matrix over every I/O site ==="
# Persistently armed write/rename faults: persistence is lost (and counted),
# verdicts are not.
for site in cache.write cache.rename; do
  dir=$work/fault_${site//./_}
  AADLSCHED_FAULT="$site:1:fault:1000000" \
    start_daemon f --cache-dir "$dir"
  for n in tiny overload; do
    submit "$endpoint_f" "$n" "$site"
    rc=$?
    [ "$rc" -eq "${want[$n]}" ] || fail "$n ($site): exit $rc"
    check_golden "$n" "$site"
  done
  [ "$(field "$endpoint_f" cache disk_store_failures)" -ge 2 ] \
    || fail "$site: store failures were not counted"
  # The memory tier still serves warm.
  submit "$endpoint_f" tiny "$site.warm"
  grep -q "cached: memory" "$work/tiny.$site.warm.err" \
    || fail "$site: memory tier stopped serving"
  stop_daemon f
  [ -z "$(ls "$dir"/*.json 2>/dev/null)" ] \
    || fail "$site: a failed store still published a final file"
done

# cache.read armed on a restart: the disk tier goes dark, the daemon
# re-explores — a fault costs work, never a wrong answer.
dir=$work/fault_cache_read
start_daemon f --cache-dir "$dir"
submit "$endpoint_f" tiny seed
stop_daemon f
AADLSCHED_FAULT="cache.read:1:fault:1000000" \
  start_daemon f --cache-dir "$dir"
submit "$endpoint_f" tiny read_dark
check_golden tiny read_dark
grep -q "cached" "$work/tiny.read_dark.err" \
  && fail "cache.read: an unreadable entry was somehow served"
stop_daemon f

# ckpt.write: the bounded run cannot persist its checkpoint; the resume
# after a restart falls back cold and still concludes.
dir=$work/fault_ckpt_write
AADLSCHED_FAULT="ckpt.write:1:fault:1000000" \
  start_daemon f --cache-dir "$dir"
submit "$endpoint_f" tiny bound --max-states 5
rc=$?
[ "$rc" -eq 3 ] || fail "ckpt.write: bounded run exited $rc, want 3"
[ "$(field "$endpoint_f" checkpoints disk_store_failures)" -ge 1 ] \
  || fail "ckpt.write: store failure was not counted"
stop_daemon f
start_daemon f --cache-dir "$dir"
submit "$endpoint_f" tiny resume_cold --resume
rc=$?
[ "$rc" -eq 0 ] || fail "ckpt.write: cold fallback resume exited $rc"
grep -q "resumed from depth" "$work/tiny.resume_cold.err" \
  && fail "ckpt.write: a never-persisted checkpoint was resumed"
check_golden tiny resume_cold
stop_daemon f

# ckpt.read: the checkpoint IS on disk but unreadable; same cold fallback.
dir=$work/fault_ckpt_read
start_daemon f --cache-dir "$dir"
submit "$endpoint_f" tiny bound2 --max-states 5
stop_daemon f
[ -n "$(ls "$dir"/*.ckpt 2>/dev/null)" ] || fail "no checkpoint persisted"
AADLSCHED_FAULT="ckpt.read:1:fault:1000000" \
  start_daemon f --cache-dir "$dir"
submit "$endpoint_f" tiny resume_dark --resume
rc=$?
[ "$rc" -eq 0 ] || fail "ckpt.read: cold fallback resume exited $rc"
grep -q "resumed from depth" "$work/tiny.resume_dark.err" \
  && fail "ckpt.read: an unreadable checkpoint was resumed"
check_golden tiny resume_dark
stop_daemon f

echo "=== 5: size-budgeted GC ==="
dir=$work/gc_cache
mkdir -p "$dir"
# Three megabyte-scale stale artifacts, oldest first; a 1 MB budget must
# evict the two oldest at the startup sweep and keep the newest.
for i in 1 2 3; do
  head -c 700000 /dev/zero | tr '\0' 'x' >"$dir/stale$i.json"
  touch -d "@$(( $(date +%s) - 10000 + i ))" "$dir/stale$i.json"
done
start_daemon g2 --cache-dir "$dir" --cache-disk-cap 1
[ "$(field "$endpoint_g2" gc runs)" -ge 1 ] || fail "gc never ran"
[ "$(field "$endpoint_g2" gc removed_files)" = 2 ] \
  || fail "gc removed $(field "$endpoint_g2" gc removed_files) files, want 2"
[ ! -e "$dir/stale1.json" ] && [ ! -e "$dir/stale2.json" ] \
  && [ -e "$dir/stale3.json" ] || fail "gc did not evict oldest-first"
submit "$endpoint_g2" tiny gc_round
check_golden tiny gc_round
stop_daemon g2

# gc.remove armed: eviction fails, is counted, and the files survive.
for i in 1 2; do
  head -c 700000 /dev/zero | tr '\0' 'x' >"$dir/stale_again$i.json"
  touch -d "@$(( $(date +%s) - 10000 + i ))" "$dir/stale_again$i.json"
done
AADLSCHED_FAULT="gc.remove:1:fault:1000000" \
  start_daemon g3 --cache-dir "$dir" --cache-disk-cap 1
[ "$(field "$endpoint_g3" gc remove_failures)" -ge 1 ] \
  || fail "gc.remove: injected removal failures were not counted"
[ -e "$dir/stale_again1.json" ] || fail "gc.remove: file vanished anyway"
stop_daemon g3

echo "=== 6: client resilience ==="
# endpoint_a's daemon is long gone: the client must retry with backoff and
# exit 4 (unreachable) — distinct from analysis failure (2).
"$cli" --connect "$endpoint_a" --connect-timeout-ms 200 --connect-retries 2 \
  "${file[tiny]}" "${root[tiny]}" 2>"$work/unreachable.err" >/dev/null
rc=$?
[ "$rc" -eq 4 ] || fail "dead endpoint: exit $rc, want 4 (unreachable)"
grep -q "retry 1/2" "$work/unreachable.err" \
  || fail "client did not report its retry attempts"
grep -q "daemon unreachable after 3 attempt" "$work/unreachable.err" \
  || fail "client did not report the final unreachable diagnostic"

echo "PASS: zero corrupt serves across cohabitation, kill -9, crash debris, every fault site, GC, and a dead endpoint"
