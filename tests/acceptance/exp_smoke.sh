#!/usr/bin/env bash
# Acceptance for the fleet-scale experiment harness (EXPERIMENTS.md E15),
# driven by ctest (exp_smoke) and the CI service job:
#
#   1. run the shipped smoke spec in-process -> experiment_report.json
#   2. start aadlschedd on an ephemeral port and run the SAME spec through
#      --connect
#   3. the verdict data (every cell's "verdicts" object plus the
#      realized-utilization "curve") must be byte-identical across the two
#      backends; timing blocks are environmental and excluded
#   4. the report validates against the documented schema (required keys,
#      tally arithmetic, acceptance fractions)
#   5. a spec with an empty period set is rejected at load with the
#      workload generator's diagnostic (exit 2) — the bug this harness
#      exposed must stay a clean error, never UB
#
# Usage: exp_smoke.sh <aadlsched-exp-binary> <aadlschedd-binary>
#        <aadlsched-binary> <spec.json>
set -u

expbin=$1
daemon=$2
cli=$3
spec=$4

work=$(mktemp -d)
daemon_pid=""
cleanup() {
  [ -n "$daemon_pid" ] && kill "$daemon_pid" 2>/dev/null
  wait 2>/dev/null
  rm -rf "$work"
}
trap cleanup EXIT

fail() {
  echo "FAIL: $*"
  [ -f "$work/daemon.log" ] && { echo "--- daemon log ---"; cat "$work/daemon.log"; }
  exit 1
}

echo "=== in-process backend ==="
"$expbin" "$spec" --out "$work/report_local.json" --quiet \
  || fail "in-process run exited $?"
[ -s "$work/report_local.json" ] || fail "no in-process report written"

echo "=== daemon backend ==="
"$daemon" --port 0 --cache-dir "$work/cache" \
  >"$work/daemon.out" 2>"$work/daemon.log" &
daemon_pid=$!
for _ in $(seq 1 100); do
  line=$(head -n1 "$work/daemon.out" 2>/dev/null)
  [ -n "$line" ] && break
  kill -0 "$daemon_pid" 2>/dev/null || fail "daemon died on startup"
  sleep 0.1
done
endpoint=${line#aadlschedd listening on }
[ "$endpoint" != "$line" ] || fail "unexpected discovery line: $line"
echo "daemon $daemon_pid at $endpoint"

"$expbin" "$spec" --connect "$endpoint" --out "$work/report_daemon.json" \
  --quiet || fail "daemon run exited $?"

"$cli" --connect "$endpoint" --shutdown >/dev/null \
  || fail "protocol shutdown request failed"
wait "$daemon_pid"
daemon_pid=""

echo "=== verdict agreement + schema ==="
python3 - "$work/report_local.json" "$work/report_daemon.json" <<'EOF' \
  || fail "report validation"
import json, sys

local = json.load(open(sys.argv[1]))
daemon = json.load(open(sys.argv[2]))

def die(msg):
    print(msg)
    sys.exit(1)

# Schema: required keys at each level, tallies that add up.
for tag, r in (("local", local), ("daemon", daemon)):
    for key in ("schema_version", "name", "backend", "grid", "cells",
                "curve", "totals", "transport", "timing"):
        if key not in r:
            die(f"{tag}: missing top-level key '{key}'")
    if r["schema_version"] != 1:
        die(f"{tag}: unexpected schema_version {r['schema_version']}")
    runs_seen = 0
    for i, cell in enumerate(r["cells"]):
        for key in ("policy", "utilization", "task_count", "engine",
                    "processors", "verdicts", "timing"):
            if key not in cell:
                die(f"{tag}: cell {i} missing '{key}'")
        v = cell["verdicts"]
        for key in ("runs", "outcomes", "acceptance", "decided_by"):
            if key not in v:
                die(f"{tag}: cell {i} verdicts missing '{key}'")
        tally = v["outcomes"]
        if sum(tally.values()) != len(v["runs"]):
            die(f"{tag}: cell {i} outcome tally does not cover its runs")
        sched = tally["schedulable"]
        if abs(v["acceptance"] - sched / len(v["runs"])) > 1e-6:
            die(f"{tag}: cell {i} acceptance fraction is wrong")
        if sum(v["decided_by"].values()) != len(v["runs"]):
            die(f"{tag}: cell {i} decided_by tally does not cover its runs")
        runs_seen += len(v["runs"])
    if runs_seen != sum(r["totals"].values()):
        die(f"{tag}: totals do not cover every run")
    for bin_ in r["curve"]:
        if bin_["schedulable"] > bin_["runs"]:
            die(f"{tag}: curve bin with more schedulable than runs")

if local["backend"] != "in-process" or daemon["backend"] != "daemon":
    die("backend tags are wrong")
if daemon["transport"]["failures"] != 0:
    die(f"daemon run had {daemon['transport']['failures']} transport failures")

# The contract: verdict data is byte-identical across backends.
def verdict_bytes(r):
    return json.dumps([c["verdicts"] for c in r["cells"]] + [r["curve"]],
                      sort_keys=True)

if verdict_bytes(local) != verdict_bytes(daemon):
    die("verdict cells differ between in-process and daemon backends")
print(f"verdicts identical across backends "
      f"({len(local['cells'])} cells, "
      f"{sum(local['totals'].values())} runs)")
EOF

echo "=== empty period set is a clean spec error ==="
printf '{"name": "bad", "periods": []}' >"$work/bad.json"
"$expbin" "$work/bad.json" --out "$work/bad_report.json" \
  >"$work/bad.out" 2>"$work/bad.err"
rc=$?
[ "$rc" -eq 2 ] || fail "empty-periods spec: expected exit 2, got $rc"
grep -qi "period" "$work/bad.err" \
  || fail "empty-periods rejection carries no period diagnostic"
[ ! -s "$work/bad_report.json" ] || fail "rejected spec still wrote a report"

echo "PASS: byte-identical verdicts across backends, valid report schema, empty-periods spec rejected with a diagnostic"
