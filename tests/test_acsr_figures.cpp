// Executable reproductions of the paper's ACSR figures.
//
// Figure 2: the Simple process — a computation step on cpu, a computation
//           step on cpu+bus, completion announced by done!, restart; (b)
//           adds idling steps so the process can wait for resources.
// Figure 3: Simple composed with SimpleDriver. The driver's second action
//           grabs the bus at a higher priority and preempts Simple for one
//           quantum; the driver can alternatively force the interrupt exit
//           of Simple's temporal scope, and an idling alternative takes
//           Simple to the exception handler.
#include <gtest/gtest.h>

#include "acsr/builder.hpp"
#include "acsr/semantics.hpp"
#include "versa/explorer.hpp"

using namespace aadlsched;
using namespace aadlsched::acsr;

namespace {

class FiguresTest : public ::testing::Test {
 protected:
  Context ctx;
  Builder b{ctx};
  Semantics sem{ctx};

  std::string lbl(const Transition& t) { return render_label(ctx, t.label); }

  /// Fig. 2(b): Simple with idling alternatives in each state.
  void define_simple_waiting() {
    b.def("Simple",  {},
          b.pick({b.act({{"cpu", b.c(1)}}, b.call("Simple1")),
                  b.idle(b.call("Simple"))}));
    b.def("Simple1", {},
          b.pick({b.act({{"cpu", b.c(1)}, {"bus", b.c(1)}}, b.call("Simple2")),
                  b.idle(b.call("Simple1"))}));
    b.def("Simple2", {}, b.send("done", b.c(1), b.call("Simple")));
  }
};

TEST_F(FiguresTest, Fig2a_SimpleCycle) {
  // Without idling steps the process is a strict 3-state cycle.
  b.def("Simple",  {}, b.act({{"cpu", b.c(1)}}, b.call("Simple1")));
  b.def("Simple1", {},
        b.act({{"cpu", b.c(1)}, {"bus", b.c(1)}}, b.call("Simple2")));
  b.def("Simple2", {}, b.send("done", b.c(1), b.call("Simple")));

  TermId t = b.start("Simple");
  auto f1 = sem.transitions(t);
  ASSERT_EQ(f1.size(), 1u);
  EXPECT_EQ(lbl(f1[0]), "{(cpu,1)}");
  auto f2 = sem.transitions(f1[0].target);
  ASSERT_EQ(f2.size(), 1u);
  EXPECT_EQ(lbl(f2[0]), "{(bus,1),(cpu,1)}");
  auto f3 = sem.transitions(f2[0].target);
  ASSERT_EQ(f3.size(), 1u);
  EXPECT_EQ(lbl(f3[0]), "done!:1");
  EXPECT_EQ(f3[0].target, t);  // back to the start: a 3-state cycle
}

TEST_F(FiguresTest, Fig2b_IdlingStepsAllowWaiting) {
  define_simple_waiting();
  const TermId t = b.start("Simple");
  const auto fan = sem.transitions(t);
  ASSERT_EQ(fan.size(), 2u);
  // One computing step, one idling step staying in place.
  EXPECT_EQ(lbl(fan[0]), "{}");
  EXPECT_EQ(fan[0].target, t);
  EXPECT_EQ(lbl(fan[1]), "{(cpu,1)}");
}

TEST_F(FiguresTest, Fig3_DriverPreemptsBusForOneQuantum) {
  define_simple_waiting();
  // Driver: one action on disjoint resources, then one quantum of bus at
  // priority 2, then idles forever.
  b.def("Driver",  {}, b.act({{"bus", b.c(2)}}, b.call("Driver1")));
  b.def("Driver1", {}, b.act({{"bus", b.c(2)}}, b.call("Driver2")));
  b.def("Driver2", {}, b.idle(b.call("Driver2")));

  TermId t = ctx.terms().parallel({b.start("Simple"), b.start("Driver")});

  // Quantum 1: Simple computes on cpu while the driver uses the bus.
  auto fan = sem.prioritized(t);
  ASSERT_EQ(fan.size(), 1u);
  EXPECT_EQ(lbl(fan[0]), "{(bus,2),(cpu,1)}");
  t = fan[0].target;

  // Quantum 2: Simple needs cpu+bus, but the driver holds the bus at a
  // higher priority — the only surviving step has Simple idling.
  fan = sem.prioritized(t);
  ASSERT_EQ(fan.size(), 1u);
  EXPECT_EQ(lbl(fan[0]), "{(bus,2)}");
  t = fan[0].target;

  // Quantum 3: driver is done; Simple finishes its second step.
  fan = sem.prioritized(t);
  ASSERT_EQ(fan.size(), 1u);
  EXPECT_EQ(lbl(fan[0]), "{(bus,1),(cpu,1)}");
  t = fan[0].target;

  // Completion event.
  fan = sem.prioritized(t);
  ASSERT_EQ(fan.size(), 1u);
  EXPECT_EQ(lbl(fan[0]), "done!:1");
}

TEST_F(FiguresTest, Fig3_InterruptExit) {
  define_simple_waiting();
  // Simple runs inside a scope whose interrupt handler is triggered by the
  // ACSR event "interrupt"; the driver forces it.
  const OpenTermId handler =
      b.recv("interrupt", b.c(1), b.send("handled", b.c(1), b.nil()));
  b.def("Scoped", {},
        b.scope(b.call("Simple"), b.c(-1), /*exception_label=*/{},
                kInvalidOpenTerm, handler, kInvalidOpenTerm));
  b.def("Killer", {}, b.send("interrupt", b.c(1), b.nil()));

  const TermId sys = ctx.terms().restrict(
      ctx.event_sets().intern({ctx.event("interrupt")}),
      ctx.terms().parallel({b.start("Scoped"), b.start("Killer")}));

  // The interrupt tau preempts all timed steps.
  const auto fan = sem.prioritized(sys);
  ASSERT_EQ(fan.size(), 1u);
  EXPECT_EQ(fan[0].label.kind, Label::Kind::Tau);
  EXPECT_EQ(ctx.event_name(fan[0].label.event), "interrupt");

  // After the interrupt the handler continuation announces itself.
  const auto fan2 = sem.prioritized(fan[0].target);
  ASSERT_EQ(fan2.size(), 1u);
  EXPECT_EQ(lbl(fan2[0]), "handled!:1");
}

TEST_F(FiguresTest, Fig3_ExceptionExit) {
  // The body may voluntarily raise the exception and transfer control to
  // the exit point.
  const OpenTermId body =
      b.pick({b.act({{"cpu", b.c(1)}}, b.call("Body")),
              b.send("exception", b.c(1), b.nil())});
  b.def("Body", {}, body);
  b.def("ScopedE", {},
        b.scope(b.call("Body"), b.c(-1), "exception",
                b.send("recovered", b.c(1), b.nil()), kInvalidOpenTerm,
                kInvalidOpenTerm));
  const TermId t = b.start("ScopedE");
  const auto fan = sem.transitions(t);
  ASSERT_EQ(fan.size(), 2u);
  // Find the exception transition and follow it.
  const Transition* exc = nullptr;
  for (const auto& tr : fan)
    if (tr.label.kind == Label::Kind::Event) exc = &tr;
  ASSERT_NE(exc, nullptr);
  EXPECT_EQ(ctx.event_name(exc->label.event), "exception");
  const auto fan2 = sem.transitions(exc->target);
  ASSERT_EQ(fan2.size(), 1u);
  EXPECT_EQ(lbl(fan2[0]), "recovered!:1");
}

TEST_F(FiguresTest, Fig3_TimeoutExit) {
  b.def("Busy", {}, b.act({{"cpu", b.c(1)}}, b.call("Busy")));
  b.def("ScopedT", {},
        b.scope(b.call("Busy"), b.c(3), {}, kInvalidOpenTerm,
                kInvalidOpenTerm, b.send("late", b.c(1), b.nil())));
  TermId t = b.start("ScopedT");
  for (int i = 0; i < 3; ++i) {
    const auto fan = sem.transitions(t);
    ASSERT_EQ(fan.size(), 1u);
    EXPECT_TRUE(fan[0].label.is_timed());
    t = fan[0].target;
  }
  const auto fan = sem.transitions(t);
  ASSERT_EQ(fan.size(), 1u);
  EXPECT_EQ(lbl(fan[0]), "late!:1");
}

TEST_F(FiguresTest, Fig3_FullLtsIsFinite) {
  define_simple_waiting();
  b.def("Driver",  {}, b.act({{"bus", b.c(2)}}, b.call("Driver1")));
  b.def("Driver1", {}, b.act({{"bus", b.c(2)}}, b.call("Driver2")));
  b.def("Driver2", {}, b.idle(b.call("Driver2")));
  const TermId sys =
      ctx.terms().parallel({b.start("Simple"), b.start("Driver")});
  const auto lts = versa::build_lts(sem, sys);
  // Small, finite, and every state has a successor (no deadlock).
  EXPECT_LE(lts.states.size(), 16u);
  for (const auto& edges : lts.edges) EXPECT_FALSE(edges.empty());
}

}  // namespace
