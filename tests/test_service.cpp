// server::Service — the in-process analysis service behind aadlschedd
// (DESIGN.md §11): cache hit/miss behavior, the conclusive-only caching
// policy, the disk tier across a "restart", request coalescing, admission
// order, protocol round trips, and a multi-threaded mixed workload whose
// stats must stay monotonic. The concurrent tests run under the tsan ctest
// label.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <future>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "server/service.hpp"
#include "util/json.hpp"

namespace {

using namespace aadlsched;
using server::Op;
using server::Request;
using server::Response;
using server::Service;
using server::ServiceConfig;

// --- fixtures -----------------------------------------------------------

/// Minimal one-thread system; compute/period/deadline in ms decide the
/// verdict (2/10/10 schedulable, 12/10/10 not).
std::string tiny_model(int compute_ms, int period_ms, int deadline_ms) {
  std::ostringstream os;
  os << "package Tiny\npublic\n"
     << "  processor CPU\n  properties\n"
     << "    Scheduling_Protocol => RATE_MONOTONIC_PROTOCOL;\n  end CPU;\n"
     << "  thread T\n  end T;\n"
     << "  thread implementation T.impl\n  properties\n"
     << "    Dispatch_Protocol => Periodic;\n"
     << "    Period => " << period_ms << " ms;\n"
     << "    Compute_Execution_Time => " << compute_ms << " ms .. "
     << compute_ms << " ms;\n"
     << "    Deadline => " << deadline_ms << " ms;\n  end T.impl;\n"
     << "  system App\n  end App;\n"
     << "  system implementation App.impl\n  subcomponents\n"
     << "    t : thread T.impl;\n  end App.impl;\n"
     << "  system Root\n  end Root;\n"
     << "  system implementation Root.impl\n  subcomponents\n"
     << "    app : system App.impl;\n    cpu : processor CPU;\n"
     << "  properties\n"
     << "    Actual_Processor_Binding => reference (cpu) applies to app;\n"
     << "  end Root.impl;\nend Tiny;\n";
  return os.str();
}

std::string storm_text() {
  std::ifstream in(std::string(AADLSCHED_MODELS_DIR) + "/storm.aadl");
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

Request analyze(const std::string& model, const std::string& id = "",
                const std::string& root = "Root.impl") {
  Request req;
  req.op = Op::Analyze;
  req.model = model;
  req.root = root;
  req.id = id;
  req.options.run_lint = false;
  return req;
}

util::JsonValue stats_of(Service& svc) {
  auto v = util::parse_json(svc.stats_json());
  EXPECT_TRUE(v.has_value());
  return v ? *v : util::JsonValue();
}

std::int64_t stat(const util::JsonValue& s, const char* a,
                  const char* b = nullptr) {
  const util::JsonValue* v = s.get(a);
  if (v && b) v = v->get(b);
  return v ? v->as_int(-1) : -1;
}

// --- cache behavior -----------------------------------------------------

TEST(Service, SecondSubmitIsAMemoryHit) {
  Service svc;
  const Request req = analyze(tiny_model(2, 10, 10), "r1");

  const Response cold = svc.handle(req);
  ASSERT_TRUE(cold.ok) << cold.error;
  EXPECT_EQ(cold.outcome, core::Outcome::Schedulable);
  EXPECT_FALSE(cold.cached);
  EXPECT_EQ(cold.id, "r1");
  EXPECT_EQ(cold.fingerprint.size(), 32u);
  EXPECT_NE(cold.result_json.find("\"schema_version\""), std::string::npos);

  const Response warm = svc.handle(req);
  ASSERT_TRUE(warm.ok);
  EXPECT_TRUE(warm.cached);
  EXPECT_EQ(warm.cache_tier, "memory");
  EXPECT_EQ(warm.fingerprint, cold.fingerprint);
  // The acceptance bar: a cache hit returns the stored bytes verbatim.
  EXPECT_EQ(warm.result_json, cold.result_json);

  const auto s = stats_of(svc);
  EXPECT_EQ(stat(s, "analyses_run"), 1);
  EXPECT_EQ(stat(s, "cache", "hits_memory"), 1);
  EXPECT_EQ(stat(s, "cache", "misses"), 1);
  EXPECT_EQ(stat(s, "cache", "stores"), 1);
  EXPECT_EQ(stat(s, "cache", "entries"), 1);
  EXPECT_EQ(stat(s, "outcomes", "schedulable"), 2);
}

TEST(Service, NoCacheBypassesLookupAndStore) {
  Service svc;
  Request req = analyze(tiny_model(2, 10, 10));
  req.no_cache = true;
  EXPECT_FALSE(svc.handle(req).cached);
  EXPECT_FALSE(svc.handle(req).cached);
  const auto s = stats_of(svc);
  EXPECT_EQ(stat(s, "analyses_run"), 2);
  EXPECT_EQ(stat(s, "cache", "stores"), 0);
  EXPECT_EQ(stat(s, "cache", "entries"), 0);
}

TEST(Service, SemanticOptionsSplitTheKey) {
  Service svc;
  Request req = analyze(tiny_model(2, 10, 10));
  const Response a = svc.handle(req);
  req.options.quantum_ns = 2'000'000;  // different quantum, different verdict space
  const Response b = svc.handle(req);
  EXPECT_FALSE(b.cached);  // same model text, distinct cache entry
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  EXPECT_EQ(stat(stats_of(svc), "cache", "entries"), 2);
}

TEST(Service, InconclusiveOutcomesAreNeverCached) {
  Service svc;
  Request req = analyze(storm_text(), "", "Storm.impl");
  req.options.max_states = 200;  // storm cannot conclude in 200 states
  const Response first = svc.handle(req);
  ASSERT_TRUE(first.ok);
  EXPECT_EQ(first.outcome, core::Outcome::Inconclusive);
  EXPECT_NE(first.result_json.find("\"stop_reason\""), std::string::npos);
  const Response second = svc.handle(req);
  EXPECT_FALSE(second.cached);  // a truncated run is budget-dependent
  const auto s = stats_of(svc);
  EXPECT_EQ(stat(s, "analyses_run"), 2);
  EXPECT_EQ(stat(s, "cache", "stores"), 0);
  EXPECT_EQ(stat(s, "outcomes", "inconclusive"), 2);
}

TEST(Service, FrontEndErrorIsImmediateAndUncached) {
  Service svc;
  const Response resp = svc.handle(analyze("this is not aadl"));
  ASSERT_TRUE(resp.ok);  // protocol-level success; analysis outcome is Error
  EXPECT_EQ(resp.outcome, core::Outcome::Error);
  EXPECT_NE(resp.result_json.find("\"error\""), std::string::npos);
  const auto s = stats_of(svc);
  EXPECT_EQ(stat(s, "analyses_run"), 0);  // never reached a worker
  EXPECT_EQ(stat(s, "outcomes", "error"), 1);
}

TEST(Service, DiskTierSurvivesRestart) {
  char tmpl[] = "/tmp/aadlsched_cache_XXXXXX";
  ASSERT_NE(::mkdtemp(tmpl), nullptr);
  const std::string dir = tmpl;

  ServiceConfig cfg;
  cfg.cache.disk_dir = dir;
  std::string cold_json, fingerprint;
  {
    Service first(cfg);
    const Response cold = first.handle(analyze(tiny_model(2, 10, 10)));
    ASSERT_TRUE(cold.ok);
    EXPECT_FALSE(cold.cached);
    cold_json = cold.result_json;
    fingerprint = cold.fingerprint;
  }  // "daemon restart"

  Service second(cfg);
  const Response warm = second.handle(analyze(tiny_model(2, 10, 10)));
  ASSERT_TRUE(warm.ok);
  EXPECT_TRUE(warm.cached);
  EXPECT_EQ(warm.cache_tier, "disk");
  EXPECT_EQ(warm.fingerprint, fingerprint);
  EXPECT_EQ(warm.result_json, cold_json);  // byte-identical across restarts
  const auto s = stats_of(second);
  EXPECT_EQ(stat(s, "analyses_run"), 0);
  EXPECT_EQ(stat(s, "cache", "hits_disk"), 1);

  // A disk hit is promoted into the memory tier.
  EXPECT_EQ(second.handle(analyze(tiny_model(2, 10, 10))).cache_tier,
            "memory");

  std::filesystem::remove_all(dir);
}

TEST(Service, StaleTmpFilesAreSweptOnConstruction) {
  char tmpl[] = "/tmp/aadlsched_cache_XXXXXX";
  ASSERT_NE(::mkdtemp(tmpl), nullptr);
  const std::string dir = tmpl;

  // A guaranteed-dead pid: fork a child that exits immediately and reap it.
  const pid_t dead = ::fork();
  ASSERT_GE(dead, 0);
  if (dead == 0) ::_exit(0);
  int wstatus = 0;
  ASSERT_EQ(::waitpid(dead, &wstatus, 0), dead);
  const std::string dead_pid = std::to_string(dead);

  // Leftovers of a writer that died between the tmp write and the rename —
  // one per cache tier — plus a legitimate final file that must survive,
  // plus a fresh tmp file owned by THIS (live) process: a sibling daemon
  // mid-write, which the sweep must leave alone.
  std::ofstream(dir + "/deadbeef.json.tmp." + dead_pid) << "{\"torn\":";
  std::ofstream(dir + "/deadbeef.ckpt.tmp." + dead_pid) << "partial";
  std::ofstream(dir + "/keepme.json") << "{\"outcome\": \"schedulable\"}";
  const std::string inflight =
      dir + "/inflight.json.tmp." + std::to_string(::getpid());
  std::ofstream(inflight) << "{\"mid\":";

  ServiceConfig cfg;
  cfg.cache.disk_dir = dir;
  Service svc(cfg);

  EXPECT_FALSE(
      std::filesystem::exists(dir + "/deadbeef.json.tmp." + dead_pid));
  EXPECT_FALSE(
      std::filesystem::exists(dir + "/deadbeef.ckpt.tmp." + dead_pid));
  EXPECT_TRUE(std::filesystem::exists(dir + "/keepme.json"));
  EXPECT_TRUE(std::filesystem::exists(inflight));  // live owner, in grace

  std::filesystem::remove_all(dir);
}

TEST(Service, CorruptDiskEntriesAreQuarantinedOnLoad) {
  char tmpl[] = "/tmp/aadlsched_cache_XXXXXX";
  ASSERT_NE(::mkdtemp(tmpl), nullptr);
  const std::string dir = tmpl;

  ServiceConfig cfg;
  cfg.cache.disk_dir = dir;
  std::string entry_path;
  {
    Service first(cfg);
    ASSERT_FALSE(first.handle(analyze(tiny_model(2, 10, 10))).cached);
    for (const auto& ent : std::filesystem::directory_iterator(dir))
      if (ent.path().extension() == ".json") entry_path = ent.path();
    ASSERT_FALSE(entry_path.empty());
  }
  // Corrupt the stored verdict (torn write, disk damage, foreign bytes).
  std::ofstream(entry_path, std::ios::trunc) << "{\"outcome\": \"sched";

  Service second(cfg);
  const Response resp = second.handle(analyze(tiny_model(2, 10, 10)));
  ASSERT_TRUE(resp.ok);
  // Exactly one miss: the corrupt file was rejected, deleted, and the
  // fresh run re-stored a good copy.
  EXPECT_FALSE(resp.cached);
  const auto s = stats_of(second);
  EXPECT_EQ(stat(s, "cache", "corrupt_evictions"), 1);
  EXPECT_EQ(stat(s, "cache", "misses"), 1);
  EXPECT_EQ(stat(s, "cache", "stores"), 1);
  // Self-healed: the rewritten entry parses and serves.
  Service third(cfg);
  EXPECT_TRUE(third.handle(analyze(tiny_model(2, 10, 10))).cached);
  EXPECT_EQ(stat(stats_of(third), "cache", "corrupt_evictions"), 0);

  std::filesystem::remove_all(dir);
}

// --- warm re-exploration (checkpoint tier) ------------------------------

/// tiny_model(2, 10, 10) explores 13 states cold; a 5-state budget
/// truncates it mid-space.
Request bounded(const std::string& model, std::uint64_t max_states) {
  Request req = analyze(model);
  req.options.max_states = max_states;
  return req;
}

TEST(Service, BudgetBoundRunStoresACheckpointAndResumeFinishes) {
  Service svc;
  const std::string model = tiny_model(2, 10, 10);

  const Response bound = svc.handle(bounded(model, 5));
  ASSERT_TRUE(bound.ok);
  EXPECT_EQ(bound.outcome, core::Outcome::Inconclusive);
  EXPECT_TRUE(bound.checkpoint_captured);
  EXPECT_FALSE(bound.resumed);
  {
    const auto s = stats_of(svc);
    EXPECT_EQ(stat(s, "checkpoints", "stores"), 1);
    EXPECT_EQ(stat(s, "checkpoints", "entries"), 1);
  }

  Request again = analyze(model);
  again.resume = true;
  const Response warm = svc.handle(again);
  ASSERT_TRUE(warm.ok);
  EXPECT_EQ(warm.outcome, core::Outcome::Schedulable);
  EXPECT_TRUE(warm.resumed);
  EXPECT_GT(warm.resumed_depth, 0u);

  const auto s = stats_of(svc);
  EXPECT_EQ(stat(s, "checkpoints", "hits"), 1);
  EXPECT_EQ(stat(s, "checkpoints", "resume_failures"), 0);
  // The conclusive verdict superseded the wavefront.
  EXPECT_EQ(stat(s, "checkpoints", "entries"), 0);

  // The resumed verdict is cached like any other conclusive result.
  EXPECT_TRUE(svc.handle(analyze(model)).cached);
}

TEST(Service, ResumeWithoutACheckpointRunsColdAndCountsAMiss) {
  Service svc;
  Request req = analyze(tiny_model(2, 10, 10));
  req.resume = true;
  const Response resp = svc.handle(req);
  ASSERT_TRUE(resp.ok);
  EXPECT_EQ(resp.outcome, core::Outcome::Schedulable);
  EXPECT_FALSE(resp.resumed);
  const auto s = stats_of(svc);
  EXPECT_EQ(stat(s, "checkpoints", "misses"), 1);
  EXPECT_EQ(stat(s, "checkpoints", "hits"), 0);
}

TEST(Service, NoCheckpointRequestSkipsTheCapture) {
  Service svc;
  const std::string model = tiny_model(2, 10, 10);
  Request req = bounded(model, 5);
  req.no_checkpoint = true;
  EXPECT_EQ(svc.handle(req).outcome, core::Outcome::Inconclusive);
  EXPECT_FALSE(svc.handle(req).checkpoint_captured);
  const auto s = stats_of(svc);
  EXPECT_EQ(stat(s, "checkpoints", "stores"), 0);
  EXPECT_EQ(stat(s, "checkpoints", "entries"), 0);
}

TEST(Service, CheckpointsDisabledServiceWideNeverStore) {
  ServiceConfig cfg;
  cfg.cache.checkpoints = false;
  Service svc(cfg);
  const std::string model = tiny_model(2, 10, 10);
  EXPECT_FALSE(svc.handle(bounded(model, 5)).checkpoint_captured);
  Request again = analyze(model);
  again.resume = true;
  EXPECT_FALSE(svc.handle(again).resumed);
  const auto s = stats_of(svc);
  EXPECT_EQ(stat(s, "checkpoints", "stores"), 0);
  EXPECT_EQ(stat(s, "checkpoints", "hits"), 0);
}

TEST(Service, CheckpointsSurviveADaemonRestart) {
  char tmpl[] = "/tmp/aadlsched_cache_XXXXXX";
  ASSERT_NE(::mkdtemp(tmpl), nullptr);
  const std::string dir = tmpl;

  ServiceConfig cfg;
  cfg.cache.disk_dir = dir;
  const std::string model = tiny_model(2, 10, 10);
  {
    Service first(cfg);
    ASSERT_TRUE(first.handle(bounded(model, 5)).checkpoint_captured);
  }  // "daemon restart"

  Service second(cfg);
  Request again = analyze(model);
  again.resume = true;
  const Response warm = second.handle(again);
  ASSERT_TRUE(warm.ok);
  EXPECT_TRUE(warm.resumed);
  EXPECT_EQ(warm.outcome, core::Outcome::Schedulable);
  EXPECT_EQ(stat(stats_of(second), "checkpoints", "hits"), 1);

  std::filesystem::remove_all(dir);
}

TEST(Service, CorruptCheckpointOnDiskFallsBackColdAndIsErased) {
  char tmpl[] = "/tmp/aadlsched_cache_XXXXXX";
  ASSERT_NE(::mkdtemp(tmpl), nullptr);
  const std::string dir = tmpl;

  ServiceConfig cfg;
  cfg.cache.disk_dir = dir;
  const std::string model = tiny_model(2, 10, 10);
  std::string ckpt_path;
  {
    Service first(cfg);
    ASSERT_TRUE(first.handle(bounded(model, 5)).checkpoint_captured);
    for (const auto& ent : std::filesystem::directory_iterator(dir))
      if (ent.path().extension() == ".ckpt") ckpt_path = ent.path();
    ASSERT_FALSE(ckpt_path.empty());
  }
  std::ofstream(ckpt_path, std::ios::trunc) << "garbage, not a checkpoint";

  Service second(cfg);
  Request again = analyze(model);
  again.resume = true;
  const Response resp = second.handle(again);
  ASSERT_TRUE(resp.ok);
  // The store's digest check quarantined the blob at lookup — the corrupt
  // bytes were never served; the run fell back cold and still reached the
  // verdict.
  EXPECT_FALSE(resp.resumed);
  EXPECT_EQ(resp.outcome, core::Outcome::Schedulable);
  const auto s = stats_of(second);
  EXPECT_EQ(stat(s, "checkpoints", "hits"), 0);
  EXPECT_EQ(stat(s, "checkpoints", "misses"), 1);
  EXPECT_EQ(stat(s, "checkpoints", "corrupt_evictions"), 1);
  EXPECT_EQ(stat(s, "checkpoints", "resume_failures"), 0);
  EXPECT_EQ(stat(s, "checkpoints", "entries"), 0);  // quarantined == erased
  EXPECT_FALSE(std::filesystem::exists(ckpt_path));

  std::filesystem::remove_all(dir);
}

TEST(Service, CheckpointDiskCapEvictsOldestFirst) {
  char tmpl[] = "/tmp/aadlsched_cache_XXXXXX";
  ASSERT_NE(::mkdtemp(tmpl), nullptr);
  const std::string dir = tmpl;

  ServiceConfig cfg;
  cfg.cache.disk_dir = dir;
  cfg.cache.checkpoint_disk_cap = 2;
  Service svc(cfg);
  // Three distinct models, three budget-bound runs: the cap keeps two.
  for (int period : {10, 20, 40})
    ASSERT_TRUE(
        svc.handle(bounded(tiny_model(2, period, period), 5))
            .checkpoint_captured);
  std::size_t ckpt_files = 0;
  for (const auto& ent : std::filesystem::directory_iterator(dir))
    if (ent.path().extension() == ".ckpt") ++ckpt_files;
  EXPECT_EQ(ckpt_files, 2u);
  const auto s = stats_of(svc);
  EXPECT_EQ(stat(s, "checkpoints", "stores"), 3);
  EXPECT_EQ(stat(s, "checkpoints", "entries"), 2);
  EXPECT_GE(stat(s, "checkpoints", "evictions"), 1);

  std::filesystem::remove_all(dir);
}

TEST(Service, IdenticalInFlightRequestsCoalesce) {
  ServiceConfig cfg;
  cfg.workers = 1;
  Service svc(cfg);

  // Occupy the single worker with a big (bounded) storm run, then submit
  // the same tiny model twice. Whatever the timing, the tiny exploration
  // must run exactly once: the duplicate either coalesces onto the
  // in-flight job or hits the cache the first run stored.
  Request blocker = analyze(storm_text(), "", "Storm.impl");
  blocker.options.max_states = 20'000;
  auto f0 = svc.submit(blocker);
  auto f1 = svc.submit(analyze(tiny_model(2, 10, 10), "a"));
  auto f2 = svc.submit(analyze(tiny_model(2, 10, 10), "b"));

  const Response r0 = f0.get(), r1 = f1.get(), r2 = f2.get();
  ASSERT_TRUE(r0.ok && r1.ok && r2.ok);
  EXPECT_EQ(r1.id, "a");
  EXPECT_EQ(r2.id, "b");
  EXPECT_EQ(r1.outcome, core::Outcome::Schedulable);
  EXPECT_EQ(r1.result_json, r2.result_json);
  const auto s = stats_of(svc);
  EXPECT_EQ(stat(s, "analyses_run"), 2);  // storm + ONE tiny run
  EXPECT_EQ(stat(s, "coalesced") + stat(s, "cache", "hits_memory"), 1);
}

// --- control ops and the wire loop --------------------------------------

TEST(Service, PingStatsShutdownAnswerInline) {
  Service svc;
  Request ping;
  ping.op = Op::Ping;
  ping.id = "p";
  const Response pr = svc.handle(ping);
  EXPECT_TRUE(pr.ok);
  EXPECT_EQ(pr.id, "p");

  Request stats;
  stats.op = Op::Stats;
  const Response sr = svc.handle(stats);
  EXPECT_TRUE(sr.ok);
  EXPECT_TRUE(util::parse_json(sr.stats_json).has_value());

  Request down;
  down.op = Op::Shutdown;
  EXPECT_TRUE(svc.handle(down).ok);
  EXPECT_TRUE(svc.shutting_down());
  // Analyze after shutdown is refused, not hung.
  const Response refused = svc.handle(analyze(tiny_model(2, 10, 10)));
  EXPECT_FALSE(refused.ok);
  EXPECT_NE(refused.error.find("shutting down"), std::string::npos);
}

TEST(Service, HandleLineRoundTrip) {
  Service svc;
  const std::string line = server::render_request(analyze(tiny_model(2, 10, 10), "w1"));
  const std::string out = svc.handle_line(line);
  std::string err;
  const auto resp = server::parse_response(out, err);
  ASSERT_TRUE(resp.has_value()) << err;
  EXPECT_TRUE(resp->ok);
  EXPECT_EQ(resp->id, "w1");
  EXPECT_EQ(resp->outcome, core::Outcome::Schedulable);
  // The embedded result object came through byte-verbatim.
  EXPECT_EQ(resp->result_json, svc.handle(analyze(tiny_model(2, 10, 10))).result_json);
}

TEST(Service, MalformedLineIsAProtocolError) {
  Service svc;
  const std::string out = svc.handle_line("{not json");
  std::string err;
  const auto resp = server::parse_response(out, err);
  ASSERT_TRUE(resp.has_value()) << err;
  EXPECT_FALSE(resp->ok);
  EXPECT_FALSE(resp->error.empty());
  EXPECT_EQ(stat(stats_of(svc), "protocol_errors"), 1);
  // The service survives and still serves.
  EXPECT_TRUE(svc.handle(analyze(tiny_model(2, 10, 10))).ok);
}

// --- symbolic engine at the service layer (DESIGN.md §16) ---------------

TEST(Service, EngineSplitsTheCacheKey) {
  Service svc;
  Request req = analyze(tiny_model(2, 10, 10));
  const Response en = svc.handle(req);
  ASSERT_TRUE(en.ok) << en.error;
  EXPECT_NE(en.result_json.find("\"engine\": \"enumerative\""),
            std::string::npos);

  // Same model, symbolic engine: a distinct cache entry, same verdict.
  req.options.engine = core::Engine::Symbolic;
  const Response sy = svc.handle(req);
  ASSERT_TRUE(sy.ok) << sy.error;
  EXPECT_FALSE(sy.cached);
  EXPECT_EQ(sy.outcome, core::Outcome::Schedulable);
  EXPECT_NE(sy.result_json.find("\"engine\": \"symbolic\""),
            std::string::npos);
  EXPECT_EQ(sy.fingerprint, en.fingerprint);  // model text is identical
  EXPECT_EQ(stat(stats_of(svc), "cache", "entries"), 2);

  // And the symbolic entry serves warm afterwards, bytes verbatim.
  const Response warm = svc.handle(req);
  EXPECT_TRUE(warm.cached);
  EXPECT_EQ(warm.result_json, sy.result_json);
}

TEST(Service, SymbolicRunsAreReportedInStats) {
  Service svc;
  Request req = analyze(tiny_model(2, 10, 10));
  req.options.engine = core::Engine::Symbolic;
  ASSERT_TRUE(svc.handle(req).ok);
  const auto s = stats_of(svc);
  EXPECT_EQ(stat(s, "symbolic", "runs"), 1);
  EXPECT_GT(stat(s, "symbolic", "zones"), 0);
  EXPECT_EQ(stat(s, "symbolic", "max_dbm_dimension"), 2);  // 1 clock + ref

  // A cache hit is not a run: the counters stay put.
  ASSERT_TRUE(svc.handle(req).cached);
  EXPECT_EQ(stat(stats_of(svc), "symbolic", "runs"), 1);
}

TEST(Service, ForceEngineRewritesTheRequestBeforeTheCacheKey) {
  ServiceConfig cfg;
  cfg.force_engine = core::Engine::Symbolic;
  Service svc(cfg);

  // One request asks for nothing, the other explicitly for enumerative;
  // the daemon-level override rewrites both to symbolic BEFORE key
  // computation, so the second is a warm hit on the first's entry.
  Request plain = analyze(tiny_model(2, 10, 10));
  const Response first = svc.handle(plain);
  ASSERT_TRUE(first.ok) << first.error;
  EXPECT_NE(first.result_json.find("\"engine\": \"symbolic\""),
            std::string::npos);

  Request explicit_enum = analyze(tiny_model(2, 10, 10));
  explicit_enum.options.engine = core::Engine::Enumerative;
  const Response second = svc.handle(explicit_enum);
  ASSERT_TRUE(second.ok);
  EXPECT_TRUE(second.cached);
  EXPECT_EQ(second.result_json, first.result_json);
  EXPECT_EQ(stat(stats_of(svc), "cache", "entries"), 1);
}

TEST(Service, EngineFieldRoundTripsThroughTheProtocol) {
  Service svc;
  Request req = analyze(tiny_model(2, 10, 10), "e1");
  req.options.engine = core::Engine::Symbolic;
  const std::string line = server::render_request(req);
  EXPECT_NE(line.find("\"engine\": \"symbolic\""), std::string::npos);

  std::string err;
  const auto parsed = server::parse_request(line, err);
  ASSERT_TRUE(parsed.has_value()) << err;
  EXPECT_EQ(parsed->options.engine, core::Engine::Symbolic);

  const std::string out = svc.handle_line(line);
  const auto resp = server::parse_response(out, err);
  ASSERT_TRUE(resp.has_value()) << err;
  EXPECT_TRUE(resp->ok);
  EXPECT_NE(resp->result_json.find("\"engine\": \"symbolic\""),
            std::string::npos);
}

TEST(Service, UnknownEngineValueIsAProtocolError) {
  Service svc;
  std::string line =
      server::render_request(analyze(tiny_model(2, 10, 10), "bad"));
  const std::string key = "\"engine\": \"enumerative\"";
  const auto pos = line.find(key);
  ASSERT_NE(pos, std::string::npos);
  line.replace(pos, key.size(), "\"engine\": \"zonal\"");

  std::string err;
  const auto resp = server::parse_response(svc.handle_line(line), err);
  ASSERT_TRUE(resp.has_value()) << err;
  EXPECT_FALSE(resp->ok);
  EXPECT_NE(resp->error.find("options.engine"), std::string::npos);
  EXPECT_EQ(stat(stats_of(svc), "protocol_errors"), 1);
}

// --- admission policy ---------------------------------------------------

TEST(AdmissionQueue, SmallBurstThenLarge) {
  server::AdmissionQueue q(2);
  // s=small tickets 1,2,4,5,7,8; l=large 3,6
  q.push(1, true);
  q.push(2, true);
  q.push(3, false);
  q.push(4, true);
  q.push(5, true);
  q.push(6, false);
  q.push(7, true);
  q.push(8, true);
  std::vector<std::uint64_t> order;
  while (auto t = q.pop()) order.push_back(*t);
  // Two smalls per large while a large is waiting; pure-small tail is FIFO.
  EXPECT_EQ(order, (std::vector<std::uint64_t>{1, 2, 3, 4, 5, 6, 7, 8}));
}

TEST(AdmissionQueue, PureSmallWorkloadNeverStalls) {
  server::AdmissionQueue q(2);
  for (std::uint64_t t = 1; t <= 5; ++t) q.push(t, true);
  for (std::uint64_t t = 1; t <= 5; ++t) EXPECT_EQ(q.pop(), t);
  // The all-small prefix must not have consumed the burst: a large arriving
  // now with fresh smalls still waits at most `burst` of them.
  q.push(10, false);
  q.push(11, true);
  q.push(12, true);
  q.push(13, true);
  EXPECT_EQ(q.pop(), 11u);
  EXPECT_EQ(q.pop(), 12u);
  EXPECT_EQ(q.pop(), 10u);  // burst spent, large admitted
  EXPECT_EQ(q.pop(), 13u);
  EXPECT_EQ(q.pop(), std::nullopt);
}

// --- metrics latency window (bugfix) ------------------------------------

// p50/p95 are computed over only the last kLatencyRing (4096) samples while
// `samples` counts all-time; the snapshot and the stats JSON must say so
// explicitly. Overfill the ring with a slow prefix that the window must
// forget: percentiles reflect only the fast tail, max stays all-time.
TEST(Metrics, LatencyWindowIsExplicitWhenTheRingOverfills) {
  server::Metrics m;
  constexpr std::size_t kRing = 4096;
  constexpr std::size_t kSlowPrefix = 1000;
  for (std::size_t i = 0; i < kSlowPrefix; ++i) m.record_latency_ms(500.0);
  for (std::size_t i = 0; i < kRing; ++i) m.record_latency_ms(1.0);

  const server::StatsSnapshot s = m.snapshot({});
  EXPECT_EQ(s.latency_samples, kSlowPrefix + kRing);  // all-time
  EXPECT_EQ(s.latency_window, kRing);                 // percentile scope
  EXPECT_DOUBLE_EQ(s.p50_ms, 1.0);   // the slow prefix left the window
  EXPECT_DOUBLE_EQ(s.p95_ms, 1.0);
  EXPECT_DOUBLE_EQ(s.max_ms, 500.0);  // max is all-time, not windowed

  const std::string json = s.render_json();
  EXPECT_NE(json.find("\"samples\": 5096"), std::string::npos) << json;
  EXPECT_NE(json.find("\"window\": 4096"), std::string::npos) << json;
}

// Under-filled ring: the window equals the sample count, so percentiles
// and the counter describe the same population.
TEST(Metrics, LatencyWindowEqualsSamplesBeforeOverflow) {
  server::Metrics m;
  for (int i = 0; i < 10; ++i) m.record_latency_ms(2.0);
  const server::StatsSnapshot s = m.snapshot({});
  EXPECT_EQ(s.latency_samples, 10u);
  EXPECT_EQ(s.latency_window, 10u);
  EXPECT_DOUBLE_EQ(s.p50_ms, 2.0);
}

TEST(AdmissionQueue, LargeOnlyIsFifo) {
  server::AdmissionQueue q(4);
  q.push(1, false);
  q.push(2, false);
  EXPECT_EQ(q.pop(), 1u);
  EXPECT_EQ(q.pop(), 2u);
}

// --- concurrent mixed workload (tsan label) -----------------------------

TEST(Service, ConcurrentMixedWorkload) {
  ServiceConfig cfg;
  cfg.workers = 2;
  Service svc(cfg);

  const std::string sched = tiny_model(2, 10, 10);
  const std::string notsched = tiny_model(12, 10, 10);
  const std::string storm = storm_text();

  constexpr int kThreads = 4;
  constexpr int kIters = 6;
  std::atomic<int> wrong{0};
  std::atomic<bool> sampling{true};

  // Stats sampler: every counter is cumulative and must never decrease,
  // whatever the worker threads are doing.
  std::thread sampler([&] {
    std::int64_t last_requests = 0, last_runs = 0, last_hits = 0,
                 last_misses = 0;
    while (sampling.load(std::memory_order_relaxed)) {
      const auto s = stats_of(svc);
      const std::int64_t requests = stat(s, "requests");
      const std::int64_t runs = stat(s, "analyses_run");
      const std::int64_t hits = stat(s, "cache", "hits_memory");
      const std::int64_t misses = stat(s, "cache", "misses");
      if (requests < last_requests || runs < last_runs || hits < last_hits ||
          misses < last_misses)
        ++wrong;
      last_requests = requests;
      last_runs = runs;
      last_hits = hits;
      last_misses = misses;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  std::vector<std::thread> clients;
  std::atomic<int> lost{0};
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        Request req;
        core::Outcome expect{};
        switch ((t + i) % 4) {
          case 0:
            req = analyze(sched);
            expect = core::Outcome::Schedulable;
            break;
          case 1:
            req = analyze(notsched);
            expect = core::Outcome::NotSchedulable;
            break;
          case 2:
            req = analyze(storm, "", "Storm.impl");
            req.options.max_states = 300;  // tight budget, always truncated
            expect = core::Outcome::Inconclusive;
            break;
          case 3:
            req = analyze("garbage!");
            expect = core::Outcome::Error;
            break;
        }
        req.id = std::to_string(t) + "-" + std::to_string(i);
        const Response resp = svc.handle(req);
        if (!resp.ok || resp.id != req.id) ++lost;
        if (resp.outcome != expect) ++wrong;
        if (resp.result_json.empty()) ++lost;
      }
    });
  }
  for (auto& c : clients) c.join();
  sampling = false;
  sampler.join();

  EXPECT_EQ(lost.load(), 0);
  EXPECT_EQ(wrong.load(), 0);

  const auto s = stats_of(svc);
  constexpr int kTotal = kThreads * kIters;  // 6 per kind
  EXPECT_EQ(stat(s, "analyze_requests"), kTotal);
  EXPECT_EQ(stat(s, "outcomes", "schedulable"), kTotal / 4);
  EXPECT_EQ(stat(s, "outcomes", "not_schedulable"), kTotal / 4);
  EXPECT_EQ(stat(s, "outcomes", "inconclusive"), kTotal / 4);
  EXPECT_EQ(stat(s, "outcomes", "error"), kTotal / 4);
  // Exact conservation law: every non-error analyze request was served by
  // exactly one of a cache hit, a coalesced in-flight run, or its own
  // exploration. No response was lost, none was double-served.
  EXPECT_EQ(stat(s, "cache", "hits_memory") + stat(s, "coalesced") +
                stat(s, "analyses_run"),
            kTotal - kTotal / 4);  // errors never reach the cache or a worker
  EXPECT_EQ(stat(s, "protocol_errors"), 0);
  EXPECT_GT(stat(s, "latency", "samples"), 0);

  // Gauges drain once the queue is empty; give the workers a beat.
  for (int i = 0; i < 200 && (stat(stats_of(svc), "in_flight") != 0 ||
                              stat(stats_of(svc), "queue_depth") != 0);
       ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  const auto fin = stats_of(svc);
  EXPECT_EQ(stat(fin, "in_flight"), 0);
  EXPECT_EQ(stat(fin, "queue_depth"), 0);
}

}  // namespace
