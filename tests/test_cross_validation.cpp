// E1: cross-validation of the paper's central claim — "the resulting ACSR
// model is deadlock-free if and only if every task meets its deadline" (§5).
//
// For independent synchronous periodic task sets, three independent
// decision procedures must agree with the exploration verdict:
//   * exact response-time analysis (fixed priorities),
//   * EDF processor-demand analysis,
//   * the discrete-time hyperperiod simulator.
// Task sets are randomly generated; WCET-only (bcet == wcet) keeps the
// comparison exact (the analyses are WCET-based, while the exploration
// covers the whole [bcet, wcet] range).
#include <gtest/gtest.h>

#include "acsr/semantics.hpp"
#include "aadl/parser.hpp"
#include "core/taskset_aadl.hpp"
#include "sched/analysis.hpp"
#include "sched/simulator.hpp"
#include "sched/workload.hpp"
#include "translate/translator.hpp"
#include "versa/explorer.hpp"

using namespace aadlsched;

namespace {

/// Explore a task set through the full AADL pipeline; returns the
/// schedulability verdict.
bool explore_verdict(const sched::TaskSet& ts,
                     sched::SchedulingPolicy policy) {
  const std::string src = core::taskset_to_aadl(ts, policy);
  aadl::Model model;
  util::DiagnosticEngine diags;
  EXPECT_TRUE(aadl::parse_aadl(model, src, diags)) << diags.render_all();
  auto inst = aadl::instantiate(model, "Root.impl", diags);
  EXPECT_NE(inst, nullptr);
  acsr::Context ctx;
  translate::TranslateOptions opts;
  opts.quantum_ns = 1'000'000;
  auto tr = translate::translate(ctx, *inst, diags, opts);
  EXPECT_TRUE(tr.has_value()) << diags.render_all();
  acsr::Semantics sem(ctx);
  const auto r = versa::explore(sem, tr->initial);
  EXPECT_TRUE(r.complete || r.deadlock_found);
  return r.schedulable();
}

sched::TaskSet small_workload(std::uint64_t seed, double utilization,
                              double deadline_fraction = 1.0) {
  sched::WorkloadSpec spec;
  spec.task_count = 3;
  spec.total_utilization = utilization;
  spec.deadline_fraction = deadline_fraction;
  spec.periods = {3, 4, 5, 6, 8};  // small hyperperiods keep exploration fast
  return sched::generate_workload(spec, seed);
}

class CrossValidation : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CrossValidation, FixedPriorityMatchesRtaAndSimulator) {
  sched::TaskSet ts = small_workload(GetParam(), 0.85);
  sched::assign_rate_monotonic(ts);
  const bool rta =
      sched::response_time_analysis(ts).verdict ==
      sched::Verdict::Schedulable;
  const bool sim = sched::simulate(ts).schedulable;
  const bool acsr =
      explore_verdict(ts, sched::SchedulingPolicy::FixedPriority);
  EXPECT_EQ(rta, sim) << "seed " << GetParam();
  EXPECT_EQ(acsr, rta) << "seed " << GetParam();
}

TEST_P(CrossValidation, EdfMatchesDemandAnalysisAndSimulator) {
  const sched::TaskSet ts = small_workload(GetParam(), 0.9, 0.8);
  const bool pda = sched::edf_demand_analysis(ts).verdict ==
                   sched::Verdict::Schedulable;
  sched::SimOptions so;
  so.policy = sched::SchedulingPolicy::Edf;
  const bool sim = sched::simulate(ts, so).schedulable;
  const bool acsr = explore_verdict(ts, sched::SchedulingPolicy::Edf);
  EXPECT_EQ(pda, sim) << "seed " << GetParam();
  EXPECT_EQ(acsr, pda) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrossValidation,
                         ::testing::Range<std::uint64_t>(1, 31));

TEST(CrossValidationEdge, FullUtilizationHarmonicRm) {
  // U = 1 with harmonic periods: RM schedulable; every procedure agrees.
  sched::TaskSet ts;
  sched::Task a;
  a.name = "a";
  a.wcet = a.bcet = 1;
  a.period = a.deadline = 2;
  sched::Task b;
  b.name = "b";
  b.wcet = b.bcet = 2;
  b.period = b.deadline = 4;
  ts.tasks = {a, b};
  sched::assign_rate_monotonic(ts);
  EXPECT_EQ(sched::response_time_analysis(ts).verdict,
            sched::Verdict::Schedulable);
  EXPECT_TRUE(sched::simulate(ts).schedulable);
  EXPECT_TRUE(explore_verdict(ts, sched::SchedulingPolicy::FixedPriority));
}

TEST(CrossValidationEdge, ExecutionTimeRangeIsConservative) {
  // With bcet < wcet the exploration covers early completions as well; on
  // independent periodic tasks this cannot flip a WCET-schedulable verdict
  // (no anomalies without resource sharing / non-preemption).
  sched::TaskSet ts;
  sched::Task a;
  a.name = "a";
  a.bcet = 1;
  a.wcet = 2;
  a.period = a.deadline = 4;
  sched::Task b;
  b.name = "b";
  b.bcet = 1;
  b.wcet = 3;
  b.period = b.deadline = 8;
  ts.tasks = {a, b};
  sched::assign_rate_monotonic(ts);
  EXPECT_EQ(sched::response_time_analysis(ts).verdict,
            sched::Verdict::Schedulable);
  EXPECT_TRUE(explore_verdict(ts, sched::SchedulingPolicy::FixedPriority));
}

TEST(CrossValidationEdge, MultiprocessorPartitioning) {
  // Two processors, each overloaded alone but fine partitioned.
  sched::TaskSet ts;
  for (int i = 0; i < 2; ++i) {
    sched::Task t;
    t.name = "t" + std::to_string(i);
    t.wcet = t.bcet = 3;
    t.period = t.deadline = 4;
    t.priority = 1;
    t.processor = i;
    ts.tasks.push_back(t);
  }
  EXPECT_TRUE(explore_verdict(ts, sched::SchedulingPolicy::FixedPriority));
  // Same two tasks on one processor: U = 1.5, unschedulable.
  ts.tasks[1].processor = 0;
  ts.tasks[1].priority = 2;
  EXPECT_FALSE(explore_verdict(ts, sched::SchedulingPolicy::FixedPriority));
}

}  // namespace
