#!/usr/bin/env bash
# End-to-end acceptance for the analysis service (DESIGN.md §11), driven by
# ctest (service_smoke) and the CI service job:
#
#   1. start aadlschedd on an ephemeral port with a disk cache dir
#   2. submit the example models via `aadlsched --connect` (cold)
#   3. submit them again — every result must be byte-identical and --stats
#      must show one cache hit per model
#   4. shut the daemon down over the protocol
#   5. start a SECOND daemon on the same --cache-dir and submit again: the
#      verdicts must come from the disk tier without re-exploring
#   6. budget-bound a model so it stops Inconclusive with a stored
#      checkpoint, restart the daemon, and `--resume` with a larger budget:
#      the resumed verdict must be conclusive, report the resumed depth, and
#      match a cold uncached run byte-for-byte (explore_ms aside)
#
# Usage: service_smoke.sh <aadlschedd-binary> <aadlsched-binary> <models-dir>
set -u

daemon=$1
cli=$2
models=$3

work=$(mktemp -d)
daemon_pid=""
cleanup() {
  [ -n "$daemon_pid" ] && kill "$daemon_pid" 2>/dev/null
  wait 2>/dev/null
  rm -rf "$work"
}
trap cleanup EXIT

fail() {
  echo "FAIL: $*"
  [ -f "$work/daemon.log" ] && { echo "--- daemon log ---"; cat "$work/daemon.log"; }
  exit 1
}

start_daemon() {
  "$daemon" --port 0 --cache-dir "$work/cache" "$@" \
    >"$work/daemon.out" 2>"$work/daemon.log" &
  daemon_pid=$!
  # The daemon prints exactly one discovery line on stdout once bound.
  for _ in $(seq 1 100); do
    line=$(head -n1 "$work/daemon.out" 2>/dev/null)
    [ -n "$line" ] && break
    kill -0 "$daemon_pid" 2>/dev/null || fail "daemon died on startup"
    sleep 0.1
  done
  endpoint=${line#aadlschedd listening on }
  [ "$endpoint" != "$line" ] || fail "unexpected discovery line: $line"
  echo "daemon $daemon_pid at $endpoint"
}

stop_daemon() {
  "$cli" --connect "$endpoint" --shutdown >/dev/null \
    || fail "protocol shutdown request failed"
  wait "$daemon_pid"
  rc=$?
  daemon_pid=""
  [ "$rc" -eq 0 ] || fail "daemon exited $rc (expected 0)"
}

stat_field() {  # stat_field <name> — first integer value of "name" in stats
  "$cli" --connect "$endpoint" --stats 2>/dev/null \
    | grep -o "\"$1\": [0-9]*" | head -n1 | grep -o '[0-9]*$'
}

ckpt_field() {  # ckpt_field <name> — value of "name" inside "checkpoints"
  # "stores"/"misses"/"entries" also appear in the "cache" object, so pull
  # the checkpoints sub-object out before matching.
  "$cli" --connect "$endpoint" --stats 2>/dev/null \
    | sed -n 's/.*"checkpoints": {\([^}]*\)}.*/\1/p' \
    | grep -o "\"$1\": [0-9]*" | head -n1 | grep -o '[0-9]*$'
}

# Three shipped example models (including the symmetric reduction fixture)
# plus a generated overload (NotSchedulable): only conclusive verdicts are
# cached (DESIGN.md §11), so every smoke model must reach one. storm.aadl
# is budget-bound by design and stays out.
cat >"$work/overload.aadl" <<'EOF'
package Overload
public
  processor CPU
  properties
    Scheduling_Protocol => RATE_MONOTONIC_PROTOCOL;
  end CPU;
  thread T
  end T;
  thread implementation T.impl
  properties
    Dispatch_Protocol => Periodic;
    Period => 10 ms;
    Compute_Execution_Time => 12 ms .. 12 ms;
    Deadline => 10 ms;
  end T.impl;
  system App
  end App;
  system implementation App.impl
  subcomponents
    t : thread T.impl;
  end App.impl;
  system Root
  end Root;
  system implementation Root.impl
  subcomponents
    app : system App.impl;
    cpu : processor CPU;
  properties
    Actual_Processor_Binding => reference (cpu) applies to app;
  end Root.impl;
end Overload;
EOF

names=(cruise_control avionics overload symmetric)
files=("$models/cruise_control.aadl" "$models/avionics.aadl" "$work/overload.aadl" "$models/symmetric.aadl")
roots=(CruiseControlSystem.impl Avionics.impl Root.impl Symmetric.impl)

submit_all() {  # submit_all <round-tag>
  for i in 0 1 2 3; do
    "$cli" --connect "$endpoint" "${files[$i]}" "${roots[$i]}" \
      2>"$work/${names[$i]}.$1.err" >"$work/${names[$i]}.$1.json"
    echo "  ${names[$i]} ($1): exit $?, $(cat "$work/${names[$i]}.$1.err")"
  done
}

echo "=== round 1: cold daemon ==="
start_daemon
submit_all cold

hits=$(stat_field hits_memory)
misses=$(stat_field misses)
[ "${hits:-x}" = 0 ] || fail "expected 0 cache hits after cold round, got '$hits'"
[ "${misses:-0}" -ge 4 ] || fail "expected >= 4 misses after cold round, got '$misses'"

echo "=== round 2: warm memory cache ==="
submit_all warm
hits=$(stat_field hits_memory)
[ "${hits:-0}" -ge 4 ] || fail "expected >= 4 cache hits after warm round, got '$hits'"
for n in "${names[@]}"; do
  cmp -s "$work/$n.cold.json" "$work/$n.warm.json" \
    || fail "$n: cached result is not byte-identical to the cold result"
  grep -q "cached: memory" "$work/$n.warm.err" \
    || fail "$n: warm round was not served from the memory tier"
done

stop_daemon

echo "=== round 3: fresh daemon, same disk cache ==="
start_daemon
submit_all disk
runs=$(stat_field analyses_run)
[ "${runs:-x}" = 0 ] || fail "restarted daemon re-explored ($runs runs) instead of serving from disk"
for n in "${names[@]}"; do
  cmp -s "$work/$n.cold.json" "$work/$n.disk.json" \
    || fail "$n: disk-tier result is not byte-identical to the cold result"
  grep -q "cached: disk" "$work/$n.disk.err" \
    || fail "$n: restart round was not served from the disk tier"
done
stop_daemon

echo "=== round 4: budget-bound run resumes across a daemon restart ==="
# A fresh cache dir so round 3's cached cruise_control verdict cannot serve
# the request — this round must actually explore, bound, checkpoint, resume.
rm -rf "$work/cache"
start_daemon

# cruise_control has 65k reachable states; a 20k bound stops Inconclusive.
"$cli" --connect "$endpoint" --max-states 20000 \
  "$models/cruise_control.aadl" CruiseControlSystem.impl \
  2>"$work/cruise.bound.err" >"$work/cruise.bound.json"
rc=$?
[ "$rc" -eq 3 ] || fail "bounded run: expected exit 3 (inconclusive), got $rc"
grep -q "checkpoint captured" "$work/cruise.bound.err" \
  || fail "bounded run did not report a captured checkpoint"
stores=$(ckpt_field stores)
[ "${stores:-0}" -ge 1 ] || fail "expected >= 1 checkpoint store, got '$stores'"

stop_daemon

start_daemon
"$cli" --connect "$endpoint" --resume \
  "$models/cruise_control.aadl" CruiseControlSystem.impl \
  2>"$work/cruise.resumed.err" >"$work/cruise.resumed.json"
rc=$?
[ "$rc" -eq 0 ] || fail "resumed run: expected exit 0 (schedulable), got $rc"
grep -q "resumed from depth" "$work/cruise.resumed.err" \
  || fail "resumed run did not report the resume depth"
hits=$(ckpt_field hits)
[ "${hits:-x}" = 1 ] || fail "expected 1 checkpoint hit after resume, got '$hits'"
entries=$(ckpt_field entries)
[ "${entries:-x}" = 0 ] \
  || fail "conclusive resume should erase the checkpoint, got $entries entries"

# The resumed verdict must equal a cold uncached run up to explore_ms.
"$cli" --connect "$endpoint" --no-cache \
  "$models/cruise_control.aadl" CruiseControlSystem.impl \
  2>"$work/cruise.cold4.err" >"$work/cruise.cold4.json"
[ $? -eq 0 ] || fail "cold control run failed"
norm() { sed 's/"explore_ms": [0-9.]*/"explore_ms": X/' "$1"; }
[ "$(norm "$work/cruise.resumed.json")" = "$(norm "$work/cruise.cold4.json")" ] \
  || fail "resumed verdict differs from the cold run beyond explore_ms"
stop_daemon

echo "PASS: cache hits on resubmit, byte-identical results, disk tier survives restart, budget-bound runs resume across restart"
