#!/usr/bin/env bash
# SIGINT acceptance check (DESIGN.md §10): interrupting a long exploration
# must produce the same structured partial summary as any other budget stop
# — INCONCLUSIVE (cancelled) with states/depth — and exit code 3, not a
# blank death. Driven by ctest (aadlsched_sigint_partial_summary).
#
# Usage: sigint_partial.sh <aadlsched-binary> <model.aadl> <Root.impl>
set -u

bin=$1
model=$2
root=$3

tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT

"$bin" "$model" "$root" --no-lint >"$tmp" 2>&1 &
pid=$!

# Let exploration get going, then interrupt it mid-run. storm.aadl takes
# tens of seconds to exhaust, so one second guarantees we land mid-run.
sleep 1
kill -INT "$pid"
wait "$pid"
rc=$?

echo "--- aadlsched output ---"
cat "$tmp"
echo "--- exit code: $rc ---"

if [ "$rc" -ne 3 ]; then
  echo "FAIL: expected exit code 3 (inconclusive), got $rc"
  exit 1
fi
if ! grep -q "INCONCLUSIVE (cancelled)" "$tmp"; then
  echo "FAIL: partial summary missing 'INCONCLUSIVE (cancelled)'"
  exit 1
fi
if ! grep -q "states" "$tmp"; then
  echo "FAIL: partial summary reports no state count"
  exit 1
fi
echo "PASS: SIGINT produced a usable partial summary"
