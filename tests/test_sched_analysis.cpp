// Tests for the analytical baselines: utilization bounds, exact RTA, EDF
// demand analysis and QPA — including textbook reference values and
// property-based agreement between the two EDF procedures.
#include <gtest/gtest.h>

#include <cmath>

#include "sched/analysis.hpp"
#include "sched/workload.hpp"

using namespace aadlsched::sched;

namespace {

Task mk(const char* name, Time c, Time t, Time d = 0, int prio = 0) {
  Task task;
  task.name = name;
  task.wcet = c;
  task.period = t;
  task.deadline = d == 0 ? t : d;
  task.priority = prio;
  return task;
}

TEST(Bounds, LiuLaylandValues) {
  EXPECT_DOUBLE_EQ(liu_layland_bound(1), 1.0);
  EXPECT_NEAR(liu_layland_bound(2), 0.8284, 1e-3);
  EXPECT_NEAR(liu_layland_bound(3), 0.7798, 1e-3);
  // n -> infinity: ln 2.
  EXPECT_NEAR(liu_layland_bound(100000), std::log(2.0), 1e-4);
}

TEST(Bounds, RmUtilizationTest) {
  TaskSet ts;
  ts.tasks = {mk("a", 1, 4), mk("b", 1, 5)};  // U = 0.45 < 0.828
  EXPECT_EQ(rm_utilization_test(ts), Verdict::Schedulable);
  ts.tasks = {mk("a", 2, 4), mk("b", 2, 5)};  // U = 0.9 > bound
  EXPECT_EQ(rm_utilization_test(ts), Verdict::Unknown);
}

TEST(Bounds, HyperbolicDominatesLiuLayland) {
  // Classic example where LL fails but the hyperbolic bound passes:
  // harmonic-ish utilizations.
  TaskSet ts;
  ts.tasks = {mk("a", 1, 2), mk("b", 1, 4), mk("c", 1, 8)};
  // U = 0.875 > LL(3) = 0.7798, but prod(1+U_i) = 1.5*1.25*1.125 = 2.109...
  EXPECT_EQ(rm_utilization_test(ts), Verdict::Unknown);
  // 2.109 > 2 so hyperbolic also fails here; use a set where it passes:
  ts.tasks = {mk("a", 2, 5), mk("b", 2, 5)};  // U = 0.8 > LL(2) = 0.828? no:
  // 0.8 < 0.828 so LL passes; construct U where LL fails, HB passes:
  ts.tasks = {mk("a", 1, 2), mk("b", 1, 3), mk("c", 1, 12)};
  // U = 0.5+0.333+0.083 = 0.9167 > LL(3); prod = 1.5*1.3333*1.0833 = 2.1666
  EXPECT_EQ(hyperbolic_bound_test(ts), Verdict::Unknown);
  // A genuinely HB-passing, LL-failing set:
  ts.tasks = {mk("a", 4, 8), mk("b", 1, 4), mk("c", 1, 16)};
  // U = 0.5 + 0.25 + 0.0625 = 0.8125 > LL(3) = 0.7798
  // prod = 1.5 * 1.25 * 1.0625 = 1.9922 <= 2
  EXPECT_EQ(rm_utilization_test(ts), Verdict::Unknown);
  EXPECT_EQ(hyperbolic_bound_test(ts), Verdict::Schedulable);
}

TEST(Rta, TextbookExample) {
  // Classic RM example: (C=1,T=4), (C=2,T=5), (C=5,T=20); U = 0.9.
  TaskSet ts;
  ts.tasks = {mk("t1", 1, 4, 0, 3), mk("t2", 2, 5, 0, 2),
              mk("t3", 5, 20, 0, 1)};
  const auto r = response_time_analysis(ts);
  EXPECT_EQ(r.verdict, Verdict::Schedulable);
  ASSERT_EQ(r.response.size(), 3u);
  EXPECT_EQ(r.response[0], 1);
  EXPECT_EQ(r.response[1], 3);
  EXPECT_EQ(r.response[2], 15);
}

TEST(Rta, DetectsMiss) {
  TaskSet ts;
  ts.tasks = {mk("t1", 2, 4, 0, 2), mk("t2", 3, 6, 0, 1)};
  // U = 1.0; t2's response: 3 + ceil(R/4)*2 -> R = 3+2=5, 3+4=7, 3+4=7;
  // R = 7 > D = 6.
  const auto r = response_time_analysis(ts);
  EXPECT_EQ(r.verdict, Verdict::Unschedulable);
  EXPECT_EQ(r.response[0], 2);
  // The fixed point was abandoned once it passed the deadline.
  EXPECT_EQ(r.response[1], -1);
}

TEST(Rta, BlockingTermShiftsResponse) {
  TaskSet ts;
  ts.tasks = {mk("t1", 1, 10, 0, 2), mk("t2", 2, 10, 0, 1)};
  const std::vector<Time> blocking = {3, 0};
  const auto r = response_time_analysis(ts, &blocking);
  EXPECT_EQ(r.response[0], 4);  // 1 + B = 4
  EXPECT_EQ(r.response[1], 3);  // 2 + interference 1
}

TEST(Rta, PriorityTieBrokenByIndex) {
  TaskSet ts;
  ts.tasks = {mk("t1", 2, 10, 0, 1), mk("t2", 2, 10, 0, 1)};
  const auto r = response_time_analysis(ts);
  EXPECT_EQ(r.response[0], 2);  // index 0 wins ties
  EXPECT_EQ(r.response[1], 4);
}

TEST(Edf, UtilizationTestExactForImplicit) {
  TaskSet ts;
  ts.tasks = {mk("a", 2, 4), mk("b", 2, 4)};  // U = 1.0
  EXPECT_EQ(edf_utilization_test(ts), Verdict::Schedulable);
  ts.tasks = {mk("a", 3, 4), mk("b", 2, 4)};  // U = 1.25
  EXPECT_EQ(edf_utilization_test(ts), Verdict::Unschedulable);
}

TEST(Edf, DemandAnalysisConstrainedDeadlines) {
  TaskSet ts;
  // D < T makes utilization insufficient; demand analysis is needed.
  ts.tasks = {mk("a", 2, 8, 4), mk("b", 3, 12, 6)};
  EXPECT_EQ(edf_demand_analysis(ts).verdict, Verdict::Schedulable);
  // Tighten deadlines until infeasible: both jobs demand 5 quanta by t=4.
  ts.tasks = {mk("a", 2, 8, 4), mk("b", 3, 12, 4)};
  const auto r = edf_demand_analysis(ts);
  EXPECT_EQ(r.verdict, Verdict::Unschedulable);
  ASSERT_TRUE(r.overflow_point.has_value());
  EXPECT_EQ(*r.overflow_point, 4);
}

TEST(Edf, DemandBoundFunctionValues) {
  TaskSet ts;
  ts.tasks = {mk("a", 2, 8, 4)};
  EXPECT_EQ(demand_bound(ts, 3), 0);
  EXPECT_EQ(demand_bound(ts, 4), 2);
  EXPECT_EQ(demand_bound(ts, 11), 2);
  EXPECT_EQ(demand_bound(ts, 12), 4);
}

TEST(Edf, RmSchedulableImpliesEdfSchedulable) {
  // Any RTA-schedulable fixed-priority set is EDF-schedulable (optimality).
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    WorkloadSpec spec;
    spec.task_count = 4;
    spec.total_utilization = 0.85;
    TaskSet ts = generate_workload(spec, seed);
    assign_rate_monotonic(ts);
    if (response_time_analysis(ts).verdict == Verdict::Schedulable) {
      EXPECT_EQ(edf_demand_analysis(ts).verdict, Verdict::Schedulable)
          << "seed " << seed;
    }
  }
}

// Property: QPA and full processor-demand analysis always agree — on the
// verdict AND on the first overflow point (the certificate machinery in
// src/lint renders whichever procedure ran, so a disagreement would make
// witnesses depend on the traversal direction). Swept across utilizations
// from comfortable to overloaded, with constrained deadlines throughout.
class EdfAgreement : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EdfAgreement, QpaMatchesFullDemandAnalysis) {
  for (const double u : {0.6, 0.85, 0.95, 1.1}) {
    for (const double df : {0.4, 0.6, 1.0}) {
      WorkloadSpec spec;
      spec.task_count = 4;
      spec.total_utilization = u;
      spec.deadline_fraction = df;  // < 1: deadline < period
      const TaskSet ts = generate_workload(spec, GetParam());
      const EdfResult qpa = edf_qpa(ts);
      const EdfResult full = edf_demand_analysis(ts);
      EXPECT_EQ(qpa.verdict, full.verdict)
          << "seed " << GetParam() << " U=" << u << " df=" << df;
      ASSERT_EQ(qpa.overflow_point.has_value(),
                full.overflow_point.has_value())
          << "seed " << GetParam() << " U=" << u << " df=" << df;
      if (qpa.overflow_point)
        EXPECT_EQ(*qpa.overflow_point, *full.overflow_point)
            << "seed " << GetParam() << " U=" << u << " df=" << df;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EdfAgreement,
                         ::testing::Range<std::uint64_t>(1, 60));

TEST(TaskSetOps, UtilizationAndHyperperiod) {
  TaskSet ts;
  ts.tasks = {mk("a", 1, 4), mk("b", 2, 10)};
  EXPECT_NEAR(ts.utilization(), 0.45, 1e-12);
  EXPECT_EQ(ts.hyperperiod(), 20);
  EXPECT_TRUE(ts.implicit_deadlines());
  ts.tasks[0].deadline = 3;
  EXPECT_TRUE(ts.constrained_deadlines());
  EXPECT_FALSE(ts.implicit_deadlines());
}

TEST(TaskSetOps, ProcessorPartition) {
  TaskSet ts;
  ts.tasks = {mk("a", 1, 4), mk("b", 2, 10)};
  ts.tasks[1].processor = 1;
  EXPECT_EQ(ts.on_processor(0).tasks.size(), 1u);
  EXPECT_EQ(ts.on_processor(1).tasks[0].name, "b");
}

TEST(PriorityAssignment, RateMonotonicOrdersByPeriod) {
  TaskSet ts;
  ts.tasks = {mk("slow", 1, 20), mk("fast", 1, 5), mk("mid", 1, 10)};
  assign_rate_monotonic(ts);
  EXPECT_GT(ts.tasks[1].priority, ts.tasks[2].priority);
  EXPECT_GT(ts.tasks[2].priority, ts.tasks[0].priority);
  // Distinct priorities.
  EXPECT_NE(ts.tasks[0].priority, ts.tasks[1].priority);
}

TEST(PriorityAssignment, DeadlineMonotonicOrdersByDeadline) {
  TaskSet ts;
  ts.tasks = {mk("a", 1, 20, 6), mk("b", 1, 5, 5), mk("c", 1, 10, 10)};
  assign_deadline_monotonic(ts);
  EXPECT_GT(ts.tasks[1].priority, ts.tasks[0].priority);
  EXPECT_GT(ts.tasks[0].priority, ts.tasks[2].priority);
}

}  // namespace
