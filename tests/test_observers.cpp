// Tests for the §5 extensions: end-to-end latency observer processes
// ("an observer process can capture violations of an end-to-end latency
// constraint ... just like a dispatcher process, would deadlock if the
// output event is not observed by the flow deadline") and Dispatch_Offset
// phasing of periodic dispatchers.
#include <gtest/gtest.h>

#include "core/analyzer.hpp"
#include "core/taskset_aadl.hpp"

using namespace aadlsched;
using namespace aadlsched::core;

namespace {

AnalyzerOptions ms_opts() {
  AnalyzerOptions o;
  o.translation.quantum_ns = 1'000'000;
  return o;
}

std::string one_task(int c, int t) {
  sched::TaskSet ts;
  sched::Task task;
  task.name = "x";
  task.wcet = task.bcet = c;
  task.period = task.deadline = t;
  task.priority = 1;
  ts.tasks = {task};
  return core::taskset_to_aadl(ts, sched::SchedulingPolicy::FixedPriority);
}

TEST(LatencyObserver, ResponseTimeBoundHolds) {
  // Source == sink measures dispatch-to-completion (the response time).
  // C = 2 alone on a cpu: response is exactly 2.
  AnalyzerOptions opts = ms_opts();
  opts.translation.latency_specs.push_back(
      {"t0", "t0", 2 * 1'000'000});
  const auto r = analyze_source(one_task(2, 6), "Root.impl", opts);
  ASSERT_TRUE(r.ok) << r.diagnostics;
  EXPECT_TRUE(r.schedulable) << r.summary();
}

TEST(LatencyObserver, ResponseTimeBoundViolated) {
  AnalyzerOptions opts = ms_opts();
  opts.translation.latency_specs.push_back(
      {"t0", "t0", 1 * 1'000'000});  // response is 2 > 1
  const auto r = analyze_source(one_task(2, 6), "Root.impl", opts);
  ASSERT_TRUE(r.ok) << r.diagnostics;
  EXPECT_FALSE(r.schedulable);
  ASSERT_TRUE(r.scenario.has_value());
  bool latency_named = false;
  for (const auto& m : r.scenario->missed_threads)
    latency_named |= m.find("latency: t0 -> t0") != std::string::npos;
  EXPECT_TRUE(latency_named) << r.summary();
}

TEST(LatencyObserver, ChainLatency) {
  // Producer (C=1, T=6) -> sporadic consumer (C=1): end-to-end latency
  // from producer dispatch to consumer completion is 2 quanta on an idle
  // cpu. A bound of 2 holds, a bound of 1 is violated.
  const char* chain = R"(
    package Chain
    public
      processor Cpu
      properties
        Scheduling_Protocol => POSIX_1003_HIGHEST_PRIORITY_FIRST_PROTOCOL;
      end Cpu;
      thread Producer
      features
        evt : out event port;
      end Producer;
      thread implementation Producer.impl
      properties
        Dispatch_Protocol => Periodic;
        Period => 6 ms;
        Compute_Execution_Time => 1 ms .. 1 ms;
        Deadline => 6 ms;
        Priority => 2;
      end Producer.impl;
      thread Consumer
      features
        trig : in event port;
      end Consumer;
      thread implementation Consumer.impl
      properties
        Dispatch_Protocol => Sporadic;
        Period => 6 ms;
        Compute_Execution_Time => 1 ms .. 1 ms;
        Deadline => 6 ms;
        Priority => 1;
      end Consumer.impl;
      system R
      end R;
      system implementation R.impl
      subcomponents
        p   : thread Producer.impl;
        c   : thread Consumer.impl;
        cpu : processor Cpu;
      connections
        conn : port p.evt -> c.trig;
      properties
        Actual_Processor_Binding => reference (cpu) applies to p;
        Actual_Processor_Binding => reference (cpu) applies to c;
      end R.impl;
    end Chain;
  )";
  {
    AnalyzerOptions opts = ms_opts();
    opts.translation.latency_specs.push_back({"p", "c", 2 * 1'000'000});
    const auto r = analyze_source(chain, "R.impl", opts);
    ASSERT_TRUE(r.ok) << r.diagnostics;
    EXPECT_TRUE(r.schedulable) << r.summary();
  }
  {
    AnalyzerOptions opts = ms_opts();
    opts.translation.latency_specs.push_back({"p", "c", 1 * 1'000'000});
    const auto r = analyze_source(chain, "R.impl", opts);
    ASSERT_TRUE(r.ok) << r.diagnostics;
    EXPECT_FALSE(r.schedulable);
  }
}

TEST(LatencyObserver, UnknownThreadReported) {
  AnalyzerOptions opts = ms_opts();
  opts.translation.latency_specs.push_back({"ghost", "t0", 1'000'000});
  const auto r = analyze_source(one_task(1, 4), "Root.impl", opts);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.diagnostics.find("unknown thread"), std::string::npos);
}

TEST(LatencyObserver, ObserverDoesNotPerturbVerdict) {
  // A generous bound must leave the verdict untouched.
  AnalyzerOptions plain = ms_opts();
  AnalyzerOptions observed = ms_opts();
  observed.translation.latency_specs.push_back(
      {"t0", "t0", 100 * 1'000'000});
  const auto a = analyze_source(one_task(2, 5), "Root.impl", plain);
  const auto b = analyze_source(one_task(2, 5), "Root.impl", observed);
  EXPECT_EQ(a.schedulable, b.schedulable);
}

TEST(DispatchOffset, PhasingResolvesContention) {
  // Two C=1 T=2 D=1 threads on one cpu: synchronous release misses (one of
  // them is preempted past its deadline); offsetting the second by one
  // quantum interleaves them perfectly.
  const char* model = R"(
    package Phase
    public
      processor Cpu
      properties
        Scheduling_Protocol => POSIX_1003_HIGHEST_PRIORITY_FIRST_PROTOCOL;
      end Cpu;
      thread A
      end A;
      thread implementation A.impl
      properties
        Dispatch_Protocol => Periodic;
        Period => 2 ms;
        Compute_Execution_Time => 1 ms .. 1 ms;
        Deadline => 1 ms;
        Priority => 2;
      end A.impl;
      thread B
      end B;
      thread implementation B.impl
      properties
        Dispatch_Protocol => Periodic;
        Period => 2 ms;
        Compute_Execution_Time => 1 ms .. 1 ms;
        Deadline => 1 ms;
        Priority => 1;
        %OFFSET%
      end B.impl;
      system R
      end R;
      system implementation R.impl
      subcomponents
        a   : thread A.impl;
        b   : thread B.impl;
        cpu : processor Cpu;
      properties
        Actual_Processor_Binding => reference (cpu) applies to a;
        Actual_Processor_Binding => reference (cpu) applies to b;
      end R.impl;
    end Phase;
  )";
  std::string synchronous = model;
  synchronous.replace(synchronous.find("%OFFSET%"), 8, "");
  std::string phased = model;
  phased.replace(phased.find("%OFFSET%"), 8, "Dispatch_Offset => 1 ms;");

  const auto sync_r = analyze_source(synchronous, "R.impl", ms_opts());
  ASSERT_TRUE(sync_r.ok) << sync_r.diagnostics;
  EXPECT_FALSE(sync_r.schedulable) << "synchronous release must collide";

  const auto phased_r = analyze_source(phased, "R.impl", ms_opts());
  ASSERT_TRUE(phased_r.ok) << phased_r.diagnostics;
  EXPECT_TRUE(phased_r.schedulable) << phased_r.summary();
}

TEST(DispatchOffset, OffsetEqualToPeriodActsLikeZero) {
  const char* model = R"(
    package P
    public
      processor Cpu
      properties
        Scheduling_Protocol => RATE_MONOTONIC_PROTOCOL;
      end Cpu;
      thread T
      end T;
      thread implementation T.impl
      properties
        Dispatch_Protocol => Periodic;
        Period => 3 ms;
        Compute_Execution_Time => 1 ms .. 1 ms;
        Dispatch_Offset => 3 ms;
      end T.impl;
      system R
      end R;
      system implementation R.impl
      subcomponents
        t   : thread T.impl;
        cpu : processor Cpu;
      properties
        Actual_Processor_Binding => reference (cpu) applies to t;
      end R.impl;
    end P;
  )";
  const auto r = analyze_source(model, "R.impl", ms_opts());
  ASSERT_TRUE(r.ok) << r.diagnostics;
  EXPECT_TRUE(r.schedulable);
}

}  // namespace
