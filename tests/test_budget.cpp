// Resource governance: budgets, cooperative cancellation, graceful
// degradation, sweep isolation — and deterministic fault injection proving
// every StopReason bail-out path actually fires (DESIGN.md §10).
//
// The tests that arm util::FaultInjector::global() do so through an RAII
// guard: the explorers consult the global injector, so leaking an armed
// site would poison unrelated tests in this binary.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>

#include "aadl/parser.hpp"
#include "core/analyzer.hpp"
#include "core/taskset_aadl.hpp"
#include "sched/workload.hpp"
#include "translate/translator.hpp"
#include "util/budget.hpp"
#include "versa/explorer.hpp"
#include "versa/sweep.hpp"

using namespace aadlsched;
using util::BudgetSignal;
using util::BudgetStatus;
using util::BudgetTracker;
using util::CancelToken;
using util::FaultInjector;
using util::RunBudget;
using util::StopReason;
using versa::ExploreOptions;
using versa::ExploreResult;
using versa::ParallelExploreOptions;

namespace {

/// Disarms the process-global injector on scope exit, no matter how the
/// test ends.
struct InjectorGuard {
  InjectorGuard() { FaultInjector::global().disarm(); }
  ~InjectorGuard() { FaultInjector::global().disarm(); }
};

std::string read_model(const std::string& name) {
  std::ifstream in(std::string(AADLSCHED_MODELS_DIR) + "/" + name);
  EXPECT_TRUE(in) << name;
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

acsr::TermId build_initial(acsr::Context& ctx, const std::string& src,
                           std::string_view root, std::int64_t quantum_ns) {
  util::DiagnosticEngine diags("test.aadl");
  aadl::Model model;
  if (!aadl::parse_aadl(model, src, diags)) {
    ADD_FAILURE() << diags.render_all();
    return acsr::kNil;
  }
  auto inst = aadl::instantiate(model, root, diags);
  if (!inst || diags.has_errors()) {
    ADD_FAILURE() << diags.render_all();
    return acsr::kNil;
  }
  translate::TranslateOptions topts;
  topts.quantum_ns = quantum_ns;
  auto tr = translate::translate(ctx, *inst, diags, topts);
  if (!tr) {
    ADD_FAILURE() << diags.render_all();
    return acsr::kNil;
  }
  return tr->initial;
}

ExploreResult explore_storm(const ExploreOptions& opts) {
  acsr::Context ctx;
  acsr::Semantics sem(ctx);
  return versa::explore(
      sem, build_initial(ctx, read_model("storm.aadl"), "Storm.impl",
                         1'000'000),
      opts);
}

/// A small overloaded task set: exploration finds a deadline violation
/// (deadlock) quickly, so trace-recording behaviour is observable.
std::string overloaded_src() {
  sched::WorkloadSpec spec;
  spec.task_count = 3;
  spec.total_utilization = 1.15;
  spec.periods = {3, 4, 5, 6};
  sched::TaskSet ts = sched::generate_workload(spec, 11);
  sched::assign_rate_monotonic(ts);
  return core::taskset_to_aadl(ts, sched::SchedulingPolicy::FixedPriority);
}

// ---------------------------------------------------------------------------
// Unit level: CancelToken, RunBudget, FaultInjector, BudgetTracker.

TEST(Budget, StopReasonNames) {
  EXPECT_EQ(util::to_string(StopReason::None), "none");
  EXPECT_EQ(util::to_string(StopReason::MaxStates), "max-states");
  EXPECT_EQ(util::to_string(StopReason::Deadline), "deadline");
  EXPECT_EQ(util::to_string(StopReason::MemoryBudget), "memory-budget");
  EXPECT_EQ(util::to_string(StopReason::Cancelled), "cancelled");
  EXPECT_EQ(util::to_string(StopReason::Fault), "fault");
}

TEST(Budget, CancelTokenAndUnlimited) {
  CancelToken tok;
  EXPECT_FALSE(tok.cancelled());
  tok.cancel();
  EXPECT_TRUE(tok.cancelled());
  tok.reset();
  EXPECT_FALSE(tok.cancelled());

  EXPECT_TRUE(RunBudget{}.unlimited());
  RunBudget b;
  b.deadline_ms = 1;
  EXPECT_FALSE(b.unlimited());
  b = RunBudget{};
  b.cancel = &tok;
  EXPECT_FALSE(b.unlimited());
}

TEST(Budget, FaultInjectorSpecParsing) {
  FaultInjector fi;
  EXPECT_TRUE(fi.arm("budget-check:3:deadline"));
  EXPECT_TRUE(fi.armed());
  EXPECT_EQ(fi.trip_budget_check(), StopReason::None);  // 1st
  EXPECT_EQ(fi.trip_budget_check(), StopReason::None);  // 2nd
  EXPECT_EQ(fi.trip_budget_check(), StopReason::Deadline);  // 3rd trips
  EXPECT_EQ(fi.trip_budget_check(), StopReason::None);  // count=1: one-shot

  EXPECT_TRUE(fi.arm("memory-probe:2:fault:3"));
  EXPECT_FALSE(fi.trip_memory_probe());  // 1st
  EXPECT_TRUE(fi.trip_memory_probe());   // 2nd..4th trip
  EXPECT_TRUE(fi.trip_memory_probe());
  EXPECT_TRUE(fi.trip_memory_probe());
  EXPECT_FALSE(fi.trip_memory_probe());  // window closed

  EXPECT_TRUE(fi.arm("job:1"));
  EXPECT_THROW(fi.maybe_throw_job(), util::InjectedFault);
  EXPECT_NO_THROW(fi.maybe_throw_job());

  EXPECT_TRUE(fi.arm(""));  // empty spec disarms
  EXPECT_FALSE(fi.armed());

  EXPECT_FALSE(fi.arm("bogus-site:1"));
  EXPECT_FALSE(fi.arm("budget-check"));          // missing nth
  EXPECT_FALSE(fi.arm("budget-check:0"));        // nth must be >= 1
  EXPECT_FALSE(fi.arm("budget-check:x"));        // garbage nth
  EXPECT_FALSE(fi.arm("budget-check:1:nope"));   // unknown reason
  EXPECT_FALSE(fi.arm("budget-check:1:fault:0"));  // count must be >= 1
  EXPECT_FALSE(fi.armed());  // malformed spec leaves it disarmed
}

TEST(Budget, FaultInjectorFilesystemSites) {
  using Site = FaultInjector::Site;
  FaultInjector fi;

  // Every filesystem site name parses, and trip_io honors nth/count.
  EXPECT_TRUE(fi.arm("cache.write:2"));
  EXPECT_FALSE(fi.trip_io(Site::CacheWrite));  // 1st
  EXPECT_TRUE(fi.trip_io(Site::CacheWrite));   // 2nd trips
  EXPECT_FALSE(fi.trip_io(Site::CacheWrite));  // one-shot by default

  EXPECT_TRUE(fi.arm("cache.rename:1:fault:1000"));  // persistent window
  EXPECT_TRUE(fi.trip_io(Site::CacheRename));
  EXPECT_TRUE(fi.trip_io(Site::CacheRename));

  // A probe at a different site never trips and never consumes the count.
  EXPECT_TRUE(fi.arm("ckpt.read:1"));
  EXPECT_FALSE(fi.trip_io(Site::CacheRead));
  EXPECT_FALSE(fi.trip_io(Site::CkptWrite));
  EXPECT_TRUE(fi.trip_io(Site::CkptRead));

  EXPECT_TRUE(fi.arm("cache.read:1"));
  EXPECT_TRUE(fi.trip_io(Site::CacheRead));
  EXPECT_TRUE(fi.arm("ckpt.write:1"));
  EXPECT_TRUE(fi.trip_io(Site::CkptWrite));
  EXPECT_TRUE(fi.arm("gc.remove:1"));
  EXPECT_TRUE(fi.trip_io(Site::GcRemove));

  EXPECT_FALSE(fi.arm("cache.write"));   // missing nth, like other sites
  EXPECT_FALSE(fi.arm("gc.remove:0"));   // nth must be >= 1
}

TEST(Budget, TrackerMaxStatesAndCancel) {
  CancelToken tok;
  RunBudget b;
  b.max_states = 10;
  b.cancel = &tok;
  BudgetTracker tracker(b, {}, nullptr);
  EXPECT_EQ(tracker.check(9).signal, BudgetSignal::Proceed);
  const BudgetStatus capped = tracker.check(10);
  EXPECT_EQ(capped.signal, BudgetSignal::Stop);
  EXPECT_EQ(capped.reason, StopReason::MaxStates);

  tok.cancel();
  const BudgetStatus cancelled = tracker.check(1);
  EXPECT_EQ(cancelled.signal, BudgetSignal::Stop);
  EXPECT_EQ(cancelled.reason, StopReason::Cancelled);
}

TEST(Budget, TrackerDeadline) {
  RunBudget b;
  b.deadline_ms = 0.5;
  BudgetTracker tracker(b, {}, nullptr);
  EXPECT_TRUE(tracker.has_deadline());
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  const BudgetStatus st = tracker.check_now(1);
  EXPECT_EQ(st.signal, BudgetSignal::Stop);
  EXPECT_EQ(st.reason, StopReason::Deadline);
  EXPECT_GT(tracker.elapsed_ms(), 0.0);
}

TEST(Budget, TrackerMemoryDegradesThenStops) {
  RunBudget b;
  b.memory_bytes = 100;
  BudgetTracker tracker(b, [] { return std::uint64_t{200}; }, nullptr);
  const BudgetStatus first = tracker.check_now(1);
  EXPECT_EQ(first.signal, BudgetSignal::MemoryPressure);
  EXPECT_EQ(first.reason, StopReason::MemoryBudget);
  EXPECT_EQ(tracker.last_memory_bytes(), 200u);

  // The engine degrades (drops trace recording)...
  tracker.note_degraded();
  EXPECT_TRUE(tracker.degraded());
  // ...and sustained pressure afterwards is a hard stop.
  const BudgetStatus second = tracker.check_now(2);
  EXPECT_EQ(second.signal, BudgetSignal::Stop);
  EXPECT_EQ(second.reason, StopReason::MemoryBudget);
}

// ---------------------------------------------------------------------------
// Serial explorer: every StopReason path.

TEST(BudgetExplore, SerialMaxStates) {
  ExploreOptions opts;
  opts.budget.max_states = 500;
  const ExploreResult r = explore_storm(opts);
  EXPECT_EQ(r.stop, StopReason::MaxStates);
  EXPECT_FALSE(r.complete);
  EXPECT_FALSE(r.deadlock_found);
  // The check runs per expansion, so the cap can overshoot by at most one
  // state's fan-out.
  EXPECT_GE(r.states, 500u);
  EXPECT_LT(r.states, 600u);
  EXPECT_GT(r.depth, 0u);  // the partial verdict names a BFS depth
}

TEST(BudgetExplore, SerialDeadline) {
  ExploreOptions opts;
  opts.budget.deadline_ms = 25;
  const auto t0 = std::chrono::steady_clock::now();
  const ExploreResult r = explore_storm(opts);
  const double wall_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_EQ(r.stop, StopReason::Deadline);
  EXPECT_FALSE(r.complete);
  EXPECT_GT(r.states, 0u);
  // Checks are strided (kStride expansions between clock polls) so allow
  // generous slack, but the run must not outlive the deadline by orders of
  // magnitude — storm.aadl alone takes seconds to explore.
  EXPECT_LT(wall_ms, 2'000.0);
}

TEST(BudgetExplore, SerialCancelled) {
  CancelToken tok;
  tok.cancel();  // cancelled before the run starts: promptest possible stop
  ExploreOptions opts;
  opts.budget.cancel = &tok;
  const ExploreResult r = explore_storm(opts);
  EXPECT_EQ(r.stop, StopReason::Cancelled);
  EXPECT_FALSE(r.complete);
  EXPECT_EQ(r.states, 1u);  // only the initial state was admitted
}

TEST(BudgetExplore, SerialInjectedFault) {
  InjectorGuard guard;
  FaultInjector::global().arm(FaultInjector::Site::BudgetCheck, 1);
  const ExploreResult r = explore_storm({});
  EXPECT_EQ(r.stop, StopReason::Fault);
  EXPECT_FALSE(r.complete);
}

TEST(BudgetExplore, SerialMemoryPressureDegradesAndRunCompletes) {
  // Baseline: the overloaded set deadlocks with a recorded counterexample.
  const std::string src = overloaded_src();
  acsr::Context c1;
  acsr::Semantics s1(c1);
  const ExploreResult base =
      versa::explore(s1, build_initial(c1, src, "Root.impl", 1'000'000), {});
  ASSERT_TRUE(base.deadlock_found);
  ASSERT_FALSE(base.trace.empty());

  // One transient memory-pressure signal: the engine must drop the trace,
  // keep going, and still find the same deadlock — degradation, not death.
  InjectorGuard guard;
  FaultInjector::global().arm(FaultInjector::Site::MemoryProbe, 1);
  acsr::Context c2;
  acsr::Semantics s2(c2);
  const ExploreResult r =
      versa::explore(s2, build_initial(c2, src, "Root.impl", 1'000'000), {});
  EXPECT_TRUE(r.trace_dropped);
  EXPECT_TRUE(r.trace.empty());
  EXPECT_TRUE(r.deadlock_found);
  EXPECT_TRUE(r.complete);  // a found deadlock is conclusive
  EXPECT_EQ(r.stop, StopReason::None);
  EXPECT_EQ(r.states, base.states);
  EXPECT_EQ(r.deadlock_count, base.deadlock_count);
}

TEST(BudgetExplore, SerialPersistentMemoryPressureStops) {
  InjectorGuard guard;
  // Pressure that never lets up: degrade first, then give up for real.
  ASSERT_TRUE(FaultInjector::global().arm("memory-probe:1:memory:1000000"));
  const ExploreResult r = explore_storm({});
  EXPECT_EQ(r.stop, StopReason::MemoryBudget);
  EXPECT_TRUE(r.trace_dropped);  // it did try degrading before stopping
  EXPECT_FALSE(r.complete);
  EXPECT_GT(r.states, 0u);
}

// ---------------------------------------------------------------------------
// Parallel explorer: budgets observed mid-level, equivalence preserved.

ExploreResult explore_storm_parallel(const ExploreOptions& opts,
                                     std::size_t workers) {
  acsr::Context ctx;
  ParallelExploreOptions popts;
  popts.workers = workers;
  popts.serial_frontier_threshold = 0;  // pooled blocks from level one
  popts.block = 8;
  return versa::explore_parallel(
      ctx, build_initial(ctx, read_model("storm.aadl"), "Storm.impl",
                         1'000'000),
      opts, popts);
}

TEST(BudgetExplore, ParallelInjectedDeadlineMidLevel) {
  InjectorGuard guard;
  // Workers probe the injector per block; the 40th probe reports Deadline,
  // landing mid-level (not at a barrier) with the pooled path forced on.
  FaultInjector::global().arm(FaultInjector::Site::BudgetCheck, 40,
                              StopReason::Deadline);
  const ExploreResult r = explore_storm_parallel({}, 2);
  EXPECT_EQ(r.stop, StopReason::Deadline);
  EXPECT_FALSE(r.complete);
  EXPECT_GT(r.states, 0u);
}

TEST(BudgetExplore, ParallelCancelled) {
  CancelToken tok;
  tok.cancel();
  ExploreOptions opts;
  opts.budget.cancel = &tok;
  const ExploreResult r = explore_storm_parallel(opts, 2);
  EXPECT_EQ(r.stop, StopReason::Cancelled);
  EXPECT_FALSE(r.complete);
}

TEST(BudgetExplore, ParallelMaxStatesBudget) {
  ExploreOptions opts;
  opts.budget.max_states = 300;
  const ExploreResult r = explore_storm_parallel(opts, 2);
  EXPECT_EQ(r.stop, StopReason::MaxStates);
  EXPECT_FALSE(r.complete);
  EXPECT_GE(r.states, 300u);  // level granularity may overshoot the cap
}

TEST(BudgetExplore, GenerousBudgetsDoNotPerturbEquivalence) {
  // A budget nobody hits must leave serial/parallel equivalence intact —
  // governance is observation, not interference.
  const std::string src = read_model("cruise_control.aadl");
  ExploreOptions opts;
  opts.stop_at_first_deadlock = false;
  opts.budget.deadline_ms = 600'000;
  opts.budget.max_states = 5'000'000;
  opts.budget.memory_bytes = 8ull << 30;

  acsr::Context c1;
  acsr::Semantics s1(c1);
  const ExploreResult serial = versa::explore(
      s1, build_initial(c1, src, "CruiseControlSystem.impl", 10'000'000),
      opts);
  acsr::Context c2;
  ParallelExploreOptions popts;
  popts.workers = 2;
  popts.serial_frontier_threshold = 16;
  const ExploreResult par = versa::explore_parallel(
      c2, build_initial(c2, src, "CruiseControlSystem.impl", 10'000'000),
      opts, popts);

  EXPECT_EQ(serial.stop, StopReason::None);
  EXPECT_EQ(par.stop, StopReason::None);
  EXPECT_TRUE(serial.complete);
  EXPECT_TRUE(par.complete);
  EXPECT_EQ(serial.states, par.states);
  EXPECT_EQ(serial.transitions, par.transitions);
  EXPECT_EQ(serial.deadlock_found, par.deadlock_found);
  EXPECT_GT(serial.approx_memory_bytes, 0u);  // ceiling set => probed
}

TEST(BudgetExplore, MemoryEstimateIncludesSemanticsCaches) {
  // Regression for a real accounting gap: the memory probe used to count
  // the Context term table but not the Semantics-side caches (successor-fan
  // memo + transition arena), so a memo-heavy run under-reported by exactly
  // the cache that was growing and the budget tracker fired too late. The
  // probe must sit at or above Context + Semantics combined.
  const std::string src = read_model("cruise_control.aadl");
  acsr::Context ctx;
  acsr::Semantics sem(ctx);
  ExploreOptions opts;
  opts.budget.max_states = 5'000;
  const ExploreResult r = versa::explore(
      sem, build_initial(ctx, src, "CruiseControlSystem.impl", 1'000'000),
      opts);
  ASSERT_GT(sem.stats().memo_hits, 0u);  // the memo did fill up
  EXPECT_GT(sem.approx_bytes(), 0u);
  EXPECT_GE(r.approx_memory_bytes,
            ctx.approx_bytes() + sem.approx_bytes());

  // A memo-free Semantics over the same space reports strictly less cache
  // footprint — approx_bytes() really is tracking the memo, not a constant.
  acsr::Context c2;
  acsr::Semantics bare(c2, false);
  versa::explore(bare,
                 build_initial(c2, src, "CruiseControlSystem.impl",
                               1'000'000),
                 opts);
  EXPECT_LT(bare.approx_bytes(), sem.approx_bytes());
}

// ---------------------------------------------------------------------------
// Sweep isolation: one poisoned job must not kill the pool.

TEST(BudgetSweep, ThrowingJobBecomesFailureRecord) {
  std::atomic<int> ran{0};
  const versa::SweepReport report = versa::parallel_sweep(
      6,
      [&](std::size_t i) {
        if (i == 3) throw std::runtime_error("boom in job 3");
        ran.fetch_add(1);
      },
      2);
  EXPECT_EQ(report.completed, 5u);
  EXPECT_EQ(ran.load(), 5);
  ASSERT_EQ(report.failures.size(), 1u);
  EXPECT_EQ(report.failures[0].job, 3u);
  EXPECT_NE(report.failures[0].error.find("boom in job 3"), std::string::npos);
  EXPECT_FALSE(report.ok());
}

TEST(BudgetSweep, InjectedJobFaultIsIsolated) {
  InjectorGuard guard;
  ASSERT_TRUE(FaultInjector::global().arm("job:2"));
  std::atomic<int> ran{0};
  // One worker => deterministic entry order: the second job trips.
  const versa::SweepReport report = versa::parallel_sweep(
      4, [&](std::size_t) { ran.fetch_add(1); }, 1);
  EXPECT_EQ(report.completed, 3u);
  EXPECT_EQ(ran.load(), 3);
  ASSERT_EQ(report.failures.size(), 1u);
  EXPECT_EQ(report.failures[0].job, 1u);
  EXPECT_NE(report.failures[0].error.find("injected fault"),
            std::string::npos);
}

TEST(BudgetSweep, NonThrowingSweepIsOk) {
  std::atomic<int> ran{0};
  const versa::SweepReport report =
      versa::parallel_sweep(5, [&](std::size_t) { ran.fetch_add(1); }, 2);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.completed, 5u);
  EXPECT_EQ(ran.load(), 5);
}

// ---------------------------------------------------------------------------
// Analyzer integration: truncated runs surface as Inconclusive, never as a
// schedulability verdict.

TEST(BudgetAnalyzer, CappedRunIsInconclusiveNotSchedulable) {
  core::AnalyzerOptions opts;
  opts.translation.quantum_ns = 1'000'000;
  opts.exploration.budget.max_states = 200;
  const core::AnalysisResult r =
      core::analyze_source(read_model("storm.aadl"), "Storm.impl", opts);
  EXPECT_TRUE(r.ok);  // the run produced a (partial) result
  EXPECT_EQ(r.outcome, core::Outcome::Inconclusive);
  EXPECT_EQ(r.stop_reason, StopReason::MaxStates);
  EXPECT_FALSE(r.schedulable);
  EXPECT_FALSE(r.exhaustive);
  EXPECT_GT(r.depth, 0u);
  const std::string summary = r.summary();
  EXPECT_NE(summary.find("INCONCLUSIVE"), std::string::npos) << summary;
  EXPECT_NE(summary.find("max-states"), std::string::npos) << summary;
  EXPECT_NE(summary.find("not a verdict"), std::string::npos) << summary;
}

TEST(BudgetAnalyzer, DeadlockOnTruncatedRunStaysConclusive) {
  // stop_at_first_deadlock + a found deadlock: conclusive NotSchedulable
  // even though the space was not exhausted.
  core::AnalyzerOptions opts;
  opts.translation.quantum_ns = 1'000'000;
  const core::AnalysisResult r =
      core::analyze_source(overloaded_src(), "Root.impl", opts);
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.outcome, core::Outcome::NotSchedulable);
  EXPECT_FALSE(r.schedulable);
  EXPECT_NE(r.summary().find("NOT SCHEDULABLE"), std::string::npos)
      << r.summary();
}

TEST(BudgetAnalyzer, TraceDroppedIsReportedInSummary) {
  InjectorGuard guard;
  FaultInjector::global().arm(FaultInjector::Site::MemoryProbe, 1);
  core::AnalyzerOptions opts;
  opts.translation.quantum_ns = 1'000'000;
  const core::AnalysisResult r =
      core::analyze_source(overloaded_src(), "Root.impl", opts);
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.outcome, core::Outcome::NotSchedulable);
  EXPECT_TRUE(r.trace_dropped);
  EXPECT_FALSE(r.scenario.has_value());  // no timeline without a trace
  EXPECT_NE(r.summary().find("trace dropped"), std::string::npos)
      << r.summary();
}

}  // namespace
