// Reduction-layer gating (DESIGN.md §13). Two families of guarantees:
//
//   * Inertness on the default translation: for EVERY shipped example
//     model, analyzed with reductions on vs. off, on the serial and the
//     parallel engine, the canonical result JSON is byte-identical
//     (explore_ms aside). Under ordered instants the translator's symmetry
//     groups are empty by construction, so the layer must not perturb a
//     single byte — counts included.
//
//   * Real reductions under uniform instants: translated with
//     ordered_instants off, the symmetric fixture's interchangeable
//     threads form a group, both engines reach the same verdict as a
//     reduction-free run, and the representative count is at least 2x
//     smaller (the bench_reduction acceptance bar, pinned here as a
//     functional test).
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "core/analyzer.hpp"
#include "core/result_json.hpp"

namespace {

using namespace aadlsched;

struct ExampleModel {
  const char* file;
  const char* root;
};

/// Every shipped example model. The DirectoryIsFullyCovered test fails when
/// a new model lands without being added here — the equivalence matrix must
/// stay exhaustive.
constexpr ExampleModel kExamples[] = {
    {"cruise_control.aadl", "CruiseControlSystem.impl"},
    {"avionics.aadl", "Avionics.impl"},
    {"storm.aadl", "Storm.impl"},
    {"symmetric.aadl", "Symmetric.impl"},
    {"quantum_ladder.aadl", "QuantumLadder.impl"},
    {"slow_periodic.aadl", "SlowPeriodic.impl"},
    {"dual_rig.aadl", "DualRig.impl"},
};

std::string models_dir() { return AADLSCHED_MODELS_DIR; }

std::string read_model(const std::string& file) {
  std::ifstream in(models_dir() + "/" + file);
  EXPECT_TRUE(in.good()) << "cannot open " << file;
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

core::AnalyzerOptions base_options() {
  core::AnalyzerOptions opts;
  opts.translation.quantum_ns = 1'000'000;
  opts.run_lint = false;  // the comparison targets exploration, not lint
  // storm.aadl is deliberately explosive; a bounded Inconclusive result is
  // still a canonical result object and must be equally reduction-invariant.
  opts.exploration.max_states = 5'000;
  return opts;
}

std::string normalize_explore_ms(std::string json) {
  const std::string key = "\"explore_ms\": ";
  const auto pos = json.find(key);
  if (pos == std::string::npos) return json;
  auto end = pos + key.size();
  while (end < json.size() && json[end] != ',' && json[end] != '}') ++end;
  json.replace(pos + key.size(), end - (pos + key.size()), "X");
  return json;
}

TEST(ReductionEquivalence, DirectoryIsFullyCovered) {
  std::set<std::string> listed;
  for (const ExampleModel& m : kExamples) listed.insert(m.file);
  for (const auto& entry :
       std::filesystem::directory_iterator(models_dir())) {
    if (entry.path().extension() != ".aadl") continue;
    EXPECT_TRUE(listed.count(entry.path().filename().string()))
        << entry.path().filename()
        << " is not in the reduction-equivalence matrix; add it to "
           "kExamples";
  }
}

/// The full on/off x serial/parallel matrix, one model per iteration.
/// Byte-identity is a same-engine property (the engines count
/// peak_frontier differently), so the comparison pairs each engine with
/// itself.
TEST(ReductionEquivalence, ResultJsonIsByteIdenticalOnEveryExampleModel) {
  for (const ExampleModel& m : kExamples) {
    const std::string src = read_model(m.file);
    for (const std::size_t workers : {std::size_t{1}, std::size_t{4}}) {
      core::AnalyzerOptions on = base_options();
      on.parallel.workers = workers;
      on.parallel.serial_frontier_threshold = 1;
      core::AnalyzerOptions off = on;
      off.no_reduction = true;

      const auto r_on = core::analyze_source(src, m.root, on);
      const auto r_off = core::analyze_source(src, m.root, off);
      ASSERT_TRUE(r_on.ok) << m.file << ": " << r_on.diagnostics;
      EXPECT_EQ(r_on.outcome, r_off.outcome) << m.file;
      EXPECT_EQ(r_on.states, r_off.states) << m.file;
      EXPECT_EQ(r_on.transitions, r_off.transitions) << m.file;
      EXPECT_EQ(normalize_explore_ms(core::render_result_json(r_on)),
                normalize_explore_ms(core::render_result_json(r_off)))
          << m.file << " with " << workers << " worker(s)";
      // Default translation: no groups can form, the layer reports inert.
      EXPECT_EQ(r_on.symmetry_groups, 0u) << m.file;
      EXPECT_EQ(r_on.states_saved, 0u) << m.file;
    }
  }
}

// --- real reductions under uniform instants -----------------------------

core::AnalyzerOptions uniform_options() {
  core::AnalyzerOptions opts;
  opts.translation.quantum_ns = 1'000'000;
  opts.translation.ordered_instants = false;
  opts.run_lint = false;
  return opts;
}

TEST(ReductionEffect, SymmetricFixtureCollapsesByAtLeast2x) {
  const std::string src = read_model("symmetric.aadl");

  core::AnalyzerOptions off = uniform_options();
  off.no_reduction = true;
  const auto raw = core::analyze_source(src, "Symmetric.impl", off);
  ASSERT_TRUE(raw.ok) << raw.diagnostics;
  ASSERT_EQ(raw.outcome, core::Outcome::Schedulable);
  EXPECT_EQ(raw.symmetry_groups, 0u);

  const auto reduced =
      core::analyze_source(src, "Symmetric.impl", uniform_options());
  ASSERT_TRUE(reduced.ok) << reduced.diagnostics;
  EXPECT_EQ(reduced.outcome, raw.outcome);
  EXPECT_EQ(reduced.symmetry_groups, 1u);
  EXPECT_GT(reduced.states_saved, 0u);
  EXPECT_GE(raw.states, 2 * reduced.states)
      << "expected >= 2x state reduction (raw " << raw.states
      << ", reduced " << reduced.states << ")";
  EXPECT_NE(reduced.summary().find("symmetry groups: 1"), std::string::npos);
  EXPECT_NE(reduced.summary().find("states saved:"), std::string::npos);
}

TEST(ReductionEffect, EnginesAgreeOnTheReducedSpace) {
  const std::string src = read_model("symmetric.aadl");

  const auto serial =
      core::analyze_source(src, "Symmetric.impl", uniform_options());

  core::AnalyzerOptions par = uniform_options();
  par.parallel.workers = 4;
  par.parallel.serial_frontier_threshold = 1;
  const auto parallel = core::analyze_source(src, "Symmetric.impl", par);

  ASSERT_TRUE(serial.ok);
  ASSERT_TRUE(parallel.ok);
  EXPECT_EQ(parallel.outcome, serial.outcome);
  EXPECT_EQ(parallel.states, serial.states);
  EXPECT_EQ(parallel.transitions, serial.transitions);
  EXPECT_EQ(parallel.depth, serial.depth);
  EXPECT_EQ(parallel.symmetry_groups, serial.symmetry_groups);
}

}  // namespace
