// Property-based invariants across the stack, swept with parameterized
// gtest over seeds and model shapes:
//   * the prioritized relation is a subset of the unprioritized one, and
//     nonempty whenever the unprioritized one is;
//   * exploration is deterministic (same model, same state count);
//   * translated models are livelock-free apart from the detected stuck
//     states: every reachable state either is stuck or can take a timed
//     step within a bounded number of instantaneous steps;
//   * the committed-demand exploration verdict is monotone: shrinking a
//     WCET never turns a schedulable set unschedulable (no anomalies on
//     independent periodic tasks);
//   * multi-file AADL parsing composes packages.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "acsr/semantics.hpp"
#include "aadl/parser.hpp"
#include "core/taskset_aadl.hpp"
#include "sched/workload.hpp"
#include "translate/translator.hpp"
#include "versa/explorer.hpp"

using namespace aadlsched;

namespace {

struct Built {
  acsr::Context ctx;
  acsr::TermId initial = acsr::kNil;
  bool ok = false;
};

void build(Built& out, const sched::TaskSet& ts,
           sched::SchedulingPolicy policy) {
  util::DiagnosticEngine diags;
  aadl::Model model;
  if (!aadl::parse_aadl(model, core::taskset_to_aadl(ts, policy), diags))
    return;
  auto inst = aadl::instantiate(model, "Root.impl", diags);
  if (!inst) return;
  translate::TranslateOptions topts;
  topts.quantum_ns = 1'000'000;
  auto tr = translate::translate(out.ctx, *inst, diags, topts);
  if (!tr) return;
  out.initial = tr->initial;
  out.ok = true;
}

sched::TaskSet seeded_set(std::uint64_t seed) {
  sched::WorkloadSpec spec;
  spec.task_count = 3;
  spec.total_utilization = 0.85;
  spec.periods = {3, 4, 5, 6};
  sched::TaskSet ts = sched::generate_workload(spec, seed);
  sched::assign_rate_monotonic(ts);
  return ts;
}

class StackProperties : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StackProperties, PrioritizedIsSubsetOfUnprioritized) {
  Built b;
  build(b, seeded_set(GetParam()), sched::SchedulingPolicy::FixedPriority);
  ASSERT_TRUE(b.ok);
  acsr::Semantics sem(b.ctx);
  const auto lts = versa::build_lts(sem, b.initial, 3000);
  for (acsr::TermId s : lts.states) {
    const auto full = sem.transitions(s);
    const auto pri = sem.prioritized(s);
    EXPECT_LE(pri.size(), full.size());
    if (!full.empty()) {
      EXPECT_FALSE(pri.empty());
    }
    for (const auto& tr : pri) {
      EXPECT_NE(std::find(full.begin(), full.end(), tr), full.end());
    }
  }
}

TEST_P(StackProperties, ExplorationIsDeterministic) {
  Built a, b;
  build(a, seeded_set(GetParam()), sched::SchedulingPolicy::FixedPriority);
  build(b, seeded_set(GetParam()), sched::SchedulingPolicy::FixedPriority);
  ASSERT_TRUE(a.ok);
  ASSERT_TRUE(b.ok);
  acsr::Semantics sa(a.ctx), sb(b.ctx);
  const auto ra = versa::explore(sa, a.initial);
  const auto rb = versa::explore(sb, b.initial);
  EXPECT_EQ(ra.states, rb.states);
  EXPECT_EQ(ra.transitions, rb.transitions);
  EXPECT_EQ(ra.deadlock_found, rb.deadlock_found);
  EXPECT_EQ(ra.trace.size(), rb.trace.size());
}

TEST_P(StackProperties, TimeDivergesFromEveryNonStuckState) {
  // From every reachable state, some timed action is reachable within a
  // bounded number of instantaneous steps — i.e. the model has no hidden
  // livelocks beyond the stuck states the explorer reports.
  Built b;
  build(b, seeded_set(GetParam()), sched::SchedulingPolicy::FixedPriority);
  ASSERT_TRUE(b.ok);
  acsr::Semantics sem(b.ctx);
  const auto lts = versa::build_lts(sem, b.initial, 3000);
  ASSERT_LT(lts.states.size(), 3000u) << "state cap hit; enlarge";
  for (std::size_t i = 0; i < lts.states.size(); ++i) {
    // BFS over instantaneous edges looking for a timed edge.
    std::set<acsr::TermId> seen{lts.states[i]};
    std::vector<acsr::TermId> frontier{lts.states[i]};
    bool timed_reachable = false;
    bool stuck_reachable = false;
    for (int depth = 0; depth < 32 && !timed_reachable && !frontier.empty();
         ++depth) {
      std::vector<acsr::TermId> next;
      for (acsr::TermId s : frontier) {
        const auto fan = sem.prioritized(s);
        if (fan.empty()) {
          stuck_reachable = true;
          continue;
        }
        for (const auto& tr : fan) {
          if (tr.label.is_timed()) {
            timed_reachable = true;
            break;
          }
          if (seen.insert(tr.target).second) next.push_back(tr.target);
        }
        if (timed_reachable) break;
      }
      frontier = std::move(next);
    }
    EXPECT_TRUE(timed_reachable || stuck_reachable)
        << "state " << i << " can neither advance time nor terminate";
  }
}

TEST_P(StackProperties, ShrinkingWcetIsMonotone) {
  sched::TaskSet ts = seeded_set(GetParam());
  Built full;
  build(full, ts, sched::SchedulingPolicy::FixedPriority);
  ASSERT_TRUE(full.ok);
  acsr::Semantics sf(full.ctx);
  const bool full_ok = versa::explore(sf, full.initial).schedulable();

  // Shrink the largest task's WCET by one quantum (if possible).
  std::size_t fattest = 0;
  for (std::size_t i = 0; i < ts.tasks.size(); ++i)
    if (ts.tasks[i].wcet > ts.tasks[fattest].wcet) fattest = i;
  if (ts.tasks[fattest].wcet <= 1) return;
  ts.tasks[fattest].wcet -= 1;
  ts.tasks[fattest].bcet = std::min(ts.tasks[fattest].bcet,
                                    ts.tasks[fattest].wcet);
  Built less;
  build(less, ts, sched::SchedulingPolicy::FixedPriority);
  ASSERT_TRUE(less.ok);
  acsr::Semantics sl(less.ctx);
  const bool less_ok = versa::explore(sl, less.initial).schedulable();
  if (full_ok) {
    EXPECT_TRUE(less_ok) << "seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StackProperties,
                         ::testing::Range<std::uint64_t>(1, 21));

TEST(MultiFile, PackagesComposeAcrossParses) {
  aadl::Model model;
  util::DiagnosticEngine diags;
  ASSERT_TRUE(aadl::parse_aadl(model, R"(
    package Lib
    public
      processor Cpu
      properties
        Scheduling_Protocol => RATE_MONOTONIC_PROTOCOL;
      end Cpu;
      thread Worker
      end Worker;
      thread implementation Worker.impl
      properties
        Dispatch_Protocol => Periodic;
        Period => 4 ms;
        Compute_Execution_Time => 1 ms .. 1 ms;
      end Worker.impl;
    end Lib;
  )", diags));
  ASSERT_TRUE(aadl::parse_aadl(model, R"(
    package App
    public
      with Lib;
      system Root
      end Root;
      system implementation Root.impl
      subcomponents
        cpu : processor Lib::Cpu;
        w   : thread Lib::Worker.impl;
      properties
        Actual_Processor_Binding => reference (cpu) applies to w;
      end Root.impl;
    end App;
  )", diags)) << diags.render_all();
  auto inst = aadl::instantiate(model, "Root.impl", diags);
  ASSERT_NE(inst, nullptr) << diags.render_all();
  EXPECT_FALSE(diags.has_errors()) << diags.render_all();
  EXPECT_EQ(inst->threads.size(), 1u);
  ASSERT_TRUE(inst->bindings.count(inst->find("w")));
}

TEST(MultiFile, QualifiedRootName) {
  aadl::Model model;
  util::DiagnosticEngine diags;
  ASSERT_TRUE(aadl::parse_aadl(model, R"(
    package Pkg
    public
      processor C
      end C;
      thread T
      end T;
      system R
      end R;
      system implementation R.impl
      subcomponents
        c : processor C;
      end R.impl;
    end Pkg;
  )", diags));
  auto inst = aadl::instantiate(model, "Pkg::R.impl", diags);
  // Qualified lookup of the root must work too.
  EXPECT_NE(inst, nullptr);
}

}  // namespace
