// Tests for the discrete-time scheduling simulator, including agreement
// properties against RTA (fixed priority) and demand analysis (EDF) on
// randomized workloads — for independent synchronous periodic tasks all
// three must return the same verdict.
#include <gtest/gtest.h>

#include "sched/analysis.hpp"
#include "sched/simulator.hpp"
#include "sched/workload.hpp"

using namespace aadlsched::sched;

namespace {

Task mk(const char* name, Time c, Time t, Time d = 0, int prio = 0) {
  Task task;
  task.name = name;
  task.wcet = c;
  task.period = t;
  task.deadline = d == 0 ? t : d;
  task.priority = prio;
  return task;
}

TEST(Simulator, SingleTaskRunsImmediately) {
  TaskSet ts;
  ts.tasks = {mk("t", 2, 5, 0, 1)};
  SimOptions opts;
  opts.record_timeline = true;
  const auto r = simulate(ts, opts);
  EXPECT_TRUE(r.schedulable);
  ASSERT_GE(r.timeline.size(), 5u);
  EXPECT_EQ(r.timeline[0], 0);
  EXPECT_EQ(r.timeline[1], 0);
  EXPECT_EQ(r.timeline[2], -1);  // idle
  EXPECT_EQ(r.worst_response[0], 2);
}

TEST(Simulator, FixedPriorityPreemptsLower) {
  TaskSet ts;
  ts.tasks = {mk("hi", 1, 4, 0, 2), mk("lo", 2, 8, 0, 1)};
  SimOptions opts;
  opts.record_timeline = true;
  const auto r = simulate(ts, opts);
  EXPECT_TRUE(r.schedulable);
  // t=0: hi; t=1..2: lo; t=4: hi again.
  EXPECT_EQ(r.timeline[0], 0);
  EXPECT_EQ(r.timeline[1], 1);
  EXPECT_EQ(r.timeline[2], 1);
  EXPECT_EQ(r.timeline[4], 0);
}

TEST(Simulator, DetectsDeadlineMiss) {
  TaskSet ts;
  ts.tasks = {mk("hi", 2, 4, 0, 2), mk("lo", 3, 6, 0, 1)};  // U = 1.0, misses
  const auto r = simulate(ts);
  EXPECT_FALSE(r.schedulable);
  ASSERT_TRUE(r.first_miss.has_value());
  EXPECT_EQ(r.first_miss->task, 1u);
  EXPECT_EQ(r.first_miss->deadline, 6);
}

TEST(Simulator, EdfSchedulesFullUtilization) {
  TaskSet ts;
  ts.tasks = {mk("a", 2, 4), mk("b", 3, 6)};  // U = 1.0
  SimOptions opts;
  opts.policy = SchedulingPolicy::Edf;
  EXPECT_TRUE(simulate(ts, opts).schedulable);
  // The same set misses under any fixed-priority assignment.
  assign_rate_monotonic(ts);
  EXPECT_FALSE(simulate(ts).schedulable);
}

TEST(Simulator, LlfSchedulesFullUtilization) {
  TaskSet ts;
  ts.tasks = {mk("a", 2, 4), mk("b", 3, 6)};
  SimOptions opts;
  opts.policy = SchedulingPolicy::Llf;
  EXPECT_TRUE(simulate(ts, opts).schedulable);
}

TEST(Simulator, WorstResponseMatchesRta) {
  TaskSet ts;
  ts.tasks = {mk("t1", 1, 4, 0, 3), mk("t2", 2, 5, 0, 2),
              mk("t3", 5, 20, 0, 1)};
  const auto sim = simulate(ts);
  const auto rta = response_time_analysis(ts);
  ASSERT_TRUE(sim.schedulable);
  for (std::size_t i = 0; i < ts.tasks.size(); ++i)
    EXPECT_EQ(sim.worst_response[i], rta.response[i]) << "task " << i;
}

TEST(Simulator, BackgroundTaskRunsInSlack) {
  TaskSet ts;
  ts.tasks = {mk("hi", 1, 2, 0, 2), mk("bg", 3, 1, 0, 1)};
  ts.tasks[1].kind = DispatchKind::Background;
  SimOptions opts;
  opts.record_timeline = true;
  opts.horizon = 8;
  const auto r = simulate(ts, opts);
  EXPECT_TRUE(r.schedulable);
  // bg fills the idle quanta: 0 hi, 1 bg, 2 hi, 3 bg, 4 hi, 5 bg (done).
  EXPECT_EQ(r.timeline[0], 0);
  EXPECT_EQ(r.timeline[1], 1);
  EXPECT_EQ(r.timeline[3], 1);
  EXPECT_EQ(r.timeline[5], 1);
  EXPECT_EQ(r.timeline[7], -1);
}

TEST(Simulator, GanttRendering) {
  TaskSet ts;
  ts.tasks = {mk("hi", 1, 4, 0, 2), mk("lo", 2, 8, 0, 1)};
  SimOptions opts;
  opts.record_timeline = true;
  const auto r = simulate(ts, opts);
  const std::string g = render_gantt(ts, r, 8);
  EXPECT_NE(g.find("hi  |#...#...|"), std::string::npos) << g;
  EXPECT_NE(g.find("lo  |.##.....|"), std::string::npos) << g;
}

TEST(Simulator, ZeroWcetTaskNeverRuns) {
  TaskSet ts;
  ts.tasks = {mk("ghost", 0, 4, 0, 9), mk("real", 1, 4, 0, 1)};
  SimOptions opts;
  opts.record_timeline = true;
  const auto r = simulate(ts, opts);
  EXPECT_TRUE(r.schedulable);
  EXPECT_EQ(r.timeline[0], 1);
}

// Agreement properties on random workloads: the simulator (exact for
// synchronous independent sets) must agree with the exact analyses.
class SimAgreement : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SimAgreement, FixedPriorityMatchesRta) {
  WorkloadSpec spec;
  spec.task_count = 4;
  spec.total_utilization = 0.9;
  TaskSet ts = generate_workload(spec, GetParam());
  assign_rate_monotonic(ts);
  const bool rta_ok =
      response_time_analysis(ts).verdict == Verdict::Schedulable;
  EXPECT_EQ(simulate(ts).schedulable, rta_ok) << "seed " << GetParam();
}

TEST_P(SimAgreement, EdfMatchesDemandAnalysis) {
  WorkloadSpec spec;
  spec.task_count = 4;
  spec.total_utilization = 0.95;
  spec.deadline_fraction = 0.7;
  const TaskSet ts = generate_workload(spec, GetParam());
  SimOptions opts;
  opts.policy = SchedulingPolicy::Edf;
  const bool pda_ok = edf_demand_analysis(ts).verdict == Verdict::Schedulable;
  EXPECT_EQ(simulate(ts, opts).schedulable, pda_ok) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimAgreement,
                         ::testing::Range<std::uint64_t>(1, 60));

}  // namespace
