// Tests for the ACSR concrete-syntax parser, including printer round-trips.
#include <gtest/gtest.h>

#include "acsr/builder.hpp"
#include "acsr/parser.hpp"
#include "acsr/printer.hpp"
#include "acsr/semantics.hpp"
#include "util/diagnostics.hpp"
#include "versa/explorer.hpp"

using namespace aadlsched;
using namespace aadlsched::acsr;

namespace {

bool parse(Context& ctx, std::string_view src, std::string* errors = nullptr) {
  util::DiagnosticEngine diags("test.acsr");
  const bool ok = parse_module(ctx, src, diags);
  if (errors) *errors = diags.render_all();
  return ok;
}

TEST(AcsrParser, ParsesSimpleDefinition) {
  Context ctx;
  ASSERT_TRUE(parse(ctx, "P = {(cpu,1)} : NIL\n"));
  const auto d = ctx.find_definition("P");
  ASSERT_TRUE(d.has_value());
  Printer pr(ctx);
  EXPECT_EQ(pr.definition(*d), "P = {(cpu,1)} : NIL");
}

TEST(AcsrParser, ParsesEventPrefixes) {
  Context ctx;
  ASSERT_TRUE(parse(ctx, "P = (go!,2) . (ack?,1) . P"));
  Printer pr(ctx);
  EXPECT_EQ(pr.definition(*ctx.find_definition("P")),
            "P = (go!,2) . (ack?,1) . P");
}

TEST(AcsrParser, ParsesChoiceAndGuards) {
  Context ctx;
  ASSERT_TRUE(parse(ctx, R"(
    Count[n] = (n < 3) -> {(cpu,1)} : Count[n + 1]
             + (n == 3) -> (done!,1) . NIL
  )"));
  const Definition& d = ctx.definition(*ctx.find_definition("Count"));
  EXPECT_EQ(d.params.size(), 1u);
  EXPECT_EQ(d.params[0], "n");

  // The parsed process behaves correctly.
  Semantics sem(ctx);
  Builder b(ctx);
  TermId t = b.start("Count", {0});
  int timed = 0;
  while (true) {
    auto fan = sem.transitions(t);
    ASSERT_EQ(fan.size(), 1u);
    if (!fan[0].label.is_timed()) break;
    ++timed;
    t = fan[0].target;
  }
  EXPECT_EQ(timed, 3);
}

TEST(AcsrParser, ParsesParallelAndRestriction) {
  Context ctx;
  ASSERT_TRUE(parse(ctx, R"(
    S = (go!,1) . NIL
    R = (go?,1) . NIL
    Sys = (S || R) \ {go}
  )"));
  Semantics sem(ctx);
  Builder b(ctx);
  const auto fan = sem.transitions(b.start("Sys"));
  ASSERT_EQ(fan.size(), 1u);
  EXPECT_EQ(fan[0].label.kind, Label::Kind::Tau);
}

TEST(AcsrParser, ParsesScope) {
  Context ctx;
  ASSERT_TRUE(parse(ctx, R"(
    Busy = {(cpu,1)} : Busy
    S = scope(Busy, 2, timeout -> (late!,1) . NIL)
  )"));
  Semantics sem(ctx);
  Builder b(ctx);
  TermId t = b.start("S");
  for (int i = 0; i < 2; ++i) {
    auto fan = sem.transitions(t);
    ASSERT_EQ(fan.size(), 1u);
    t = fan[0].target;
  }
  const auto fan = sem.transitions(t);
  ASSERT_EQ(fan.size(), 1u);
  EXPECT_EQ(render_label(ctx, fan[0].label), "late!:1");
}

TEST(AcsrParser, ParsesScopeWithExceptionAndInterrupt) {
  Context ctx;
  ASSERT_TRUE(parse(ctx, R"(
    Body = (quit!,1) . NIL + {(cpu,1)} : Body
    S = scope(Body, inf, exc quit -> (out!,1) . NIL, intr -> (irq?,1) . NIL)
  )"));
  EXPECT_TRUE(ctx.find_definition("S").has_value());
}

TEST(AcsrParser, ParsesExpressionsWithPrecedence) {
  Context ctx;
  ASSERT_TRUE(parse(ctx, "P[x] = {(cpu, 1 + x * 2)} : P[min(x + 1, 5)]"));
  Semantics sem(ctx);
  Builder b(ctx);
  const auto fan = sem.transitions(b.start("P", {3}));
  ASSERT_EQ(fan.size(), 1u);
  EXPECT_EQ(render_label(ctx, fan[0].label), "{(cpu,7)}");
}

TEST(AcsrParser, ReportsUnknownParameter) {
  Context ctx;
  std::string errors;
  EXPECT_FALSE(parse(ctx, "P = {(cpu, y)} : NIL", &errors));
  EXPECT_NE(errors.find("unknown parameter 'y'"), std::string::npos);
}

TEST(AcsrParser, ReportsSyntaxError) {
  Context ctx;
  std::string errors;
  EXPECT_FALSE(parse(ctx, "P = + NIL", &errors));
  EXPECT_FALSE(errors.empty());
}

TEST(AcsrParser, SpeculativeGuardFailureLeavesNoDiagnostics) {
  Context ctx;
  std::string errors;
  // "(S || R)" first tries to parse as a guard; the rewind must not leave
  // errors behind.
  EXPECT_TRUE(parse(ctx,
                    "S = (a!,1) . NIL\nR = (b!,1) . NIL\nSys = (S || R)",
                    &errors));
  EXPECT_TRUE(errors.empty()) << errors;
}

TEST(AcsrParser, CommentsAreSkipped) {
  Context ctx;
  EXPECT_TRUE(parse(ctx, R"(
    # full-line comment
    P = {(cpu,1)} : NIL  // trailing comment
  )"));
}

TEST(AcsrParser, RoundTripThroughPrinter) {
  // Build definitions programmatically, print, reparse, print again; the
  // two renderings must agree.
  Context ctx1;
  Builder b(ctx1);
  b.def("Task", {"e", "t"},
        b.pick({b.when(b.lt(b.p(0), b.c(2)),
                       b.act({{"cpu", b.add(b.p(1), b.c(1))}},
                             b.call("Task", {b.add(b.p(0), b.c(1)),
                                             b.add(b.p(1), b.c(1))}))),
                b.when(b.ge(b.p(0), b.c(2)),
                       b.send("done", b.c(1), b.call("Task", {b.c(0),
                                                              b.c(0)})))}));
  b.def("Queue", {"n"},
        b.pick({b.recv("enq", b.c(1), b.call("Queue", {b.min(
                    b.add(b.p(0), b.c(1)), b.c(3))})),
                b.when(b.gt(b.p(0), b.c(0)),
                       b.send("deq", b.c(1),
                              b.call("Queue", {b.sub(b.p(0), b.c(1))}))),
                b.idle(b.call("Queue", {b.p(0)}))}));

  Printer p1(ctx1);
  const std::string printed = p1.module();

  Context ctx2;
  std::string errors;
  ASSERT_TRUE(parse(ctx2, printed, &errors)) << errors << "\n" << printed;
  Printer p2(ctx2);
  EXPECT_EQ(p2.module(), printed);
}

TEST(AcsrParser, ParsedModelExploresSameAsBuilt) {
  // A tiny two-task system written textually; explored verdicts must match
  // an identical Builder-built system.
  const char* src = R"(
    Hi[e] = (e < 1) -> {(cpu,2)} : Hi[e + 1] + (e == 1) -> {} : Hi[0]
    Lo[e] = (e < 1) -> {(cpu,1)} : Lo[e + 1]
          + (e < 1) -> {} : Lo[e]
          + (e == 1) -> {} : Lo[0]
    Sys = Hi[0] || Lo[0]
  )";
  Context ctx;
  ASSERT_TRUE(parse(ctx, src));
  Semantics sem(ctx);
  Builder b(ctx);
  auto result = versa::explore(sem, b.start("Sys"));
  EXPECT_TRUE(result.complete);
  EXPECT_FALSE(result.deadlock_found);
  EXPECT_GT(result.states, 1u);
}

}  // namespace
