// Tests for the sharded concurrent visited set and the chunked append-only
// storage behind the shared-mode hash-cons tables.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <thread>
#include <vector>

#include "util/chunked_vector.hpp"
#include "util/concurrent_set.hpp"

using namespace aadlsched;

namespace {

TEST(ConcurrentSet, InsertIsIdempotent) {
  util::ConcurrentSet set(16);
  EXPECT_TRUE(set.insert(42));
  EXPECT_FALSE(set.insert(42));
  EXPECT_TRUE(set.contains(42));
  EXPECT_FALSE(set.contains(7));
  EXPECT_EQ(set.size(), 1u);
}

TEST(ConcurrentSet, HandlesZeroKeyAndGrowth) {
  util::ConcurrentSet set(4, 2);
  EXPECT_TRUE(set.insert(0));
  EXPECT_TRUE(set.contains(0));
  // Push far past the initial capacity to force every shard to grow.
  for (std::uint64_t k = 1; k < 10'000; ++k) EXPECT_TRUE(set.insert(k));
  for (std::uint64_t k = 0; k < 10'000; ++k) EXPECT_TRUE(set.contains(k));
  EXPECT_EQ(set.size(), 10'000u);
  EXPECT_FALSE(set.insert(9'999));
}

TEST(ConcurrentSet, ConcurrentInsertersClaimEachKeyOnce) {
  constexpr std::uint64_t kKeys = 50'000;
  constexpr std::size_t kThreads = 8;
  util::ConcurrentSet set(1024);  // small: exercises growth under contention
  std::vector<std::uint64_t> wins(kThreads, 0);
  std::vector<std::thread> threads;
  // Every thread tries to insert every key; exactly one may win each.
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::uint64_t k = 0; k < kKeys; ++k)
        if (set.insert(k * 2654435761u)) ++wins[t];
    });
  }
  for (auto& th : threads) th.join();
  std::uint64_t total = 0;
  for (std::uint64_t w : wins) total += w;
  EXPECT_EQ(total, kKeys);
  EXPECT_EQ(set.size(), kKeys);
}

TEST(ChunkedVector, StableAddressesAcrossGrowth) {
  util::ChunkedVector<int, 4> v;  // chunks of 16
  EXPECT_EQ(v.push_back(7), 0u);
  const int* first = &v[0];
  for (int i = 1; i < 1000; ++i)
    EXPECT_EQ(v.push_back(i), static_cast<std::size_t>(i));
  EXPECT_EQ(first, &v[0]) << "growth must not move existing elements";
  EXPECT_EQ(v[0], 7);
  EXPECT_EQ(v[999], 999);
  EXPECT_EQ(v.size(), 1000u);
}

TEST(ChunkedVector, AppendSpanNeverStraddlesChunks) {
  util::ChunkedVector<std::uint32_t, 4> v;  // chunks of 16
  const std::uint32_t a[13] = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13};
  const std::size_t s1 = v.append_span(std::span<const std::uint32_t>(a, 13));
  // 13 more do not fit in the 3 remaining slots: must pad to chunk 2.
  const std::size_t s2 = v.append_span(std::span<const std::uint32_t>(a, 13));
  EXPECT_EQ(s1, 0u);
  EXPECT_EQ(s2, 16u);
  const auto view2 = v.view(s2, 13);
  EXPECT_TRUE(std::equal(view2.begin(), view2.end(), a));
  // Empty span: no write, any start is fine, view is empty.
  const std::size_t s3 = v.append_span({});
  EXPECT_TRUE(v.view(s3, 0).empty());
}

}  // namespace
