// Serial/parallel equivalence of the state-space explorer.
//
// The level-synchronous parallel explorer must report the same states,
// transitions, verdict and (shortest) trace length as the serial BFS — on
// the shipped example models, on seeded random workloads, across worker
// counts, and across repeated runs (interning order is scheduling-dependent
// in parallel mode, but every reported quantity is structural).
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "aadl/parser.hpp"
#include "core/analyzer.hpp"
#include "core/taskset_aadl.hpp"
#include "sched/workload.hpp"
#include "translate/translator.hpp"
#include "versa/explorer.hpp"

using namespace aadlsched;
using versa::ExploreOptions;
using versa::ExploreResult;
using versa::ParallelExploreOptions;

namespace {

std::string read_model(const std::string& name) {
  std::ifstream in(std::string(AADLSCHED_MODELS_DIR) + "/" + name);
  EXPECT_TRUE(in) << name;
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

/// AADL source -> ACSR initial term, on a caller-owned Context.
acsr::TermId build_initial(acsr::Context& ctx, const std::string& src,
                           std::string_view root, std::int64_t quantum_ns) {
  util::DiagnosticEngine diags("test.aadl");
  aadl::Model model;
  if (!aadl::parse_aadl(model, src, diags)) {
    ADD_FAILURE() << diags.render_all();
    return acsr::kNil;
  }
  auto inst = aadl::instantiate(model, root, diags);
  if (!inst || diags.has_errors()) {
    ADD_FAILURE() << diags.render_all();
    return acsr::kNil;
  }
  translate::TranslateOptions topts;
  topts.quantum_ns = quantum_ns;
  auto tr = translate::translate(ctx, *inst, diags, topts);
  if (!tr) {
    ADD_FAILURE() << diags.render_all();
    return acsr::kNil;
  }
  return tr->initial;
}

void expect_equivalent(const ExploreResult& a, const ExploreResult& b,
                       const std::string& what) {
  EXPECT_EQ(a.complete, b.complete) << what;
  EXPECT_EQ(a.deadlock_found, b.deadlock_found) << what;
  EXPECT_EQ(a.schedulable(), b.schedulable()) << what;
  EXPECT_EQ(a.states, b.states) << what;
  EXPECT_EQ(a.transitions, b.transitions) << what;
  EXPECT_EQ(a.deadlock_count, b.deadlock_count) << what;
  EXPECT_EQ(a.trace.size(), b.trace.size()) << what << " (trace length)";
}

ExploreResult run_serial(const std::string& src, std::string_view root,
                         std::int64_t quantum_ns, const ExploreOptions& opts) {
  acsr::Context ctx;
  acsr::Semantics sem(ctx);
  return versa::explore(sem, build_initial(ctx, src, root, quantum_ns), opts);
}

ExploreResult run_parallel(const std::string& src, std::string_view root,
                           std::int64_t quantum_ns, const ExploreOptions& opts,
                           std::size_t workers) {
  acsr::Context ctx;
  ParallelExploreOptions popts;
  popts.workers = workers;
  popts.serial_frontier_threshold = 16;  // force pooled rounds early
  return versa::explore_parallel(
      ctx, build_initial(ctx, src, root, quantum_ns), opts, popts);
}

struct ExampleModel {
  const char* file;
  const char* root;
  std::int64_t quantum_ns;
};

const ExampleModel kExamples[] = {
    {"cruise_control.aadl", "CruiseControlSystem.impl", 10'000'000},
    {"avionics.aadl", "Avionics.impl", 1'000'000},
};

TEST(ParallelExplorer, MatchesSerialOnExampleModels) {
  for (const ExampleModel& m : kExamples) {
    const std::string src = read_model(m.file);
    // Exhaustive exploration: every quantity must match the serial engine
    // exactly (stop granularity cannot differ when nothing stops early).
    ExploreOptions opts;
    opts.stop_at_first_deadlock = false;
    const ExploreResult serial = run_serial(src, m.root, m.quantum_ns, opts);
    const ExploreResult par = run_parallel(src, m.root, m.quantum_ns, opts, 4);
    expect_equivalent(serial, par, m.file);

    // Default options: the verdict and the shortest-counterexample length
    // must match regardless of stop granularity.
    const ExploreResult s2 = run_serial(src, m.root, m.quantum_ns, {});
    const ExploreResult p2 = run_parallel(src, m.root, m.quantum_ns, {}, 4);
    EXPECT_EQ(s2.schedulable(), p2.schedulable()) << m.file;
    EXPECT_EQ(s2.deadlock_found, p2.deadlock_found) << m.file;
    EXPECT_EQ(s2.trace.size(), p2.trace.size()) << m.file;
  }
}

sched::TaskSet random_workload(std::uint64_t seed, std::size_t n, double u) {
  sched::WorkloadSpec spec;
  spec.task_count = n;
  spec.total_utilization = u;
  spec.periods = {3, 4, 5, 6};
  sched::TaskSet ts = sched::generate_workload(spec, seed);
  sched::assign_rate_monotonic(ts);
  return ts;
}

TEST(ParallelExplorer, WorkerCountsAgreeOnRandomWorkloads) {
  // Mix of schedulable and overloaded sets; workers=1 and workers=4 run the
  // same level-synchronous algorithm, so *all* counts must match even when
  // stopping at the first deadlock.
  for (std::uint64_t seed : {11u, 22u, 33u, 44u}) {
    for (double u : {0.7, 1.15}) {
      const std::string src = core::taskset_to_aadl(
          random_workload(seed, 3, u), sched::SchedulingPolicy::FixedPriority);
      const std::string what =
          "seed " + std::to_string(seed) + " u " + std::to_string(u);
      const ExploreResult one =
          run_parallel(src, "Root.impl", 1'000'000, {}, 1);
      const ExploreResult four =
          run_parallel(src, "Root.impl", 1'000'000, {}, 4);
      expect_equivalent(one, four, what);

      // And against the serial engine on the fully explored space.
      ExploreOptions full;
      full.stop_at_first_deadlock = false;
      expect_equivalent(run_serial(src, "Root.impl", 1'000'000, full),
                        run_parallel(src, "Root.impl", 1'000'000, full, 4),
                        what + " (exhaustive)");
    }
  }
}

TEST(ParallelExplorer, DeterministicAcrossRuns) {
  const std::string src = read_model("cruise_control.aadl");
  const ExploreResult a =
      run_parallel(src, "CruiseControlSystem.impl", 10'000'000, {}, 4);
  const ExploreResult b =
      run_parallel(src, "CruiseControlSystem.impl", 10'000'000, {}, 4);
  expect_equivalent(a, b, "two parallel runs");
  EXPECT_EQ(a.peak_frontier, b.peak_frontier);
}

TEST(ParallelExplorer, SerialFallbackThresholdDoesNotChangeResults) {
  const std::string src = core::taskset_to_aadl(
      random_workload(7, 3, 0.9), sched::SchedulingPolicy::FixedPriority);
  acsr::Context c1, c2;
  ParallelExploreOptions always_pool;
  always_pool.workers = 4;
  always_pool.serial_frontier_threshold = 0;
  ParallelExploreOptions always_inline;
  always_inline.workers = 4;
  always_inline.serial_frontier_threshold = ~std::size_t{0};
  expect_equivalent(
      versa::explore_parallel(c1, build_initial(c1, src, "Root.impl", 1'000'000),
                              {}, always_pool),
      versa::explore_parallel(c2, build_initial(c2, src, "Root.impl", 1'000'000),
                              {}, always_inline),
      "pooled vs inline levels");
}

TEST(ParallelExplorer, HardwareWorkerCountRuns) {
  const std::string src = read_model("cruise_control.aadl");
  acsr::Context ctx;
  ParallelExploreOptions popts;
  popts.workers = 0;  // hardware concurrency
  const ExploreResult r = versa::explore_parallel(
      ctx, build_initial(ctx, src, "CruiseControlSystem.impl", 10'000'000),
      {}, popts);
  EXPECT_TRUE(r.complete);
  EXPECT_GE(r.worker_states.size(), 1u);
  std::uint64_t expanded = 0;
  for (std::uint64_t w : r.worker_states) expanded += w;
  EXPECT_GT(expanded, 0u);
  EXPECT_GT(r.sem_stats.computed, 0u);
  EXPECT_GE(r.wall_ms, 0.0);
  EXPECT_GE(r.peak_frontier, 1u);
}

TEST(ParallelExplorer, SharedModeIsRestoredAfterExploration) {
  acsr::Context ctx;
  const std::string src = read_model("cruise_control.aadl");
  const acsr::TermId init =
      build_initial(ctx, src, "CruiseControlSystem.impl", 10'000'000);
  ParallelExploreOptions popts;
  popts.workers = 2;
  versa::explore_parallel(ctx, init, {}, popts);
  EXPECT_FALSE(ctx.shared_mode());
}

TEST(ParallelExplorer, AnalyzerPlumbsWorkersAndObservability) {
  const std::string src = read_model("cruise_control.aadl");
  core::AnalyzerOptions opts;
  opts.translation.quantum_ns = 10'000'000;
  opts.parallel.workers = 4;
  const auto r =
      core::analyze_source(src, "CruiseControlSystem.impl", opts);
  ASSERT_TRUE(r.ok) << r.diagnostics;
  EXPECT_TRUE(r.schedulable) << r.summary();
  EXPECT_EQ(r.worker_states.size(), 4u);
  EXPECT_GT(r.fans_computed, 0u);
  EXPECT_GE(r.peak_frontier, 1u);
  EXPECT_NE(r.summary().find("exploration:"), std::string::npos);

  // Serial analyzer reports the same verdict and state count on this
  // (schedulable, hence exhaustively explored) model.
  core::AnalyzerOptions serial = opts;
  serial.parallel.workers = 1;
  const auto rs = core::analyze_source(src, "CruiseControlSystem.impl", serial);
  EXPECT_EQ(rs.states, r.states);
  EXPECT_EQ(rs.transitions, r.transitions);
  EXPECT_EQ(rs.schedulable, r.schedulable);
}

}  // namespace
