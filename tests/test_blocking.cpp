// Unit tests for the closed-form blocking analysis (sched/blocking.hpp):
// priority ceilings, the PCP blocked-at-most-once bound, the PIP
// once-per-lower-task bound, and the unbounded-inversion guard for shared
// resources without a protocol.
#include <gtest/gtest.h>

#include "sched/blocking.hpp"

using namespace aadlsched;

namespace {

sched::Task task(int priority, sched::Time wcet = 1, sched::Time period = 100) {
  sched::Task t;
  t.priority = priority;
  t.wcet = wcet;
  t.period = period;
  t.deadline = period;
  return t;
}

}  // namespace

TEST(Blocking, PriorityCeilingsAreMaxUserPriority) {
  sched::TaskSet ts;
  ts.tasks = {task(3), task(2), task(1)};
  sched::ResourceModel rm;
  rm.resources = {{"r0", sched::LockProtocol::PriorityCeiling},
                  {"r1", sched::LockProtocol::PriorityCeiling},
                  {"unused", sched::LockProtocol::PriorityCeiling}};
  rm.sections = {{0, 0, 2}, {2, 0, 2}, {1, 1, 4}, {2, 1, 4}};
  const std::vector<int> c = sched::priority_ceilings(ts, rm);
  ASSERT_EQ(c.size(), 3u);
  EXPECT_EQ(c[0], 3);
  EXPECT_EQ(c[1], 2);
  EXPECT_EQ(c[2], -1);  // no user
}

TEST(Blocking, PcpBlocksAtMostOnceByCeilingReachingSections) {
  // r0 (ceiling 3) shared by tasks 0 and 2; r1 (ceiling 2) shared by
  // tasks 1 and 2. Task 0 can only be blocked through r0 (ceiling >= 3);
  // task 1 can be blocked through either, but at most once (the longest).
  sched::TaskSet ts;
  ts.tasks = {task(3), task(2), task(1)};
  sched::ResourceModel rm;
  rm.resources = {{"r0", sched::LockProtocol::PriorityCeiling},
                  {"r1", sched::LockProtocol::PriorityCeiling}};
  rm.sections = {{0, 0, 1}, {2, 0, 2}, {1, 1, 1}, {2, 1, 4}};
  const auto b = sched::blocking_terms(ts, rm);
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ((*b)[0], 2);  // task 2's section on r0; r1's ceiling is too low
  EXPECT_EQ((*b)[1], 4);  // max over task 2's sections, not their sum
  EXPECT_EQ((*b)[2], 0);  // nothing runs below the lowest priority
}

TEST(Blocking, PipSumsOncePerLowerPriorityTask) {
  // Two PIP resources, each shared between the high-priority task 0 and
  // one distinct lower-priority holder: both holders can block task 0 in
  // the same activation, so the bounds add up.
  sched::TaskSet ts;
  ts.tasks = {task(3), task(2), task(1)};
  sched::ResourceModel rm;
  rm.resources = {{"r0", sched::LockProtocol::PriorityInheritance},
                  {"r1", sched::LockProtocol::PriorityInheritance}};
  rm.sections = {{0, 0, 1}, {1, 0, 3}, {0, 1, 1}, {2, 1, 5}};
  const auto b = sched::blocking_terms(ts, rm);
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ((*b)[0], 3 + 5);
  // Task 1 shares nothing; it is only blocked by task 2's section on r1,
  // whose other user (task 0) outranks it — push-through blocking.
  EXPECT_EQ((*b)[1], 5);
  EXPECT_EQ((*b)[2], 0);
}

TEST(Blocking, PipIgnoresResourcesOnlyLowerTasksUse) {
  // r0 is used exclusively below task 0's priority: inheritance never
  // raises a holder above task 0, so no blocking reaches it.
  sched::TaskSet ts;
  ts.tasks = {task(3), task(2), task(1)};
  sched::ResourceModel rm;
  rm.resources = {{"r0", sched::LockProtocol::PriorityInheritance}};
  rm.sections = {{1, 0, 3}, {2, 0, 5}};
  const auto b = sched::blocking_terms(ts, rm);
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ((*b)[0], 0);
  EXPECT_EQ((*b)[1], 5);  // task 2 holds while task 1 (a user) waits
  EXPECT_EQ((*b)[2], 0);
}

TEST(Blocking, SharedResourceWithoutProtocolIsUnbounded) {
  sched::TaskSet ts;
  ts.tasks = {task(2), task(1)};
  sched::ResourceModel rm;
  rm.resources = {{"r0", sched::LockProtocol::None}};
  rm.sections = {{0, 0, 1}, {1, 0, 1}};
  EXPECT_FALSE(sched::blocking_terms(ts, rm).has_value());
}

TEST(Blocking, ExclusiveResourceWithoutProtocolIsHarmless) {
  sched::TaskSet ts;
  ts.tasks = {task(2), task(1)};
  sched::ResourceModel rm;
  rm.resources = {{"r0", sched::LockProtocol::None}};
  rm.sections = {{1, 0, 7}};  // single user: never contended
  const auto b = sched::blocking_terms(ts, rm);
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ((*b)[0], 0);
  EXPECT_EQ((*b)[1], 0);
}

TEST(Blocking, MixedProtocolsSumWhenAnyPipContributes) {
  // Task 0 can be blocked by task 1 through a PCP resource and by task 2
  // through a PIP resource; with PIP in play the per-holder bounds add.
  sched::TaskSet ts;
  ts.tasks = {task(3), task(2), task(1)};
  sched::ResourceModel rm;
  rm.resources = {{"pcp", sched::LockProtocol::PriorityCeiling},
                  {"pip", sched::LockProtocol::PriorityInheritance}};
  rm.sections = {{0, 0, 1}, {1, 0, 2}, {0, 1, 1}, {2, 1, 4}};
  const auto b = sched::blocking_terms(ts, rm);
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ((*b)[0], 2 + 4);
}
