// util/json.hpp and util/lru_cache.hpp — the service layer's two generic
// building blocks. The parser/writer pair must round-trip everything the
// protocol puts on the wire; the LRU must evict exactly the
// least-recently-used entry (the cache-tier guarantees in DESIGN.md §11
// stand on these).
#include <gtest/gtest.h>

#include <string>

#include "util/json.hpp"
#include "util/lru_cache.hpp"

namespace {

using aadlsched::util::JsonValue;
using aadlsched::util::JsonWriter;
using aadlsched::util::LruCache;
using aadlsched::util::parse_json;

TEST(JsonParse, Scalars) {
  EXPECT_TRUE(parse_json("null")->is_null());
  EXPECT_EQ(parse_json("true")->as_bool(), true);
  EXPECT_EQ(parse_json("false")->as_bool(true), false);
  EXPECT_EQ(parse_json("42")->as_int(), 42);
  EXPECT_EQ(parse_json("-7")->as_int(), -7);
  EXPECT_TRUE(parse_json("42")->is_int());
  EXPECT_TRUE(parse_json("42.5")->is_double());
  EXPECT_DOUBLE_EQ(parse_json("42.5")->as_double(), 42.5);
  EXPECT_DOUBLE_EQ(parse_json("1e3")->as_double(), 1000.0);
  EXPECT_EQ(parse_json("\"hi\"")->as_string(), "hi");
}

TEST(JsonParse, StringEscapes) {
  EXPECT_EQ(parse_json(R"("a\"b\\c\nd\te")")->as_string(), "a\"b\\c\nd\te");
  // BMP \uXXXX escapes decode to UTF-8; raw UTF-8 passes through verbatim.
  EXPECT_EQ(parse_json("\"\\u00e9\"")->as_string(), "\xc3\xa9");
  EXPECT_EQ(parse_json("\"\\u0041\"")->as_string(), "A");
  EXPECT_EQ(parse_json("\"\xc3\xa9\"")->as_string(), "\xc3\xa9");
}

TEST(JsonParse, SurrogatePairsDecodeToSupplementaryCodePoints) {
  // U+1F600 (😀) = \uD83D\uDE00 → one 4-byte UTF-8 sequence, not the
  // CESU-8 pair of 3-byte surrogate encodings the parser used to emit.
  EXPECT_EQ(parse_json("\"\\uD83D\\uDE00\"")->as_string(),
            "\xf0\x9f\x98\x80");
  // U+10000, the first supplementary code point (boundary case).
  EXPECT_EQ(parse_json("\"\\uD800\\uDC00\"")->as_string(),
            "\xf0\x90\x80\x80");
  // U+10FFFF, the last code point (high/low surrogates both at max).
  EXPECT_EQ(parse_json("\"\\uDBFF\\uDFFF\"")->as_string(),
            "\xf4\x8f\xbf\xbf");
  // Surrounding text survives the pair.
  EXPECT_EQ(parse_json("\"a\\uD83D\\uDE00b\"")->as_string(),
            "a\xf0\x9f\x98\x80"
            "b");
}

TEST(JsonParse, LoneSurrogatesAreParseErrors) {
  std::string error;
  // Lone high surrogate (end of string, non-escape follower, wrong escape).
  EXPECT_FALSE(parse_json("\"\\uD83D\"", &error).has_value());
  EXPECT_NE(error.find("surrogate"), std::string::npos);
  EXPECT_FALSE(parse_json("\"\\uD83Dxy\"").has_value());
  EXPECT_FALSE(parse_json("\"\\uD83D\\n\"").has_value());
  // High surrogate followed by a \u escape that is not a low surrogate.
  EXPECT_FALSE(parse_json("\"\\uD83D\\u0041\"").has_value());
  // High surrogate followed by another high surrogate.
  EXPECT_FALSE(parse_json("\"\\uD83D\\uD83D\"").has_value());
  // Lone low surrogate.
  EXPECT_FALSE(parse_json("\"\\uDE00\"", &error).has_value());
  EXPECT_NE(error.find("surrogate"), std::string::npos);
  // Truncated second escape.
  EXPECT_FALSE(parse_json("\"\\uD83D\\uDE\"").has_value());
}

TEST(JsonParse, NestedStructure) {
  const auto v = parse_json(
      R"({"a": [1, 2, {"b": true}], "c": {"d": null}, "e": "x"})");
  ASSERT_TRUE(v && v->is_object());
  const auto& arr = v->get("a")->as_array();
  ASSERT_EQ(arr.size(), 3u);
  EXPECT_EQ(arr[1].as_int(), 2);
  EXPECT_TRUE(arr[2].get("b")->as_bool());
  EXPECT_TRUE(v->get("c")->get("d")->is_null());
  EXPECT_EQ(v->get("missing"), nullptr);
  EXPECT_EQ(v->get("e")->get("not_an_object"), nullptr);
}

TEST(JsonParse, RejectsMalformed) {
  std::string err;
  EXPECT_FALSE(parse_json("", &err));
  EXPECT_FALSE(parse_json("{", &err));
  EXPECT_FALSE(parse_json("{\"a\": }", &err));
  EXPECT_FALSE(parse_json("[1, 2,]", &err));
  EXPECT_FALSE(parse_json("nul", &err));
  EXPECT_FALSE(parse_json("\"unterminated", &err));
  // Trailing garbage is an error, not silently ignored.
  EXPECT_FALSE(parse_json("{} x", &err));
  EXPECT_FALSE(err.empty());
}

TEST(JsonParse, DepthLimited) {
  std::string deep(100, '[');
  deep += std::string(100, ']');
  std::string err;
  EXPECT_FALSE(parse_json(deep, &err));
  EXPECT_NE(err.find("too deep"), std::string::npos) << err;
}

TEST(JsonWriter, CommasAndNesting) {
  JsonWriter w;
  w.begin_object();
  w.key("a").value(1);
  w.key("b").begin_array();
  w.value("x").value(true).null();
  w.end_array();
  w.key("c").begin_object().end_object();
  w.end_object();
  EXPECT_EQ(std::move(w).str(),
            "{\"a\": 1, \"b\": [\"x\", true, null], \"c\": {}}");
}

TEST(JsonWriter, EscapesStrings) {
  JsonWriter w;
  w.begin_object();
  w.key("k").value("a\"b\\c\nd");
  w.end_object();
  EXPECT_EQ(std::move(w).str(), "{\"k\": \"a\\\"b\\\\c\\nd\"}");
}

TEST(JsonWriter, RawSplicesVerbatim) {
  JsonWriter w;
  w.begin_object();
  w.key("n").value(std::uint64_t{1});
  w.key("result").raw(R"({"outcome": "schedulable"})");
  w.end_object();
  EXPECT_EQ(std::move(w).str(),
            "{\"n\": 1, \"result\": {\"outcome\": \"schedulable\"}}");
}

TEST(JsonWriter, OutputReparses) {
  JsonWriter w;
  w.begin_object();
  w.key("pi").value(3.25);
  w.key("big").value(std::uint64_t{9'000'000'000ull});
  w.key("neg").value(std::int64_t{-12});
  w.end_object();
  const auto v = parse_json(w.str());
  ASSERT_TRUE(v);
  EXPECT_DOUBLE_EQ(v->get("pi")->as_double(), 3.25);
  EXPECT_EQ(v->get("big")->as_int(), 9'000'000'000ll);
  EXPECT_EQ(v->get("neg")->as_int(), -12);
}

TEST(LruCacheTest, EvictsLeastRecentlyUsed) {
  LruCache<int, std::string> c(2);
  c.put(1, "one");
  c.put(2, "two");
  EXPECT_EQ(c.get(1), "one");  // promotes 1; 2 is now LRU
  c.put(3, "three");
  EXPECT_EQ(c.size(), 2u);
  EXPECT_EQ(c.evictions(), 1u);
  EXPECT_FALSE(c.contains(2));
  EXPECT_TRUE(c.contains(1));
  EXPECT_TRUE(c.contains(3));
}

TEST(LruCacheTest, PutOverwritesAndPromotes) {
  LruCache<int, int> c(2);
  c.put(1, 10);
  c.put(2, 20);
  c.put(1, 11);  // overwrite promotes; 2 becomes LRU
  c.put(3, 30);
  EXPECT_FALSE(c.contains(2));
  EXPECT_EQ(c.get(1), 11);
}

TEST(LruCacheTest, PeekDoesNotPromote) {
  LruCache<int, int> c(2);
  c.put(1, 10);
  c.put(2, 20);
  ASSERT_NE(c.peek(1), nullptr);  // no recency update: 1 stays LRU
  c.put(3, 30);
  EXPECT_FALSE(c.contains(1));
  EXPECT_TRUE(c.contains(2));
}

TEST(LruCacheTest, ZeroCapacityIsDisabled) {
  LruCache<int, int> c(0);
  c.put(1, 10);
  EXPECT_EQ(c.size(), 0u);
  EXPECT_FALSE(c.get(1).has_value());
  EXPECT_EQ(c.evictions(), 0u);
}

}  // namespace
