// Tests for the workload generator: determinism, UUniFast distribution
// invariants, and structural constraints on generated task sets.
#include <gtest/gtest.h>

#include <algorithm>

#include "sched/workload.hpp"

using namespace aadlsched::sched;
using aadlsched::util::Xoshiro256;

namespace {

TEST(UUniFast, SharesSumToTotal) {
  Xoshiro256 rng(99);
  for (int rep = 0; rep < 50; ++rep) {
    const auto us = uunifast(5, 0.8, rng);
    ASSERT_EQ(us.size(), 5u);
    double sum = 0;
    for (double u : us) {
      EXPECT_GE(u, 0.0);
      EXPECT_LE(u, 0.8 + 1e-9);
      sum += u;
    }
    EXPECT_NEAR(sum, 0.8, 1e-9);
  }
}

TEST(UUniFast, SingleTaskGetsEverything) {
  Xoshiro256 rng(1);
  const auto us = uunifast(1, 0.5, rng);
  ASSERT_EQ(us.size(), 1u);
  EXPECT_DOUBLE_EQ(us[0], 0.5);
}

TEST(UUniFast, ZeroTasks) {
  Xoshiro256 rng(1);
  EXPECT_TRUE(uunifast(0, 0.5, rng).empty());
}

TEST(Workload, DeterministicInSeed) {
  WorkloadSpec spec;
  spec.task_count = 6;
  const TaskSet a = generate_workload(spec, 1234);
  const TaskSet b = generate_workload(spec, 1234);
  ASSERT_EQ(a.tasks.size(), b.tasks.size());
  for (std::size_t i = 0; i < a.tasks.size(); ++i) {
    EXPECT_EQ(a.tasks[i].wcet, b.tasks[i].wcet);
    EXPECT_EQ(a.tasks[i].period, b.tasks[i].period);
    EXPECT_EQ(a.tasks[i].deadline, b.tasks[i].deadline);
  }
  const TaskSet c = generate_workload(spec, 1235);
  bool any_diff = false;
  for (std::size_t i = 0; i < a.tasks.size(); ++i)
    any_diff |= a.tasks[i].wcet != c.tasks[i].wcet ||
                a.tasks[i].period != c.tasks[i].period;
  EXPECT_TRUE(any_diff);
}

TEST(Workload, StructuralInvariants) {
  for (std::uint64_t seed = 1; seed <= 100; ++seed) {
    WorkloadSpec spec;
    spec.task_count = 5;
    spec.total_utilization = 0.75;
    spec.deadline_fraction = 0.5;
    const TaskSet ts = generate_workload(spec, seed);
    ASSERT_EQ(ts.tasks.size(), 5u);
    for (const Task& t : ts.tasks) {
      EXPECT_GE(t.wcet, 1);
      EXPECT_LE(t.wcet, t.period);
      EXPECT_GE(t.deadline, t.wcet);
      EXPECT_LE(t.deadline, t.period);
      EXPECT_TRUE(std::find(spec.periods.begin(), spec.periods.end(),
                            t.period) != spec.periods.end());
    }
    EXPECT_TRUE(ts.constrained_deadlines());
  }
}

TEST(Workload, ImplicitDeadlinesWhenFractionIsOne) {
  WorkloadSpec spec;
  spec.deadline_fraction = 1.0;
  for (std::uint64_t seed = 1; seed <= 20; ++seed)
    EXPECT_TRUE(generate_workload(spec, seed).implicit_deadlines());
}

TEST(Workload, UtilizationTracksTarget) {
  // Rounding WCETs distorts utilization; with generous periods the mean
  // must stay close to the target (small periods + min_wcet_one bias up).
  WorkloadSpec spec;
  spec.task_count = 4;
  spec.periods = {20, 25, 40, 50, 80, 100};
  spec.total_utilization = 0.6;
  double total = 0.0;
  const int reps = 200;
  for (int seed = 1; seed <= reps; ++seed)
    total += generate_workload(spec, static_cast<std::uint64_t>(seed))
                 .utilization();
  EXPECT_NEAR(total / reps, 0.6, 0.1);
}

}  // namespace
