// Tests for the workload generator: determinism, UUniFast distribution
// invariants, and structural constraints on generated task sets.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "sched/workload.hpp"

using namespace aadlsched::sched;
using aadlsched::util::Xoshiro256;

namespace {

TEST(UUniFast, SharesSumToTotal) {
  Xoshiro256 rng(99);
  for (int rep = 0; rep < 50; ++rep) {
    const auto us = uunifast(5, 0.8, rng);
    ASSERT_EQ(us.size(), 5u);
    double sum = 0;
    for (double u : us) {
      EXPECT_GE(u, 0.0);
      EXPECT_LE(u, 0.8 + 1e-9);
      sum += u;
    }
    EXPECT_NEAR(sum, 0.8, 1e-9);
  }
}

TEST(UUniFast, SingleTaskGetsEverything) {
  Xoshiro256 rng(1);
  const auto us = uunifast(1, 0.5, rng);
  ASSERT_EQ(us.size(), 1u);
  EXPECT_DOUBLE_EQ(us[0], 0.5);
}

TEST(UUniFast, ZeroTasks) {
  Xoshiro256 rng(1);
  EXPECT_TRUE(uunifast(0, 0.5, rng).empty());
}

TEST(Workload, DeterministicInSeed) {
  WorkloadSpec spec;
  spec.task_count = 6;
  const TaskSet a = generate_workload(spec, 1234);
  const TaskSet b = generate_workload(spec, 1234);
  ASSERT_EQ(a.tasks.size(), b.tasks.size());
  for (std::size_t i = 0; i < a.tasks.size(); ++i) {
    EXPECT_EQ(a.tasks[i].wcet, b.tasks[i].wcet);
    EXPECT_EQ(a.tasks[i].period, b.tasks[i].period);
    EXPECT_EQ(a.tasks[i].deadline, b.tasks[i].deadline);
  }
  const TaskSet c = generate_workload(spec, 1235);
  bool any_diff = false;
  for (std::size_t i = 0; i < a.tasks.size(); ++i)
    any_diff |= a.tasks[i].wcet != c.tasks[i].wcet ||
                a.tasks[i].period != c.tasks[i].period;
  EXPECT_TRUE(any_diff);
}

TEST(Workload, StructuralInvariants) {
  for (std::uint64_t seed = 1; seed <= 100; ++seed) {
    WorkloadSpec spec;
    spec.task_count = 5;
    spec.total_utilization = 0.75;
    spec.deadline_fraction = 0.5;
    const TaskSet ts = generate_workload(spec, seed);
    ASSERT_EQ(ts.tasks.size(), 5u);
    for (const Task& t : ts.tasks) {
      EXPECT_GE(t.wcet, 1);
      EXPECT_LE(t.wcet, t.period);
      EXPECT_GE(t.deadline, t.wcet);
      EXPECT_LE(t.deadline, t.period);
      EXPECT_TRUE(std::find(spec.periods.begin(), spec.periods.end(),
                            t.period) != spec.periods.end());
    }
    EXPECT_TRUE(ts.constrained_deadlines());
  }
}

TEST(Workload, ImplicitDeadlinesWhenFractionIsOne) {
  WorkloadSpec spec;
  spec.deadline_fraction = 1.0;
  for (std::uint64_t seed = 1; seed <= 20; ++seed)
    EXPECT_TRUE(generate_workload(spec, seed).implicit_deadlines());
}

// Regression: an empty period set used to underflow `periods.size() - 1`,
// hit Xoshiro256::uniform_int's span==0 full-range branch, and index
// spec.periods out of bounds. The spec must be rejected with a diagnostic,
// never generated (this suite runs under the asan ctest label).
TEST(WorkloadValidation, EmptyPeriodSetIsRejectedNotUB) {
  WorkloadSpec spec;
  spec.periods.clear();
  const auto bad = validate_workload_spec(spec);
  ASSERT_TRUE(bad.has_value());
  EXPECT_NE(bad->find("period"), std::string::npos);

  std::string error;
  EXPECT_FALSE(try_generate_workload(spec, 42, error).has_value());
  EXPECT_NE(error.find("period"), std::string::npos);
  // The legacy signature degrades to an empty set instead of crashing.
  EXPECT_TRUE(generate_workload(spec, 42).tasks.empty());
}

TEST(WorkloadValidation, StructuralInvariantsOfTheSpecItself) {
  const auto rejects = [](auto mutate, const char* what) {
    WorkloadSpec spec;
    mutate(spec);
    std::string error;
    EXPECT_FALSE(try_generate_workload(spec, 1, error).has_value()) << what;
    EXPECT_FALSE(error.empty()) << what;
    EXPECT_TRUE(generate_workload(spec, 1).tasks.empty()) << what;
  };
  rejects([](WorkloadSpec& s) { s.task_count = 0; }, "zero tasks");
  rejects([](WorkloadSpec& s) { s.total_utilization = 0.0; }, "zero U");
  rejects([](WorkloadSpec& s) { s.total_utilization = -0.5; }, "negative U");
  rejects([](WorkloadSpec& s) { s.deadline_fraction = -0.1; }, "df < 0");
  rejects([](WorkloadSpec& s) { s.deadline_fraction = 1.5; }, "df > 1");
  rejects([](WorkloadSpec& s) { s.periods = {4, 0, 8}; }, "zero period");

  // A valid spec still round-trips through the checked entry point.
  WorkloadSpec ok;
  std::string error;
  const auto ts = try_generate_workload(ok, 7, error);
  ASSERT_TRUE(ts.has_value()) << error;
  EXPECT_EQ(ts->tasks.size(), ok.task_count);
}

// Property: WCET rounding plus the min_wcet_one clamp drift the realized
// sum(C/T) from the requested total by at most 1/T per task (|llround
// error| <= 0.5 quantum; a 0 -> 1 bump or a clamp to T stays under one
// quantum), so on the default period set (min period 4) the total drift is
// bounded by task_count / 4. The generator must record the request so
// consumers can bin by the realized value.
TEST(WorkloadRealizedUtilization, DriftIsRecordedAndBounded) {
  bool any_drift = false;
  for (std::size_t n : {2u, 4u, 8u}) {
    for (double u : {0.3, 0.6, 0.9}) {
      WorkloadSpec spec;
      spec.task_count = n;
      spec.total_utilization = u;
      const Time min_period =
          *std::min_element(spec.periods.begin(), spec.periods.end());
      const double bound =
          static_cast<double>(n) / static_cast<double>(min_period) + 1e-9;
      for (std::uint64_t seed = 1; seed <= 100; ++seed) {
        const TaskSet ts = generate_workload(spec, seed);
        EXPECT_DOUBLE_EQ(ts.requested_utilization, u);
        double realized = 0;
        for (const Task& t : ts.tasks)
          realized += static_cast<double>(t.wcet) /
                      static_cast<double>(t.period);
        EXPECT_NEAR(ts.utilization(), realized, 1e-12);
        EXPECT_NEAR(ts.utilization_drift(), realized - u, 1e-12);
        EXPECT_LE(std::abs(ts.utilization_drift()), bound)
            << "n=" << n << " u=" << u << " seed=" << seed;
        any_drift |= std::abs(ts.utilization_drift()) > 1e-6;
      }
    }
  }
  // The drift is real (not a vacuous bound): some seed must actually move.
  EXPECT_TRUE(any_drift);
}

TEST(WorkloadRealizedUtilization, UnsetRequestMeansZeroDrift) {
  TaskSet ts;
  ts.tasks.push_back({"t", 2, 2, 4, 4, 0, DispatchKind::Periodic, 0});
  EXPECT_LT(ts.requested_utilization, 0);
  EXPECT_DOUBLE_EQ(ts.utilization_drift(), 0.0);
  EXPECT_DOUBLE_EQ(ts.utilization(), 0.5);
}

TEST(Workload, UtilizationTracksTarget) {
  // Rounding WCETs distorts utilization; with generous periods the mean
  // must stay close to the target (small periods + min_wcet_one bias up).
  WorkloadSpec spec;
  spec.task_count = 4;
  spec.periods = {20, 25, 40, 50, 80, 100};
  spec.total_utilization = 0.6;
  double total = 0.0;
  const int reps = 200;
  for (int seed = 1; seed <= reps; ++seed)
    total += generate_workload(spec, static_cast<std::uint64_t>(seed))
                 .utilization();
  EXPECT_NEAR(total / reps, 0.6, 0.1);
}

}  // namespace
