// Independent validator for the machine-checkable certificates emitted by
// the static lint passes (lint::StaticCertificate, DESIGN.md §14). The
// whole point of a certificate is that its claim can be replayed without
// trusting the analysis that produced it, so this checker re-derives every
// bound from the raw task rows with its own (deliberately naive, brute
// force) arithmetic — it shares the struct definitions with src/lint but
// none of the fixed-point / QPA code in src/sched.
//
// check_certificate returns an empty string when the certificate is valid
// and a human-readable defect description otherwise, so test assertions
// read EXPECT_EQ(check_certificate(c), "").
#pragma once

#include <string>
#include <vector>

#include "lint/lint.hpp"

namespace aadlsched::witness {

using I128 = __int128;

inline I128 ceil_div_i(I128 a, I128 b) { return (a + b - 1) / b; }

/// Tie-pessimistic level-i workload at window t: the task's own WCET and
/// blocking plus every release of any *other* task with priority >= its
/// own in [0, t). Matches the interference rule the vouching passes claim.
inline I128 fp_workload(const std::vector<lint::CertTask>& rows,
                        std::size_t i, I128 t) {
  I128 w = rows[i].wcet_q + (rows[i].blocking_q > 0 ? rows[i].blocking_q : 0);
  for (std::size_t j = 0; j < rows.size(); ++j) {
    if (j == i || rows[j].priority < rows[i].priority) continue;
    w += ceil_div_i(t, rows[j].period_q) * rows[j].wcet_q;
  }
  return w;
}

/// EDF demand bound function at absolute time t over the certificate rows.
inline I128 demand_at(const std::vector<lint::CertTask>& rows, I128 t) {
  I128 d = 0;
  for (const lint::CertTask& r : rows)
    if (t >= r.deadline_q)
      d += ((t - r.deadline_q) / r.period_q + 1) * r.wcet_q;
  return d;
}

/// Exact utilization comparison: sign of (sum C_i/T_i) - 1, computed as
/// sum(C_i * prod_{j!=i} T_j) vs prod T_j in 128-bit arithmetic. Returns
/// -1/0/+1, or -2 when the products overflow the safe range.
inline int utilization_sign(const std::vector<lint::CertTask>& rows) {
  constexpr I128 kCap = I128{1} << 110;
  I128 den = 1;
  for (const lint::CertTask& r : rows) {
    if (r.period_q <= 0 || den > kCap / r.period_q) return -2;
    den *= r.period_q;
  }
  I128 num = 0;
  for (const lint::CertTask& r : rows) {
    const I128 share = (den / r.period_q) * r.wcet_q;
    if (num > kCap - share) return -2;
    num += share;
  }
  return num < den ? -1 : num == den ? 0 : 1;
}

inline std::string check_certificate(const lint::StaticCertificate& c) {
  const std::vector<lint::CertTask>& rows = c.tasks;
  const auto fail = [&](const std::string& why) {
    return c.check_id + "/" + c.kind + ": " + why;
  };
  if (rows.empty()) return fail("certificate carries no task rows");

  if (c.kind == "wcet-exceeds-deadline") {
    // Single-task refutation; needs no period (a periodic thread missing
    // its Period still certifies this way).
    if (c.schedulable) return fail("must claim not schedulable");
    if (rows[0].deadline_q <= 0) return fail("missing deadline");
    if (rows[0].wcet_q <= rows[0].deadline_q)
      return fail("WCET does not exceed the deadline");
    return {};
  }

  for (const lint::CertTask& r : rows) {
    if (r.wcet_q < 0 || r.period_q <= 0 || r.deadline_q <= 0)
      return fail("row '" + r.path + "' has non-positive parameters");
  }

  if (c.kind == "fp-response-bound") {
    if (!c.schedulable) return fail("must claim schedulable");
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const I128 r = rows[i].response_q;
      if (r < 0) return fail("row '" + rows[i].path + "' lacks a response");
      if (r > rows[i].deadline_q)
        return fail("response exceeds deadline for '" + rows[i].path + "'");
      // A window of length R that absorbs the level-i workload witnesses a
      // fixed point at or below R, hence a response time <= deadline.
      if (fp_workload(rows, i, r) > r)
        return fail("claimed response for '" + rows[i].path +
                    "' does not absorb the level-i workload");
    }
    return {};
  }

  if (c.kind == "fp-overload-witness") {
    if (c.schedulable) return fail("must claim not schedulable");
    if (c.window_q <= 0) return fail("missing deadline window");
    if (rows[0].deadline_q != c.window_q)
      return fail("window is not the witness task's deadline");
    // The witness task (row 0) misses iff the level workload stays strictly
    // above the supply at EVERY point of its deadline window — checking
    // only t = window is not sufficient, so brute-force all of it.
    for (I128 t = 1; t <= c.window_q; ++t)
      if (fp_workload(rows, 0, t) <= t)
        return fail("workload fits at t=" +
                    std::to_string(static_cast<long long>(t)) +
                    "; no forced miss");
    if (c.demand_q >= 0 && fp_workload(rows, 0, c.window_q) != c.demand_q)
      return fail("stated demand does not match the recomputed workload");
    return {};
  }

  if (c.kind == "edf-demand") {
    if (!c.schedulable) return fail("must claim schedulable");
    if (c.window_q <= 0) return fail("missing check bound");
    const int u = utilization_sign(rows);
    if (u == -2) return fail("utilization overflows the checker");
    if (u > 0) return fail("utilization exceeds 1; bound cannot hold");
    // Demand can only cross supply at an absolute deadline, so enumerating
    // them up to the stated bound replays the full feasibility claim.
    for (const lint::CertTask& r : rows)
      for (I128 d = r.deadline_q; d <= c.window_q; d += r.period_q)
        if (demand_at(rows, d) > d)
          return fail("demand overflow at absolute deadline " +
                      std::to_string(static_cast<long long>(d)));
    return {};
  }

  if (c.kind == "edf-overflow-witness") {
    if (c.schedulable) return fail("must claim not schedulable");
    if (c.window_q <= 0) return fail("missing overflow point");
    const I128 d = demand_at(rows, c.window_q);
    if (d <= c.window_q) return fail("no demand overflow at the window");
    if (c.demand_q >= 0 && d != c.demand_q)
      return fail("stated demand does not match the recomputed dbf");
    return {};
  }

  if (c.kind == "utilization-overload") {
    if (c.schedulable) return fail("must claim not schedulable");
    const int u = utilization_sign(rows);
    if (u == -2) return fail("utilization overflows the checker");
    if (u <= 0) return fail("recomputed utilization is not above 1");
    return {};
  }

  if (c.kind == "hyperbolic-bound") {
    if (!c.schedulable) return fail("must claim schedulable");
    constexpr I128 kCap = I128{1} << 110;
    I128 lhs = 1, rhs = 2;
    for (const lint::CertTask& r : rows) {
      if (r.deadline_q != r.period_q)
        return fail("row '" + r.path + "' is not implicit-deadline");
      const I128 a = r.wcet_q + r.period_q;
      if (lhs > kCap / a || rhs > kCap / r.period_q)
        return fail("bound overflows the checker");
      lhs *= a;
      rhs *= r.period_q;
    }
    if (lhs > rhs) return fail("hyperbolic bound does not hold");
    return {};
  }

  if (c.kind == "edf-utilization") {
    if (!c.schedulable) return fail("must claim schedulable");
    for (const lint::CertTask& r : rows)
      if (r.deadline_q != r.period_q)
        return fail("row '" + r.path + "' is not implicit-deadline");
    const int u = utilization_sign(rows);
    if (u == -2) return fail("utilization overflows the checker");
    if (u > 0) return fail("recomputed utilization exceeds 1");
    return {};
  }

  return fail("unknown certificate kind");
}

/// Validate every certificate a report carries; first defect wins.
inline std::string check_all(const lint::Report& r) {
  for (const lint::StaticCertificate& c : r.certificates) {
    const std::string defect = check_certificate(c);
    if (!defect.empty()) return defect;
  }
  return {};
}

}  // namespace aadlsched::witness
