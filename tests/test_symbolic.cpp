// Symbolic engine suite (DESIGN.md §16): the DBM zone algebra, the
// state-class graph itself, the AADL fragment extraction, the analyzer
// wiring, and — the load-bearing part — the cross-engine agreement
// contract: on every model inside the fragment the symbolic verdict and
// the canonical result JSON must match the unit-quantum enumerator
// byte-for-byte once the engine-observability counters are normalized
// away. The agreement matrix has its own directory-coverage test so a new
// example model cannot land without declaring its expected applicability.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "aadl/parser.hpp"
#include "core/analyzer.hpp"
#include "core/result_json.hpp"
#include "core/symbolic_extract.hpp"
#include "core/taskset_aadl.hpp"
#include "sched/analysis.hpp"
#include "sched/workload.hpp"
#include "versa/dbm.hpp"
#include "versa/sweep.hpp"
#include "versa/symbolic.hpp"

namespace {

using namespace aadlsched;
using versa::Dbm;
using versa::DbmBound;

constexpr std::int64_t ms(std::int64_t v) { return v * 1'000'000; }

std::string models_dir() { return AADLSCHED_MODELS_DIR; }

std::string read_model(const std::string& file) {
  std::ifstream in(models_dir() + "/" + file);
  EXPECT_TRUE(in.good()) << "cannot open " << file;
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

/// Blank one top-level scalar field of the canonical result JSON.
std::string normalize_field(std::string json, const std::string& field) {
  const std::string key = "\"" + field + "\": ";
  const auto pos = json.find(key);
  if (pos == std::string::npos) return json;
  auto end = pos + key.size();
  while (end < json.size() && json[end] != ',' && json[end] != '}') ++end;
  json.replace(pos + key.size(), end - (pos + key.size()), "X");
  return json;
}

/// The agreement contract (DESIGN.md §16): everything except how the
/// engine got there — engine name, class/state counts, timings — must be
/// byte-identical across engines.
std::string normalize_engine_observability(std::string json) {
  for (const char* field : {"engine", "states", "transitions", "depth",
                            "explore_ms", "peak_frontier"})
    json = normalize_field(std::move(json), field);
  return json;
}

// --- DBM zone algebra ----------------------------------------------------

TEST(Dbm, PointZoneIsCanonicalAndSelfIncluding) {
  const Dbm p = Dbm::point({3, 5});
  ASSERT_FALSE(p.empty());
  EXPECT_EQ(p.dimension(), 3u);
  // x1 = 3: x1 - 0 <= 3 and 0 - x1 <= -3.
  EXPECT_EQ(p.at(1, 0), (DbmBound{3, false}));
  EXPECT_EQ(p.at(0, 1), (DbmBound{-3, false}));
  // Implied difference bound is explicit after canonicalization.
  EXPECT_EQ(p.at(1, 2), (DbmBound{-2, false}));
  EXPECT_TRUE(p.includes(p));
  EXPECT_EQ(p, p);
}

TEST(Dbm, UpRemovesUpperBoundsAndKeepsDifferences) {
  const Dbm p = Dbm::point({3, 5});
  Dbm d = p;
  d.up();
  ASSERT_FALSE(d.empty());
  // Upper bounds gone, lower bounds and differences intact.
  EXPECT_EQ(d.at(1, 0).value, versa::kDbmInf);
  EXPECT_EQ(d.at(2, 0).value, versa::kDbmInf);
  EXPECT_EQ(d.at(0, 1), (DbmBound{-3, false}));
  EXPECT_EQ(d.at(1, 2), (DbmBound{-2, false}));
  EXPECT_EQ(d.at(2, 1), (DbmBound{2, false}));
  // The delay closure includes the point, never the other way around.
  EXPECT_TRUE(d.includes(p));
  EXPECT_FALSE(p.includes(d));
}

TEST(Dbm, ContradictoryConstraintsMakeTheZoneEmpty) {
  Dbm z(1);
  z.constrain_upper(1, 2);
  z.constrain_lower(1, 3);
  z.canonicalize();
  EXPECT_TRUE(z.empty());

  // Strictness matters at the boundary: x <= 2 and x >= 2 is the point 2,
  // x < 2 and x >= 2 is empty.
  Dbm touching(1);
  touching.constrain_upper(1, 2);
  touching.constrain_lower(1, 2);
  touching.canonicalize();
  EXPECT_FALSE(touching.empty());
  Dbm strict(1);
  strict.constrain_upper(1, 2, /*strict=*/true);
  strict.constrain_lower(1, 2);
  strict.canonicalize();
  EXPECT_TRUE(strict.empty());
}

TEST(Dbm, InclusionIsEntrywiseOnCanonicalForms) {
  Dbm universal(2);
  universal.canonicalize();
  const Dbm p = Dbm::point({1, 4});
  EXPECT_TRUE(universal.includes(p));
  EXPECT_FALSE(p.includes(universal));

  Dbm band(2);
  band.constrain_upper(1, 10);
  band.constrain_upper(2, 10);
  band.canonicalize();
  EXPECT_TRUE(universal.includes(band));
  EXPECT_TRUE(band.includes(p));
  EXPECT_FALSE(band.includes(universal));
}

TEST(Dbm, EqualZonesHashEqual) {
  const Dbm a = Dbm::point({7, 2});
  const Dbm b = Dbm::point({7, 2});
  const Dbm c = Dbm::point({7, 3});
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.hash(), b.hash());
  EXPECT_NE(a, c);  // hashes may collide; equality must not
  EXPECT_NE(a.to_string(), "");
}

TEST(Dbm, BoundSemiring) {
  EXPECT_TRUE(versa::dbm_less(DbmBound{2, true}, DbmBound{2, false}));
  EXPECT_TRUE(versa::dbm_less(DbmBound{1, false}, DbmBound{2, true}));
  EXPECT_FALSE(versa::dbm_less(versa::dbm_inf(), DbmBound{2, false}));
  const DbmBound sum = versa::dbm_add(DbmBound{2, true}, DbmBound{3, false});
  EXPECT_EQ(sum.value, 5);
  EXPECT_TRUE(sum.strict);
  EXPECT_EQ(versa::dbm_add(versa::dbm_inf(), DbmBound{-4, false}).value,
            versa::kDbmInf);
}

// --- the state-class engine over hand-built task networks ----------------

versa::SymbolicTask task(const char* path, std::int64_t period,
                         std::int64_t deadline, std::int64_t cmin,
                         std::int64_t cmax, int priority,
                         std::size_t cpu = 0, std::int64_t offset = 0) {
  versa::SymbolicTask t;
  t.path = path;
  t.period_ns = period;
  t.deadline_ns = deadline;
  t.cmin_ns = cmin;
  t.cmax_ns = cmax;
  t.priority = priority;
  t.cpu = cpu;
  t.offset_ns = offset;
  return t;
}

TEST(SymbolicEngine, ExactFitCompletingAtTheDeadlineIsOnTime) {
  // 12 + 8 fill the shared 20 ms period exactly; the low-priority thread
  // completes precisely at its deadline (the dispatcher semantics: the
  // AwaitDone receive has no time guard, so t = D is on time).
  versa::SymbolicModel m;
  m.cpu_count = 1;
  m.tasks = {task("major", ms(20), ms(20), ms(12), ms(12), 2),
             task("minor", ms(20), ms(20), ms(8), ms(8), 1)};
  const auto r = versa::explore_symbolic(m);
  EXPECT_TRUE(r.complete);
  EXPECT_FALSE(r.miss_found);
  EXPECT_TRUE(r.schedulable());
  EXPECT_EQ(r.stop, util::StopReason::None);
  EXPECT_EQ(r.dbm_dimension, 3u);
  EXPECT_GT(r.classes, 0u);
  EXPECT_GT(r.depth, 0u);
  // A periodic model only closes its class graph by folding the cycle back
  // into a visited class — subsumption must have fired.
  EXPECT_GT(r.subsumptions, 0u);
  EXPECT_TRUE(r.witness.empty());
  EXPECT_TRUE(r.missed.empty());
}

TEST(SymbolicEngine, OverloadedProcessorYieldsAWitnessTrail) {
  versa::SymbolicModel m;
  m.cpu_count = 1;
  m.tasks = {task("hog", ms(20), ms(20), ms(15), ms(15), 2),
             task("starved", ms(20), ms(20), ms(8), ms(8), 1)};
  const auto r = versa::explore_symbolic(m);
  EXPECT_TRUE(r.miss_found);
  EXPECT_FALSE(r.schedulable());
  ASSERT_FALSE(r.witness.empty());
  EXPECT_NE(r.witness.front().find("system start"), std::string::npos);
  EXPECT_NE(r.witness.back().find("deadline miss"), std::string::npos);
  ASSERT_EQ(r.missed.size(), 1u);
  EXPECT_EQ(r.missed.front(), "starved");
}

TEST(SymbolicEngine, SingleTaskFillingItsDeadlineExactly) {
  versa::SymbolicModel m;
  m.cpu_count = 1;
  m.tasks = {task("solo", ms(10), ms(5), ms(5), ms(5), 1)};
  EXPECT_TRUE(versa::explore_symbolic(m).schedulable());
  // One more nanosecond of demand misses.
  m.tasks[0].cmin_ns = m.tasks[0].cmax_ns = ms(5) + 1;
  const auto r = versa::explore_symbolic(m);
  EXPECT_TRUE(r.miss_found);
  EXPECT_FALSE(r.schedulable());
}

TEST(SymbolicEngine, DispatchOffsetsShiftTheFirstWindow) {
  // Alone on the cpu, offset 3: jobs run [3+10k, 8+10k], completing right
  // at the deadline each period.
  versa::SymbolicModel m;
  m.cpu_count = 1;
  m.tasks = {task("delayed", ms(10), ms(5), ms(5), ms(5), 1, 0, ms(3))};
  EXPECT_TRUE(versa::explore_symbolic(m).schedulable());
}

TEST(SymbolicEngine, CornerDemandsBranchWithoutChangingTheVerdict) {
  // Interval demand on the high-priority task: the corner fan explores
  // both {cmin, cmax}; the all-cmax corner alone decides identically
  // (demand monotonicity, DESIGN.md §16).
  versa::SymbolicModel m;
  m.cpu_count = 1;
  m.tasks = {task("hi", ms(10), ms(10), ms(2), ms(4), 2),
             task("lo", ms(20), ms(20), ms(5), ms(5), 1)};
  versa::SymbolicOptions corners;
  corners.corner_demands = true;
  versa::SymbolicOptions cmax_only;
  cmax_only.corner_demands = false;
  const auto with = versa::explore_symbolic(m, corners);
  const auto without = versa::explore_symbolic(m, cmax_only);
  EXPECT_TRUE(with.schedulable());
  EXPECT_TRUE(without.schedulable());
  EXPECT_GT(with.classes, without.classes);
}

TEST(SymbolicEngine, TwoProcessorsAreIndependent) {
  // Each cpu overloaded by the other's task if shared; partitioned fine.
  versa::SymbolicModel m;
  m.cpu_count = 2;
  m.tasks = {task("a", ms(4), ms(4), ms(3), ms(3), 1, 0),
             task("b", ms(4), ms(4), ms(3), ms(3), 1, 1)};
  EXPECT_TRUE(versa::explore_symbolic(m).schedulable());
  m.cpu_count = 1;
  m.tasks[1].cpu = 0;
  m.tasks[1].priority = 2;
  EXPECT_TRUE(versa::explore_symbolic(m).miss_found);
}

TEST(SymbolicEngine, MaxClassesCapStopsInconclusively) {
  versa::SymbolicModel m;
  m.cpu_count = 1;
  m.tasks = {task("major", ms(20), ms(20), ms(12), ms(12), 2),
             task("minor", ms(20), ms(20), ms(8), ms(8), 1)};
  versa::SymbolicOptions opts;
  opts.max_classes = 2;
  const auto r = versa::explore_symbolic(m, opts);
  EXPECT_FALSE(r.complete);
  EXPECT_FALSE(r.miss_found);
  EXPECT_FALSE(r.schedulable());
  EXPECT_EQ(r.stop, util::StopReason::MaxStates);
}

TEST(SymbolicEngine, ValidateModelRefusesMalformedNetworks) {
  versa::SymbolicModel empty;
  EXPECT_FALSE(versa::validate_model(empty).empty());

  versa::SymbolicModel m;
  m.cpu_count = 1;
  m.tasks = {task("a", ms(10), ms(10), ms(1), ms(1), 1),
             task("b", ms(10), ms(12), ms(1), ms(1), 1)};  // D > T, dup prio
  const auto reasons = versa::validate_model(m);
  ASSERT_EQ(reasons.size(), 2u);
  EXPECT_NE(reasons[0].find("deadline is not constrained"),
            std::string::npos);
  EXPECT_NE(reasons[1].find("share a priority"), std::string::npos);

  // explore_symbolic surfaces the refusal as a Fault, never a verdict.
  const auto r = versa::explore_symbolic(m);
  EXPECT_EQ(r.stop, util::StopReason::Fault);
  EXPECT_FALSE(r.complete);
  EXPECT_FALSE(r.schedulable());
  EXPECT_EQ(r.witness, reasons);
}

// --- AADL fragment extraction --------------------------------------------

core::SymbolicExtraction extract(const std::string& src,
                                 const std::string& root) {
  aadl::Model model;
  util::DiagnosticEngine diags;
  EXPECT_TRUE(aadl::parse_aadl(model, src, diags)) << diags.render_all();
  auto inst = aadl::instantiate(model, root, diags);
  EXPECT_NE(inst, nullptr) << diags.render_all();
  return core::extract_symbolic(*inst, translate::TranslateOptions{});
}

TEST(SymbolicExtract, QuantumLadderIsInsideTheFragment) {
  const auto sx =
      extract(read_model("quantum_ladder.aadl"), "QuantumLadder.impl");
  ASSERT_TRUE(sx.applicable) << sx.why();
  ASSERT_EQ(sx.model.tasks.size(), 2u);
  EXPECT_EQ(sx.model.cpu_count, 1u);
  // Exact nanoseconds, no quantum anywhere.
  std::set<std::int64_t> demands;
  for (const auto& t : sx.model.tasks) {
    EXPECT_EQ(t.period_ns, ms(20));
    EXPECT_EQ(t.deadline_ns, ms(20));
    EXPECT_EQ(t.cmin_ns, t.cmax_ns);
    demands.insert(t.cmax_ns);
  }
  EXPECT_EQ(demands, (std::set<std::int64_t>{ms(8), ms(12)}));
  EXPECT_NE(sx.model.tasks[0].priority, sx.model.tasks[1].priority);
}

TEST(SymbolicExtract, DualRigCarriesProcessorsAndOffsets) {
  const auto sx = extract(read_model("dual_rig.aadl"), "DualRig.impl");
  ASSERT_TRUE(sx.applicable) << sx.why();
  ASSERT_EQ(sx.model.tasks.size(), 3u);
  EXPECT_EQ(sx.model.cpu_count, 2u);
  std::set<std::int64_t> offsets;
  for (const auto& t : sx.model.tasks) offsets.insert(t.offset_ns);
  EXPECT_EQ(offsets, (std::set<std::int64_t>{0, ms(5), ms(10)}));
}

TEST(SymbolicExtract, CruiseControlIsRefusedWithReasons) {
  const auto sx = extract(read_model("cruise_control.aadl"),
                          "CruiseControlSystem.impl");
  EXPECT_FALSE(sx.applicable);
  ASSERT_FALSE(sx.reasons.empty());
  EXPECT_NE(sx.why().find("bus"), std::string::npos) << sx.why();
}

TEST(SymbolicExtract, SymmetricSharedPrioritiesAreRefused) {
  const auto sx = extract(read_model("symmetric.aadl"), "Symmetric.impl");
  EXPECT_FALSE(sx.applicable);
  EXPECT_NE(sx.why().find("HPF priority"), std::string::npos) << sx.why();
}

// --- analyzer wiring -----------------------------------------------------

core::AnalyzerOptions engine_options(core::Engine engine) {
  core::AnalyzerOptions opts;
  opts.translation.quantum_ns = 1'000'000;
  opts.run_lint = false;
  opts.engine = engine;
  return opts;
}

TEST(SymbolicAnalyzer, EngineStringsRoundTrip) {
  for (const core::Engine e : {core::Engine::Enumerative,
                               core::Engine::Symbolic, core::Engine::Auto}) {
    const auto parsed = core::engine_from_string(core::to_string(e));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, e);
  }
  EXPECT_FALSE(core::engine_from_string("zonal").has_value());
  EXPECT_FALSE(core::engine_from_string("").has_value());
}

TEST(SymbolicAnalyzer, SymbolicVerdictCarriesTheEngineObservability) {
  const auto r = core::analyze_source(
      read_model("quantum_ladder.aadl"), "QuantumLadder.impl",
      engine_options(core::Engine::Symbolic));
  ASSERT_TRUE(r.ok) << r.diagnostics;
  EXPECT_EQ(r.engine, "symbolic");
  EXPECT_EQ(r.outcome, core::Outcome::Schedulable);
  EXPECT_TRUE(r.exhaustive);
  EXPECT_GT(r.states, 0u);
  EXPECT_GT(r.zone_subsumptions, 0u);
  EXPECT_EQ(r.dbm_dimension, 3u);
  const std::string json = core::render_result_json(r);
  EXPECT_NE(json.find("\"engine\": \"symbolic\""), std::string::npos);
  EXPECT_NE(r.summary().find("symbolic:"), std::string::npos);
  EXPECT_NE(r.summary().find("zones explored"), std::string::npos);
}

TEST(SymbolicAnalyzer, AutoFallsBackWithTheReasonsInDiagnostics) {
  const auto r = core::analyze_source(read_model("cruise_control.aadl"),
                                      "CruiseControlSystem.impl",
                                      engine_options(core::Engine::Auto));
  ASSERT_TRUE(r.ok) << r.diagnostics;
  EXPECT_EQ(r.engine, "enumerative");
  EXPECT_EQ(r.outcome, core::Outcome::Schedulable);
  EXPECT_NE(r.diagnostics.find("symbolic engine inapplicable"),
            std::string::npos);
  EXPECT_NE(r.diagnostics.find("falling back to enumerative"),
            std::string::npos);
  EXPECT_EQ(r.zone_subsumptions, 0u);
}

TEST(SymbolicAnalyzer, AutoUsesTheSymbolicEngineInsideTheFragment) {
  const auto r = core::analyze_source(
      read_model("quantum_ladder.aadl"), "QuantumLadder.impl",
      engine_options(core::Engine::Auto));
  ASSERT_TRUE(r.ok) << r.diagnostics;
  EXPECT_EQ(r.engine, "symbolic");
  EXPECT_EQ(r.outcome, core::Outcome::Schedulable);
}

TEST(SymbolicAnalyzer, ForcedSymbolicOutsideTheFragmentIsAnError) {
  const auto r = core::analyze_source(read_model("cruise_control.aadl"),
                                      "CruiseControlSystem.impl",
                                      engine_options(core::Engine::Symbolic));
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.outcome, core::Outcome::Error);
  EXPECT_NE(r.diagnostics.find("symbolic engine inapplicable"),
            std::string::npos);
}

constexpr char kOverloadModel[] = R"(
package Overload
public
  processor CPU
  properties
    Scheduling_Protocol => RATE_MONOTONIC_PROTOCOL;
  end CPU;

  thread Hog
  end Hog;

  thread implementation Hog.impl
  properties
    Dispatch_Protocol => Periodic;
    Period => 20 ms;
    Compute_Execution_Time => 15 ms .. 15 ms;
    Deadline => 20 ms;
  end Hog.impl;

  thread Starved
  end Starved;

  thread implementation Starved.impl
  properties
    Dispatch_Protocol => Periodic;
    Period => 40 ms;
    Compute_Execution_Time => 12 ms .. 12 ms;
    Deadline => 40 ms;
  end Starved.impl;

  system Overload
  end Overload;

  system implementation Overload.impl
  subcomponents
    hog : thread Hog.impl;
    starved : thread Starved.impl;
    cpu : processor CPU;
  properties
    Actual_Processor_Binding => reference (cpu) applies to hog;
    Actual_Processor_Binding => reference (cpu) applies to starved;
  end Overload.impl;
end Overload;
)";

TEST(SymbolicAnalyzer, MissRendersTheWitnessTrailInTheSummary) {
  const auto sym = core::analyze_source(kOverloadModel, "Overload.impl",
                                        engine_options(core::Engine::Symbolic));
  ASSERT_TRUE(sym.ok) << sym.diagnostics;
  EXPECT_EQ(sym.outcome, core::Outcome::NotSchedulable);
  EXPECT_TRUE(sym.exhaustive);  // a found miss is conclusive
  EXPECT_FALSE(sym.schedulable);
  ASSERT_FALSE(sym.symbolic_witness.empty());
  const std::string summary = sym.summary();
  EXPECT_NE(summary.find("Counterexample event trail"), std::string::npos);
  EXPECT_NE(summary.find("deadline miss"), std::string::npos);

  // Same verdict as the enumerator, byte-for-byte after normalization.
  const auto en = core::analyze_source(
      kOverloadModel, "Overload.impl",
      engine_options(core::Engine::Enumerative));
  ASSERT_TRUE(en.ok) << en.diagnostics;
  EXPECT_EQ(en.outcome, core::Outcome::NotSchedulable);
  EXPECT_EQ(normalize_engine_observability(core::render_result_json(sym)),
            normalize_engine_observability(core::render_result_json(en)));
}

// --- the cross-engine agreement matrix -----------------------------------

struct AgreementModel {
  const char* file;
  const char* root;
  bool applicable;  // inside the symbolic fragment?
  std::int64_t quantum_ns;  // a divisor of every parameter, so the
                            // enumerator's rounding is exact
};

/// Every shipped example model with its expected symbolic applicability.
/// The DirectoryIsFullyCovered test fails when a model lands without being
/// classified here — agreement coverage must stay exhaustive.
constexpr AgreementModel kAgreement[] = {
    {"cruise_control.aadl", "CruiseControlSystem.impl", false, 1'000'000},
    {"avionics.aadl", "Avionics.impl", false, 1'000'000},
    {"storm.aadl", "Storm.impl", false, 1'000'000},
    {"symmetric.aadl", "Symmetric.impl", false, 1'000'000},
    {"quantum_ladder.aadl", "QuantumLadder.impl", true, 1'000'000},
    {"slow_periodic.aadl", "SlowPeriodic.impl", true, 10'000'000},
    {"dual_rig.aadl", "DualRig.impl", true, 1'000'000},
};

TEST(SymbolicAgreement, DirectoryIsFullyCovered) {
  std::set<std::string> listed;
  for (const AgreementModel& m : kAgreement) listed.insert(m.file);
  for (const auto& entry :
       std::filesystem::directory_iterator(models_dir())) {
    if (entry.path().extension() != ".aadl") continue;
    EXPECT_TRUE(listed.count(entry.path().filename().string()))
        << entry.path().filename()
        << " is not in the cross-engine agreement matrix; add it to "
           "kAgreement with its expected applicability";
  }
}

TEST(SymbolicAgreement, EveryApplicableModelAgreesByteForByte) {
  for (const AgreementModel& m : kAgreement) {
    const std::string src = read_model(m.file);
    if (!m.applicable) {
      const auto forced = core::analyze_source(
          src, m.root, engine_options(core::Engine::Symbolic));
      EXPECT_FALSE(forced.ok) << m.file;
      EXPECT_NE(forced.diagnostics.find("symbolic engine inapplicable"),
                std::string::npos)
          << m.file;
      continue;
    }
    core::AnalyzerOptions en = engine_options(core::Engine::Enumerative);
    en.translation.quantum_ns = m.quantum_ns;
    core::AnalyzerOptions sy = en;
    sy.engine = core::Engine::Symbolic;

    const auto r_en = core::analyze_source(src, m.root, en);
    const auto r_sy = core::analyze_source(src, m.root, sy);
    ASSERT_TRUE(r_en.ok) << m.file << ": " << r_en.diagnostics;
    ASSERT_TRUE(r_sy.ok) << m.file << ": " << r_sy.diagnostics;
    EXPECT_EQ(r_sy.outcome, r_en.outcome) << m.file;
    EXPECT_EQ(r_sy.schedulable, r_en.schedulable) << m.file;
    EXPECT_EQ(r_sy.exhaustive, r_en.exhaustive) << m.file;
    EXPECT_EQ(
        normalize_engine_observability(core::render_result_json(r_sy)),
        normalize_engine_observability(core::render_result_json(r_en)))
        << m.file;
  }
}

// --- randomized agreement: symbolic == enumerative == closed form --------

class SymbolicProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SymbolicProperty, GeneratedTasksetsAgreeAcrossAllThreeProcedures) {
  const std::uint64_t seed = GetParam();
  sched::WorkloadSpec spec;
  spec.task_count = 3;
  // Sweep utilization 0.6..1.1 with the seed, crossing the schedulability
  // boundary so both verdicts are exercised.
  spec.total_utilization = 0.6 + 0.1 * static_cast<double>(seed % 6);
  sched::TaskSet ts = sched::generate_workload(spec, seed);
  sched::assign_rate_monotonic(ts);
  const std::string src =
      core::taskset_to_aadl(ts, sched::SchedulingPolicy::FixedPriority);

  const auto en = core::analyze_source(
      src, "Root.impl", engine_options(core::Engine::Enumerative));
  const auto sy = core::analyze_source(
      src, "Root.impl", engine_options(core::Engine::Symbolic));
  ASSERT_TRUE(en.ok) << "seed " << seed << "\n" << en.diagnostics << src;
  ASSERT_TRUE(sy.ok) << "seed " << seed << "\n" << sy.diagnostics << src;
  EXPECT_EQ(sy.engine, "symbolic");

  // Engine agreement, byte-for-byte on the canonical result.
  EXPECT_EQ(sy.outcome, en.outcome) << "seed " << seed << "\n" << src;
  EXPECT_EQ(normalize_engine_observability(core::render_result_json(sy)),
            normalize_engine_observability(core::render_result_json(en)))
      << "seed " << seed << "\n" << src;

  // Closed-form agreement: exact RTA on the same task set.
  const bool rta = sched::response_time_analysis(ts).verdict ==
                   sched::Verdict::Schedulable;
  EXPECT_EQ(sy.schedulable, rta) << "seed " << seed << "\n" << src;
}

INSTANTIATE_TEST_SUITE_P(Seeds, SymbolicProperty,
                         ::testing::Range<std::uint64_t>(1, 31));

// --- the acceptance story: decide where the enumerator blows its budget --

TEST(SymbolicBudget, SlowPeriodicDecidesWithinTheEnumeratorsBlownBudget) {
  const std::string src = read_model("slow_periodic.aadl");

  // The enumerator at the CLI-default 1 ms quantum against a 2 s
  // wall-clock budget: the 252 s hyperperiod leaves it inconclusive.
  core::AnalyzerOptions en = engine_options(core::Engine::Enumerative);
  en.exploration.budget.deadline_ms = 2000;
  const auto r_en = core::analyze_source(src, "SlowPeriodic.impl", en);
  ASSERT_TRUE(r_en.ok) << r_en.diagnostics;
  EXPECT_EQ(r_en.outcome, core::Outcome::Inconclusive);
  EXPECT_EQ(r_en.stop_reason, util::StopReason::Deadline);
  EXPECT_FALSE(r_en.schedulable);

  // The symbolic engine under the same budget closes the class graph and
  // proves schedulability outright.
  core::AnalyzerOptions sy = engine_options(core::Engine::Symbolic);
  sy.exploration.budget.deadline_ms = 2000;
  const auto r_sy = core::analyze_source(src, "SlowPeriodic.impl", sy);
  ASSERT_TRUE(r_sy.ok) << r_sy.diagnostics;
  EXPECT_EQ(r_sy.outcome, core::Outcome::Schedulable);
  EXPECT_TRUE(r_sy.exhaustive);
  EXPECT_LT(r_sy.explore_ms, 2000.0);
}

// --- concurrency: symbolic analyses under parallel_sweep (tsan) ----------

TEST(SymbolicConcurrency, ParallelSweepProducesIdenticalResults) {
  const std::string ladder = read_model("quantum_ladder.aadl");
  const std::string rig = read_model("dual_rig.aadl");

  const auto ref_ladder = normalize_field(
      core::render_result_json(core::analyze_source(
          ladder, "QuantumLadder.impl",
          engine_options(core::Engine::Symbolic))),
      "explore_ms");
  const auto ref_rig = normalize_field(
      core::render_result_json(
          core::analyze_source(rig, "DualRig.impl",
                               engine_options(core::Engine::Symbolic))),
      "explore_ms");

  constexpr std::size_t kJobs = 16;
  std::vector<std::string> got(kJobs);
  const auto report = versa::parallel_sweep(
      kJobs,
      [&](std::size_t i) {
        const bool even = (i % 2) == 0;
        const auto r = core::analyze_source(
            even ? ladder : rig,
            even ? "QuantumLadder.impl" : "DualRig.impl",
            engine_options(core::Engine::Symbolic));
        got[i] = normalize_field(core::render_result_json(r), "explore_ms");
      },
      /*workers=*/8);
  ASSERT_TRUE(report.ok());
  for (std::size_t i = 0; i < kJobs; ++i)
    EXPECT_EQ(got[i], (i % 2) == 0 ? ref_ladder : ref_rig) << "job " << i;
}

}  // namespace
