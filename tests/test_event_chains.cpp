// E4: "the tool can handle systems with complex patterns of interaction
// between components, which in AADL go beyond the scope of more
// traditional schedulability analysis algorithms" (§1).
//
// An event chain (periodic producer dispatching a sporadic consumer through
// a queued connection) is analyzed exactly by the exploration, while the
// classical treatment — the consumer as an *independent* sporadic task
// released at the critical instant — is conservative and rejects the
// system.
#include <gtest/gtest.h>

#include "acsr/semantics.hpp"
#include "aadl/parser.hpp"
#include "core/analyzer.hpp"
#include "sched/analysis.hpp"
#include "sched/simulator.hpp"
#include "translate/translator.hpp"
#include "versa/explorer.hpp"

using namespace aadlsched;

namespace {

// Producer: T=4, C=1, high priority. Consumer: sporadic, C=1, D=1,
// dispatched by the producer's completion event. On one cpu.
const char* kChain = R"(
  package Chain
  public
    processor Cpu
    properties
      Scheduling_Protocol => POSIX_1003_HIGHEST_PRIORITY_FIRST_PROTOCOL;
    end Cpu;

    thread Producer
    features
      evt : out event port;
    end Producer;
    thread implementation Producer.impl
    properties
      Dispatch_Protocol => Periodic;
      Period => 4 ms;
      Compute_Execution_Time => 1 ms .. 1 ms;
      Deadline => 4 ms;
      Priority => 2;
    end Producer.impl;

    thread Consumer
    features
      trig : in event port;
    end Consumer;
    thread implementation Consumer.impl
    properties
      Dispatch_Protocol => Sporadic;
      Period => 4 ms;
      Compute_Execution_Time => 1 ms .. 1 ms;
      Deadline => 1 ms;
      Priority => 1;
    end Consumer.impl;

    system R
    end R;
    system implementation R.impl
    subcomponents
      p   : thread Producer.impl;
      c   : thread Consumer.impl;
      cpu : processor Cpu;
    connections
      conn : port p.evt -> c.trig;
    properties
      Actual_Processor_Binding => reference (cpu) applies to p;
      Actual_Processor_Binding => reference (cpu) applies to c;
    end R.impl;
  end Chain;
)";

TEST(EventChains, ExplorationProvesChainSchedulable) {
  core::AnalyzerOptions opts;
  opts.translation.quantum_ns = 1'000'000;
  const auto r = core::analyze_source(kChain, "R.impl", opts);
  ASSERT_TRUE(r.ok) << r.diagnostics << r.summary();
  EXPECT_TRUE(r.schedulable)
      << "the consumer is only released when the cpu has just become free";
}

TEST(EventChains, ClassicalIndependentTreatmentIsConservative) {
  // The same two tasks treated as independent with synchronous release:
  // the producer (higher priority) steals the consumer's only quantum.
  sched::TaskSet ts;
  sched::Task p;
  p.name = "p";
  p.wcet = p.bcet = 1;
  p.period = p.deadline = 4;
  p.priority = 2;
  sched::Task c;
  c.name = "c";
  c.wcet = c.bcet = 1;
  c.period = 4;
  c.deadline = 1;
  c.priority = 1;
  c.kind = sched::DispatchKind::Sporadic;
  ts.tasks = {p, c};
  EXPECT_FALSE(sched::simulate(ts).schedulable);
  EXPECT_EQ(sched::response_time_analysis(ts).verdict,
            sched::Verdict::Unschedulable);
}

TEST(EventChains, TwoHopPipelineEndToEnd) {
  // Producer -> mid (sporadic) -> sink (sporadic), each 1 quantum, on one
  // cpu; the pipeline drains within the producer's period.
  const char* src = R"(
    package Pipe
    public
      processor Cpu
      properties
        Scheduling_Protocol => POSIX_1003_HIGHEST_PRIORITY_FIRST_PROTOCOL;
      end Cpu;
      thread Producer
      features
        evt : out event port;
      end Producer;
      thread implementation Producer.impl
      properties
        Dispatch_Protocol => Periodic;
        Period => 6 ms;
        Compute_Execution_Time => 1 ms .. 1 ms;
        Deadline => 6 ms;
        Priority => 3;
      end Producer.impl;
      thread Mid
      features
        trig : in event port;
        fwd  : out event port;
      end Mid;
      thread implementation Mid.impl
      properties
        Dispatch_Protocol => Sporadic;
        Period => 6 ms;
        Compute_Execution_Time => 1 ms .. 1 ms;
        Deadline => 3 ms;
        Priority => 2;
      end Mid.impl;
      thread Sink
      features
        trig : in event port;
      end Sink;
      thread implementation Sink.impl
      properties
        Dispatch_Protocol => Sporadic;
        Period => 6 ms;
        Compute_Execution_Time => 1 ms .. 1 ms;
        Deadline => 3 ms;
        Priority => 1;
      end Sink.impl;
      system R
      end R;
      system implementation R.impl
      subcomponents
        p   : thread Producer.impl;
        m   : thread Mid.impl;
        s   : thread Sink.impl;
        cpu : processor Cpu;
      connections
        c1 : port p.evt -> m.trig;
        c2 : port m.fwd -> s.trig;
      properties
        Actual_Processor_Binding => reference (cpu) applies to p;
        Actual_Processor_Binding => reference (cpu) applies to m;
        Actual_Processor_Binding => reference (cpu) applies to s;
      end R.impl;
    end Pipe;
  )";
  core::AnalyzerOptions opts;
  opts.translation.quantum_ns = 1'000'000;
  const auto r = core::analyze_source(src, "R.impl", opts);
  ASSERT_TRUE(r.ok) << r.diagnostics << r.summary();
  EXPECT_TRUE(r.schedulable) << r.summary();
  EXPECT_GT(r.states, 5u);
}

TEST(EventChains, TightenedMidDeadlineFails) {
  // Same pipeline but Mid's deadline shrinks below its dispatch latency
  // once the producer interferes on the second round: with D = 1 the chain
  // still works (mid runs right after p), so use a mid with C = 2, D = 2
  // and a sink that steals a quantum... simplest failing variant: give Mid
  // C = 2 and D = 1, which can never fit.
  std::string src = R"(
    package Pipe2
    public
      processor Cpu
      properties
        Scheduling_Protocol => POSIX_1003_HIGHEST_PRIORITY_FIRST_PROTOCOL;
      end Cpu;
      thread Producer
      features
        evt : out event port;
      end Producer;
      thread implementation Producer.impl
      properties
        Dispatch_Protocol => Periodic;
        Period => 6 ms;
        Compute_Execution_Time => 1 ms .. 1 ms;
        Deadline => 6 ms;
        Priority => 2;
      end Producer.impl;
      thread Mid
      features
        trig : in event port;
      end Mid;
      thread implementation Mid.impl
      properties
        Dispatch_Protocol => Sporadic;
        Period => 6 ms;
        Compute_Execution_Time => 2 ms .. 2 ms;
        Deadline => 1 ms;
        Priority => 1;
      end Mid.impl;
      system R
      end R;
      system implementation R.impl
      subcomponents
        p   : thread Producer.impl;
        m   : thread Mid.impl;
        cpu : processor Cpu;
      connections
        c1 : port p.evt -> m.trig;
      properties
        Actual_Processor_Binding => reference (cpu) applies to p;
        Actual_Processor_Binding => reference (cpu) applies to m;
      end R.impl;
    end Pipe2;
  )";
  core::AnalyzerOptions opts;
  opts.translation.quantum_ns = 1'000'000;
  const auto r = core::analyze_source(src, "R.impl", opts);
  ASSERT_TRUE(r.ok) << r.diagnostics;
  EXPECT_FALSE(r.schedulable);
  ASSERT_TRUE(r.scenario.has_value());
  EXPECT_FALSE(r.scenario->missed_threads.empty());
}

}  // namespace
