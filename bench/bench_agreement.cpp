// E1 — §5: "the resulting ACSR model is deadlock-free if and only if every
// task meets its deadline". Large randomized agreement check between the
// exploration verdict and the exact classical procedures, reported as a
// confusion matrix (it must be diagonal).
#include "bench_common.hpp"

namespace {

using namespace aadlsched;

void print_table() {
  bench::print_header("E1: deadlock-freedom <=> schedulability",
                      "confusion matrices must be diagonal");
  const int kSets = 60;

  int fp[2][2] = {{0, 0}, {0, 0}};
  for (int seed = 1; seed <= kSets; ++seed) {
    sched::TaskSet ts = bench::workload(
        static_cast<std::uint64_t>(seed) * 101 + 3, 3, 0.88);
    sched::assign_rate_monotonic(ts);
    const bool exact = sched::response_time_analysis(ts).verdict ==
                       sched::Verdict::Schedulable;
    const auto r =
        bench::run_taskset(ts, sched::SchedulingPolicy::FixedPriority);
    fp[exact ? 1 : 0][r.explored.schedulable() ? 1 : 0]++;
  }
  std::printf("fixed priority (vs exact RTA), %d sets:\n", kSets);
  std::printf("                 explore:miss  explore:ok\n");
  std::printf("  rta:miss       %11d %11d\n", fp[0][0], fp[0][1]);
  std::printf("  rta:ok         %11d %11d\n", fp[1][0], fp[1][1]);

  int edf[2][2] = {{0, 0}, {0, 0}};
  for (int seed = 1; seed <= kSets; ++seed) {
    const sched::TaskSet ts = bench::workload(
        static_cast<std::uint64_t>(seed) * 101 + 3, 3, 0.92, 0.8);
    const bool exact = sched::edf_demand_analysis(ts).verdict ==
                       sched::Verdict::Schedulable;
    const auto r = bench::run_taskset(ts, sched::SchedulingPolicy::Edf);
    edf[exact ? 1 : 0][r.explored.schedulable() ? 1 : 0]++;
  }
  std::printf("EDF (vs processor-demand analysis), %d sets:\n", kSets);
  std::printf("                 explore:miss  explore:ok\n");
  std::printf("  pda:miss       %11d %11d\n", edf[0][0], edf[0][1]);
  std::printf("  pda:ok         %11d %11d\n", edf[1][0], edf[1][1]);
  std::printf("\n");
}

void BM_AgreementRound(benchmark::State& state) {
  for (auto _ : state) {
    sched::TaskSet ts = bench::workload(7, 3, 0.88);
    sched::assign_rate_monotonic(ts);
    benchmark::DoNotOptimize(
        bench::run_taskset(ts, sched::SchedulingPolicy::FixedPriority));
  }
}
BENCHMARK(BM_AgreementRound);

}  // namespace

int main(int argc, char** argv) {
  return aadlsched::bench::run_main(argc, argv, print_table);
}
