// E7b — throughput of analysis sweeps. A Context is single-threaded by
// design, so parallelism lives at the sweep level: N independent analyses
// (one model variant each) across a worker pool. Table: batch wall time vs
// worker count. On a single-core host the speedup is ~1x by construction;
// the bench still validates that the sweep scales with available
// hardware_concurrency and adds no contention overhead.
#include <chrono>

#include "bench_common.hpp"
#include "versa/sweep.hpp"

namespace {

using namespace aadlsched;

constexpr int kBatch = 24;

void one_job(std::size_t i) {
  sched::TaskSet ts =
      bench::workload(static_cast<std::uint64_t>(i) * 17 + 5, 4, 0.85);
  sched::assign_rate_monotonic(ts);
  benchmark::DoNotOptimize(
      bench::run_taskset(ts, sched::SchedulingPolicy::FixedPriority));
}

void print_table() {
  bench::print_header("E7b: parallel analysis sweeps",
                      "independent analyses scale across workers (bounded "
                      "by physical cores; this host reports its own "
                      "concurrency)");
  std::printf("hardware_concurrency = %u, batch = %d analyses\n",
              std::thread::hardware_concurrency(), kBatch);
  std::printf("%8s %12s %10s\n", "workers", "time_ms", "speedup");
  double base = 0;
  for (std::size_t workers : {1u, 2u, 4u}) {
    const auto t0 = std::chrono::steady_clock::now();
    versa::parallel_sweep(kBatch, one_job, workers);
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    if (workers == 1) base = ms;
    std::printf("%8zu %12.2f %9.2fx\n", workers, ms,
                base > 0 ? base / ms : 1.0);
  }
  std::printf("\n");
}

void BM_SweepSequential(benchmark::State& state) {
  for (auto _ : state) versa::parallel_sweep(8, one_job, 1);
}
BENCHMARK(BM_SweepSequential);

void BM_SweepParallel(benchmark::State& state) {
  for (auto _ : state) versa::parallel_sweep(8, one_job, 0);
}
BENCHMARK(BM_SweepParallel);

}  // namespace

int main(int argc, char** argv) {
  return aadlsched::bench::run_main(argc, argv, print_table);
}
