// E7c — single-model parallel exploration: serial BFS vs the
// level-synchronous parallel explorer on the largest example model and on a
// generated 8-thread set. Table: wall time, speedup over serial, states/sec
// as the worker count grows; workers=1 doubles as the serial-fallback
// overhead measurement.
#include <fstream>
#include <sstream>
#include <thread>

#include "bench_common.hpp"

namespace {

using namespace aadlsched;

std::string read_model(const char* name) {
  std::ifstream in(std::string(AADLSCHED_MODELS_DIR) + "/" + name);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

struct Prepared {
  acsr::Context ctx;
  acsr::TermId initial = acsr::kNil;
  bool ok = false;
};

void prepare(Prepared& p, const std::string& src, std::string_view root,
             std::int64_t quantum_ns) {
  util::DiagnosticEngine diags("bench.aadl");
  aadl::Model model;
  if (!aadl::parse_aadl(model, src, diags)) return;
  auto inst = aadl::instantiate(model, root, diags);
  if (!inst || diags.has_errors()) return;
  translate::TranslateOptions topts;
  topts.quantum_ns = quantum_ns;
  auto tr = translate::translate(p.ctx, *inst, diags, topts);
  if (!tr) return;
  p.initial = tr->initial;
  p.ok = true;
}

// Tasks with bcet < wcet: the committed-demand model branches on every
// dispatch, so the frontier is wide enough for the level-parallel engine to
// have per-level work to distribute (peak frontier in the hundreds).
sched::TaskSet branching_tasks() {
  sched::TaskSet ts;
  const sched::Time periods[] = {8, 12, 16, 16, 24, 24};
  for (std::size_t i = 0; i < 6; ++i) {
    sched::Task t;
    t.name = "t" + std::to_string(i);
    t.period = t.deadline = periods[i];
    t.wcet = std::max<sched::Time>(2, t.period / 6);
    t.bcet = 1;
    ts.tasks.push_back(t);
  }
  sched::assign_rate_monotonic(ts);
  return ts;
}

void print_model_table(const char* title, const std::string& src,
                       std::string_view root, std::int64_t quantum_ns) {
  versa::ExploreOptions eopts;
  eopts.stop_at_first_deadlock = false;  // exhaustive: identical work per run

  // Serial baseline (fresh Context: exploration cost includes interning).
  Prepared s;
  prepare(s, src, root, quantum_ns);
  if (!s.ok) {
    std::printf("%s: model failed to translate\n", title);
    return;
  }
  acsr::Semantics sem(s.ctx);
  const auto serial = versa::explore(sem, s.initial, eopts);

  std::printf("%s (%llu states, %llu transitions)\n", title,
              static_cast<unsigned long long>(serial.states),
              static_cast<unsigned long long>(serial.transitions));
  std::printf("%10s %12s %10s %14s %14s\n", "engine", "time_ms", "speedup",
              "states/sec", "peak_frontier");
  std::printf("%10s %12.2f %9.2fx %14.0f %14llu\n", "serial", serial.wall_ms,
              1.0, serial.states / (serial.wall_ms / 1e3),
              static_cast<unsigned long long>(serial.peak_frontier));

  for (std::size_t workers : {1u, 2u, 4u, 8u}) {
    Prepared p;
    prepare(p, src, root, quantum_ns);
    versa::ParallelExploreOptions popts;
    popts.workers = workers;
    const auto r = versa::explore_parallel(p.ctx, p.initial, eopts, popts);
    std::printf("%9zuw %12.2f %9.2fx %14.0f %14llu\n", workers, r.wall_ms,
                serial.wall_ms / r.wall_ms, r.states / (r.wall_ms / 1e3),
                static_cast<unsigned long long>(r.peak_frontier));
    if (r.states != serial.states || r.transitions != serial.transitions)
      std::printf("  !! MISMATCH vs serial (states %llu, transitions %llu)\n",
                  static_cast<unsigned long long>(r.states),
                  static_cast<unsigned long long>(r.transitions));
  }
  std::printf("\n");
}

void print_table() {
  bench::print_header(
      "E7c: single-model parallel exploration",
      "level-synchronous parallel BFS with sharded visited set and shared "
      "hash-consing; workers=1 measures the serial-fallback overhead");
  std::printf("hardware_concurrency = %u\n\n",
              std::thread::hardware_concurrency());
  print_model_table("avionics.aadl (1 ms quantum)", read_model("avionics.aadl"),
                    "Avionics.impl", 1'000'000);
  print_model_table(
      "generated 6-task RM set, bcet<wcet (1 ms quantum)",
      core::taskset_to_aadl(branching_tasks(),
                            sched::SchedulingPolicy::FixedPriority),
      "Root.impl", 1'000'000);
}

void BM_SerialExplore(benchmark::State& state) {
  const std::string src = read_model("avionics.aadl");
  versa::ExploreOptions eopts;
  eopts.stop_at_first_deadlock = false;
  for (auto _ : state) {
    Prepared p;
    prepare(p, src, "Avionics.impl", 1'000'000);
    acsr::Semantics sem(p.ctx);
    benchmark::DoNotOptimize(versa::explore(sem, p.initial, eopts));
  }
}
BENCHMARK(BM_SerialExplore);

void BM_ParallelExplore(benchmark::State& state) {
  const std::string src = read_model("avionics.aadl");
  versa::ExploreOptions eopts;
  eopts.stop_at_first_deadlock = false;
  versa::ParallelExploreOptions popts;
  popts.workers = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    Prepared p;
    prepare(p, src, "Avionics.impl", 1'000'000);
    benchmark::DoNotOptimize(
        versa::explore_parallel(p.ctx, p.initial, eopts, popts));
  }
}
BENCHMARK(BM_ParallelExplore)->Arg(1)->Arg(2)->Arg(4);

}  // namespace

int main(int argc, char** argv) {
  return aadlsched::bench::run_main(argc, argv, print_table);
}
