// E2 — §4.1: "Precision of the timing analysis can be improved by making
// scheduling quanta smaller, which tends to increase the size of the state
// space that needs to be explored."
//
// Series: scheduling quantum (ms) vs explored states and wall time on the
// cruise-control model; plus a precision demonstration — a thread whose
// WCET is not a multiple of the coarse quantum is rejected at 10 ms
// (rounded up to a full quantum) but accepted at finer quanta.
#include <chrono>
#include <fstream>
#include <sstream>

#include "bench_common.hpp"

namespace {

using namespace aadlsched;

std::string model_source() {
  std::ifstream in(AADLSCHED_MODELS_DIR "/cruise_control.aadl");
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

void print_table() {
  bench::print_header("E2: quantum granularity vs state space",
                      "smaller quantum => more precision, more states");
  const std::string src = model_source();
  std::printf("%10s %12s %14s %12s\n", "quantum", "states", "transitions",
              "time_ms");
  for (std::int64_t q_ms : {10, 5, 2}) {
    translate::TranslateOptions topts;
    topts.quantum_ns = q_ms * 1'000'000;
    const auto t0 = std::chrono::steady_clock::now();
    const auto r =
        bench::run_pipeline(src, "CruiseControlSystem.impl", topts);
    const auto dt = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
    std::printf("%8lld ms %12llu %14llu %12.2f\n",
                static_cast<long long>(q_ms),
                static_cast<unsigned long long>(r.explored.states),
                static_cast<unsigned long long>(r.explored.transitions), dt);
  }

  // Precision: C = 12 ms within D = 20 ms alongside a C = 8 ms T = 20 ms
  // peer. At a 10 ms quantum both round up (2 quanta + 1 quantum = 30 ms
  // demand in 2 quanta deadline): spurious miss. At 2 ms: exact, fits.
  std::printf("\nprecision: 12ms + 8ms of work per 20ms period\n");
  for (std::int64_t q_ms : {10, 4, 2}) {
    sched::TaskSet ts;
    sched::Task a;
    a.name = "a";
    a.wcet = a.bcet = 12;
    a.period = a.deadline = 20;
    a.priority = 2;
    sched::Task b;
    b.name = "b";
    b.wcet = b.bcet = 8;
    b.period = b.deadline = 20;
    b.priority = 1;
    ts.tasks = {a, b};
    translate::TranslateOptions topts;
    topts.quantum_ns = q_ms * 1'000'000;
    // Task times are authored in ms here (quantum-relative scaling).
    const auto r = bench::run_pipeline(
        core::taskset_to_aadl(ts, sched::SchedulingPolicy::FixedPriority),
        "Root.impl", topts);
    std::printf("  quantum %2lld ms: %s (%llu states)\n",
                static_cast<long long>(q_ms),
                r.explored.schedulable() ? "schedulable"
                                         : "REPORTED MISS (conservative)",
                static_cast<unsigned long long>(r.explored.states));
  }
  std::printf("\n");
}

void BM_Quantum(benchmark::State& state) {
  const std::string src = model_source();
  translate::TranslateOptions topts;
  topts.quantum_ns = state.range(0) * 1'000'000;
  std::uint64_t states = 0;
  for (auto _ : state) {
    const auto r = bench::run_pipeline(src, "CruiseControlSystem.impl",
                                       topts);
    states = r.explored.states;
    benchmark::DoNotOptimize(r);
  }
  state.counters["states"] = static_cast<double>(states);
}
BENCHMARK(BM_Quantum)->Arg(10)->Arg(5)->Arg(2);

}  // namespace

int main(int argc, char** argv) {
  return aadlsched::bench::run_main(argc, argv, print_table);
}
