// E11 — the reduction-layer ablation (DESIGN.md §13): symmetry
// canonicalization and commutation linearization, separately and together,
// on the symmetric fixture translated with uniform instants (the one
// configuration where the reductions have anything to do). Reported per
// variant: orbit representatives visited, raw states folded away, fans
// linearized, bytes per stored state, wall time. The acceptance bar —
// >= 2x fewer states with both reductions on — is pinned as a functional
// test in test_reduction.cpp; this bench measures how far past the bar the
// layer lands and what it costs.
//
// A second series measures compact state storage on storm.aadl (bounded):
// reductions are inert under the default ordered-instants translation, so
// bytes/state there isolates the storage representation itself.
#include <chrono>
#include <fstream>
#include <sstream>
#include <string>

#include "bench_common.hpp"
#include "versa/reduction.hpp"

namespace {

using namespace aadlsched;

std::string read_model(const char* file) {
  std::ifstream in(std::string(AADLSCHED_MODELS_DIR) + "/" + file);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

struct Run {
  std::uint64_t states = 0;
  std::uint64_t states_saved = 0;
  std::uint64_t commuted = 0;
  std::uint64_t memory_bytes = 0;
  double ms = 0;
  bool schedulable = false;

  double bytes_per_state() const {
    return states ? static_cast<double>(memory_bytes) /
                        static_cast<double>(states)
                  : 0.0;
  }
};

/// Pipeline with an explicit reduction configuration. `enable` builds the
/// SymmetryModel from the translator's detected groups; with it false the
/// run is the reduction-free control (exactly --no-reduction).
Run run_once(const std::string& src, const char* root, bool ordered,
             bool enable, versa::ReductionOptions red,
             std::uint64_t max_states = 0) {
  Run out;
  util::DiagnosticEngine diags("bench.aadl");
  aadl::Model model;
  if (!aadl::parse_aadl(model, src, diags)) return out;
  auto inst = aadl::instantiate(model, root, diags);
  if (!inst || diags.has_errors()) return out;
  acsr::Context ctx;
  translate::TranslateOptions topts;
  topts.quantum_ns = 1'000'000;
  topts.ordered_instants = ordered;
  auto tr = translate::translate(ctx, *inst, diags, topts);
  if (!tr) return out;

  versa::ExploreOptions eopts;
  if (max_states) eopts.max_states = max_states;
  versa::SymmetryModel sym;
  if (enable) {
    std::vector<std::vector<std::string>> role_groups;
    for (const auto& g : tr->symmetry.groups) role_groups.push_back(g.roles);
    sym = versa::SymmetryModel::build(ctx, role_groups,
                                      tr->symmetry.uniform_dispatch);
    eopts.symmetry_model = &sym;
    eopts.reduction = red;
  }

  acsr::Semantics sem(ctx);
  const auto t0 = std::chrono::steady_clock::now();
  const auto r = versa::explore(sem, tr->initial, eopts);
  out.ms = std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t0)
               .count();
  out.states = r.states;
  out.states_saved = r.states_saved;
  out.commuted = r.commuted_expansions;
  out.memory_bytes = r.approx_memory_bytes;
  out.schedulable = r.schedulable();
  return out;
}

const struct Variant {
  const char* name;
  bool enable;
  versa::ReductionOptions red;
} kVariants[] = {
    {"none", false, {false, false}},
    {"symmetry only", true, {true, false}},
    {"commutation only", true, {false, true}},
    {"symmetry + commutation", true, {true, true}},
};

void print_table() {
  bench::print_header(
      "E11: reduction ablation and compact state storage",
      "symmetry + commutation cut the symmetric fixture's uniform-instant "
      "space by >= 2x; bytes/state measures the arena representation");

  const std::string sym_src = read_model("symmetric.aadl");
  std::printf("symmetric.aadl, uniform instants (8 interchangeable threads):\n");
  std::printf("%-24s %10s %12s %10s %12s %10s\n", "variant", "states",
              "states_saved", "commuted", "bytes/state", "time_ms");
  for (const Variant& v : kVariants) {
    const Run r = run_once(sym_src, "Symmetric.impl", false, v.enable, v.red);
    std::printf("%-24s %10llu %12llu %10llu %12.1f %10.2f\n", v.name,
                static_cast<unsigned long long>(r.states),
                static_cast<unsigned long long>(r.states_saved),
                static_cast<unsigned long long>(r.commuted),
                r.bytes_per_state(), r.ms);
  }

  std::printf(
      "\ndefault translation (reductions inert under ordered instants;\n"
      "bytes/state isolates the storage representation, storm 20k-bound):\n");
  std::printf("%-18s %-18s %10s %12s %10s\n", "model", "variant", "states",
              "bytes/state", "time_ms");
  const struct {
    const char* file;
    const char* root;
    std::uint64_t bound;
  } kStorage[] = {
      {"cruise_control.aadl", "CruiseControlSystem.impl", 0},
      {"storm.aadl", "Storm.impl", 20'000},
  };
  for (const auto& m : kStorage) {
    const std::string src = read_model(m.file);
    for (const bool enable : {false, true}) {
      const Run r = run_once(src, m.root, true, enable, {true, true},
                             m.bound);
      std::printf("%-18s %-18s %10llu %12.1f %10.2f\n", m.file,
                  enable ? "layer on (inert)" : "layer off",
                  static_cast<unsigned long long>(r.states),
                  r.bytes_per_state(), r.ms);
    }
  }
  std::printf("\n");
}

void run_variant(benchmark::State& state, const Variant& v) {
  const std::string src = read_model("symmetric.aadl");
  Run r;
  for (auto _ : state) {
    r = run_once(src, "Symmetric.impl", false, v.enable, v.red);
    benchmark::DoNotOptimize(r);
  }
  state.counters["states"] = static_cast<double>(r.states);
  state.counters["states_saved"] = static_cast<double>(r.states_saved);
  state.counters["bytes_per_state"] = r.bytes_per_state();
}

void BM_ReductionNone(benchmark::State& state) {
  run_variant(state, kVariants[0]);
}
BENCHMARK(BM_ReductionNone);

void BM_ReductionSymmetry(benchmark::State& state) {
  run_variant(state, kVariants[1]);
}
BENCHMARK(BM_ReductionSymmetry);

void BM_ReductionCommute(benchmark::State& state) {
  run_variant(state, kVariants[2]);
}
BENCHMARK(BM_ReductionCommute);

void BM_ReductionBoth(benchmark::State& state) {
  run_variant(state, kVariants[3]);
}
BENCHMARK(BM_ReductionBoth);

void BM_StormBytesPerState(benchmark::State& state) {
  const std::string src = read_model("storm.aadl");
  Run r;
  for (auto _ : state) {
    r = run_once(src, "Storm.impl", true, false, {false, false}, 20'000);
    benchmark::DoNotOptimize(r);
  }
  state.counters["states"] = static_cast<double>(r.states);
  state.counters["bytes_per_state"] = r.bytes_per_state();
}
BENCHMARK(BM_StormBytesPerState);

}  // namespace

int main(int argc, char** argv) {
  return aadlsched::bench::run_main(argc, argv, print_table);
}
