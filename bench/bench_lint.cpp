// E12 — static screening throughput (DESIGN.md §14): what fraction of a
// mixed model population the lint passes decide without exploration, and
// what a screen costs per model. The population mirrors the E1 agreement
// suite: fixed-priority sets with distinct RM priorities (AL013's exact
// fragment), constrained-deadline EDF sets (AL014), and shared-resource
// sets under PCP (AL015/AL016), swept across utilization levels.
//
// The headline numbers feed tools/bench_diff.py: the static-decide rate
// must not drop (a pass losing its fragment silently would push models
// back to exploration) and the per-model screen cost must stay in the
// microsecond regime the §14 pitch claims.
#include "bench_common.hpp"

#include <chrono>
#include <memory>

#include "lint/lint.hpp"
#include "sched/blocking.hpp"

namespace {

using namespace aadlsched;

struct PreparedModel {
  std::string klass;
  aadl::Model model;  // owns declarations the instance tree points into
  std::unique_ptr<aadl::InstanceModel> instance;
};

lint::Options screen_options() {
  lint::Options opts;
  opts.translation.quantum_ns = 1'000'000;
  return opts;
}

void add_model(std::vector<PreparedModel>& pool, const std::string& klass,
               const std::string& source) {
  PreparedModel pm;
  pm.klass = klass;
  util::DiagnosticEngine diags("bench_lint.aadl");
  if (!aadl::parse_aadl(pm.model, source, diags)) return;
  pm.instance = aadl::instantiate(pm.model, "Root.impl", diags);
  if (!pm.instance) return;
  pool.push_back(std::move(pm));
}

/// The E12 population: 3 classes x 3 utilization levels x 4 seeds.
std::vector<PreparedModel> make_pool() {
  std::vector<PreparedModel> pool;
  for (const double u : {0.6, 0.8, 0.95}) {
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
      sched::TaskSet fp = bench::workload(seed, 4, u);
      sched::assign_rate_monotonic(fp);
      add_model(pool, "fp-rm",
                core::taskset_to_aadl(fp, sched::SchedulingPolicy::FixedPriority));

      const sched::TaskSet edf = bench::workload(seed + 100, 4, u, 0.6);
      add_model(pool, "edf-constrained",
                core::taskset_to_aadl(edf, sched::SchedulingPolicy::Edf));

      sched::TaskSet sh = bench::workload(seed + 200, 4, u);
      sched::assign_rate_monotonic(sh);
      sched::ResourceModel rm;
      rm.resources = {{"shared", sched::LockProtocol::PriorityCeiling}};
      rm.sections = {{0, 0, 1}, {sh.tasks.size() - 1, 0, 1}};
      add_model(pool, "shared-pcp",
                core::taskset_to_aadl_shared(
                    sh, sched::SchedulingPolicy::FixedPriority, rm));
    }
  }
  return pool;
}

bool statically_decided(const PreparedModel& pm, const lint::Options& opts) {
  return lint::run(*pm.instance, opts).verdict != lint::StaticVerdict::None;
}

void print_table() {
  bench::print_header(
      "E12: static screening — decide rate and cost per model class",
      "conclusive lint verdicts skip exploration; cost stays in microseconds");
  const std::vector<PreparedModel> pool = make_pool();
  const lint::Options opts = screen_options();
  std::printf("%-16s %8s %9s %8s %12s\n", "class", "models", "decided",
              "rate", "us/model");
  for (const char* klass : {"fp-rm", "edf-constrained", "shared-pcp"}) {
    int models = 0, decided = 0;
    double total_us = 0.0;
    for (const PreparedModel& pm : pool) {
      if (pm.klass != klass) continue;
      ++models;
      const auto t0 = std::chrono::steady_clock::now();
      const bool conclusive = statically_decided(pm, opts);
      const auto t1 = std::chrono::steady_clock::now();
      decided += conclusive;
      total_us +=
          std::chrono::duration<double, std::micro>(t1 - t0).count();
    }
    std::printf("%-16s %8d %9d %8.2f %12.1f\n", klass, models, decided,
                models ? static_cast<double>(decided) / models : 0.0,
                models ? total_us / models : 0.0);
  }
  std::printf("\n");
}

/// One model screened per iteration, cycling through the population; the
/// per-iteration time IS the per-model screen cost bench_diff gates on,
/// and the decide_rate counter is the population's static-decide fraction.
void BM_LintStaticScreen(benchmark::State& state) {
  const std::vector<PreparedModel> pool = make_pool();
  const lint::Options opts = screen_options();
  if (pool.empty()) {
    state.SkipWithError("no models in the bench pool");
    return;
  }
  std::size_t i = 0;
  std::int64_t decided = 0, screened = 0;
  for (auto _ : state) {
    decided += statically_decided(pool[i], opts);
    ++screened;
    i = (i + 1) % pool.size();
  }
  state.counters["decide_rate"] =
      screened ? static_cast<double>(decided) / screened : 0.0;
}
BENCHMARK(BM_LintStaticScreen);

/// The shared-resource extraction + blocking-aware RTA path in isolation
/// (the part AL015/AL016 add on top of the plain screen).
void BM_LintSharedResourceScreen(benchmark::State& state) {
  std::vector<PreparedModel> pool;
  sched::TaskSet ts = bench::workload(7, 4, 0.8);
  sched::assign_rate_monotonic(ts);
  sched::ResourceModel rm;
  rm.resources = {{"shared", sched::LockProtocol::PriorityCeiling}};
  rm.sections = {{0, 0, 1}, {ts.tasks.size() - 1, 0, 1}};
  add_model(pool, "shared-pcp",
            core::taskset_to_aadl_shared(
                ts, sched::SchedulingPolicy::FixedPriority, rm));
  const lint::Options opts = screen_options();
  if (pool.empty()) {
    state.SkipWithError("shared bench model failed to instantiate");
    return;
  }
  for (auto _ : state)
    benchmark::DoNotOptimize(lint::run(*pool[0].instance, opts));
}
BENCHMARK(BM_LintSharedResourceScreen);

}  // namespace

int main(int argc, char** argv) {
  return aadlsched::bench::run_main(argc, argv, print_table);
}
