// Experiment-harness throughput (EXPERIMENTS.md E15): how many generated
// models per second does `aadlsched-exp` push through the in-process
// backend?  The harness is the fleet driver for every acceptance curve, so
// its own overhead (spec expansion, deterministic rendering, request
// marshalling, report tallying) must stay a rounding error next to the
// analyses it fans out. The table prints the E15 acceptance grid from the
// shipped smoke spec; the BM_ rows feed BENCH_exp.json via
// tools/run_benches.sh and the models/sec gate in tools/bench_diff.py.
#include "bench_common.hpp"
#include "exp/report.hpp"
#include "exp/runner.hpp"
#include "exp/spec.hpp"

namespace {

using namespace aadlsched;

exp::ExperimentSpec smoke_like_spec() {
  exp::ExperimentSpec spec;
  spec.name = "bench";
  spec.policies = {"rm", "edf"};
  spec.utilizations = {0.5, 0.9};
  spec.task_counts = {3};
  spec.seed_begin = 1;
  spec.seed_count = 5;
  spec.workers = 2;
  return spec;
}

void print_table() {
  bench::print_header(
      "experiment harness: acceptance by cell (in-process backend)",
      "the harness mass-generates seeded workloads and reports per-cell "
      "acceptance; verdict data is byte-identical across backends");
  const exp::ExperimentSpec spec = smoke_like_spec();
  const exp::ExperimentResult result = exp::run_experiment(spec, std::nullopt);
  std::printf("# %-8s %12s %10s %12s %12s\n", "policy", "utilization",
              "runs", "acceptance", "mean_ms");
  for (const exp::CellResult& cell : result.cells) {
    std::size_t schedulable = 0;
    double total_ms = 0.0;
    for (const exp::RunOutcome& run : cell.runs) {
      if (run.outcome == "schedulable") ++schedulable;
      total_ms += run.latency_ms;
    }
    const double n = static_cast<double>(cell.runs.size());
    std::printf("# %-8s %12.2f %10zu %12.2f %12.3f\n",
                cell.cell.policy.c_str(), cell.cell.utilization,
                cell.runs.size(), n > 0 ? schedulable / n : 0.0,
                n > 0 ? total_ms / n : 0.0);
  }
  std::printf("# total: %zu runs in %.1f ms (%.1f models/s)\n",
              result.total_runs, result.total_ms,
              result.total_ms > 0
                  ? 1000.0 * static_cast<double>(result.total_runs) /
                        result.total_ms
                  : 0.0);
}

// Tiny grid so one iteration stays in the low milliseconds: the timing is
// dominated by the analyses themselves, which is exactly what "models/sec
// through the harness" should measure. The models counter lets bench_diff
// derive throughput without assuming the grid size.
void BM_ExperimentGridInProcess(benchmark::State& state) {
  exp::ExperimentSpec spec;
  spec.name = "bench-tiny";
  spec.policies = {"rm"};
  spec.utilizations = {0.5};
  spec.task_counts = {2};
  spec.seed_begin = 1;
  spec.seed_count = 3;
  spec.workers = 2;
  std::size_t models = 0;
  for (auto _ : state) {
    const exp::ExperimentResult result =
        exp::run_experiment(spec, std::nullopt);
    models += result.total_runs;
    benchmark::DoNotOptimize(result.total_runs);
  }
  state.counters["models"] =
      benchmark::Counter(static_cast<double>(models) /
                         static_cast<double>(state.iterations()));
}
BENCHMARK(BM_ExperimentGridInProcess)->Unit(benchmark::kMillisecond);

// Rendering alone (no analysis): spec -> workload -> AADL text. This is the
// harness's own per-model overhead; it must stay in the tens of
// microseconds so generation never starves the analysis workers.
void BM_RenderModel(benchmark::State& state) {
  exp::ExperimentSpec spec;
  spec.name = "bench-render";
  const exp::Cell cell{"rm", 0.7, 4, 1.0, 1, "enumerative", 1};
  std::string error;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    const auto model = exp::render_model(spec, cell, 0, seed++, error);
    if (!model) {
      state.SkipWithError(error.c_str());
      return;
    }
    benchmark::DoNotOptimize(model->size());
  }
}
BENCHMARK(BM_RenderModel)->Unit(benchmark::kMicrosecond);

// Report tallying over a fixed result: the post-processing cost per run.
void BM_RenderReport(benchmark::State& state) {
  exp::ExperimentSpec spec;
  spec.name = "bench-report";
  spec.policies = {"rm"};
  spec.utilizations = {0.5};
  spec.task_counts = {2};
  spec.seed_count = 3;
  spec.workers = 2;
  const exp::ExperimentResult result = exp::run_experiment(spec, std::nullopt);
  for (auto _ : state) {
    const std::string report = exp::render_report(spec, result);
    benchmark::DoNotOptimize(report.size());
  }
}
BENCHMARK(BM_RenderReport)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  return aadlsched::bench::run_main(argc, argv, print_table);
}
