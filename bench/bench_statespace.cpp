// E7 — exploration cost and the design-choice ablations of DESIGN.md §6:
//   * states and wall time vs number of threads (the scaling the paper's
//     future-work section worries about);
//   * successor-fan memoization on/off;
//   * ordered instants (canonical dispatch ordering) on/off.
#include <chrono>

#include "bench_common.hpp"

namespace {

using namespace aadlsched;

sched::TaskSet n_tasks(std::size_t n) {
  // Harmonic-ish periods, utilization ~0.75, deterministic.
  sched::TaskSet ts;
  const sched::Time periods[] = {4, 8, 8, 16, 16, 16, 16, 32};
  for (std::size_t i = 0; i < n; ++i) {
    sched::Task t;
    t.name = "t" + std::to_string(i);
    t.period = t.deadline = periods[i % 8];
    t.wcet = t.bcet = std::max<sched::Time>(1, t.period / 8);
    ts.tasks.push_back(t);
  }
  sched::assign_rate_monotonic(ts);
  return ts;
}

struct Run {
  std::uint64_t states = 0;
  std::uint64_t computed = 0;
  std::uint64_t memo_hits = 0;
  double ms = 0;
  bool schedulable = false;
};

Run run_once(const sched::TaskSet& ts, bool memoize, bool ordered) {
  Run out;
  util::DiagnosticEngine diags;
  aadl::Model model;
  const std::string src =
      core::taskset_to_aadl(ts, sched::SchedulingPolicy::FixedPriority);
  aadl::parse_aadl(model, src, diags);
  auto inst = aadl::instantiate(model, "Root.impl", diags);
  acsr::Context ctx;
  translate::TranslateOptions topts;
  topts.quantum_ns = 1'000'000;
  topts.ordered_instants = ordered;
  auto tr = translate::translate(ctx, *inst, diags, topts);
  if (!tr) return out;
  acsr::Semantics sem(ctx, memoize);
  const auto t0 = std::chrono::steady_clock::now();
  const auto r = versa::explore(sem, tr->initial);
  out.ms = std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t0)
               .count();
  out.states = r.states;
  out.computed = sem.stats().computed;
  out.memo_hits = sem.stats().memo_hits;
  out.schedulable = r.schedulable();
  return out;
}

void print_table() {
  bench::print_header("E7: exploration scaling and ablations",
                      "states grow with thread count; memoization and "
                      "ordered instants are the two big levers");
  std::printf("scaling (RM, U~0.75, harmonic periods):\n");
  std::printf("%8s %10s %12s %10s\n", "threads", "states", "time_ms",
              "verdict");
  for (std::size_t n : {2u, 4u, 6u, 8u}) {
    const Run r = run_once(n_tasks(n), true, true);
    std::printf("%8zu %10llu %12.2f %10s\n", n,
                static_cast<unsigned long long>(r.states), r.ms,
                r.schedulable ? "ok" : "miss");
  }

  std::printf("\nablation (6 threads):\n");
  std::printf("%-28s %10s %12s %12s %10s\n", "variant", "states",
              "fan_comps", "memo_hits", "time_ms");
  const sched::TaskSet ts = n_tasks(6);
  const struct {
    const char* name;
    bool memo;
    bool ordered;
  } variants[] = {
      {"memo + ordered (default)", true, true},
      {"no memoization", false, true},
      {"no ordered instants", true, false},
      {"neither", false, false},
  };
  for (const auto& v : variants) {
    const Run r = run_once(ts, v.memo, v.ordered);
    std::printf("%-28s %10llu %12llu %12llu %10.2f\n", v.name,
                static_cast<unsigned long long>(r.states),
                static_cast<unsigned long long>(r.computed),
                static_cast<unsigned long long>(r.memo_hits), r.ms);
  }
  std::printf("\n");
}

void BM_Scaling(benchmark::State& state) {
  const sched::TaskSet ts = n_tasks(static_cast<std::size_t>(state.range(0)));
  std::uint64_t states = 0;
  for (auto _ : state) {
    const Run r = run_once(ts, true, true);
    states = r.states;
    benchmark::DoNotOptimize(r);
  }
  state.counters["states"] = static_cast<double>(states);
}
BENCHMARK(BM_Scaling)->Arg(2)->Arg(4)->Arg(6);

void BM_NoMemoization(benchmark::State& state) {
  const sched::TaskSet ts = n_tasks(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_once(ts, false, true));
  }
}
BENCHMARK(BM_NoMemoization);

void BM_WithMemoization(benchmark::State& state) {
  const sched::TaskSet ts = n_tasks(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_once(ts, true, true));
  }
}
BENCHMARK(BM_WithMemoization);

}  // namespace

int main(int argc, char** argv) {
  return aadlsched::bench::run_main(argc, argv, print_table);
}
