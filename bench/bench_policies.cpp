// E3 — §5: RM / DM / EDF / LLF priority encodings. Classic
// schedulable-fraction-vs-utilization sweep (Lehoczky-style curves)
// computed by exhaustive exploration through the full AADL pipeline.
//
// Expected shape: EDF and LLF accept everything up to U = 1 (optimal for
// implicit deadlines); RM/DM fall off between the Liu-Layland bound and 1;
// DM equals RM for implicit deadlines and dominates it for constrained
// deadlines.
#include "bench_common.hpp"

namespace {

using namespace aadlsched;

constexpr std::size_t kTasks = 3;
constexpr int kSeedsPerPoint = 16;

double fraction(double u, sched::SchedulingPolicy policy, bool constrained,
                translate::TranslateOptions topts = {}) {
  int ok = 0;
  for (int seed = 1; seed <= kSeedsPerPoint; ++seed) {
    sched::TaskSet ts = bench::workload(
        static_cast<std::uint64_t>(seed) * 7919 + 13, kTasks, u,
        constrained ? 0.8 : 1.0);
    if (policy == sched::SchedulingPolicy::FixedPriority) {
      // RM priorities; DM is handled by the caller assigning them.
      sched::assign_rate_monotonic(ts);
    }
    const auto r = bench::run_taskset(ts, policy, topts);
    ok += r.ok && r.explored.schedulable() ? 1 : 0;
  }
  return static_cast<double>(ok) / kSeedsPerPoint;
}

double fraction_dm(double u, bool constrained) {
  int ok = 0;
  for (int seed = 1; seed <= kSeedsPerPoint; ++seed) {
    sched::TaskSet ts = bench::workload(
        static_cast<std::uint64_t>(seed) * 7919 + 13, kTasks, u,
        constrained ? 0.8 : 1.0);
    sched::assign_deadline_monotonic(ts);
    const auto r =
        bench::run_taskset(ts, sched::SchedulingPolicy::FixedPriority);
    ok += r.ok && r.explored.schedulable() ? 1 : 0;
  }
  return static_cast<double>(ok) / kSeedsPerPoint;
}

void print_table() {
  bench::print_header(
      "E3: schedulable fraction vs utilization per scheduling protocol",
      "EDF/LLF reach U=1; RM/DM fall off past the Liu-Layland bound");
  std::printf("implicit deadlines (D = T), %d random 3-task sets per point\n",
              kSeedsPerPoint);
  std::printf("%6s %8s %8s %8s %8s\n", "U", "RM", "DM", "EDF", "LLF");
  for (double u : {0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 1.0}) {
    std::printf("%6.2f %8.2f %8.2f %8.2f %8.2f\n", u,
                fraction(u, sched::SchedulingPolicy::FixedPriority, false),
                fraction_dm(u, false),
                fraction(u, sched::SchedulingPolicy::Edf, false),
                fraction(u, sched::SchedulingPolicy::Llf, false));
  }
  std::printf("\nconstrained deadlines (D = 0.8(T-C)+C)\n");
  std::printf("%6s %8s %8s %8s\n", "U", "RM", "DM", "EDF");
  for (double u : {0.6, 0.7, 0.8, 0.9}) {
    std::printf("%6.2f %8.2f %8.2f %8.2f\n", u,
                fraction(u, sched::SchedulingPolicy::FixedPriority, true),
                fraction_dm(u, true),
                fraction(u, sched::SchedulingPolicy::Edf, true));
  }
  std::printf("\n");
}

void BM_ExploreRm(benchmark::State& state) {
  sched::TaskSet ts = bench::workload(42, kTasks, 0.9);
  sched::assign_rate_monotonic(ts);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        bench::run_taskset(ts, sched::SchedulingPolicy::FixedPriority));
  }
}
BENCHMARK(BM_ExploreRm);

void BM_ExploreEdf(benchmark::State& state) {
  const sched::TaskSet ts = bench::workload(42, kTasks, 0.9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        bench::run_taskset(ts, sched::SchedulingPolicy::Edf));
  }
}
BENCHMARK(BM_ExploreEdf);

void BM_ExploreLlf(benchmark::State& state) {
  const sched::TaskSet ts = bench::workload(42, kTasks, 0.9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        bench::run_taskset(ts, sched::SchedulingPolicy::Llf));
  }
}
BENCHMARK(BM_ExploreLlf);

}  // namespace

int main(int argc, char** argv) {
  return aadlsched::bench::run_main(argc, argv, print_table);
}
