// Service-layer experiment (DESIGN.md §11): what does the result cache buy?
// Serve the example models through an in-process server::Service cold
// (forced exploration) and warm (memory-tier hit) and compare served
// latencies; the acceptance bar is a >= 10x cheaper warm serve. The warm
// DISK path (every load digest-verified, DESIGN.md §15) is benchmarked
// separately with the cache-integrity counters attached. The table rows
// land in EXPERIMENTS.md; the BM_ timings feed BENCH_service.json via
// tools/run_benches.sh.
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "aadl/fingerprint.hpp"
#include "bench_common.hpp"
#include "server/service.hpp"
#include "util/json.hpp"

namespace {

using namespace aadlsched;

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

server::Request analyze_request(const std::string& model,
                                const std::string& root, bool no_cache) {
  server::Request req;
  req.op = server::Op::Analyze;
  req.model = model;
  req.root = root;
  req.no_cache = no_cache;
  req.options.run_lint = false;
  return req;
}

double serve_ms(server::Service& svc, const server::Request& req) {
  const auto t0 = std::chrono::steady_clock::now();
  const server::Response resp = svc.handle(req);
  const auto t1 = std::chrono::steady_clock::now();
  if (!resp.ok) std::fprintf(stderr, "serve failed: %s\n", resp.error.c_str());
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

struct ExampleModel {
  const char* file;
  const char* root;
};

// Conclusive models only: the cache stores conclusive verdicts, and storm
// is budget-bound by design (its warm serve would just re-explore).
constexpr ExampleModel kModels[] = {
    {"cruise_control.aadl", "CruiseControlSystem.impl"},
    {"avionics.aadl", "Avionics.impl"},
};

void print_table() {
  bench::print_header(
      "service cache: cold vs warm served latency",
      "a memory-tier hit serves an already-proved verdict >= 10x faster "
      "than re-exploring");
  std::printf("# %-24s %12s %12s %10s\n", "model", "cold_ms", "warm_ms",
              "speedup");
  for (const ExampleModel& m : kModels) {
    server::Service svc;
    const std::string text =
        slurp(std::string(AADLSCHED_MODELS_DIR) + "/" + m.file);
    const double cold = serve_ms(svc, analyze_request(text, m.root, false));
    // Best warm serve of three: one timing quantum of noise would otherwise
    // dominate a sub-millisecond cache hit.
    double warm = serve_ms(svc, analyze_request(text, m.root, false));
    for (int i = 0; i < 2; ++i)
      warm = std::min(warm,
                      serve_ms(svc, analyze_request(text, m.root, false)));
    std::printf("# %-24s %12.3f %12.3f %9.1fx\n", m.file, cold, warm,
                warm > 0 ? cold / warm : 0.0);
  }
}

const std::string& avionics_text() {
  static const std::string text =
      slurp(std::string(AADLSCHED_MODELS_DIR) + "/avionics.aadl");
  return text;
}

// BM timings use avionics (concludes in a few ms) so the cold benchmark
// stays runnable; the table above covers the expensive cruise model.
void BM_ServeCold(benchmark::State& state) {
  server::Service svc;
  const auto req = analyze_request(avionics_text(), "Avionics.impl", true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(svc.handle(req));
  }
}
BENCHMARK(BM_ServeCold)->Unit(benchmark::kMillisecond);

void BM_ServeCachedMemory(benchmark::State& state) {
  server::Service svc;
  const auto req = analyze_request(avionics_text(), "Avionics.impl", false);
  svc.handle(req);  // prime the cache
  for (auto _ : state) {
    benchmark::DoNotOptimize(svc.handle(req));
  }
}
BENCHMARK(BM_ServeCachedMemory)->Unit(benchmark::kMicrosecond);

/// A second conclusive model so two keys can alternate through a
/// one-entry memory tier (13 states; the serve cost is all cache path).
std::string tiny_text() {
  return "package Tiny\npublic\n"
         "  processor CPU\n  properties\n"
         "    Scheduling_Protocol => RATE_MONOTONIC_PROTOCOL;\n  end CPU;\n"
         "  thread T\n  end T;\n"
         "  thread implementation T.impl\n  properties\n"
         "    Dispatch_Protocol => Periodic;\n    Period => 10 ms;\n"
         "    Compute_Execution_Time => 2 ms .. 2 ms;\n"
         "    Deadline => 10 ms;\n  end T.impl;\n"
         "  system App\n  end App;\n"
         "  system implementation App.impl\n  subcomponents\n"
         "    t : thread T.impl;\n  end App.impl;\n"
         "  system Root\n  end Root;\n"
         "  system implementation Root.impl\n  subcomponents\n"
         "    app : system App.impl;\n    cpu : processor CPU;\n"
         "  properties\n"
         "    Actual_Processor_Binding => reference (cpu) applies to app;\n"
         "  end Root.impl;\nend Tiny;\n";
}

// The warm DISK serve path (DESIGN.md §15): a one-entry memory tier and two
// alternating keys force every handle() through a disk load — read, trailing
// digest verification, JSON re-parse, promote. This is the latency a daemon
// restart (or a cohabitant daemon) pays per shared verdict, and the number
// the crash-safety work must not regress. The integrity/GC counters ride
// along in the JSON report so CI archives them with the timings (all must
// stay 0 on a healthy run).
void BM_ServeCachedDisk(benchmark::State& state) {
  char tmpl[] = "/tmp/aadlsched_bench_cache_XXXXXX";
  if (::mkdtemp(tmpl) == nullptr) {
    state.SkipWithError("mkdtemp failed");
    return;
  }
  server::ServiceConfig cfg;
  cfg.cache.disk_dir = tmpl;
  cfg.cache.memory_capacity = 1;
  server::Service svc(cfg);
  const auto avionics = analyze_request(avionics_text(), "Avionics.impl",
                                        false);
  const auto tiny = analyze_request(tiny_text(), "Root.impl", false);
  svc.handle(avionics);  // prime both disk entries
  svc.handle(tiny);
  for (auto _ : state) {
    benchmark::DoNotOptimize(svc.handle(avionics));  // evicts tiny
    benchmark::DoNotOptimize(svc.handle(tiny));      // evicts avionics
  }
  state.SetItemsProcessed(state.iterations() * 2);
  const auto stats = util::parse_json(svc.stats_json());
  const auto counter = [&](const char* obj, const char* key) {
    const util::JsonValue* v = stats ? stats->get(obj) : nullptr;
    if (v) v = v->get(key);
    return benchmark::Counter(v ? static_cast<double>(v->as_int(-1)) : -1);
  };
  state.counters["corrupt_evictions"] = counter("cache", "corrupt_evictions");
  state.counters["disk_store_failures"] =
      counter("cache", "disk_store_failures");
  state.counters["gc_runs"] = counter("gc", "runs");
  state.counters["gc_remove_failures"] = counter("gc", "remove_failures");
  std::filesystem::remove_all(tmpl);
}
BENCHMARK(BM_ServeCachedDisk)->Unit(benchmark::kMicrosecond);

void BM_Fingerprint(benchmark::State& state) {
  util::DiagnosticEngine diags("bench.aadl");
  aadl::Model model;
  aadl::parse_aadl(model, avionics_text(), diags);
  auto inst = aadl::instantiate(model, "Avionics.impl", diags);
  for (auto _ : state) {
    benchmark::DoNotOptimize(aadl::instance_fingerprint(*inst));
  }
}
BENCHMARK(BM_Fingerprint)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  return aadlsched::bench::run_main(argc, argv, print_table);
}
