// E14 — the engine ablation (DESIGN.md §16): symbolic state classes vs
// unit-quantum enumeration, on the two fixtures built to pin each side of
// the contrast.
//
//   * quantum_ladder.aadl across the quantum ladder 10/5/2/1 ms: the
//     enumerator's verdict flips with the quantum (conservative rounding
//     spuriously rejects at 10 and 5 ms), while the symbolic verdict and
//     zone count are invariant — the engine never quantizes.
//   * slow_periodic.aadl under a 2 s wall-clock budget: the 252 s
//     hyperperiod leaves the 1 ms enumerator inconclusive at the budget,
//     while the state-class engine closes the graph in milliseconds —
//     symbolic analysis decides models the enumerator cannot afford.
//
// The timed series gate two derived metrics in tools/bench_diff.py:
// symbolic_zones_per_sec (class-graph throughput) and
// symbolic_decide_rate (the fragment must keep conclusively deciding its
// portfolio — an engine that starts refusing or truncating shows up here).
#include <fstream>
#include <sstream>
#include <string>

#include "bench_common.hpp"
#include "versa/symbolic.hpp"

namespace {

using namespace aadlsched;

std::string read_model(const char* file) {
  std::ifstream in(std::string(AADLSCHED_MODELS_DIR) + "/" + file);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

core::AnalyzerOptions engine_options(core::Engine engine,
                                     std::int64_t quantum_ns = 1'000'000) {
  core::AnalyzerOptions opts;
  opts.translation.quantum_ns = quantum_ns;
  opts.run_lint = false;  // the verdict must come from the engines
  opts.engine = engine;
  return opts;
}

const char* verdict(const core::AnalysisResult& r) {
  return core::to_string(r.outcome).data();
}

void print_table() {
  bench::print_header(
      "E14: quantum invariance — symbolic state classes vs enumeration",
      "the enumerator's verdict depends on the quantum (conservative "
      "rounding); the state-class engine decides once, exactly, at any "
      "quantum");

  const std::string ladder = read_model("quantum_ladder.aadl");
  std::printf(
      "quantum_ladder.aadl (12 + 8 ms filling a 20 ms period exactly):\n");
  std::printf("%-10s %12s %16s %8s %18s\n", "quantum_ms", "enum_states",
              "enum_verdict", "zones", "symbolic_verdict");
  for (const std::int64_t q_ms : {10, 5, 2, 1}) {
    const auto en = core::analyze_source(
        ladder, "QuantumLadder.impl",
        engine_options(core::Engine::Enumerative, q_ms * 1'000'000));
    const auto sy = core::analyze_source(
        ladder, "QuantumLadder.impl",
        engine_options(core::Engine::Symbolic, q_ms * 1'000'000));
    std::printf("%-10lld %12llu %16s %8llu %18s\n",
                static_cast<long long>(q_ms),
                static_cast<unsigned long long>(en.states), verdict(en),
                static_cast<unsigned long long>(sy.states), verdict(sy));
  }

  std::printf(
      "\nslow_periodic.aadl (hyperperiod 252 s) under a 2 s wall-clock "
      "budget:\n");
  core::AnalyzerOptions en_opts = engine_options(core::Engine::Enumerative);
  en_opts.exploration.budget.deadline_ms = 2000;
  const auto en = core::analyze_source(read_model("slow_periodic.aadl"),
                                       "SlowPeriodic.impl", en_opts);
  std::printf("  enumerative @ 1 ms: %s (%s) after %llu states, %.0f ms\n",
              verdict(en), util::to_string(en.stop_reason).data(),
              static_cast<unsigned long long>(en.states), en.explore_ms);
  core::AnalyzerOptions sy_opts = engine_options(core::Engine::Symbolic);
  sy_opts.exploration.budget.deadline_ms = 2000;
  const auto sy = core::analyze_source(read_model("slow_periodic.aadl"),
                                       "SlowPeriodic.impl", sy_opts);
  std::printf("  symbolic          : %s, %llu zones, %.1f ms\n\n",
              verdict(sy), static_cast<unsigned long long>(sy.states),
              sy.explore_ms);
}

/// Class-graph throughput on the long-hyperperiod fixture — the model the
/// engine exists for. zones feeds the symbolic_zones_per_sec gate.
void BM_SymbolicSlowPeriodic(benchmark::State& state) {
  const std::string src = read_model("slow_periodic.aadl");
  core::AnalysisResult r;
  for (auto _ : state) {
    r = core::analyze_source(src, "SlowPeriodic.impl",
                             engine_options(core::Engine::Symbolic));
    benchmark::DoNotOptimize(r);
  }
  state.counters["zones"] = static_cast<double>(r.states);
  state.counters["subsumptions"] = static_cast<double>(r.zone_subsumptions);
  state.counters["schedulable"] = r.schedulable ? 1.0 : 0.0;
}
BENCHMARK(BM_SymbolicSlowPeriodic);

/// The fragment portfolio: every applicable example model plus a spread of
/// generated rate-monotonic tasksets across the schedulability boundary.
/// decide_rate = conclusively decided fraction; anything below 1.0 means
/// the engine refused or truncated a model it must own.
void BM_SymbolicDecidePortfolio(benchmark::State& state) {
  std::vector<std::pair<std::string, std::string>> portfolio = {
      {read_model("quantum_ladder.aadl"), "QuantumLadder.impl"},
      {read_model("slow_periodic.aadl"), "SlowPeriodic.impl"},
      {read_model("dual_rig.aadl"), "DualRig.impl"},
  };
  for (std::uint64_t seed = 1; seed <= 9; ++seed) {
    sched::TaskSet ts = bench::workload(seed, 3, 0.6 + 0.05 * seed);
    sched::assign_rate_monotonic(ts);
    portfolio.emplace_back(
        core::taskset_to_aadl(ts, sched::SchedulingPolicy::FixedPriority),
        "Root.impl");
  }

  double decided = 0;
  double zones = 0;
  for (auto _ : state) {
    decided = zones = 0;
    for (const auto& [src, root] : portfolio) {
      const auto r = core::analyze_source(
          src, root, engine_options(core::Engine::Symbolic));
      if (r.ok && r.exhaustive) ++decided;
      zones += static_cast<double>(r.states);
    }
    benchmark::DoNotOptimize(decided);
  }
  state.counters["decide_rate"] =
      decided / static_cast<double>(portfolio.size());
  state.counters["zones"] = zones;
}
BENCHMARK(BM_SymbolicDecidePortfolio);

/// The enumerative control on the same ladder model at 1 ms — the
/// apples-to-apples cost the symbolic engine displaces.
void BM_EnumerativeQuantumLadder(benchmark::State& state) {
  const std::string src = read_model("quantum_ladder.aadl");
  core::AnalysisResult r;
  for (auto _ : state) {
    r = core::analyze_source(src, "QuantumLadder.impl",
                             engine_options(core::Engine::Enumerative));
    benchmark::DoNotOptimize(r);
  }
  state.counters["states"] = static_cast<double>(r.states);
}
BENCHMARK(BM_EnumerativeQuantumLadder);

void BM_SymbolicQuantumLadder(benchmark::State& state) {
  const std::string src = read_model("quantum_ladder.aadl");
  core::AnalysisResult r;
  for (auto _ : state) {
    r = core::analyze_source(src, "QuantumLadder.impl",
                             engine_options(core::Engine::Symbolic));
    benchmark::DoNotOptimize(r);
  }
  state.counters["zones"] = static_cast<double>(r.states);
}
BENCHMARK(BM_SymbolicQuantumLadder);

}  // namespace

int main(int argc, char** argv) {
  return aadlsched::bench::run_main(argc, argv, print_table);
}
