// Warm re-exploration experiment (DESIGN.md §12, EXPERIMENTS.md E10): what
// does resuming a budget-bound run from a checkpoint buy over re-exploring
// cold? The table bounds cruise_control, resumes it, and compares the
// resumed wall-clock against a cold full run (the resumed run must also
// reach the identical verdict and state count — determinism is asserted,
// not assumed). The BM_ timings cover the checkpoint mechanics themselves:
// serialize, digest-verified parse, and a resumed vs cold exploration.
#include <chrono>
#include <fstream>
#include <sstream>

#include "bench_common.hpp"
#include "versa/checkpoint.hpp"

namespace {

using namespace aadlsched;

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

const std::string& cruise_text() {
  static const std::string text =
      slurp(std::string(AADLSCHED_MODELS_DIR) + "/cruise_control.aadl");
  return text;
}

const std::string& avionics_text() {
  static const std::string text =
      slurp(std::string(AADLSCHED_MODELS_DIR) + "/avionics.aadl");
  return text;
}

core::AnalyzerOptions base_options() {
  core::AnalyzerOptions opts;
  opts.run_lint = false;  // measure exploration, not the static screen
  opts.translation.quantum_ns = 1'000'000;  // the CLI's 1 ms default
  return opts;
}

double run_ms(const std::string& model, const char* root,
              const core::AnalyzerOptions& opts, core::AnalysisResult* out) {
  const auto t0 = std::chrono::steady_clock::now();
  core::AnalysisResult r = core::analyze_source(model, root, opts);
  const auto t1 = std::chrono::steady_clock::now();
  if (out) *out = std::move(r);
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

void print_table() {
  bench::print_header(
      "warm re-exploration: cold full run vs checkpoint + resume",
      "resuming a budget-bound run re-explores only the remaining space, "
      "so bound_ms + resume_ms ~= cold_ms and resume_ms < cold_ms");

  const char* root = "CruiseControlSystem.impl";
  core::AnalysisResult cold_r;
  const double cold = run_ms(cruise_text(), root, base_options(), &cold_r);

  // Bound the run at roughly half the space, capture, resume.
  core::AnalyzerOptions bound = base_options();
  bound.exploration.max_states = cold_r.states / 2;
  std::string blob;
  bound.checkpoint_out = &blob;
  core::AnalysisResult bound_r;
  const double bound_ms = run_ms(cruise_text(), root, bound, &bound_r);

  core::AnalyzerOptions warm = base_options();
  warm.resume_checkpoint = &blob;
  core::AnalysisResult warm_r;
  const double resume_ms = run_ms(cruise_text(), root, warm, &warm_r);

  const bool identical = warm_r.resumed &&
                         warm_r.outcome == cold_r.outcome &&
                         warm_r.states == cold_r.states &&
                         warm_r.transitions == cold_r.transitions;
  std::printf("# %-22s %10s %10s %10s %12s %10s\n", "model", "cold_ms",
              "bound_ms", "resume_ms", "ckpt_bytes", "identical");
  std::printf("# %-22s %10.1f %10.1f %10.1f %12zu %10s\n",
              "cruise_control.aadl", cold, bound_ms, resume_ms, blob.size(),
              identical ? "yes" : "NO");
  if (!identical)
    std::fprintf(stderr,
                 "warm verdict diverged from cold: resumed=%d states %llu vs "
                 "%llu\n",
                 warm_r.resumed ? 1 : 0,
                 static_cast<unsigned long long>(warm_r.states),
                 static_cast<unsigned long long>(cold_r.states));
}

/// A bound avionics checkpoint, captured once and shared by the BM_ bodies
/// (avionics concludes in a few ms, so the timings stay runnable).
struct Captured {
  std::string blob;
  std::uint64_t full_states = 0;
};

const Captured& captured() {
  static const Captured c = [] {
    Captured out;
    core::AnalysisResult cold;
    run_ms(avionics_text(), "Avionics.impl", base_options(), &cold);
    out.full_states = cold.states;
    core::AnalyzerOptions bound = base_options();
    bound.exploration.max_states = cold.states / 2;
    bound.checkpoint_out = &out.blob;
    run_ms(avionics_text(), "Avionics.impl", bound, nullptr);
    return out;
  }();
  return c;
}

void BM_CheckpointParse(benchmark::State& state) {
  const std::string& blob = captured().blob;
  for (auto _ : state) {
    std::string error;
    benchmark::DoNotOptimize(versa::parse_checkpoint(blob, error));
  }
  state.counters["bytes"] = static_cast<double>(blob.size());
}
BENCHMARK(BM_CheckpointParse)->Unit(benchmark::kMillisecond);

void BM_CheckpointSerialize(benchmark::State& state) {
  std::string error;
  const auto restored = versa::parse_checkpoint(captured().blob, error);
  if (!restored) {
    state.SkipWithError("checkpoint parse failed");
    return;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        versa::serialize_checkpoint(*restored->ctx, restored->wave, "bench"));
  }
}
BENCHMARK(BM_CheckpointSerialize)->Unit(benchmark::kMillisecond);

void BM_ColdFullExploration(benchmark::State& state) {
  for (auto _ : state) {
    core::AnalysisResult r;
    run_ms(avionics_text(), "Avionics.impl", base_options(), &r);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_ColdFullExploration)->Unit(benchmark::kMillisecond);

void BM_ResumedExploration(benchmark::State& state) {
  const std::string& blob = captured().blob;
  for (auto _ : state) {
    core::AnalyzerOptions warm = base_options();
    warm.resume_checkpoint = &blob;
    core::AnalysisResult r;
    run_ms(avionics_text(), "Avionics.impl", warm, &r);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_ResumedExploration)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return aadlsched::bench::run_main(argc, argv, print_table);
}
