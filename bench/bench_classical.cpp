// E8 — §6 (vs MetaH): classical rate-monotonic admission (utilization
// bounds) against exact RTA and exhaustive exploration. Table: over random
// task sets per utilization level, how many each method admits. Shape:
// bound <= hyperbolic <= RTA == exploration (the bounds are sufficient
// only; RTA is exact and exploration matches it on independent periodic
// tasks).
//
// Timing benches compare the cost: the analytical tests are microseconds,
// exploration is milliseconds — the price of exactness on models where no
// closed-form test exists (§1).
#include "bench_common.hpp"

namespace {

using namespace aadlsched;

constexpr std::size_t kTasks = 4;
constexpr int kSets = 24;

void print_table() {
  bench::print_header(
      "E8: admission counts — LL bound vs hyperbolic vs RTA vs exploration",
      "bounds are sufficient-only; RTA is exact; exploration == RTA");
  std::printf("%6s %6s %12s %6s %14s %8s\n", "U", "LL", "hyperbolic", "RTA",
              "exploration", "sets");
  for (double u : {0.65, 0.75, 0.85, 0.95}) {
    int ll = 0, hb = 0, rta = 0, expl = 0;
    for (int seed = 1; seed <= kSets; ++seed) {
      sched::TaskSet ts =
          bench::workload(static_cast<std::uint64_t>(seed) * 31 + 7,
                          kTasks, u);
      sched::assign_rate_monotonic(ts);
      ll += sched::rm_utilization_test(ts) == sched::Verdict::Schedulable;
      hb += sched::hyperbolic_bound_test(ts) == sched::Verdict::Schedulable;
      const bool rta_ok = sched::response_time_analysis(ts).verdict ==
                          sched::Verdict::Schedulable;
      rta += rta_ok;
      const auto r =
          bench::run_taskset(ts, sched::SchedulingPolicy::FixedPriority);
      expl += r.ok && r.explored.schedulable();
    }
    std::printf("%6.2f %6d %12d %6d %14d %8d\n", u, ll, hb, rta, expl,
                kSets);
  }
  std::printf("\n");
}

void BM_UtilizationBound(benchmark::State& state) {
  sched::TaskSet ts = bench::workload(42, kTasks, 0.85);
  sched::assign_rate_monotonic(ts);
  for (auto _ : state)
    benchmark::DoNotOptimize(sched::rm_utilization_test(ts));
}
BENCHMARK(BM_UtilizationBound);

void BM_ResponseTimeAnalysis(benchmark::State& state) {
  sched::TaskSet ts = bench::workload(42, kTasks, 0.85);
  sched::assign_rate_monotonic(ts);
  for (auto _ : state)
    benchmark::DoNotOptimize(sched::response_time_analysis(ts));
}
BENCHMARK(BM_ResponseTimeAnalysis);

void BM_EdfDemandAnalysis(benchmark::State& state) {
  const sched::TaskSet ts = bench::workload(42, kTasks, 0.85, 0.8);
  for (auto _ : state)
    benchmark::DoNotOptimize(sched::edf_demand_analysis(ts));
}
BENCHMARK(BM_EdfDemandAnalysis);

void BM_EdfQpa(benchmark::State& state) {
  const sched::TaskSet ts = bench::workload(42, kTasks, 0.85, 0.8);
  for (auto _ : state) benchmark::DoNotOptimize(sched::edf_qpa(ts));
}
BENCHMARK(BM_EdfQpa);

void BM_HyperperiodSimulation(benchmark::State& state) {
  sched::TaskSet ts = bench::workload(42, kTasks, 0.85);
  sched::assign_rate_monotonic(ts);
  for (auto _ : state) benchmark::DoNotOptimize(sched::simulate(ts));
}
BENCHMARK(BM_HyperperiodSimulation);

void BM_Exploration(benchmark::State& state) {
  sched::TaskSet ts = bench::workload(42, kTasks, 0.85);
  sched::assign_rate_monotonic(ts);
  for (auto _ : state)
    benchmark::DoNotOptimize(
        bench::run_taskset(ts, sched::SchedulingPolicy::FixedPriority));
}
BENCHMARK(BM_Exploration);

}  // namespace

int main(int argc, char** argv) {
  return aadlsched::bench::run_main(argc, argv, print_table);
}
