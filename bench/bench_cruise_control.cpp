// F1 — the paper's running example (Fig. 1): analyze the cruise-control
// system end to end. Prints the per-thread table and the verdict the
// paper's plugin would show, then times every pipeline stage.
#include <fstream>
#include <sstream>

#include "bench_common.hpp"

namespace {

using namespace aadlsched;

std::string model_source() {
  std::ifstream in(AADLSCHED_MODELS_DIR "/cruise_control.aadl");
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

const std::string& source() {
  static const std::string src = model_source();
  return src;
}

translate::TranslateOptions ten_ms() {
  translate::TranslateOptions t;
  t.quantum_ns = 10'000'000;
  return t;
}

void print_table() {
  bench::print_header(
      "F1: cruise-control system (Fig. 1)",
      "6 threads / 6 dispatchers / 0 queues; schedulable under RM");
  core::AnalyzerOptions opts;
  opts.translation = ten_ms();
  const auto r =
      core::analyze_source(source(), "CruiseControlSystem.impl", opts);
  std::printf("%-22s %6s %6s %6s %6s %6s\n", "thread", "cmin", "cmax", "T",
              "D", "prio");
  for (const auto& t : r.threads)
    std::printf("%-22s %6lld %6lld %6lld %6lld %6d\n", t.path.c_str(),
                static_cast<long long>(t.cmin),
                static_cast<long long>(t.cmax),
                static_cast<long long>(t.period),
                static_cast<long long>(t.deadline), t.static_priority);
  std::printf("verdict: %s, states=%llu transitions=%llu\n\n",
              r.schedulable ? "SCHEDULABLE" : "NOT SCHEDULABLE",
              static_cast<unsigned long long>(r.states),
              static_cast<unsigned long long>(r.transitions));
}

void BM_ParseOnly(benchmark::State& state) {
  for (auto _ : state) {
    aadl::Model model;
    util::DiagnosticEngine diags;
    benchmark::DoNotOptimize(aadl::parse_aadl(model, source(), diags));
  }
}
BENCHMARK(BM_ParseOnly);

void BM_ParseInstantiate(benchmark::State& state) {
  for (auto _ : state) {
    aadl::Model model;
    util::DiagnosticEngine diags;
    aadl::parse_aadl(model, source(), diags);
    auto inst = aadl::instantiate(model, "CruiseControlSystem.impl", diags);
    benchmark::DoNotOptimize(inst);
  }
}
BENCHMARK(BM_ParseInstantiate);

void BM_Translate(benchmark::State& state) {
  aadl::Model model;
  util::DiagnosticEngine diags;
  aadl::parse_aadl(model, source(), diags);
  auto inst = aadl::instantiate(model, "CruiseControlSystem.impl", diags);
  for (auto _ : state) {
    acsr::Context ctx;
    auto tr = translate::translate(ctx, *inst, diags, ten_ms());
    benchmark::DoNotOptimize(tr);
  }
}
BENCHMARK(BM_Translate);

void BM_EndToEnd(benchmark::State& state) {
  std::uint64_t states = 0;
  for (auto _ : state) {
    const auto r = bench::run_pipeline(source(), "CruiseControlSystem.impl",
                                       ten_ms());
    states = r.explored.states;
    benchmark::DoNotOptimize(r);
  }
  state.counters["states"] = static_cast<double>(states);
}
BENCHMARK(BM_EndToEnd);

void BM_EndToEndFineQuantum(benchmark::State& state) {
  translate::TranslateOptions t = ten_ms();
  t.quantum_ns = 5'000'000;
  std::uint64_t states = 0;
  for (auto _ : state) {
    const auto r =
        bench::run_pipeline(source(), "CruiseControlSystem.impl", t);
    states = r.explored.states;
    benchmark::DoNotOptimize(r);
  }
  state.counters["states"] = static_cast<double>(states);
}
BENCHMARK(BM_EndToEndFineQuantum);

}  // namespace

int main(int argc, char** argv) {
  return aadlsched::bench::run_main(argc, argv, print_table);
}
