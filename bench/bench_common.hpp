// Shared helpers for the experiment benches. Each bench binary prints the
// table/series of its EXPERIMENTS.md row first (deterministic, seeded
// workloads), then runs its google-benchmark timings.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "acsr/semantics.hpp"
#include "aadl/instance.hpp"
#include "aadl/parser.hpp"
#include "core/analyzer.hpp"
#include "core/taskset_aadl.hpp"
#include "sched/analysis.hpp"
#include "sched/simulator.hpp"
#include "sched/workload.hpp"
#include "translate/translator.hpp"
#include "versa/explorer.hpp"

namespace aadlsched::bench {

struct PipelineResult {
  bool ok = false;
  versa::ExploreResult explored;
  acsr::Semantics::Stats sem_stats;
  std::size_t definitions = 0;
};

/// Full pipeline: AADL source -> instance -> ACSR -> exploration.
inline PipelineResult run_pipeline(
    const std::string& aadl_source, std::string_view root,
    const translate::TranslateOptions& topts = {},
    const versa::ExploreOptions& eopts = {}) {
  PipelineResult out;
  util::DiagnosticEngine diags("bench.aadl");
  aadl::Model model;
  if (!aadl::parse_aadl(model, aadl_source, diags)) return out;
  auto inst = aadl::instantiate(model, root, diags);
  if (!inst || diags.has_errors()) return out;
  acsr::Context ctx;
  auto tr = translate::translate(ctx, *inst, diags, topts);
  if (!tr) {
    std::fprintf(stderr, "%s", diags.render_all().c_str());
    return out;
  }
  acsr::Semantics sem(ctx);
  out.explored = versa::explore(sem, tr->initial, eopts);
  out.sem_stats = sem.stats();
  out.definitions = ctx.definition_count();
  out.ok = true;
  return out;
}

/// Pipeline on a classical task set.
inline PipelineResult run_taskset(const sched::TaskSet& ts,
                                  sched::SchedulingPolicy policy,
                                  const translate::TranslateOptions& base =
                                      {}) {
  translate::TranslateOptions topts = base;
  topts.quantum_ns = 1'000'000;
  return run_pipeline(core::taskset_to_aadl(ts, policy), "Root.impl", topts);
}

inline sched::TaskSet workload(std::uint64_t seed, std::size_t n, double u,
                               double deadline_fraction = 1.0) {
  sched::WorkloadSpec spec;
  spec.task_count = n;
  spec.total_utilization = u;
  spec.deadline_fraction = deadline_fraction;
  spec.periods = {3, 4, 5, 6, 8, 10};
  return sched::generate_workload(spec, seed);
}

inline void print_header(const char* experiment, const char* claim) {
  std::printf("### %s\n# %s\n", experiment, claim);
}

/// Shared main for every bench binary: translates the repo-level flags into
/// google-benchmark flags so tools/run_benches.sh and CI drive all binaries
/// through one interface.
///
///   --json <out>   write the google-benchmark JSON report to <out>
///   --smoke        CI smoke mode: skip the experiment table (it reruns the
///                  full workloads) and cut benchmark repetitions to ~10 ms
///
/// Everything else is forwarded to google-benchmark untouched.
inline int run_main(int argc, char** argv, void (*print_table)()) {
  bool smoke = false;
  std::string json_out;
  std::vector<std::string> forwarded = {argv[0]};
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc)
      json_out = argv[++i];
    else if (arg == "--smoke")
      smoke = true;
    else
      forwarded.push_back(arg);
  }
  if (!json_out.empty()) {
    forwarded.push_back("--benchmark_out=" + json_out);
    forwarded.push_back("--benchmark_out_format=json");
  }
  if (smoke) forwarded.push_back("--benchmark_min_time=0.01");

  if (!smoke && print_table) print_table();

  std::vector<char*> fargv;
  for (std::string& s : forwarded) fargv.push_back(s.data());
  int fargc = static_cast<int>(fargv.size());
  fargv.push_back(nullptr);
  benchmark::Initialize(&fargc, fargv.data());
  if (benchmark::ReportUnrecognizedArguments(fargc, fargv.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

}  // namespace aadlsched::bench
