// E4 — §1/§6: exploration handles interaction patterns classical analyses
// treat conservatively. Workload: event chains (periodic producer
// dispatching a sporadic consumer through a queue). The classical
// treatment releases the consumer independently at the critical instant;
// the exploration knows the consumer is only released when the producer
// completes.
//
// Table: consumer deadline sweep — for tight deadlines the classical test
// rejects while exploration proves schedulability (because the chain
// serializes the interference); the two agree again once deadlines are
// large or genuinely infeasible.
#include "bench_common.hpp"

namespace {

using namespace aadlsched;

std::string chain_model(int producer_c, int producer_t, int consumer_c,
                        int consumer_d) {
  char buf[2048];
  std::snprintf(buf, sizeof(buf), R"(
    package Chain
    public
      processor Cpu
      properties
        Scheduling_Protocol => POSIX_1003_HIGHEST_PRIORITY_FIRST_PROTOCOL;
      end Cpu;
      thread Producer
      features
        evt : out event port;
      end Producer;
      thread implementation Producer.impl
      properties
        Dispatch_Protocol => Periodic;
        Period => %d ms;
        Compute_Execution_Time => %d ms .. %d ms;
        Deadline => %d ms;
        Priority => 2;
      end Producer.impl;
      thread Consumer
      features
        trig : in event port;
      end Consumer;
      thread implementation Consumer.impl
      properties
        Dispatch_Protocol => Sporadic;
        Period => %d ms;
        Compute_Execution_Time => %d ms .. %d ms;
        Deadline => %d ms;
        Priority => 1;
      end Consumer.impl;
      system R
      end R;
      system implementation R.impl
      subcomponents
        p   : thread Producer.impl;
        c   : thread Consumer.impl;
        cpu : processor Cpu;
      connections
        conn : port p.evt -> c.trig;
      properties
        Actual_Processor_Binding => reference (cpu) applies to p;
        Actual_Processor_Binding => reference (cpu) applies to c;
      end R.impl;
    end Chain;
  )",
                producer_t, producer_c, producer_c, producer_t, producer_t,
                consumer_c, consumer_c, consumer_d);
  return buf;
}

bool classical_verdict(int producer_c, int producer_t, int consumer_c,
                       int consumer_d) {
  // Consumer modeled as an independent sporadic task with synchronous
  // worst-case release (the standard treatment).
  sched::TaskSet ts;
  sched::Task p;
  p.name = "p";
  p.wcet = p.bcet = producer_c;
  p.period = p.deadline = producer_t;
  p.priority = 2;
  sched::Task c;
  c.name = "c";
  c.wcet = c.bcet = consumer_c;
  c.period = producer_t;
  c.deadline = consumer_d;
  c.priority = 1;
  c.kind = sched::DispatchKind::Sporadic;
  ts.tasks = {p, c};
  return sched::simulate(ts).schedulable;
}

void print_table() {
  bench::print_header(
      "E4: event chain — exploration vs independent-task treatment",
      "exploration is exact on release dependencies; the classical "
      "treatment is conservative for tight consumer deadlines");
  std::printf("producer: C=1 T=6; consumer: C=1, dispatched by producer "
              "completion\n");
  std::printf("%12s %14s %14s\n", "consumer D", "classical", "exploration");
  translate::TranslateOptions topts;
  topts.quantum_ns = 1'000'000;
  for (int d = 1; d <= 4; ++d) {
    const bool classical = classical_verdict(1, 6, 1, d);
    const auto r = bench::run_pipeline(chain_model(1, 6, 1, d), "R.impl",
                                       topts);
    std::printf("%10d ms %14s %14s%s\n", d,
                classical ? "schedulable" : "rejected",
                r.explored.schedulable() ? "schedulable" : "rejected",
                !classical && r.explored.schedulable()
                    ? "   <- exploration wins"
                    : "");
  }
  // An infeasible chain: both must reject.
  const bool classical = classical_verdict(2, 4, 3, 2);
  const auto r =
      bench::run_pipeline(chain_model(2, 4, 3, 2), "R.impl", topts);
  std::printf("infeasible control (C=3 within D=2): classical=%s "
              "exploration=%s\n\n",
              classical ? "schedulable" : "rejected",
              r.explored.schedulable() ? "schedulable" : "rejected");
}

void BM_ChainExploration(benchmark::State& state) {
  const std::string src = chain_model(1, 6, 1, static_cast<int>(
                                                   state.range(0)));
  translate::TranslateOptions topts;
  topts.quantum_ns = 1'000'000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(bench::run_pipeline(src, "R.impl", topts));
  }
}
BENCHMARK(BM_ChainExploration)->Arg(1)->Arg(4);

}  // namespace

int main(int argc, char** argv) {
  return aadlsched::bench::run_main(argc, argv, print_table);
}
