// E5 — §4.4: queue management. Two arrival regimes against a sporadic
// consumer, swept over Queue_Size and Overflow_Handling_Protocol:
//
//   * overloaded: producer emits faster than the consumer's minimum
//     separation admits dispatches — the backlog grows without bound, so
//     under Error *every* finite queue eventually overflows (and the
//     analysis reports the violation; larger queues only postpone it, which
//     shows as more explored states), while DropNewest sheds events and
//     stays safe;
//   * balanced: arrival rate equals the service rate — Queue_Size 1 already
//     suffices under either protocol.
#include "bench_common.hpp"

namespace {

using namespace aadlsched;

std::string queue_model(int producer_period, int consumer_sep,
                        int queue_size, bool error_protocol) {
  char buf[2304];
  std::snprintf(buf, sizeof(buf), R"(
    package Q
    public
      processor Cpu
      properties
        Scheduling_Protocol => POSIX_1003_HIGHEST_PRIORITY_FIRST_PROTOCOL;
      end Cpu;
      thread Producer
      features
        evt : out event port;
      end Producer;
      thread implementation Producer.impl
      properties
        Dispatch_Protocol => Periodic;
        Period => %d ms;
        Compute_Execution_Time => 1 ms .. 1 ms;
        Deadline => %d ms;
        Priority => 2;
      end Producer.impl;
      thread Consumer
      features
        trig : in event port { Queue_Size => %d; };
      end Consumer;
      thread implementation Consumer.impl
      properties
        Dispatch_Protocol => Sporadic;
        Period => %d ms;
        Compute_Execution_Time => 1 ms .. 1 ms;
        Deadline => %d ms;
        Priority => 1;
      end Consumer.impl;
      system R
      end R;
      system implementation R.impl
      subcomponents
        p   : thread Producer.impl;
        c   : thread Consumer.impl;
        cpu : processor Cpu;
      connections
        conn : port p.evt -> c.trig;
      properties
        Actual_Processor_Binding => reference (cpu) applies to p;
        Actual_Processor_Binding => reference (cpu) applies to c;
        %s
      end R.impl;
    end Q;
  )",
                producer_period, producer_period, queue_size, consumer_sep,
                consumer_sep * 3,
                error_protocol
                    ? "Overflow_Handling_Protocol => Error applies to conn;"
                    : "");
  return buf;
}

void row(const char* regime, int producer_period, int consumer_sep,
         int size) {
  translate::TranslateOptions topts;
  topts.quantum_ns = 1'000'000;
  const auto err = bench::run_pipeline(
      queue_model(producer_period, consumer_sep, size, true), "R.impl",
      topts);
  const auto drop = bench::run_pipeline(
      queue_model(producer_period, consumer_sep, size, false), "R.impl",
      topts);
  std::printf("%-11s %6d %16s %10llu %16s %10llu\n", regime, size,
              err.explored.schedulable() ? "ok" : "overflow",
              static_cast<unsigned long long>(err.explored.states),
              drop.explored.schedulable() ? "ok" : "violation",
              static_cast<unsigned long long>(drop.explored.states));
}

void print_table() {
  bench::print_header("E5: Queue_Size and Overflow_Handling_Protocol (§4.4)",
                      "overloaded arrivals overflow every finite queue "
                      "under Error (later for larger queues); DropNewest "
                      "sheds; balanced arrivals need only size 1");
  std::printf("%-11s %6s %16s %10s %16s %10s\n", "regime", "size",
              "Error verdict", "states", "Drop verdict", "states");
  for (int size : {1, 2, 4})
    row("overloaded", /*producer=*/2, /*separation=*/4, size);
  for (int size : {1, 2, 4})
    row("balanced", /*producer=*/4, /*separation=*/4, size);
  std::printf("\n");
}

void BM_QueueSizeDrop(benchmark::State& state) {
  const std::string src =
      queue_model(2, 4, static_cast<int>(state.range(0)), false);
  translate::TranslateOptions topts;
  topts.quantum_ns = 1'000'000;
  std::uint64_t states = 0;
  for (auto _ : state) {
    const auto r = bench::run_pipeline(src, "R.impl", topts);
    states = r.explored.states;
    benchmark::DoNotOptimize(r);
  }
  state.counters["states"] = static_cast<double>(states);
}
BENCHMARK(BM_QueueSizeDrop)->Arg(1)->Arg(2)->Arg(4);

}  // namespace

int main(int argc, char** argv) {
  return aadlsched::bench::run_main(argc, argv, print_table);
}
