#include "core/analyzer.hpp"

#include <fstream>
#include <iomanip>
#include <map>
#include <sstream>

#include "aadl/parser.hpp"
#include "acsr/printer.hpp"
#include "acsr/semantics.hpp"
#include "core/symbolic_extract.hpp"
#include "versa/checkpoint.hpp"
#include "versa/inspection.hpp"
#include "versa/symbolic.hpp"
#include "util/string_utils.hpp"

namespace aadlsched::core {

namespace {

struct ThreadView {
  std::string path;
  std::int64_t cmin = 0;
  std::int64_t deadline = 0;
  // Rolling status while walking the trace.
  bool in_compute = false;
  acsr::ParamValue last_e = 0;
};

/// Interpret one event/tau label in AADL terms.
std::string describe_event(const acsr::Context& ctx,
                           const translate::Translation& tr,
                           const acsr::Label& label) {
  const std::string& name = ctx.event_name(label.event);
  const auto thread_of = [&](std::string_view prefix) -> std::string {
    const std::string mangled(name.substr(prefix.size()));
    for (const translate::TranslatedThread& t : tr.threads)
      if (t.mangled == mangled) return t.path;
    return mangled;
  };
  const auto queue_of = [&](std::string_view prefix) -> std::string {
    const std::string mangled(name.substr(prefix.size()));
    for (const translate::TranslatedQueue& q : tr.queues)
      if (q.mangled == mangled) return q.connection;
    return mangled;
  };
  if (util::starts_with(name, "dispatch_"))
    return "dispatch of " + thread_of("dispatch_");
  if (util::starts_with(name, "done_"))
    return "completion of " + thread_of("done_");
  if (util::starts_with(name, "enq_"))
    return "event queued on " + queue_of("enq_");
  if (util::starts_with(name, "deq_"))
    return "event consumed from " + queue_of("deq_");
  return "event " + name;
}

FailingScenario lift_back(acsr::Context& ctx,
                          const translate::Translation& tr,
                          const versa::ExploreResult& er) {
  FailingScenario fs;

  std::vector<ThreadView> views;
  for (const translate::TranslatedThread& t : tr.threads)
    views.push_back(ThreadView{t.path, t.cmin, t.deadline, false, 0});

  std::vector<std::string> rows(views.size());

  const auto absorb_state = [&](acsr::TermId state, bool quantum_passed) {
    const auto comps = versa::inspect(ctx, state);
    for (std::size_t i = 0; i < views.size(); ++i) {
      ThreadView& v = views[i];
      const versa::ComponentState* cs = nullptr;
      for (const auto& c : comps) {
        if (c.role == acsr::DefRole::ThreadState && c.aadl_path == v.path) {
          cs = &c;
          break;
        }
      }
      char cell = static_cast<char>(ThreadQuantum::Idle);
      if (cs && cs->state_name == "Compute" && !cs->params.empty()) {
        const acsr::ParamValue e = cs->params[0];
        if (quantum_passed) {
          cell = v.in_compute && e == v.last_e
                     ? static_cast<char>(ThreadQuantum::Preempted)
                     : static_cast<char>(ThreadQuantum::Running);
          // A fresh dispatch that already ran its first quantum also shows
          // as Running (e moved from 0 baseline).
          if (!v.in_compute && e == 0)
            cell = static_cast<char>(ThreadQuantum::Preempted);
        }
        v.in_compute = true;
        v.last_e = e;
      } else {
        v.in_compute = false;
        v.last_e = 0;
      }
      if (quantum_passed) rows[i].push_back(cell);
    }
  };

  absorb_state(er.initial, false);

  std::int64_t quantum = 0;
  for (const versa::Step& step : er.trace) {
    switch (step.label.kind) {
      case acsr::Label::Kind::Action:
        ++quantum;
        absorb_state(step.target, true);
        fs.steps.push_back("quantum " + std::to_string(quantum) + ": " +
                           render_label(ctx, step.label));
        break;
      case acsr::Label::Kind::Tau:
      case acsr::Label::Kind::Event:
        absorb_state(step.target, false);
        fs.steps.push_back("t=" + std::to_string(quantum) + ": " +
                           describe_event(ctx, tr, step.label));
        break;
    }
  }
  fs.quanta = quantum;
  for (std::size_t i = 0; i < views.size(); ++i)
    fs.timeline.push_back(TimelineRow{views[i].path, rows[i]});

  // Deadline misses in the deadlocked state: a dispatcher stuck in
  // AwaitDone with its clock at the thread's deadline.
  const auto comps = versa::inspect(ctx, er.first_deadlock);
  for (const auto& c : comps) {
    if (c.role != acsr::DefRole::Dispatcher || c.state_name != "AwaitDone" ||
        c.params.empty())
      continue;
    const translate::TranslatedThread* t = tr.thread_by_path(c.aadl_path);
    if (t && c.params[0] >= t->deadline)
      fs.missed_threads.push_back(c.aadl_path);
  }
  // Queue overflow under the Error protocol leaves the queue process dead;
  // surface that as well.
  for (const auto& c : comps) {
    if (c.def == acsr::kInvalidDef && c.name == "NIL")
      fs.missed_threads.push_back("<queue overflow (Error protocol)>");
  }
  // Latency observers stuck at their bound (§5).
  for (const auto& c : comps) {
    if (c.role != acsr::DefRole::Observer || c.state_name != "LatencyWait" ||
        c.params.empty())
      continue;
    for (const translate::TranslatedObserver& o : tr.observers) {
      if (o.description == c.aadl_path && c.params[0] >= o.latency)
        fs.missed_threads.push_back("<latency: " + o.description + ">");
    }
  }
  return fs;
}

/// Map an exploration outcome onto the result, shared by the cold and the
/// resumed paths. A partial run is still a result: ok means "the engine
/// answered", and the answer may be Inconclusive(stop_reason). A found
/// deadlock is conclusive even when the budget cut the run short.
void apply_exploration(AnalysisResult& result,
                       const versa::ExploreResult& er) {
  result.states = er.states;
  result.transitions = er.transitions;
  result.exhaustive = er.complete;
  result.schedulable = er.schedulable();
  result.ok = true;
  result.outcome = er.deadlock_found ? Outcome::NotSchedulable
                   : er.complete     ? Outcome::Schedulable
                                     : Outcome::Inconclusive;
  result.stop_reason = er.stop;
  result.trace_dropped = er.trace_dropped;
  result.depth = er.depth;
  result.explore_ms = er.wall_ms;
  result.peak_frontier = er.peak_frontier;
  result.fans_computed = er.sem_stats.computed;
  result.memo_hits = er.sem_stats.memo_hits;
  result.worker_states = er.worker_states;
  result.symmetry_groups = er.symmetry_groups;
  result.states_saved = er.states_saved;
  result.commuted_expansions = er.commuted_expansions;
}

/// Resolve the reduction layer for one run: build the SymmetryModel from
/// the mangled role-name groups (the translator's on a cold run, the
/// checkpoint's on a resume) and wire it into the exploration options.
/// With --no-reduction, or when no groups resolve, the layer stays inert
/// and both engines behave bit-identically to a run without it.
versa::CheckpointReduction setup_reduction(
    versa::SymmetryModel& model, versa::ExploreOptions& eopts,
    acsr::Context& ctx,
    const std::vector<std::vector<std::string>>& role_groups,
    bool uniform_dispatch, bool no_reduction) {
  versa::CheckpointReduction red;
  if (no_reduction) {
    eopts.reduction = versa::ReductionOptions{false, false};
    eopts.symmetry_model = nullptr;
    return red;
  }
  model = versa::SymmetryModel::build(ctx, role_groups, uniform_dispatch);
  eopts.symmetry_model = &model;
  red.symmetry = eopts.reduction.symmetry;
  red.commute = eopts.reduction.commute;
  red.uniform_dispatch = model.uniform_dispatch();
  red.role_groups = model.role_names();
  return red;
}

/// Serialize the captured wavefront when the run is worth resuming later:
/// stopped on a budget, no verdict yet, frontier non-empty. Conclusive runs
/// (including a found deadlock) leave `checkpoint_out` untouched.
void maybe_capture_checkpoint(AnalysisResult& result,
                              const versa::ExploreResult& er,
                              const versa::Wavefront& wave,
                              const acsr::Context& ctx,
                              const AnalyzerOptions& opts,
                              const versa::CheckpointReduction& reduction) {
  if (!opts.checkpoint_out || er.deadlock_found || wave.empty()) return;
  switch (er.stop) {
    case util::StopReason::MaxStates:
    case util::StopReason::Deadline:
    case util::StopReason::MemoryBudget:
    case util::StopReason::Cancelled:
      break;
    default:
      return;  // None (conclusive) or Fault (state may be inconsistent)
  }
  *opts.checkpoint_out = versa::serialize_checkpoint(
      ctx, wave, opts.checkpoint_key.empty() ? "-" : opts.checkpoint_key,
      reduction);
  result.checkpoint_captured = true;
}

/// The resumed path of analyze_instance: exploration continues a restored
/// wavefront, so lint, translation and AADL-level trace lifting are all
/// skipped (a resumed run has no parent links, hence never a timeline).
AnalysisResult analyze_resumed(versa::RestoredCheckpoint restored,
                               const AnalyzerOptions& opts) {
  AnalysisResult result;
  acsr::Context& ctx = *restored.ctx;

  versa::ExploreOptions eopts = opts.exploration;
  eopts.resume = &restored.wave;
  versa::Wavefront captured;
  if (opts.checkpoint_out) eopts.capture = &captured;

  // Rebuild the capturing run's symmetry model against the restored
  // Context: there is no Translation here, but the checkpoint carries the
  // mangled role names, and SymmetryModel::build resolves them by name.
  versa::SymmetryModel sym;
  const versa::CheckpointReduction red = setup_reduction(
      sym, eopts, ctx, restored.reduction.role_groups,
      restored.reduction.uniform_dispatch, opts.no_reduction);

  versa::ExploreResult er;
  if (opts.parallel.workers == 1) {
    acsr::Semantics sem(ctx);
    er = versa::explore(sem, restored.wave.initial, eopts);
  } else {
    er = versa::explore_parallel(ctx, restored.wave.initial, eopts,
                                 opts.parallel);
  }
  apply_exploration(result, er);
  result.resumed = true;
  result.resumed_from_depth = restored.wave.depth;
  result.resumed_from_states = restored.wave.states;
  maybe_capture_checkpoint(result, er, captured, ctx, opts, red);
  return result;
}

/// The symbolic analogue of apply_exploration: map a state-class run onto
/// the result. The class graph reuses the generic exploration counters
/// (states = classes, depth = event-chain length) so downstream rendering —
/// summary, JSON, service stats — needs no second vocabulary.
void apply_symbolic(AnalysisResult& result,
                    const versa::SymbolicResult& sr) {
  result.engine = "symbolic";
  result.states = sr.classes;
  result.transitions = sr.transitions;
  result.depth = sr.depth;
  result.explore_ms = sr.wall_ms;
  result.peak_frontier = sr.peak_frontier;
  result.zone_subsumptions = sr.subsumptions;
  result.dbm_dimension = sr.dbm_dimension;
  if (sr.stop == util::StopReason::Fault) {
    // validate_model refused a model extract_symbolic accepted — a bug,
    // not a verdict. Surface the reasons; ok stays false.
    for (const std::string& r : sr.witness)
      result.diagnostics += "symbolic engine: " + r + "\n";
    return;
  }
  result.ok = true;
  // A found miss is conclusive even on a truncated run, exactly like the
  // enumerator's first deadlock under stop_at_first_deadlock.
  result.exhaustive = sr.complete || sr.miss_found;
  result.schedulable = sr.complete && !sr.miss_found;
  result.outcome = sr.miss_found ? Outcome::NotSchedulable
                   : sr.complete ? Outcome::Schedulable
                                 : Outcome::Inconclusive;
  result.stop_reason = sr.stop;
  result.symbolic_witness = sr.witness;
}

}  // namespace

std::string_view to_string(Engine e) {
  switch (e) {
    case Engine::Enumerative: return "enumerative";
    case Engine::Symbolic: return "symbolic";
    case Engine::Auto: return "auto";
  }
  return "?";
}

std::optional<Engine> engine_from_string(std::string_view s) {
  if (s == "enumerative") return Engine::Enumerative;
  if (s == "symbolic") return Engine::Symbolic;
  if (s == "auto") return Engine::Auto;
  return std::nullopt;
}

std::string FailingScenario::render() const {
  std::ostringstream os;
  os << "Failing scenario (" << quanta << " quanta";
  if (!missed_threads.empty()) {
    os << "; violated: ";
    for (std::size_t i = 0; i < missed_threads.size(); ++i) {
      if (i) os << ", ";
      os << missed_threads[i];
    }
  }
  os << ")\n";
  std::size_t width = 8;
  for (const TimelineRow& row : timeline)
    width = std::max(width, row.thread_path.size() + 1);
  for (const TimelineRow& row : timeline)
    os << util::pad_right(row.thread_path, width) << '|' << row.cells
       << "|\n";
  os << "  (# running, * preempted, . idle)\n";
  for (const std::string& s : steps) os << "  " << s << '\n';
  return os.str();
}

std::string_view to_string(Outcome o) {
  switch (o) {
    case Outcome::Error: return "error";
    case Outcome::Schedulable: return "schedulable";
    case Outcome::NotSchedulable: return "not-schedulable";
    case Outcome::Inconclusive: return "inconclusive";
  }
  return "?";
}

std::string AnalysisResult::summary() const {
  std::ostringstream os;
  if (!ok) {
    os << "ANALYSIS FAILED\n" << diagnostics;
    return os.str();
  }
  if (!decided_by.empty()) {
    os << (schedulable ? "SCHEDULABLE" : "NOT SCHEDULABLE")
       << " — decided statically by lint pass " << decided_by << " ("
       << states << " states explored)";
    if (lint_report && !lint_report->verdict_detail.empty())
      os << "\n  " << lint_report->verdict_detail;
    return os.str();
  }
  if (outcome == Outcome::Schedulable) {
    os << "SCHEDULABLE — no deadline violation is reachable (" << states
       << " states, " << transitions << " transitions explored)";
  } else if (outcome == Outcome::NotSchedulable) {
    os << "NOT SCHEDULABLE — deadline violation found (" << states
       << " states explored)";
    if (trace_dropped)
      os << "\n  (counterexample trace dropped under memory pressure; rerun "
            "with a larger --memory-budget-mb for the failing timeline)";
    if (scenario) {
      os << '\n' << scenario->render();
    }
    if (!symbolic_witness.empty()) {
      os << "\nCounterexample event trail:";
      for (const std::string& line : symbolic_witness)
        os << "\n  " << line;
    }
  } else {
    // Partial result with meaning: the explored prefix is deadlock-free.
    os << "INCONCLUSIVE (" << util::to_string(stop_reason)
       << ") — no deadline violation reachable within BFS depth " << depth
       << " / " << states << " states (partial result, not a verdict)";
    if (trace_dropped) os << "\n  trace recording was dropped en route";
  }
  if (engine == "symbolic")
    os << "\nsymbolic: " << states << " zones explored, "
       << zone_subsumptions << " subsumptions, DBM dimension "
       << dbm_dimension;
  if (resumed)
    os << "\nresumed from depth " << resumed_from_depth << " ("
       << resumed_from_states
       << " states already visited via warm checkpoint)";
  if (checkpoint_captured)
    os << "\ncheckpoint captured at depth " << depth
       << " — resubmit with a larger budget to resume";
  os << "\nexploration: " << std::fixed << std::setprecision(2) << explore_ms
     << " ms, peak frontier " << peak_frontier << ", fan memo "
     << memo_hits << " hits / " << fans_computed << " computed";
  if (symmetry_groups > 0)
    os << "\nreduction: symmetry groups: " << symmetry_groups
       << ", states saved: " << states_saved << ", commuted expansions: "
       << commuted_expansions;
  if (worker_states.size() > 1) {
    os << ", per-worker states [";
    for (std::size_t i = 0; i < worker_states.size(); ++i) {
      if (i) os << ' ';
      os << worker_states[i];
    }
    os << ']';
  }
  return os.str();
}

AnalysisResult analyze_instance(const aadl::InstanceModel& instance,
                                const AnalyzerOptions& opts) {
  AnalysisResult result;
  util::DiagnosticEngine diags("<model>");

  // Engine resolution (DESIGN.md §16). Forced-symbolic outside the fragment
  // is an error with the reasons spelled out; auto falls back to
  // enumeration with the same reasons as a note.
  SymbolicExtraction sx;
  bool use_symbolic = false;
  std::string resume_note;
  if (opts.engine != Engine::Enumerative) {
    sx = extract_symbolic(instance, opts.translation);
    if (sx.applicable) {
      use_symbolic = true;
      result.engine = "symbolic";
    } else if (opts.engine == Engine::Symbolic) {
      result.diagnostics =
          "symbolic engine inapplicable: " + sx.why() + "\n";
      return result;  // ok == false: the forced engine cannot analyze this
    } else {
      resume_note = "symbolic engine inapplicable: " + sx.why() +
                    "; falling back to enumerative exploration\n";
    }
  }

  // Warm resume: a valid checkpoint stands in for lint + translation + the
  // already-explored prefix. A checkpoint that fails validation (digest,
  // round-trip, any id out of range) downgrades to a cold run — resuming is
  // an optimization, never a correctness risk. The symbolic engine has no
  // wavefront format: a resume request is noted and ignored.
  if (use_symbolic && opts.resume_checkpoint &&
      !opts.resume_checkpoint->empty()) {
    resume_note +=
        "checkpoint resume is unsupported for the symbolic engine; running "
        "cold\n";
  } else if (opts.resume_checkpoint && !opts.resume_checkpoint->empty()) {
    std::string why;
    if (auto restored =
            versa::parse_checkpoint(*opts.resume_checkpoint, why)) {
      // The visited set holds whatever the capturing run deduplicated on
      // (orbit representatives under symmetry), so the resume must run
      // with the same reduction settings — a mismatch downgrades to cold.
      versa::ReductionOptions want = opts.exploration.reduction;
      if (opts.no_reduction) want = versa::ReductionOptions{false, false};
      if (restored->reduction.symmetry == want.symmetry &&
          restored->reduction.commute == want.commute) {
        return analyze_resumed(std::move(*restored), opts);
      }
      why = "checkpoint rejected: reduction settings differ (captured with "
            "symmetry=" + std::to_string(restored->reduction.symmetry) +
            " commute=" + std::to_string(restored->reduction.commute) +
            ", this run wants symmetry=" + std::to_string(want.symmetry) +
            " commute=" + std::to_string(want.commute) + ")";
    }
    resume_note += why + "; falling back to a cold run\n";
  }

  if (opts.run_lint) {
    lint::Options lopts = opts.lint;
    lopts.translation = opts.translation;
    lopts.diags = &diags;
    result.lint_report = lint::run(instance, lopts);
    const lint::Report& report = *result.lint_report;
    // A conclusive static verdict on a translatable model replaces
    // exploration: the screening passes only decide when exploration would
    // provably agree (DESIGN.md §9).
    if (report.translated &&
        report.verdict != lint::StaticVerdict::None &&
        opts.skip_exploration_on_conclusive) {
      result.ok = true;
      result.exhaustive = true;
      result.schedulable =
          report.verdict == lint::StaticVerdict::Schedulable;
      result.outcome = result.schedulable ? Outcome::Schedulable
                                          : Outcome::NotSchedulable;
      result.decided_by = report.decided_by;
      result.diagnostics = resume_note + diags.render_all();
      return result;
    }
    if (report.fails(opts.lint.fail_on)) {
      result.diagnostics = resume_note + diags.render_all();
      return result;  // ok == false: lint gate tripped
    }
  }

  if (use_symbolic) {
    // The state-class engine never serializes a wavefront: a checkpoint
    // request must fail loudly, not produce a silently empty artifact.
    if (opts.checkpoint_out)
      resume_note +=
          "checkpointing unsupported for symbolic engine; no checkpoint "
          "will be captured\n";
    versa::SymbolicOptions sopts;
    sopts.max_classes = opts.exploration.max_states;
    sopts.budget = opts.exploration.budget;
    const versa::SymbolicResult sr = versa::explore_symbolic(sx.model, sopts);
    apply_symbolic(result, sr);
    result.diagnostics = resume_note + diags.render_all() + result.diagnostics;
    return result;
  }

  acsr::Context ctx;
  auto tr = translate::translate(ctx, instance, diags, opts.translation);
  result.diagnostics = resume_note + diags.render_all();
  if (!tr) return result;
  result.threads = tr->threads;

  versa::ExploreOptions eopts = opts.exploration;
  versa::Wavefront captured;
  if (opts.checkpoint_out) eopts.capture = &captured;

  std::vector<std::vector<std::string>> role_groups;
  for (const translate::SymmetryGroup& g : tr->symmetry.groups)
    role_groups.push_back(g.roles);
  versa::SymmetryModel sym;
  const versa::CheckpointReduction red =
      setup_reduction(sym, eopts, ctx, role_groups,
                      tr->symmetry.uniform_dispatch, opts.no_reduction);

  versa::ExploreResult er;
  if (opts.parallel.workers == 1) {
    acsr::Semantics sem(ctx);
    er = versa::explore(sem, tr->initial, eopts);
  } else {
    er = versa::explore_parallel(ctx, tr->initial, eopts, opts.parallel);
  }
  apply_exploration(result, er);
  maybe_capture_checkpoint(result, er, captured, ctx, opts, red);
  // No timeline without a trace: when recording was dropped under memory
  // pressure, lifting would produce an empty "0 quanta" scenario that reads
  // like a real counterexample.
  if (er.deadlock_found && !er.trace.empty())
    result.scenario = lift_back(ctx, *tr, er);
  return result;
}

AnalysisResult analyze_source(std::string_view aadl_source,
                              std::string_view root_impl,
                              const AnalyzerOptions& opts) {
  AnalysisResult result;
  util::DiagnosticEngine diags("<aadl>");
  aadl::Model model;
  if (!aadl::parse_aadl(model, aadl_source, diags)) {
    result.diagnostics = diags.render_all();
    return result;
  }
  auto instance = aadl::instantiate(model, root_impl, diags);
  if (!instance || diags.has_errors()) {
    result.diagnostics = diags.render_all();
    return result;
  }
  AnalysisResult r = analyze_instance(*instance, opts);
  r.diagnostics = diags.render_all() + r.diagnostics;
  return r;
}

AnalysisResult analyze_file(const std::string& path,
                            std::string_view root_impl,
                            const AnalyzerOptions& opts) {
  std::ifstream in(path);
  if (!in) {
    AnalysisResult result;
    result.diagnostics = "cannot open '" + path + "'\n";
    return result;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return analyze_source(buf.str(), root_impl, opts);
}

std::string render_acsr(std::string_view aadl_source,
                        std::string_view root_impl, std::string& diagnostics,
                        const translate::TranslateOptions& opts) {
  util::DiagnosticEngine diags("<aadl>");
  aadl::Model model;
  if (!aadl::parse_aadl(model, aadl_source, diags)) {
    diagnostics = diags.render_all();
    return {};
  }
  auto instance = aadl::instantiate(model, root_impl, diags);
  if (!instance || diags.has_errors()) {
    diagnostics = diags.render_all();
    return {};
  }
  acsr::Context ctx;
  auto tr = translate::translate(ctx, *instance, diags, opts);
  diagnostics = diags.render_all();
  if (!tr) return {};
  acsr::Printer printer(ctx);
  std::ostringstream os;
  os << printer.module();
  // ACSR comments use '//'; the dump stays parseable by acsr::parse_module.
  os << "// initial state: " << printer.ground_term(tr->initial) << "\n";
  return os.str();
}

}  // namespace aadlsched::core
