// Bridge from the classical task model to AADL source text.
//
// Renders a sched::TaskSet as a complete, bound AADL system (one processor
// per Task::processor value, one periodic/sporadic thread per task). This
// is how the cross-validation experiments (EXPERIMENTS.md E1/E3) drive the
// full pipeline — parser, instantiation, translation, exploration — from
// randomly generated workloads, and compare the verdict against RTA, EDF
// demand analysis and the hyperperiod simulator.
#pragma once

#include <string>

#include "sched/blocking.hpp"
#include "sched/simulator.hpp"
#include "sched/task.hpp"

namespace aadlsched::core {

/// Scheduling protocol names accepted by the AADL front end.
std::string_view protocol_property_name(sched::SchedulingPolicy policy);

/// Presentation knobs for the generated AADL text. The defaults reproduce
/// the historical output byte for byte; the experiment harness overrides
/// them so each generated model file is self-describing (which spec cell
/// and seed produced it) without a side-channel manifest.
struct TasksetRenderOptions {
  /// AADL package name; the root implementation is "<package>::Root.impl".
  std::string package = "Gen";
  /// Free-text provenance rendered as leading "-- " comment lines (split on
  /// '\n'). Empty = no header. Comments are ignored by the parser, so two
  /// renders differing only here have identical analysis fingerprints only
  /// if the daemon fingerprints the *model text* — they do not; keep the
  /// header identical across backends when byte-identical caching matters.
  std::string header_comment;
  /// Task times are interpreted as multiples of this quantum.
  std::int64_t quantum_ns = 1'000'000;
};

/// Render the task set as a complete, bound AADL system (see
/// TasksetRenderOptions for package naming). Sporadic tasks get a
/// device-driven incoming event connection (the device fires at the task's
/// minimum separation).
std::string taskset_to_aadl(const sched::TaskSet& ts,
                            sched::SchedulingPolicy policy,
                            const TasksetRenderOptions& opts);

/// Back-compat shim: package "Gen", no header.
std::string taskset_to_aadl(const sched::TaskSet& ts,
                            sched::SchedulingPolicy policy,
                            std::int64_t quantum_ns = 1'000'000);

/// Like taskset_to_aadl, but additionally renders the resource model as
/// shared data components: one `data R<j>` per resource (carrying its
/// Concurrency_Control_Protocol), a `requires data access` feature plus an
/// access connection per critical section, and a Critical_Section_Time
/// association per connection. Durations are multiples of `quantum_ns`.
/// This drives the shared-resource agreement experiments (EXPERIMENTS.md
/// E12) through the same front end the AL015/AL016 passes read.
std::string taskset_to_aadl_shared(const sched::TaskSet& ts,
                                   sched::SchedulingPolicy policy,
                                   const sched::ResourceModel& resources,
                                   const TasksetRenderOptions& opts);

/// Back-compat shim: package "Gen", no header.
std::string taskset_to_aadl_shared(const sched::TaskSet& ts,
                                   sched::SchedulingPolicy policy,
                                   const sched::ResourceModel& resources,
                                   std::int64_t quantum_ns = 1'000'000);

}  // namespace aadlsched::core
