// Bridge from the classical task model to AADL source text.
//
// Renders a sched::TaskSet as a complete, bound AADL system (one processor
// per Task::processor value, one periodic/sporadic thread per task). This
// is how the cross-validation experiments (EXPERIMENTS.md E1/E3) drive the
// full pipeline — parser, instantiation, translation, exploration — from
// randomly generated workloads, and compare the verdict against RTA, EDF
// demand analysis and the hyperperiod simulator.
#pragma once

#include <string>

#include "sched/blocking.hpp"
#include "sched/simulator.hpp"
#include "sched/task.hpp"

namespace aadlsched::core {

/// Scheduling protocol names accepted by the AADL front end.
std::string_view protocol_property_name(sched::SchedulingPolicy policy);

/// Render the task set as an AADL package "Gen" with root system
/// implementation "Gen::Root.impl". Task times are interpreted as
/// multiples of `quantum_ns`. Sporadic tasks get a device-driven incoming
/// event connection (the device fires at the task's minimum separation).
std::string taskset_to_aadl(const sched::TaskSet& ts,
                            sched::SchedulingPolicy policy,
                            std::int64_t quantum_ns = 1'000'000);

/// Like taskset_to_aadl, but additionally renders the resource model as
/// shared data components: one `data R<j>` per resource (carrying its
/// Concurrency_Control_Protocol), a `requires data access` feature plus an
/// access connection per critical section, and a Critical_Section_Time
/// association per connection. Durations are multiples of `quantum_ns`.
/// This drives the shared-resource agreement experiments (EXPERIMENTS.md
/// E12) through the same front end the AL015/AL016 passes read.
std::string taskset_to_aadl_shared(const sched::TaskSet& ts,
                                   sched::SchedulingPolicy policy,
                                   const sched::ResourceModel& resources,
                                   std::int64_t quantum_ns = 1'000'000);

}  // namespace aadlsched::core
