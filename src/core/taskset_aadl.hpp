// Bridge from the classical task model to AADL source text.
//
// Renders a sched::TaskSet as a complete, bound AADL system (one processor
// per Task::processor value, one periodic/sporadic thread per task). This
// is how the cross-validation experiments (EXPERIMENTS.md E1/E3) drive the
// full pipeline — parser, instantiation, translation, exploration — from
// randomly generated workloads, and compare the verdict against RTA, EDF
// demand analysis and the hyperperiod simulator.
#pragma once

#include <string>

#include "sched/simulator.hpp"
#include "sched/task.hpp"

namespace aadlsched::core {

/// Scheduling protocol names accepted by the AADL front end.
std::string_view protocol_property_name(sched::SchedulingPolicy policy);

/// Render the task set as an AADL package "Gen" with root system
/// implementation "Gen::Root.impl". Task times are interpreted as
/// multiples of `quantum_ns`. Sporadic tasks get a device-driven incoming
/// event connection (the device fires at the task's minimum separation).
std::string taskset_to_aadl(const sched::TaskSet& ts,
                            sched::SchedulingPolicy policy,
                            std::int64_t quantum_ns = 1'000'000);

}  // namespace aadlsched::core
