#include "core/taskset_aadl.hpp"

#include <sstream>

namespace aadlsched::core {

std::string_view protocol_property_name(sched::SchedulingPolicy policy) {
  switch (policy) {
    case sched::SchedulingPolicy::FixedPriority:
      return "POSIX_1003_HIGHEST_PRIORITY_FIRST_PROTOCOL";
    case sched::SchedulingPolicy::Edf:
      return "EDF_PROTOCOL";
    case sched::SchedulingPolicy::Llf:
      return "LLF_PROTOCOL";
  }
  return "RATE_MONOTONIC_PROTOCOL";
}

std::string taskset_to_aadl(const sched::TaskSet& ts,
                            sched::SchedulingPolicy policy,
                            std::int64_t quantum_ns) {
  std::ostringstream os;
  const auto ns = [&](sched::Time quanta) {
    return std::to_string(quanta * quantum_ns) + " ns";
  };

  int max_cpu = 0;
  for (const sched::Task& t : ts.tasks)
    max_cpu = std::max(max_cpu, t.processor);

  os << "package Gen\npublic\n\n";
  os << "  processor GenCpu\n  properties\n    Scheduling_Protocol => "
     << protocol_property_name(policy) << ";\n  end GenCpu;\n\n";

  bool any_sporadic = false;
  for (const sched::Task& t : ts.tasks)
    any_sporadic |= t.kind == sched::DispatchKind::Sporadic ||
                    t.kind == sched::DispatchKind::Aperiodic;
  if (any_sporadic) {
    os << "  device Env\n  features\n    tick : out event port;\n"
          "  end Env;\n\n";
  }

  for (std::size_t i = 0; i < ts.tasks.size(); ++i) {
    const sched::Task& t = ts.tasks[i];
    const std::string name = "T" + std::to_string(i);
    const bool triggered = t.kind == sched::DispatchKind::Sporadic ||
                           t.kind == sched::DispatchKind::Aperiodic;
    os << "  thread " << name << "\n";
    if (triggered)
      os << "  features\n    trig : in event port;\n";
    os << "  end " << name << ";\n\n";
    os << "  thread implementation " << name << ".impl\n  properties\n";
    switch (t.kind) {
      case sched::DispatchKind::Periodic:
        os << "    Dispatch_Protocol => Periodic;\n";
        os << "    Period => " << ns(t.period) << ";\n";
        break;
      case sched::DispatchKind::Sporadic:
        os << "    Dispatch_Protocol => Sporadic;\n";
        os << "    Period => " << ns(t.period) << ";\n";
        break;
      case sched::DispatchKind::Aperiodic:
        os << "    Dispatch_Protocol => Aperiodic;\n";
        break;
      case sched::DispatchKind::Background:
        os << "    Dispatch_Protocol => Background;\n";
        break;
    }
    os << "    Compute_Execution_Time => " << ns(t.effective_bcet())
       << " .. " << ns(t.wcet) << ";\n";
    if (t.kind != sched::DispatchKind::Background)
      os << "    Deadline => " << ns(t.deadline) << ";\n";
    if (policy == sched::SchedulingPolicy::FixedPriority)
      os << "    Priority => " << t.priority << ";\n";
    os << "  end " << name << ".impl;\n\n";
  }

  os << "  system Root\n  end Root;\n\n";
  os << "  system implementation Root.impl\n  subcomponents\n";
  for (int c = 0; c <= max_cpu; ++c)
    os << "    cpu" << c << " : processor GenCpu;\n";
  for (std::size_t i = 0; i < ts.tasks.size(); ++i)
    os << "    t" << i << " : thread T" << i << ".impl;\n";
  // One environment device per triggered task so each queue has a source.
  for (std::size_t i = 0; i < ts.tasks.size(); ++i) {
    const sched::Task& t = ts.tasks[i];
    if (t.kind == sched::DispatchKind::Sporadic ||
        t.kind == sched::DispatchKind::Aperiodic)
      os << "    env" << i << " : device Env;\n";
  }
  bool any_conn = false;
  std::ostringstream conns;
  for (std::size_t i = 0; i < ts.tasks.size(); ++i) {
    const sched::Task& t = ts.tasks[i];
    if (t.kind == sched::DispatchKind::Sporadic ||
        t.kind == sched::DispatchKind::Aperiodic) {
      conns << "    c" << i << " : port env" << i << ".tick -> t" << i
            << ".trig;\n";
      any_conn = true;
    }
  }
  if (any_conn) os << "  connections\n" << conns.str();
  os << "  properties\n";
  for (std::size_t i = 0; i < ts.tasks.size(); ++i)
    os << "    Actual_Processor_Binding => reference (cpu"
       << ts.tasks[i].processor << ") applies to t" << i << ";\n";
  // Sporadic environment devices fire at the task's minimum separation.
  for (std::size_t i = 0; i < ts.tasks.size(); ++i) {
    const sched::Task& t = ts.tasks[i];
    if (t.kind == sched::DispatchKind::Sporadic)
      os << "    Period => " << ns(t.period) << " applies to env" << i
         << ";\n";
  }
  os << "  end Root.impl;\n\nend Gen;\n";
  return os.str();
}

}  // namespace aadlsched::core
