#include "core/taskset_aadl.hpp"

#include <algorithm>
#include <map>
#include <sstream>
#include <utility>

namespace aadlsched::core {

std::string_view protocol_property_name(sched::SchedulingPolicy policy) {
  switch (policy) {
    case sched::SchedulingPolicy::FixedPriority:
      return "POSIX_1003_HIGHEST_PRIORITY_FIRST_PROTOCOL";
    case sched::SchedulingPolicy::Edf:
      return "EDF_PROTOCOL";
    case sched::SchedulingPolicy::Llf:
      return "LLF_PROTOCOL";
  }
  return "RATE_MONOTONIC_PROTOCOL";
}

namespace {

std::string_view lock_protocol_property_name(sched::LockProtocol p) {
  switch (p) {
    case sched::LockProtocol::PriorityCeiling:
      return "PRIORITY_CEILING_PROTOCOL";
    case sched::LockProtocol::PriorityInheritance:
      return "PRIORITY_INHERITANCE_PROTOCOL";
    case sched::LockProtocol::None:
      break;
  }
  return "NONE_SPECIFIED";
}

std::string render(const sched::TaskSet& ts, sched::SchedulingPolicy policy,
                   const TasksetRenderOptions& opts,
                   const sched::ResourceModel* rm) {
  std::ostringstream os;
  const auto ns = [&](sched::Time quanta) {
    return std::to_string(quanta * opts.quantum_ns) + " ns";
  };

  // Provenance header: "-- " per line, before the package. The parser
  // skips comments, so this never changes the analyzed model.
  if (!opts.header_comment.empty()) {
    std::istringstream hdr(opts.header_comment);
    std::string line;
    while (std::getline(hdr, line)) os << "-- " << line << "\n";
    os << "\n";
  }

  // (task, resource) -> longest critical section; one access feature and
  // one connection per pair (the extractor keeps one duration per access).
  std::map<std::pair<std::size_t, std::size_t>, sched::Time> acc;
  if (rm)
    for (const sched::CriticalSection& cs : rm->sections) {
      auto [it, fresh] = acc.try_emplace({cs.task, cs.resource}, cs.duration);
      if (!fresh) it->second = std::max(it->second, cs.duration);
    }

  int max_cpu = 0;
  for (const sched::Task& t : ts.tasks)
    max_cpu = std::max(max_cpu, t.processor);

  os << "package " << opts.package << "\npublic\n\n";
  os << "  processor GenCpu\n  properties\n    Scheduling_Protocol => "
     << protocol_property_name(policy) << ";\n  end GenCpu;\n\n";

  if (rm)
    for (std::size_t r = 0; r < rm->resources.size(); ++r)
      os << "  data R" << r << "\n  properties\n"
         << "    Concurrency_Control_Protocol => "
         << lock_protocol_property_name(rm->resources[r].protocol)
         << ";\n  end R" << r << ";\n\n";

  bool any_sporadic = false;
  for (const sched::Task& t : ts.tasks)
    any_sporadic |= t.kind == sched::DispatchKind::Sporadic ||
                    t.kind == sched::DispatchKind::Aperiodic;
  if (any_sporadic) {
    os << "  device Env\n  features\n    tick : out event port;\n"
          "  end Env;\n\n";
  }

  for (std::size_t i = 0; i < ts.tasks.size(); ++i) {
    const sched::Task& t = ts.tasks[i];
    const std::string name = "T" + std::to_string(i);
    const bool triggered = t.kind == sched::DispatchKind::Sporadic ||
                           t.kind == sched::DispatchKind::Aperiodic;
    std::vector<std::size_t> used;
    if (rm)
      for (const auto& [key, dur] : acc)
        if (key.first == i) used.push_back(key.second);
    os << "  thread " << name << "\n";
    if (triggered || !used.empty()) {
      os << "  features\n";
      if (triggered) os << "    trig : in event port;\n";
      for (const std::size_t r : used)
        os << "    res" << r << " : requires data access R" << r << ";\n";
    }
    os << "  end " << name << ";\n\n";
    os << "  thread implementation " << name << ".impl\n  properties\n";
    switch (t.kind) {
      case sched::DispatchKind::Periodic:
        os << "    Dispatch_Protocol => Periodic;\n";
        os << "    Period => " << ns(t.period) << ";\n";
        break;
      case sched::DispatchKind::Sporadic:
        os << "    Dispatch_Protocol => Sporadic;\n";
        os << "    Period => " << ns(t.period) << ";\n";
        break;
      case sched::DispatchKind::Aperiodic:
        os << "    Dispatch_Protocol => Aperiodic;\n";
        break;
      case sched::DispatchKind::Background:
        os << "    Dispatch_Protocol => Background;\n";
        break;
    }
    os << "    Compute_Execution_Time => " << ns(t.effective_bcet())
       << " .. " << ns(t.wcet) << ";\n";
    if (t.kind != sched::DispatchKind::Background)
      os << "    Deadline => " << ns(t.deadline) << ";\n";
    if (policy == sched::SchedulingPolicy::FixedPriority)
      os << "    Priority => " << t.priority << ";\n";
    os << "  end " << name << ".impl;\n\n";
  }

  os << "  system Root\n  end Root;\n\n";
  os << "  system implementation Root.impl\n  subcomponents\n";
  for (int c = 0; c <= max_cpu; ++c)
    os << "    cpu" << c << " : processor GenCpu;\n";
  for (std::size_t i = 0; i < ts.tasks.size(); ++i)
    os << "    t" << i << " : thread T" << i << ".impl;\n";
  if (rm)
    for (std::size_t r = 0; r < rm->resources.size(); ++r)
      os << "    sh" << r << " : data R" << r << ";\n";
  // One environment device per triggered task so each queue has a source.
  for (std::size_t i = 0; i < ts.tasks.size(); ++i) {
    const sched::Task& t = ts.tasks[i];
    if (t.kind == sched::DispatchKind::Sporadic ||
        t.kind == sched::DispatchKind::Aperiodic)
      os << "    env" << i << " : device Env;\n";
  }
  bool any_conn = false;
  std::ostringstream conns;
  for (std::size_t i = 0; i < ts.tasks.size(); ++i) {
    const sched::Task& t = ts.tasks[i];
    if (t.kind == sched::DispatchKind::Sporadic ||
        t.kind == sched::DispatchKind::Aperiodic) {
      conns << "    c" << i << " : port env" << i << ".tick -> t" << i
            << ".trig;\n";
      any_conn = true;
    }
  }
  for (const auto& [key, dur] : acc) {
    conns << "    a" << key.first << "_" << key.second << " : data access t"
          << key.first << ".res" << key.second << " -> sh" << key.second
          << ";\n";
    any_conn = true;
  }
  if (any_conn) os << "  connections\n" << conns.str();
  os << "  properties\n";
  for (std::size_t i = 0; i < ts.tasks.size(); ++i)
    os << "    Actual_Processor_Binding => reference (cpu"
       << ts.tasks[i].processor << ") applies to t" << i << ";\n";
  // Sporadic environment devices fire at the task's minimum separation.
  for (std::size_t i = 0; i < ts.tasks.size(); ++i) {
    const sched::Task& t = ts.tasks[i];
    if (t.kind == sched::DispatchKind::Sporadic)
      os << "    Period => " << ns(t.period) << " applies to env" << i
         << ";\n";
  }
  for (const auto& [key, dur] : acc)
    os << "    Critical_Section_Time => " << ns(dur) << " applies to a"
       << key.first << "_" << key.second << ";\n";
  os << "  end Root.impl;\n\nend " << opts.package << ";\n";
  return os.str();
}

}  // namespace

std::string taskset_to_aadl(const sched::TaskSet& ts,
                            sched::SchedulingPolicy policy,
                            const TasksetRenderOptions& opts) {
  return render(ts, policy, opts, nullptr);
}

std::string taskset_to_aadl(const sched::TaskSet& ts,
                            sched::SchedulingPolicy policy,
                            std::int64_t quantum_ns) {
  TasksetRenderOptions opts;
  opts.quantum_ns = quantum_ns;
  return render(ts, policy, opts, nullptr);
}

std::string taskset_to_aadl_shared(const sched::TaskSet& ts,
                                   sched::SchedulingPolicy policy,
                                   const sched::ResourceModel& resources,
                                   const TasksetRenderOptions& opts) {
  return render(ts, policy, opts, &resources);
}

std::string taskset_to_aadl_shared(const sched::TaskSet& ts,
                                   sched::SchedulingPolicy policy,
                                   const sched::ResourceModel& resources,
                                   std::int64_t quantum_ns) {
  TasksetRenderOptions opts;
  opts.quantum_ns = quantum_ns;
  return render(ts, policy, opts, &resources);
}

}  // namespace aadlsched::core
