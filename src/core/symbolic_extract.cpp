#include "core/symbolic_extract.hpp"

#include <algorithm>
#include <map>
#include <numeric>

#include "aadl/properties.hpp"

namespace aadlsched::core {

namespace {

/// Per-thread raw data gathered before priority assignment.
struct Extracted {
  const aadl::ComponentInstance* inst = nullptr;
  const aadl::ComponentInstance* cpu = nullptr;
  aadl::ThreadProperties props;
  std::int64_t offset_ns = 0;
};

/// The translator's rank(), replicated over nanosecond keys: stable sort
/// ascending, priorities group.size()+1 downward. Quanta and nanoseconds
/// order identically whenever the quantum divides every key, which is the
/// regime the cross-engine agreement suite pins (DESIGN.md §16).
template <typename Key>
void rank(std::vector<Extracted*>& group, std::vector<int>& prio, Key key) {
  std::vector<std::size_t> order(group.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return key(group[a]) < key(group[b]);
                   });
  int p = static_cast<int>(group.size()) + 1;
  for (std::size_t idx : order) prio[idx] = p--;
}

}  // namespace

std::string SymbolicExtraction::why() const {
  std::string out;
  for (const std::string& r : reasons) {
    if (!out.empty()) out += "; ";
    out += r;
  }
  return out;
}

SymbolicExtraction extract_symbolic(
    const aadl::InstanceModel& instance,
    const translate::TranslateOptions& topts) {
  SymbolicExtraction out;
  auto refuse = [&out](std::string reason) {
    out.reasons.push_back(std::move(reason));
  };

  if (topts.time_model != translate::ExecutionTimeModel::CommittedDemand)
    refuse("late-completion execution-time model");
  if (!topts.latency_specs.empty()) refuse("end-to-end latency observers");
  if (!instance.devices.empty())
    refuse("device components (event sources)");
  for (const aadl::SemanticConnection& sc : instance.connections) {
    if (sc.bus)
      refuse("bus-bound connection " + sc.describe());
  }

  // Thread preconditions. Property extraction reports its own errors; here
  // they just mean "outside the fragment", so diagnostics go to a scratch
  // engine and the reason names the thread.
  util::DiagnosticEngine scratch("<symbolic-extract>");
  std::vector<Extracted> threads;
  for (const aadl::ComponentInstance* t : instance.threads) {
    auto props = aadl::thread_properties(instance, *t, scratch);
    if (!props) {
      refuse("thread '" + t->path + "' has incomplete timing properties");
      continue;
    }
    if (props->dispatch != aadl::DispatchProtocol::Periodic) {
      refuse("thread '" + t->path + "' is " +
             std::string(aadl::to_string(props->dispatch)) +
             " (only periodic threads are in the fragment)");
      continue;
    }
    if (props->deadline_ns <= 0 || props->deadline_ns > props->period_ns) {
      refuse("thread '" + t->path + "' deadline is not constrained");
      continue;
    }
    const auto binding = instance.bindings.find(t);
    if (binding == instance.bindings.end()) {
      refuse("thread '" + t->path + "' is not bound to a processor");
      continue;
    }
    Extracted e;
    e.inst = t;
    e.cpu = binding->second;
    e.props = *props;
    if (const aadl::PropertyValue* pv =
            aadl::find_property(instance, *t, "dispatch_offset")) {
      if (const auto* iu = std::get_if<aadl::IntWithUnit>(&pv->data)) {
        if (auto ns = aadl::time_to_ns(*iu, scratch, {}))
          e.offset_ns = std::clamp<std::int64_t>(*ns, 0, props->period_ns);
      }
    }
    threads.push_back(e);
  }

  // Event-driven dispatch needs queues, which the fragment excludes. With
  // every thread periodic the translator ignores event connections (§2:
  // periodic threads ignore external events), so only the thread check
  // above matters — data-port connections are timing-neutral.

  // Priorities per processor, mirroring the translator's grouping (group
  // members keep model order; the group map itself need not).
  std::map<const aadl::ComponentInstance*, std::vector<Extracted*>> per_cpu;
  for (Extracted& e : threads) per_cpu[e.cpu].push_back(&e);

  std::vector<const aadl::ComponentInstance*> cpus;
  std::map<const Extracted*, int> priorities;
  for (auto& [cpu, group] : per_cpu) {
    cpus.push_back(cpu);
    auto proto = aadl::scheduling_protocol(instance, *cpu, scratch);
    if (!proto) {
      refuse("processor '" + cpu->path + "' has no scheduling protocol");
      continue;
    }
    std::vector<int> prio(group.size(), 0);
    switch (*proto) {
      case aadl::SchedulingProtocol::RateMonotonic:
        rank(group, prio,
             [](const Extracted* e) { return e->props.period_ns; });
        break;
      case aadl::SchedulingProtocol::DeadlineMonotonic:
        rank(group, prio,
             [](const Extracted* e) { return e->props.deadline_ns; });
        break;
      case aadl::SchedulingProtocol::HighestPriorityFirst:
        for (std::size_t i = 0; i < group.size(); ++i) {
          if (!group[i]->props.priority) {
            refuse("thread '" + group[i]->inst->path +
                   "' has no Priority under HPF scheduling");
          } else {
            prio[i] = *group[i]->props.priority + 2;
          }
        }
        for (std::size_t a = 0; a < group.size(); ++a)
          for (std::size_t b = a + 1; b < group.size(); ++b)
            if (prio[a] == prio[b] && prio[a] != 0)
              refuse("threads '" + group[a]->inst->path + "' and '" +
                     group[b]->inst->path +
                     "' share an HPF priority (ambiguous preemption)");
        break;
      case aadl::SchedulingProtocol::Edf:
      case aadl::SchedulingProtocol::Llf:
        refuse("processor '" + cpu->path + "' uses a dynamic-priority " +
               "protocol (" + std::string(aadl::to_string(*proto)) + ")");
        continue;
    }
    for (std::size_t i = 0; i < group.size(); ++i)
      priorities[group[i]] = prio[i];
  }

  if (!out.reasons.empty()) return out;

  out.model.cpu_count = cpus.size();
  for (const Extracted& e : threads) {
    versa::SymbolicTask t;
    t.path = e.inst->path;
    t.period_ns = e.props.period_ns;
    t.deadline_ns = e.props.deadline_ns;
    t.cmin_ns = e.props.compute_min_ns;
    t.cmax_ns = e.props.compute_max_ns;
    t.offset_ns = e.offset_ns;
    t.priority = priorities.at(&e);
    t.cpu = static_cast<std::size_t>(
        std::find(cpus.begin(), cpus.end(), e.cpu) - cpus.begin());
    out.model.tasks.push_back(std::move(t));
  }
  if (auto invalid = versa::validate_model(out.model); !invalid.empty()) {
    out.reasons = std::move(invalid);
    return out;
  }
  out.applicable = true;
  return out;
}

}  // namespace aadlsched::core
