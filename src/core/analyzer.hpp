// Top-level API: the role of the paper's OSATE plugin (§5, Implementation).
//
// The Analyzer performs the plugin's three steps: (1) translate the AADL
// model into ACSR, (2) explore the state space looking for deadlocks, and
// (3) when a deadlock is found, "raise" the failing scenario back to the
// level of the original AADL model: every step of the trace is re-expressed
// in terms of AADL components (dispatches, completions, per-thread per-
// quantum run/preempted status) and rendered as a time line (§5).
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "aadl/instance.hpp"
#include "lint/lint.hpp"
#include "translate/translator.hpp"
#include "versa/explorer.hpp"

namespace aadlsched::core {

/// Which exploration engine analyzes the model (DESIGN.md §16).
/// Enumerative is the paper's unit-quantum BFS; Symbolic is the
/// quantum-independent state-class engine over its restricted fragment;
/// Auto picks Symbolic when the model is inside the fragment and falls
/// back to Enumerative (with the inapplicability reasons in diagnostics)
/// otherwise.
enum class Engine : std::uint8_t { Enumerative, Symbolic, Auto };

std::string_view to_string(Engine e);
std::optional<Engine> engine_from_string(std::string_view s);

struct AnalyzerOptions {
  translate::TranslateOptions translation;
  versa::ExploreOptions exploration;
  /// Exploration engine selection (see Engine above).
  Engine engine = Engine::Enumerative;
  /// Single-model exploration parallelism. workers == 1 (default) keeps the
  /// classic serial explorer; anything else routes through
  /// versa::explore_parallel (0 = hardware concurrency).
  versa::ParallelExploreOptions parallel;

  /// Run the static analysis front door (src/lint) before translating.
  /// Off by default at the library level (programmatic callers see
  /// unchanged behavior); tools/aadlsched enables it unless --no-lint.
  bool run_lint = false;
  /// Lint policy. `lint.translation` is overridden with `translation`
  /// so screening sees the same quantum the explorer would.
  lint::Options lint;
  /// When lint reaches a conclusive static verdict on a translatable
  /// model, skip exploration and report 0 states (DESIGN.md §9).
  bool skip_exploration_on_conclusive = true;

  /// Escape hatch for the reduction layer (DESIGN.md §13): skip symmetry
  /// canonicalization and commutation linearization entirely. The verdict
  /// and the canonical result JSON are identical either way — reductions
  /// only change how many states the engine walks to reach them — so this
  /// exists for debugging and for A/B measurement, not correctness.
  bool no_reduction = false;

  // --- warm re-exploration (DESIGN.md §12) -----------------------------
  /// When non-null and exploration stops on a budget without reaching a
  /// verdict, a serialized versa checkpoint (translated module + BFS
  /// wavefront) is written here so a later run can resume it.
  std::string* checkpoint_out = nullptr;
  /// When non-null and non-empty, try to restore this checkpoint and
  /// resume: lint, translation and the already-explored prefix are all
  /// skipped. Any validation failure falls back to a cold run (the reason
  /// lands in AnalysisResult::diagnostics).
  const std::string* resume_checkpoint = nullptr;
  /// Cache key recorded inside a captured checkpoint (instance fingerprint
  /// + options hash at the service layer; informational elsewhere).
  std::string checkpoint_key;
};

/// Per-thread status in one quantum of a failing scenario.
enum class ThreadQuantum : char {
  Idle = '.',       // not dispatched (awaiting dispatch / done)
  Running = '#',    // executed on its processor this quantum
  Preempted = '*',  // dispatched but did not get the processor
};

struct TimelineRow {
  std::string thread_path;
  std::string cells;  // one ThreadQuantum char per quantum
};

struct FailingScenario {
  /// Human-readable steps ("t=3: dispatch of hci.refspeed", "quantum 4:
  /// ccl.cruise1 runs on cpu_ccl_processor", ...).
  std::vector<std::string> steps;
  /// Per-thread ASCII timeline of the failing prefix.
  std::vector<TimelineRow> timeline;
  /// Threads whose deadline was violated in the deadlocked state.
  std::vector<std::string> missed_threads;
  std::int64_t quanta = 0;  // length of the failing prefix in quanta

  std::string render() const;
};

/// What an analysis run means. Distinguishing Inconclusive from the
/// conclusive verdicts is a correctness matter, not cosmetics: a run
/// truncated by max_states / a deadline / memory pressure / cancellation
/// has *not* proved schedulability, and must never be read as such
/// (DESIGN.md §10). A found deadlock, by contrast, is conclusive even on a
/// truncated run.
enum class Outcome : std::uint8_t {
  Error,           // front end / translation / lint gate failed; no verdict
  Schedulable,     // full state space explored, no deadlock
  NotSchedulable,  // a deadlock (deadline violation) was reached
  Inconclusive,    // exploration stopped early — see stop_reason
};

std::string_view to_string(Outcome o);

struct AnalysisResult {
  bool ok = false;            // analysis ran and produced a result (possibly
                              // partial); false only for Outcome::Error
  bool schedulable = false;   // deadlock-free <=> schedulable (§5)
  bool exhaustive = false;    // full state space explored (or stopped at a
                              // deadlock, which is conclusive)
  Outcome outcome = Outcome::Error;
  /// Why exploration stopped early (None unless outcome == Inconclusive).
  util::StopReason stop_reason = util::StopReason::None;
  /// Trace recording was dropped to relieve memory pressure; the verdict
  /// stands but no counterexample timeline is available.
  bool trace_dropped = false;
  /// Deepest fully-expanded BFS level ("no deadlock within depth d").
  std::uint64_t depth = 0;
  std::uint64_t states = 0;
  std::uint64_t transitions = 0;
  std::optional<FailingScenario> scenario;
  std::vector<translate::TranslatedThread> threads;
  std::string diagnostics;  // rendered front-end/translation messages

  /// Present when AnalyzerOptions::run_lint was set.
  std::optional<lint::Report> lint_report;
  /// Check id(s) that decided the verdict statically (empty when the
  /// verdict came from exploration).
  std::string decided_by;

  // Warm re-exploration observability. These live OUTSIDE the canonical
  // result JSON (core/result_json.cpp) on purpose: a resumed run that
  // reaches a verdict must render byte-identically to a cold run.
  bool resumed = false;                  // run continued a checkpoint
  std::uint64_t resumed_from_depth = 0;  // wavefront depth at resume
  std::uint64_t resumed_from_states = 0;
  bool checkpoint_captured = false;      // checkpoint_out was filled

  // Exploration observability (see versa::ExploreResult).
  double explore_ms = 0;
  std::uint64_t peak_frontier = 0;
  std::uint64_t fans_computed = 0;   // successor fans computed
  std::uint64_t memo_hits = 0;       // fans served from a memo cache
  std::vector<std::uint64_t> worker_states;  // states expanded per worker

  /// Engine that produced (or would have produced) the verdict:
  /// "enumerative" or "symbolic". Part of the canonical result JSON — the
  /// cross-engine agreement suite normalizes it away alongside the other
  /// engine-observability counters.
  std::string engine = "enumerative";

  // Symbolic-engine observability (DESIGN.md §16). Zero on enumerative
  // runs. `states`/`transitions`/`depth`/`peak_frontier` above are reused
  // for the class graph; these add what has no enumerative analogue.
  std::uint64_t zone_subsumptions = 0;  // classes pruned by zone inclusion
  std::uint64_t dbm_dimension = 0;      // clocks + reference row
  /// Symbolic counterexample: the event trail to the missed deadline
  /// ("t=40ms: deadline check", ...). The enumerative engine renders its
  /// counterexample as `scenario` instead — a symbolic run has no quantum
  /// timeline to draw.
  std::vector<std::string> symbolic_witness;

  // Reduction observability (DESIGN.md §13). Summary-only, never part of
  // the canonical result JSON: with the layer active `states` counts orbit
  // representatives, and these report what the layer did on top.
  std::uint64_t symmetry_groups = 0;  // groups the active model carried
  std::uint64_t states_saved = 0;     // raw states folded into an orbit rep
  std::uint64_t commuted_expansions = 0;  // fans linearized by commutation

  std::string summary() const;
};

/// Analyze a parsed-and-instantiated model.
AnalysisResult analyze_instance(const aadl::InstanceModel& instance,
                                const AnalyzerOptions& opts = {});

/// Parse AADL source, instantiate `root_impl`, analyze.
AnalysisResult analyze_source(std::string_view aadl_source,
                              std::string_view root_impl,
                              const AnalyzerOptions& opts = {});

/// Read a file and analyze. Errors land in `diagnostics`.
AnalysisResult analyze_file(const std::string& path,
                            std::string_view root_impl,
                            const AnalyzerOptions& opts = {});

/// Render the translated ACSR module for a model (the paper's "input of the
/// VERSA tool"); empty string + diagnostics on error.
std::string render_acsr(std::string_view aadl_source,
                        std::string_view root_impl, std::string& diagnostics,
                        const translate::TranslateOptions& opts = {});

}  // namespace aadlsched::core
