// The one JSON serialization of an analysis result.
//
// Three surfaces emit result objects — `aadlsched --json` (single run),
// `aadlsched --batch --report` (one object per model), and the aadlschedd
// daemon (the `result` member of every analyze response) — and they must
// stay byte-identical so downstream tooling can diff them and the daemon
// can serve a cached CLI-rendered object verbatim. All three call
// render_result_json()/append_result_fields(); nothing else in the repo
// hand-renders an analysis result.
//
// The object shape is versioned: bump kResultSchemaVersion on any
// field rename/removal/semantic change (additions are backward-compatible
// and do not bump). The schema is documented in DESIGN.md §11 alongside
// the process exit codes — that section is the single source of truth.
#pragma once

#include <string>

#include "core/analyzer.hpp"
#include "util/json.hpp"

namespace aadlsched::core {

inline constexpr int kResultSchemaVersion = 1;

/// Parse an Outcome rendered by to_string(Outcome); nullopt on anything
/// else. Used by the service cache and the --connect client to recover the
/// outcome (and hence the exit code) from a stored result object.
std::optional<Outcome> outcome_from_string(std::string_view s);

/// Append the canonical result fields to an open JSON object. The caller
/// owns begin_object()/end_object() so the fields can be embedded in a
/// larger record (a batch entry adds "files"/"root" first).
void append_result_fields(util::JsonWriter& w, const AnalysisResult& r);

/// The standalone canonical result object:
///   {"schema_version": 1, "outcome": ..., "stop_reason": ..., ...}
std::string render_result_json(const AnalysisResult& r);

}  // namespace aadlsched::core
