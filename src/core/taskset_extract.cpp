#include "core/taskset_extract.hpp"

#include <algorithm>

#include "util/numeric.hpp"

namespace aadlsched::core {

std::optional<ExtractedTaskSet> extract_taskset(
    const aadl::InstanceModel& model, std::int64_t quantum_ns,
    util::DiagnosticEngine& diags) {
  ExtractedTaskSet out;

  const auto to_quanta = [&](std::int64_t ns, bool round_up) {
    return round_up ? util::ceil_div(ns, quantum_ns) : ns / quantum_ns;
  };

  const auto processor_index =
      [&](const aadl::ComponentInstance* cpu) -> std::optional<int> {
    for (std::size_t i = 0; i < out.processor_paths.size(); ++i)
      if (out.processor_paths[i] == cpu->path) return static_cast<int>(i);
    const auto proto = aadl::scheduling_protocol(model, *cpu, diags);
    if (!proto) return std::nullopt;
    out.processor_paths.push_back(cpu->path);
    out.protocols.push_back(*proto);
    return static_cast<int>(out.processor_paths.size() - 1);
  };

  for (const aadl::ComponentInstance* thread : model.threads) {
    const auto binding = model.bindings.find(thread);
    if (binding == model.bindings.end()) {
      diags.error({}, "thread '" + thread->path + "' is not bound");
      return std::nullopt;
    }
    const auto props = aadl::thread_properties(model, *thread, diags);
    if (!props) return std::nullopt;
    const auto cpu = processor_index(binding->second);
    if (!cpu) return std::nullopt;

    sched::Task task;
    task.name = thread->path;
    task.wcet = to_quanta(props->compute_max_ns, true);
    task.bcet = std::min<sched::Time>(
        to_quanta(props->compute_min_ns, false), task.wcet);
    task.period = to_quanta(props->period_ns, false);
    task.deadline = to_quanta(props->deadline_ns, false);
    task.priority = props->priority.value_or(0);
    task.processor = *cpu;
    switch (props->dispatch) {
      case aadl::DispatchProtocol::Periodic:
        task.kind = sched::DispatchKind::Periodic;
        break;
      case aadl::DispatchProtocol::Sporadic:
        task.kind = sched::DispatchKind::Sporadic;
        break;
      case aadl::DispatchProtocol::Aperiodic:
        task.kind = sched::DispatchKind::Aperiodic;
        // No arrival bound: the classical view has to pick one; use the
        // deadline as a (lossy) minimum separation.
        task.period = task.deadline;
        out.lossy = true;
        break;
      case aadl::DispatchProtocol::Background:
        task.kind = sched::DispatchKind::Background;
        break;
    }
    out.tasks.tasks.push_back(std::move(task));
  }

  // Event connections / queues / bus bindings have no classical
  // counterpart: flag the extraction as lossy.
  for (const aadl::SemanticConnection& sc : model.connections) {
    if (sc.bus) out.lossy = true;
    if (sc.kind == aadl::FeatureKind::EventPort ||
        sc.kind == aadl::FeatureKind::EventDataPort)
      out.lossy = true;
  }

  // Apply the per-processor protocol's priority assignment so RTA and the
  // simulator see the priorities the translation would use.
  for (std::size_t cpu = 0; cpu < out.processor_paths.size(); ++cpu) {
    std::vector<std::size_t> members;
    for (std::size_t i = 0; i < out.tasks.tasks.size(); ++i)
      if (out.tasks.tasks[i].processor == static_cast<int>(cpu))
        members.push_back(i);
    const auto rank_by = [&](auto key) {
      std::stable_sort(members.begin(), members.end(),
                       [&](std::size_t a, std::size_t b) {
                         return key(out.tasks.tasks[a]) <
                                key(out.tasks.tasks[b]);
                       });
      int prio = static_cast<int>(members.size());
      for (std::size_t idx : members) out.tasks.tasks[idx].priority = prio--;
    };
    switch (out.protocols[cpu]) {
      case aadl::SchedulingProtocol::RateMonotonic:
        rank_by([](const sched::Task& t) {
          return t.period > 0 ? t.period : std::int64_t{1} << 40;
        });
        break;
      case aadl::SchedulingProtocol::DeadlineMonotonic:
        rank_by([](const sched::Task& t) {
          return t.deadline > 0 ? t.deadline : std::int64_t{1} << 40;
        });
        break;
      default:
        break;  // HPF keeps declared priorities; EDF/LLF ignore them
    }
  }
  return out;
}

}  // namespace aadlsched::core
