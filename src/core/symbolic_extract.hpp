// AADL front door of the symbolic engine: decide whether an instance model
// falls inside the state-class fragment (DESIGN.md §16) and, when it does,
// extract the exact-nanosecond task network versa::explore_symbolic
// analyzes. The versa layer stays AADL-free — this is the only bridge.
//
// The fragment is checked structurally, never guessed: every violated
// precondition produces a human-readable reason, so `--engine auto` can
// report *why* it fell back to enumeration. The preconditions mirror what
// the enumerator's translation does for the same constructs, so on models
// inside the fragment the two engines analyze the same semantics:
//
//   * every thread periodic, bound, with a constrained deadline (D <= T);
//   * static-priority scheduling (RM / DM / HPF) with distinct effective
//     priorities per processor — the translator's rank() is replicated
//     here over raw nanosecond keys (quanta and nanoseconds order
//     identically whenever the quantum divides the parameters);
//   * committed interval demands (the LateCompletion time model is out);
//   * no buses on connections, no event-driven threads, no devices, no
//     latency observers — connection kinds the translator provably
//     ignores for timing (data ports between periodic threads) stay in.
#pragma once

#include <string>
#include <vector>

#include "aadl/instance.hpp"
#include "translate/translator.hpp"
#include "versa/symbolic.hpp"

namespace aadlsched::core {

struct SymbolicExtraction {
  bool applicable = false;
  /// Why the model is outside the fragment (empty when applicable).
  std::vector<std::string> reasons;
  /// The extracted task network; meaningful only when applicable.
  versa::SymbolicModel model;

  /// The reasons joined into one diagnostic line.
  std::string why() const;
};

/// Check applicability and extract. `topts` contributes the translation
/// options that are part of the fragment (execution-time model, latency
/// observers); the quantum is irrelevant — extraction is quantum-free.
SymbolicExtraction extract_symbolic(const aadl::InstanceModel& instance,
                                    const translate::TranslateOptions& topts);

}  // namespace aadlsched::core
