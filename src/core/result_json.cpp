#include "core/result_json.hpp"

namespace aadlsched::core {

std::optional<Outcome> outcome_from_string(std::string_view s) {
  for (const Outcome o : {Outcome::Error, Outcome::Schedulable,
                          Outcome::NotSchedulable, Outcome::Inconclusive}) {
    if (s == to_string(o)) return o;
  }
  return std::nullopt;
}

namespace {

/// The machine-checkable witnesses backing a static verdict, narrowed to
/// the passes named in decided_by (other certificates stay available via
/// --lint-format json). Shape mirrors lint::Report::render_json.
void append_static_certificate(util::JsonWriter& w, const AnalysisResult& r) {
  const lint::Report& report = *r.lint_report;
  w.key("static_certificate").begin_object();
  w.key("decided_by").value(r.decided_by);
  w.key("verdict").value(lint::to_string(report.verdict));
  w.key("lint_pass_version").value(lint::kLintPassVersion);
  w.key("certificates").begin_array();
  for (const lint::StaticCertificate& c : report.certificates) {
    if (r.decided_by.find(c.check_id) == std::string::npos) continue;
    w.begin_object();
    w.key("check").value(c.check_id);
    w.key("kind").value(c.kind);
    w.key("processor").value(c.processor);
    w.key("schedulable").value(c.schedulable);
    w.key("window").value(c.window_q);
    w.key("demand").value(c.demand_q);
    w.key("tasks").begin_array();
    for (const lint::CertTask& t : c.tasks) {
      w.begin_object();
      w.key("path").value(t.path);
      w.key("wcet").value(t.wcet_q);
      w.key("period").value(t.period_q);
      w.key("deadline").value(t.deadline_q);
      w.key("priority").value(t.priority);
      w.key("blocking").value(t.blocking_q);
      w.key("response").value(t.response_q);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

}  // namespace

void append_result_fields(util::JsonWriter& w, const AnalysisResult& r) {
  w.key("schema_version").value(kResultSchemaVersion);
  w.key("outcome").value(to_string(r.outcome));
  w.key("stop_reason").value(util::to_string(r.stop_reason));
  w.key("engine").value(r.engine);
  w.key("schedulable").value(r.ok && r.schedulable);
  w.key("exhaustive").value(r.exhaustive);
  w.key("states").value(r.states);
  w.key("transitions").value(r.transitions);
  w.key("depth").value(r.depth);
  w.key("trace_dropped").value(r.trace_dropped);
  w.key("explore_ms").value(r.explore_ms);
  w.key("peak_frontier").value(r.peak_frontier);
  if (!r.decided_by.empty()) w.key("decided_by").value(r.decided_by);
  if (!r.decided_by.empty() && r.lint_report &&
      r.lint_report->verdict != lint::StaticVerdict::None)
    append_static_certificate(w, r);
  if (r.outcome == Outcome::Error) w.key("error").value(r.diagnostics);
}

std::string render_result_json(const AnalysisResult& r) {
  util::JsonWriter w;
  w.begin_object();
  append_result_fields(w, r);
  w.end_object();
  return std::move(w).str();
}

}  // namespace aadlsched::core
