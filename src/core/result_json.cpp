#include "core/result_json.hpp"

namespace aadlsched::core {

std::optional<Outcome> outcome_from_string(std::string_view s) {
  for (const Outcome o : {Outcome::Error, Outcome::Schedulable,
                          Outcome::NotSchedulable, Outcome::Inconclusive}) {
    if (s == to_string(o)) return o;
  }
  return std::nullopt;
}

void append_result_fields(util::JsonWriter& w, const AnalysisResult& r) {
  w.key("schema_version").value(kResultSchemaVersion);
  w.key("outcome").value(to_string(r.outcome));
  w.key("stop_reason").value(util::to_string(r.stop_reason));
  w.key("schedulable").value(r.ok && r.schedulable);
  w.key("exhaustive").value(r.exhaustive);
  w.key("states").value(r.states);
  w.key("transitions").value(r.transitions);
  w.key("depth").value(r.depth);
  w.key("trace_dropped").value(r.trace_dropped);
  w.key("explore_ms").value(r.explore_ms);
  w.key("peak_frontier").value(r.peak_frontier);
  if (!r.decided_by.empty()) w.key("decided_by").value(r.decided_by);
  if (r.outcome == Outcome::Error) w.key("error").value(r.diagnostics);
}

std::string render_result_json(const AnalysisResult& r) {
  util::JsonWriter w;
  w.begin_object();
  append_result_fields(w, r);
  w.end_object();
  return std::move(w).str();
}

}  // namespace aadlsched::core
