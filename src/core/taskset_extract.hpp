// Inverse bridge: extract a classical task set from a bound AADL instance
// model. This is what lets the analytical baselines (RTA, demand analysis,
// the simulator) run directly on an AADL model next to the exhaustive
// exploration — the comparison surface of EXPERIMENTS.md E8 and the CLI's
// --classical mode.
//
// The extraction is faithful for what the classical task model can
// express: independent threads with WCETs, periods and deadlines. Event
// connections, queues and bus contention have no classical counterpart;
// extract() reports whether such features were present so callers can
// label the classical verdict as approximate.
#pragma once

#include <optional>
#include <string>

#include "aadl/instance.hpp"
#include "aadl/properties.hpp"
#include "sched/task.hpp"

namespace aadlsched::core {

struct ExtractedTaskSet {
  sched::TaskSet tasks;
  /// Processor instance path per Task::processor index.
  std::vector<std::string> processor_paths;
  /// Scheduling protocol per processor index.
  std::vector<aadl::SchedulingProtocol> protocols;
  /// True when the model uses features the classical task model cannot
  /// express (event connections/queues, bus bindings): the classical
  /// verdict is then only an approximation of the model's behaviour.
  bool lossy = false;
};

/// Extract the periodic/sporadic task view of a bound instance model.
/// Times are converted to quanta of `quantum_ns` (WCET rounds up, periods
/// and deadlines round down — same convention as the translator). Returns
/// nullopt when mandatory properties are missing (errors in `diags`).
std::optional<ExtractedTaskSet> extract_taskset(
    const aadl::InstanceModel& model, std::int64_t quantum_ns,
    util::DiagnosticEngine& diags);

}  // namespace aadlsched::core
