// Service observability: monotonic counters plus a bounded latency sample
// ring, snapshotted into the `stats` response. One mutex guards the whole
// structure — every update is a handful of integer stores, so contention is
// irrelevant next to an analysis run, and a single lock makes the snapshot
// internally consistent (hits + misses == analyze lookups, always).
//
// Counters are cumulative since service start and never decrease (the
// concurrent-use test asserts monotonicity across snapshots); gauges
// (in_flight, queue_depth) float freely.
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "core/analyzer.hpp"
#include "server/protocol.hpp"

namespace aadlsched::server {

struct StatsSnapshot {
  // Counters.
  std::uint64_t requests = 0;          // all ops
  std::uint64_t analyze_requests = 0;  // op == analyze
  std::uint64_t analyses_run = 0;      // actually explored (miss, post-coalesce)
  std::uint64_t cache_hits_memory = 0;
  std::uint64_t cache_hits_disk = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_stores = 0;
  std::uint64_t cache_evictions = 0;
  /// Corrupt disk-cache files quarantined on load (cache self-healing).
  std::uint64_t cache_corrupt_evictions = 0;
  /// Result-store disk writes that never landed (tmp write/rename failed).
  std::uint64_t cache_disk_store_failures = 0;
  // Warm re-exploration (checkpoint tier, DESIGN.md §12).
  std::uint64_t checkpoint_hits = 0;    // resume requests served a checkpoint
  std::uint64_t checkpoint_misses = 0;  // resume requested, none available
  std::uint64_t checkpoint_stores = 0;  // budget-bound runs checkpointed
  std::uint64_t checkpoint_resume_failures = 0;  // restore rejected; ran cold
  std::uint64_t checkpoint_evictions = 0;
  std::uint64_t checkpoint_corrupt_evictions = 0;  // digest-failed .ckpt files
  std::uint64_t checkpoint_disk_store_failures = 0;
  // Shared-directory maintenance (DESIGN.md §15): size-budgeted GC plus
  // tmp hygiene, accumulated by the DiskJanitor across sweeps.
  std::uint64_t gc_runs = 0;
  std::uint64_t gc_removed_files = 0;
  std::uint64_t gc_removed_bytes = 0;
  std::uint64_t gc_remove_failures = 0;
  std::uint64_t gc_tmp_swept = 0;
  // Symbolic engine (DESIGN.md §16): runs that used the state-class engine,
  // cumulative zones/subsumptions across them, and the largest DBM seen.
  std::uint64_t symbolic_runs = 0;
  std::uint64_t symbolic_zones = 0;
  std::uint64_t symbolic_subsumptions = 0;
  std::uint64_t symbolic_max_dbm_dimension = 0;
  std::uint64_t coalesced = 0;  // requests that piggybacked an in-flight run
  std::uint64_t protocol_errors = 0;
  std::uint64_t outcomes[4] = {0, 0, 0, 0};  // indexed by core::Outcome
  // Gauges.
  std::uint64_t in_flight = 0;    // analyses executing right now
  std::uint64_t queue_depth = 0;  // admitted but not yet executing
  std::uint64_t cache_entries = 0;
  std::uint64_t checkpoint_entries = 0;
  /// Live daemons registered on this cache directory (self included; 0
  /// when the disk tier is off).
  std::uint64_t shared_instances = 0;
  // Latency of served analyze requests (submit -> response), milliseconds.
  // `latency_samples` counts every sample ever recorded; the percentiles
  // are computed over only the most recent `latency_window` samples (the
  // bounded ring, Metrics::kLatencyRing). A long soak that trusts p50/p95
  // as all-time aggregates would misread them — the stats JSON carries the
  // window explicitly so consumers can tell recent from cumulative.
  std::uint64_t latency_samples = 0;
  std::uint64_t latency_window = 0;  // samples behind p50/p95 (<= ring size)
  double p50_ms = 0;
  double p95_ms = 0;
  double max_ms = 0;
  double uptime_ms = 0;

  /// Render as the `stats` JSON object (the last member of the stats
  /// response line).
  std::string render_json() const;
};

class Metrics {
 public:
  Metrics() : start_(std::chrono::steady_clock::now()) {}

  void record_request(Op op);
  void record_analysis_run();
  void record_protocol_error();
  void record_outcome(core::Outcome o);
  void record_hit(bool disk_tier);
  void record_miss();
  void record_store();
  void record_checkpoint_hit();
  void record_checkpoint_miss();
  void record_checkpoint_store();
  void record_checkpoint_resume_failure();
  void record_symbolic_run(std::uint64_t zones, std::uint64_t subsumptions,
                           std::uint64_t dbm_dimension);
  void record_coalesced();
  void record_latency_ms(double ms);
  void in_flight_delta(int d);
  void queue_depth_delta(int d);

  /// Numbers the caches own, sampled at snapshot time.
  struct CacheGauges {
    std::uint64_t cache_evictions = 0;
    std::uint64_t cache_entries = 0;
    std::uint64_t cache_corrupt_evictions = 0;
    std::uint64_t cache_disk_store_failures = 0;
    std::uint64_t checkpoint_evictions = 0;
    std::uint64_t checkpoint_entries = 0;
    std::uint64_t checkpoint_corrupt_evictions = 0;
    std::uint64_t checkpoint_disk_store_failures = 0;
    std::uint64_t gc_runs = 0;
    std::uint64_t gc_removed_files = 0;
    std::uint64_t gc_removed_bytes = 0;
    std::uint64_t gc_remove_failures = 0;
    std::uint64_t gc_tmp_swept = 0;
    std::uint64_t shared_instances = 0;
  };
  StatsSnapshot snapshot(const CacheGauges& gauges) const;

 private:
  static constexpr std::size_t kLatencyRing = 4096;

  mutable std::mutex mu_;
  StatsSnapshot s_;  // counters/gauges only; latency fields filled at snapshot
  std::vector<double> latency_ring_;
  std::size_t latency_next_ = 0;
  std::uint64_t latency_total_ = 0;
  double latency_max_ = 0;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace aadlsched::server
