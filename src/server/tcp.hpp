// The socket skin over server::Service: a POSIX TCP listener speaking the
// newline-delimited JSON protocol, plus the matching blocking Client used
// by `aadlsched --connect`.
//
// Deliberately boring networking: one accept thread, one thread per
// connection, blocking reads. Concurrency and scheduling live in the
// Service (its admission queue and worker pool); the TCP layer only has to
// keep slow readers from blocking each other, which per-connection threads
// do at the traffic levels an analysis daemon sees (requests carry whole
// AADL models — this is not a 100k-connections workload).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "server/service.hpp"

namespace aadlsched::server {

struct TcpConfig {
  std::string host = "127.0.0.1";  // bind address (loopback by default)
  std::uint16_t port = 0;          // 0 = ephemeral; see TcpServer::port()
};

class TcpServer {
 public:
  TcpServer(Service& service, TcpConfig cfg);
  ~TcpServer();

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  /// Bind + listen + spawn the accept thread. False (with a reason) on
  /// bind failure — the daemon reports and exits 2.
  bool start(std::string& error);

  /// Actual bound port (resolves port 0 after start()).
  std::uint16_t port() const { return port_; }

  /// Block until a client's shutdown request (or stop()) ends the serve
  /// loop. The daemon's main thread parks here.
  void wait_shutdown();

  /// Close the listener and every live connection, join all threads.
  /// Idempotent; also triggered by an Op::Shutdown request.
  void stop();

 private:
  void accept_loop();
  void connection_loop(int fd);

  Service& service_;
  TcpConfig cfg_;
  std::uint16_t port_ = 0;
  int listen_fd_ = -1;
  std::atomic<bool> stopping_{false};

  std::mutex mu_;
  std::condition_variable cv_shutdown_;
  bool shutdown_requested_ = false;
  std::vector<int> conn_fds_;
  std::vector<std::thread> conn_threads_;
  std::thread accept_thread_;
};

/// Blocking line-oriented client for the --connect mode and the smoke
/// tests. Optional timeouts keep a wedged daemon (or a black-holed route)
/// from hanging the CLI forever: connect uses a non-blocking connect +
/// poll, I/O uses SO_RCVTIMEO/SO_SNDTIMEO. Zero (the default) means the
/// OS-default blocking behaviour, so existing callers are unchanged.
class Client {
 public:
  struct Timeouts {
    double connect_ms = 0;  // 0 = blocking connect (OS default)
    double io_ms = 0;       // 0 = no send/recv deadline
  };

  ~Client();

  void set_timeouts(Timeouts t) { timeouts_ = t; }

  bool connect(const std::string& host, std::uint16_t port,
               std::string& error);
  /// Send one request line (newline appended) and read one response line.
  bool roundtrip(const std::string& request_line, std::string& response_line,
                 std::string& error);
  void close();

 private:
  int fd_ = -1;
  std::string rx_buffer_;
  Timeouts timeouts_;
};

/// Parse "HOST:PORT" (host may be empty → 127.0.0.1).
bool parse_endpoint(std::string_view spec, std::string& host,
                    std::uint16_t& port);

}  // namespace aadlsched::server
