// Wire protocol of the analysis service: newline-delimited JSON, one
// request object per line in, one response object per line out. The same
// structs drive the in-process server::Service API, so tests and the
// --connect client share every code path except the socket.
//
// Request (analyze):
//   {"v": 1, "op": "analyze", "id": "r1", "model": "<aadl text>",
//    "root": "Root.impl",
//    "options": {"quantum_ms": 1, "max_states": 5000000, "deadline_ms": 0,
//                "memory_budget_mb": 0, "workers": 1, "lint": true,
//                "late_completion": false, "no_reduction": false,
//                "engine": "enumerative"},
//    "no_cache": false, "resume": false, "no_checkpoint": false}
// Request (stats | ping | shutdown):
//   {"v": 1, "op": "stats"}
//
// Response (analyze):
//   {"v": 1, "op": "analyze", "id": "r1", "ok": true,
//    "fingerprint": "<32 hex>", "cached": true, "cache_tier": "memory",
//    "served_ms": 0.31, "resumed": true, "resumed_depth": 7,
//    "checkpoint_captured": true, "result": {<render_result_json object>}}
//   ("resumed"/"resumed_depth"/"checkpoint_captured" appear only when set —
//   they live outside "result" so cold and resumed runs that reach the same
//   verdict render byte-identical result objects.)
// Response (stats):
//   {"v": 1, "op": "stats", "ok": true, "stats": {...}}
// Response (protocol error):
//   {"v": 1, "op": "error", "ok": false, "error": "..."}
//
// The "result"/"stats" member is always the *last* field, so the client
// can recover the embedded object byte-for-byte (extract_trailing_object)
// without a parse/re-render round trip that would break the
// byte-identical-result guarantee.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "core/analyzer.hpp"

namespace aadlsched::server {

inline constexpr int kProtocolVersion = 1;

enum class Op : std::uint8_t { Analyze, Stats, Ping, Shutdown };

std::string_view to_string(Op op);
std::optional<Op> op_from_string(std::string_view s);

/// Per-request analysis knobs; mirrors the aadlsched CLI flags. Budgets are
/// requests, not entitlements: the service clamps them to its configured
/// caps before running.
struct RequestOptions {
  std::int64_t quantum_ns = 1'000'000;  // CLI default (1 ms)
  std::uint64_t max_states = 5'000'000;
  double deadline_ms = 0;
  std::uint64_t memory_budget_mb = 0;
  std::size_t workers = 1;
  bool run_lint = true;
  bool late_completion = false;
  /// Disable the state-space reduction layer (DESIGN.md §13). Part of the
  /// cache key even though the canonical result JSON is identical either
  /// way: cached entries record budget-invariant *conclusive* outcomes, and
  /// mixing reduction settings under one key would conflate their
  /// checkpoint blobs (whose visited sets are representation-dependent).
  bool no_reduction = false;
  /// Exploration engine (DESIGN.md §16). Part of the cache key: the two
  /// engines agree on verdicts inside the symbolic fragment, but their
  /// result objects differ in engine-observability fields.
  core::Engine engine = core::Engine::Enumerative;
};

struct Request {
  Op op = Op::Ping;
  std::string id;     // echoed back verbatim; "" is fine
  std::string model;  // AADL source text (analyze)
  std::string root;   // root implementation, e.g. "Root.impl" (analyze)
  RequestOptions options;
  bool no_cache = false;  // bypass cache lookup AND store (forced re-run)
  // Warm re-exploration (DESIGN.md §12):
  bool resume = false;         // resume from a stored checkpoint if one exists
  bool no_checkpoint = false;  // never capture a checkpoint for this run
};

struct Response {
  Op op = Op::Ping;
  bool ok = false;
  std::string id;
  std::string error;  // when !ok (protocol-level failure)
  // analyze:
  core::Outcome outcome = core::Outcome::Error;
  std::string fingerprint;  // 32 hex chars
  bool cached = false;
  std::string cache_tier;  // "memory" | "disk" | "none"
  double served_ms = 0;
  // Warm re-exploration observability (kept OUT of result_json so cold and
  // resumed runs stay byte-identical there):
  bool resumed = false;              // run continued a stored checkpoint
  std::uint64_t resumed_depth = 0;   // wavefront depth the run resumed from
  bool checkpoint_captured = false;  // a checkpoint was stored for this key
  std::string result_json;  // canonical result object (render_result_json)
  // stats:
  std::string stats_json;
};

/// Parse one request line. On failure returns nullopt with a reason in
/// `error` — the server answers with an ok=false response, it never drops
/// the connection over a bad request.
std::optional<Request> parse_request(std::string_view line,
                                     std::string& error);
/// Render a request line (client side). No trailing newline.
std::string render_request(const Request& req);

/// Render a response line. No trailing newline.
std::string render_response(const Response& resp);
/// Parse a response line (client side). The embedded result/stats object is
/// extracted verbatim into result_json/stats_json.
std::optional<Response> parse_response(std::string_view line,
                                       std::string& error);

/// The raw bytes of the object value of `key` when it is the final member
/// of a one-line JSON object: ... "key": {<bytes>}}\n. Empty when absent.
std::string_view extract_trailing_object(std::string_view line,
                                         std::string_view key);

}  // namespace aadlsched::server
