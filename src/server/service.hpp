// The in-process analysis service: the daemon minus the socket.
//
// A Service owns a worker pool, an admission queue, a two-tier result
// cache, a checkpoint store for warm re-exploration (DESIGN.md §12) and a
// metrics block. submit() classifies the request:
//
//   * stats / ping / shutdown are answered inline (they must stay
//     responsive while every worker grinds on a storm model);
//   * analyze is parsed and fingerprinted on the submitting thread (cheap
//     next to exploration), then
//       - served from cache immediately on a hit (hits never queue behind
//         a running exploration — the whole point of the cache),
//       - coalesced onto an identical in-flight run on a pending-key match
//         (a thundering herd of identical edits runs the exploration once),
//       - otherwise enqueued for a worker.
//
// Admission is fair FIFO with a small-model fast lane: requests whose
// model text is under ServiceConfig::small_model_bytes go to the small
// lane, and the scheduler serves up to small_burst small requests per
// large one when both lanes are non-empty (weighted round-robin — an
// interactive editor ping-ponging a 3-thread model is not stuck behind a
// batch of avionics suites, and the batch still makes progress; within a
// lane, strict FIFO). Per-request budgets are clamped to the service caps
// before running, so one client cannot buy an unbounded exploration.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "server/cache.hpp"
#include "server/diskstore.hpp"
#include "server/metrics.hpp"
#include "server/protocol.hpp"

namespace aadlsched::server {

struct ServiceConfig {
  /// Analysis worker threads. 0 = hardware concurrency (min 1).
  std::size_t workers = 1;
  CacheConfig cache;
  /// Server-side caps clamped onto every request's budget; 0 = uncapped.
  double max_deadline_ms = 0;
  std::uint64_t max_states_cap = 0;
  std::uint64_t memory_budget_mb_cap = 0;
  std::size_t max_request_workers = 8;  // per-request exploration threads
  /// Daemon-level override: run every request without the reduction layer
  /// (aadlschedd --no-reduction), regardless of per-request options.
  bool force_no_reduction = false;
  /// Daemon-level engine override (aadlschedd --engine): rewrites every
  /// request's engine before cache-key computation, so forced and requested
  /// runs of the same engine share cache entries.
  std::optional<core::Engine> force_engine;
  /// Admission policy (see file comment).
  std::size_t small_model_bytes = 16 * 1024;
  std::size_t small_burst = 4;
  // --- shared-directory maintenance (DESIGN.md §15) ---------------------
  /// Byte budget for disk artifacts (`.json` + `.ckpt`) in the cache dir;
  /// the maintenance sweep evicts oldest-atime-first when over it.
  /// 0 = no size budget.
  std::uint64_t cache_disk_cap_bytes = 0;
  /// Period of the background maintenance sweep (tmp hygiene, instance
  /// registry reaping, size-budgeted GC). 0 disables the thread; a startup
  /// sweep still runs either way when the disk tier is on.
  double maintenance_interval_ms = 30'000;
};

/// Admission order, factored out of Service so the policy is unit-testable
/// without threads: two FIFO lanes plus a burst counter.
class AdmissionQueue {
 public:
  explicit AdmissionQueue(std::size_t small_burst) : burst_(small_burst) {}

  void push(std::uint64_t ticket, bool small);
  /// Next ticket to admit; nullopt when empty.
  std::optional<std::uint64_t> pop();
  std::size_t size() const { return small_.size() + large_.size(); }

 private:
  std::deque<std::uint64_t> small_;
  std::deque<std::uint64_t> large_;
  std::size_t burst_;
  std::size_t small_streak_ = 0;
};

class Service {
 public:
  explicit Service(ServiceConfig cfg = {});
  ~Service();

  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  /// Non-blocking for stats/ping/shutdown and for analyze cache hits; an
  /// analyze miss resolves when a worker finishes the exploration.
  std::future<Response> submit(Request req);

  /// submit() + wait. The convenience path for tests and the TCP layer.
  Response handle(Request req);

  /// Parse a request line, execute it, render the response line. The whole
  /// server loop body, shared by the daemon and in-process tests.
  std::string handle_line(std::string_view line);

  /// Rendered stats object (also reachable via an Op::Stats request).
  std::string stats_json();

  /// Stop accepting new work; queued and in-flight analyses complete and
  /// their futures resolve. Idempotent.
  void shutdown();
  bool shutting_down() const;

  const ServiceConfig& config() const { return cfg_; }

  /// The shared-directory maintenance agent; null when the disk tier is
  /// off. Exposed so the daemon can log cohabitants at startup and tests
  /// can force a sweep.
  DiskJanitor* janitor() { return janitor_.get(); }

 private:
  struct Job;

  core::AnalyzerOptions analyzer_options(const RequestOptions& ro) const;
  void worker_loop();
  void maintenance_loop();
  void run_job(const std::shared_ptr<Job>& job);

  ServiceConfig cfg_;
  ResultCache cache_;
  CheckpointStore checkpoints_;
  std::unique_ptr<DiskJanitor> janitor_;  // disk tier only
  Metrics metrics_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::uint64_t next_ticket_ = 0;
  AdmissionQueue admission_;
  std::unordered_map<std::uint64_t, std::shared_ptr<Job>> queued_;
  /// cache-key -> in-flight job accepting coalesced waiters.
  std::unordered_map<std::string, std::shared_ptr<Job>> pending_;
  std::vector<std::thread> workers_;
  // The maintenance thread has its own mutex/cv: it must never consume a
  // cv_ notify meant to hand a worker a queued job.
  std::mutex maint_mu_;
  std::condition_variable maint_cv_;
  bool maint_stop_ = false;
  std::thread maintenance_;
};

}  // namespace aadlsched::server
