#include "server/service.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "aadl/fingerprint.hpp"
#include "aadl/parser.hpp"
#include "core/result_json.hpp"
#include "lint/lint.hpp"
#include "util/hash.hpp"

namespace aadlsched::server {

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

/// Hash of the semantic analysis options — the part of the cache key that
/// is not the model. Budgets are deliberately absent: only budget-invariant
/// (conclusive) outcomes are cached (see cache.hpp).
std::string options_key(const RequestOptions& ro) {
  // v2: no_reduction joined the key. Reduction settings do not change the
  // result JSON, but checkpoint blobs stored under the same key carry
  // representation-dependent visited sets, so the settings must partition
  // the key space.
  // v3: the lint pass catalogue version joined the key. A new or changed
  // pass can turn an explored model into a statically decided one (and
  // attach a static_certificate), so cached results from an older
  // catalogue must not be served.
  // v4: the exploration engine joined the key. Engines agree on verdicts
  // inside the symbolic fragment, but result objects differ in their
  // engine-observability fields ("engine", states-as-zones), so one key
  // must never serve both.
  std::uint64_t h = util::fnv1a("options-v4");
  h = util::hash_combine(h, static_cast<std::uint64_t>(ro.quantum_ns));
  h = util::hash_combine(h, ro.late_completion ? 1u : 0u);
  h = util::hash_combine(h, ro.run_lint ? 1u : 0u);
  h = util::hash_combine(h, ro.no_reduction ? 1u : 0u);
  h = util::hash_combine(h, static_cast<std::uint64_t>(ro.engine));
  h = util::hash_combine(h, static_cast<std::uint64_t>(lint::kLintPassVersion));
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(h));
  return buf;
}

/// Everything that must stay alive for the instance to be analyzable: the
/// declarative model (the instance tree points into its types/impls) plus
/// the instance itself.
struct Parsed {
  aadl::Model model;
  std::unique_ptr<aadl::InstanceModel> instance;
  std::string front_end_output;  // rendered diagnostics (warnings on success)
};

std::unique_ptr<Parsed> parse_request_model(const Request& req,
                                            std::string& error) {
  auto parsed = std::make_unique<Parsed>();
  util::DiagnosticEngine diags(req.id.empty() ? "<request>" : req.id);
  if (!aadl::parse_aadl(parsed->model, req.model, diags)) {
    error = diags.render_all();
    return nullptr;
  }
  parsed->instance = aadl::instantiate(parsed->model, req.root, diags);
  if (!parsed->instance || diags.has_errors()) {
    error = diags.render_all();
    return nullptr;
  }
  parsed->front_end_output = diags.render_all();
  return parsed;
}

}  // namespace

// ---------------------------------------------------------------------------
// AdmissionQueue
// ---------------------------------------------------------------------------

void AdmissionQueue::push(std::uint64_t ticket, bool small) {
  (small ? small_ : large_).push_back(ticket);
}

std::optional<std::uint64_t> AdmissionQueue::pop() {
  if (small_.empty() && large_.empty()) return std::nullopt;
  bool take_small;
  if (small_.empty())
    take_small = false;
  else if (large_.empty())
    take_small = true;
  else
    take_small = small_streak_ < burst_;
  if (take_small) {
    // The streak only counts small admissions that made a large request
    // wait; a purely small workload never "uses up" its burst.
    if (!large_.empty()) ++small_streak_;
    const std::uint64_t t = small_.front();
    small_.pop_front();
    return t;
  }
  small_streak_ = 0;
  const std::uint64_t t = large_.front();
  large_.pop_front();
  return t;
}

// ---------------------------------------------------------------------------
// Service
// ---------------------------------------------------------------------------

struct Service::Job {
  struct Waiter {
    std::promise<Response> promise;
    std::string id;
    Clock::time_point t0;
  };

  Request req;  // the first submitter's request (runs with its options)
  std::string key;
  std::string fingerprint;
  std::unique_ptr<Parsed> parsed;
  std::vector<Waiter> waiters;  // guarded by Service::mu_
};

Service::Service(ServiceConfig cfg)
    : cfg_(cfg),
      cache_(cfg.cache),
      // checkpoints=false zeroes both tiers: stores drop, lookups miss.
      checkpoints_(cfg.cache.checkpoints ? cfg.cache.checkpoint_memory_capacity
                                         : 0,
                   cfg.cache.checkpoints ? cfg.cache.checkpoint_disk_cap : 0,
                   cfg.cache.disk_dir),
      admission_(std::max<std::size_t>(1, cfg.small_burst)) {
  if (!cfg_.cache.disk_dir.empty()) {
    DiskJanitor::Config jc;
    jc.dir = cfg_.cache.disk_dir;
    jc.cap_bytes = cfg_.cache_disk_cap_bytes;
    janitor_ = std::make_unique<DiskJanitor>(jc);
    // Startup sweep: reap what previous (possibly killed) daemons left
    // behind before serving the first request.
    janitor_->sweep();
  }
  std::size_t n = cfg_.workers;
  if (n == 0)
    n = std::max<unsigned>(1, std::thread::hardware_concurrency());
  for (std::size_t i = 0; i < n; ++i)
    workers_.emplace_back([this] { worker_loop(); });
  if (janitor_ && cfg_.maintenance_interval_ms > 0)
    maintenance_ = std::thread([this] { maintenance_loop(); });
}

Service::~Service() {
  shutdown();
  for (std::thread& t : workers_) t.join();
  if (maintenance_.joinable()) maintenance_.join();
}

void Service::shutdown() {
  {
    std::lock_guard lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  {
    std::lock_guard lock(maint_mu_);
    maint_stop_ = true;
  }
  maint_cv_.notify_all();
}

bool Service::shutting_down() const {
  std::lock_guard lock(mu_);
  return stop_;
}

core::AnalyzerOptions Service::analyzer_options(
    const RequestOptions& ro) const {
  core::AnalyzerOptions opts;
  opts.translation.quantum_ns = ro.quantum_ns;
  opts.translation.time_model = ro.late_completion
                                    ? translate::ExecutionTimeModel::LateCompletion
                                    : translate::ExecutionTimeModel::CommittedDemand;
  opts.run_lint = ro.run_lint;
  opts.no_reduction = ro.no_reduction || cfg_.force_no_reduction;
  opts.engine = ro.engine;
  opts.exploration.max_states = ro.max_states;
  if (cfg_.max_states_cap > 0)
    opts.exploration.max_states =
        std::min(opts.exploration.max_states, cfg_.max_states_cap);
  opts.exploration.budget.deadline_ms = ro.deadline_ms;
  if (cfg_.max_deadline_ms > 0) {
    opts.exploration.budget.deadline_ms =
        ro.deadline_ms > 0 ? std::min(ro.deadline_ms, cfg_.max_deadline_ms)
                           : cfg_.max_deadline_ms;
  }
  std::uint64_t mem_mb = ro.memory_budget_mb;
  if (cfg_.memory_budget_mb_cap > 0)
    mem_mb = mem_mb > 0 ? std::min(mem_mb, cfg_.memory_budget_mb_cap)
                        : cfg_.memory_budget_mb_cap;
  opts.exploration.budget.memory_bytes = mem_mb * 1024 * 1024;
  const std::size_t max_w = std::max<std::size_t>(1, cfg_.max_request_workers);
  opts.parallel.workers =
      ro.workers == 0 ? max_w : std::min(ro.workers, max_w);
  return opts;
}

std::future<Response> Service::submit(Request req) {
  const Clock::time_point t0 = Clock::now();
  metrics_.record_request(req.op);

  const auto immediate = [&](Response resp) {
    std::promise<Response> p;
    auto fut = p.get_future();
    p.set_value(std::move(resp));
    return fut;
  };

  Response resp;
  resp.op = req.op;
  resp.id = req.id;

  switch (req.op) {
    case Op::Ping:
      resp.ok = true;
      return immediate(std::move(resp));
    case Op::Stats:
      resp.ok = true;
      resp.stats_json = stats_json();
      return immediate(std::move(resp));
    case Op::Shutdown:
      resp.ok = true;
      shutdown();
      return immediate(std::move(resp));
    case Op::Analyze:
      break;
  }

  if (shutting_down()) {
    resp.ok = false;
    resp.error = "service is shutting down";
    return immediate(std::move(resp));
  }

  // A daemon-level engine override rewrites the request *before* the cache
  // key is computed — same discipline as the options themselves, so forced
  // and requested runs of the same engine share cache entries.
  if (cfg_.force_engine) req.options.engine = *cfg_.force_engine;

  // Front end on the submitting thread: parse + instantiate + fingerprint
  // are microseconds against an exploration, and the fingerprint is needed
  // before any scheduling decision (it IS the cache key).
  std::string front_end_error;
  auto parsed = parse_request_model(req, front_end_error);
  if (!parsed) {
    core::AnalysisResult err;
    err.diagnostics = front_end_error;
    resp.ok = true;  // protocol-level success; the analysis outcome is Error
    resp.outcome = core::Outcome::Error;
    resp.cached = false;
    resp.cache_tier = "none";
    resp.result_json = core::render_result_json(err);
    resp.served_ms = ms_since(t0);
    metrics_.record_outcome(core::Outcome::Error);
    metrics_.record_latency_ms(resp.served_ms);
    return immediate(std::move(resp));
  }

  const aadl::Fingerprint fp = aadl::instance_fingerprint(*parsed->instance);
  const std::string key = fp.hex() + "-" + options_key(req.options);

  if (!req.no_cache) {
    if (auto hit = cache_.lookup(key)) {
      resp.ok = true;
      resp.outcome = hit->outcome;
      resp.fingerprint = fp.hex();
      resp.cached = true;
      resp.cache_tier = hit->from_disk ? "disk" : "memory";
      resp.result_json = std::move(hit->result_json);
      resp.served_ms = ms_since(t0);
      metrics_.record_hit(hit->from_disk);
      metrics_.record_outcome(hit->outcome);
      metrics_.record_latency_ms(resp.served_ms);
      return immediate(std::move(resp));
    }
    metrics_.record_miss();
  }

  const bool small = req.model.size() < cfg_.small_model_bytes;
  std::future<Response> fut;
  {
    std::lock_guard lock(mu_);
    if (stop_) {
      resp.ok = false;
      resp.error = "service is shutting down";
      return immediate(std::move(resp));
    }
    if (!req.no_cache) {
      // Coalesce onto an identical in-flight run: one exploration, many
      // responses.
      const auto it = pending_.find(key);
      if (it != pending_.end()) {
        Job::Waiter w;
        w.id = req.id;
        w.t0 = t0;
        fut = w.promise.get_future();
        it->second->waiters.push_back(std::move(w));
        metrics_.record_coalesced();
        return fut;
      }
    }
    auto job = std::make_shared<Job>();
    job->req = std::move(req);
    job->key = key;
    job->fingerprint = fp.hex();
    job->parsed = std::move(parsed);
    Job::Waiter w;
    w.id = job->req.id;
    w.t0 = t0;
    fut = w.promise.get_future();
    job->waiters.push_back(std::move(w));
    const std::uint64_t ticket = next_ticket_++;
    admission_.push(ticket, small);
    queued_.emplace(ticket, job);
    if (!job->req.no_cache) pending_.emplace(key, job);
    metrics_.queue_depth_delta(+1);
  }
  cv_.notify_one();
  return fut;
}

void Service::maintenance_loop() {
  const auto interval = std::chrono::duration<double, std::milli>(
      cfg_.maintenance_interval_ms);
  std::unique_lock lock(maint_mu_);
  while (!maint_stop_) {
    if (maint_cv_.wait_for(lock, interval, [&] { return maint_stop_; }))
      return;
    lock.unlock();
    janitor_->sweep();  // never under maint_mu_: sweeps do file I/O
    lock.lock();
  }
}

void Service::worker_loop() {
  while (true) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock lock(mu_);
      cv_.wait(lock, [&] { return stop_ || admission_.size() > 0; });
      const auto ticket = admission_.pop();
      if (!ticket) {
        if (stop_) return;  // drained
        continue;
      }
      const auto it = queued_.find(*ticket);
      job = it->second;
      queued_.erase(it);
      metrics_.queue_depth_delta(-1);
    }
    run_job(job);
  }
}

void Service::run_job(const std::shared_ptr<Job>& job) {
  metrics_.in_flight_delta(+1);
  metrics_.record_analysis_run();

  core::AnalyzerOptions opts = analyzer_options(job->req.options);

  // Warm re-exploration (DESIGN.md §12). no_cache means "forced cold
  // re-run", so it opts out of the checkpoint tier entirely — the --no-cache
  // control run in a cold-vs-resumed comparison must neither resume nor
  // clobber the stored wavefront.
  const bool use_checkpoints = cfg_.cache.checkpoints &&
                               !job->req.no_checkpoint && !job->req.no_cache;
  std::string checkpoint_out;
  std::string resume_blob;
  bool resume_attempted = false;
  if (use_checkpoints) {
    opts.checkpoint_out = &checkpoint_out;
    opts.checkpoint_key = job->key;
    if (job->req.resume) {
      if (auto blob = checkpoints_.lookup(job->key)) {
        resume_blob = std::move(*blob);
        opts.resume_checkpoint = &resume_blob;
        resume_attempted = true;
        metrics_.record_checkpoint_hit();
      } else {
        metrics_.record_checkpoint_miss();
      }
    }
  }

  core::AnalysisResult result =
      core::analyze_instance(*job->parsed->instance, opts);
  result.diagnostics = job->parsed->front_end_output + result.diagnostics;
  const std::string result_json = core::render_result_json(result);

  if (result.engine == "symbolic")
    metrics_.record_symbolic_run(result.states, result.zone_subsumptions,
                                 result.dbm_dimension);

  if (resume_attempted && !result.resumed) {
    // The blob failed restore validation (analyze_instance fell back to a
    // cold run). Drop it — retrying the same bytes cannot succeed.
    metrics_.record_checkpoint_resume_failure();
    checkpoints_.erase(job->key);
  }
  if (use_checkpoints && result.checkpoint_captured &&
      !checkpoint_out.empty()) {
    checkpoints_.store(job->key, checkpoint_out);
    metrics_.record_checkpoint_store();
  }

  if (!job->req.no_cache && cacheable(result.outcome)) {
    cache_.store(job->key, result.outcome, result_json);
    metrics_.record_store();
    // A conclusive verdict supersedes any partial wavefront for this key.
    checkpoints_.erase(job->key);
  }

  std::vector<Job::Waiter> waiters;
  {
    std::lock_guard lock(mu_);
    waiters = std::move(job->waiters);
    job->waiters.clear();
    if (!job->req.no_cache) pending_.erase(job->key);
  }
  for (Job::Waiter& w : waiters) {
    Response resp;
    resp.op = Op::Analyze;
    resp.ok = true;
    resp.id = w.id;
    resp.outcome = result.outcome;
    resp.fingerprint = job->fingerprint;
    resp.cached = false;
    resp.cache_tier = "none";
    resp.resumed = result.resumed;
    resp.resumed_depth = result.resumed_from_depth;
    resp.checkpoint_captured = result.checkpoint_captured;
    resp.result_json = result_json;
    resp.served_ms = ms_since(w.t0);
    metrics_.record_outcome(result.outcome);
    metrics_.record_latency_ms(resp.served_ms);
    w.promise.set_value(std::move(resp));
  }
  metrics_.in_flight_delta(-1);
}

Response Service::handle(Request req) { return submit(std::move(req)).get(); }

std::string Service::handle_line(std::string_view line) {
  std::string error;
  auto req = parse_request(line, error);
  if (!req) {
    metrics_.record_protocol_error();
    Response resp;
    resp.ok = false;
    resp.error = error;
    return render_response(resp);
  }
  return render_response(handle(std::move(*req)));
}

std::string Service::stats_json() {
  Metrics::CacheGauges g;
  g.cache_evictions = cache_.evictions();
  g.cache_entries = cache_.entries();
  g.cache_corrupt_evictions = cache_.corrupt_evictions();
  g.cache_disk_store_failures = cache_.disk_store_failures();
  g.checkpoint_evictions = checkpoints_.evictions();
  g.checkpoint_entries = checkpoints_.entries();
  g.checkpoint_corrupt_evictions = checkpoints_.corrupt_evictions();
  g.checkpoint_disk_store_failures = checkpoints_.disk_store_failures();
  if (janitor_) {
    const GcStats gc = janitor_->gc_stats();
    g.gc_runs = gc.runs;
    g.gc_removed_files = gc.removed_files;
    g.gc_removed_bytes = gc.removed_bytes;
    g.gc_remove_failures = gc.remove_failures;
    g.gc_tmp_swept = gc.tmp_swept;
    g.shared_instances = janitor_->instances_gauge();
  }
  return metrics_.snapshot(g).render_json();
}

}  // namespace aadlsched::server
