#include "server/metrics.hpp"

#include <algorithm>

#include "util/json.hpp"

namespace aadlsched::server {

std::string StatsSnapshot::render_json() const {
  util::JsonWriter w;
  w.begin_object();
  w.key("requests").value(requests);
  w.key("analyze_requests").value(analyze_requests);
  w.key("analyses_run").value(analyses_run);
  w.key("cache").begin_object();
  w.key("hits_memory").value(cache_hits_memory);
  w.key("hits_disk").value(cache_hits_disk);
  w.key("misses").value(cache_misses);
  w.key("stores").value(cache_stores);
  w.key("evictions").value(cache_evictions);
  w.key("corrupt_evictions").value(cache_corrupt_evictions);
  w.key("disk_store_failures").value(cache_disk_store_failures);
  w.key("entries").value(cache_entries);
  w.end_object();
  w.key("checkpoints").begin_object();
  w.key("hits").value(checkpoint_hits);
  w.key("misses").value(checkpoint_misses);
  w.key("stores").value(checkpoint_stores);
  w.key("resume_failures").value(checkpoint_resume_failures);
  w.key("evictions").value(checkpoint_evictions);
  w.key("corrupt_evictions").value(checkpoint_corrupt_evictions);
  w.key("disk_store_failures").value(checkpoint_disk_store_failures);
  w.key("entries").value(checkpoint_entries);
  w.end_object();
  w.key("gc").begin_object();
  w.key("runs").value(gc_runs);
  w.key("removed_files").value(gc_removed_files);
  w.key("removed_bytes").value(gc_removed_bytes);
  w.key("remove_failures").value(gc_remove_failures);
  w.key("tmp_swept").value(gc_tmp_swept);
  w.end_object();
  w.key("shared").begin_object();
  w.key("instances").value(shared_instances);
  w.end_object();
  w.key("symbolic").begin_object();
  w.key("runs").value(symbolic_runs);
  w.key("zones").value(symbolic_zones);
  w.key("subsumptions").value(symbolic_subsumptions);
  w.key("max_dbm_dimension").value(symbolic_max_dbm_dimension);
  w.end_object();
  w.key("coalesced").value(coalesced);
  w.key("protocol_errors").value(protocol_errors);
  w.key("outcomes").begin_object();
  w.key("error").value(outcomes[static_cast<int>(core::Outcome::Error)]);
  w.key("schedulable")
      .value(outcomes[static_cast<int>(core::Outcome::Schedulable)]);
  w.key("not_schedulable")
      .value(outcomes[static_cast<int>(core::Outcome::NotSchedulable)]);
  w.key("inconclusive")
      .value(outcomes[static_cast<int>(core::Outcome::Inconclusive)]);
  w.end_object();
  w.key("in_flight").value(in_flight);
  w.key("queue_depth").value(queue_depth);
  w.key("latency").begin_object();
  w.key("samples").value(latency_samples);
  // Percentiles cover only the last `window` samples; `samples` is
  // all-time (see StatsSnapshot::latency_window).
  w.key("window").value(latency_window);
  w.key("p50_ms").value(p50_ms);
  w.key("p95_ms").value(p95_ms);
  w.key("max_ms").value(max_ms);
  w.end_object();
  w.key("uptime_ms").value(uptime_ms);
  w.end_object();
  return std::move(w).str();
}

void Metrics::record_request(Op op) {
  std::lock_guard lock(mu_);
  ++s_.requests;
  if (op == Op::Analyze) ++s_.analyze_requests;
}

void Metrics::record_analysis_run() {
  std::lock_guard lock(mu_);
  ++s_.analyses_run;
}

void Metrics::record_protocol_error() {
  std::lock_guard lock(mu_);
  ++s_.requests;  // a malformed line is still a served request
  ++s_.protocol_errors;
}

void Metrics::record_outcome(core::Outcome o) {
  std::lock_guard lock(mu_);
  ++s_.outcomes[static_cast<int>(o)];
}

void Metrics::record_hit(bool disk_tier) {
  std::lock_guard lock(mu_);
  if (disk_tier)
    ++s_.cache_hits_disk;
  else
    ++s_.cache_hits_memory;
}

void Metrics::record_miss() {
  std::lock_guard lock(mu_);
  ++s_.cache_misses;
}

void Metrics::record_store() {
  std::lock_guard lock(mu_);
  ++s_.cache_stores;
}

void Metrics::record_checkpoint_hit() {
  std::lock_guard lock(mu_);
  ++s_.checkpoint_hits;
}

void Metrics::record_checkpoint_miss() {
  std::lock_guard lock(mu_);
  ++s_.checkpoint_misses;
}

void Metrics::record_checkpoint_store() {
  std::lock_guard lock(mu_);
  ++s_.checkpoint_stores;
}

void Metrics::record_checkpoint_resume_failure() {
  std::lock_guard lock(mu_);
  ++s_.checkpoint_resume_failures;
}

void Metrics::record_symbolic_run(std::uint64_t zones,
                                  std::uint64_t subsumptions,
                                  std::uint64_t dbm_dimension) {
  std::lock_guard lock(mu_);
  ++s_.symbolic_runs;
  s_.symbolic_zones += zones;
  s_.symbolic_subsumptions += subsumptions;
  s_.symbolic_max_dbm_dimension =
      std::max(s_.symbolic_max_dbm_dimension, dbm_dimension);
}

void Metrics::record_coalesced() {
  std::lock_guard lock(mu_);
  ++s_.coalesced;
}

void Metrics::record_latency_ms(double ms) {
  std::lock_guard lock(mu_);
  if (latency_ring_.size() < kLatencyRing) {
    latency_ring_.push_back(ms);
  } else {
    latency_ring_[latency_next_] = ms;
    latency_next_ = (latency_next_ + 1) % kLatencyRing;
  }
  ++latency_total_;
  latency_max_ = std::max(latency_max_, ms);
}

void Metrics::in_flight_delta(int d) {
  std::lock_guard lock(mu_);
  s_.in_flight += static_cast<std::uint64_t>(d);
}

void Metrics::queue_depth_delta(int d) {
  std::lock_guard lock(mu_);
  s_.queue_depth += static_cast<std::uint64_t>(d);
}

StatsSnapshot Metrics::snapshot(const CacheGauges& gauges) const {
  std::lock_guard lock(mu_);
  StatsSnapshot out = s_;
  out.cache_evictions = gauges.cache_evictions;
  out.cache_entries = gauges.cache_entries;
  out.cache_corrupt_evictions = gauges.cache_corrupt_evictions;
  out.cache_disk_store_failures = gauges.cache_disk_store_failures;
  out.checkpoint_evictions = gauges.checkpoint_evictions;
  out.checkpoint_entries = gauges.checkpoint_entries;
  out.checkpoint_corrupt_evictions = gauges.checkpoint_corrupt_evictions;
  out.checkpoint_disk_store_failures = gauges.checkpoint_disk_store_failures;
  out.gc_runs = gauges.gc_runs;
  out.gc_removed_files = gauges.gc_removed_files;
  out.gc_removed_bytes = gauges.gc_removed_bytes;
  out.gc_remove_failures = gauges.gc_remove_failures;
  out.gc_tmp_swept = gauges.gc_tmp_swept;
  out.shared_instances = gauges.shared_instances;
  out.analyses_run = s_.analyses_run;
  out.latency_samples = latency_total_;
  out.latency_window = latency_ring_.size();
  out.max_ms = latency_max_;
  if (!latency_ring_.empty()) {
    std::vector<double> sorted = latency_ring_;
    std::sort(sorted.begin(), sorted.end());
    const auto pct = [&](double p) {
      const std::size_t idx = static_cast<std::size_t>(
          p * static_cast<double>(sorted.size() - 1) + 0.5);
      return sorted[std::min(idx, sorted.size() - 1)];
    };
    out.p50_ms = pct(0.50);
    out.p95_ms = pct(0.95);
  }
  out.uptime_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start_)
          .count();
  return out;
}

}  // namespace aadlsched::server
