#include "server/client.hpp"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <random>
#include <thread>

#include "server/tcp.hpp"
#include "translate/translator.hpp"

namespace aadlsched::server {

RequestOptions to_request_options(const core::AnalyzerOptions& opts) {
  RequestOptions ro;
  ro.quantum_ns = opts.translation.quantum_ns;
  ro.max_states = opts.exploration.max_states;
  ro.deadline_ms = opts.exploration.budget.deadline_ms;
  ro.memory_budget_mb = opts.exploration.budget.memory_bytes / (1024 * 1024);
  ro.workers = opts.parallel.workers;
  ro.run_lint = opts.run_lint;
  ro.late_completion = opts.translation.time_model ==
                       translate::ExecutionTimeModel::LateCompletion;
  ro.no_reduction = opts.no_reduction;
  ro.engine = opts.engine;
  return ro;
}

std::optional<Response> request_with_retry(const std::string& host,
                                           std::uint16_t port,
                                           const Request& req,
                                           const RetryPolicy& policy,
                                           std::string& error,
                                           const RetryObserver& on_retry) {
  const std::string request_line = render_request(req);

  // Jitter decorrelates a herd of clients retrying against one restarting
  // daemon; pid ^ clock keeps forked batch runners apart.
  std::mt19937 rng(static_cast<std::uint32_t>(::getpid()) ^
                   static_cast<std::uint32_t>(
                       std::chrono::steady_clock::now()
                           .time_since_epoch()
                           .count()));
  for (unsigned attempt = 0; attempt <= policy.retries; ++attempt) {
    if (attempt > 0) {
      double base_ms = 100.0 * static_cast<double>(1u << (attempt - 1));
      base_ms = std::min(base_ms, 2000.0);
      std::uniform_real_distribution<double> jitter(0.0, base_ms * 0.5);
      const double delay_ms = base_ms + jitter(rng);
      if (on_retry) on_retry(attempt, policy.retries, delay_ms, error);
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(delay_ms));
    }
    Client client;
    client.set_timeouts({policy.connect_timeout_ms, policy.io_timeout_ms});
    if (!client.connect(host, port, error)) continue;
    std::string line;
    if (!client.roundtrip(request_line, line, error)) continue;
    auto parsed = parse_response(line, error);
    if (!parsed) {
      error = "malformed daemon response: " + error;
      continue;  // truncated/garbled line — transport-level, retryable
    }
    return parsed;
  }
  return std::nullopt;
}

}  // namespace aadlsched::server
