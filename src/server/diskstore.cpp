#include "server/diskstore.hpp"

#include <fcntl.h>
#include <signal.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <ctime>
#include <filesystem>
#include <fstream>

#include "util/budget.hpp"
#include "util/hash.hpp"
#include "util/string_utils.hpp"

namespace aadlsched::server {

namespace fs = std::filesystem;

namespace {

std::string hex64(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

/// Age of a file in seconds by its last write time; 0 on stat failure (a
/// file we cannot stat is treated as brand new, i.e. never grace-expired).
double file_age_seconds(const fs::path& p) {
  std::error_code ec;
  const auto wt = fs::last_write_time(p, ec);
  if (ec) return 0;
  const auto now = fs::file_time_type::clock::now();
  return std::chrono::duration<double>(now - wt).count();
}

/// Pid suffix of "<name>.tmp.<pid>"; nullopt when the suffix is not a pid.
std::optional<pid_t> tmp_owner_pid(const std::string& name) {
  const auto pos = name.rfind(".tmp.");
  if (pos == std::string::npos) return std::nullopt;
  const auto n = util::parse_int64(std::string_view(name).substr(pos + 5));
  if (!n || *n <= 0) return std::nullopt;
  return static_cast<pid_t>(*n);
}

std::string wallclock_now() {
  const std::time_t t = std::time(nullptr);
  char buf[32];
  std::tm tm{};
  if (localtime_r(&t, &tm) == nullptr ||
      std::strftime(buf, sizeof buf, "%Y-%m-%dT%H:%M:%S", &tm) == 0)
    return "?";
  return buf;
}

/// Recency for GC eviction order: prefer atime (a read IS a use — disk hits
/// promote warm entries), but relatime mounts update it lazily, so take the
/// newer of atime and mtime.
std::int64_t recency_seconds(const fs::path& p) {
  struct stat st{};
  if (::stat(p.c_str(), &st) != 0) return 0;
  return std::max<std::int64_t>(st.st_atime, st.st_mtime);
}

}  // namespace

// --- content digests --------------------------------------------------------

void append_digest(std::string& body) {
  body += "digest " + hex64(util::fnv1a(body)) + "\n";
}

bool verify_trailing_digest(std::string_view text) {
  return strip_trailing_digest(text).has_value();
}

std::optional<std::string_view> strip_trailing_digest(std::string_view text) {
  // The digest line is "digest <16 hex>\n" and must be the final bytes.
  const std::size_t dpos = text.rfind("\ndigest ");
  if (dpos == std::string_view::npos) return std::nullopt;
  const std::string_view body = text.substr(0, dpos + 1);
  const std::size_t hex_at = dpos + 8;
  const std::size_t nl = text.find('\n', hex_at);
  if (nl == std::string_view::npos || nl != text.size() - 1) return std::nullopt;
  if (nl - hex_at != 16) return std::nullopt;
  if (text.substr(hex_at, 16) != hex64(util::fnv1a(body))) return std::nullopt;
  return body;
}

// --- pid liveness and tmp hygiene ------------------------------------------

bool pid_alive(pid_t pid) {
  if (pid <= 0) return false;
  if (::kill(pid, 0) == 0) return true;
  return errno != ESRCH;  // EPERM: exists but not ours -> alive
}

std::uint64_t sweep_stale_tmp_files(const std::string& dir,
                                    double grace_seconds) {
  std::uint64_t removed = 0;
  std::error_code ec;
  for (const auto& ent : fs::directory_iterator(dir, ec)) {
    if (!ent.is_regular_file(ec)) continue;
    const std::string name = ent.path().filename().string();
    if (name.find(".tmp.") == std::string::npos) continue;
    // A live sibling may be between its tmp write and the rename right now;
    // only reap when the owner is provably gone or the file has outlived
    // the grace window (covers pid reuse and writers on other hosts).
    const auto owner = tmp_owner_pid(name);
    const bool owner_dead = owner && !pid_alive(*owner);
    const bool expired = file_age_seconds(ent.path()) > grace_seconds;
    if (!owner_dead && !expired) continue;
    std::error_code rm;
    if (fs::remove(ent.path(), rm)) ++removed;
  }
  return removed;
}

// --- DirLock ----------------------------------------------------------------

DirLock::DirLock(std::string dir) : path_(std::move(dir) + "/.dirlock") {}

DirLock::~DirLock() {
  unlock();
  if (fd_ >= 0) ::close(fd_);
}

bool DirLock::lock() {
  if (held_) return true;
  if (fd_ < 0) {
    fd_ = ::open(path_.c_str(), O_CREAT | O_RDWR | O_CLOEXEC, 0644);
    if (fd_ < 0) return false;
  }
  int rc;
  do {
    rc = ::flock(fd_, LOCK_EX);
  } while (rc != 0 && errno == EINTR);
  held_ = rc == 0;
  return held_;
}

bool DirLock::try_lock() {
  if (held_) return true;
  if (fd_ < 0) {
    fd_ = ::open(path_.c_str(), O_CREAT | O_RDWR | O_CLOEXEC, 0644);
    if (fd_ < 0) return false;
  }
  held_ = ::flock(fd_, LOCK_EX | LOCK_NB) == 0;
  return held_;
}

void DirLock::unlock() {
  if (!held_) return;
  ::flock(fd_, LOCK_UN);
  held_ = false;
}

// --- size-budgeted GC -------------------------------------------------------

GcStats run_disk_gc(const std::string& dir, std::uint64_t cap_bytes) {
  GcStats st;
  st.runs = 1;
  if (cap_bytes == 0) return st;

  struct Victim {
    std::int64_t recency;
    std::uint64_t size;
    fs::path path;
  };
  std::vector<Victim> files;
  std::uint64_t total = 0;
  std::error_code ec;
  for (const auto& ent : fs::directory_iterator(dir, ec)) {
    if (!ent.is_regular_file(ec)) continue;
    const auto ext = ent.path().extension();
    if (ext != ".json" && ext != ".ckpt") continue;
    std::error_code sz;
    const std::uint64_t size = ent.file_size(sz);
    if (sz) continue;
    total += size;
    files.push_back({recency_seconds(ent.path()), size, ent.path()});
  }
  if (total <= cap_bytes) return st;

  std::sort(files.begin(), files.end(),
            [](const Victim& a, const Victim& b) {
              return a.recency != b.recency ? a.recency < b.recency
                                            : a.path < b.path;
            });
  auto& injector = util::FaultInjector::global();
  for (const Victim& v : files) {
    if (total <= cap_bytes) break;
    if (injector.trip_io(util::FaultInjector::Site::GcRemove)) {
      ++st.remove_failures;  // injected: the file stays, bytes stay counted
      continue;
    }
    std::error_code rm;
    if (fs::remove(v.path, rm)) {
      ++st.removed_files;
      st.removed_bytes += v.size;
      total -= v.size;
    } else {
      ++st.remove_failures;
    }
  }
  return st;
}

// --- DiskJanitor ------------------------------------------------------------

DiskJanitor::DiskJanitor(Config cfg) : cfg_(std::move(cfg)), lock_(cfg_.dir) {
  std::error_code ec;
  fs::create_directories(cfg_.dir + "/.instances", ec);
  self_entry_ = cfg_.dir + "/.instances/" + std::to_string(::getpid());
  register_self();
}

DiskJanitor::~DiskJanitor() { deregister_self(); }

void DiskJanitor::register_self() {
  std::lock_guard op(op_mu_);
  DirLock::Scope scope(lock_);
  std::ofstream out(self_entry_, std::ios::trunc);
  if (out)
    out << "pid " << ::getpid() << "\nstarted " << wallclock_now() << "\n";
}

void DiskJanitor::deregister_self() {
  std::lock_guard op(op_mu_);
  DirLock::Scope scope(lock_);
  std::error_code ec;
  fs::remove(self_entry_, ec);
}

std::vector<InstanceInfo> DiskJanitor::scan_registry() {
  std::vector<InstanceInfo> live;
  std::error_code ec;
  for (const auto& ent :
       fs::directory_iterator(cfg_.dir + "/.instances", ec)) {
    if (!ent.is_regular_file(ec)) continue;
    const auto n = util::parse_int64(ent.path().filename().string());
    if (!n || *n <= 0) continue;
    const pid_t pid = static_cast<pid_t>(*n);
    if (!pid_alive(pid)) {
      // A daemon that died (or was kill -9'd) never deregistered; reap its
      // entry so the cohabitant count converges.
      std::error_code rm;
      fs::remove(ent.path(), rm);
      continue;
    }
    InstanceInfo info;
    info.pid = pid;
    std::ifstream in(ent.path());
    std::string key;
    while (in >> key) {
      if (key == "started") {
        in >> info.started;
        break;
      }
    }
    live.push_back(std::move(info));
  }
  instances_.store(live.size(), std::memory_order_relaxed);
  return live;
}

std::vector<InstanceInfo> DiskJanitor::live_instances() {
  std::lock_guard op(op_mu_);
  DirLock::Scope scope(lock_);
  return scan_registry();
}

void DiskJanitor::sweep() {
  std::uint64_t tmp_removed = 0;
  GcStats pass;
  {
    std::lock_guard op(op_mu_);
    DirLock::Scope scope(lock_);
    // Proceed even when scope.ok() is false (lock file unopenable, e.g. a
    // read-only dir): an unlocked sweep is still correct for this process
    // alone, and the alternative is never cleaning up at all.
    scan_registry();  // reap dead entries + refresh the cohabitant gauge
    tmp_removed = sweep_stale_tmp_files(cfg_.dir, cfg_.tmp_grace_seconds);
    if (cfg_.cap_bytes > 0) pass = run_disk_gc(cfg_.dir, cfg_.cap_bytes);
  }
  std::lock_guard guard(mu_);
  gc_.runs += pass.runs;
  gc_.removed_files += pass.removed_files;
  gc_.removed_bytes += pass.removed_bytes;
  gc_.remove_failures += pass.remove_failures;
  gc_.tmp_swept += tmp_removed;
}

GcStats DiskJanitor::gc_stats() const {
  std::lock_guard guard(mu_);
  return gc_;
}

}  // namespace aadlsched::server
