#include "server/cache.hpp"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>
#include <vector>

#include "core/result_json.hpp"
#include "server/diskstore.hpp"
#include "util/budget.hpp"
#include "util/json.hpp"

namespace aadlsched::server {

namespace fs = std::filesystem;

namespace {

using util::FaultInjector;

/// Tmp leftovers younger than this survive the constructor sweep even when
/// their owner pid cannot be resolved (matches DiskJanitor's default, so
/// startup and periodic sweeps agree on what "stale" means).
constexpr double kStartupTmpGraceSeconds = 300;

/// Write `body` to `tmp_path`, honoring the `site` fault hook: a tripped
/// write site emits only a prefix of the bytes and reports failure — the
/// torn file a kill -9 mid-write leaves behind, for the sweeper (and the
/// digest check, should the torn file somehow get renamed) to deal with.
bool write_tmp_file(const std::string& tmp_path, const std::string& body,
                    FaultInjector::Site site) {
  std::ofstream out(tmp_path, std::ios::trunc | std::ios::binary);
  if (!out) return false;
  if (FaultInjector::global().trip_io(site)) {
    out << std::string_view(body).substr(0, body.size() / 2);
    return false;  // tmp file deliberately left behind, torn
  }
  out << body;
  out.flush();
  return out.good();
}

std::optional<std::string> read_file(const std::string& path,
                                     FaultInjector::Site site) {
  if (FaultInjector::global().trip_io(site)) return std::nullopt;
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

}  // namespace

ResultCache::ResultCache(CacheConfig cfg)
    : cfg_(std::move(cfg)), memory_(cfg_.memory_capacity) {
  if (!cfg_.disk_dir.empty()) {
    std::error_code ec;
    fs::create_directories(cfg_.disk_dir, ec);
    // A failed create degrades to memory-only: lookups will miss, stores
    // will fail (and be counted). The daemon surfaces the misconfiguration
    // at startup instead (it stats the directory).
    sweep_stale_tmp_files(cfg_.disk_dir, kStartupTmpGraceSeconds);
  }
}

std::string ResultCache::disk_path(const std::string& key) const {
  // Keys are hex digests — already safe as file names.
  return cfg_.disk_dir + "/" + key + ".json";
}

void ResultCache::note_store_failure(const std::string& path,
                                     const char* what) {
  disk_store_failures_.fetch_add(1, std::memory_order_relaxed);
  if (!store_diag_emitted_.exchange(true, std::memory_order_relaxed))
    std::fprintf(stderr,
                 "aadlschedd: warning: result cache disk store failed (%s: "
                 "%s); entries stay memory-only until the disk recovers "
                 "(counted in stats as disk_store_failures)\n",
                 what, path.c_str());
}

std::optional<ResultCache::Entry> ResultCache::disk_load(
    const std::string& key) const {
  // A failed read (I/O error, injected cache.read fault) is a plain miss —
  // the file may be fine; only *verified-present-but-invalid* bytes are
  // quarantined.
  auto raw = read_file(disk_path(key), FaultInjector::Site::CacheRead);
  if (!raw || raw->empty()) return std::nullopt;
  // A rejected file is quarantined (deleted) so the damage costs exactly
  // one miss: the re-run stores a fresh copy instead of tripping over the
  // same bytes forever.
  const auto quarantine = [&]() -> std::optional<Entry> {
    std::error_code ec;
    fs::remove(disk_path(key), ec);
    corrupt_evictions_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  };
  // Gate 1: the trailing content digest (DESIGN.md §15) — catches torn,
  // truncated, bit-rotted, or pre-digest-era files byte-exactly.
  const auto body = strip_trailing_digest(*raw);
  if (!body) return quarantine();
  std::string json(*body);
  while (!json.empty() && (json.back() == '\n' || json.back() == '\r'))
    json.pop_back();
  // Gate 2: the payload *is* the canonical result object; recover the
  // outcome from its "outcome" field and reject anything foreign.
  const auto doc = util::parse_json(json);
  if (!doc || !doc->is_object()) return quarantine();
  const auto* outcome = doc->get("outcome");
  if (!outcome || !outcome->is_string()) return quarantine();
  const auto parsed = core::outcome_from_string(outcome->as_string());
  if (!parsed || !cacheable(*parsed)) return quarantine();
  return Entry{*parsed, std::move(json)};
}

std::optional<ResultCache::Hit> ResultCache::lookup(const std::string& key) {
  {
    std::lock_guard lock(mu_);
    if (auto entry = memory_.get(key))
      return Hit{entry->outcome, std::move(entry->result_json), false};
  }
  if (cfg_.disk_dir.empty()) return std::nullopt;
  // Disk I/O outside the lock; a racing store of the same key is benign
  // (same bytes by construction — keys are content hashes).
  auto entry = disk_load(key);
  if (!entry) return std::nullopt;
  {
    std::lock_guard lock(mu_);
    memory_.put(key, *entry);
  }
  return Hit{entry->outcome, std::move(entry->result_json), true};
}

void ResultCache::store(const std::string& key, core::Outcome outcome,
                        const std::string& result_json) {
  if (!cacheable(outcome)) return;
  {
    std::lock_guard lock(mu_);
    memory_.put(key, Entry{outcome, result_json});
  }
  if (cfg_.disk_dir.empty()) return;
  const std::string final_path = disk_path(key);
  const std::string tmp_path =
      final_path + ".tmp." + std::to_string(::getpid());
  std::string body = result_json;
  body += '\n';
  append_digest(body);
  if (!write_tmp_file(tmp_path, body, FaultInjector::Site::CacheWrite)) {
    note_store_failure(final_path, "write");
    return;  // torn tmp (if any) is left for the liveness-aware sweeper
  }
  if (FaultInjector::global().trip_io(FaultInjector::Site::CacheRename)) {
    std::error_code ec;
    fs::remove(tmp_path, ec);
    note_store_failure(final_path, "rename (injected)");
    return;
  }
  std::error_code ec;
  fs::rename(tmp_path, final_path, ec);
  if (ec) {
    fs::remove(tmp_path, ec);
    note_store_failure(final_path, "rename");
  }
}

std::uint64_t ResultCache::evictions() const {
  std::lock_guard lock(mu_);
  return memory_.evictions();
}

std::uint64_t ResultCache::entries() const {
  std::lock_guard lock(mu_);
  return memory_.size();
}

// --- CheckpointStore -------------------------------------------------------

CheckpointStore::CheckpointStore(std::size_t memory_capacity,
                                 std::size_t disk_cap, std::string disk_dir)
    : disk_cap_(disk_cap),
      disk_dir_(std::move(disk_dir)),
      memory_(memory_capacity) {
  if (has_disk_tier()) {
    std::error_code ec;
    fs::create_directories(disk_dir_, ec);
    // ResultCache sweeps the shared directory too when it owns it, but the
    // store must clean up after itself when configured standalone.
    sweep_stale_tmp_files(disk_dir_, kStartupTmpGraceSeconds);
  }
}

std::string CheckpointStore::disk_path(const std::string& key) const {
  return disk_dir_ + "/" + key + ".ckpt";
}

void CheckpointStore::note_store_failure(const std::string& path,
                                         const char* what) {
  disk_store_failures_.fetch_add(1, std::memory_order_relaxed);
  if (!store_diag_emitted_.exchange(true, std::memory_order_relaxed))
    std::fprintf(stderr,
                 "aadlschedd: warning: checkpoint disk store failed (%s: "
                 "%s); warm re-exploration will not survive a restart "
                 "(counted in stats as disk_store_failures)\n",
                 what, path.c_str());
}

std::optional<std::string> CheckpointStore::lookup(const std::string& key) {
  {
    std::lock_guard lock(mu_);
    if (auto blob = memory_.get(key)) return blob;
  }
  if (!has_disk_tier()) return std::nullopt;
  auto blob = read_file(disk_path(key), FaultInjector::Site::CkptRead);
  if (!blob || blob->empty()) return std::nullopt;
  // serialize_checkpoint seals every blob with the same trailing digest
  // line diskstore.hpp uses; verify it here (without stripping — it is part
  // of the blob format parse_checkpoint expects) so a torn .ckpt is
  // quarantined instead of burning a restore attempt.
  if (!verify_trailing_digest(*blob)) {
    std::error_code ec;
    fs::remove(disk_path(key), ec);
    corrupt_evictions_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  {
    std::lock_guard lock(mu_);
    memory_.put(key, *blob);
  }
  return blob;
}

void CheckpointStore::store(const std::string& key,
                            const std::string& checkpoint) {
  if (checkpoint.empty()) return;
  {
    std::lock_guard lock(mu_);
    memory_.put(key, checkpoint);
  }
  if (!has_disk_tier()) return;
  const std::string final_path = disk_path(key);
  const std::string tmp_path =
      final_path + ".tmp." + std::to_string(::getpid());
  if (!write_tmp_file(tmp_path, checkpoint, FaultInjector::Site::CkptWrite)) {
    note_store_failure(final_path, "write");
    return;
  }
  std::error_code ec;
  fs::rename(tmp_path, final_path, ec);
  if (ec) {
    fs::remove(tmp_path, ec);
    note_store_failure(final_path, "rename");
    return;
  }
  enforce_disk_cap();
}

void CheckpointStore::erase(const std::string& key) {
  {
    std::lock_guard lock(mu_);
    memory_.erase(key);
  }
  if (!has_disk_tier()) return;
  std::error_code ec;
  fs::remove(disk_path(key), ec);
}

void CheckpointStore::enforce_disk_cap() {
  std::vector<std::pair<fs::file_time_type, fs::path>> files;
  std::error_code ec;
  for (const auto& ent : fs::directory_iterator(disk_dir_, ec)) {
    if (!ent.is_regular_file(ec)) continue;
    if (ent.path().extension() != ".ckpt") continue;
    std::error_code mt;
    files.emplace_back(ent.last_write_time(mt), ent.path());
  }
  if (files.size() <= disk_cap_) return;
  std::sort(files.begin(), files.end());
  const std::size_t excess = files.size() - disk_cap_;
  std::uint64_t removed = 0;
  for (std::size_t i = 0; i < excess; ++i) {
    // Cap-based eviction is GC too: same gc.remove fault site as the
    // size-budgeted sweep, so the soak can starve it deterministically.
    if (FaultInjector::global().trip_io(FaultInjector::Site::GcRemove))
      continue;
    std::error_code rm;
    if (fs::remove(files[i].second, rm)) ++removed;
  }
  std::lock_guard lock(mu_);
  disk_evictions_ += removed;
}

std::uint64_t CheckpointStore::evictions() const {
  std::lock_guard lock(mu_);
  return memory_.evictions() + disk_evictions_;
}

std::uint64_t CheckpointStore::entries() const {
  if (has_disk_tier()) {
    // The disk tier is the authoritative set (memory is a subset of it);
    // the cap keeps this scan trivially small.
    std::uint64_t n = 0;
    std::error_code ec;
    for (const auto& ent : fs::directory_iterator(disk_dir_, ec)) {
      std::error_code rf;
      if (ent.is_regular_file(rf) && ent.path().extension() == ".ckpt") ++n;
    }
    return n;
  }
  std::lock_guard lock(mu_);
  return memory_.size();
}

}  // namespace aadlsched::server
