#include "server/cache.hpp"

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "core/result_json.hpp"
#include "util/json.hpp"

namespace aadlsched::server {

namespace fs = std::filesystem;

ResultCache::ResultCache(CacheConfig cfg)
    : cfg_(std::move(cfg)), memory_(cfg_.memory_capacity) {
  if (!cfg_.disk_dir.empty()) {
    std::error_code ec;
    fs::create_directories(cfg_.disk_dir, ec);
    // A failed create degrades to memory-only: lookups will miss, stores
    // will fail silently. The daemon surfaces the misconfiguration at
    // startup instead (it stats the directory).
  }
}

std::string ResultCache::disk_path(const std::string& key) const {
  // Keys are hex digests — already safe as file names.
  return cfg_.disk_dir + "/" + key + ".json";
}

std::optional<ResultCache::Entry> ResultCache::disk_load(
    const std::string& key) const {
  std::ifstream in(disk_path(key));
  if (!in) return std::nullopt;
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string json = buf.str();
  while (!json.empty() && (json.back() == '\n' || json.back() == '\r'))
    json.pop_back();
  // The file *is* the canonical result object; recover the outcome from its
  // "outcome" field and reject anything torn or foreign.
  const auto doc = util::parse_json(json);
  if (!doc || !doc->is_object()) return std::nullopt;
  const auto* outcome = doc->get("outcome");
  if (!outcome || !outcome->is_string()) return std::nullopt;
  const auto parsed = core::outcome_from_string(outcome->as_string());
  if (!parsed || !cacheable(*parsed)) return std::nullopt;
  return Entry{*parsed, std::move(json)};
}

std::optional<ResultCache::Hit> ResultCache::lookup(const std::string& key) {
  {
    std::lock_guard lock(mu_);
    if (auto entry = memory_.get(key))
      return Hit{entry->outcome, std::move(entry->result_json), false};
  }
  if (cfg_.disk_dir.empty()) return std::nullopt;
  // Disk I/O outside the lock; a racing store of the same key is benign
  // (same bytes by construction — keys are content hashes).
  auto entry = disk_load(key);
  if (!entry) return std::nullopt;
  {
    std::lock_guard lock(mu_);
    memory_.put(key, *entry);
  }
  return Hit{entry->outcome, std::move(entry->result_json), true};
}

void ResultCache::store(const std::string& key, core::Outcome outcome,
                        const std::string& result_json) {
  if (!cacheable(outcome)) return;
  {
    std::lock_guard lock(mu_);
    memory_.put(key, Entry{outcome, result_json});
  }
  if (cfg_.disk_dir.empty()) return;
  const std::string final_path = disk_path(key);
  const std::string tmp_path =
      final_path + ".tmp." + std::to_string(::getpid());
  {
    std::ofstream out(tmp_path, std::ios::trunc);
    if (!out) return;  // read-only dir: memory tier still works
    out << result_json << '\n';
  }
  std::error_code ec;
  fs::rename(tmp_path, final_path, ec);
  if (ec) fs::remove(tmp_path, ec);
}

std::uint64_t ResultCache::evictions() const {
  std::lock_guard lock(mu_);
  return memory_.evictions();
}

std::uint64_t ResultCache::entries() const {
  std::lock_guard lock(mu_);
  return memory_.size();
}

}  // namespace aadlsched::server
