#include "server/protocol.hpp"

#include "core/result_json.hpp"
#include "util/json.hpp"

namespace aadlsched::server {

std::string_view to_string(Op op) {
  switch (op) {
    case Op::Analyze: return "analyze";
    case Op::Stats: return "stats";
    case Op::Ping: return "ping";
    case Op::Shutdown: return "shutdown";
  }
  return "?";
}

std::optional<Op> op_from_string(std::string_view s) {
  for (const Op op : {Op::Analyze, Op::Stats, Op::Ping, Op::Shutdown})
    if (s == to_string(op)) return op;
  return std::nullopt;
}

std::optional<Request> parse_request(std::string_view line,
                                     std::string& error) {
  const auto doc = util::parse_json(line, &error);
  if (!doc) return std::nullopt;
  if (!doc->is_object()) {
    error = "request must be a JSON object";
    return std::nullopt;
  }
  if (const auto* v = doc->get("v"); v && v->as_int() != kProtocolVersion) {
    error = "unsupported protocol version " + std::to_string(v->as_int());
    return std::nullopt;
  }
  const auto* op_field = doc->get("op");
  if (!op_field || !op_field->is_string()) {
    error = "missing \"op\"";
    return std::nullopt;
  }
  const auto op = op_from_string(op_field->as_string());
  if (!op) {
    error = "unknown op \"" + op_field->as_string() + '"';
    return std::nullopt;
  }

  Request req;
  req.op = *op;
  if (const auto* id = doc->get("id")) req.id = id->as_string();
  if (req.op != Op::Analyze) return req;

  const auto* model = doc->get("model");
  const auto* root = doc->get("root");
  if (!model || !model->is_string() || model->as_string().empty()) {
    error = "analyze request needs a non-empty \"model\"";
    return std::nullopt;
  }
  if (!root || !root->is_string() || root->as_string().empty()) {
    error = "analyze request needs a non-empty \"root\"";
    return std::nullopt;
  }
  req.model = model->as_string();
  req.root = root->as_string();
  if (const auto* nc = doc->get("no_cache")) req.no_cache = nc->as_bool();
  if (const auto* r = doc->get("resume")) req.resume = r->as_bool();
  if (const auto* nk = doc->get("no_checkpoint"))
    req.no_checkpoint = nk->as_bool();
  if (const auto* opts = doc->get("options"); opts && opts->is_object()) {
    RequestOptions& o = req.options;
    if (const auto* q = opts->get("quantum_ms"))
      o.quantum_ns = q->as_int(1) * 1'000'000;
    if (const auto* q = opts->get("quantum_ns")) o.quantum_ns = q->as_int(o.quantum_ns);
    if (const auto* m = opts->get("max_states"))
      o.max_states = static_cast<std::uint64_t>(m->as_int(5'000'000));
    if (const auto* d = opts->get("deadline_ms")) o.deadline_ms = d->as_double();
    if (const auto* m = opts->get("memory_budget_mb"))
      o.memory_budget_mb = static_cast<std::uint64_t>(m->as_int());
    if (const auto* w = opts->get("workers"))
      o.workers = static_cast<std::size_t>(w->as_int(1));
    if (const auto* l = opts->get("lint")) o.run_lint = l->as_bool(true);
    if (const auto* lc = opts->get("late_completion"))
      o.late_completion = lc->as_bool();
    if (const auto* nr = opts->get("no_reduction"))
      o.no_reduction = nr->as_bool();
    if (const auto* e = opts->get("engine")) {
      const auto parsed = e->is_string()
                              ? core::engine_from_string(e->as_string())
                              : std::nullopt;
      if (!parsed) {
        error = "options.engine must be \"enumerative\", \"symbolic\" or "
                "\"auto\"";
        return std::nullopt;
      }
      o.engine = *parsed;
    }
    if (o.quantum_ns <= 0) {
      error = "options.quantum_ms must be positive";
      return std::nullopt;
    }
  }
  return req;
}

std::string render_request(const Request& req) {
  util::JsonWriter w;
  w.begin_object();
  w.key("v").value(kProtocolVersion);
  w.key("op").value(to_string(req.op));
  if (!req.id.empty()) w.key("id").value(req.id);
  if (req.op == Op::Analyze) {
    w.key("model").value(req.model);
    w.key("root").value(req.root);
    if (req.no_cache) w.key("no_cache").value(true);
    if (req.resume) w.key("resume").value(true);
    if (req.no_checkpoint) w.key("no_checkpoint").value(true);
    const RequestOptions& o = req.options;
    w.key("options").begin_object();
    w.key("quantum_ns").value(o.quantum_ns);
    w.key("max_states").value(o.max_states);
    w.key("deadline_ms").value(o.deadline_ms);
    w.key("memory_budget_mb").value(o.memory_budget_mb);
    w.key("workers").value(static_cast<std::uint64_t>(o.workers));
    w.key("lint").value(o.run_lint);
    w.key("late_completion").value(o.late_completion);
    w.key("no_reduction").value(o.no_reduction);
    w.key("engine").value(core::to_string(o.engine));
    w.end_object();
  }
  w.end_object();
  return std::move(w).str();
}

std::string render_response(const Response& resp) {
  util::JsonWriter w;
  w.begin_object();
  w.key("v").value(kProtocolVersion);
  w.key("op").value(resp.ok ? to_string(resp.op) : "error");
  if (!resp.id.empty()) w.key("id").value(resp.id);
  w.key("ok").value(resp.ok);
  if (!resp.ok) {
    w.key("error").value(resp.error);
    w.end_object();
    return std::move(w).str();
  }
  switch (resp.op) {
    case Op::Analyze:
      w.key("outcome").value(core::to_string(resp.outcome));
      w.key("fingerprint").value(resp.fingerprint);
      w.key("cached").value(resp.cached);
      w.key("cache_tier").value(resp.cache_tier);
      w.key("served_ms").value(resp.served_ms);
      if (resp.resumed) {
        w.key("resumed").value(true);
        w.key("resumed_depth").value(resp.resumed_depth);
      }
      if (resp.checkpoint_captured) w.key("checkpoint_captured").value(true);
      w.key("result").raw(resp.result_json);  // must stay the last field
      break;
    case Op::Stats:
      w.key("stats").raw(resp.stats_json);  // must stay the last field
      break;
    case Op::Ping:
    case Op::Shutdown:
      break;
  }
  w.end_object();
  return std::move(w).str();
}

std::string_view extract_trailing_object(std::string_view line,
                                         std::string_view key) {
  // The renderer guarantees `"key": {...}}` is the tail of the line; find
  // the *last* marker occurrence so a model text containing the marker
  // string cannot confuse the client (requests embed models; responses
  // never re-embed them, but stay paranoid).
  const std::string marker = "\"" + std::string(key) + "\": ";
  const auto pos = line.rfind(marker);
  if (pos == std::string_view::npos) return {};
  const std::size_t start = pos + marker.size();
  if (start >= line.size() || line[start] != '{') return {};
  // Trim the single closing brace of the enclosing response object.
  std::string_view tail = line.substr(start);
  while (!tail.empty() && (tail.back() == '\n' || tail.back() == '\r'))
    tail.remove_suffix(1);
  if (tail.empty() || tail.back() != '}') return {};
  tail.remove_suffix(1);
  return tail;
}

std::optional<Response> parse_response(std::string_view line,
                                       std::string& error) {
  const auto doc = util::parse_json(line, &error);
  if (!doc) return std::nullopt;
  if (!doc->is_object()) {
    error = "response must be a JSON object";
    return std::nullopt;
  }
  Response resp;
  if (const auto* op = doc->get("op")) {
    if (const auto parsed = op_from_string(op->as_string()))
      resp.op = *parsed;
  }
  if (const auto* id = doc->get("id")) resp.id = id->as_string();
  resp.ok = doc->get("ok") && doc->get("ok")->as_bool();
  if (const auto* err = doc->get("error")) resp.error = err->as_string();
  if (const auto* out = doc->get("outcome")) {
    if (const auto parsed = core::outcome_from_string(out->as_string()))
      resp.outcome = *parsed;
  }
  if (const auto* fp = doc->get("fingerprint"))
    resp.fingerprint = fp->as_string();
  if (const auto* c = doc->get("cached")) resp.cached = c->as_bool();
  if (const auto* t = doc->get("cache_tier")) resp.cache_tier = t->as_string();
  if (const auto* s = doc->get("served_ms")) resp.served_ms = s->as_double();
  if (const auto* r = doc->get("resumed")) resp.resumed = r->as_bool();
  if (const auto* d = doc->get("resumed_depth"))
    resp.resumed_depth = static_cast<std::uint64_t>(d->as_int());
  if (const auto* c = doc->get("checkpoint_captured"))
    resp.checkpoint_captured = c->as_bool();
  resp.result_json = std::string(extract_trailing_object(line, "result"));
  resp.stats_json = std::string(extract_trailing_object(line, "stats"));
  return resp;
}

}  // namespace aadlsched::server
