// Retrying daemon client: the transport policy behind `aadlsched --connect`
// and the experiment harness's daemon backend. One request line out, one
// response line back, with bounded exponential backoff across transport
// failures (connection refused, timeout, truncated response). A daemon that
// *answers* with an error is never retried — that is an analysis/protocol
// failure, not unreachability, and retrying it would just repeat the work.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "core/analyzer.hpp"
#include "server/protocol.hpp"

namespace aadlsched::server {

/// Per-attempt timeouts plus bounded retry. Defaults mirror the CLI: a 2 s
/// connect deadline, no I/O deadline (explorations can legitimately run
/// long), three retries.
struct RetryPolicy {
  double connect_timeout_ms = 2000;
  double io_timeout_ms = 0;
  unsigned retries = 3;
};

/// Map local analyzer options onto the wire options. Shared by the CLI and
/// the experiment harness so both submit byte-identical option objects (and
/// therefore hit the same cache keys) for the same configuration.
RequestOptions to_request_options(const core::AnalyzerOptions& opts);

/// Invoked before each backoff sleep with the 1-based attempt about to run,
/// the policy's retry budget, the chosen delay, and the failure that caused
/// the retry. The CLI logs these to stderr; batch runners may stay quiet.
using RetryObserver = std::function<void(
    unsigned attempt, unsigned retries, double delay_ms,
    const std::string& error)>;

/// Send one request and read one response, retrying transport failures with
/// exponential backoff (base 100 ms doubling, capped at 2 s) plus uniform
/// jitter in [0, base/2) to decorrelate a herd of clients hammering one
/// restarting daemon. Returns nullopt with the last transport error in
/// `error` once the retry budget is exhausted.
std::optional<Response> request_with_retry(const std::string& host,
                                           std::uint16_t port,
                                           const Request& req,
                                           const RetryPolicy& policy,
                                           std::string& error,
                                           const RetryObserver& on_retry = {});

}  // namespace aadlsched::server
