// Crash-safety primitives for the shared on-disk cache (DESIGN.md §15).
//
// The result and checkpoint stores (cache.hpp) write one file per key via
// tmp + rename. That alone survives a single daemon's crash, but ROADMAP
// item 4 wants N `aadlschedd` processes pointed at ONE cache directory; this
// file adds the pieces that make that safe:
//
//   * a trailing content digest sealed into every disk artifact, verified on
//     every read (append_digest / verify_trailing_digest) — a torn, truncated
//     or bit-rotted file is detected and quarantined, never served;
//   * an advisory flock(2)-based directory lock (DirLock) scoping every
//     multi-file maintenance operation (GC, sweeps, registry updates) so two
//     daemons never garbage-collect the same directory concurrently;
//   * pid-liveness-aware tmp cleanup: `.tmp.<pid>` leftovers are reaped only
//     when the owning process is dead (kill(pid,0) == ESRCH) or the file has
//     outlived a grace window — a sibling daemon mid-write is left alone;
//   * a psingleton-style instance registry (`.instances/<pid>`) so daemons
//     sharing a directory discover each other and report cohabitants in
//     `stats`;
//   * size-budgeted GC with quotas: when the directory's artifact bytes
//     exceed the cap, the oldest entries (by atime, falling back to mtime)
//     are evicted first, under the directory lock, with counters.
//
// DiskJanitor bundles the registry + sweeps + GC behind one object the
// Service drives from its maintenance thread. Everything here degrades
// gracefully: a failed lock/registry/GC operation is counted, never fatal —
// the cache itself keeps working (reads stay digest-verified regardless).
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <sys/types.h>
#include <vector>

namespace aadlsched::server {

// --- content digests --------------------------------------------------------

/// Seal `body` (which must end in '\n') with a trailing digest line:
/// "digest <16 hex>\n" over every preceding byte. The exact format
/// versa::serialize_checkpoint already uses, so one verifier covers both
/// artifact kinds.
void append_digest(std::string& body);

/// True iff `text` ends with a digest line that matches its body. Rejects
/// absent/garbled digest lines and trailing bytes after the digest.
bool verify_trailing_digest(std::string_view text);

/// Body bytes with the digest line removed (verifying first); nullopt when
/// verification fails.
std::optional<std::string_view> strip_trailing_digest(std::string_view text);

// --- pid liveness and tmp hygiene ------------------------------------------

/// kill(pid, 0) probe: false only for ESRCH (definitely gone). A pid we
/// cannot signal (EPERM) is conservatively treated as alive.
bool pid_alive(pid_t pid);

/// Remove `<name>.tmp.<pid>` leftovers in `dir` whose owner is dead, or
/// which are older than `grace_seconds` whatever the pid says (pid reuse,
/// foreign-host writers on shared storage). A live sibling's in-flight tmp
/// file inside the grace window is left untouched. Returns files removed.
std::uint64_t sweep_stale_tmp_files(const std::string& dir,
                                    double grace_seconds);

// --- advisory directory lock ------------------------------------------------

/// flock(2) on `<dir>/.dirlock`. Advisory by design: readers and tmp+rename
/// writers never take it (their atomicity does not need it); maintenance
/// operations that scan-and-delete do, so concurrent daemons serialize their
/// sweeps instead of double-deleting or racing the registry.
class DirLock {
 public:
  explicit DirLock(std::string dir);
  ~DirLock();

  DirLock(const DirLock&) = delete;
  DirLock& operator=(const DirLock&) = delete;

  /// Blocking exclusive acquire; false when the lock file cannot be opened
  /// (degraded mode: caller proceeds unlocked rather than wedging).
  bool lock();
  /// Non-blocking acquire; false when held elsewhere or unavailable.
  bool try_lock();
  void unlock();
  bool held() const { return held_; }

  /// RAII scope: acquires in the constructor (blocking), releases in the
  /// destructor. `ok()` is false when the acquire failed and the scope is
  /// running unlocked.
  class Scope {
   public:
    explicit Scope(DirLock& l) : lock_(l), ok_(l.lock()) {}
    ~Scope() {
      if (ok_) lock_.unlock();
    }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;
    bool ok() const { return ok_; }

   private:
    DirLock& lock_;
    bool ok_;
  };

 private:
  std::string path_;
  int fd_ = -1;
  bool held_ = false;
};

// --- instance registry ------------------------------------------------------

struct InstanceInfo {
  pid_t pid = 0;
  std::string started;  // ISO-ish wall-clock string, informational only
};

// --- size-budgeted GC -------------------------------------------------------

struct GcStats {
  std::uint64_t runs = 0;           // sweeps that evaluated the budget
  std::uint64_t removed_files = 0;  // artifacts evicted under the cap
  std::uint64_t removed_bytes = 0;
  std::uint64_t remove_failures = 0;  // fs::remove failed (incl. injected)
  std::uint64_t tmp_swept = 0;        // stale tmp leftovers reaped
};

/// One GC pass over `dir`: when the summed size of `.json` + `.ckpt`
/// artifacts exceeds `cap_bytes`, delete oldest-first (atime, mtime
/// fallback) until under the cap. Caller holds the directory lock. Every
/// removal goes through the `gc.remove` fault-injection site.
GcStats run_disk_gc(const std::string& dir, std::uint64_t cap_bytes);

// --- the janitor ------------------------------------------------------------

/// The per-directory maintenance agent a Service owns when its disk tier is
/// enabled: registers this process in the shared directory, and on every
/// sweep() (startup + the maintenance thread's ticks) takes the directory
/// lock to reap dead instances, clean stale tmp files, and enforce the size
/// budget. All counters are cumulative and thread-safe to sample.
class DiskJanitor {
 public:
  struct Config {
    std::string dir;
    std::uint64_t cap_bytes = 0;      // 0 = no size budget (GC disabled)
    double tmp_grace_seconds = 300;   // live-pid tmp files younger than this
                                      // survive the sweep
  };

  explicit DiskJanitor(Config cfg);
  ~DiskJanitor();

  DiskJanitor(const DiskJanitor&) = delete;
  DiskJanitor& operator=(const DiskJanitor&) = delete;

  /// One maintenance pass (lock -> reap dead registry entries -> sweep
  /// stale tmp -> GC). Safe to call from any thread, at any time.
  void sweep();

  /// Registered instances whose pid is alive, this process included.
  /// Dead entries found along the way are reaped (under the lock).
  std::vector<InstanceInfo> live_instances();

  GcStats gc_stats() const;
  /// Live cohabitants at the last sweep/query (gauge, includes self).
  std::uint64_t instances_gauge() const {
    return instances_.load(std::memory_order_relaxed);
  }

  const std::string& dir() const { return cfg_.dir; }

 private:
  void register_self();
  void deregister_self();
  /// Scan + reap the registry; caller holds op_mu_ and the dir lock.
  std::vector<InstanceInfo> scan_registry();

  Config cfg_;
  /// flock(2) excludes other *processes*; within this process the janitor's
  /// own threads (maintenance sweep vs. a stats query) serialize on op_mu_,
  /// because a second flock on the same fd would succeed trivially.
  std::mutex op_mu_;
  DirLock lock_;  // guarded by op_mu_
  std::string self_entry_;  // registry file path for this pid
  mutable std::mutex mu_;   // guards gc_ accumulation
  GcStats gc_;
  std::atomic<std::uint64_t> instances_{1};
};

}  // namespace aadlsched::server
