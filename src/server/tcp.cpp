#include "server/tcp.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "util/string_utils.hpp"

namespace aadlsched::server {

namespace {

bool send_all(int fd, std::string_view data) {
  while (!data.empty()) {
    const ssize_t n = ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    data.remove_prefix(static_cast<std::size_t>(n));
  }
  return true;
}

/// Read up to the next '\n' into `line` (newline stripped), buffering any
/// overshoot in `buffer`. False on EOF/error with nothing pending.
bool recv_line(int fd, std::string& buffer, std::string& line) {
  while (true) {
    const auto nl = buffer.find('\n');
    if (nl != std::string::npos) {
      line = buffer.substr(0, nl);
      buffer.erase(0, nl + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return true;
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return false;
    buffer.append(chunk, static_cast<std::size_t>(n));
  }
}

}  // namespace

bool parse_endpoint(std::string_view spec, std::string& host,
                    std::uint16_t& port) {
  const auto colon = spec.rfind(':');
  if (colon == std::string_view::npos) return false;
  host = std::string(spec.substr(0, colon));
  if (host.empty()) host = "127.0.0.1";
  const auto p = util::parse_int64(spec.substr(colon + 1));
  if (!p || *p < 1 || *p > 65535) return false;
  port = static_cast<std::uint16_t>(*p);
  return true;
}

// ---------------------------------------------------------------------------
// TcpServer
// ---------------------------------------------------------------------------

TcpServer::TcpServer(Service& service, TcpConfig cfg)
    : service_(service), cfg_(std::move(cfg)) {}

TcpServer::~TcpServer() { stop(); }

bool TcpServer::start(std::string& error) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    error = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(cfg_.port);
  if (::inet_pton(AF_INET, cfg_.host.c_str(), &addr.sin_addr) != 1) {
    error = "bad bind address '" + cfg_.host + "'";
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) <
      0) {
    error = "bind " + cfg_.host + ":" + std::to_string(cfg_.port) + ": " +
            std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  if (::listen(listen_fd_, 64) < 0) {
    error = std::string("listen: ") + std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
  port_ = ntohs(bound.sin_port);

  accept_thread_ = std::thread([this] { accept_loop(); });
  return true;
}

void TcpServer::accept_loop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listener closed by stop()
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    std::lock_guard lock(mu_);
    if (stopping_.load(std::memory_order_relaxed)) {
      ::close(fd);
      break;
    }
    conn_fds_.push_back(fd);
    conn_threads_.emplace_back([this, fd] { connection_loop(fd); });
  }
}

void TcpServer::connection_loop(int fd) {
  std::string buffer, line;
  while (!stopping_.load(std::memory_order_relaxed) &&
         recv_line(fd, buffer, line)) {
    if (line.empty()) continue;  // tolerate keep-alive blank lines
    const std::string response = service_.handle_line(line);
    if (!send_all(fd, response) || !send_all(fd, "\n")) break;
    // A shutdown request flips the service; wake the daemon's main thread
    // after the ok response has been sent so the client sees the ack.
    if (service_.shutting_down()) {
      std::lock_guard lock(mu_);
      shutdown_requested_ = true;
      cv_shutdown_.notify_all();
      break;
    }
  }
  // De-register before closing so stop() can never shut down a recycled
  // descriptor: an fd is either still listed (stop() pokes it under mu_) or
  // already owned again by this thread alone.
  {
    std::lock_guard lock(mu_);
    conn_fds_.erase(std::remove(conn_fds_.begin(), conn_fds_.end(), fd),
                    conn_fds_.end());
  }
  ::shutdown(fd, SHUT_RDWR);
  ::close(fd);
}

void TcpServer::wait_shutdown() {
  std::unique_lock lock(mu_);
  cv_shutdown_.wait(lock, [&] { return shutdown_requested_; });
}

void TcpServer::stop() {
  bool was_stopping = stopping_.exchange(true);
  {
    std::lock_guard lock(mu_);
    shutdown_requested_ = true;
    cv_shutdown_.notify_all();
  }
  if (was_stopping) {
    // A second caller (destructor after explicit stop) has nothing to join.
    return;
  }
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> threads;
  {
    // Poke live connections under the lock (see connection_loop teardown);
    // their threads erase and close the fds themselves.
    std::lock_guard lock(mu_);
    for (const int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
    threads.swap(conn_threads_);
  }
  for (std::thread& t : threads) t.join();
  listen_fd_ = -1;
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

Client::~Client() { close(); }

bool Client::connect(const std::string& host, std::uint16_t port,
                     std::string& error) {
  close();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    error = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    error = "bad host '" + host + "' (numeric IPv4 expected)";
    close();
    return false;
  }
  const std::string where = host + ":" + std::to_string(port);
  if (timeouts_.connect_ms > 0) {
    // Non-blocking connect + poll, so an unroutable daemon address fails
    // after connect_ms instead of the kernel's multi-minute SYN backoff.
    const int flags = ::fcntl(fd_, F_GETFL, 0);
    ::fcntl(fd_, F_SETFL, flags | O_NONBLOCK);
    int rc = ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr);
    if (rc < 0 && errno == EINPROGRESS) {
      pollfd pfd{fd_, POLLOUT, 0};
      do {
        rc = ::poll(&pfd, 1, static_cast<int>(timeouts_.connect_ms));
      } while (rc < 0 && errno == EINTR);
      if (rc == 0) {
        error = "connect " + where + ": timed out after " +
                std::to_string(static_cast<long>(timeouts_.connect_ms)) +
                " ms";
        close();
        return false;
      }
      int so_error = 0;
      socklen_t len = sizeof so_error;
      if (rc < 0 ||
          ::getsockopt(fd_, SOL_SOCKET, SO_ERROR, &so_error, &len) < 0 ||
          so_error != 0) {
        error = "connect " + where + ": " +
                std::strerror(so_error != 0 ? so_error : errno);
        close();
        return false;
      }
    } else if (rc < 0) {
      error = "connect " + where + ": " + std::strerror(errno);
      close();
      return false;
    }
    ::fcntl(fd_, F_SETFL, flags);  // back to blocking for line I/O
  } else if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                       sizeof addr) < 0) {
    error = "connect " + where + ": " + std::strerror(errno);
    close();
    return false;
  }
  if (timeouts_.io_ms > 0) {
    timeval tv{};
    tv.tv_sec = static_cast<time_t>(timeouts_.io_ms / 1000.0);
    tv.tv_usec = static_cast<suseconds_t>(
        (timeouts_.io_ms - static_cast<double>(tv.tv_sec) * 1000.0) * 1000.0);
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
    ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return true;
}

bool Client::roundtrip(const std::string& request_line,
                       std::string& response_line, std::string& error) {
  if (fd_ < 0) {
    error = "not connected";
    return false;
  }
  if (!send_all(fd_, request_line) || !send_all(fd_, "\n")) {
    error = std::string("send: ") + std::strerror(errno);
    return false;
  }
  if (!recv_line(fd_, rx_buffer_, response_line)) {
    error = (errno == EAGAIN || errno == EWOULDBLOCK)
                ? "receive timed out before a response arrived"
                : "connection closed before a response arrived";
    return false;
  }
  return true;
}

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  rx_buffer_.clear();
}

}  // namespace aadlsched::server
