// Two-tier content-addressed result cache.
//
// Tier 1 is a bounded in-memory LRU; tier 2 is an optional on-disk store
// (one file per key, written atomically via rename) that survives daemon
// restarts — a second daemon pointed at the same directory serves warm
// verdicts without re-exploring. A disk hit is promoted into the memory
// tier.
//
// Keys combine the model's canonical content fingerprint
// (aadl::instance_fingerprint) with a hash of the *semantic* analysis
// options (quantum, execution-time model, lint) — two requests that could
// legitimately produce different verdicts never share a key.
//
// Soundness policy: only *conclusive* outcomes (Schedulable /
// NotSchedulable) are cached. A conclusive verdict is invariant to resource
// budgets — a deadlock is a deadlock no matter the deadline that was set,
// and "full space explored, no deadlock" does not depend on how much
// headroom was left — so serving it for any later budget is correct. An
// Inconclusive or Error outcome, by contrast, depends on the budget (or on
// transient front-end state) and must be recomputed, possibly with a
// bigger envelope. cacheable() encodes this.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>

#include "core/analyzer.hpp"
#include "util/lru_cache.hpp"

namespace aadlsched::server {

struct CacheConfig {
  std::size_t memory_capacity = 1024;  // result objects are small (~300 B)
  std::string disk_dir;                // "" disables the disk tier
};

/// Budget-invariant outcomes only (see soundness policy above).
inline bool cacheable(core::Outcome o) {
  return o == core::Outcome::Schedulable || o == core::Outcome::NotSchedulable;
}

class ResultCache {
 public:
  struct Hit {
    core::Outcome outcome = core::Outcome::Error;
    std::string result_json;
    bool from_disk = false;
  };

  explicit ResultCache(CacheConfig cfg);

  /// Memory tier first, then disk (promoting on a disk hit).
  std::optional<Hit> lookup(const std::string& key);

  /// No-op unless cacheable(outcome). Disk writes are atomic
  /// (tmp + rename) so a concurrent reader never sees a torn file.
  void store(const std::string& key, core::Outcome outcome,
             const std::string& result_json);

  std::uint64_t evictions() const;
  std::uint64_t entries() const;
  bool has_disk_tier() const { return !cfg_.disk_dir.empty(); }

 private:
  struct Entry {
    core::Outcome outcome;
    std::string result_json;
  };

  std::string disk_path(const std::string& key) const;
  std::optional<Entry> disk_load(const std::string& key) const;

  CacheConfig cfg_;
  mutable std::mutex mu_;
  util::LruCache<std::string, Entry> memory_;
};

}  // namespace aadlsched::server
