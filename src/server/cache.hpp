// Two-tier content-addressed result cache.
//
// Tier 1 is a bounded in-memory LRU; tier 2 is an optional on-disk store
// (one file per key, written atomically via rename) that survives daemon
// restarts — a second daemon pointed at the same directory serves warm
// verdicts without re-exploring. A disk hit is promoted into the memory
// tier.
//
// Keys combine the model's canonical content fingerprint
// (aadl::instance_fingerprint) with a hash of the *semantic* analysis
// options (quantum, execution-time model, lint) — two requests that could
// legitimately produce different verdicts never share a key.
//
// Soundness policy: only *conclusive* outcomes (Schedulable /
// NotSchedulable) are cached. A conclusive verdict is invariant to resource
// budgets — a deadlock is a deadlock no matter the deadline that was set,
// and "full space explored, no deadlock" does not depend on how much
// headroom was left — so serving it for any later budget is correct. An
// Inconclusive or Error outcome, by contrast, depends on the budget (or on
// transient front-end state) and must be recomputed, possibly with a
// bigger envelope. cacheable() encodes this.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>

#include "core/analyzer.hpp"
#include "util/lru_cache.hpp"

namespace aadlsched::server {

struct CacheConfig {
  std::size_t memory_capacity = 1024;  // result objects are small (~300 B)
  std::string disk_dir;                // "" disables the disk tier

  // --- checkpoint tier (warm re-exploration, DESIGN.md §12) -------------
  /// Keep exploration checkpoints of budget-bound runs so a later request
  /// with a larger envelope resumes instead of re-exploring from scratch.
  bool checkpoints = true;
  /// Checkpoints are big (the whole wavefront, often MBs) — the in-memory
  /// tier is deliberately tiny compared to the result cache.
  std::size_t checkpoint_memory_capacity = 4;
  /// Cap on `.ckpt` files kept in disk_dir; oldest (by mtime) are deleted
  /// first when over the cap. 0 disables the checkpoint disk tier.
  std::size_t checkpoint_disk_cap = 16;
};

/// Budget-invariant outcomes only (see soundness policy above).
inline bool cacheable(core::Outcome o) {
  return o == core::Outcome::Schedulable || o == core::Outcome::NotSchedulable;
}

class ResultCache {
 public:
  struct Hit {
    core::Outcome outcome = core::Outcome::Error;
    std::string result_json;
    bool from_disk = false;
  };

  explicit ResultCache(CacheConfig cfg);

  /// Memory tier first, then disk (promoting on a disk hit).
  std::optional<Hit> lookup(const std::string& key);

  /// No-op unless cacheable(outcome). Disk writes are atomic
  /// (tmp + rename) and sealed with a trailing content digest that
  /// lookup() verifies, so a concurrent reader never sees a torn file and
  /// a corrupted one is never served.
  void store(const std::string& key, core::Outcome outcome,
             const std::string& result_json);

  std::uint64_t evictions() const;
  std::uint64_t entries() const;
  /// Corrupt disk entries quarantined (deleted) on load. Each costs one
  /// cache miss and then self-heals: the re-run's store rewrites the file.
  std::uint64_t corrupt_evictions() const {
    return corrupt_evictions_.load(std::memory_order_relaxed);
  }
  /// Disk stores that never landed (tmp write or rename failed, including
  /// injected faults). The memory tier still holds the entry; only
  /// persistence was lost. First failure emits a one-shot diagnostic.
  std::uint64_t disk_store_failures() const {
    return disk_store_failures_.load(std::memory_order_relaxed);
  }
  bool has_disk_tier() const { return !cfg_.disk_dir.empty(); }

 private:
  struct Entry {
    core::Outcome outcome;
    std::string result_json;
  };

  std::string disk_path(const std::string& key) const;
  std::optional<Entry> disk_load(const std::string& key) const;
  void note_store_failure(const std::string& path, const char* what);

  CacheConfig cfg_;
  mutable std::mutex mu_;
  util::LruCache<std::string, Entry> memory_;
  mutable std::atomic<std::uint64_t> corrupt_evictions_{0};
  std::atomic<std::uint64_t> disk_store_failures_{0};
  std::atomic<bool> store_diag_emitted_{false};
};

/// Third cache tier: serialized exploration checkpoints of budget-bound
/// runs (versa::serialize_checkpoint blobs), keyed exactly like results.
/// Unlike results, checkpoints are *not* verdicts — they are resumable
/// work-in-progress — so the store is small, bounded on both tiers, and an
/// entry is dropped the moment a conclusive result lands for its key
/// (the result cache supersedes it).
///
/// Blobs are near-opaque bytes, but every disk load re-verifies the
/// trailing digest versa::serialize_checkpoint seals into the blob (the
/// same seal diskstore.hpp applies to result files) and quarantines
/// mismatches — a torn `.ckpt` from a killed writer is never handed to
/// versa::parse_checkpoint. A checkpoint that fails to restore for deeper
/// reasons still costs one cold run and is erased by the service.
class CheckpointStore {
 public:
  CheckpointStore(std::size_t memory_capacity, std::size_t disk_cap,
                  std::string disk_dir);

  /// Memory tier first, then disk (promoting on a disk hit).
  std::optional<std::string> lookup(const std::string& key);

  /// Store on both tiers (disk via tmp + rename), then enforce the disk
  /// cap by deleting the oldest `.ckpt` files.
  void store(const std::string& key, const std::string& checkpoint);

  /// Drop a checkpoint everywhere (conclusive verdict reached, or the
  /// blob failed to restore).
  void erase(const std::string& key);

  std::uint64_t evictions() const;
  std::uint64_t entries() const;
  /// Blobs whose embedded trailing digest did not verify on disk load;
  /// quarantined (deleted) exactly like corrupt result entries.
  std::uint64_t corrupt_evictions() const {
    return corrupt_evictions_.load(std::memory_order_relaxed);
  }
  /// Disk stores that never landed (tmp write or rename failed, including
  /// injected faults); mirrors ResultCache::disk_store_failures.
  std::uint64_t disk_store_failures() const {
    return disk_store_failures_.load(std::memory_order_relaxed);
  }
  bool has_disk_tier() const { return disk_cap_ > 0 && !disk_dir_.empty(); }

 private:
  std::string disk_path(const std::string& key) const;
  void enforce_disk_cap();  // caller must NOT hold mu_ (does file I/O)
  void note_store_failure(const std::string& path, const char* what);

  std::size_t disk_cap_;
  std::string disk_dir_;
  mutable std::mutex mu_;
  util::LruCache<std::string, std::string> memory_;
  std::uint64_t disk_evictions_ = 0;
  mutable std::atomic<std::uint64_t> corrupt_evictions_{0};
  std::atomic<std::uint64_t> disk_store_failures_{0};
  std::atomic<bool> store_diag_emitted_{false};
};

}  // namespace aadlsched::server
