// Blocking-time analysis for shared logical resources under fixed-priority
// scheduling (ROADMAP item 2, closed-form half). Tasks lock resources for
// bounded critical sections; the concurrency-control protocol determines the
// worst-case time a task can be blocked by lower-priority lock holders:
//
//   * PriorityCeiling (PCP/ICPP): a task is blocked at most once, by the
//     single longest critical section of a lower-priority task on a resource
//     whose priority ceiling is at or above the task's priority.
//   * PriorityInheritance (PIP): a task can be blocked once per
//     lower-priority task; each contributes its longest critical section on
//     a resource also used by the task itself or by higher-priority tasks
//     (non-nested sections assumed — the AADL model carries one duration
//     per access, so nesting cannot be expressed).
//   * None: a shared resource without a protocol permits unbounded priority
//     inversion (a preempted lock holder can be starved by middle-priority
//     tasks indefinitely); no finite B_i exists.
//
// The returned terms feed sched::response_time_analysis' blocking hook.
// Over-approximation is sound for the lint vouching discipline: a larger
// B_i only makes the response-time test harder to pass.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "sched/task.hpp"

namespace aadlsched::sched {

enum class LockProtocol : std::uint8_t {
  None,
  PriorityInheritance,
  PriorityCeiling,
};

std::string_view to_string(LockProtocol p);

struct SharedResource {
  std::string name;
  LockProtocol protocol = LockProtocol::None;
};

/// One bounded critical section: `task` (index into TaskSet::tasks) holds
/// `resource` (index into ResourceModel::resources) for at most `duration`.
struct CriticalSection {
  std::size_t task = 0;
  std::size_t resource = 0;
  Time duration = 0;
};

struct ResourceModel {
  std::vector<SharedResource> resources;
  std::vector<CriticalSection> sections;

  /// Distinct tasks with a section on resource r.
  std::size_t user_count(std::size_t r) const;
};

/// Static priority ceiling per resource: the maximum priority among tasks
/// with a critical section on it (-1 for an unused resource).
std::vector<int> priority_ceilings(const TaskSet& ts,
                                   const ResourceModel& rm);

/// Worst-case per-task blocking terms B_i (index-aligned with ts.tasks).
/// Returns nullopt when some B_i is unbounded: a resource with protocol
/// None is shared by two or more tasks (unbounded priority inversion).
std::optional<std::vector<Time>> blocking_terms(const TaskSet& ts,
                                                const ResourceModel& rm);

}  // namespace aadlsched::sched
