// Synthetic workload generation for the benches, the property tests and
// the aadlsched-exp experiment driver.
//
// The paper evaluates on a single worked example (the cruise-control
// system); the schedulable-fraction curves in EXPERIMENTS.md need
// parameterized random task sets. We use the standard recipe: UUniFast for
// unbiased utilization splits, log-uniform periods from a small divisor-
// friendly set (keeps hyperperiods and therefore both the simulator horizon
// and the ACSR state space bounded), deadlines uniform in [C, T].
//
// Utilization realism: quantizing C = llround(u*T) and clamping C >= 1
// (min_wcet_one) shift the realized sum(C/T) away from the requested total —
// UUniFast shares can even round to 0 and get bumped to C = 1. The
// generator therefore records the requested total on the TaskSet
// (TaskSet::requested_utilization) so consumers can bin acceptance curves
// by the *realized* utilization (TaskSet::utilization()) instead of
// silently attributing a drifted task set to the requested grid point.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "sched/task.hpp"
#include "util/rng.hpp"

namespace aadlsched::sched {

struct WorkloadSpec {
  std::size_t task_count = 3;
  double total_utilization = 0.7;
  /// Candidate periods, in quanta. Defaults chosen so hyperperiods stay
  /// small enough for exhaustive exploration.
  std::vector<Time> periods = {4, 5, 8, 10, 16, 20};
  /// D = C + fraction * (T - C); 1.0 = implicit deadlines.
  double deadline_fraction = 1.0;
  /// Ensure every task has wcet >= 1.
  bool min_wcet_one = true;
};

/// UUniFast: split `total` into `n` unbiased utilization shares.
std::vector<double> uunifast(std::size_t n, double total,
                             util::Xoshiro256& rng);

/// Structural validation of a WorkloadSpec: task_count >= 1, a non-empty
/// period set with every period >= 1, total_utilization > 0 (and finite),
/// deadline_fraction in [0, 1]. Returns a diagnostic on the first
/// violation, nullopt when the spec is generable. An empty period set used
/// to underflow `periods.size() - 1` and index out of bounds — validate
/// before generating.
std::optional<std::string> validate_workload_spec(const WorkloadSpec& spec);

/// Validating generator: nullopt + a diagnostic in `error` on an invalid
/// spec, otherwise the task set. Deterministic in `seed`.
std::optional<TaskSet> try_generate_workload(const WorkloadSpec& spec,
                                             std::uint64_t seed,
                                             std::string& error);

/// Generate a periodic task set from the spec. Deterministic in `seed`.
/// An invalid spec yields an *empty* task set (never UB); callers that
/// want the diagnostic use try_generate_workload.
TaskSet generate_workload(const WorkloadSpec& spec, std::uint64_t seed);

}  // namespace aadlsched::sched
