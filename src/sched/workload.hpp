// Synthetic workload generation for the benches and property tests.
//
// The paper evaluates on a single worked example (the cruise-control
// system); the schedulable-fraction curves in EXPERIMENTS.md need
// parameterized random task sets. We use the standard recipe: UUniFast for
// unbiased utilization splits, log-uniform periods from a small divisor-
// friendly set (keeps hyperperiods and therefore both the simulator horizon
// and the ACSR state space bounded), deadlines uniform in [C, T].
#pragma once

#include <cstdint>
#include <vector>

#include "sched/task.hpp"
#include "util/rng.hpp"

namespace aadlsched::sched {

struct WorkloadSpec {
  std::size_t task_count = 3;
  double total_utilization = 0.7;
  /// Candidate periods, in quanta. Defaults chosen so hyperperiods stay
  /// small enough for exhaustive exploration.
  std::vector<Time> periods = {4, 5, 8, 10, 16, 20};
  /// D = C + fraction * (T - C); 1.0 = implicit deadlines.
  double deadline_fraction = 1.0;
  /// Ensure every task has wcet >= 1.
  bool min_wcet_one = true;
};

/// UUniFast: split `total` into `n` unbiased utilization shares.
std::vector<double> uunifast(std::size_t n, double total,
                             util::Xoshiro256& rng);

/// Generate a periodic task set from the spec. Deterministic in `seed`.
TaskSet generate_workload(const WorkloadSpec& spec, std::uint64_t seed);

}  // namespace aadlsched::sched
