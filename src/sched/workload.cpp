#include "sched/workload.hpp"

#include <algorithm>
#include <cmath>

namespace aadlsched::sched {

std::vector<double> uunifast(std::size_t n, double total,
                             util::Xoshiro256& rng) {
  std::vector<double> out(n, 0.0);
  double sum = total;
  for (std::size_t i = 0; i + 1 < n; ++i) {
    const double next =
        sum * std::pow(rng.uniform(),
                       1.0 / static_cast<double>(n - 1 - i));
    out[i] = sum - next;
    sum = next;
  }
  if (n > 0) out[n - 1] = sum;
  return out;
}

std::optional<std::string> validate_workload_spec(const WorkloadSpec& spec) {
  if (spec.task_count < 1)
    return "workload spec: task_count must be >= 1";
  if (spec.periods.empty())
    return "workload spec: period set must be non-empty";
  for (const Time p : spec.periods)
    if (p < 1)
      return "workload spec: every candidate period must be >= 1 quantum "
             "(got " +
             std::to_string(p) + ")";
  if (!(spec.total_utilization > 0.0) ||
      !std::isfinite(spec.total_utilization))
    return "workload spec: total_utilization must be finite and > 0";
  if (!(spec.deadline_fraction >= 0.0 && spec.deadline_fraction <= 1.0))
    return "workload spec: deadline_fraction must be in [0, 1]";
  return std::nullopt;
}

std::optional<TaskSet> try_generate_workload(const WorkloadSpec& spec,
                                             std::uint64_t seed,
                                             std::string& error) {
  if (auto bad = validate_workload_spec(spec)) {
    error = std::move(*bad);
    return std::nullopt;
  }
  util::Xoshiro256 rng(seed);
  TaskSet ts;
  ts.requested_utilization = spec.total_utilization;
  const std::vector<double> us =
      uunifast(spec.task_count, spec.total_utilization, rng);
  for (std::size_t i = 0; i < spec.task_count; ++i) {
    Task t;
    t.name = "tau" + std::to_string(i + 1);
    t.period = spec.periods[static_cast<std::size_t>(
        rng.uniform_int(0, spec.periods.size() - 1))];
    Time c = static_cast<Time>(
        std::llround(us[i] * static_cast<double>(t.period)));
    if (spec.min_wcet_one) c = std::max<Time>(c, 1);
    c = std::min(c, t.period);
    t.wcet = c;
    t.bcet = c;
    const double span = static_cast<double>(t.period - c);
    t.deadline =
        c + static_cast<Time>(std::llround(spec.deadline_fraction * span));
    t.kind = DispatchKind::Periodic;
    ts.tasks.push_back(std::move(t));
  }
  return ts;
}

TaskSet generate_workload(const WorkloadSpec& spec, std::uint64_t seed) {
  std::string error;
  auto ts = try_generate_workload(spec, seed, error);
  return ts ? std::move(*ts) : TaskSet{};
}

}  // namespace aadlsched::sched
