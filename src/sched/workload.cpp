#include "sched/workload.hpp"

#include <algorithm>
#include <cmath>

namespace aadlsched::sched {

std::vector<double> uunifast(std::size_t n, double total,
                             util::Xoshiro256& rng) {
  std::vector<double> out(n, 0.0);
  double sum = total;
  for (std::size_t i = 0; i + 1 < n; ++i) {
    const double next =
        sum * std::pow(rng.uniform(),
                       1.0 / static_cast<double>(n - 1 - i));
    out[i] = sum - next;
    sum = next;
  }
  if (n > 0) out[n - 1] = sum;
  return out;
}

TaskSet generate_workload(const WorkloadSpec& spec, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  TaskSet ts;
  const std::vector<double> us =
      uunifast(spec.task_count, spec.total_utilization, rng);
  for (std::size_t i = 0; i < spec.task_count; ++i) {
    Task t;
    t.name = "tau" + std::to_string(i + 1);
    t.period = spec.periods[static_cast<std::size_t>(
        rng.uniform_int(0, spec.periods.size() - 1))];
    Time c = static_cast<Time>(
        std::llround(us[i] * static_cast<double>(t.period)));
    if (spec.min_wcet_one) c = std::max<Time>(c, 1);
    c = std::min(c, t.period);
    t.wcet = c;
    t.bcet = c;
    const double span = static_cast<double>(t.period - c);
    t.deadline =
        c + static_cast<Time>(std::llround(spec.deadline_fraction * span));
    t.kind = DispatchKind::Periodic;
    ts.tasks.push_back(std::move(t));
  }
  return ts;
}

}  // namespace aadlsched::sched
