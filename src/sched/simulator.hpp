// Discrete-time scheduling simulator — the Cheddar-style baseline (§6).
//
// Simulates preemptive scheduling of independent tasks on one processor in
// integral quanta from the synchronous release (the critical instant), for
// one hyperperiod plus the largest deadline. For independent synchronous
// periodic tasks with constrained deadlines this is an exact decision
// procedure for FP and EDF, which is what makes it a useful oracle against
// both the analytical tests and the ACSR exploration.
//
// Unlike the exploration (§6: "exploring the state space of a formal
// executable model offers exhaustive analysis of all possible behaviors"),
// the simulator follows a single trajectory: WCET for every job, one
// tie-breaking rule. The event-chain experiments (E4) show where that
// under-approximates.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "sched/task.hpp"

namespace aadlsched::sched {

enum class SchedulingPolicy : std::uint8_t {
  FixedPriority,  // uses Task::priority (larger = more important)
  Edf,            // earliest absolute deadline first
  Llf,            // least laxity first
};

struct SimOptions {
  SchedulingPolicy policy = SchedulingPolicy::FixedPriority;
  /// Simulate this many quanta; 0 = one hyperperiod + max deadline.
  Time horizon = 0;
  /// Record a per-quantum timeline (task index running, -1 idle).
  bool record_timeline = false;
};

struct DeadlineMiss {
  std::size_t task = 0;  // index into the task set
  Time release = 0;      // job release time
  Time deadline = 0;     // absolute deadline that was missed
};

struct SimResult {
  bool schedulable = true;
  std::optional<DeadlineMiss> first_miss;
  Time simulated = 0;  // quanta actually simulated
  std::vector<int> timeline;  // if requested: running task per quantum
  std::vector<Time> worst_response;  // observed per-task max response time
};

/// Simulate a single-processor task set. Tasks of kind Sporadic/Aperiodic
/// are released at their maximum rate (period = min separation), i.e. the
/// worst case; Background tasks are released once at t=0 with no deadline.
SimResult simulate(const TaskSet& ts, const SimOptions& opts = {});

/// Render a timeline as an ASCII Gantt chart (one row per task).
std::string render_gantt(const TaskSet& ts, const SimResult& result,
                         Time max_quanta = 60);

}  // namespace aadlsched::sched
