#include "sched/task.hpp"

#include <algorithm>
#include <numeric>

#include "util/numeric.hpp"

namespace aadlsched::sched {

double TaskSet::utilization() const {
  double u = 0.0;
  for (const Task& t : tasks) u += t.utilization();
  return u;
}

double TaskSet::utilization_drift() const {
  return requested_utilization < 0 ? 0.0
                                   : utilization() - requested_utilization;
}

TaskSet TaskSet::on_processor(int cpu) const {
  TaskSet out;
  for (const Task& t : tasks)
    if (t.processor == cpu) out.tasks.push_back(t);
  return out;
}

bool TaskSet::constrained_deadlines() const {
  return std::all_of(tasks.begin(), tasks.end(), [](const Task& t) {
    return t.deadline <= t.period;
  });
}

bool TaskSet::implicit_deadlines() const {
  return std::all_of(tasks.begin(), tasks.end(), [](const Task& t) {
    return t.deadline == t.period;
  });
}

Time TaskSet::hyperperiod() const {
  std::vector<std::int64_t> periods;
  periods.reserve(tasks.size());
  for (const Task& t : tasks) periods.push_back(t.period);
  const auto h = util::hyperperiod(periods);
  return h ? *h : -1;
}

namespace {

/// Assign distinct priorities (n..1, larger = more important) by sorting an
/// index permutation with the given "more important first" comparator.
template <typename Less>
void assign_by(TaskSet& ts, Less more_important_first) {
  std::vector<std::size_t> order(ts.tasks.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), more_important_first);
  int prio = static_cast<int>(ts.tasks.size());
  for (std::size_t idx : order) ts.tasks[idx].priority = prio--;
}

}  // namespace

void assign_rate_monotonic(TaskSet& ts) {
  assign_by(ts, [&](std::size_t a, std::size_t b) {
    return ts.tasks[a].period < ts.tasks[b].period;
  });
}

void assign_deadline_monotonic(TaskSet& ts) {
  assign_by(ts, [&](std::size_t a, std::size_t b) {
    return ts.tasks[a].deadline < ts.tasks[b].deadline;
  });
}

}  // namespace aadlsched::sched
