#include "sched/analysis.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/numeric.hpp"

namespace aadlsched::sched {

double liu_layland_bound(std::size_t n) {
  if (n == 0) return 1.0;
  const double nn = static_cast<double>(n);
  return nn * (std::pow(2.0, 1.0 / nn) - 1.0);
}

Verdict rm_utilization_test(const TaskSet& ts) {
  if (!ts.implicit_deadlines()) return Verdict::Unknown;
  return ts.utilization() <= liu_layland_bound(ts.tasks.size())
             ? Verdict::Schedulable
             : Verdict::Unknown;
}

Verdict hyperbolic_bound_test(const TaskSet& ts) {
  if (!ts.implicit_deadlines()) return Verdict::Unknown;
  double prod = 1.0;
  for (const Task& t : ts.tasks) prod *= t.utilization() + 1.0;
  return prod <= 2.0 ? Verdict::Schedulable : Verdict::Unknown;
}

Verdict edf_utilization_test(const TaskSet& ts) {
  if (!ts.implicit_deadlines()) return Verdict::Unknown;
  return ts.utilization() <= 1.0 ? Verdict::Schedulable
                                 : Verdict::Unschedulable;
}

RtaResult response_time_analysis(const TaskSet& ts,
                                 const std::vector<Time>* blocking,
                                 bool ties_interfere) {
  RtaResult result;
  result.response.assign(ts.tasks.size(), -1);
  result.verdict = Verdict::Schedulable;

  for (std::size_t i = 0; i < ts.tasks.size(); ++i) {
    const Task& ti = ts.tasks[i];
    const Time bi = blocking && i < blocking->size() ? (*blocking)[i] : 0;
    Time r = ti.wcet + bi;
    bool converged = false;
    // Fixed-point iteration; diverges past the deadline => miss.
    for (int iter = 0; iter < 1'000'000; ++iter) {
      Time next = ti.wcet + bi;
      for (std::size_t j = 0; j < ts.tasks.size(); ++j) {
        if (j == i) continue;
        const Task& tj = ts.tasks[j];
        // Higher priority interferes; ties broken by index for determinism
        // (matches the distinct-priority assignment helpers) unless the
        // caller asked for the pessimistic both-ways reading.
        const bool higher =
            tj.priority > ti.priority ||
            (tj.priority == ti.priority && (ties_interfere || j < i));
        if (!higher) continue;
        next += util::ceil_div(r, tj.period) * tj.wcet;
      }
      if (next == r) {
        converged = true;
        break;
      }
      r = next;
      if (r > ti.deadline) break;  // already past the deadline
    }
    result.response[i] = converged ? r : -1;
    if (!converged || r > ti.deadline) result.verdict = Verdict::Unschedulable;
  }
  return result;
}

Time demand_bound(const TaskSet& ts, Time t) {
  Time demand = 0;
  for (const Task& task : ts.tasks) {
    if (t < task.deadline) continue;
    demand += ((t - task.deadline) / task.period + 1) * task.wcet;
  }
  return demand;
}

namespace {

/// Upper bound on the interval lengths that must be checked by processor
/// demand analysis (min of hyperperiod-based and utilization-based bounds).
Time demand_check_bound(const TaskSet& ts) {
  const double u = ts.utilization();
  Time max_deadline = 0;
  for (const Task& t : ts.tasks)
    max_deadline = std::max(max_deadline, t.deadline);
  Time bound = ts.hyperperiod();
  if (bound < 0) bound = std::numeric_limits<Time>::max();
  bound = std::max(bound, max_deadline);
  if (u < 1.0) {
    // L_a = max(D_i, sum (T_i - D_i) U_i / (1 - U)).
    double la = 0.0;
    for (const Task& t : ts.tasks)
      la += static_cast<double>(t.period - t.deadline) * t.utilization();
    la /= (1.0 - u);
    const Time la_t =
        static_cast<Time>(std::ceil(std::max(
            la, static_cast<double>(max_deadline))));
    bound = std::min(bound, la_t);
  }
  return bound;
}

/// Smallest failing absolute deadline at or below a known-failing point.
/// Any t with dbf(t) > t is preceded (weakly) by a failing deadline, so the
/// scan is exhaustive; used to make QPA's witness canonical.
Time first_overflow_at_or_below(const TaskSet& ts, Time limit) {
  Time best = limit;
  for (const Task& task : ts.tasks) {
    for (Time d = task.deadline; d <= best; d += task.period) {
      if (demand_bound(ts, d) > d) {
        best = d;
        break;
      }
    }
  }
  return best;
}

}  // namespace

Time edf_check_bound(const TaskSet& ts) { return demand_check_bound(ts); }

EdfResult edf_demand_analysis(const TaskSet& ts) {
  EdfResult result;
  if (ts.utilization() > 1.0) {
    result.verdict = Verdict::Unschedulable;
    return result;
  }
  const Time bound = demand_check_bound(ts);
  // Check every absolute deadline up to the bound. Keep scanning after a
  // hit so the reported point is the *globally* earliest overflow — each
  // task's deadline chain is ascending, but chains interleave, and the
  // certificate machinery pins witnesses to the first failing instant.
  bool found = false;
  Time first = bound;
  for (const Task& task : ts.tasks) {
    for (Time d = task.deadline; d <= first; d += task.period) {
      if (demand_bound(ts, d) > d) {
        found = true;
        first = d;
        break;
      }
    }
  }
  if (found) {
    result.verdict = Verdict::Unschedulable;
    result.overflow_point = first;
  } else {
    result.verdict = Verdict::Schedulable;
  }
  return result;
}

EdfResult edf_qpa(const TaskSet& ts) {
  EdfResult result;
  if (ts.tasks.empty()) {
    result.verdict = Verdict::Schedulable;
    return result;
  }
  if (ts.utilization() > 1.0) {
    result.verdict = Verdict::Unschedulable;
    return result;
  }
  Time dmin = std::numeric_limits<Time>::max();
  for (const Task& t : ts.tasks) dmin = std::min(dmin, t.deadline);

  const Time bound = demand_check_bound(ts);
  // Largest absolute deadline strictly below the bound.
  const auto last_deadline_before = [&](Time t) {
    Time best = 0;
    for (const Task& task : ts.tasks) {
      if (task.deadline >= t) continue;
      const Time k = (t - 1 - task.deadline) / task.period;
      best = std::max(best, task.deadline + k * task.period);
    }
    return best;
  };

  Time t = last_deadline_before(bound + 1);
  while (t >= dmin && t > 0) {
    const Time h = demand_bound(ts, t);
    if (h > t) {
      result.verdict = Verdict::Unschedulable;
      // QPA lands on *a* failing point while descending; normalize to the
      // first overflow so the witness matches edf_demand_analysis.
      result.overflow_point = first_overflow_at_or_below(ts, t);
      return result;
    }
    t = h < t ? h : last_deadline_before(t);
    if (t < dmin) break;
  }
  result.verdict = Verdict::Schedulable;
  return result;
}

}  // namespace aadlsched::sched
