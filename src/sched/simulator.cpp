#include "sched/simulator.hpp"

#include <algorithm>
#include <limits>
#include <sstream>

#include "util/string_utils.hpp"

namespace aadlsched::sched {

namespace {

struct JobState {
  Time remaining = 0;      // execution quanta left for the current job
  Time release = 0;        // release time of the current job
  Time abs_deadline = 0;   // absolute deadline (infinite for background)
  bool active = false;
};

constexpr Time kNoDeadline = std::numeric_limits<Time>::max();

}  // namespace

SimResult simulate(const TaskSet& ts, const SimOptions& opts) {
  SimResult result;
  const std::size_t n = ts.tasks.size();
  result.worst_response.assign(n, 0);

  Time horizon = opts.horizon;
  if (horizon == 0) {
    const Time h = ts.hyperperiod();
    Time dmax = 0;
    for (const Task& t : ts.tasks) dmax = std::max(dmax, t.deadline);
    horizon = (h > 0 ? h : 1) + dmax;
  }

  std::vector<JobState> jobs(n);

  for (Time now = 0; now < horizon; ++now) {
    // Deadline check first (before releases can overwrite a late job): a
    // job whose deadline is <= now with work remaining has missed.
    for (std::size_t i = 0; i < n; ++i) {
      if (!jobs[i].active || jobs[i].remaining == 0) continue;
      if (jobs[i].abs_deadline != kNoDeadline && jobs[i].abs_deadline <= now) {
        result.schedulable = false;
        result.first_miss = DeadlineMiss{i, jobs[i].release,
                                         jobs[i].abs_deadline};
        result.simulated = now;
        return result;
      }
    }

    // Release jobs. Background tasks release once at t = 0; everything else
    // at every multiple of its period (sporadic at max rate = worst case).
    for (std::size_t i = 0; i < n; ++i) {
      const Task& t = ts.tasks[i];
      const bool releases = t.kind == DispatchKind::Background
                                ? now == 0
                                : now % t.period == 0;
      if (!releases) continue;
      jobs[i].remaining = t.wcet;
      jobs[i].release = now;
      jobs[i].abs_deadline = t.kind == DispatchKind::Background
                                 ? kNoDeadline
                                 : now + t.deadline;
      jobs[i].active = t.wcet > 0;
    }

    // Pick the job to run this quantum.
    int chosen = -1;
    auto better = [&](std::size_t a, std::size_t b) {
      switch (opts.policy) {
        case SchedulingPolicy::FixedPriority: {
          const int pa = ts.tasks[a].priority, pb = ts.tasks[b].priority;
          if (pa != pb) return pa > pb;
          return a < b;
        }
        case SchedulingPolicy::Edf: {
          if (jobs[a].abs_deadline != jobs[b].abs_deadline)
            return jobs[a].abs_deadline < jobs[b].abs_deadline;
          return a < b;
        }
        case SchedulingPolicy::Llf: {
          const Time la = jobs[a].abs_deadline == kNoDeadline
                              ? kNoDeadline
                              : jobs[a].abs_deadline - now - jobs[a].remaining;
          const Time lb = jobs[b].abs_deadline == kNoDeadline
                              ? kNoDeadline
                              : jobs[b].abs_deadline - now - jobs[b].remaining;
          if (la != lb) return la < lb;
          return a < b;
        }
      }
      return a < b;
    };
    for (std::size_t i = 0; i < n; ++i) {
      if (!jobs[i].active || jobs[i].remaining == 0) continue;
      if (chosen < 0 || better(i, static_cast<std::size_t>(chosen)))
        chosen = static_cast<int>(i);
    }

    if (opts.record_timeline) result.timeline.push_back(chosen);

    if (chosen >= 0) {
      JobState& j = jobs[static_cast<std::size_t>(chosen)];
      if (--j.remaining == 0) {
        const Time resp = now + 1 - j.release;
        auto& wr = result.worst_response[static_cast<std::size_t>(chosen)];
        wr = std::max(wr, resp);
        j.active = ts.tasks[static_cast<std::size_t>(chosen)].kind ==
                           DispatchKind::Background
                       ? false
                       : j.active;
      }
    }
  }

  // Final deadline check for jobs finishing right at the horizon.
  for (std::size_t i = 0; i < n; ++i) {
    if (jobs[i].active && jobs[i].remaining > 0 &&
        jobs[i].abs_deadline != kNoDeadline &&
        jobs[i].abs_deadline <= horizon) {
      result.schedulable = false;
      result.first_miss =
          DeadlineMiss{i, jobs[i].release, jobs[i].abs_deadline};
      break;
    }
  }
  result.simulated = horizon;
  return result;
}

std::string render_gantt(const TaskSet& ts, const SimResult& result,
                         Time max_quanta) {
  std::ostringstream os;
  const Time len = std::min<Time>(
      static_cast<Time>(result.timeline.size()), max_quanta);
  std::size_t width = 4;
  for (const Task& t : ts.tasks) width = std::max(width, t.name.size() + 1);
  for (std::size_t i = 0; i < ts.tasks.size(); ++i) {
    os << util::pad_right(ts.tasks[i].name, width) << '|';
    for (Time q = 0; q < len; ++q)
      os << (result.timeline[static_cast<std::size_t>(q)] ==
                     static_cast<int>(i)
                 ? '#'
                 : '.');
    os << "|\n";
  }
  return os.str();
}

}  // namespace aadlsched::sched
