#include "sched/blocking.hpp"

#include <algorithm>
#include <set>

namespace aadlsched::sched {

std::string_view to_string(LockProtocol p) {
  switch (p) {
    case LockProtocol::None: return "none";
    case LockProtocol::PriorityInheritance: return "priority-inheritance";
    case LockProtocol::PriorityCeiling: return "priority-ceiling";
  }
  return "?";
}

std::size_t ResourceModel::user_count(std::size_t r) const {
  std::set<std::size_t> users;
  for (const CriticalSection& cs : sections)
    if (cs.resource == r) users.insert(cs.task);
  return users.size();
}

std::vector<int> priority_ceilings(const TaskSet& ts,
                                   const ResourceModel& rm) {
  std::vector<int> ceilings(rm.resources.size(), -1);
  for (const CriticalSection& cs : rm.sections) {
    if (cs.task >= ts.tasks.size() || cs.resource >= ceilings.size())
      continue;
    ceilings[cs.resource] =
        std::max(ceilings[cs.resource], ts.tasks[cs.task].priority);
  }
  return ceilings;
}

namespace {

/// Can a section on resource r (held by a strictly lower-priority task)
/// block a task of priority prio at all?
bool section_blocks(const ResourceModel& rm, const TaskSet& ts,
                    const std::vector<int>& ceilings, std::size_t r, int prio,
                    std::size_t holder) {
  switch (rm.resources[r].protocol) {
    case LockProtocol::PriorityCeiling:
      // Only resources whose ceiling reaches the task's priority matter.
      return ceilings[r] >= prio;
    case LockProtocol::PriorityInheritance:
      // Direct blocking or push-through: the resource must be used by some
      // task at or above the blocked task's priority (other than the
      // holder), or inheritance never lifts the holder into its way.
      for (const CriticalSection& cs : rm.sections) {
        if (cs.resource != r || cs.task == holder) continue;
        if (cs.task < ts.tasks.size() &&
            ts.tasks[cs.task].priority >= prio)
          return true;
      }
      return false;
    case LockProtocol::None:
      return false;  // unbounded; handled by the caller
  }
  return false;
}

}  // namespace

std::optional<std::vector<Time>> blocking_terms(const TaskSet& ts,
                                                const ResourceModel& rm) {
  // A shared resource without a protocol has no finite blocking bound.
  for (std::size_t r = 0; r < rm.resources.size(); ++r)
    if (rm.resources[r].protocol == LockProtocol::None &&
        rm.user_count(r) >= 2)
      return std::nullopt;

  const std::vector<int> ceilings = priority_ceilings(ts, rm);
  std::vector<Time> terms(ts.tasks.size(), 0);

  for (std::size_t i = 0; i < ts.tasks.size(); ++i) {
    const int prio = ts.tasks[i].priority;
    // Per lower-priority task: its longest section that can block task i.
    std::vector<Time> per_task(ts.tasks.size(), 0);
    bool any_pip = false;
    for (const CriticalSection& cs : rm.sections) {
      if (cs.task >= ts.tasks.size() || cs.resource >= rm.resources.size())
        continue;
      if (ts.tasks[cs.task].priority >= prio) continue;  // not a blocker
      if (!section_blocks(rm, ts, ceilings, cs.resource, prio, cs.task))
        continue;
      if (rm.resources[cs.resource].protocol ==
          LockProtocol::PriorityInheritance)
        any_pip = true;
      per_task[cs.task] = std::max(per_task[cs.task], cs.duration);
    }
    if (any_pip) {
      // PIP: blocked at most once per lower-priority task.
      for (const Time b : per_task) terms[i] += b;
    } else {
      // Pure PCP: blocked at most once overall.
      for (const Time b : per_task) terms[i] = std::max(terms[i], b);
    }
  }
  return terms;
}

}  // namespace aadlsched::sched
