// Analytical schedulability tests — the classical toolbox the paper's
// exhaustive exploration is positioned against (§1, §6). These are the
// baselines for the agreement/pessimism experiments (EXPERIMENTS.md E1, E8).
//
//   * Liu–Layland utilization bound (sufficient, RM, implicit deadlines)
//   * hyperbolic bound (sufficient, RM, implicit deadlines; dominates LL)
//   * exact response-time analysis for fixed priorities (necessary and
//     sufficient for independent, constrained-deadline, synchronous tasks)
//   * EDF utilization test (exact for implicit deadlines)
//   * EDF processor-demand analysis + QPA (exact for constrained deadlines)
#pragma once

#include <optional>
#include <vector>

#include "sched/task.hpp"

namespace aadlsched::sched {

enum class Verdict : std::uint8_t {
  Schedulable,
  Unschedulable,
  Unknown,  // a sufficient-only test that did not pass
};

/// n(2^{1/n} - 1); the classic RM bound.
double liu_layland_bound(std::size_t n);

/// Sufficient test: U <= n(2^{1/n}-1). Unknown when it fails.
Verdict rm_utilization_test(const TaskSet& ts);

/// Sufficient test: prod(U_i + 1) <= 2 (Bini et al.). Unknown on failure.
Verdict hyperbolic_bound_test(const TaskSet& ts);

/// Exact EDF test for implicit deadlines: U <= 1.
Verdict edf_utilization_test(const TaskSet& ts);

struct RtaResult {
  Verdict verdict = Verdict::Unknown;
  /// Worst-case response time per task (index-aligned with the input);
  /// response values beyond the deadline are reported as computed when the
  /// fixed point converged, or -1 when it diverged past the deadline.
  std::vector<Time> response;
};

/// Exact response-time analysis for preemptive fixed-priority scheduling of
/// independent tasks with constrained deadlines on one processor.
/// `blocking[i]` (optional) adds a per-task blocking term B_i.
/// With `ties_interfere`, every distinct task of equal priority is charged
/// as interference (instead of the deterministic index tie-break): that is
/// the sound, pessimistic reading when the scheduler may break priority
/// ties either way — required when vouching for exploration, which
/// enumerates all tie interleavings.
RtaResult response_time_analysis(const TaskSet& ts,
                                 const std::vector<Time>* blocking = nullptr,
                                 bool ties_interfere = false);

struct EdfResult {
  Verdict verdict = Verdict::Unknown;
  /// First absolute time point where demand exceeds supply (if any).
  std::optional<Time> overflow_point;
};

/// Exact processor-demand analysis for preemptive EDF with constrained
/// deadlines on one processor (checks dbf(t) <= t for all t up to the
/// standard bound).
EdfResult edf_demand_analysis(const TaskSet& ts);

/// Zhang & Burns' Quick convergence Processor-demand Analysis. Same verdict
/// as edf_demand_analysis but iterates from the bound downwards; used by the
/// ablation bench.
EdfResult edf_qpa(const TaskSet& ts);

/// Demand bound function of a task set at interval length t (synchronous).
Time demand_bound(const TaskSet& ts, Time t);

/// The interval-length bound up to which edf_demand_analysis / edf_qpa
/// check dbf(t) <= t (min of hyperperiod- and utilization-based bounds).
/// Exposed so certificate emitters can record the checked horizon.
Time edf_check_bound(const TaskSet& ts);

}  // namespace aadlsched::sched
