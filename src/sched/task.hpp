// Classical real-time task model used by the analytical baselines and the
// hyperperiod simulator, and as the input surface for workload generation.
//
// All times are integral scheduling quanta (the paper's discrete-time
// assumption, §4.1), which makes RTA, demand-bound analysis, the simulator
// and the ACSR exploration all exact and mutually comparable.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace aadlsched::sched {

using Time = std::int64_t;

enum class DispatchKind : std::uint8_t {
  Periodic,
  Sporadic,   // minimum inter-arrival = period
  Aperiodic,  // no arrival bound; analyses treat worst case like sporadic
  Background,
};

struct Task {
  std::string name;
  Time wcet = 0;      // C: worst-case execution time
  Time bcet = 0;      // best-case execution time (0 = same as wcet)
  Time period = 0;    // T (or minimum separation for sporadic)
  Time deadline = 0;  // D, relative; constrained: D <= T
  int priority = 0;   // larger = more important (fixed-priority policies)
  DispatchKind kind = DispatchKind::Periodic;
  int processor = 0;  // partitioned multiprocessor: index of the cpu

  Time effective_bcet() const { return bcet > 0 ? bcet : wcet; }
  double utilization() const {
    return period > 0 ? static_cast<double>(wcet) / static_cast<double>(period)
                      : 0.0;
  }
};

struct TaskSet {
  std::vector<Task> tasks;

  /// Total utilization the generator was asked for (< 0 when this set was
  /// not produced by sched::generate_workload). The *realized* utilization
  /// is utilization() — WCET quantization and the min-wcet clamp make the
  /// two differ, and acceptance curves binned by the requested value
  /// silently mix populations (see workload.hpp).
  double requested_utilization = -1.0;

  /// Realized total utilization, sum of wcet/period over all tasks.
  double utilization() const;
  /// utilization() - requested_utilization; 0 when no request was recorded.
  double utilization_drift() const;
  /// Tasks bound to one processor, preserving order.
  TaskSet on_processor(int cpu) const;
  /// All deadlines constrained (D <= T)?
  bool constrained_deadlines() const;
  /// All deadlines implicit (D == T)?
  bool implicit_deadlines() const;
  /// lcm of periods; -1 on overflow/empty.
  Time hyperperiod() const;
};

/// Rate-monotonic priority assignment: shorter period => higher priority.
/// Ties are broken by index so every task gets a distinct priority.
void assign_rate_monotonic(TaskSet& ts);

/// Deadline-monotonic: shorter relative deadline => higher priority.
void assign_deadline_monotonic(TaskSet& ts);

}  // namespace aadlsched::sched
