#include "translate/translator.hpp"

#include <algorithm>
#include <map>
#include <numeric>

#include "util/numeric.hpp"
#include "util/string_utils.hpp"

namespace aadlsched::translate {

namespace {

using aadl::ComponentInstance;
using aadl::DispatchProtocol;
using aadl::OverflowProtocol;
using aadl::SchedulingProtocol;
using aadl::SemanticConnection;
using acsr::Builder;
using acsr::DefRole;
using acsr::ExprId;
using acsr::OpenTermId;

std::string mangle(std::string_view path) {
  std::string out;
  out.reserve(path.size());
  for (char c : path) out.push_back(c == '.' ? '_' : c);
  return out;
}

/// Internal bookkeeping for one thread during translation.
struct ThreadCtx {
  TranslatedThread info;
  const aadl::ComponentInstance* processor = nullptr;
  SchedulingProtocol protocol = SchedulingProtocol::RateMonotonic;
  std::int64_t proc_dmax = 0;   // max deadline on the processor (EDF/LLF)
  /// Outgoing enqueue events raised in the completion cascade.
  std::vector<std::string> completion_sends;
  /// Buses used by the possibly-final computation steps.
  std::vector<std::string> bus_resources;
  /// Incoming dequeue events (for the dispatcher) with their priorities.
  std::vector<std::pair<std::string, int>> triggers;
  /// Priority of this thread's dispatch! event (distinct per thread when
  /// TranslateOptions::ordered_instants is set).
  int dispatch_prio = 1;
  /// Observer events raised at dispatch (obs_start) and woven into the
  /// completion cascade (obs_end), for the latency observers of §5.
  std::vector<std::string> observe_starts;
  std::vector<std::string> observe_ends;
  /// First dispatch offset (Dispatch_Offset), quanta; periodic only.
  std::int64_t offset = 0;
};

struct ObserverCtx {
  TranslatedObserver info;
  std::string start_event;
  std::string end_event;
};

struct QueueCtx {
  TranslatedQueue info;
  std::string enq_event;
  std::string deq_event;
  int deq_priority = 1;
  int enq_priority = 1;  // 0 when fed by the environment (device source)
};

struct GeneratorCtx {
  std::string name;       // def name
  std::string enq_event;
  std::int64_t period = 0;  // 0 = nondeterministic environment source
  std::string aadl_path;
};

class Translator {
 public:
  Translator(acsr::Context& ctx, const aadl::InstanceModel& model,
             util::DiagnosticEngine& diags, const TranslateOptions& opts)
      : b_(ctx), model_(model), diags_(diags), opts_(opts) {}

  std::optional<Translation> run() {
    if (!validate_structure()) return std::nullopt;
    if (!collect_threads()) return std::nullopt;
    if (opts_.ordered_instants) {
      int dp = 1;
      for (ThreadCtx& tc : threads_) tc.dispatch_prio = dp++;
    }
    if (!assign_priorities()) return std::nullopt;
    collect_connections();
    if (!check_trigger_preconditions()) return std::nullopt;
    if (!collect_observers()) return std::nullopt;
    detect_symmetry();

    for (ThreadCtx& tc : threads_) {
      build_thread_skeleton(tc);
      build_dispatcher(tc);
    }
    for (QueueCtx& qc : queues_) build_queue(qc);
    for (GeneratorCtx& gc : generators_) build_generator(gc);
    for (ObserverCtx& oc : observers_) build_observer(oc);

    return compose();
  }

 private:
  // --- validation ----------------------------------------------------------

  bool validate_structure() {
    if (model_.threads.empty()) {
      diags_.error({}, "model has no thread components (§4.1 requires at "
                       "least one)");
      return false;
    }
    if (model_.processors.empty()) {
      diags_.error({}, "model has no processor components (§4.1 requires at "
                       "least one)");
      return false;
    }
    bool ok = true;
    for (const ComponentInstance* t : model_.threads) {
      if (!model_.bindings.count(t)) {
        diags_.error({}, "thread '" + t->path +
                             "' is not bound to a processor (§4.1)");
        ok = false;
      }
    }
    return ok;
  }

  std::optional<std::int64_t> to_quanta(std::int64_t ns, bool round_up,
                                        std::string_view what,
                                        const std::string& who) {
    const std::int64_t q = opts_.quantum_ns;
    std::int64_t v = round_up ? util::ceil_div(ns, q) : ns / q;
    if (ns % q != 0) {
      diags_.warning({}, std::string(what) + " of '" + who + "' (" +
                             std::to_string(ns) + " ns) is not a multiple "
                             "of the quantum; rounded " +
                             (round_up ? "up" : "down"));
    }
    if (v > opts_.max_quanta) {
      diags_.error({}, std::string(what) + " of '" + who + "' is " +
                           std::to_string(v) +
                           " quanta, above the configured cap; increase the "
                           "quantum");
      return std::nullopt;
    }
    return v;
  }

  bool collect_threads() {
    for (const ComponentInstance* t : model_.threads) {
      auto props = aadl::thread_properties(model_, *t, diags_);
      if (!props) return false;
      ThreadCtx tc;
      tc.info.inst = t;
      tc.info.path = t->path;
      tc.info.mangled = mangle(t->path);
      tc.info.dispatch = props->dispatch;
      tc.processor = model_.bindings.at(t);

      auto cmin = to_quanta(props->compute_min_ns, false,
                            "Compute_Execution_Time.min", t->path);
      auto cmax = to_quanta(props->compute_max_ns, true,
                            "Compute_Execution_Time.max", t->path);
      if (!cmin || !cmax) return false;
      tc.info.cmin = std::min(*cmin, *cmax);
      tc.info.cmax = *cmax;

      if (props->period_ns > 0) {
        auto p = to_quanta(props->period_ns, false, "Period", t->path);
        if (!p) return false;
        if (*p < 1) {
          diags_.error({}, "Period of '" + t->path +
                               "' is below one scheduling quantum");
          return false;
        }
        tc.info.period = *p;
      }
      if (props->deadline_ns > 0) {
        auto d = to_quanta(props->deadline_ns, false, "Deadline", t->path);
        if (!d) return false;
        tc.info.deadline = *d;
      }
      if (tc.info.dispatch == DispatchProtocol::Periodic &&
          tc.info.deadline > tc.info.period) {
        diags_.error({}, "periodic thread '" + t->path +
                             "' has Deadline > Period, which this "
                             "translation does not support");
        return false;
      }
      if (props->priority) tc.info.static_priority = *props->priority;
      if (const auto* pv =
              aadl::find_property(model_, *t, "dispatch_offset")) {
        if (const auto* iu = std::get_if<aadl::IntWithUnit>(&pv->data)) {
          if (auto ns = aadl::time_to_ns(*iu, diags_, {})) {
            if (auto off = to_quanta(*ns, false, "Dispatch_Offset", t->path))
              tc.offset = std::clamp<std::int64_t>(
                  *off, 0, std::max<std::int64_t>(tc.info.period, 0));
          }
        }
      }
      tc.info.cpu_resource = "cpu_" + mangle(tc.processor->path);
      threads_.push_back(std::move(tc));
    }
    return true;
  }

  bool assign_priorities() {
    // Group threads per processor and apply the Scheduling_Protocol.
    std::map<const ComponentInstance*, std::vector<ThreadCtx*>> per_cpu;
    for (ThreadCtx& tc : threads_) per_cpu[tc.processor].push_back(&tc);

    for (auto& [cpu, group] : per_cpu) {
      auto proto = aadl::scheduling_protocol(model_, *cpu, diags_);
      if (!proto) return false;
      std::int64_t dmax = 0;
      for (ThreadCtx* tc : group)
        dmax = std::max(dmax, tc->info.deadline);
      for (ThreadCtx* tc : group) {
        tc->protocol = *proto;
        tc->proc_dmax = dmax;
      }
      switch (*proto) {
        case SchedulingProtocol::RateMonotonic:
          rank(group, [](const ThreadCtx* t) {
            // Background threads have no period: rank them last.
            return t->info.period > 0 ? t->info.period
                                      : std::int64_t{1} << 40;
          });
          break;
        case SchedulingProtocol::DeadlineMonotonic:
          rank(group, [](const ThreadCtx* t) {
            return t->info.deadline > 0 ? t->info.deadline
                                        : std::int64_t{1} << 40;
          });
          break;
        case SchedulingProtocol::HighestPriorityFirst: {
          for (ThreadCtx* tc : group) {
            if (tc->info.static_priority == 0 &&
                tc->info.dispatch != DispatchProtocol::Background) {
              diags_.error({}, "HPF scheduling on '" + cpu->path +
                                   "' requires a Priority property on "
                                   "thread '" + tc->info.path + "'");
              return false;
            }
            // Shift by 2 so priorities stay above background (1) and idle.
            tc->info.static_priority += 2;
          }
          break;
        }
        case SchedulingProtocol::Edf:
        case SchedulingProtocol::Llf:
          for (ThreadCtx* tc : group) tc->info.static_priority = 0;  // dynamic
          break;
      }
    }
    return true;
  }

  template <typename Key>
  void rank(std::vector<ThreadCtx*>& group, Key key) {
    std::vector<std::size_t> order(group.size());
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                       return key(group[a]) < key(group[b]);
                     });
    int prio = static_cast<int>(group.size()) + 1;
    for (std::size_t idx : order)
      group[idx]->info.static_priority = prio--;
    // Background threads run below every ranked thread.
    for (ThreadCtx* tc : group)
      if (tc->info.dispatch == DispatchProtocol::Background)
        tc->info.static_priority = 1;
  }

  // --- symmetry detection ------------------------------------------------

  /// Bucket threads by everything the generated skeleton + dispatcher
  /// structure depends on. Two threads in one bucket translate to
  /// identical process definitions up to renaming their mangled name, so
  /// they are interchangeable roles for the versa reducer. Threads touched
  /// by connections, buses, or observers are excluded outright: their
  /// event footprint is not private. Note the dispatch priority is part of
  /// the key — under the default ordered_instants translation it is
  /// distinct per thread and no group ever forms (the reduction is only
  /// live for uniform-instant translations; see SymmetrySpec).
  void detect_symmetry() {
    std::map<std::string, std::vector<std::string>> buckets;
    for (const ThreadCtx& tc : threads_) {
      if (!tc.completion_sends.empty() || !tc.triggers.empty() ||
          !tc.bus_resources.empty() || !tc.observe_starts.empty() ||
          !tc.observe_ends.empty())
        continue;
      std::string key = mangle(tc.processor->path);
      const auto add = [&key](std::int64_t v) {
        key.push_back('|');
        key += std::to_string(v);
      };
      add(static_cast<std::int64_t>(tc.protocol));
      add(static_cast<std::int64_t>(tc.info.dispatch));
      add(tc.info.cmin);
      add(tc.info.cmax);
      add(tc.info.period);
      add(tc.info.deadline);
      add(tc.offset);
      add(tc.info.static_priority);
      add(tc.dispatch_prio);
      buckets[key].push_back(tc.info.mangled);
    }
    for (auto& [key, roles] : buckets) {
      if (roles.size() < 2) continue;
      symmetry_.groups.push_back(SymmetryGroup{std::move(roles)});
    }
    symmetry_.uniform_dispatch = !opts_.ordered_instants;
  }

  ThreadCtx* thread_ctx(const ComponentInstance* inst) {
    for (ThreadCtx& tc : threads_)
      if (tc.info.inst == inst) return &tc;
    return nullptr;
  }

  // --- connections ------------------------------------------------------

  void collect_connections() {
    int conn_index = 0;
    for (const SemanticConnection& sc : model_.connections) {
      const std::string cm =
          "c" + std::to_string(conn_index++) + "_" +
          mangle(sc.source ? sc.source->name + "_" + sc.source_port : "env");

      ThreadCtx* dst = sc.destination ? thread_ctx(sc.destination) : nullptr;
      ThreadCtx* src = sc.source ? thread_ctx(sc.source) : nullptr;
      const bool src_is_device =
          sc.source && sc.source->category == aadl::Category::Device;

      const bool is_event_kind =
          sc.kind == aadl::FeatureKind::EventPort ||
          sc.kind == aadl::FeatureKind::EventDataPort;
      const bool dst_is_triggered =
          dst && (dst->info.dispatch == DispatchProtocol::Aperiodic ||
                  dst->info.dispatch == DispatchProtocol::Sporadic);

      // Bus refinement (§4.2): an outgoing connection of a thread bound to
      // a bus makes the thread's possibly-final computation steps use the
      // bus resource.
      if (sc.bus && src) {
        const std::string bus_res = "bus_" + mangle(sc.bus->path);
        auto& br = src->bus_resources;
        if (std::find(br.begin(), br.end(), bus_res) == br.end())
          br.push_back(bus_res);
      }

      // Queue + dispatch trigger (§4.3/4.4): event and event-data
      // connections whose ultimate destination is a sporadic or aperiodic
      // thread. Periodic threads ignore external events (§2).
      if (is_event_kind && dst_is_triggered) {
        const auto cp = aadl::connection_properties(model_, sc, diags_);
        QueueCtx qc;
        qc.info.connection = sc.describe();
        qc.info.mangled = cm;
        qc.info.size = cp.queue_size;
        qc.info.overflow = cp.overflow;
        qc.enq_event = "enq_" + cm;
        qc.deq_event = "deq_" + cm;
        qc.deq_priority = 1 + std::max(0, cp.urgency);
        qc.enq_priority = src_is_device ? 0 : 1;
        dst->triggers.emplace_back(qc.deq_event, qc.deq_priority);

        if (src) {
          src->completion_sends.push_back(qc.enq_event);
        } else if (src_is_device || !sc.source) {
          // Environment-driven source.
        }
        if (src_is_device) {
          GeneratorCtx gc;
          gc.name = "G_" + cm;
          gc.enq_event = qc.enq_event;
          gc.aadl_path = sc.source->path;
          // Periodic device? Use its Period property if present.
          if (const auto* pv =
                  aadl::find_property(model_, *sc.source, "period")) {
            if (const auto* iu = std::get_if<aadl::IntWithUnit>(&pv->data)) {
              if (auto ns = aadl::time_to_ns(*iu, diags_, {})) {
                if (auto p = to_quanta(*ns, false, "Period", sc.source->path))
                  gc.period = std::max<std::int64_t>(*p, 1);
              }
            }
          }
          generators_.push_back(std::move(gc));
        }
        queues_.push_back(std::move(qc));
      }
    }
  }

  bool check_trigger_preconditions() {
    bool ok = true;
    for (const ThreadCtx& tc : threads_) {
      const bool needs_trigger =
          tc.info.dispatch == DispatchProtocol::Aperiodic ||
          tc.info.dispatch == DispatchProtocol::Sporadic;
      if (needs_trigger && tc.triggers.empty()) {
        diags_.error({}, "non-periodic thread '" + tc.info.path +
                             "' has no incoming event connection to dispatch "
                             "it (§4.1 precondition 2)");
        ok = false;
      }
    }
    return ok;
  }

  // --- thread skeleton (Fig. 4/5) --------------------------------------

  /// Priority expression for the cpu access of a thread. Parameters of the
  /// Compute definition: p(0) = e, p(1) = t.
  ExprId cpu_priority(const ThreadCtx& tc) {
    if (tc.info.dispatch == DispatchProtocol::Background) {
      // Background threads have no deadline and no t parameter: they run at
      // the lowest positive priority under every protocol.
      return b_.c(std::max(1, tc.info.static_priority));
    }
    switch (tc.protocol) {
      case SchedulingProtocol::Edf: {
        // pi = dmax - (d - t), shifted by +2 to stay above background/idle.
        return b_.add(b_.sub(b_.c(static_cast<std::int32_t>(tc.proc_dmax)),
                             b_.sub(b_.c(static_cast<std::int32_t>(
                                        tc.info.deadline)),
                                    b_.p(1))),
                      b_.c(2));
      }
      case SchedulingProtocol::Llf: {
        // laxity = (d - t) - (cmax - e); pi = dmax - laxity + 2.
        const ExprId slack =
            b_.sub(b_.c(static_cast<std::int32_t>(tc.info.deadline)), b_.p(1));
        const ExprId remaining =
            b_.sub(b_.c(static_cast<std::int32_t>(tc.info.cmax)), b_.p(0));
        const ExprId laxity = b_.sub(slack, remaining);
        return b_.add(
            b_.sub(b_.c(static_cast<std::int32_t>(tc.proc_dmax)), laxity),
            b_.c(2));
      }
      default:
        return b_.c(tc.info.static_priority);
    }
  }

  void build_thread_skeleton(ThreadCtx& tc) {
    const std::string& m = tc.info.mangled;
    const std::string await_name = "T_" + m + "_Await";
    const std::string compute_name = "T_" + m + "_Compute";
    const bool background =
        tc.info.dispatch == DispatchProtocol::Background;
    const std::int32_t cmin = static_cast<std::int32_t>(tc.info.cmin);
    const std::int32_t cmax = static_cast<std::int32_t>(tc.info.cmax);
    const std::int32_t d = static_cast<std::int32_t>(tc.info.deadline);

    restricted_.push_back("dispatch_" + m);
    restricted_.push_back("done_" + m);

    // Execution-time semantics. Under CommittedDemand with a genuine
    // range, the demand c is drawn (adversarially, by exploration of every
    // branch) when execution starts and becomes a third parameter; the
    // thread then runs exactly c quanta. Under LateCompletion (literal
    // Fig. 5) the thread may take the completion exit at any e >= cmin.
    const bool committed =
        opts_.time_model == ExecutionTimeModel::CommittedDemand &&
        cmin < cmax;
    // The "anytime" send policy adds a sent-flag parameter s so output
    // events may be raised at any boundary during the dispatch, exactly
    // once (keeps the model finite and Zeno-free, §4.4).
    const bool anytime =
        opts_.send_policy == EventSendPolicy::OncePerDispatchAnytime &&
        !tc.completion_sends.empty() && !background;

    // Parameter layout: e [, t] [, c] [, s].
    std::vector<std::string> params{"e"};
    if (!background) params.emplace_back("t");
    const std::int32_t idx_c =
        committed ? static_cast<std::int32_t>(params.size()) : -1;
    if (committed) params.emplace_back("c");
    const std::int32_t idx_s =
        anytime ? static_cast<std::int32_t>(params.size()) : -1;
    if (anytime) params.emplace_back("s");

    const ExprId e = b_.p(0);
    const ExprId t = b_.p(1);  // meaningless for background threads
    const ExprId c_expr = committed ? b_.p(idx_c) : b_.c(cmax);
    const ExprId s = anytime ? b_.p(idx_s) : b_.c(0);
    const ExprId prio = cpu_priority(tc);

    const auto send_chain = [&](OpenTermId cont) {
      for (auto it = tc.completion_sends.rbegin();
           it != tc.completion_sends.rend(); ++it)
        cont = b_.send(*it, b_.c(anytime ? 0 : 1), cont);
      return cont;
    };

    // done carries priority 0 so that, when completion competes with a
    // timed step (LateCompletion, or a committed demand met before cmax
    // ... which cannot happen; committed completion is forced), the timed
    // alternative survives prioritization. Latency observers get their end
    // marker immediately before done.
    OpenTermId done_only = b_.send("done_" + m, b_.c(0), b_.call(await_name));
    for (auto it = tc.observe_ends.rbegin(); it != tc.observe_ends.rend();
         ++it)
      done_only = b_.send(*it, b_.c(1), done_only);

    std::vector<OpenTermId> alts;

    /// Arguments for a recursive Compute call.
    const auto mk_args = [&](ExprId ae, ExprId at,
                             ExprId as) -> std::vector<ExprId> {
      std::vector<ExprId> args{ae};
      if (!background) args.push_back(at);
      if (committed) args.push_back(c_expr);
      if (anytime) args.push_back(as);
      return args;
    };

    const auto compute_step = [&](bool with_bus, ExprId next_e,
                                  ExprId next_t) {
      std::vector<std::pair<std::string, ExprId>> uses;
      uses.emplace_back(tc.info.cpu_resource, prio);
      if (with_bus)
        for (const std::string& bus : tc.bus_resources)
          uses.emplace_back(bus, prio);
      return b_.act(std::move(uses),
                    b_.call(compute_name, mk_args(next_e, next_t, s)));
    };

    const ExprId e1 = b_.add(e, b_.c(1));
    const ExprId t1 = background ? t : b_.add(t, b_.c(1));

    // Guard fragments. The demand bound is the committed c or cmax.
    const acsr::CondId below_demand = b_.lt(e, c_expr);
    const acsr::CondId can_run =
        background ? below_demand
                   : b_.both(below_demand, b_.lt(t, b_.c(d)));

    if (tc.bus_resources.empty()) {
      alts.push_back(b_.when(can_run, compute_step(false, e1, t1)));
    } else {
      // Non-final steps use only the cpu; possibly-final steps (those that
      // can complete the dispatch) also hold the bus (§4.2). Under the
      // committed model the final step is exactly e == c - 1; under
      // LateCompletion any step with e >= cmin - 1 may be final.
      const ExprId final_from =
          committed ? b_.sub(c_expr, b_.c(1)) : b_.c(cmin - 1);
      alts.push_back(b_.when(b_.both(can_run, b_.lt(e, final_from)),
                             compute_step(false, e1, t1)));
      alts.push_back(b_.when(b_.both(can_run, b_.ge(e, final_from)),
                             compute_step(true, e1, t1)));
    }

    // Preempted: time passes, no cpu (Fig. 5). R (data access resources) is
    // empty here because access connections are outside the translation's
    // scope (§4).
    alts.push_back(b_.when(
        can_run, b_.idle(b_.call(compute_name, mk_args(e, t1, s)))));

    // Completion exit. Committed: exactly at the chosen demand (forced —
    // the thread has no timed step left). LateCompletion: any e >= cmin.
    const acsr::CondId complete_guard =
        committed ? b_.eq(e, c_expr)
                  : (opts_.time_model == ExecutionTimeModel::CommittedDemand
                         ? b_.eq(e, b_.c(cmax))  // degenerate range
                         : b_.ge(e, b_.c(cmin)));

    if (anytime) {
      // Raise the outputs at any boundary while executing, once (s: 0 -> 1).
      alts.push_back(
          b_.when(b_.eq(s, b_.c(0)),
                  send_chain(b_.call(compute_name, mk_args(e, t, b_.c(1))))));
      // Completion: send first if not sent yet.
      alts.push_back(b_.when(b_.both(complete_guard, b_.eq(s, b_.c(0))),
                             send_chain(done_only)));
      alts.push_back(b_.when(b_.both(complete_guard, b_.eq(s, b_.c(1))),
                             done_only));
    } else {
      // Default §4.4 behaviour: data(-event) output at completion.
      alts.push_back(b_.when(complete_guard, send_chain(done_only)));
    }

    tc.info.compute_def =
        b_.def(compute_name, params, b_.pick(std::move(alts)),
               DefRole::ThreadState, tc.info.path, "Compute");

    // AwaitDispatch: receive dispatch and start computing (committing the
    // demand when the model calls for it); idle otherwise.
    // Latency observers: the start marker fires right after the dispatch.
    const auto with_obs_start = [&](OpenTermId cont) {
      for (auto it = tc.observe_starts.rbegin();
           it != tc.observe_starts.rend(); ++it)
        cont = b_.send(*it, b_.c(1), cont);
      return cont;
    };

    std::vector<OpenTermId> await_alts;
    if (committed) {
      std::vector<OpenTermId> demand_branches;
      for (std::int32_t demand = cmin; demand <= cmax; ++demand) {
        std::vector<ExprId> args{b_.c(0)};
        if (!background) args.push_back(b_.c(0));
        args.push_back(b_.c(demand));
        if (anytime) args.push_back(b_.c(0));
        demand_branches.push_back(b_.call(compute_name, std::move(args)));
      }
      await_alts.push_back(
          b_.recv("dispatch_" + m, b_.c(1),
                  with_obs_start(b_.pick(std::move(demand_branches)))));
    } else {
      await_alts.push_back(b_.recv(
          "dispatch_" + m, b_.c(1),
          with_obs_start(
              b_.call(compute_name, mk_args(b_.c(0), b_.c(0), b_.c(0))))));
    }
    await_alts.push_back(b_.idle(b_.call(await_name)));
    tc.info.await_def =
        b_.def(await_name, {}, b_.pick(std::move(await_alts)),
               DefRole::ThreadState, tc.info.path, "AwaitDispatch");
  }

  // --- dispatchers (Fig. 6) ---------------------------------------------

  void build_dispatcher(ThreadCtx& tc) {
    const std::string& m = tc.info.mangled;
    const std::int32_t p = static_cast<std::int32_t>(tc.info.period);
    const std::int32_t d = static_cast<std::int32_t>(tc.info.deadline);
    const ExprId t = b_.p(0);
    const ExprId t1 = b_.add(t, b_.c(1));

    switch (tc.info.dispatch) {
      case DispatchProtocol::Periodic: {
        // Fig. 6(a). Initial state: Idle[p] -> immediate dispatch at t=0.
        const std::string idle = "D_" + m + "_Idle";
        const std::string wait = "D_" + m + "_Wait";
        b_.def(idle, {"t"},
               b_.pick({b_.when(b_.lt(t, b_.c(p)),
                                b_.idle(b_.call(idle, {t1}))),
                        b_.when(b_.eq(t, b_.c(p)),
                                b_.send("dispatch_" + m, b_.c(tc.dispatch_prio),
                                        b_.call(wait, {b_.c(0)})))}),
               DefRole::Dispatcher, tc.info.path, "DispatcherIdle");
        b_.def(wait, {"t"},
               b_.pick({b_.recv("done_" + m, b_.c(0), b_.call(idle, {t})),
                        b_.when(b_.lt(t, b_.c(d)),
                                b_.idle(b_.call(wait, {t1})))}),
               DefRole::Dispatcher, tc.info.path, "AwaitDone");
        // First dispatch happens Dispatch_Offset quanta after t = 0: start
        // the idle countdown part-way through.
        initial_.push_back(
            {idle, {static_cast<acsr::ParamValue>(p - tc.offset)}});
        break;
      }
      case DispatchProtocol::Aperiodic:
      case DispatchProtocol::Sporadic: {
        // Fig. 6(b)/(c).
        const bool sporadic = tc.info.dispatch == DispatchProtocol::Sporadic;
        const std::string idle = "D_" + m + "_Idle";
        const std::string go = "D_" + m + "_Go";
        const std::string wait = "D_" + m + "_Wait";
        const std::string sep = "D_" + m + "_Sep";

        std::vector<OpenTermId> idle_alts;
        for (const auto& [deq, prio] : tc.triggers)
          idle_alts.push_back(b_.recv(deq, b_.c(prio), b_.call(go)));
        idle_alts.push_back(b_.idle(b_.call(idle)));
        b_.def(idle, {}, b_.pick(std::move(idle_alts)), DefRole::Dispatcher,
               tc.info.path, "DispatcherIdle");
        b_.def(go, {},
               b_.send("dispatch_" + m, b_.c(tc.dispatch_prio), b_.call(wait, {b_.c(0)})),
               DefRole::Dispatcher, tc.info.path, "Dispatching");

        OpenTermId after_done;
        if (sporadic) {
          after_done = b_.call(sep, {b_.min(t, b_.c(p))});
        } else {
          after_done = b_.call(idle);
        }
        b_.def(wait, {"t"},
               b_.pick({b_.recv("done_" + m, b_.c(0), after_done),
                        b_.when(b_.lt(t, b_.c(d)),
                                b_.idle(b_.call(wait, {t1})))}),
               DefRole::Dispatcher, tc.info.path, "AwaitDone");
        if (sporadic) {
          // Separation: idle until the minimum inter-dispatch interval has
          // elapsed since the dispatch, then behave as Idle.
          b_.def(sep, {"t"},
                 b_.pick({b_.when(b_.lt(t, b_.c(p)),
                                  b_.idle(b_.call(sep, {t1}))),
                          b_.when(b_.ge(t, b_.c(p)), b_.call(idle))}),
                 DefRole::Dispatcher, tc.info.path, "Separation");
        }
        initial_.push_back({idle, {}});
        break;
      }
      case DispatchProtocol::Background: {
        const std::string start = "D_" + m + "_Start";
        const std::string absorb = "D_" + m + "_Absorb";
        const std::string done = "D_" + m + "_Done";
        b_.def(start, {},
               b_.send("dispatch_" + m, b_.c(tc.dispatch_prio), b_.call(absorb)),
               DefRole::Dispatcher, tc.info.path, "DispatcherIdle");
        b_.def(absorb, {},
               b_.pick({b_.recv("done_" + m, b_.c(0), b_.call(done)),
                        b_.idle(b_.call(absorb))}),
               DefRole::Dispatcher, tc.info.path, "AwaitDone");
        b_.def(done, {}, b_.idle(b_.call(done)), DefRole::Dispatcher,
               tc.info.path, "Halted");
        initial_.push_back({start, {}});
        break;
      }
    }
  }

  // --- queues (§4.4) -----------------------------------------------------

  void build_queue(QueueCtx& qc) {
    const std::string name = "Q_" + qc.info.mangled;
    const ExprId n = b_.p(0);
    const std::int32_t cap = qc.info.size;

    restricted_.push_back(qc.enq_event);
    restricted_.push_back(qc.deq_event);

    std::vector<OpenTermId> alts;
    // Enqueue below capacity.
    alts.push_back(b_.when(b_.lt(n, b_.c(cap)),
                           b_.recv(qc.enq_event, b_.c(qc.enq_priority),
                                   b_.call(name, {b_.add(n, b_.c(1))}))));
    // Enqueue at capacity: overflow behaviour.
    if (qc.info.overflow == OverflowProtocol::Error) {
      alts.push_back(b_.when(
          b_.eq(n, b_.c(cap)),
          b_.recv(qc.enq_event, b_.c(qc.enq_priority), b_.nil())));
    } else {
      // DropNewest and DropOldest are indistinguishable for a counter
      // abstraction (§4.4: events carry no payload).
      alts.push_back(b_.when(
          b_.eq(n, b_.c(cap)),
          b_.recv(qc.enq_event, b_.c(qc.enq_priority), b_.call(name, {n}))));
    }
    // Dequeue when non-empty.
    alts.push_back(b_.when(b_.gt(n, b_.c(0)),
                           b_.send(qc.deq_event, b_.c(qc.deq_priority),
                                   b_.call(name, {b_.sub(n, b_.c(1))}))));
    // Time may always pass for the queue itself.
    alts.push_back(b_.idle(b_.call(name, {n})));

    qc.info.def = b_.def(name, {"n"}, b_.pick(std::move(alts)),
                         DefRole::Queue, qc.info.connection, "Queue");
    initial_.push_back({name, {0}});
  }

  // --- device event generators -------------------------------------------

  void build_generator(GeneratorCtx& gc) {
    if (gc.period > 0) {
      const ExprId t = b_.p(0);
      const std::int32_t p = static_cast<std::int32_t>(gc.period);
      b_.def(gc.name, {"t"},
             b_.pick({b_.when(b_.lt(t, b_.c(p)),
                              b_.idle(b_.call(gc.name,
                                              {b_.add(t, b_.c(1))}))),
                      b_.when(b_.eq(t, b_.c(p)),
                              b_.send(gc.enq_event, b_.c(1),
                                      b_.call(gc.name, {b_.c(0)})))}),
             DefRole::Generic, gc.aadl_path, "Generator");
      initial_.push_back(
          {gc.name, {static_cast<acsr::ParamValue>(gc.period)}});
    } else {
      // Nondeterministic environment: may inject an event at any quantum
      // boundary (priority 0 keeps injection optional).
      b_.def(gc.name, {},
             b_.pick({b_.send(gc.enq_event, b_.c(0), b_.call(gc.name)),
                      b_.idle(b_.call(gc.name))}),
             DefRole::Generic, gc.aadl_path, "Generator");
      initial_.push_back({gc.name, {}});
    }
  }

  // --- latency observers (§5) ---------------------------------------------

  bool collect_observers() {
    int index = 0;
    for (const LatencySpec& spec : opts_.latency_specs) {
      ThreadCtx* src = nullptr;
      ThreadCtx* sink = nullptr;
      for (ThreadCtx& tc : threads_) {
        if (tc.info.path == spec.source_path) src = &tc;
        if (tc.info.path == spec.sink_path) sink = &tc;
      }
      if (!src || !sink) {
        diags_.error({}, "latency spec references unknown thread '" +
                             (src ? spec.sink_path : spec.source_path) +
                             "'");
        return false;
      }
      auto latency = to_quanta(spec.max_latency_ns, false, "latency bound",
                               spec.source_path + "->" + spec.sink_path);
      if (!latency) return false;
      ObserverCtx oc;
      oc.info.source_path = spec.source_path;
      oc.info.sink_path = spec.sink_path;
      oc.info.latency = *latency;
      oc.info.description = spec.source_path + " -> " + spec.sink_path +
                            " within " + std::to_string(*latency) +
                            " quanta";
      oc.start_event = "obs_start_" + std::to_string(index);
      oc.end_event = "obs_end_" + std::to_string(index);
      src->observe_starts.push_back(oc.start_event);
      sink->observe_ends.push_back(oc.end_event);
      restricted_.push_back(oc.start_event);
      restricted_.push_back(oc.end_event);
      observers_.push_back(std::move(oc));
      ++index;
    }
    return true;
  }

  void build_observer(ObserverCtx& oc) {
    // O      = (start?).Wait[0] + (end?).O + {}:O
    //          (stray ends — a sink completion with no measurement open —
    //           are absorbed so the sink never blocks)
    // Wait[t] = (end?).O + (start?).Wait[t]      (non-pipelined: keep the
    //           oldest open measurement) + (t<L): {}:Wait[t+1]
    // At t == L the Wait state refuses to let time pass: deadlock =
    // latency violation, found by the explorer like any deadline miss.
    const std::string name = "O_" + mangle(oc.info.source_path) + "_" +
                             mangle(oc.info.sink_path);
    const std::string wait = name + "_Wait";
    const ExprId t = b_.p(0);
    const std::int32_t latency = static_cast<std::int32_t>(oc.info.latency);
    b_.def(name, {},
           b_.pick({b_.recv(oc.start_event, b_.c(1),
                            b_.call(wait, {b_.c(0)})),
                    b_.recv(oc.end_event, b_.c(1), b_.call(name)),
                    b_.idle(b_.call(name))}),
           DefRole::Observer, oc.info.description, "LatencyIdle");
    b_.def(wait, {"t"},
           b_.pick({b_.recv(oc.end_event, b_.c(1), b_.call(name)),
                    b_.recv(oc.start_event, b_.c(1), b_.call(wait, {t})),
                    b_.when(b_.lt(t, b_.c(latency)),
                            b_.idle(b_.call(wait, {b_.add(t, b_.c(1))})))}),
           DefRole::Observer, oc.info.description, "LatencyWait");
    initial_.push_back({name, {}});
  }

  // --- composition ----------------------------------------------------------

  Translation compose() {
    Translation out;
    out.quantum_ns = opts_.quantum_ns;

    // Emit the composition as a definition so the printed ACSR module is
    // self-contained (parse it back, explore "System", same verdict).
    std::vector<OpenTermId> oprocs;
    for (const ThreadCtx& tc : threads_) {
      oprocs.push_back(b_.call(b_.context().definition(tc.info.await_def)
                                   .name));
      out.threads.push_back(tc.info);
    }
    for (const auto& [def_name, args] : initial_) {
      std::vector<ExprId> arg_exprs;
      arg_exprs.reserve(args.size());
      for (acsr::ParamValue v : args) arg_exprs.push_back(b_.c(v));
      oprocs.push_back(b_.call(def_name, std::move(arg_exprs)));
    }
    const OpenTermId body =
        b_.hide(restricted_, b_.context().o_parallel(std::move(oprocs)));
    const acsr::DefId system =
        b_.def("System", {}, body, DefRole::Generic, "", "System");
    out.initial = b_.context().terms().call(system, {});

    for (const QueueCtx& qc : queues_) out.queues.push_back(qc.info);
    for (const ObserverCtx& oc : observers_) out.observers.push_back(oc.info);
    out.restricted_events = restricted_;
    out.symmetry = symmetry_;
    return out;
  }

  Builder b_;
  const aadl::InstanceModel& model_;
  util::DiagnosticEngine& diags_;
  TranslateOptions opts_;

  std::vector<ThreadCtx> threads_;
  SymmetrySpec symmetry_;
  std::vector<QueueCtx> queues_;
  std::vector<GeneratorCtx> generators_;
  std::vector<ObserverCtx> observers_;
  std::vector<std::string> restricted_;
  /// Initial dispatcher/queue/generator/observer states, recorded as
  /// (definition, arguments) so the composition can be emitted both as a
  /// ground term and as a reparseable "System" definition.
  std::vector<std::pair<std::string, std::vector<acsr::ParamValue>>>
      initial_;
};

}  // namespace

const TranslatedThread* Translation::thread_by_path(
    std::string_view path) const {
  for (const TranslatedThread& t : threads)
    if (t.path == path) return &t;
  return nullptr;
}

std::optional<Translation> translate(acsr::Context& ctx,
                                     const aadl::InstanceModel& model,
                                     util::DiagnosticEngine& diags,
                                     const TranslateOptions& opts) {
  Translator tr(ctx, model, diags, opts);
  auto result = tr.run();
  if (diags.has_errors()) return std::nullopt;
  return result;
}

}  // namespace aadlsched::translate
