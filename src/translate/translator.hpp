// AADL -> ACSR translation (the paper's §4, Algorithm 1).
//
// For every processor p and every thread t bound to p we generate:
//   * a thread skeleton (Fig. 4/5): AwaitDispatch and Compute[e, t] states,
//     computation steps on the processor resource guarded by priorities,
//     a Preempted alternative that lets time pass without the cpu, and a
//     completion cascade that raises the thread's output events and `done`;
//   * a dispatcher (Fig. 6): periodic / aperiodic / sporadic / background,
//     which sends `dispatch`, tracks the deadline, and *blocks* (inducing a
//     global deadlock) when the deadline passes without `done` (§4.3);
//   * a queue process per incoming event(-data) semantic connection of a
//     non-periodic thread (§4.4), a counter with Queue_Size and
//     Overflow_Handling_Protocol semantics;
// plus event generators for device-sourced connections, bus resources on
// the possibly-final computation steps of threads whose outgoing data
// connections are bound to a bus (§4.2), and priority encodings for the
// processor's Scheduling_Protocol: RM / DM / HPF are static assignments,
// EDF uses pi = dmax - (d_i - t) and LLF the laxity variant (§5).
//
// Event priorities implement the paper's urgency semantics:
//   * dispatch and queue hand-off taus carry positive priority, so they
//     preempt timed actions — dispatches happen at the boundary where they
//     become possible;
//   * `done` carries priority 0, so completion anywhere in
//     [Compute_Execution_Time.min, .max] stays a nondeterministic *choice*
//     and exploration covers every execution time (the point of §6);
//   * device-sourced event injections carry priority 0: the environment
//     may or may not produce an event at any boundary.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "aadl/instance.hpp"
#include "aadl/properties.hpp"
#include "acsr/builder.hpp"
#include "util/diagnostics.hpp"

namespace aadlsched::translate {

enum class ExecutionTimeModel : std::uint8_t {
  /// The demand of a dispatch is drawn adversarially from
  /// [Compute_Execution_Time.min, .max] when execution starts, and the
  /// thread then needs exactly that much processor time. This matches the
  /// classical WCET interpretation (and RTA / demand analysis / the
  /// simulator), and is the default.
  CommittedDemand,
  /// Literal Fig. 5: the thread may take the completion exit at any point
  /// with at least cmin quanta executed, deciding as late as the deadline.
  /// Under this reading a preempted thread can still "finish small", so
  /// systems that miss only when the demand exceeds cmin are reported
  /// schedulable — a genuine semantic gap we found while reproducing the
  /// paper (see DESIGN.md).
  LateCompletion,
};

enum class EventSendPolicy : std::uint8_t {
  /// Default of §4.4: data-event output is produced when the dispatch
  /// completes (start of the completion cascade).
  AtCompletion,
  /// "Events can be raised at any time when the thread is executing":
  /// bounded to once per dispatch to keep the model finite and Zeno-free.
  OncePerDispatchAnytime,
};

/// End-to-end latency requirement over a flow from the dispatch of a
/// source thread to the completion of a sink thread (§5: observer
/// processes; exact for non-pipelined flows — the paper notes pipelined
/// inputs would need dynamically spawned observers).
struct LatencySpec {
  std::string source_path;  // AADL instance path of the source thread
  std::string sink_path;    // AADL instance path of the sink thread
  std::int64_t max_latency_ns = 0;
};

struct TranslateOptions {
  /// Scheduling quantum. All AADL times are divided by this; execution
  /// times round up, periods and deadlines round down (conservative).
  std::int64_t quantum_ns = 10'000'000;  // 10 ms
  ExecutionTimeModel time_model = ExecutionTimeModel::CommittedDemand;
  EventSendPolicy send_policy = EventSendPolicy::AtCompletion;
  /// Give each thread's dispatch event a distinct priority so the commuting
  /// dispatch taus of one instant happen in a canonical order instead of
  /// every interleaving. Sound (the taus touch disjoint components) and
  /// cuts the explored space roughly 2^n -> n per simultaneous-dispatch
  /// boundary; bench_statespace ablates it.
  bool ordered_instants = true;
  /// Cap on any time parameter after conversion, to protect the explorer
  /// from quantum settings that explode the state space.
  std::int64_t max_quanta = 100'000;
  /// End-to-end latency observers to synthesize (§5).
  std::vector<LatencySpec> latency_specs;
};

struct TranslatedThread {
  const aadl::ComponentInstance* inst = nullptr;
  std::string path;        // instance path
  std::string mangled;     // identifier-safe path
  aadl::DispatchProtocol dispatch = aadl::DispatchProtocol::Periodic;
  std::int64_t cmin = 0, cmax = 0, period = 0, deadline = 0;  // quanta
  int static_priority = 0;  // 0 when the protocol is dynamic (EDF/LLF)
  std::string cpu_resource;
  acsr::DefId compute_def = acsr::kInvalidDef;
  acsr::DefId await_def = acsr::kInvalidDef;
};

struct TranslatedQueue {
  std::string connection;  // semantic connection description
  std::string mangled;
  int size = 1;
  aadl::OverflowProtocol overflow = aadl::OverflowProtocol::DropNewest;
  acsr::DefId def = acsr::kInvalidDef;
};

struct TranslatedObserver {
  std::string description;  // "source -> sink within N quanta"
  std::string source_path;
  std::string sink_path;
  std::int64_t latency = 0;  // quanta
};

/// A set of interchangeable thread instances: same processor, scheduling
/// protocol, dispatch protocol, timing parameters, equal priorities, and an
/// event footprint limited to the thread's private dispatch/done events (no
/// connections, queues, buses, or latency observers touch it). Swapping two
/// roles is then an isomorphism of the translated process network up to
/// renaming their definitions and events, which is what licenses the
/// symmetry reduction in versa (DESIGN.md §13). Roles are identified by
/// mangled thread name; versa rebuilds the per-role def/event ids from the
/// names, which also lets a checkpoint carry the groups across a module
/// print/parse round-trip.
struct SymmetryGroup {
  std::vector<std::string> roles;  // mangled thread names, size >= 2
};

struct SymmetrySpec {
  std::vector<SymmetryGroup> groups;
  /// True when translation ran with ordered_instants == false: dispatch
  /// taus of one instant carry uniform priority, so symmetric and
  /// commuting interleavings actually exist in the state space. Under the
  /// default static ordering the group key (which includes the dispatch
  /// priority) never matches, groups stay empty, and the reducer is the
  /// identity — result JSON is bit-for-bit unchanged.
  bool uniform_dispatch = false;
};

struct Translation {
  acsr::TermId initial = acsr::kNil;
  std::vector<TranslatedThread> threads;
  std::vector<TranslatedQueue> queues;
  std::vector<TranslatedObserver> observers;
  std::vector<std::string> restricted_events;
  SymmetrySpec symmetry;
  std::int64_t quantum_ns = 0;

  const TranslatedThread* thread_by_path(std::string_view path) const;
};

/// Translate a bound AADL instance model into an ACSR process network in
/// `ctx`. Validates the paper's §4.1 preconditions (at least one thread and
/// one processor, every thread bound, mandatory properties present) and
/// reports violations to `diags`. Returns nullopt on error.
std::optional<Translation> translate(acsr::Context& ctx,
                                     const aadl::InstanceModel& model,
                                     util::DiagnosticEngine& diags,
                                     const TranslateOptions& opts = {});

}  // namespace aadlsched::translate
