#include "versa/explorer.hpp"

#include <algorithm>
#include <deque>

namespace aadlsched::versa {

using acsr::Label;
using acsr::TermId;
using acsr::Transition;

ExploreResult explore(acsr::Semantics& sem, TermId initial,
                      const ExploreOptions& opts) {
  ExploreResult result;
  result.initial = initial;

  std::unordered_map<TermId, std::pair<TermId, Label>> parent;
  std::unordered_map<TermId, bool> seen;
  std::deque<TermId> frontier;

  seen.emplace(initial, true);
  frontier.push_back(initial);
  result.states = 1;

  while (!frontier.empty()) {
    const TermId state = frontier.front();
    frontier.pop_front();

    const std::vector<Transition> fan = sem.prioritized(state);
    // Stuck: no transitions at all, or nothing but instantaneous
    // self-loops (e.g. a full drop-protocol queue absorbing environment
    // events while time is frozen) — time can never progress again.
    bool stuck = true;
    for (const Transition& tr : fan)
      stuck &= !tr.label.is_timed() && tr.target == state;
    if (stuck) {
      ++result.deadlock_count;
      if (!result.deadlock_found) {
        result.deadlock_found = true;
        result.first_deadlock = state;
      }
      if (opts.stop_at_first_deadlock) break;
      continue;
    }
    for (const Transition& tr : fan) {
      ++result.transitions;
      if (seen.emplace(tr.target, true).second) {
        if (opts.record_trace) parent.emplace(tr.target, std::make_pair(state, tr.label));
        ++result.states;
        if (result.states >= opts.max_states) {
          // Bailed out: leave `complete` false.
          return result;
        }
        frontier.push_back(tr.target);
      }
    }
  }

  result.complete =
      frontier.empty() || (result.deadlock_found && opts.stop_at_first_deadlock);

  if (result.deadlock_found && opts.record_trace) {
    std::vector<Step> rev;
    TermId cur = result.first_deadlock;
    while (cur != initial) {
      const auto it = parent.find(cur);
      if (it == parent.end()) break;  // initial state itself deadlocked
      rev.push_back(Step{it->second.second, cur});
      cur = it->second.first;
    }
    std::reverse(rev.begin(), rev.end());
    result.trace = std::move(rev);
  }
  return result;
}

Lts build_lts(acsr::Semantics& sem, TermId initial,
              std::uint64_t max_states) {
  Lts lts;
  lts.states.push_back(initial);
  lts.index.emplace(initial, 0);
  for (std::size_t i = 0; i < lts.states.size(); ++i) {
    const TermId state = lts.states[i];
    std::vector<Transition> fan = sem.prioritized(state);
    for (const Transition& tr : fan) {
      if (lts.index.emplace(tr.target, lts.states.size()).second) {
        if (lts.states.size() >= max_states) break;
        lts.states.push_back(tr.target);
      }
    }
    lts.edges.push_back(std::move(fan));
    if (lts.states.size() >= max_states) {
      // Fill remaining edge slots so states/edges stay parallel arrays.
      while (lts.edges.size() < lts.states.size()) lts.edges.emplace_back();
      break;
    }
  }
  while (lts.edges.size() < lts.states.size())
    lts.edges.push_back(sem.prioritized(lts.states[lts.edges.size()]));
  return lts;
}

}  // namespace aadlsched::versa
