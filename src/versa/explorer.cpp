#include "versa/explorer.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <deque>
#include <memory>
#include <optional>
#include <thread>

#include "util/concurrent_set.hpp"
#include "util/flat_set.hpp"
#include "util/thread_pool.hpp"

namespace aadlsched::versa {

using acsr::Label;
using acsr::TermId;
using acsr::Transition;

namespace {

using Clock = std::chrono::steady_clock;

/// Parent link for counterexample reconstruction, stored flat (one packed
/// entry per discovered state instead of an unordered_map node).
struct ParentLink {
  TermId source = acsr::kNil;
  Label label;
};

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

/// Stuck: no transitions at all, or nothing but instantaneous self-loops
/// (e.g. a full drop-protocol queue absorbing environment events while time
/// is frozen) — time can never progress again.
bool is_stuck(TermId state, const std::vector<Transition>& fan) {
  bool stuck = true;
  for (const Transition& tr : fan)
    stuck &= !tr.label.is_timed() && tr.target == state;
  return stuck;
}

void reconstruct_trace(ExploreResult& result,
                       const util::FlatIdMap<ParentLink>& parent) {
  std::vector<Step> rev;
  TermId cur = result.first_deadlock;
  while (cur != result.initial) {
    const ParentLink* link = parent.find(cur);
    if (!link) break;  // initial state itself deadlocked
    rev.push_back(Step{link->label, cur});
    cur = link->source;
  }
  std::reverse(rev.begin(), rev.end());
  result.trace = std::move(rev);
}

}  // namespace

ExploreResult explore(acsr::Semantics& sem, TermId initial,
                      const ExploreOptions& opts) {
  const auto t0 = Clock::now();
  const acsr::Semantics::Stats stats_before = sem.stats();
  ExploreResult result;

  Reducer reducer(sem, opts.symmetry_model, opts.reduction);
  // All stored states are canonical orbit representatives (identity when
  // the reduction layer is off or inert).
  result.initial = reducer.canonical(initial);

  util::FlatIdMap<ParentLink> parent;
  util::FlatIdSet seen;
  std::deque<TermId> frontier;

  std::uint64_t expanded = 0;
  bool recording = opts.record_trace;

  // Rolling level boundary so the partial verdict can say "no deadlock
  // within BFS depth d" (O(1) space: count nodes left in the current
  // level).
  std::uint64_t level_remaining = 1;
  std::uint64_t next_level = 0;

  if (opts.resume && !opts.resume->empty()) {
    // Warm start: seed the visited set, both frontiers and every counter
    // from the paused run. The deque layout below (current-level remainder
    // followed by the next level) is exactly the loop invariant, so the
    // resumed BFS is indistinguishable from one that never stopped — except
    // that parent links are gone, so no trace can be recorded.
    const Wavefront& w = *opts.resume;
    result.initial = w.initial;
    seen.reserve(w.visited.size());
    for (const TermId s : w.visited) seen.insert(s);
    frontier.insert(frontier.end(), w.frontier.begin(), w.frontier.end());
    frontier.insert(frontier.end(), w.next_frontier.begin(),
                    w.next_frontier.end());
    level_remaining = w.frontier.size();
    next_level = w.next_frontier.size();
    result.states = w.states;
    result.transitions = w.transitions;
    result.depth = w.depth;
    result.peak_frontier = std::max<std::uint64_t>(w.peak_frontier,
                                                   frontier.size());
    result.deadlock_count = w.deadlock_count;
    result.deadlock_found = w.deadlock_found;
    result.first_deadlock = w.first_deadlock;
    recording = false;
  } else {
    seen.insert(result.initial);
    frontier.push_back(result.initial);
    result.states = 1;
    result.peak_frontier = 1;
  }

  // Hash-cons tables + fan memo + flat visited/parent tables + frontier.
  // The flat tables report their actual footprint, not a per-node guess.
  const auto approx_memory = [&]() -> std::uint64_t {
    return sem.context().approx_bytes() + sem.approx_bytes() +
           seen.approx_bytes() + parent.approx_bytes() +
           frontier.size() * sizeof(TermId);
  };
  util::BudgetTracker tracker(opts.budget, approx_memory);

  const auto finish = [&] {
    result.worker_states = {expanded};
    result.sem_stats.computed = sem.stats().computed - stats_before.computed;
    result.sem_stats.memo_hits =
        sem.stats().memo_hits - stats_before.memo_hits;
    // Reported even when no memory budget probed it: bench_reduction and
    // the E11 table read bytes/state off any run.
    result.approx_memory_bytes = approx_memory();
    if (reducer.active()) {
      result.symmetry_groups = opts.symmetry_model->groups().size();
      result.states_saved = reducer.stats().states_saved;
      result.commuted_expansions = reducer.stats().commuted_expansions;
    }
    result.wall_ms = ms_since(t0);
  };

  // Snapshot the paused BFS for a later warm resume. Only meaningful at the
  // loop top, where the frontier deque is exactly [current-level remainder]
  // ++ [next level] — both early returns below sit there.
  const auto capture_wavefront = [&] {
    if (!opts.capture) return;
    Wavefront& w = *opts.capture;
    w = {};
    w.initial = result.initial;
    w.frontier.assign(frontier.begin(),
                      frontier.begin() + static_cast<std::ptrdiff_t>(
                                             level_remaining));
    w.next_frontier.assign(frontier.begin() + static_cast<std::ptrdiff_t>(
                                                  level_remaining),
                           frontier.end());
    w.visited.reserve(seen.size());
    seen.for_each([&](std::uint32_t s) { w.visited.push_back(s); });
    w.states = result.states;
    w.transitions = result.transitions;
    w.depth = result.depth;
    w.peak_frontier = result.peak_frontier;
    w.deadlock_count = result.deadlock_count;
    w.deadlock_found = result.deadlock_found;
    w.first_deadlock = result.first_deadlock;
  };

  while (!frontier.empty()) {
    // The state cap is enforced here (not mid-fan) so a capped run stops on
    // a state boundary with a consistent wavefront for checkpointing.
    if (result.states >= opts.max_states) {
      result.stop = util::StopReason::MaxStates;
      capture_wavefront();
      finish();
      return result;  // complete stays false: partial result
    }
    const util::BudgetStatus budget = tracker.check(result.states);
    if (budget.signal == util::BudgetSignal::MemoryPressure && recording) {
      // Graceful degradation: give the run a second life by releasing the
      // parent links (usually the largest non-essential structure) before
      // giving up on the verdict itself.
      parent = {};
      recording = false;
      result.trace_dropped = true;
      tracker.note_degraded();
    } else if (budget.signal != util::BudgetSignal::Proceed) {
      result.stop = budget.reason;
      capture_wavefront();
      finish();
      return result;  // complete stays false: partial result
    }

    if (level_remaining == 0) {
      ++result.depth;
      level_remaining = next_level;
      next_level = 0;
    }
    const TermId state = frontier.front();
    frontier.pop_front();
    --level_remaining;

    std::vector<Transition> fan = sem.prioritized(state);
    ++expanded;
    if (is_stuck(state, fan)) {
      ++result.deadlock_count;
      if (!result.deadlock_found) {
        result.deadlock_found = true;
        result.first_deadlock = state;
      }
      if (opts.stop_at_first_deadlock) break;
      continue;
    }
    reducer.linearize(state, fan);
    for (const Transition& tr : fan) {
      ++result.transitions;
      const TermId target = reducer.canonical(tr.target);
      if (seen.insert(target)) {
        if (recording) parent.emplace(target, ParentLink{state, tr.label});
        ++result.states;
        ++next_level;
        frontier.push_back(target);
        result.peak_frontier =
            std::max<std::uint64_t>(result.peak_frontier, frontier.size());
      }
    }
  }

  result.complete =
      frontier.empty() || (result.deadlock_found && opts.stop_at_first_deadlock);

  if (result.deadlock_found && recording) reconstruct_trace(result, parent);
  finish();
  return result;
}

ExploreResult explore_parallel(acsr::Context& ctx, TermId initial,
                               const ExploreOptions& opts,
                               const ParallelExploreOptions& popts) {
  const auto t0 = Clock::now();
  std::size_t workers = popts.workers;
  if (workers == 0)
    workers = std::max<std::size_t>(1, std::thread::hardware_concurrency());

  ExploreResult result;

  // One Semantics (and one Reducer: its memos are worker-local too) per
  // worker, so the hot path takes no lock at all on a memo hit.
  // Canonicalization interns terms, which is safe under shared mode; the
  // canonical function itself is per-run deterministic, so every worker
  // computes the same representative for the same state.
  std::vector<std::unique_ptr<acsr::Semantics>> sems;
  std::vector<std::unique_ptr<Reducer>> reducers;
  sems.reserve(workers);
  reducers.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    sems.push_back(std::make_unique<acsr::Semantics>(ctx));
    reducers.push_back(std::make_unique<Reducer>(
        *sems.back(), opts.symmetry_model, opts.reduction));
  }
  result.initial = reducers[0]->canonical(initial);

  util::ConcurrentSet visited(1u << 16, workers > 1 ? 64 : 1);

  util::FlatIdMap<ParentLink> parent;
  bool recording = opts.record_trace;

  // Current level plus, on a warm resume, the partially-discovered next
  // level carried over from the paused run (it is already in `visited`, so
  // it must be injected into the first merged frontier rather than
  // rediscovered).
  std::vector<TermId> level;
  std::vector<TermId> carried;
  if (opts.resume && !opts.resume->empty()) {
    const Wavefront& w = *opts.resume;
    result.initial = w.initial;
    for (const TermId s : w.visited) visited.insert(s);
    result.states = w.states;
    result.transitions = w.transitions;
    result.depth = w.depth;
    result.peak_frontier = w.peak_frontier;
    result.deadlock_count = w.deadlock_count;
    result.deadlock_found = w.deadlock_found;
    result.first_deadlock = w.first_deadlock;
    recording = false;
    if (!w.frontier.empty()) {
      level = w.frontier;
      carried = w.next_frontier;
    } else {
      // The stop fell on a level boundary: the next level becomes the
      // current one, exactly as the cold loop would have rolled it.
      level = w.next_frontier;
      ++result.depth;
    }
  } else {
    visited.insert(result.initial);
    result.states = 1;
    level.push_back(result.initial);
  }

  // Budget governance. The coordinator runs the full tracker (clock +
  // memory probe) at level boundaries, where workers are quiescent; inside
  // a level each worker runs a cheap per-block probe — cancel flag,
  // deadline time point, fault injector — and the first worker to observe
  // exhaustion publishes the StopReason here, draining the whole pool
  // within one block per worker.
  // Probed only while workers are quiescent (level boundaries), so the
  // per-worker fan memos can be summed safely.
  const auto approx_memory = [&]() -> std::uint64_t {
    std::uint64_t bytes =
        ctx.approx_bytes() + visited.approx_bytes() + parent.approx_bytes();
    for (const auto& sem : sems) bytes += sem->approx_bytes();
    return bytes;
  };
  util::BudgetTracker tracker(opts.budget, approx_memory);
  std::atomic<std::uint8_t> worker_stop{
      static_cast<std::uint8_t>(util::StopReason::None)};
  const auto block_budget_ok = [&]() -> bool {
    if (worker_stop.load(std::memory_order_relaxed) !=
        static_cast<std::uint8_t>(util::StopReason::None))
      return false;
    util::StopReason r = util::StopReason::None;
    if (opts.budget.cancel && opts.budget.cancel->cancelled())
      r = util::StopReason::Cancelled;
    else if (tracker.has_deadline() && Clock::now() >= tracker.deadline())
      r = util::StopReason::Deadline;
    else
      r = util::FaultInjector::global().trip_budget_check();
    if (r == util::StopReason::None) return true;
    std::uint8_t expected =
        static_cast<std::uint8_t>(util::StopReason::None);
    worker_stop.compare_exchange_strong(expected,
                                        static_cast<std::uint8_t>(r),
                                        std::memory_order_relaxed);
    return false;
  };

  struct Discovery {
    TermId target;
    TermId source;
    Label label;
  };
  struct WorkerOut {
    std::vector<Discovery> discovered;
    std::vector<std::pair<std::size_t, TermId>> deadlocks;  // (level idx, s)
    std::uint64_t transitions = 0;
    std::uint64_t processed = 0;
  };
  std::vector<WorkerOut> outs(workers);

  // Shared-mode window + pool only when there is real parallelism; at
  // workers == 1 the engine runs lock-free on this thread.
  std::optional<acsr::Context::SharedModeGuard> shared;
  std::optional<util::ThreadPool> pool;
  if (workers > 1) {
    shared.emplace(ctx);
    pool.emplace(workers);
  }

  const std::size_t block = std::max<std::size_t>(1, popts.block);
  bool exhausted = false;

  // Snapshot the paused BFS for a later warm resume; runs while the pool is
  // quiescent. `processed` is the expanded prefix of the current level.
  const auto capture_wavefront = [&](std::size_t processed,
                                     const std::vector<TermId>& next) {
    if (!opts.capture) return;
    Wavefront& w = *opts.capture;
    w = {};
    w.initial = result.initial;
    w.frontier.assign(level.begin() + static_cast<std::ptrdiff_t>(processed),
                      level.end());
    w.next_frontier = next;
    w.visited.reserve(visited.size());
    visited.for_each([&](std::uint64_t k) {
      w.visited.push_back(static_cast<TermId>(k));
    });
    w.states = result.states;
    w.transitions = result.transitions;
    w.depth = result.depth;
    w.peak_frontier = result.peak_frontier;
    w.deadlock_count = result.deadlock_count;
    w.deadlock_found = result.deadlock_found;
    w.first_deadlock = result.first_deadlock;
  };

  const auto process_range = [&](acsr::Semantics& sem, Reducer& reducer,
                                 WorkerOut& out,
                                 const std::vector<TermId>& lvl,
                                 std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      const TermId state = lvl[i];
      std::vector<Transition> fan = sem.prioritized(state);
      ++out.processed;
      if (is_stuck(state, fan)) {
        out.deadlocks.emplace_back(i, state);
        continue;
      }
      reducer.linearize(state, fan);
      for (const Transition& tr : fan) {
        ++out.transitions;
        const TermId target = reducer.canonical(tr.target);
        if (visited.insert(target))
          out.discovered.push_back(Discovery{target, state, tr.label});
      }
    }
  };

  while (true) {
    result.peak_frontier =
        std::max<std::uint64_t>(result.peak_frontier, level.size());
    for (WorkerOut& o : outs) {
      o.discovered.clear();
      o.deadlocks.clear();
      o.transitions = 0;
    }

    // Expanded prefix of the level: blocks are handed out in order and a
    // grabbed block always completes (the stop flag is only checked before
    // a grab), so the processed states are exactly level[0, processed).
    std::size_t processed = level.size();
    if (!pool || level.size() < popts.serial_frontier_threshold) {
      for (std::size_t b = 0; b < level.size(); b += block) {
        if (!block_budget_ok()) {
          processed = b;
          break;
        }
        process_range(*sems[0], *reducers[0], outs[0], level, b,
                      std::min(b + block, level.size()));
      }
    } else {
      std::atomic<std::size_t> cursor{0};
      pool->parallel_for(workers, [&](std::size_t w) {
        while (block_budget_ok()) {
          const std::size_t b =
              cursor.fetch_add(block, std::memory_order_relaxed);
          if (b >= level.size()) break;
          process_range(*sems[w], *reducers[w], outs[w], level, b,
                        std::min(b + block, level.size()));
        }
      });
      processed =
          std::min(cursor.load(std::memory_order_relaxed), level.size());
    }

    // Merge the level: deadlocks first (earliest level-position wins so the
    // pick does not depend on which worker grabbed which block), then the
    // deduplicated next frontier.
    std::size_t first_idx = level.size();
    for (const WorkerOut& out : outs) {
      result.transitions += out.transitions;
      for (const auto& [idx, d] : out.deadlocks) {
        ++result.deadlock_count;
        if (!result.deadlock_found || idx < first_idx) {
          result.deadlock_found = true;
          result.first_deadlock = d;
          first_idx = idx;
        }
      }
    }
    std::vector<TermId> next;
    next.reserve(carried.size());
    // States discovered for this level's successor by the run this one
    // resumed: already in `visited`, so they only exist here.
    next.insert(next.end(), carried.begin(), carried.end());
    carried.clear();
    for (WorkerOut& out : outs) {
      for (const Discovery& d : out.discovered) {
        if (recording) parent.emplace(d.target, ParentLink{d.source, d.label});
        ++result.states;
        next.push_back(d.target);
      }
    }

    // A worker observed budget exhaustion mid-level: the partial level is
    // already merged (states/transitions/deadlocks found so far count);
    // publish the reason, checkpoint the unexpanded remainder and stop.
    {
      const auto ws = static_cast<util::StopReason>(
          worker_stop.load(std::memory_order_relaxed));
      if (ws != util::StopReason::None) {
        result.stop = ws;
        capture_wavefront(processed, next);
        break;
      }
    }

    if (result.deadlock_found && opts.stop_at_first_deadlock) break;
    if (result.states >= opts.max_states) {
      result.stop = util::StopReason::MaxStates;
      capture_wavefront(level.size(), next);
      break;
    }
    if (next.empty()) {
      exhausted = true;
      break;
    }

    // Level boundary: full budget check (clock + memory probe) while every
    // worker is quiescent. Memory pressure degrades before it kills — the
    // parent links are released and the run continues trace-less.
    const util::BudgetStatus budget = tracker.check_now(result.states);
    if (budget.signal == util::BudgetSignal::MemoryPressure && recording) {
      parent = {};
      recording = false;
      result.trace_dropped = true;
      tracker.note_degraded();
    } else if (budget.signal != util::BudgetSignal::Proceed) {
      result.stop = budget.reason;
      capture_wavefront(level.size(), next);
      break;
    }

    ++result.depth;
    level = std::move(next);
  }

  result.complete =
      result.stop == util::StopReason::None &&
      (exhausted || (result.deadlock_found && opts.stop_at_first_deadlock));

  if (result.deadlock_found && recording) reconstruct_trace(result, parent);
  result.approx_memory_bytes = approx_memory();

  result.worker_states.reserve(workers);
  for (const WorkerOut& out : outs)
    result.worker_states.push_back(out.processed);
  for (const auto& sem : sems) {
    result.sem_stats.computed += sem->stats().computed;
    result.sem_stats.memo_hits += sem->stats().memo_hits;
  }
  if (reducers[0]->active()) {
    result.symmetry_groups = opts.symmetry_model->groups().size();
    // Per-worker memos may fold the same raw state independently; the sum
    // is an upper estimate (exact at workers == 1).
    for (const auto& reducer : reducers) {
      result.states_saved += reducer->stats().states_saved;
      result.commuted_expansions += reducer->stats().commuted_expansions;
    }
  }
  result.wall_ms = ms_since(t0);
  return result;
}

Lts build_lts(acsr::Semantics& sem, TermId initial,
              std::uint64_t max_states) {
  Lts lts;
  lts.states.push_back(initial);
  lts.index.emplace(initial, 0);
  for (std::size_t i = 0; i < lts.states.size(); ++i) {
    const TermId state = lts.states[i];
    std::vector<Transition> fan = sem.prioritized(state);
    for (const Transition& tr : fan) {
      if (lts.index.contains(tr.target)) continue;
      // Reserve the slot only while there is capacity for it; otherwise the
      // index would hold a dangling entry for a state never pushed.
      if (lts.states.size() >= max_states) continue;
      lts.index.emplace(tr.target, lts.states.size());
      lts.states.push_back(tr.target);
    }
    lts.edges.push_back(std::move(fan));
  }
  return lts;
}

}  // namespace aadlsched::versa
