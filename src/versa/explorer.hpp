// State-space exploration and deadlock detection (the paper's VERSA role).
//
// The explorer walks the *prioritized* transition relation breadth-first
// from an initial ground term. For models produced by the AADL translation,
// a reachable state with no outgoing prioritized transitions (a deadlock) is
// exactly a timing violation (§5); BFS order means the reported failing
// scenario is a shortest one.
//
// Two engines share that contract:
//   * explore()          — the classic serial BFS;
//   * explore_parallel() — level-synchronous parallel BFS: each BFS level is
//     carved into blocks processed by a worker pool, duplicates are resolved
//     through a sharded concurrent visited set, and workers extend the
//     shared hash-cons tables under Context shared mode with per-worker
//     Semantics memo caches. Processing level-by-level preserves the BFS
//     depth invariant, so the counterexample is still a shortest one and
//     states/transitions are identical for every worker count.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "acsr/semantics.hpp"
#include "util/budget.hpp"
#include "versa/reduction.hpp"

namespace aadlsched::versa {

/// A paused BFS: everything needed to continue an exploration later,
/// possibly in a different process against a restored Context (see
/// versa/checkpoint.hpp). The invariant both engines maintain is that every
/// reachable-but-unvisited state is reachable through `frontier` ++
/// `next_frontier`, so seeding a fresh run with (visited, frontier,
/// counters) continues the exact same BFS — same final verdict and, on a
/// run that completes the space, the same state/transition counts.
struct Wavefront {
  acsr::TermId initial = acsr::kNil;
  /// Unexpanded remainder of the level being expanded when the run stopped
  /// (in level order; may be empty when the stop fell on a level boundary).
  std::vector<acsr::TermId> frontier;
  /// States already discovered for the following level.
  std::vector<acsr::TermId> next_frontier;
  /// Every state ever discovered (includes the two frontiers).
  std::vector<acsr::TermId> visited;
  std::uint64_t states = 0;
  std::uint64_t transitions = 0;
  /// BFS depth of the level `frontier` belongs to.
  std::uint64_t depth = 0;
  std::uint64_t peak_frontier = 0;
  std::uint64_t deadlock_count = 0;
  bool deadlock_found = false;
  acsr::TermId first_deadlock = acsr::kNil;

  bool empty() const { return frontier.empty() && next_frontier.empty(); }
};

struct ExploreOptions {
  /// Stop after this many states (guards against runaway models).
  std::uint64_t max_states = 5'000'000;
  /// Record parents for counterexample reconstruction.
  bool record_trace = true;
  /// Stop at the first deadlock instead of exploring the full space.
  bool stop_at_first_deadlock = true;
  /// Resource envelope: wall-clock deadline, extra state cap, approximate
  /// memory ceiling, cooperative cancellation. Default = unlimited. The
  /// serial engine checks per expansion; the parallel engine checks at
  /// level boundaries plus cheap per-block cancellation/deadline probes, so
  /// a huge level cannot outlive the budget by more than one block per
  /// worker. Under memory pressure the engine degrades first — trace
  /// recording is dropped (ExploreResult::trace_dropped) — and only stops
  /// when pressure persists. See DESIGN.md §10.
  util::RunBudget budget;

  // --- warm re-exploration (checkpointing) -----------------------------
  /// When non-null and the run stops on a budget (Deadline / MemoryBudget /
  /// MaxStates / Cancelled / the RunBudget state cap), the engine writes
  /// the paused BFS here so the caller can serialize it. Left empty on a
  /// conclusive run (complete, or stopped at a deadlock).
  Wavefront* capture = nullptr;
  /// When non-null and non-empty, the run continues this wavefront instead
  /// of starting from `initial`: the visited set, both frontiers and all
  /// counters are seeded from it. A resumed run never records a trace (the
  /// parent links of the original run are gone), so a deadlock found after
  /// a resume reports without a counterexample timeline.
  const Wavefront* resume = nullptr;

  // --- reduction layer (DESIGN.md §13) ---------------------------------
  /// Which reductions to run. Only consulted when `symmetry_model` is set
  /// and active; the default translation produces an empty (inactive)
  /// model, for which both engines behave bit-identically to a run
  /// without the layer.
  ReductionOptions reduction;
  /// Translation-time symmetry groups, resolved against the Context.
  /// Null disables the layer entirely. Not owned.
  const SymmetryModel* symmetry_model = nullptr;
};

struct ParallelExploreOptions {
  /// Worker threads for a single-model exploration. 1 runs the level-
  /// synchronous engine on the calling thread (no pool, no shared-mode
  /// locking); 0 means hardware concurrency.
  std::size_t workers = 1;
  /// Levels smaller than this are expanded inline by the coordinator — the
  /// automatic serial fallback for the shallow, narrow prefix of the BFS
  /// where fan-out cannot amortize the barrier.
  std::size_t serial_frontier_threshold = 128;
  /// States handed to a worker per grab of the shared level cursor.
  std::size_t block = 32;
};

/// One step of a counterexample: the label taken and the state reached.
struct Step {
  acsr::Label label;
  acsr::TermId target = acsr::kNil;
};

struct ExploreResult {
  bool complete = false;        // whole reachable space visited within limits
  bool deadlock_found = false;
  std::uint64_t states = 0;             // distinct states visited
  std::uint64_t transitions = 0;        // prioritized transitions traversed
  std::uint64_t deadlock_count = 0;     // deadlocks seen (>=1 if found)
  acsr::TermId initial = acsr::kNil;
  acsr::TermId first_deadlock = acsr::kNil;
  /// Shortest path (BFS) from the initial state to the first deadlock;
  /// empty when schedulable or when record_trace was off.
  std::vector<Step> trace;

  // --- resource governance ---------------------------------------------
  /// Why the run ended early; None on a complete (or conclusively
  /// deadlocked) exploration. When != None the partial result still
  /// carries meaning: no deadlock is reachable within `depth` BFS levels /
  /// `states` states.
  util::StopReason stop = util::StopReason::None;
  /// Trace recording was dropped mid-run to relieve memory pressure; the
  /// verdict is unaffected but no counterexample trace is available.
  bool trace_dropped = false;
  /// Deepest BFS level fully expanded (0 = only the initial state).
  std::uint64_t depth = 0;
  /// Last sampled footprint estimate (0 if no memory ceiling was probed).
  std::uint64_t approx_memory_bytes = 0;

  // --- reduction observability -----------------------------------------
  /// Symmetry groups the active reduction model carried (0 when the layer
  /// was off or inert). Counters below are *reduced* figures: with the
  /// layer active, `states` counts orbit representatives.
  std::uint64_t symmetry_groups = 0;
  /// Distinct raw states folded into an already-canonical representative.
  std::uint64_t states_saved = 0;
  /// Expansions linearized by the commutation rule.
  std::uint64_t commuted_expansions = 0;

  // --- observability ---------------------------------------------------
  double wall_ms = 0;                 // exploration wall time
  std::uint64_t peak_frontier = 0;    // largest BFS frontier/level seen
  /// States expanded per worker (one entry for the serial explorer).
  std::vector<std::uint64_t> worker_states;
  /// Aggregated successor-fan memo effectiveness across all Semantics
  /// instances involved (one per worker).
  acsr::Semantics::Stats sem_stats;

  bool schedulable() const { return complete && !deadlock_found; }
};

/// Breadth-first exploration of the prioritized transition system.
ExploreResult explore(acsr::Semantics& sem, acsr::TermId initial,
                      const ExploreOptions& opts = {});

/// Level-synchronous parallel BFS over one model. Constructs one Semantics
/// per worker on the shared Context (which is put in shared mode for the
/// duration when workers > 1).
///
/// Compared with explore(), the only behavioural difference is stop
/// granularity: stop_at_first_deadlock and max_states take effect at level
/// boundaries, so on a deadlocked model the whole deadlock level is counted
/// (the serial engine stops mid-level). On a fully explored space — any
/// schedulable model, or stop_at_first_deadlock = false — states,
/// transitions, verdict and trace length are identical to explore(), and
/// they are identical across worker counts and runs in every case.
ExploreResult explore_parallel(acsr::Context& ctx, acsr::TermId initial,
                               const ExploreOptions& opts = {},
                               const ParallelExploreOptions& popts = {});

/// A fully materialized labelled transition system, for tests and the
/// playground example (small models only).
struct Lts {
  std::vector<acsr::TermId> states;  // BFS discovery order; [0] = initial
  // edges[i]: prioritized transitions out of states[i]
  std::vector<std::vector<acsr::Transition>> edges;
  std::unordered_map<acsr::TermId, std::size_t> index;
};

Lts build_lts(acsr::Semantics& sem, acsr::TermId initial,
              std::uint64_t max_states = 100'000);

}  // namespace aadlsched::versa
