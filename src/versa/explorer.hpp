// State-space exploration and deadlock detection (the paper's VERSA role).
//
// The explorer walks the *prioritized* transition relation breadth-first
// from an initial ground term. For models produced by the AADL translation,
// a reachable state with no outgoing prioritized transitions (a deadlock) is
// exactly a timing violation (§5); BFS order means the reported failing
// scenario is a shortest one.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "acsr/semantics.hpp"

namespace aadlsched::versa {

struct ExploreOptions {
  /// Stop after this many states (guards against runaway models).
  std::uint64_t max_states = 5'000'000;
  /// Record parents for counterexample reconstruction.
  bool record_trace = true;
  /// Stop at the first deadlock instead of exploring the full space.
  bool stop_at_first_deadlock = true;
};

/// One step of a counterexample: the label taken and the state reached.
struct Step {
  acsr::Label label;
  acsr::TermId target = acsr::kNil;
};

struct ExploreResult {
  bool complete = false;        // whole reachable space visited within limits
  bool deadlock_found = false;
  std::uint64_t states = 0;             // distinct states visited
  std::uint64_t transitions = 0;        // prioritized transitions traversed
  std::uint64_t deadlock_count = 0;     // deadlocks seen (>=1 if found)
  acsr::TermId initial = acsr::kNil;
  acsr::TermId first_deadlock = acsr::kNil;
  /// Shortest path (BFS) from the initial state to the first deadlock;
  /// empty when schedulable or when record_trace was off.
  std::vector<Step> trace;

  bool schedulable() const { return complete && !deadlock_found; }
};

/// Breadth-first exploration of the prioritized transition system.
ExploreResult explore(acsr::Semantics& sem, acsr::TermId initial,
                      const ExploreOptions& opts = {});

/// A fully materialized labelled transition system, for tests and the
/// playground example (small models only).
struct Lts {
  std::vector<acsr::TermId> states;  // BFS discovery order; [0] = initial
  // edges[i]: prioritized transitions out of states[i]
  std::vector<std::vector<acsr::Transition>> edges;
  std::unordered_map<acsr::TermId, std::size_t> index;
};

Lts build_lts(acsr::Semantics& sem, acsr::TermId initial,
              std::uint64_t max_states = 100'000);

}  // namespace aadlsched::versa
