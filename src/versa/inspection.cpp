#include "versa/inspection.hpp"

#include "acsr/printer.hpp"

namespace aadlsched::versa {

namespace {

void walk(const acsr::Context& ctx, acsr::TermId t,
          std::vector<ComponentState>& out) {
  using acsr::TermKind;
  const acsr::TermNode& n = ctx.terms().node(t);
  switch (n.kind) {
    case TermKind::Parallel: {
      const auto p = ctx.terms().payload(t);
      for (acsr::TermId child : p) walk(ctx, child, out);
      return;
    }
    case TermKind::Restrict:
      walk(ctx, n.b, out);
      return;
    case TermKind::Scope:
      walk(ctx, n.a, out);
      return;
    case TermKind::Call: {
      const acsr::Definition& def = ctx.definition(n.a);
      ComponentState cs;
      cs.def = n.a;
      cs.role = def.role;
      cs.name = def.name;
      cs.aadl_path = def.aadl_path;
      cs.state_name = def.state_name;
      const auto args = ctx.terms().payload(t);
      cs.params.reserve(args.size());
      for (std::uint32_t a : args)
        cs.params.push_back(static_cast<acsr::ParamValue>(a));
      out.push_back(std::move(cs));
      return;
    }
    default: {
      ComponentState cs;
      acsr::Printer printer(ctx);
      std::string rendering = printer.ground_term(t);
      if (rendering.size() > 64) rendering.resize(64);
      cs.name = std::move(rendering);
      out.push_back(std::move(cs));
      return;
    }
  }
}

}  // namespace

std::vector<ComponentState> inspect(const acsr::Context& ctx,
                                    acsr::TermId state) {
  std::vector<ComponentState> out;
  walk(ctx, state, out);
  return out;
}

const ComponentState* find_by_path(const std::vector<ComponentState>& states,
                                   std::string_view aadl_path) {
  for (const ComponentState& cs : states)
    if (cs.aadl_path == aadl_path) return &cs;
  return nullptr;
}

const ComponentState* find_by_role(const std::vector<ComponentState>& states,
                                   std::string_view aadl_path,
                                   acsr::DefRole role) {
  for (const ComponentState& cs : states)
    if (cs.role == role && cs.aadl_path == aadl_path) return &cs;
  return nullptr;
}

}  // namespace aadlsched::versa
