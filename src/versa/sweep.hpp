// Parallel analysis sweeps.
//
// Two axes of parallelism exist in this codebase, and they compose:
//   * Across models (this file): independent analyses — one model variant
//     per job, each with a private Context — run concurrently on a thread
//     pool. Utilization sweeps are embarrassingly parallel and scale
//     linearly.
//   * Within one model: versa::explore_parallel runs a level-synchronous
//     parallel BFS over a single prioritized transition system, with the
//     hash-cons tables in Context shared-mode (striped locks) and a sharded
//     concurrent visited set. See DESIGN.md §8 for the architecture and the
//     shortest-trace argument.
// An earlier revision claimed single-model exploration was inherently
// serial "pointer-chasing over a shared hash-cons table"; chunked
// append-only table storage plus per-worker transition-memo caches proved
// that wrong — most of the hot path never takes a lock.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "util/thread_pool.hpp"

namespace aadlsched::versa {

/// Run `job(i)` for i in [0, jobs) across `workers` threads (0 = hardware
/// concurrency). Each job must be self-contained (build its own Context).
void parallel_sweep(std::size_t jobs,
                    const std::function<void(std::size_t)>& job,
                    std::size_t workers = 0);

}  // namespace aadlsched::versa
