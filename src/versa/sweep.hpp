// Parallel analysis sweeps.
//
// A Context is deliberately single-threaded (every table is an interner),
// so parallelism lives one level up: independent analyses — one model
// variant per job, each with a private Context — run concurrently on a
// thread pool. This is the structure the benches use for utilization
// sweeps and is the honest parallelization of this workload: exploration of
// *one* model is pointer-chasing over a shared hash-cons table, while a
// sweep is embarrassingly parallel.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "util/thread_pool.hpp"

namespace aadlsched::versa {

/// Run `job(i)` for i in [0, jobs) across `workers` threads (0 = hardware
/// concurrency). Each job must be self-contained (build its own Context).
void parallel_sweep(std::size_t jobs,
                    const std::function<void(std::size_t)>& job,
                    std::size_t workers = 0);

}  // namespace aadlsched::versa
