// Parallel analysis sweeps.
//
// Two axes of parallelism exist in this codebase, and they compose:
//   * Across models (this file): independent analyses — one model variant
//     per job, each with a private Context — run concurrently on a thread
//     pool. Utilization sweeps are embarrassingly parallel and scale
//     linearly.
//   * Within one model: versa::explore_parallel runs a level-synchronous
//     parallel BFS over a single prioritized transition system, with the
//     hash-cons tables in Context shared-mode (striped locks) and a sharded
//     concurrent visited set. See DESIGN.md §8 for the architecture and the
//     shortest-trace argument.
// An earlier revision claimed single-model exploration was inherently
// serial "pointer-chasing over a shared hash-cons table"; chunked
// append-only table storage plus per-worker transition-memo caches proved
// that wrong — most of the hot path never takes a lock.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "util/thread_pool.hpp"

namespace aadlsched::versa {

/// A job that escaped with an exception (or was fault-injected, see
/// util::FaultInjector Site::Job). The sweep records it and carries on —
/// one poisoned model must not kill the whole pool.
struct SweepFailure {
  std::size_t job = 0;
  std::string error;  // exception::what(), or "unknown exception"
};

struct SweepReport {
  std::size_t completed = 0;  // jobs that ran to the end
  std::vector<SweepFailure> failures;  // sorted by job index

  bool ok() const { return failures.empty(); }
};

/// Run `job(i)` for i in [0, jobs) across `workers` threads (0 = hardware
/// concurrency). Each job must be self-contained (build its own Context)
/// and is isolated: a throwing job becomes a SweepFailure record instead of
/// terminating the pool (util::ThreadPool tasks must not throw). Callers
/// that need per-job budgets attach a RunBudget inside the job itself —
/// budgets are per-analysis, so isolation and governance compose.
SweepReport parallel_sweep(std::size_t jobs,
                           const std::function<void(std::size_t)>& job,
                           std::size_t workers = 0);

}  // namespace aadlsched::versa
