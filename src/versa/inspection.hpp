// State inspection: decompose a global ground state into per-component
// status records.
//
// This is the mechanism behind the paper's trace lift-back (§5): instead of
// tagging actions with per-thread marker resources (which would corrupt the
// preemption relation — see tests/test_preemption.cpp), we exploit the
// translation invariant that every prefix continuation is a definition call,
// so along any trace each parallel component is (almost always) a Call term
// whose definition carries AADL metadata (component path, automaton state)
// and whose arguments are the live parameters (accumulated execution time,
// time since dispatch, queue depth, ...).
#pragma once

#include <string>
#include <vector>

#include "acsr/context.hpp"

namespace aadlsched::versa {

struct ComponentState {
  acsr::DefId def = acsr::kInvalidDef;  // kInvalidDef for anonymous terms
  acsr::DefRole role = acsr::DefRole::Generic;
  std::string name;        // definition name, or a rendering if anonymous
  std::string aadl_path;   // empty for generic processes
  std::string state_name;  // automaton state ("Compute", "AwaitDispatch"...)
  std::vector<acsr::ParamValue> params;
};

/// Flatten a global state into component records. Parallel compositions,
/// restrictions and scopes are traversed; Call leaves become typed records;
/// any other leaf becomes an anonymous record (it names itself by a short
/// rendering). Ordering is the canonical (sorted) component order.
std::vector<ComponentState> inspect(const acsr::Context& ctx,
                                    acsr::TermId state);

/// Find the record of the component whose definition has the given AADL
/// path; nullptr if the component is anonymous in this state or absent.
/// Note several processes may share one AADL path (a thread skeleton and
/// its dispatcher); this returns the first.
const ComponentState* find_by_path(const std::vector<ComponentState>& states,
                                   std::string_view aadl_path);

/// Find the record with the given AADL path *and* role (e.g. the thread
/// skeleton rather than its dispatcher).
const ComponentState* find_by_role(const std::vector<ComponentState>& states,
                                   std::string_view aadl_path,
                                   acsr::DefRole role);

}  // namespace aadlsched::versa
