#include "versa/dbm.hpp"

#include <sstream>

#include "util/hash.hpp"

namespace aadlsched::versa {

DbmBound dbm_zero() { return {0, false}; }
DbmBound dbm_inf() { return {kDbmInf, false}; }

bool dbm_less(const DbmBound& a, const DbmBound& b) {
  if (a.value != b.value) return a.value < b.value;
  return a.strict && !b.strict;
}

DbmBound dbm_add(const DbmBound& a, const DbmBound& b) {
  if (a.value == kDbmInf || b.value == kDbmInf) return dbm_inf();
  return {a.value + b.value, a.strict || b.strict};
}

Dbm::Dbm(std::size_t clocks) : dim_(clocks + 1), m_(dim_ * dim_, dbm_inf()) {
  for (std::size_t i = 0; i < dim_; ++i) set(i, i, dbm_zero());
  // x_0 - x_i <= 0: clocks are non-negative.
  for (std::size_t i = 1; i < dim_; ++i) set(0, i, dbm_zero());
}

Dbm Dbm::point(const std::vector<std::int64_t>& x) {
  Dbm z(x.size());
  for (std::size_t i = 1; i <= x.size(); ++i) {
    z.set(i, 0, {x[i - 1], false});
    z.set(0, i, {-x[i - 1], false});
  }
  z.canonicalize();
  return z;
}

void Dbm::canonicalize() {
  for (std::size_t k = 0; k < dim_; ++k) {
    for (std::size_t i = 0; i < dim_; ++i) {
      const DbmBound ik = at(i, k);
      if (ik.value == kDbmInf) continue;
      for (std::size_t j = 0; j < dim_; ++j) {
        const DbmBound via = dbm_add(ik, at(k, j));
        if (dbm_less(via, at(i, j))) set(i, j, via);
      }
    }
  }
  for (std::size_t i = 0; i < dim_; ++i) {
    const DbmBound d = at(i, i);
    if (d.value < 0 || (d.value == 0 && d.strict)) {
      empty_ = true;
      return;
    }
  }
  empty_ = false;
}

void Dbm::up() {
  for (std::size_t i = 1; i < dim_; ++i) set(i, 0, dbm_inf());
  // Removing only the x_i - x_0 column of a canonical matrix keeps every
  // other entry tight (no shortest path shrinks when edges are removed),
  // so the result is canonical without another Floyd-Warshall pass.
}

void Dbm::constrain_upper(std::size_t i, std::int64_t c, bool strict) {
  const DbmBound b{c, strict};
  if (dbm_less(b, at(i, 0))) set(i, 0, b);
}

void Dbm::constrain_lower(std::size_t i, std::int64_t c, bool strict) {
  const DbmBound b{-c, strict};
  if (dbm_less(b, at(0, i))) set(0, i, b);
}

bool Dbm::includes(const Dbm& other) const {
  if (dim_ != other.dim_) return false;
  for (std::size_t idx = 0; idx < m_.size(); ++idx) {
    // Every constraint of `this` must be at least as loose.
    if (dbm_less(m_[idx], other.m_[idx])) return false;
  }
  return true;
}

std::uint64_t Dbm::hash() const {
  std::uint64_t h = util::fnv1a(std::string_view{});
  h = util::hash_combine(h, dim_);
  for (const DbmBound& b : m_) {
    h = util::hash_combine(h, static_cast<std::uint64_t>(b.value));
    h = util::hash_combine(h, b.strict ? 1u : 0u);
  }
  return h;
}

std::string Dbm::to_string() const {
  std::ostringstream os;
  if (empty_) return "<empty zone>\n";
  const auto name = [](std::size_t i) {
    if (i == 0) return std::string("0");
    std::string n = "x";
    n += std::to_string(i);
    return n;
  };
  for (std::size_t i = 0; i < dim_; ++i) {
    for (std::size_t j = 0; j < dim_; ++j) {
      if (i == j) continue;
      const DbmBound& b = at(i, j);
      if (b.value == kDbmInf) continue;
      os << name(i) << " - " << name(j) << (b.strict ? " < " : " <= ")
         << b.value << '\n';
    }
  }
  return os.str();
}

}  // namespace aadlsched::versa
