// Difference-bound matrices: the zone representation behind the symbolic
// exploration engine (DESIGN.md §16).
//
// A DBM over clocks x_1..x_n (plus the reference clock x_0 = 0) stores one
// bound per ordered pair: m[i][j] = (c, strict) encodes x_i - x_j < c or
// x_i - x_j <= c. The represented zone is the conjunction of all n^2
// constraints. Canonicalization (all-pairs shortest paths over the bound
// semiring) makes every implied constraint explicit, which gives:
//
//   * a unique representative per zone — equality is entrywise comparison;
//   * inclusion by entrywise bound comparison (Z1 subset of Z2 iff every
//     canonical bound of Z1 is at most Z2's), the subsumption test of the
//     symbolic visited set;
//   * emptiness as a negative cycle (m[i][i] < 0).
//
// Bounds are exact signed 64-bit nanosecond values with an infinity
// sentinel; arithmetic saturates at infinity, and the paper's models keep
// magnitudes far below the overflow range (periods are bounded by
// translate-time checks). All operations keep the matrix canonical unless
// documented otherwise.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace aadlsched::versa {

/// One DBM entry: the bound of x_i - x_j. `value == kDbmInf` means
/// unbounded (and `strict` is then meaningless but kept false so equal
/// zones compare equal entrywise).
struct DbmBound {
  std::int64_t value = 0;
  bool strict = false;

  friend bool operator==(const DbmBound& a, const DbmBound& b) {
    return a.value == b.value && a.strict == b.strict;
  }
  friend bool operator!=(const DbmBound& a, const DbmBound& b) {
    return !(a == b);
  }
};

inline constexpr std::int64_t kDbmInf = INT64_MAX;

/// (<=, 0): the additive identity of the bound semiring.
DbmBound dbm_zero();
/// Unbounded.
DbmBound dbm_inf();
/// Tighter-than: (c, <) beats (c, <=) beats (c', <=) for c' > c.
bool dbm_less(const DbmBound& a, const DbmBound& b);
/// Bound addition, saturating at infinity; strictness is OR.
DbmBound dbm_add(const DbmBound& a, const DbmBound& b);

class Dbm {
 public:
  /// The universal zone (every clock unconstrained, all >= 0) over
  /// `clocks` clocks. Dimension of the matrix is clocks + 1.
  explicit Dbm(std::size_t clocks);

  /// The singular zone {x}: every clock pinned to the given value.
  static Dbm point(const std::vector<std::int64_t>& x);

  std::size_t clocks() const { return dim_ - 1; }
  std::size_t dimension() const { return dim_; }

  /// Raw access; i/j in [0, dimension). Writing through set() leaves the
  /// matrix non-canonical until canonicalize() runs.
  const DbmBound& at(std::size_t i, std::size_t j) const {
    return m_[i * dim_ + j];
  }
  void set(std::size_t i, std::size_t j, DbmBound b) { m_[i * dim_ + j] = b; }

  /// All-pairs shortest paths (Floyd-Warshall over the bound semiring).
  /// Detects emptiness; on an empty zone the matrix contents are
  /// unspecified and only empty() is meaningful.
  void canonicalize();
  bool empty() const { return empty_; }

  /// Delay closure ("up"): remove every upper bound x_i <= c, yielding
  /// {x + d*1 : x in Z, d >= 0}. Keeps diagonal constraints. Preserves
  /// canonical form.
  void up();

  /// Intersect with x_i <= c (strict when `strict`). Non-canonical after.
  void constrain_upper(std::size_t i, std::int64_t c, bool strict = false);
  /// Intersect with x_i >= c (strict when `strict`). Non-canonical after.
  void constrain_lower(std::size_t i, std::int64_t c, bool strict = false);

  /// Entrywise inclusion test; both sides must be canonical and non-empty.
  bool includes(const Dbm& other) const;

  friend bool operator==(const Dbm& a, const Dbm& b) {
    return a.dim_ == b.dim_ && a.empty_ == b.empty_ && a.m_ == b.m_;
  }

  /// FNV-1a over the canonical entries.
  std::uint64_t hash() const;

  /// Debug rendering: one constraint per line, implied bounds included.
  std::string to_string() const;

 private:
  std::size_t dim_;
  std::vector<DbmBound> m_;
  bool empty_ = false;
};

}  // namespace aadlsched::versa
