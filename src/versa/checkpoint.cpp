#include "versa/checkpoint.hpp"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <sstream>
#include <type_traits>
#include <vector>

#include "acsr/parser.hpp"
#include "acsr/printer.hpp"
#include "util/diagnostics.hpp"
#include "util/hash.hpp"

namespace aadlsched::versa {

using acsr::TermId;
using acsr::TermKind;
using acsr::TermNode;
using acsr::kInvalidTerm;

namespace {

constexpr std::string_view kMagic = "aadlsched-checkpoint";
// v2 added the reduction section (settings + symmetry role groups). v1
// blobs carry no reduction provenance, so they are rejected as stale
// rather than resumed with guessed settings.
constexpr std::string_view kVersion = "v2";

std::string hex64(std::uint64_t v) {
  static constexpr char digits[] = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[v & 0xf];
    v >>= 4;
  }
  return out;
}

/// Child term ids of a node, including the optional scope handlers.
template <typename Fn>
void for_each_child(const acsr::TermTable& tt, TermId id, const Fn& fn) {
  const TermNode& n = tt.node(id);
  switch (n.kind) {
    case TermKind::Nil:
    case TermKind::Call:
      break;
    case TermKind::Act:
    case TermKind::Evt:
    case TermKind::Restrict:
      fn(n.b);
      break;
    case TermKind::Choice:
    case TermKind::Parallel:
      for (const std::uint32_t c : tt.payload(id)) fn(c);
      break;
    case TermKind::Scope: {
      const acsr::ScopeParts p = tt.scope_parts(id);
      fn(p.body);
      if (p.exception_cont != kInvalidTerm) fn(p.exception_cont);
      if (p.interrupt_handler != kInvalidTerm) fn(p.interrupt_handler);
      if (p.timeout_handler != kInvalidTerm) fn(p.timeout_handler);
      break;
    }
  }
}

/// Emit a list of u32 values, wrapped so no line grows unbounded.
void emit_ids(std::ostringstream& os, const std::vector<std::uint32_t>& ids) {
  for (std::size_t i = 0; i < ids.size(); ++i)
    os << ids[i] << ((i + 1) % 16 == 0 || i + 1 == ids.size() ? '\n' : ' ');
}

/// Incremental parser over the digest-verified body. All reads are bounds-
/// checked; the first failure latches and everything after no-ops.
class Reader {
 public:
  explicit Reader(std::string body) : is_(std::move(body)) {}

  bool ok() const { return ok_; }
  const std::string& error() const { return error_; }

  void fail(std::string msg) {
    if (ok_) {
      ok_ = false;
      error_ = std::move(msg);
    }
  }

  /// Consume one whitespace-delimited token and require it to be `word`.
  void expect(std::string_view word) {
    if (!ok_) return;
    std::string t;
    if (!(is_ >> t) || t != word)
      fail("expected '" + std::string(word) + "', found '" + t + "'");
  }

  std::string token(std::string_view what) {
    std::string t;
    if (ok_ && !(is_ >> t)) fail("missing " + std::string(what));
    return t;
  }

  std::int64_t num(std::string_view what) {
    std::int64_t v = 0;
    if (ok_ && !(is_ >> v)) fail("missing number: " + std::string(what));
    return v;
  }

  std::uint64_t unum(std::string_view what) {
    const std::int64_t v = num(what);
    if (v < 0) fail("negative count: " + std::string(what));
    return static_cast<std::uint64_t>(v);
  }

  /// Read exactly `n` raw bytes (after skipping the newline that ends the
  /// current line).
  std::string raw(std::uint64_t n) {
    std::string out;
    if (!ok_) return out;
    is_.get();  // the '\n' after the byte count
    out.resize(n);
    if (!is_.read(out.data(), static_cast<std::streamsize>(n)))
      fail("truncated raw section");
    return out;
  }

  /// Rest of the current line (after one separating space).
  std::string line(std::string_view what) {
    std::string out;
    if (!ok_) return out;
    is_.get();  // the ' ' after the keyword
    if (!std::getline(is_, out)) fail("missing " + std::string(what));
    return out;
  }

 private:
  std::istringstream is_;
  bool ok_ = true;
  std::string error_;
};

}  // namespace

std::string serialize_checkpoint(const acsr::Context& ctx,
                                 const Wavefront& wave,
                                 std::string_view key,
                                 const CheckpointReduction& reduction) {
  const acsr::TermTable& tt = ctx.terms();
  acsr::Printer printer(ctx);

  // Mark the term DAG reachable from the wavefront (children first by
  // construction: every child has a smaller TermId than its parent).
  std::vector<bool> marked(tt.size(), false);
  std::vector<TermId> stack;
  const auto push = [&](TermId id) {
    if (id != kInvalidTerm && !marked[id]) {
      marked[id] = true;
      stack.push_back(id);
    }
  };
  push(wave.initial);
  if (wave.deadlock_found) push(wave.first_deadlock);
  for (const TermId s : wave.visited) push(s);
  for (const TermId s : wave.frontier) push(s);
  for (const TermId s : wave.next_frontier) push(s);
  while (!stack.empty()) {
    const TermId id = stack.back();
    stack.pop_back();
    for_each_child(tt, id, push);
  }

  // Dense serialization index in ascending TermId order.
  std::vector<std::uint32_t> dense(tt.size(),
                                   std::numeric_limits<std::uint32_t>::max());
  std::uint32_t count = 0;
  for (TermId id = 0; id < tt.size(); ++id)
    if (marked[id]) dense[id] = count++;

  std::ostringstream os;
  os << kMagic << ' ' << kVersion << '\n';
  os << "key " << (key.empty() ? "-" : key) << '\n';
  os << "stats " << wave.states << ' ' << wave.transitions << ' '
     << wave.depth << ' ' << wave.peak_frontier << ' ' << wave.deadlock_count
     << ' ' << (wave.deadlock_found ? 1 : 0) << '\n';

  // Reduction provenance (v2): the visited set below holds whatever the
  // capturing run deduplicated on — orbit representatives when symmetry
  // canonicalization was active — so a resume must rebuild the same model.
  os << "reduction " << (reduction.symmetry ? 1 : 0) << ' '
     << (reduction.commute ? 1 : 0) << ' '
     << (reduction.uniform_dispatch ? 1 : 0) << ' '
     << reduction.role_groups.size() << '\n';
  for (const std::vector<std::string>& g : reduction.role_groups) {
    os << "group " << g.size();
    for (const std::string& role : g) os << ' ' << role;
    os << '\n';
  }

  const std::string module_text = printer.module();
  os << "module " << module_text.size() << '\n' << module_text << '\n';

  // Name tables, by name: symbol 0 is the pre-interned empty string and is
  // implicit; DefIds are serialized as names because they are not stable
  // across a module round-trip.
  const util::Interner& res = ctx.resource_interner();
  os << "resources " << res.size() - 1 << '\n';
  for (util::Symbol s = 1; s < res.size(); ++s) os << res.str(s) << '\n';
  const util::Interner& ev = ctx.event_interner();
  os << "events " << ev.size() - 1 << '\n';
  for (util::Symbol s = 1; s < ev.size(); ++s) os << ev.str(s) << '\n';
  os << "defs " << ctx.definition_count() << '\n';
  for (acsr::DefId d = 0; d < ctx.definition_count(); ++d)
    os << ctx.definition(d).name << '\n';

  const acsr::ActionTable& at = ctx.actions();
  os << "actions " << at.size() << '\n';
  for (acsr::ActionId a = 0; a < at.size(); ++a) {
    const auto& uses = at.uses(a);
    os << uses.size();
    for (const acsr::ResourceUse& u : uses)
      os << ' ' << u.resource << ' ' << u.priority;
    os << '\n';
  }
  const acsr::EventSetTable& est = ctx.event_sets();
  os << "eventsets " << est.size() << '\n';
  for (acsr::EventSetId e = 0; e < est.size(); ++e) {
    const auto& events = est.events(e);
    os << events.size();
    for (const acsr::Event x : events) os << ' ' << x;
    os << '\n';
  }

  os << "terms " << count << '\n';
  for (TermId id = 0; id < tt.size(); ++id) {
    if (!marked[id]) continue;
    const TermNode& n = tt.node(id);
    switch (n.kind) {
      case TermKind::Nil:
        os << "N\n";
        break;
      case TermKind::Act:
        os << "A " << n.a << ' ' << dense[n.b] << '\n';
        break;
      case TermKind::Evt:
        os << "E " << n.a << ' ' << static_cast<int>(n.flag) << ' '
           << static_cast<acsr::Priority>(n.c) << ' ' << dense[n.b] << '\n';
        break;
      case TermKind::Choice:
      case TermKind::Parallel: {
        const auto p = tt.payload(id);
        os << (n.kind == TermKind::Choice ? 'C' : 'P') << ' ' << p.size();
        for (const std::uint32_t c : p) os << ' ' << dense[c];
        os << '\n';
        break;
      }
      case TermKind::Restrict:
        os << "R " << n.a << ' ' << dense[n.b] << '\n';
        break;
      case TermKind::Scope: {
        const acsr::ScopeParts p = tt.scope_parts(id);
        const auto opt = [&](TermId t) -> std::int64_t {
          return t == kInvalidTerm ? -1
                                   : static_cast<std::int64_t>(dense[t]);
        };
        os << "S " << dense[p.body] << ' ' << p.time_left << ' '
           << p.exception_label << ' ' << opt(p.exception_cont) << ' '
           << opt(p.interrupt_handler) << ' ' << opt(p.timeout_handler)
           << '\n';
        break;
      }
      case TermKind::Call: {
        const auto p = tt.payload(id);
        os << "L " << n.a << ' ' << p.size();
        for (const std::uint32_t v : p)
          os << ' ' << static_cast<acsr::ParamValue>(v);
        os << '\n';
        break;
      }
    }
  }

  os << "initial " << dense[wave.initial] << '\n';
  if (wave.deadlock_found)
    os << "firstdeadlock " << dense[wave.first_deadlock] << '\n';
  else
    os << "firstdeadlock -\n";
  // End-to-end printer/parser cross-check line (re-parsed on restore).
  os << "initialterm " << printer.ground_term(wave.initial) << '\n';

  const auto emit_list = [&](std::string_view name,
                             const std::vector<TermId>& ids, bool sorted) {
    std::vector<std::uint32_t> out;
    out.reserve(ids.size());
    for (const TermId s : ids) out.push_back(dense[s]);
    if (sorted) std::sort(out.begin(), out.end());
    os << name << ' ' << out.size() << '\n';
    emit_ids(os, out);
  };
  emit_list("frontier", wave.frontier, false);
  emit_list("next", wave.next_frontier, false);
  // The visited set is sorted so serialization does not depend on the
  // enumeration order of the engine's seen-set (byte-stable checkpoints).
  emit_list("visited", wave.visited, true);

  std::string body = os.str();
  body += "digest " + hex64(util::fnv1a(body)) + "\n";
  return body;
}

std::optional<RestoredCheckpoint> parse_checkpoint(std::string_view text,
                                                   std::string& error) {
  const auto reject = [&](std::string msg) -> std::optional<RestoredCheckpoint> {
    error = "checkpoint rejected: " + std::move(msg);
    return std::nullopt;
  };

  // Integrity first: the trailing digest line covers every preceding byte.
  const std::size_t dpos = text.rfind("\ndigest ");
  if (dpos == std::string_view::npos) return reject("no digest line");
  const std::string_view body = text.substr(0, dpos + 1);
  const std::string_view digest_hex =
      text.substr(dpos + 8, text.find('\n', dpos + 8) - (dpos + 8));
  if (digest_hex != hex64(util::fnv1a(body)))
    return reject("digest mismatch (truncated or corrupt)");

  Reader r{std::string(body)};
  r.expect(kMagic);
  {
    const std::string version = r.token("format version");
    if (r.ok() && version != kVersion)
      return reject("stale checkpoint format '" + version + "' (this build "
                    "writes " + std::string(kVersion) +
                    "); re-run cold to capture a fresh checkpoint");
  }
  r.expect("key");
  RestoredCheckpoint out;
  out.key = r.token("key");
  Wavefront& w = out.wave;
  r.expect("stats");
  w.states = r.unum("states");
  w.transitions = r.unum("transitions");
  w.depth = r.unum("depth");
  w.peak_frontier = r.unum("peak_frontier");
  w.deadlock_count = r.unum("deadlock_count");
  w.deadlock_found = r.unum("deadlock_found") != 0;

  r.expect("reduction");
  out.reduction.symmetry = r.unum("reduction symmetry flag") != 0;
  out.reduction.commute = r.unum("reduction commute flag") != 0;
  out.reduction.uniform_dispatch = r.unum("uniform-dispatch flag") != 0;
  for (std::uint64_t i = r.unum("symmetry group count"); r.ok() && i > 0;
       --i) {
    r.expect("group");
    std::vector<std::string> roles;
    for (std::uint64_t k = r.unum("role count"); r.ok() && k > 0; --k)
      roles.push_back(r.token("role name"));
    out.reduction.role_groups.push_back(std::move(roles));
  }

  r.expect("module");
  const std::string module_text = r.raw(r.unum("module bytes"));
  if (!r.ok()) return reject(r.error());

  out.ctx = std::make_unique<acsr::Context>();
  acsr::Context& ctx = *out.ctx;
  util::DiagnosticEngine mdiags("<checkpoint-module>");
  if (!acsr::parse_module(ctx, module_text, mdiags))
    return reject("embedded ACSR module failed to parse: " +
                  mdiags.render_all());

  // Name tables -> new-id maps. Index 0 is the implicit empty symbol.
  std::vector<acsr::Resource> rmap{0};
  r.expect("resources");
  for (std::uint64_t i = r.unum("resource count"); r.ok() && i > 0; --i)
    rmap.push_back(ctx.resource(r.token("resource name")));
  std::vector<acsr::Event> emap{0};
  r.expect("events");
  for (std::uint64_t i = r.unum("event count"); r.ok() && i > 0; --i)
    emap.push_back(ctx.event(r.token("event name")));
  std::vector<acsr::DefId> dmap;
  r.expect("defs");
  for (std::uint64_t i = r.unum("def count"); r.ok() && i > 0; --i) {
    const std::string name = r.token("def name");
    const auto def = ctx.find_definition(name);
    if (!def) return reject("unknown definition '" + name + "'");
    dmap.push_back(*def);
  }

  const auto mapped = [&](const auto& map, std::uint64_t idx,
                          std::string_view what) {
    using V = std::decay_t<decltype(map[0])>;
    if (idx >= map.size()) {
      r.fail("out-of-range " + std::string(what));
      return V{};
    }
    return map[idx];
  };

  std::vector<acsr::ActionId> amap;
  r.expect("actions");
  for (std::uint64_t i = r.unum("action count"); r.ok() && i > 0; --i) {
    std::vector<acsr::ResourceUse> uses;
    for (std::uint64_t k = r.unum("resource-use count"); r.ok() && k > 0;
         --k) {
      const acsr::Resource res =
          mapped(rmap, r.unum("resource id"), "resource id");
      uses.push_back(acsr::ResourceUse{
          res, static_cast<acsr::Priority>(r.num("priority"))});
    }
    amap.push_back(ctx.actions().intern(std::move(uses)));
  }
  std::vector<acsr::EventSetId> esmap;
  r.expect("eventsets");
  for (std::uint64_t i = r.unum("event-set count"); r.ok() && i > 0; --i) {
    std::vector<acsr::Event> events;
    for (std::uint64_t k = r.unum("event-set size"); r.ok() && k > 0; --k)
      events.push_back(mapped(emap, r.unum("event id"), "event id"));
    esmap.push_back(ctx.event_sets().intern(std::move(events)));
  }

  // Term DAG, children-before-parents: every reference below must point at
  // an already-reconstructed node.
  acsr::TermTable& tt = ctx.terms();
  std::vector<TermId> tmap;
  r.expect("terms");
  const std::uint64_t nterms = r.unum("term count");
  if (!r.ok()) return reject(r.error());
  tmap.reserve(static_cast<std::size_t>(
      std::min<std::uint64_t>(nterms, 1u << 24)));
  const auto term_at = [&](std::int64_t idx) -> TermId {
    if (idx < 0 || static_cast<std::uint64_t>(idx) >= tmap.size()) {
      r.fail("out-of-range term reference");
      return acsr::kNil;
    }
    return tmap[static_cast<std::size_t>(idx)];
  };
  for (std::uint64_t i = 0; r.ok() && i < nterms; ++i) {
    const std::string tag = r.token("term tag");
    if (tag == "N") {
      tmap.push_back(tt.nil());
    } else if (tag == "A") {
      const acsr::ActionId a =
          mapped(amap, r.unum("action id"), "action id");
      tmap.push_back(tt.act(a, term_at(r.num("continuation"))));
    } else if (tag == "E") {
      const acsr::Event e = mapped(emap, r.unum("event id"), "event id");
      const bool send = r.num("send flag") != 0;
      const auto prio = static_cast<acsr::Priority>(r.num("priority"));
      tmap.push_back(tt.evt(e, send, prio, term_at(r.num("continuation"))));
    } else if (tag == "C" || tag == "P") {
      std::vector<TermId> children;
      for (std::uint64_t k = r.unum("child count"); r.ok() && k > 0; --k)
        children.push_back(term_at(r.num("child")));
      tmap.push_back(tag == "C" ? tt.choice(std::move(children))
                                : tt.parallel(std::move(children)));
    } else if (tag == "R") {
      const acsr::EventSetId es =
          mapped(esmap, r.unum("event-set id"), "event-set id");
      tmap.push_back(tt.restrict(es, term_at(r.num("body"))));
    } else if (tag == "S") {
      acsr::ScopeParts p;
      p.body = term_at(r.num("scope body"));
      p.time_left = static_cast<acsr::TimeValue>(r.num("scope time"));
      p.exception_label =
          mapped(emap, r.unum("exception label"), "exception label");
      const auto opt = [&](std::string_view what) -> TermId {
        const std::int64_t idx = r.num(what);
        return idx < 0 ? kInvalidTerm : term_at(idx);
      };
      p.exception_cont = opt("exception continuation");
      p.interrupt_handler = opt("interrupt handler");
      p.timeout_handler = opt("timeout handler");
      tmap.push_back(tt.scope(p));
    } else if (tag == "L") {
      const acsr::DefId d = mapped(dmap, r.unum("def id"), "def id");
      std::vector<acsr::ParamValue> args;
      for (std::uint64_t k = r.unum("arg count"); r.ok() && k > 0; --k)
        args.push_back(static_cast<acsr::ParamValue>(r.num("arg")));
      if (r.ok() && args.size() != ctx.definition(d).params.size())
        return reject("arity mismatch calling '" + ctx.definition(d).name +
                      "'");
      tmap.push_back(tt.call(d, args));
    } else {
      return reject("unknown term tag '" + tag + "'");
    }
  }

  r.expect("initial");
  w.initial = term_at(r.num("initial index"));
  r.expect("firstdeadlock");
  {
    const std::string t = r.token("first deadlock");
    if (t != "-") {
      std::int64_t idx = -1;
      try {
        idx = std::stoll(t);
      } catch (...) {
        r.fail("malformed first-deadlock index");
      }
      w.first_deadlock = term_at(idx);
    }
  }

  r.expect("initialterm");
  const std::string initial_line = r.line("initial term");
  if (!r.ok()) return reject(r.error());

  // Printer/parser cross-check: the restored DAG's initial state must print
  // to the recorded line, and the line must re-parse to a term that prints
  // identically (full ground-term round-trip through the ACSR syntax).
  acsr::Printer printer(ctx);
  if (printer.ground_term(w.initial) != initial_line)
    return reject("initial term does not match the restored term DAG");
  util::DiagnosticEngine gdiags("<checkpoint-initial>");
  const TermId reparsed = acsr::parse_ground_term(ctx, initial_line, gdiags);
  if (reparsed == kInvalidTerm ||
      printer.ground_term(reparsed) != initial_line)
    return reject("initial term failed the printer/parser round-trip");

  const auto read_list = [&](std::string_view name,
                             std::vector<TermId>& into) {
    r.expect(name);
    for (std::uint64_t i = r.unum("list length"); r.ok() && i > 0; --i)
      into.push_back(term_at(r.num("list entry")));
  };
  read_list("frontier", w.frontier);
  read_list("next", w.next_frontier);
  read_list("visited", w.visited);

  if (!r.ok()) return reject(r.error());
  return out;
}

}  // namespace aadlsched::versa
