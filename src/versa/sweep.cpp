#include "versa/sweep.hpp"

namespace aadlsched::versa {

void parallel_sweep(std::size_t jobs,
                    const std::function<void(std::size_t)>& job,
                    std::size_t workers) {
  util::ThreadPool pool(workers);
  pool.parallel_for(jobs, job);
}

}  // namespace aadlsched::versa
