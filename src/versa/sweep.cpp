#include "versa/sweep.hpp"

#include <algorithm>
#include <exception>
#include <mutex>

#include "util/budget.hpp"

namespace aadlsched::versa {

SweepReport parallel_sweep(std::size_t jobs,
                           const std::function<void(std::size_t)>& job,
                           std::size_t workers) {
  SweepReport report;
  std::mutex mu;
  util::ThreadPool pool(workers);
  pool.parallel_for(jobs, [&](std::size_t i) {
    // Isolation boundary: ThreadPool terminates the process if a task
    // escapes with an exception, so every job runs under try/catch and
    // failures become structured records. The fault-injection probe sits
    // inside the guarded region — an injected job fault exercises exactly
    // the path a real throwing job takes.
    try {
      util::FaultInjector::global().maybe_throw_job();
      job(i);
      std::lock_guard lk(mu);
      ++report.completed;
    } catch (const std::exception& e) {
      std::lock_guard lk(mu);
      report.failures.push_back(SweepFailure{i, e.what()});
    } catch (...) {
      std::lock_guard lk(mu);
      report.failures.push_back(SweepFailure{i, "unknown exception"});
    }
  });
  std::sort(report.failures.begin(), report.failures.end(),
            [](const SweepFailure& a, const SweepFailure& b) {
              return a.job < b.job;
            });
  return report;
}

}  // namespace aadlsched::versa
