// Symbolic exploration: a state-class graph over dense time, beside the
// unit-quantum enumerator (DESIGN.md §16).
//
// The enumerator's cost is proportional to hyperperiod / quantum — exactly
// what EXPERIMENTS.md E2 measures blowing up, while finer quanta are
// *required* for precision. This engine analyzes the same scheduling
// semantics event-by-event instead of quantum-by-quantum: a state class is
// (discrete per-task state, canonical DBM zone over the task clocks), the
// successor relation jumps straight to the next dispatch / completion /
// deadline instant, and the verdict is independent of any quantum.
//
// Applicability is a restricted-but-honest fragment, checked by
// validate_model() (and extracted from AADL by core/symbolic_extract):
// periodic threads with constrained deadlines, static distinct priorities
// per processor, committed interval demands, no event queues, no shared
// buses. Demand intervals are abstracted to their endpoints {cmin, cmax};
// that abstraction is verdict-exact for preemptive fixed-priority
// scheduling because completion times are componentwise monotone in
// demands (the sustainability argument in DESIGN.md §16), so a deadline
// miss under any demand vector implies one under the all-cmax corner.
//
// Subsumption: a candidate class whose zone is included in an
// already-visited class with the same discrete state is pruned. Both
// classes' zones are delay segments ending at the same event instant, so
// the included class's futures are a subset of the subsumer's — pruning
// drops no reachable miss (soundness argument in DESIGN.md §16).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/budget.hpp"
#include "versa/dbm.hpp"

namespace aadlsched::versa {

/// One periodic task of the symbolic fragment. All times exact
/// nanoseconds — no quantum is involved anywhere in this engine.
struct SymbolicTask {
  std::string path;  // AADL instance path, for witnesses/diagnostics
  std::int64_t period_ns = 0;    // > 0
  std::int64_t deadline_ns = 0;  // 0 < deadline <= period (constrained)
  std::int64_t cmin_ns = 0;      // 0 <= cmin <= cmax
  std::int64_t cmax_ns = 0;
  std::int64_t offset_ns = 0;  // first dispatch offset, in [0, period]
  int priority = 0;            // larger preempts smaller; distinct per cpu
  std::size_t cpu = 0;         // processor index, [0, cpu_count)
};

struct SymbolicModel {
  std::vector<SymbolicTask> tasks;
  std::size_t cpu_count = 0;
};

/// Invariants explore_symbolic() relies on; one human-readable reason per
/// violation, empty when the model is well-formed.
std::vector<std::string> validate_model(const SymbolicModel& m);

struct SymbolicOptions {
  /// Stop after this many state classes (the symbolic max_states).
  std::uint64_t max_classes = 1'000'000;
  /// Wall-clock / cancellation envelope, same governor as the enumerator.
  util::RunBudget budget;
  /// Branch each dispatch over both demand endpoints {cmin, cmax}. Off
  /// explores only the all-cmax corner — the verdict is identical (see
  /// header), the class graph smaller.
  bool corner_demands = true;
};

struct SymbolicResult {
  bool complete = false;    // class graph closed under successors
  bool miss_found = false;  // a deadline miss class was reached
  util::StopReason stop = util::StopReason::None;
  std::uint64_t classes = 0;       // distinct state classes visited
  std::uint64_t transitions = 0;   // successor edges computed
  std::uint64_t subsumptions = 0;  // candidates folded into a visited class
  std::uint64_t depth = 0;         // longest event chain from the start
  std::uint64_t peak_frontier = 0;
  std::size_t dbm_dimension = 0;  // clocks + reference
  double wall_ms = 0;
  /// Event trail from system start to the first miss (empty otherwise).
  std::vector<std::string> witness;
  /// Task paths whose deadline was violated in the miss class.
  std::vector<std::string> missed;

  bool schedulable() const { return complete && !miss_found; }
};

/// Explore the state-class graph. The model must pass validate_model();
/// violations surface as an immediate Fault stop with the reasons in
/// `witness`. Thread-safe: no shared mutable state, so concurrent calls
/// (e.g. under versa::parallel_sweep) need no locking.
SymbolicResult explore_symbolic(const SymbolicModel& m,
                                const SymbolicOptions& opts = {});

}  // namespace aadlsched::versa
